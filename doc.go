// Package repro is a from-scratch Go reproduction of "Parsimonious Temporal
// Aggregation" (Gordevicius, Gamper, Böhlen; EDBT 2009 / VLDB Journal 2012).
//
// The public entry point is the root-level pta package: a Series/Result data
// model over sequential relations, a Budget type unifying the paper's size
// bound c and error bound ε, and a named strategy registry behind one
// Evaluator interface — the exact dynamic programs (PTAc, PTAe, the unpruned
// DPBasic and the Section 5.3 ablation modes), the greedy strategies (GMS,
// gap-bridging GMS), the streaming evaluators with δ read-ahead (gPTAc,
// gPTAε), and the classic time-series baselines (PAA, PLA, APCA) adapted to
// the same interface. pta.Compress resolves a strategy by name;
// pta.Strategies lists the registry. See README.md for a quickstart.
//
// The implementation lives under internal/: the temporal relational model
// (internal/temporal), instant and span temporal aggregation (internal/ita,
// internal/sta), the PTA merge operator, prefix matrices and evaluators
// (internal/core), the time-series approximation baselines (internal/approx),
// V-optimal histograms (internal/histogram), synthetic evaluation workloads
// (internal/dataset), CSV storage (internal/csvio), and the experiment
// harness that regenerates every table and figure of the paper
// (internal/experiments, driven by cmd/ptabench).
//
// bench_test.go at this root wraps one benchmark family around each paper
// artifact; integration_test.go crosses the package boundaries end to end.
package repro
