// Package repro is a from-scratch Go reproduction of "Parsimonious Temporal
// Aggregation" (Gordevicius, Gamper, Böhlen; EDBT 2009 / VLDB Journal 2012).
//
// The library lives under internal/: the temporal relational model
// (internal/temporal), instant and span temporal aggregation (internal/ita,
// internal/sta), the PTA operator with its exact dynamic-programming and
// streaming greedy evaluators (internal/core), the time-series approximation
// baselines (internal/approx), V-optimal histograms (internal/histogram),
// the synthetic evaluation workloads (internal/dataset), CSV storage
// (internal/csvio), and the experiment harness that regenerates every table
// and figure of the paper (internal/experiments, cmd/ptabench).
//
// bench_test.go at this root wraps one benchmark family around each paper
// artifact; see DESIGN.md for the inventory and EXPERIMENTS.md for
// paper-versus-measured numbers.
package repro
