// Package repro is a from-scratch Go reproduction of "Parsimonious Temporal
// Aggregation" (Gordevicius, Gamper, Böhlen; EDBT 2009 / VLDB Journal 2012),
// grown toward a production-scale temporal aggregation system.
//
// The public entry point is the root-level pta package, organized around a
// reusable, concurrency-safe Engine:
//
//	eng, _ := pta.New(
//	    pta.WithWeights([]float64{1, 25}),   // per-aggregate error weights
//	    pta.WithParallelism(4),              // group-parallel exact DP
//	)
//	res, err := eng.Compress(ctx, series, pta.Plan{Strategy: "ptac", Budget: pta.Size(12)})
//
// New configures the engine with functional options (WithWeights,
// WithParallelism, WithReadAhead, WithEstimator, WithScratchPool). Engine
// methods take a context — long dynamic programs abort promptly on
// cancellation — and reuse pooled DP scratch buffers across calls:
//
//   - Compress evaluates one Plan (a strategy name plus a Budget: the size
//     bound pta.Size(c) or the error bound pta.ErrorBound(eps)). With
//     parallelism above one, eligible exact strategies decompose the series
//     over its maximal adjacent runs — aggregation groups compress
//     independently per the sequential-relation model — and combine the
//     per-run optima exactly on a bounded worker pool.
//   - CompressMany serves several budgets of the same series; exact-DP
//     plans share one filling of the error/split-point matrices, the cheap
//     way to serve multiple resolutions of one series.
//   - CompressStream compresses a row stream in bounded memory and pushes
//     the result rows into a Sink, the serving-side push interface.
//
// Failures are typed: ErrUnknownStrategy, ErrBudgetInfeasible, ErrCanceled,
// ErrBudgetKind, ErrNotStreaming and ErrSeriesShape are errors.Is-able
// sentinels, and the concrete UnknownStrategyError, InfeasibleBudgetError
// and CanceledError carry the offending name, bound or cause for errors.As.
// The pre-Engine entry points pta.Compress and pta.CompressStream remain as
// thin wrappers over a lazily-initialized serial default engine, so
// existing callers keep compiling.
//
// The strategy registry behind one Evaluator interface covers the exact
// dynamic programs (PTAc, PTAe, the unpruned DPBasic and the Section 5.3
// ablation modes), the greedy strategies (GMS, gap-bridging GMS), the
// streaming evaluators with δ read-ahead (gPTAc, gPTAε), the age-weighted
// amnesic reduction ("amnesic", after Palpanas et al.), and the classic
// time-series baselines (PAA, PLA, APCA) adapted to the same interface.
// pta.Strategies lists the registry; see README.md for a quickstart.
//
// The implementation lives under internal/: the temporal relational model
// (internal/temporal), instant and span temporal aggregation (internal/ita,
// internal/sta), the PTA merge operator, prefix matrices and evaluators
// (internal/core), the time-series approximation baselines (internal/approx),
// V-optimal histograms (internal/histogram), synthetic evaluation workloads
// (internal/dataset), CSV storage (internal/csvio), and the experiment
// harness that regenerates every table and figure of the paper
// (internal/experiments, driven by cmd/ptabench).
//
// bench_test.go at this root wraps one benchmark family around each paper
// artifact; integration_test.go crosses the package boundaries end to end.
package repro
