// Package repro is a from-scratch Go reproduction of "Parsimonious Temporal
// Aggregation" (Gordevicius, Gamper, Böhlen; EDBT 2009 / VLDB Journal 2012),
// grown toward a production-scale temporal aggregation system. The layer map
// lives in docs/ARCHITECTURE.md.
//
// The public entry point is the root-level pta package, organized around a
// reusable, concurrency-safe Engine (see the Example functions of pta):
//
//	eng, _ := pta.New(
//	    pta.WithWeights([]float64{1, 25}),   // per-aggregate error weights
//	    pta.WithParallelism(4),              // group-parallel exact DP
//	)
//	res, err := eng.Compress(ctx, series, pta.Plan{Strategy: "ptac", Budget: pta.Size(12)})
//
// New configures the engine with functional options (WithWeights,
// WithParallelism, WithReadAhead, WithEstimator, WithScratchPool). Engine
// methods take a context — long dynamic programs abort promptly on
// cancellation — and reuse pooled DP scratch buffers across calls:
//
//   - Compress evaluates one Plan (a strategy name plus a Budget: the size
//     bound pta.Size(c) or the error bound pta.ErrorBound(eps)). With
//     parallelism above one, eligible exact strategies decompose the series
//     over its maximal adjacent runs and combine the per-run optima exactly
//     on a bounded worker pool.
//   - CompressMany serves several budgets of the same series; exact-DP
//     plans share one filling of the error/split-point matrices.
//   - CompressStream compresses a row stream in bounded memory and pushes
//     the result rows into a Sink, the serving-side push interface.
//
// For reuse across requests rather than within a call, pta exports the
// matrix-cache hooks: Fingerprint (a content hash of a series), MatrixSet
// (a warm, incrementally filled DP matrix pair), and DPClass (the canonical
// cache class — "ptac" and "ptae" fill identical matrices). They power the
// HTTP serving layer:
//
//	go run ./cmd/ptaserve -addr :8080 -parallel 4
//
// cmd/ptaserve (handlers in internal/serve) serves POST /v1/compress and
// /v1/compress/many from one shared Engine and an LRU matrix cache, so
// repeated budgets of a hot series skip the DP fill entirely; GET
// /v1/strategies introspects the registry, /v1/stats reports cache
// hit/miss counters, and typed failures map onto HTTP statuses (400
// unknown strategy, 422 infeasible budget, 504 expired deadline).
// examples/serveclient walks the whole protocol in one process.
//
// Failures are typed: ErrUnknownStrategy, ErrBudgetInfeasible, ErrCanceled,
// ErrBudgetKind, ErrNotStreaming and ErrSeriesShape are errors.Is-able
// sentinels, and the concrete UnknownStrategyError, InfeasibleBudgetError
// and CanceledError carry the offending name, bound or cause for errors.As.
// The pre-Engine entry points pta.Compress and pta.CompressStream remain as
// thin wrappers over a lazily-initialized serial default engine.
//
// The strategy registry behind one Evaluator interface covers the exact
// dynamic programs (PTAc, PTAe, the unpruned DPBasic and the Section 5.3
// ablation modes), the greedy strategies (GMS, gap-bridging GMS), the
// streaming evaluators with δ read-ahead (gPTAc, gPTAε), the age-weighted
// amnesic reduction ("amnesic", after Palpanas et al.), and the classic
// time-series baselines (PAA, PLA, APCA) adapted to the same interface.
// pta.FormatStrategies renders the one canonical description table (the
// CLI's -list-strategies and the server's /v1/strategies both come from
// it); docs/ARCHITECTURE.md tabulates the registry with paper references.
//
// The implementation lives under internal/: the temporal relational model
// (internal/temporal), instant and span temporal aggregation (internal/ita,
// internal/sta), the PTA merge operator, prefix matrices, evaluators and
// the incremental Solver behind the matrix cache (internal/core), the HTTP
// serving layer (internal/serve), the time-series approximation baselines
// (internal/approx), V-optimal histograms (internal/histogram), synthetic
// evaluation workloads (internal/dataset), CSV storage (internal/csvio),
// and the experiment harness that regenerates every table and figure of
// the paper (internal/experiments, driven by cmd/ptabench; README.md maps
// experiment ids to paper figures).
//
// bench_test.go at this root wraps one benchmark family around each paper
// artifact; integration_test.go crosses the package boundaries end to end.
package repro
