package pta

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Engine is a reusable, concurrency-safe compression session: it carries
// evaluation defaults (weights, read-ahead, estimator), a pool of reusable
// DP scratch buffers, and a parallelism degree for run-decomposed
// group-parallel evaluation. One Engine is meant to serve many compressions
// — a serving layer holds one per deployment, not one per request.
//
// All methods are safe for concurrent use by multiple goroutines.
type Engine struct {
	opts        Options // engine-level evaluation defaults (no scratch)
	parallelism int     // 1 = serial, n > 1 = n workers, 0 = all cores
	estimator   EstimatorFunc
	pool        *ScratchPool
}

// Option configures an Engine at construction (the functional-options
// pattern); options report invalid arguments from New.
type Option func(*Engine) error

// WithWeights sets the per-aggregate error weights (w_d of Definition 5)
// every evaluation of the engine uses unless a Plan overrides them. The
// slice is copied.
func WithWeights(w []float64) Option {
	return func(e *Engine) error {
		for d, v := range w {
			if !(v > 0) {
				return fmt.Errorf("pta: WithWeights: weight %d is %v, want > 0", d, v)
			}
		}
		e.opts.Weights = append([]float64(nil), w...)
		return nil
	}
}

// WithReadAhead sets the default δ read-ahead of the streaming strategies
// (see Options.ReadAhead for the encoding).
func WithReadAhead(delta int) Option {
	return func(e *Engine) error {
		e.opts.ReadAhead = delta
		return nil
	}
}

// WithFillAlgo sets the default exact-DP row-fill algorithm of the engine
// (see FillAlgo; the zero value FillAuto picks by input size). Results are
// identical for every selection — this is a performance knob and an A/B
// hook, overridable per plan through Options.FillAlgo.
func WithFillAlgo(a FillAlgo) Option {
	return func(e *Engine) error {
		if _, err := core.ParseFillAlgo(a.String()); err != nil {
			return fmt.Errorf("pta: WithFillAlgo(%d): unknown algorithm", uint8(a))
		}
		e.opts.FillAlgo = a
		return nil
	}
}

// WithParallelism sets how many worker goroutines group-parallel evaluation
// may use: 1 (the default) evaluates serially, n > 1 decomposes eligible
// strategies over maximal adjacent runs — aggregation groups compress
// independently (Section 3 guarantees groups never merge) — on n workers,
// and 0 uses every core. Results are unchanged: the decomposition is exact
// and deterministic.
func WithParallelism(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("pta: WithParallelism(%d): want ≥ 0", n)
		}
		e.parallelism = n
		return nil
	}
}

// EstimatorFunc supplies the (N̂, Êmax) estimate an error-bounded streaming
// compression needs before its input ends (Section 6.3). meta carries the
// row-less stream metadata (grouping attributes, aggregate names).
type EstimatorFunc func(ctx context.Context, meta *Series) (Estimate, error)

// WithEstimator installs the estimator Engine.CompressStream consults when
// an error-bounded plan carries no Options.Estimate.
func WithEstimator(fn EstimatorFunc) Option {
	return func(e *Engine) error {
		if fn == nil {
			return fmt.Errorf("pta: WithEstimator(nil)")
		}
		e.estimator = fn
		return nil
	}
}

// ScratchPool is a concurrency-safe pool of reusable DP scratch buffers
// (error-matrix and split-point rows). Engines draw one scratch per call
// and return it afterwards, so steady-state compression allocates no matrix
// rows. Pools may be shared between engines.
type ScratchPool struct {
	pool sync.Pool
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	return &ScratchPool{pool: sync.Pool{New: func() any { return new(core.Scratch) }}}
}

func (p *ScratchPool) acquire() *core.Scratch  { return p.pool.Get().(*core.Scratch) }
func (p *ScratchPool) release(s *core.Scratch) { p.pool.Put(s) }

// WithScratchPool makes the engine draw its DP scratch buffers from pool
// instead of a private one — useful to share buffer capacity between
// several engines.
func WithScratchPool(pool *ScratchPool) Option {
	return func(e *Engine) error {
		if pool == nil {
			return fmt.Errorf("pta: WithScratchPool(nil)")
		}
		e.pool = pool
		return nil
	}
}

// New builds an Engine from functional options. The zero configuration —
// pta.New() — is serial, unweighted, with a private scratch pool.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{parallelism: 1}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if e.pool == nil {
		e.pool = NewScratchPool()
	}
	return e, nil
}

// defaultEngine backs the package-level Compress/CompressStream wrappers:
// serial, default options, shared scratch pool.
var defaultEngine = sync.OnceValue(func() *Engine {
	e, err := New()
	if err != nil {
		panic(err) // New() with no options cannot fail
	}
	return e
})

// Plan names one compression to perform: a strategy from the registry and a
// budget, with optional per-plan option overrides.
type Plan struct {
	// Strategy is the registry name of the evaluator to run.
	Strategy string
	// Budget is the size or error bound.
	Budget Budget
	// Options, when non-nil, replaces the engine-level evaluation options
	// for this plan (engine weights still apply when Options.Weights is
	// nil). Plans with overrides are excluded from CompressMany's
	// shared-matrix amortization.
	Options *Options
}

// planOptions resolves the effective options of one plan: the engine
// defaults, or the plan override backed by the engine weights.
func (e *Engine) planOptions(p Plan) Options {
	if p.Options == nil {
		return e.opts
	}
	opts := *p.Options
	opts.scratch = nil
	if opts.Weights == nil {
		opts.Weights = e.opts.Weights
	}
	if opts.FillAlgo == FillAuto {
		// FillAuto means "pick for me": an override that says nothing about
		// the fill keeps the engine-level WithFillAlgo choice.
		opts.FillAlgo = e.opts.FillAlgo
	}
	return opts
}

// workers resolves the configured parallelism into a worker count for one
// evaluation (0 = all cores is passed through to the core pool).
func (e *Engine) workers() int { return e.parallelism }

// Weights returns a copy of the engine-level default weights (nil when
// unweighted) — the vector every evaluation applies when its plan carries
// none. Serving layers fold it into cache keys and cache builds so cached
// and engine evaluations agree.
func (e *Engine) Weights() []float64 {
	return append([]float64(nil), e.opts.Weights...)
}

// resolve validates the budget and looks the strategy up, returning the
// typed facade errors.
func (e *Engine) resolve(strategy string, b Budget) (Evaluator, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	ev, ok := Lookup(strategy)
	if !ok {
		return nil, &UnknownStrategyError{Name: strategy, Known: Strategies()}
	}
	if !ev.Supports(b.Kind()) {
		return nil, fmt.Errorf("pta: strategy %q, budget %v: %w", strategy, b.Kind(), ErrBudgetKind)
	}
	return ev, nil
}

// finish maps evaluator errors onto the typed facade errors and stamps the
// result with its provenance.
func (e *Engine) finish(p Plan, res *Result, err error) (*Result, error) {
	return finishResult(p.Strategy, p.Budget, res, err)
}

// finishResult is the shared error-mapping/stamping step behind every facade
// evaluation (Engine methods and MatrixSet.Compress): core errors become the
// typed errors.Is-able facade errors, successful results are stamped with
// their provenance.
func finishResult(strategy string, b Budget, res *Result, err error) (*Result, error) {
	if err != nil {
		var inf *core.InfeasibleSizeError
		if errors.As(err, &inf) {
			return nil, &InfeasibleBudgetError{Strategy: strategy, Budget: b, CMin: inf.CMin}
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, &CanceledError{Strategy: strategy, Cause: err}
		}
		return nil, fmt.Errorf("pta: %s: %w", strategy, err)
	}
	res.Strategy, res.Budget = strategy, b
	return res, nil
}

// Compress reduces the series under the plan. The context cancels the
// evaluation mid-matrix; with engine parallelism above one and an eligible
// exact strategy, the series' maximal adjacent runs (a refinement of its
// aggregation groups) are compressed concurrently and combined exactly.
func (e *Engine) Compress(ctx context.Context, s *Series, p Plan) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ev, err := e.resolve(p.Strategy, p.Budget)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Strategy: p.Strategy, Cause: err}
	}
	opts := e.planOptions(p)

	if workers := e.workers(); workers != 1 && s.CMin() > 1 {
		if pev, ok := ev.(ParallelEvaluator); ok {
			// The parallel path spins per-worker scratch internally; the
			// pooled scratch stays out to avoid cross-goroutine sharing.
			res, err := pev.EvaluateParallel(ctx, s, p.Budget, opts, workers)
			return e.finish(p, res, err)
		}
	}

	scratch := e.pool.acquire()
	opts.scratch = scratch
	res, err := ev.Evaluate(ctx, s, p.Budget, opts)
	e.pool.release(scratch)
	return e.finish(p, res, err)
}

// CompressMany evaluates several plans over the same series, amortizing
// shared work at two levels: every exact-DP plan without per-plan option
// overrides shares one CostKernel build (the prefix slabs of the series),
// and plans that additionally resolve to the same dynamic program — same
// pruning flags, so "ptac" and "ptae" plans pool together, in any order —
// share one filling of the error and split-point matrices (one pass serves
// every budget — the cheap way to serve multiple resolutions of one
// series). On a parallel engine with a decomposable series, fully pruned
// groups run the run-decomposed multi-budget pass instead: per-run curves
// are computed once on the worker pool and every budget in the group is
// answered from them, so group parallelism and cross-budget amortization
// compose. Other plans evaluate individually. Results align with plans;
// the first failure aborts the call.
func (e *Engine) CompressMany(ctx context.Context, s *Series, plans []Plan) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(plans))

	// Group amortizable plans by their DP pruning flags: exact-DP
	// evaluators with default options share one matrix pass even across
	// strategy names ("ptac" and "ptae" are the same fully pruned DP).
	// Everything else evaluates individually.
	type dpKey struct{ pruneI, pruneJ bool }
	groups := map[dpKey][]int{}
	if s.Len() > 0 {
		for i, p := range plans {
			ev, err := e.resolve(p.Strategy, p.Budget)
			if err != nil {
				return nil, err
			}
			mev, ok := ev.(interface{ multiDP() (bool, bool, bool) })
			if !ok || p.Options != nil {
				continue
			}
			pruneI, pruneJ, isDP := mev.multiDP()
			if !isDP {
				continue
			}
			key := dpKey{pruneI, pruneJ}
			groups[key] = append(groups[key], i)
		}
	}

	done := make([]bool, len(plans))
	if len(groups) > 0 {
		// One kernel serves every serial group: singleton groups still skip
		// a prefix build, and groups of two or more plans share the matrix
		// pass on top of it. Fully pruned groups on a parallel engine skip
		// the shared kernel and build per-run sub-kernels on the worker
		// pool instead.
		scratch := e.pool.acquire()
		released := false
		release := func() {
			if !released {
				released = true
				e.pool.release(scratch)
			}
		}
		defer release()
		opts := e.opts
		opts.scratch = scratch
		copts := opts.coreOptionsCtx(ctx)
		parallelRuns := e.workers() != 1 && s.CMin() > 1
		var kernel *core.CostKernel
		for key, g := range groups {
			budgets := make([]core.MultiBudget, len(g))
			for j, i := range g {
				b := plans[i].Budget
				if b.Kind() == BudgetSize {
					budgets[j] = core.MultiBudget{C: b.C()}
				} else {
					budgets[j] = core.MultiBudget{Eps: b.Eps()}
				}
			}
			var dpResults []*core.DPResult
			var err error
			if parallelRuns && key.pruneI && key.pruneJ {
				// The run-decomposed pass spins per-run scratch internally;
				// the pooled scratch stays out to avoid cross-goroutine
				// sharing — exactly as Compress's parallel path.
				dpResults, err = core.DPMultiParallel(s, budgets, e.opts.coreOptionsCtx(ctx), e.workers())
			} else {
				if kernel == nil {
					if kernel, err = core.NewKernel(s, copts); err != nil {
						_, ferr := e.finish(plans[g[0]], nil, err)
						return nil, ferr
					}
				}
				dpResults, err = core.DPMultiKernel(kernel, budgets, copts, key.pruneI, key.pruneJ)
			}
			if err != nil {
				// Attribute the failure to the plan that caused it (an
				// infeasible size bound names its c), or to the group head.
				blame := plans[g[0]]
				var inf *core.InfeasibleSizeError
				if errors.As(err, &inf) {
					for _, i := range g {
						if b := plans[i].Budget; b.Kind() == BudgetSize && b.C() == inf.C {
							blame = plans[i]
							break
						}
					}
				}
				_, ferr := e.finish(blame, nil, err)
				return nil, ferr
			}
			for j, i := range g {
				dres, derr := fromDP(dpResults[j], nil)
				res, err := e.finish(plans[i], dres, derr)
				if err != nil {
					return nil, err
				}
				results[i] = res
				done[i] = true
			}
		}
		// The kernel and its pooled slabs are unused from here on; return
		// the scratch so the fallback loop's Compress calls can reuse it.
		release()
	}

	for i, p := range plans {
		if done[i] {
			continue
		}
		res, err := e.Compress(ctx, s, p)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// Sink receives the rows of a compression result in (group, time) order —
// the push half of Engine.CompressStream, for serving layers that forward
// rows to clients instead of materializing series.
type Sink interface {
	// Emit receives one result row.
	Emit(row Row) error
	// Close is called exactly once after the last row with the result
	// summary; it is not called when the evaluation failed.
	Close(res *Result) error
}

// SinkFunc adapts a row function to the Sink interface with a no-op Close.
type SinkFunc func(Row) error

// Emit implements Sink.
func (f SinkFunc) Emit(row Row) error { return f(row) }

// Close implements Sink.
func (f SinkFunc) Close(*Result) error { return nil }

// CompressStream reduces a row stream under the plan with a stream-capable
// strategy, merging in bounded memory while rows arrive, then pushes the
// result rows into sink (which may be nil to only return the result). An
// error-bounded plan without Options.Estimate consults the engine's
// WithEstimator.
func (e *Engine) CompressStream(ctx context.Context, src Stream, p Plan, sink Sink) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ev, err := e.resolve(p.Strategy, p.Budget)
	if err != nil {
		return nil, err
	}
	sev, ok := ev.(StreamEvaluator)
	if !ok {
		return nil, fmt.Errorf("pta: strategy %q: %w", p.Strategy, ErrNotStreaming)
	}
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Strategy: p.Strategy, Cause: err}
	}
	opts := e.planOptions(p)
	if p.Budget.Kind() == BudgetError && opts.Estimate == nil && e.estimator != nil {
		est, err := e.estimator(ctx, src.Sequence())
		if err != nil {
			return nil, fmt.Errorf("pta: %s: estimator: %w", p.Strategy, err)
		}
		opts.Estimate = &est
	}
	sres, serr := sev.EvaluateStream(ctx, src, p.Budget, opts)
	res, err := e.finish(p, sres, serr)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		for i, row := range res.Series.Rows {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, &CanceledError{Strategy: p.Strategy, Cause: err}
				}
			}
			if err := sink.Emit(row); err != nil {
				return nil, fmt.Errorf("pta: %s: sink: %w", p.Strategy, err)
			}
		}
		if err := sink.Close(res); err != nil {
			return nil, fmt.Errorf("pta: %s: sink close: %w", p.Strategy, err)
		}
	}
	return res, nil
}
