package pta

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// funcEvaluator adapts per-budget-kind functions to the Evaluator interface.
// A nil function means the kind is unsupported. Exact dynamic-programming
// strategies additionally carry their pruning flags (dp=true), which lets
// the engine amortize several budgets on one series through core.DPMulti.
type funcEvaluator struct {
	name, desc string
	size       func(ctx context.Context, s *Series, c int, opts Options) (*Result, error)
	errb       func(ctx context.Context, s *Series, eps float64, opts Options) (*Result, error)

	dp             bool // exact DP evaluator: eligible for shared-matrix multi-budget runs
	pruneI, pruneJ bool // the Section 5.3 bounds the DP applies
}

func (f *funcEvaluator) Name() string        { return f.name }
func (f *funcEvaluator) Description() string { return f.desc }

func (f *funcEvaluator) Supports(k BudgetKind) bool {
	switch k {
	case BudgetSize:
		return f.size != nil
	case BudgetError:
		return f.errb != nil
	}
	return false
}

func (f *funcEvaluator) Evaluate(ctx context.Context, s *Series, b Budget, opts Options) (*Result, error) {
	switch b.Kind() {
	case BudgetSize:
		if f.size == nil {
			return nil, ErrBudgetKind
		}
		return f.size(ctx, s, b.C(), opts)
	case BudgetError:
		if f.errb == nil {
			return nil, ErrBudgetKind
		}
		return f.errb(ctx, s, b.Eps(), opts)
	}
	return nil, ErrBudgetKind
}

// multiDP reports the DP pruning flags when the evaluator is an exact
// dynamic program, making it eligible for Engine.CompressMany's
// shared-matrix amortization.
func (f *funcEvaluator) multiDP() (pruneI, pruneJ, ok bool) {
	return f.pruneI, f.pruneJ, f.dp
}

// streamFuncEvaluator additionally serves streams.
type streamFuncEvaluator struct {
	funcEvaluator
	streamSize func(ctx context.Context, src Stream, c int, opts Options) (*Result, error)
	streamErrb func(ctx context.Context, src Stream, eps float64, opts Options) (*Result, error)
}

func (f *streamFuncEvaluator) EvaluateStream(ctx context.Context, src Stream, b Budget, opts Options) (*Result, error) {
	switch b.Kind() {
	case BudgetSize:
		if f.streamSize == nil {
			return nil, ErrBudgetKind
		}
		return f.streamSize(ctx, src, b.C(), opts)
	case BudgetError:
		if f.streamErrb == nil {
			return nil, ErrBudgetKind
		}
		return f.streamErrb(ctx, src, b.Eps(), opts)
	}
	return nil, ErrBudgetKind
}

// parallelDPEvaluator is a fully pruned exact DP evaluator that can also
// decompose its evaluation over maximal adjacent runs: the group-parallel
// execution path of the engine (core.PTAcParallel / core.PTAeParallel).
type parallelDPEvaluator struct {
	funcEvaluator
}

// streamDPEvaluator makes the fully pruned exact DP stream-capable: the
// stream is materialized and answered by an incremental core.Solver, whose
// row-at-a-time Deepen path auto-selects the online monotone fill
// (FillOnline) on certified data. Unlike the greedy gPTA evaluators this is
// not bounded-memory — exactness requires the whole input — but it lets a
// CompressStream pipeline keep one code path while choosing exact results,
// and error budgets need no (N, EMax) estimate: the exact SSEmax is
// computed after materialization.
type streamDPEvaluator struct {
	parallelDPEvaluator
}

func (f *streamDPEvaluator) EvaluateStream(ctx context.Context, src Stream, b Budget, opts Options) (*Result, error) {
	seq := src.Sequence()
	var rows []Row
	for {
		row, ok := src.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	s := seq.WithRows(rows)
	if s.Len() == 0 {
		// The batch entry points own the empty-input semantics; the solver
		// refuses empty relations.
		return f.Evaluate(ctx, s, b, opts)
	}
	sv, err := core.NewSolver(s, opts.coreOptions(), true, true)
	if err != nil {
		return nil, err
	}
	switch b.Kind() {
	case BudgetSize:
		return fromDP(sv.SolveSize(ctx, b.C()))
	case BudgetError:
		return fromDP(sv.SolveError(ctx, b.Eps()))
	}
	return nil, ErrBudgetKind
}

func (f *parallelDPEvaluator) EvaluateParallel(ctx context.Context, s *Series, b Budget, opts Options, workers int) (*Result, error) {
	copts := opts.coreOptionsCtx(ctx)
	switch b.Kind() {
	case BudgetSize:
		return fromDP(core.PTAcParallel(s, b.C(), copts, workers))
	case BudgetError:
		return fromDP(core.PTAeParallel(s, b.Eps(), copts, workers))
	}
	return nil, ErrBudgetKind
}

// fromDP packages an exact-evaluation outcome.
func fromDP(res *core.DPResult, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return &Result{
		Series: res.Sequence,
		C:      res.C,
		Error:  res.Error,
		Stats: Stats{
			Cells:         res.Stats.Cells,
			InnerIters:    res.Stats.InnerIters,
			EnvelopeSkips: res.Stats.EnvelopeSkips,
		},
	}, nil
}

// fromGreedy packages a greedy-evaluation outcome.
func fromGreedy(res *core.GreedyResult, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return &Result{
		Series: res.Sequence,
		C:      res.C,
		Error:  res.Error,
		Stats:  Stats{Merges: res.Merges, MaxHeap: res.MaxHeap, ReadAhead: res.ReadAhead},
	}, nil
}

// resolveEstimate yields the (N, EMax) estimate for an error-bounded greedy
// run: the caller's override when set, the exact values otherwise.
func resolveEstimate(s *Series, opts Options) (Estimate, error) {
	if opts.Estimate != nil {
		return *opts.Estimate, nil
	}
	return core.ExactEstimate(s, opts.coreOptions())
}

// dpStrategy builds an exact dynamic-programming evaluator for one pruning
// mode. The fully pruned mode (the paper's PTAc/PTAe proper) additionally
// supports run-decomposed parallel evaluation.
func dpStrategy(name, desc string, mode core.PruneMode) Evaluator {
	fe := funcEvaluator{
		name: name, desc: desc,
		dp:     true,
		pruneI: mode == core.PruneIMax || mode == core.PruneBoth,
		pruneJ: mode == core.PruneJMin || mode == core.PruneBoth,
		size: func(ctx context.Context, s *Series, c int, opts Options) (*Result, error) {
			return fromDP(core.PTAcAblation(s, c, opts.coreOptionsCtx(ctx), mode))
		},
		errb: func(ctx context.Context, s *Series, eps float64, opts Options) (*Result, error) {
			return fromDP(core.PTAeAblation(s, eps, opts.coreOptionsCtx(ctx), mode))
		},
	}
	if mode == core.PruneBoth {
		return &streamDPEvaluator{parallelDPEvaluator{funcEvaluator: fe}}
	}
	return &fe
}

func init() {
	// Exact dynamic programming (Section 5). "ptac" and "ptae" are the
	// paper's named entry points; both resolve to the same pruned DP engine
	// and accept both budget kinds.
	Register(dpStrategy("ptac",
		"exact size-bounded DP with gap/group pruning (PTAc, Fig. 7)", core.PruneBoth))
	Register(dpStrategy("ptae",
		"exact error-bounded DP with gap/group pruning (PTAe, Fig. 8)", core.PruneBoth))
	Register(dpStrategy("dpbasic",
		"exact DP without search-space pruning (Section 5.1 baseline)", core.PruneNone))
	Register(dpStrategy("ptac-imax",
		"exact DP, column bound imax only (Section 5.3 ablation)", core.PruneIMax))
	Register(dpStrategy("ptac-jmin",
		"exact DP, split-point bound jmin only (Section 5.3 ablation)", core.PruneJMin))

	// Run-decomposed multicore exact evaluation (engineering extension).
	// Engine.Compress with WithParallelism reaches the same code path for
	// plain "ptac"/"ptae"; this registry entry keeps the decomposition
	// directly addressable and always uses every core.
	Register(&funcEvaluator{
		name: "ptac-parallel",
		desc: "exact DP decomposed over maximal runs, evaluated on all cores",
		size: func(ctx context.Context, s *Series, c int, opts Options) (*Result, error) {
			return fromDP(core.PTAcParallel(s, c, opts.coreOptionsCtx(ctx), 0))
		},
	})

	// Greedy merging strategy (Section 6.1).
	Register(&funcEvaluator{
		name: "gms",
		desc: "greedy merging of the most similar adjacent pair (GMS, Theorem 1)",
		size: func(ctx context.Context, s *Series, c int, opts Options) (*Result, error) {
			return fromGreedy(core.GMS(s, c, opts.coreOptionsCtx(ctx)))
		},
		errb: func(ctx context.Context, s *Series, eps float64, opts Options) (*Result, error) {
			return fromGreedy(core.GMSError(s, eps, opts.coreOptionsCtx(ctx)))
		},
	})

	// Gap-bridging greedy merging (the paper's first future-work item):
	// merges may cross temporal gaps within a group, so sizes below cmin
	// (down to the group count) become reachable.
	Register(&funcEvaluator{
		name: "gms-bridged",
		desc: "greedy merging that may bridge temporal gaps within a group",
		size: func(ctx context.Context, s *Series, c int, opts Options) (*Result, error) {
			return fromGreedy(core.GMSBridged(s, c, opts.coreOptionsCtx(ctx)))
		},
	})

	// Streaming greedy evaluators with δ read-ahead (Section 6.2). Both
	// accept both budget kinds; they differ in which bound they stream
	// natively and serve as each other's dual for the opposite kind.
	gptacSize := func(ctx context.Context, src Stream, c int, opts Options) (*Result, error) {
		return fromGreedy(core.GPTAc(src, c, opts.delta(), opts.coreOptionsCtx(ctx)))
	}
	gptaeErrb := func(ctx context.Context, src Stream, eps float64, opts Options) (*Result, error) {
		if opts.Estimate == nil {
			return nil, fmt.Errorf("error-bounded streaming needs Options.Estimate (N, EMax)")
		}
		return fromGreedy(core.GPTAe(src, eps, opts.delta(), *opts.Estimate, opts.coreOptionsCtx(ctx)))
	}
	memSize := func(ctx context.Context, s *Series, c int, opts Options) (*Result, error) {
		return gptacSize(ctx, NewStream(s), c, opts)
	}
	memErrb := func(ctx context.Context, s *Series, eps float64, opts Options) (*Result, error) {
		est, err := resolveEstimate(s, opts)
		if err != nil {
			return nil, err
		}
		return fromGreedy(core.GPTAe(NewStream(s), eps, opts.delta(), est, opts.coreOptionsCtx(ctx)))
	}
	Register(&streamFuncEvaluator{
		funcEvaluator: funcEvaluator{
			name: "gptac",
			desc: "streaming greedy, size-bounded, δ read-ahead (gPTAc, Fig. 11)",
			size: memSize, errb: memErrb,
		},
		streamSize: gptacSize, streamErrb: gptaeErrb,
	})
	Register(&streamFuncEvaluator{
		funcEvaluator: funcEvaluator{
			name: "gptae",
			desc: "streaming greedy, error-bounded via (N̂, Êmax) estimates (gPTAε, Fig. 13)",
			size: memSize, errb: memErrb,
		},
		streamSize: gptacSize, streamErrb: gptaeErrb,
	})
}
