package pta

import (
	"fmt"

	"repro/internal/mdta"
	"repro/internal/temporal"
)

// Relation is a general temporal relation — the raw input of the
// aggregation operators (ITA, STA, MDTA) whose results PTA compresses.
type Relation = temporal.Relation

// MDTAQuery is a multi-dimensional temporal aggregation query (Böhlen,
// Gamper, Jensen; EDBT 2006 — reference [4] of the paper): the grouping
// attributes its group specifications constrain and the aggregate
// functions to evaluate.
type MDTAQuery = mdta.Query

// MDTAGroupSpec is one user-defined MDTA aggregation group: the
// grouping-attribute values tuples must match (nil matches every tuple —
// an aggregation no ITA or STA query can express) and the time interval
// the group reports on.
type MDTAGroupSpec = mdta.GroupSpec

// SeriesFromMDTA evaluates MDTA group specifications over a temporal
// relation and returns the result as a Series ready for compression — the
// bridge from "aggregate with fully flexible groups" to "reduce to a
// budget". The specs must form a valid sequential relation (per value
// combination: disjoint, chronologically ordered intervals); overlapping
// specs yield a general temporal relation that PTA cannot reduce, reported
// as ErrSeriesShape.
//
// The helpers MDTAInstantSpecs and MDTASpanSpecs build the two regular
// decompositions (one group per instant — the ITA special case — and one
// group per span — the STA special case); hand-written specs cover the
// irregular cases, e.g. business quarters of differing lengths or
// per-group reporting calendars.
func SeriesFromMDTA(r *Relation, q MDTAQuery, specs []MDTAGroupSpec) (*Series, error) {
	seq, err := mdta.Eval(r, q, specs)
	if err != nil {
		return nil, fmt.Errorf("pta: mdta: %w", err)
	}
	seq.Sort()
	if err := seq.Validate(); err != nil {
		return nil, fmt.Errorf("pta: mdta result is not a sequential relation: %v: %w", err, ErrSeriesShape)
	}
	return seq, nil
}

// MDTAInstantSpecs builds one MDTA group per (value combination, instant)
// over the span — the decomposition whose evaluation coincides with ITA.
func MDTAInstantSpecs(valueCombos [][]temporal.Datum, span Interval) []MDTAGroupSpec {
	return mdta.InstantSpecs(valueCombos, span)
}

// MDTASpanSpecs builds one MDTA group per (value combination, span) — the
// decomposition equal to span temporal aggregation (STA).
func MDTASpanSpecs(valueCombos [][]temporal.Datum, spans []Interval) []MDTAGroupSpec {
	return mdta.SpanSpecs(valueCombos, spans)
}

// MDTAValueCombos lists the distinct grouping-attribute value combinations
// of the relation in canonical order, for feeding the spec builders.
func MDTAValueCombos(r *Relation, groupBy []string) ([][]temporal.Datum, error) {
	return mdta.ValueCombos(r, groupBy)
}
