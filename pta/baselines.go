package pta

import (
	"context"
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/temporal"
)

// This file adapts the classic time-series approximation baselines (PAA,
// PLA, APCA) to the Evaluator interface, so consumers can swap them against
// the PTA strategies under the same Budget. Like the paper observes, these
// techniques "cannot cope with multiple aggregation groups and temporal
// gaps": they require a single-group, gap-free, one-dimensional series and
// report ErrSeriesShape otherwise.
//
// Each baseline picks segment boundaries its own way; segment values are the
// true means of the covered data (the merge operator ⊕ restricted to one
// dimension), the returned Series is that step function over the input's
// timeline, and Error is SSE(input, Series) — directly comparable with the
// PTA results. Error budgets are served by searching the smallest segment
// count whose error fits the bound.

// baseline adapts one boundary-picking method to the Evaluator interface.
type baseline struct {
	name, desc string
	// segments reduces the expanded sample vector to at most c constant
	// segments anchored at start.
	segments func(vals []float64, c int, start Chronon) ([]approx.Segment, error)
}

func (b *baseline) Name() string             { return b.name }
func (b *baseline) Description() string      { return b.desc }
func (b *baseline) Supports(BudgetKind) bool { return true }

// prep validates the series shape and expands it to one sample per chronon.
func (b *baseline) prep(s *Series) (*approx.Series, error) {
	if s.P() != 1 {
		return nil, fmt.Errorf("%w: %s needs exactly one aggregate attribute, have %d",
			ErrSeriesShape, b.name, s.P())
	}
	series, err := approx.FromSequence(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSeriesShape, err)
	}
	return series, nil
}

// evalSize runs the method at one segment budget and scores it.
func (b *baseline) evalSize(s *Series, series *approx.Series, c int, opts Options) (*Result, error) {
	segs, err := b.segments(series.Dims[0], c, series.Start)
	if err != nil {
		return nil, err
	}
	return b.score(s, segs, opts)
}

// score packages a segmentation as a Result with its true error.
func (b *baseline) score(s *Series, segs []approx.Segment, opts Options) (*Result, error) {
	rows := make([]Row, len(segs))
	gid := s.Rows[0].Group
	for i, sg := range segs {
		rows[i] = Row{Group: gid, Aggs: append([]float64(nil), sg.Vals...), T: sg.T}
	}
	z := s.WithRows(rows)
	sse, err := core.SSEBetween(s, z, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Series: z, C: len(rows), Error: sse}, nil
}

func (b *baseline) Evaluate(ctx context.Context, s *Series, bud Budget, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	series, err := b.prep(s)
	if err != nil {
		return nil, err
	}
	switch bud.Kind() {
	case BudgetSize:
		return b.evalSize(s, series, bud.C(), opts)
	case BudgetError:
		emax, err := MaxError(s, opts)
		if err != nil {
			return nil, err
		}
		return b.evalError(s, series, bud.Eps()*emax, opts)
	}
	return nil, ErrBudgetKind
}

// evalError finds the smallest segment count whose error fits the bound: a
// binary search assuming the error shrinks with the budget, then a linear
// verification pass to absorb local non-monotonicity. At c = Len() every
// method reproduces the series exactly, so the search always succeeds.
func (b *baseline) evalError(s *Series, series *approx.Series, bound float64, opts Options) (*Result, error) {
	accept := bound*(1+1e-9) + 1e-9
	n := series.Len()
	cache := map[int]*Result{}
	at := func(c int) (*Result, error) {
		if r, ok := cache[c]; ok {
			return r, nil
		}
		r, err := b.evalSize(s, series, c, opts)
		if err != nil {
			return nil, err
		}
		cache[c] = r
		return r, nil
	}
	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo)/2
		r, err := at(mid)
		if err != nil {
			return nil, err
		}
		if r.Error <= accept {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for c := lo; c <= n; c++ {
		r, err := at(c)
		if err != nil {
			return nil, err
		}
		if r.Error <= accept {
			return r, nil
		}
	}
	// Some methods cannot reproduce the series exactly at any budget (APCA
	// inherits boundaries from a padded wavelet decomposition); fall back to
	// the exact step segmentation — one segment per maximal constant run,
	// zero error.
	return b.score(s, approx.PlateausToSegments(series.Dims[0], series.Start), opts)
}

// plaSegments picks boundaries with the online swing filter (piecewise
// linear approximation with an L∞ guarantee): the smallest tolerance whose
// segment count fits the budget is found by bisection, and when the
// tolerance-0 segmentation still has fewer segments than the budget allows,
// the worst segments are split at their best split points until the budget
// is used — this drives the error to zero as c approaches the sample count,
// which the error-budget search relies on. Values are the true segment
// means.
func plaSegments(vals []float64, c int, start Chronon) ([]approx.Segment, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("pla of an empty series")
	}
	if c < 1 {
		return nil, fmt.Errorf("pla segment count %d, want ≥ 1", c)
	}
	c = min(c, n)

	// Prefix sums for O(1) mean-fit SSE of any sample range.
	sum := make([]float64, n+1)
	sq := make([]float64, n+1)
	for i, v := range vals {
		sum[i+1] = sum[i] + v
		sq[i+1] = sq[i] + v*v
	}
	rangeSSE := func(a, b int) float64 { // half-open [a, b)
		l := float64(b - a)
		sv := sum[b] - sum[a]
		e := sq[b] - sq[a] - sv*sv/l
		if e < 0 {
			return 0
		}
		return e
	}

	countAt := func(tol float64) (int, []approx.LinearSegment, error) {
		segs, err := approx.PLA(vals, tol, start)
		return len(segs), segs, err
	}
	lo, hi := 0.0, 0.0
	for _, v := range vals {
		hi = max(hi, v)
		lo = min(lo, v)
	}
	span := hi - lo // tolerance that always yields one segment
	cnt, segs, err := countAt(0)
	if err != nil {
		return nil, err
	}
	if cnt > c {
		tlo, thi := 0.0, span
		for i := 0; i < 64 && thi-tlo > 1e-12*(1+span); i++ {
			mid := (tlo + thi) / 2
			k, _, err := countAt(mid)
			if err != nil {
				return nil, err
			}
			if k <= c {
				thi = mid
			} else {
				tlo = mid
			}
		}
		if cnt, segs, err = countAt(thi); err != nil {
			return nil, err
		}
		if cnt > c { // swing-filter counts are only near-monotone in tol
			if _, segs, err = countAt(span); err != nil {
				return nil, err
			}
		}
	}

	// Convert to half-open sample ranges, then spend any leftover budget on
	// splitting the ranges with the largest mean-fit error.
	type rng struct{ a, b int }
	ranges := make([]rng, len(segs))
	for i, sg := range segs {
		ranges[i] = rng{int(sg.T.Start - start), int(sg.T.End-start) + 1}
	}
	for len(ranges) < c {
		worst, worstSSE := -1, 0.0
		for i, r := range ranges {
			if r.b-r.a < 2 {
				continue
			}
			if e := rangeSSE(r.a, r.b); e > worstSSE {
				worst, worstSSE = i, e
			}
		}
		if worst < 0 {
			break // every range is a single sample or already exact
		}
		r := ranges[worst]
		bestCut, bestErr := r.a+1, core.Inf
		for cut := r.a + 1; cut < r.b; cut++ {
			if e := rangeSSE(r.a, cut) + rangeSSE(cut, r.b); e < bestErr {
				bestCut, bestErr = cut, e
			}
		}
		ranges = append(ranges[:worst+1], append([]rng{{bestCut, r.b}}, ranges[worst+1:]...)...)
		ranges[worst] = rng{r.a, bestCut}
	}

	out := make([]approx.Segment, len(ranges))
	for i, r := range ranges {
		out[i] = approx.Segment{
			T: temporal.Interval{
				Start: start + Chronon(r.a),
				End:   start + Chronon(r.b-1),
			},
			Vals: []float64{(sum[r.b] - sum[r.a]) / float64(r.b-r.a)},
		}
	}
	return out, nil
}

func init() {
	Register(&baseline{
		name: "paa",
		desc: "piecewise aggregate approximation: equal-length segment means (Keogh & Pazzani)",
		segments: func(vals []float64, c int, start Chronon) ([]approx.Segment, error) {
			return approx.PAA(vals, c, start)
		},
	})
	Register(&baseline{
		name: "apca",
		desc: "adaptive piecewise constant approximation from top wavelet coefficients (Chakrabarti et al.)",
		segments: func(vals []float64, c int, start Chronon) ([]approx.Segment, error) {
			return approx.APCA(vals, c, start)
		},
	})
	Register(&baseline{
		name:     "pla",
		desc:     "swing-filter piecewise linear boundaries with constant mean fit (Elmeleegy et al.)",
		segments: plaSegments,
	})
}
