package pta_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/pta"
)

// TestMatrixSetMatchesEngine: answers from a warm matrix set are identical
// to fresh Engine evaluations across both budget kinds, and repeats cost no
// new matrix cells.
func TestMatrixSetMatchesEngine(t *testing.T) {
	seq := grouped(t)
	eng, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	set, err := pta.NewMatrixSet(seq, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	budgets := []pta.Budget{
		pta.Size(seq.CMin()),
		pta.Size(seq.Len() / 4),
		pta.Size(seq.Len() / 2),
		pta.ErrorBound(0.05),
		pta.ErrorBound(0.2),
	}
	for _, b := range budgets {
		strategy := "ptac"
		if b.Kind() == pta.BudgetError {
			strategy = "ptae"
		}
		want, err := eng.Compress(ctx, seq, pta.Plan{Strategy: strategy, Budget: b})
		if err != nil {
			t.Fatalf("engine %v: %v", b, err)
		}
		got, err := set.Compress(ctx, b)
		if err != nil {
			t.Fatalf("matrix set %v: %v", b, err)
		}
		if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
			t.Errorf("%v: set (C=%d, E=%g), engine (C=%d, E=%g)",
				b, got.C, got.Error, want.C, want.Error)
		}
		if !got.Series.Equal(want.Series, 1e-9) {
			t.Errorf("%v: rows differ between set and engine", b)
		}
		if got.Strategy != "ptac" || got.Budget != b {
			t.Errorf("%v: provenance (%q, %v) not stamped", b, got.Strategy, got.Budget)
		}
	}
	// Warm repeats: no new cells.
	warmCells := func() int64 {
		res, err := set.Compress(ctx, budgets[1])
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cells
	}
	first := warmCells()
	if second := warmCells(); second != first {
		t.Errorf("repeated budget filled %d new cells, want 0", second-first)
	}
	if set.Rows() == 0 || set.N() != seq.Len() || set.MemBytes() <= 0 {
		t.Errorf("set introspection: Rows=%d N=%d Mem=%d", set.Rows(), set.N(), set.MemBytes())
	}
}

// TestMatrixSetTypedErrors: the set maps failures onto the same typed facade
// errors as the Engine.
func TestMatrixSetTypedErrors(t *testing.T) {
	seq := grouped(t)
	set, err := pta.NewMatrixSet(seq, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var inf *pta.InfeasibleBudgetError
	_, err = set.Compress(ctx, pta.Size(seq.CMin()-1))
	if !errors.Is(err, pta.ErrBudgetInfeasible) || !errors.As(err, &inf) {
		t.Errorf("infeasible size: %v", err)
	} else if inf.CMin != seq.CMin() {
		t.Errorf("InfeasibleBudgetError.CMin = %d, want %d", inf.CMin, seq.CMin())
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := set.Compress(canceled, pta.Size(seq.CMin())); !errors.Is(err, pta.ErrCanceled) {
		t.Errorf("canceled compress: %v", err)
	}
	// The set survives the aborted call.
	if _, err := set.Compress(ctx, pta.Size(seq.CMin())); err != nil {
		t.Errorf("compress after cancellation: %v", err)
	}

	if _, err := set.Compress(ctx, pta.Budget{}); err == nil {
		t.Error("zero budget accepted")
	}

	if _, err := pta.NewMatrixSet(seq, "nope", pta.Options{}); !errors.Is(err, pta.ErrUnknownStrategy) {
		t.Errorf("unknown strategy: %v", err)
	}
	if _, err := pta.NewMatrixSet(seq, "gms", pta.Options{}); err == nil {
		t.Error("NewMatrixSet accepted a non-DP strategy")
	}
	if _, err := pta.NewMatrixSet(seq.WithRows(nil), "ptac", pta.Options{}); err == nil {
		t.Error("NewMatrixSet accepted an empty series")
	}
}

// TestDPClass pins the cache-class mapping: ptac and ptae share a class,
// ablations get their own, non-DP strategies are not cacheable.
func TestDPClass(t *testing.T) {
	cases := []struct {
		strategy, class string
		ok              bool
	}{
		{"ptac", "dp+imax+jmin", true},
		{"ptae", "dp+imax+jmin", true},
		{"dpbasic", "dp", true},
		{"ptac-imax", "dp+imax", true},
		{"ptac-jmin", "dp+jmin", true},
		{"ptac-parallel", "", false},
		{"gms", "", false},
		{"gptac", "", false},
		{"paa", "", false},
		{"amnesic", "", false},
		{"nope", "", false},
	}
	for _, tc := range cases {
		class, ok := pta.DPClass(tc.strategy)
		if class != tc.class || ok != tc.ok {
			t.Errorf("DPClass(%q) = (%q, %v), want (%q, %v)",
				tc.strategy, class, ok, tc.class, tc.ok)
		}
	}
}

// TestFingerprint: identical content fingerprints identically regardless of
// dictionary id assignment; any content change moves the fingerprint.
func TestFingerprint(t *testing.T) {
	seq := projITA(t)
	fp := pta.Fingerprint(seq)
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex", fp)
	}
	if got := pta.Fingerprint(seq.Clone()); got != fp {
		t.Error("clone fingerprints differently")
	}

	// Same rows interned into a fresh dictionary (different id order).
	rebuilt := pta.NewSeries(seq.GroupAttrs, seq.AggNames)
	for i := len(seq.Rows) - 1; i >= 0; i-- {
		r := seq.Rows[i]
		rebuilt.Rows = append(rebuilt.Rows, pta.Row{
			Group: rebuilt.Groups.Intern(seq.Groups.Values(r.Group)),
			Aggs:  append([]float64(nil), r.Aggs...),
			T:     r.T,
		})
	}
	rebuilt.Sort()
	if got := pta.Fingerprint(rebuilt); got != fp {
		t.Error("re-interned series fingerprints differently")
	}

	mutate := seq.Clone()
	mutate.Rows[0].Aggs[0] += 1
	if pta.Fingerprint(mutate) == fp {
		t.Error("aggregate change kept the fingerprint")
	}
	shifted := seq.Clone()
	shifted.Rows[0].T.End++
	if pta.Fingerprint(shifted) == fp {
		t.Error("interval change kept the fingerprint")
	}
	renamed := seq.Clone()
	renamed.AggNames = []string{"Other"}
	if pta.Fingerprint(renamed) == fp {
		t.Error("schema change kept the fingerprint")
	}
}
