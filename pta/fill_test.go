package pta_test

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/temporal"
	"repro/pta"
)

// fillSeries builds a small two-group series with a counter-like ramp, the
// shape the kernel certifies for the monotone fills.
func fillSeries(t *testing.T) *pta.Series {
	t.Helper()
	s := pta.NewSeries([]pta.Attribute{{Name: "g", Kind: temporal.KindString}}, []string{"v"})
	for gi, g := range []string{"a", "b"} {
		gid := s.Groups.Intern([]temporal.Datum{temporal.String(g)})
		base := 10 + 190*float64(gi)
		for i := 0; i < 24; i++ {
			v := base + float64(i*i) // convex ramp: monotone, distinct costs
			s.Rows = append(s.Rows, pta.Row{Group: gid, Aggs: []float64{v},
				T: pta.Interval{Start: pta.Chronon(i * 2), End: pta.Chronon(i*2 + 1)}})
		}
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFillAlgoResultsIdentical: the same plan evaluated under every fill
// algorithm — engine default via pta.WithFillAlgo and per-plan override via
// pta.Options.FillAlgo — returns identical reductions.
func TestFillAlgoResultsIdentical(t *testing.T) {
	s := fillSeries(t)
	ctx := context.Background()
	base, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	plan := pta.Plan{Strategy: "ptac", Budget: pta.Size(7)}
	want, err := base.Compress(ctx, s, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []pta.FillAlgo{pta.FillPruned, pta.FillDC, pta.FillSMAWK} {
		eng, err := pta.New(pta.WithFillAlgo(algo))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Compress(ctx, s, plan)
		if err != nil {
			t.Fatalf("algo %v: %v", algo, err)
		}
		if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
			!reflect.DeepEqual(got.Series.Rows, want.Series.Rows) {
			t.Fatalf("algo %v: result diverged (C=%d err=%v, want C=%d err=%v)",
				algo, got.C, got.Error, want.C, want.Error)
		}
		override := plan
		override.Options = &pta.Options{FillAlgo: algo}
		got, err = base.Compress(ctx, s, override)
		if err != nil {
			t.Fatalf("override %v: %v", algo, err)
		}
		if got.C != want.C || !reflect.DeepEqual(got.Series.Rows, want.Series.Rows) {
			t.Fatalf("override %v: result diverged", algo)
		}
	}
}

// TestDPClassWith covers the per-algo cache classes: pta.FillAuto keeps the
// shared class, pinned algorithms split it, non-DP strategies have none.
func TestDPClassWith(t *testing.T) {
	shared, ok := pta.DPClass("ptac")
	if !ok || shared != "dp+imax+jmin" {
		t.Fatalf("pta.DPClass(ptac) = %q, %v", shared, ok)
	}
	if auto, _ := pta.DPClassWith("ptac", pta.FillAuto); auto != shared {
		t.Errorf("pta.FillAuto class %q != pta.DPClass %q", auto, shared)
	}
	seen := map[string]bool{shared: true}
	for _, algo := range []pta.FillAlgo{pta.FillPruned, pta.FillDC, pta.FillSMAWK} {
		class, ok := pta.DPClassWith("ptae", algo)
		if !ok {
			t.Fatalf("pta.DPClassWith(ptae, %v) not cacheable", algo)
		}
		if !strings.HasPrefix(class, shared+"/fill=") || seen[class] {
			t.Errorf("class %q for %v: want distinct %q/fill=... classes", class, algo, shared)
		}
		seen[class] = true
	}
	if _, ok := pta.DPClassWith("gms", pta.FillDC); ok {
		t.Error("gms must not be matrix-cacheable")
	}
}

// TestMatrixSetClassReflectsFill: a set built with a pinned algorithm
// carries the per-algo class and answers budgets identically to the engine.
func TestMatrixSetClassReflectsFill(t *testing.T) {
	s := fillSeries(t)
	ctx := context.Background()
	set, err := pta.NewMatrixSet(s, "ptac", pta.Options{FillAlgo: pta.FillSMAWK})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := pta.DPClassWith("ptac", pta.FillSMAWK); set.Class() != want {
		t.Fatalf("Class() = %q, want %q", set.Class(), want)
	}
	got, err := set.Compress(ctx, pta.Size(6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pta.Compress(s, "ptac", pta.Size(6), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
		!reflect.DeepEqual(got.Series.Rows, want.Series.Rows) {
		t.Fatal("pinned-fill matrix set diverged from the engine result")
	}
}

// TestCompressManySharedKernel: a mixed batch — two DP classes plus a
// non-DP strategy — returns exactly the per-plan Compress results (the
// shared-kernel amortization must be invisible).
func TestCompressManySharedKernel(t *testing.T) {
	s := fillSeries(t)
	ctx := context.Background()
	eng, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	plans := []pta.Plan{
		{Strategy: "ptac", Budget: pta.Size(8)},
		{Strategy: "ptae", Budget: pta.ErrorBound(0.05)},
		{Strategy: "dpbasic", Budget: pta.Size(6)},
		{Strategy: "gms", Budget: pta.Size(8)},
		{Strategy: "ptac", Budget: pta.Size(5)},
	}
	got, err := eng.CompressMany(ctx, s, plans)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		want, err := eng.Compress(ctx, s, p)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].C != want.C || !reflect.DeepEqual(got[i].Series.Rows, want.Series.Rows) {
			t.Fatalf("plan %d (%s %v): CompressMany diverged from Compress", i, p.Strategy, p.Budget)
		}
		if got[i].Strategy != p.Strategy {
			t.Fatalf("plan %d: stamped strategy %q", i, got[i].Strategy)
		}
	}
}
