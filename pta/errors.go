package pta

import (
	"errors"
	"fmt"
)

// Sentinel errors of the facade. Every error the package returns matches
// exactly one of them under errors.Is; the typed errors below additionally
// carry the offending name, budget or cause for errors.As.
var (
	// ErrUnknownStrategy reports a strategy name absent from the registry.
	ErrUnknownStrategy = errors.New("unknown strategy")
	// ErrBudgetKind reports a budget kind the strategy does not support.
	ErrBudgetKind = errors.New("unsupported budget kind")
	// ErrBudgetInfeasible reports a budget no sequence of adjacent merges
	// can meet: a size bound below the input's cmin.
	ErrBudgetInfeasible = errors.New("infeasible budget")
	// ErrCanceled reports an evaluation aborted by context cancellation or
	// deadline expiry. The concrete error also matches context.Canceled or
	// context.DeadlineExceeded under errors.Is.
	ErrCanceled = errors.New("compression canceled")
	// ErrNotStreaming reports a CompressStream call on a strategy that
	// needs its whole input in memory.
	ErrNotStreaming = errors.New("strategy is not stream-capable")
	// ErrSeriesShape reports an input outside a strategy's applicability:
	// the classic time-series baselines need a single-group, gap-free,
	// one-dimensional series.
	ErrSeriesShape = errors.New("series shape unsupported by strategy")
)

// UnknownStrategyError is the concrete error behind ErrUnknownStrategy: it
// names the strategy that failed to resolve and lists the registry at the
// time of the lookup.
type UnknownStrategyError struct {
	// Name is the strategy that was requested.
	Name string
	// Known are the registered strategy names.
	Known []string
}

func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("pta: strategy %q: %v (have %v)", e.Name, ErrUnknownStrategy, e.Known)
}

// Is matches ErrUnknownStrategy.
func (e *UnknownStrategyError) Is(target error) bool { return target == ErrUnknownStrategy }

// InfeasibleBudgetError is the concrete error behind ErrBudgetInfeasible: a
// size budget below the smallest size any reduction of the input can reach.
type InfeasibleBudgetError struct {
	// Strategy is the evaluator that rejected the budget.
	Strategy string
	// Budget is the rejected budget.
	Budget Budget
	// CMin is the smallest reachable reduction size of the input (the
	// number of maximal adjacent runs).
	CMin int
}

func (e *InfeasibleBudgetError) Error() string {
	return fmt.Sprintf("pta: %s: budget %v: %v (smallest reachable size is cmin=%d)",
		e.Strategy, e.Budget, ErrBudgetInfeasible, e.CMin)
}

// Is matches ErrBudgetInfeasible.
func (e *InfeasibleBudgetError) Is(target error) bool { return target == ErrBudgetInfeasible }

// CanceledError is the concrete error behind ErrCanceled. Unwrap exposes
// the cause, so errors.Is also matches context.Canceled or
// context.DeadlineExceeded as appropriate.
type CanceledError struct {
	// Strategy is the evaluator that was interrupted.
	Strategy string
	// Cause is the underlying context error chain.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("pta: %s: %v: %v", e.Strategy, ErrCanceled, e.Cause)
}

// Is matches ErrCanceled.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the context error.
func (e *CanceledError) Unwrap() error { return e.Cause }
