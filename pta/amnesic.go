package pta

import (
	"context"

	"repro/internal/amnesic"
)

// This file registers the age-weighted amnesic reduction (Palpanas et al.,
// ICDE 2004; discussed in Section 2.2 of the paper) as the "amnesic"
// strategy: a size-bounded online reduction in which older chronons
// tolerate more error than recent ones, controlled by a relative amnesic
// function RA(t). With RA ≡ 1 it degenerates to gPTAc with δ = 0.
//
// The function travels in Options.Amnesic; when nil, AmnesicLinearAge over
// the series' own time span applies, so the strategy works out of the box
// from the CLI and the registry sweep. Only size budgets are supported (an
// error budget has no amnesic reading: the paper notes that a constant
// absolute allowance already eliminates the amnesic effect).

// AmnesicConstant returns the amnesic function that ignores time; RA ≡ 1
// reproduces plain greedy streaming compression.
func AmnesicConstant(v float64) func(Chronon) float64 {
	return amnesic.Constant(v)
}

// AmnesicLinearAge returns a relative amnesic function growing linearly
// with age: RA(t) = 1 + slope·(now − t), clamped at 1 for t beyond now.
// Older chronons tolerate proportionally more error.
func AmnesicLinearAge(now Chronon, slope float64) func(Chronon) float64 {
	return amnesic.LinearAge(now, slope)
}

// defaultAmnesic derives the nil-Options amnesic function of a series:
// linear age relative to the newest chronon, sloped so the oldest chronon
// tolerates roughly double the error of the newest.
func defaultAmnesic(s *Series) func(Chronon) float64 {
	if s.Len() == 0 {
		return AmnesicConstant(1)
	}
	var lo, hi Chronon
	for i, r := range s.Rows {
		if i == 0 || r.T.Start < lo {
			lo = r.T.Start
		}
		if i == 0 || r.T.End > hi {
			hi = r.T.End
		}
	}
	span := float64(hi - lo)
	if span <= 0 {
		return AmnesicConstant(1)
	}
	return AmnesicLinearAge(hi, 1/span)
}

func init() {
	Register(&funcEvaluator{
		name: "amnesic",
		desc: "age-weighted online reduction: older chronons tolerate more error (Palpanas et al.)",
		size: func(ctx context.Context, s *Series, c int, opts Options) (*Result, error) {
			ra := amnesic.Func(opts.Amnesic)
			if ra == nil {
				ra = defaultAmnesic(s)
			}
			res, err := amnesic.ReduceSize(ctx, s, c, ra, opts.Weights)
			if err != nil {
				return nil, err
			}
			return &Result{
				Series: res.Sequence,
				C:      res.Sequence.Len(),
				Error:  res.Error,
				Stats:  Stats{MaxHeap: res.MaxHeap},
			}, nil
		},
	})
}
