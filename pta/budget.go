package pta

import (
	"fmt"
	"strconv"
	"strings"
)

// BudgetKind discriminates the two compression budgets of the paper: a size
// bound c (Definition 6) or an error bound ε (Definition 7).
type BudgetKind uint8

const (
	// BudgetSize bounds the result cardinality: at most c tuples.
	BudgetSize BudgetKind = iota + 1
	// BudgetError bounds the introduced error: at most ε·SSEmax, with
	// ε ∈ [0, 1] relative to the maximal merging error of the input.
	BudgetError
)

// String names the kind for messages and reports.
func (k BudgetKind) String() string {
	switch k {
	case BudgetSize:
		return "size"
	case BudgetError:
		return "error"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Budget is the unified compression budget every evaluator accepts: either a
// size bound c or an error bound ε. The zero Budget is invalid; construct
// budgets with Size or ErrorBound, or parse user input with ParseBudget.
type Budget struct {
	kind BudgetKind
	c    int
	eps  float64
}

// Size returns a size-bounded budget: reduce to at most c tuples. Evaluators
// require c ≥ cmin (the number of maximal adjacent runs) for exact semantics;
// greedy evaluators stop at cmin when c is below it.
func Size(c int) Budget { return Budget{kind: BudgetSize, c: c} }

// ErrorBound returns an error-bounded budget: reduce as far as possible
// while introducing at most eps·SSEmax error, eps ∈ [0, 1].
func ErrorBound(eps float64) Budget { return Budget{kind: BudgetError, eps: eps} }

// Kind reports which bound the budget carries.
func (b Budget) Kind() BudgetKind { return b.kind }

// C returns the size bound (meaningful only when Kind() == BudgetSize).
func (b Budget) C() int { return b.c }

// Eps returns the error bound (meaningful only when Kind() == BudgetError).
func (b Budget) Eps() float64 { return b.eps }

// IsZero reports whether the budget was never set.
func (b Budget) IsZero() bool { return b.kind == 0 }

// Validate checks the budget parameters.
func (b Budget) Validate() error {
	switch b.kind {
	case BudgetSize:
		if b.c < 1 {
			return fmt.Errorf("pta: size budget %d, want ≥ 1", b.c)
		}
	case BudgetError:
		if b.eps < 0 || b.eps > 1 {
			return fmt.Errorf("pta: error budget %v outside [0, 1]", b.eps)
		}
	default:
		return fmt.Errorf("pta: budget not set (use Size or ErrorBound)")
	}
	return nil
}

// String renders the budget in the form ParseBudget accepts.
func (b Budget) String() string {
	switch b.kind {
	case BudgetSize:
		return fmt.Sprintf("c=%d", b.c)
	case BudgetError:
		return fmt.Sprintf("eps=%g", b.eps)
	}
	return "unset"
}

// ParseBudget parses a budget from user input, e.g. a CLI flag. Accepted
// forms: "c=12" or "size=12" (size bound), "eps=0.05" or "error=0.05"
// (error bound), a bare integer "12" (size bound), and a bare decimal
// fraction "0.05" (error bound).
func ParseBudget(s string) (Budget, error) {
	s = strings.TrimSpace(s)
	if key, val, ok := strings.Cut(s, "="); ok {
		switch strings.TrimSpace(strings.ToLower(key)) {
		case "c", "size":
			c, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return Budget{}, fmt.Errorf("pta: bad size budget %q: %v", s, err)
			}
			b := Size(c)
			return b, b.Validate()
		case "eps", "error", "e":
			eps, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return Budget{}, fmt.Errorf("pta: bad error budget %q: %v", s, err)
			}
			b := ErrorBound(eps)
			return b, b.Validate()
		default:
			return Budget{}, fmt.Errorf("pta: unknown budget key %q (want c= or eps=)", key)
		}
	}
	if c, err := strconv.Atoi(s); err == nil {
		b := Size(c)
		return b, b.Validate()
	}
	if eps, err := strconv.ParseFloat(s, 64); err == nil {
		b := ErrorBound(eps)
		return b, b.Validate()
	}
	return Budget{}, fmt.Errorf("pta: cannot parse budget %q (want \"c=12\" or \"eps=0.05\")", s)
}
