package pta

import (
	"fmt"

	"repro/internal/core"
)

// MatrixSnapshot is the portable warm state of a MatrixSet: the filled DP
// rows (split points, per-row errors, the resumable last error row) plus
// the identifying class. It is what a persistent cache tier serializes to
// disk so a restarted worker answers previously-warm series without
// refilling a single matrix cell (internal/serve's cachestore wraps it in a
// versioned binary format keyed by content fingerprint).
//
// A snapshot is only meaningful together with the exact series it was
// taken over — it carries no series data. Callers establish that identity
// themselves (the serve layer keys spill files by Fingerprint, so a loaded
// snapshot always meets the series that produced it); RestoreMatrixSet
// validates shape and class, not content.
type MatrixSnapshot struct {
	Strategy string    // registry name the set was built for
	Class    string    // DPClassWith(strategy, fill) — must match on restore
	N        int       // series length the rows were filled for
	Filled   int       // rows 1..Filled are present
	RowErr   []float64 // E[k][n] per filled row, len Filled
	LastE    []float64 // E[Filled][0..n], len N+1
	Splits   []int32   // J rows, row-major, len Filled×(N+1)
	Bound    float64   // SSEmax when HasMax (error-budget normalization)
	HasMax   bool
}

// Snapshot copies the set's warm rows. A set that has answered no budget
// yet returns Filled == 0 (nothing worth persisting). A lazily restored set
// (RestoreMatrixSetLazy) materializes every outstanding row first; if its
// backing store has gone bad the WarmLostError surfaces here instead of a
// torn snapshot.
func (m *MatrixSet) Snapshot() (*MatrixSnapshot, error) {
	st, err := m.sv.State()
	if err != nil {
		return nil, err
	}
	return &MatrixSnapshot{
		Strategy: m.strategy,
		Class:    m.class,
		N:        st.N,
		Filled:   st.Filled,
		RowErr:   st.RowErr,
		LastE:    st.LastE,
		Splits:   st.Splits,
		Bound:    st.Bound,
		HasMax:   st.HasMax,
	}, nil
}

// RestoreMatrixSet rebuilds a warm MatrixSet from a snapshot: it constructs
// a fresh set over the series (computing the cost kernel, which needs the
// series anyway) and injects the snapshot's rows, so later budgets answer
// with zero fill work and deeper budgets resume where the snapshot
// stopped. The snapshot's class must match DPClassWith(strategy,
// opts.FillAlgo), and every shape is validated — a corrupt or mismatched
// snapshot returns an error and no set, leaving the caller to fall back to
// a cold build.
func RestoreMatrixSet(s *Series, strategy string, opts Options, snap *MatrixSnapshot) (*MatrixSet, error) {
	if snap == nil || snap.Filled == 0 {
		return nil, fmt.Errorf("pta: empty matrix snapshot")
	}
	class, ok := DPClassWith(strategy, opts.FillAlgo)
	if !ok {
		return nil, fmt.Errorf("pta: strategy %q is not an exact DP: nothing to restore", strategy)
	}
	if class != snap.Class {
		return nil, fmt.Errorf("pta: snapshot class %q does not match %q for %s", snap.Class, class, strategy)
	}
	m, err := NewMatrixSet(s, strategy, opts)
	if err != nil {
		return nil, err
	}
	if err := m.sv.Restore(&core.SolverState{
		N:      snap.N,
		Filled: snap.Filled,
		RowErr: snap.RowErr,
		LastE:  snap.LastE,
		Splits: snap.Splits,
		Bound:  snap.Bound,
		HasMax: snap.HasMax,
	}); err != nil {
		return nil, fmt.Errorf("pta: %w", err)
	}
	return m, nil
}

// SplitRowSource supplies restored split-point rows on demand for
// RestoreMatrixSetLazy; see core.SplitRowSource. Implementations live in the
// persistence layer (internal/serve's mmap-backed spill view).
type SplitRowSource = core.SplitRowSource

// WarmLostError is the typed error a lazily restored set surfaces when its
// backing row source fails after restore (truncated, corrupted or unmapped
// spill file). It travels through MatrixSet.Compress wrapped, so callers
// detect it with errors.As and rebuild cold.
type WarmLostError = core.WarmLostError

// RestoreMatrixSetLazy is RestoreMatrixSet with the split-point rows left
// behind a SplitRowSource: snap.Splits is ignored (may be nil) and each J
// row is read from src on the first reconstruction that touches it. The
// scalar state (RowErr, LastE, Bound) still restores eagerly, so budget
// searches and deeper fills run without touching src at all; only answering
// a budget pays for exactly the rows its backtrack walks. If src fails later
// the evaluation returns a WarmLostError and the set must be discarded.
func RestoreMatrixSetLazy(s *Series, strategy string, opts Options, snap *MatrixSnapshot, src SplitRowSource) (*MatrixSet, error) {
	if snap == nil || snap.Filled == 0 {
		return nil, fmt.Errorf("pta: empty matrix snapshot")
	}
	class, ok := DPClassWith(strategy, opts.FillAlgo)
	if !ok {
		return nil, fmt.Errorf("pta: strategy %q is not an exact DP: nothing to restore", strategy)
	}
	if class != snap.Class {
		return nil, fmt.Errorf("pta: snapshot class %q does not match %q for %s", snap.Class, class, strategy)
	}
	m, err := NewMatrixSet(s, strategy, opts)
	if err != nil {
		return nil, err
	}
	if err := m.sv.RestoreLazy(&core.SolverState{
		N:      snap.N,
		Filled: snap.Filled,
		RowErr: snap.RowErr,
		LastE:  snap.LastE,
		Bound:  snap.Bound,
		HasMax: snap.HasMax,
	}, src); err != nil {
		return nil, fmt.Errorf("pta: %w", err)
	}
	return m, nil
}
