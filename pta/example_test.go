package pta_test

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/pta"
)

// projExample computes the ITA result of the paper's running example
// (Fig. 1): average monthly salary per project, 7 rows.
func projExample() *pta.Series {
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		panic(err)
	}
	return seq
}

// ExampleNew builds a reusable Engine and reduces the running example to
// the best four tuples (Fig. 1d of the paper).
func ExampleNew() {
	eng, err := pta.New(
		pta.WithParallelism(2),        // compress aggregation groups concurrently
		pta.WithWeights([]float64{1}), // per-aggregate error weights (Definition 5)
	)
	if err != nil {
		panic(err)
	}
	res, err := eng.Compress(context.Background(), projExample(),
		pta.Plan{Strategy: "ptac", Budget: pta.Size(4)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("reduced to %d tuples, error %.2f\n", res.C, res.Error)
	fmt.Print(res.Series)
	// Output:
	// reduced to 4 tuples, error 49166.67
	// A | 733.3 | [1, 3]
	// A | 375 | [4, 7]
	// B | 500 | [4, 5]
	// B | 500 | [7, 8]
}

// ExampleCompress is the one-shot path: no engine to hold, no context — a
// thin wrapper over a lazily initialized serial default engine.
func ExampleCompress() {
	res, err := pta.Compress(projExample(), "gms", pta.Size(4), pta.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s(%v): %d tuples, error %.0f, %d merges\n",
		res.Strategy, res.Budget, res.C, res.Error, res.Stats.Merges)
	// Output:
	// gms(c=4): 4 tuples, error 63000, 3 merges
}

// ExampleEngine_Compress evaluates an error-bounded plan and handles the
// typed errors: an infeasible size budget carries the smallest reachable
// size for errors.As.
func ExampleEngine_Compress() {
	eng, _ := pta.New()
	ctx := context.Background()
	seq := projExample()

	res, err := eng.Compress(ctx, seq, pta.Plan{Strategy: "ptae", Budget: pta.ErrorBound(0.2)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("within 20%% of SSEmax: %d tuples, error %.2f\n", res.C, res.Error)

	_, err = eng.Compress(ctx, seq, pta.Plan{Strategy: "ptac", Budget: pta.Size(2)})
	var inf *pta.InfeasibleBudgetError
	if errors.As(err, &inf) {
		fmt.Printf("c=2 infeasible, smallest reachable size is %d\n", inf.CMin)
	}
	// Output:
	// within 20% of SSEmax: 4 tuples, error 49166.67
	// c=2 infeasible, smallest reachable size is 3
}

// ExampleEngine_CompressMany serves several resolutions of one series at
// once: exact-DP plans share a single filling of the DP matrices.
func ExampleEngine_CompressMany() {
	eng, _ := pta.New()
	results, err := eng.CompressMany(context.Background(), projExample(), []pta.Plan{
		{Strategy: "ptac", Budget: pta.Size(3)},
		{Strategy: "ptac", Budget: pta.Size(4)},
		{Strategy: "ptae", Budget: pta.ErrorBound(0.05)},
	})
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Printf("%s(%v): %d tuples, error %.2f\n", res.Strategy, res.Budget, res.C, res.Error)
	}
	// Output:
	// ptac(c=3): 3 tuples, error 269285.71
	// ptac(c=4): 4 tuples, error 49166.67
	// ptae(eps=0.05): 5 tuples, error 6666.67
}

// ExampleEngine_CompressStream compresses rows while they are still being
// produced — here an ITA iterator — and pushes the result rows into a Sink.
func ExampleEngine_CompressStream() {
	eng, _ := pta.New()
	it, err := ita.NewIterator(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		panic(err)
	}
	pushed := 0
	res, err := eng.CompressStream(context.Background(), it,
		pta.Plan{Strategy: "gptac", Budget: pta.Size(4), Options: &pta.Options{ReadAhead: 1}},
		pta.SinkFunc(func(row pta.Row) error { pushed++; return nil }))
	if err != nil {
		panic(err)
	}
	fmt.Printf("streamed down to %d tuples (%d pushed), max heap %d\n",
		res.C, pushed, res.Stats.MaxHeap)
	// Output:
	// streamed down to 4 tuples (4 pushed), max heap 6
}

// ExampleSeriesFromMDTA aggregates the running example over user-defined
// MDTA groups — per-project halves of the time span — and compresses the
// result, the bridge from reference [4]'s flexible grouping to PTA.
func ExampleSeriesFromMDTA() {
	rel := dataset.Proj()
	query := pta.MDTAQuery{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	}
	combos, err := pta.MDTAValueCombos(rel, query.GroupBy)
	if err != nil {
		panic(err)
	}
	spans := []pta.Interval{{Start: 1, End: 4}, {Start: 5, End: 8}}
	series, err := pta.SeriesFromMDTA(rel, query, pta.MDTASpanSpecs(combos, spans))
	if err != nil {
		panic(err)
	}
	res, err := pta.Compress(series, "ptac", pta.Size(3), pta.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d mdta rows compressed to %d\n", series.Len(), res.C)
	// Output:
	// 4 mdta rows compressed to 3
}
