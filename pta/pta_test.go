package pta_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/pta"
)

// oneDim returns a single-group, gap-free, one-dimensional series — the
// shape every registered strategy (including the time-series baselines)
// accepts.
func oneDim(t *testing.T) *pta.Series {
	t.Helper()
	seq, err := dataset.Chaotic(240)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// grouped returns a multi-group series with temporal gaps — the shape only
// the native PTA strategies handle.
func grouped(t *testing.T) *pta.Series {
	t.Helper()
	seq, err := dataset.Uniform(6, 40, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// projITA returns the paper's running example reduced by ITA (7 rows).
func projITA(t *testing.T) *pta.Series {
	t.Helper()
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestRegistryComplete pins the registry surface: every strategy of the
// facade contract is present, described, and at least 8 are registered.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"amnesic", "apca", "dpbasic", "gms", "gms-bridged", "gptac", "gptae",
		"paa", "pla", "ptac", "ptac-imax", "ptac-jmin", "ptac-parallel", "ptae",
	}
	got := pta.Strategies()
	if len(got) < 8 {
		t.Fatalf("Strategies() lists %d evaluators, want ≥ 8: %v", len(got), got)
	}
	have := map[string]bool{}
	for _, name := range got {
		have[name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("strategy %q missing from registry %v", name, got)
		}
	}
	for _, info := range pta.Describe() {
		if info.Description == "" {
			t.Errorf("strategy %q has no description", info.Name)
		}
		if !info.Size && !info.Error {
			t.Errorf("strategy %q supports no budget kind", info.Name)
		}
		if ev, ok := pta.Lookup(info.Name); !ok || ev.Name() != info.Name {
			t.Errorf("Lookup(%q) inconsistent with Describe", info.Name)
		}
	}
}

func TestBudgetParse(t *testing.T) {
	cases := []struct {
		in   string
		want pta.Budget
		ok   bool
	}{
		{"c=12", pta.Size(12), true},
		{"size=3", pta.Size(3), true},
		{"12", pta.Size(12), true},
		{"eps=0.05", pta.ErrorBound(0.05), true},
		{"error=1", pta.ErrorBound(1), true},
		{"0.05", pta.ErrorBound(0.05), true},
		{"c=0", pta.Budget{}, false},
		{"eps=1.5", pta.Budget{}, false},
		{"banana", pta.Budget{}, false},
		{"q=4", pta.Budget{}, false},
	}
	for _, c := range cases {
		got, err := pta.ParseBudget(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseBudget(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseBudget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if s := pta.Size(7).String(); s != "c=7" {
		t.Errorf("Size(7).String() = %q", s)
	}
	if s := pta.ErrorBound(0.2).String(); s != "eps=0.2" {
		t.Errorf("ErrorBound(0.2).String() = %q", s)
	}
}

// TestGreedyNeverBeatsExact is the Theorem 2 sanity check of the facade:
// for the same size budget, the greedy strategies can never introduce less
// error than the exact DP.
func TestGreedyNeverBeatsExact(t *testing.T) {
	for name, seq := range map[string]*pta.Series{
		"proj": projITA(t), "oneDim": oneDim(t), "grouped": grouped(t),
	} {
		cmin := seq.CMin()
		for _, c := range []int{cmin, (cmin + seq.Len()) / 2, seq.Len() - 1} {
			if c < cmin || c < 1 {
				continue
			}
			exact, err := pta.Compress(seq, "ptac", pta.Size(c), pta.Options{})
			if err != nil {
				t.Fatalf("%s c=%d ptac: %v", name, c, err)
			}
			for _, greedy := range []string{"gms", "gptac"} {
				res, err := pta.Compress(seq, greedy, pta.Size(c), pta.Options{})
				if err != nil {
					t.Fatalf("%s c=%d %s: %v", name, c, greedy, err)
				}
				if res.Error < exact.Error-1e-9*(1+exact.Error) {
					t.Errorf("%s c=%d: %s error %v beats the exact optimum %v",
						name, c, greedy, res.Error, exact.Error)
				}
			}
		}
	}
}

// TestSizeBudgetConformance runs every registered strategy under a size
// budget and checks the shared contract: the result respects the budget,
// validates as a sequential relation, and reports its true error.
func TestSizeBudgetConformance(t *testing.T) {
	fixtures := map[string]*pta.Series{"oneDim": oneDim(t), "grouped": grouped(t)}
	for fname, seq := range fixtures {
		cmin := seq.CMin()
		c := max(cmin, seq.Len()/6)
		for _, name := range pta.Strategies() {
			ev, _ := pta.Lookup(name)
			if !ev.Supports(pta.BudgetSize) {
				continue
			}
			res, err := pta.Compress(seq, name, pta.Size(c), pta.Options{})
			if errors.Is(err, pta.ErrSeriesShape) {
				continue // baselines on grouped/gapped input
			}
			if err != nil {
				t.Errorf("%s on %s: %v", name, fname, err)
				continue
			}
			if res.C > c || res.C < 1 {
				t.Errorf("%s on %s: result size %d outside [1, %d]", name, fname, res.C, c)
			}
			if res.C != res.Series.Len() {
				t.Errorf("%s on %s: C %d != rows %d", name, fname, res.C, res.Series.Len())
			}
			if res.Strategy != name {
				t.Errorf("%s on %s: Strategy = %q", name, fname, res.Strategy)
			}
			if err := res.Series.Validate(); err != nil && name != "gms-bridged" {
				t.Errorf("%s on %s: invalid result: %v", name, fname, err)
			}
			// The reported error must match an independent recomputation
			// (gap bridging redistributes error over covered chronons, so
			// its accounting is intentionally different).
			if name != "gms-bridged" {
				sse, err := pta.SSE(seq, res.Series, pta.Options{})
				if err != nil {
					t.Fatalf("%s on %s: SSE: %v", name, fname, err)
				}
				if math.Abs(sse-res.Error) > 1e-6*(1+sse) {
					t.Errorf("%s on %s: reported error %v vs recomputed %v",
						name, fname, res.Error, sse)
				}
			}
		}
	}
}

// TestErrorBudgetConformance runs every strategy that accepts an error
// budget and checks that the result respects ε·SSEmax.
func TestErrorBudgetConformance(t *testing.T) {
	fixtures := map[string]*pta.Series{"oneDim": oneDim(t), "grouped": grouped(t)}
	for fname, seq := range fixtures {
		emax, err := pta.MaxError(seq, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{1, 0.2, 0.01, 0} {
			bound := eps * emax
			for _, name := range pta.Strategies() {
				ev, _ := pta.Lookup(name)
				if !ev.Supports(pta.BudgetError) {
					continue
				}
				res, err := pta.Compress(seq, name, pta.ErrorBound(eps), pta.Options{})
				if errors.Is(err, pta.ErrSeriesShape) {
					continue
				}
				if err != nil {
					t.Errorf("%s on %s eps=%v: %v", name, fname, eps, err)
					continue
				}
				if res.Error > bound*(1+1e-6)+1e-6 {
					t.Errorf("%s on %s: eps=%v error %v exceeds bound %v",
						name, fname, eps, res.Error, bound)
				}
			}
		}
	}
}

// TestStreamMatchesInMemory: the streaming evaluators produce the same
// result through CompressStream as through Compress.
func TestStreamMatchesInMemory(t *testing.T) {
	seq := grouped(t)
	c := max(seq.CMin(), seq.Len()/8)
	mem, err := pta.Compress(seq, "gptac", pta.Size(c), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := pta.CompressStream(pta.NewStream(seq), "gptac", pta.Size(c), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mem.Series.Equal(streamed.Series, 1e-9) {
		t.Error("streaming and in-memory gptac results differ")
	}

	est, err := pta.ExactEstimate(seq, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	memE, err := pta.Compress(seq, "gptae", pta.ErrorBound(0.1), pta.Options{Estimate: &est})
	if err != nil {
		t.Fatal(err)
	}
	streamedE, err := pta.CompressStream(pta.NewStream(seq), "gptae", pta.ErrorBound(0.1),
		pta.Options{Estimate: &est})
	if err != nil {
		t.Fatal(err)
	}
	if !memE.Series.Equal(streamedE.Series, 1e-9) {
		t.Error("streaming and in-memory gptae results differ")
	}
}

// TestStreamExactDP: the exact DP strategies answer CompressStream with
// results identical to in-memory Compress (the streaming path materializes
// and solves incrementally), and error budgets need no Estimate — exactness
// computes the true SSEmax after the stream ends.
func TestStreamExactDP(t *testing.T) {
	seq := grouped(t)
	c := max(seq.CMin(), seq.Len()/8)
	mem, err := pta.Compress(seq, "ptac", pta.Size(c), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := pta.CompressStream(pta.NewStream(seq), "ptac", pta.Size(c), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.C != mem.C || streamed.Error != mem.Error {
		t.Errorf("streaming ptac (c=%d, err=%v) differs from in-memory (c=%d, err=%v)",
			streamed.C, streamed.Error, mem.C, mem.Error)
	}
	if !mem.Series.Equal(streamed.Series, 0) {
		t.Error("streaming and in-memory ptac series differ")
	}

	memE, err := pta.Compress(seq, "ptae", pta.ErrorBound(0.1), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamedE, err := pta.CompressStream(pta.NewStream(seq), "ptae", pta.ErrorBound(0.1), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if streamedE.C != memE.C || streamedE.Error != memE.Error {
		t.Errorf("streaming ptae (c=%d, err=%v) differs from in-memory (c=%d, err=%v)",
			streamedE.C, streamedE.Error, memE.C, memE.Error)
	}
}

// TestFacadeErrors pins the sentinel error contract.
func TestFacadeErrors(t *testing.T) {
	seq := projITA(t)
	if _, err := pta.Compress(seq, "nope", pta.Size(4), pta.Options{}); !errors.Is(err, pta.ErrUnknownStrategy) {
		t.Errorf("unknown strategy: %v", err)
	}
	if _, err := pta.Compress(seq, "gms-bridged", pta.ErrorBound(0.5), pta.Options{}); !errors.Is(err, pta.ErrBudgetKind) {
		t.Errorf("gms-bridged with eps budget: %v", err)
	}
	if _, err := pta.Compress(grouped(t), "paa", pta.Size(4), pta.Options{}); !errors.Is(err, pta.ErrSeriesShape) {
		t.Errorf("paa on grouped input: %v", err)
	}
	if _, err := pta.Compress(seq, "ptac", pta.Budget{}, pta.Options{}); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := pta.CompressStream(pta.NewStream(seq), "gms", pta.Size(4), pta.Options{}); !errors.Is(err, pta.ErrNotStreaming) {
		t.Errorf("CompressStream on gms: %v", err)
	}
	if _, err := pta.CompressStream(pta.NewStream(seq), "gptae", pta.ErrorBound(0.1), pta.Options{}); err == nil {
		t.Error("streaming error budget without estimate should fail")
	}
}

// TestQuickstartGolden pins the paper's running example through the facade:
// reducing the proj ITA result to 4 tuples introduces error 49166.67
// (Example 6), and the greedy strategy lands at 63000 (Example 17).
func TestQuickstartGolden(t *testing.T) {
	seq := projITA(t)
	res, err := pta.Compress(seq, "ptac", pta.Size(4), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Error-49166.666) > 1 {
		t.Errorf("ptac error %v, want ≈ 49166.67", res.Error)
	}
	greedy, err := pta.Compress(seq, "gms", pta.Size(4), pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(greedy.Error-63000) > 1 {
		t.Errorf("gms error %v, want ≈ 63000", greedy.Error)
	}
}
