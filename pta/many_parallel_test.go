package pta_test

import (
	"context"
	"testing"

	"repro/pta"
)

// TestCompressManyParallelAmortization is the regression pin for the
// parallel-engine amortization gap: a batch of exact-DP size budgets on a
// parallel engine must share one set of per-run curves, so every result
// reports the fill-cell count of the one shared pass — exactly what the
// deepest budget costs alone — instead of paying per plan.
func TestCompressManyParallelAmortization(t *testing.T) {
	eng := mustEngine(t, pta.WithParallelism(4))
	ctx := context.Background()
	seq := grouped(t)
	n, cmin := seq.Len(), seq.CMin()
	if cmin <= 1 {
		t.Fatal("fixture must decompose into several runs")
	}

	deepest := pta.Plan{Strategy: "ptac", Budget: pta.Size(n - 1)}
	plans := []pta.Plan{
		deepest,
		{Strategy: "ptac", Budget: pta.Size(cmin)},
		{Strategy: "ptac", Budget: pta.Size((cmin + n) / 2)},
		{Strategy: "ptae", Budget: pta.ErrorBound(0.25)},
	}
	many, err := eng.CompressMany(ctx, seq, plans)
	if err != nil {
		t.Fatal(err)
	}

	// One shared curve set serves the whole batch: identical counters on
	// every result.
	for i := range many {
		if many[i].Stats != many[0].Stats {
			t.Errorf("plan %d stats %+v != shared %+v — per-run curves rebuilt per budget",
				i, many[i].Stats, many[0].Stats)
		}
	}
	if many[0].Stats.Cells == 0 {
		t.Fatal("batch reports zero DP cells; the pricing signal is gone")
	}

	// Size-only batches pin the exact amortized cost: the shared pass fills
	// precisely the cells the deepest budget needs alone on the same
	// parallel path.
	single, err := eng.Compress(ctx, seq, deepest)
	if err != nil {
		t.Fatal(err)
	}
	sizeOnly, err := eng.CompressMany(ctx, seq, plans[:3])
	if err != nil {
		t.Fatal(err)
	}
	if sizeOnly[0].Stats.Cells != single.Stats.Cells {
		t.Errorf("batch of %d size budgets filled %d cells, deepest alone %d — curves not shared",
			len(plans)-1, sizeOnly[0].Stats.Cells, single.Stats.Cells)
	}

	// Amortization must not change results: plan for plan, the batch equals
	// individual evaluation bit for bit (both take the run-decomposed path).
	for i, p := range plans {
		want, err := eng.Compress(ctx, seq, p)
		if err != nil {
			t.Fatalf("plan %d individually: %v", i, err)
		}
		if many[i].C != want.C || many[i].Error != want.Error {
			t.Errorf("plan %d (%s %v): batch C=%d E=%v vs single C=%d E=%v",
				i, p.Strategy, p.Budget, many[i].C, many[i].Error, want.C, want.Error)
		}
		if !many[i].Series.Equal(want.Series, 0) {
			t.Errorf("plan %d (%s %v): batch rows differ from single evaluation", i, p.Strategy, p.Budget)
		}
	}
}
