package pta_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/pta"
)

// TestSnapshotRestoreRoundTrip: a restored set answers every budget the
// original answered bitwise-identically and with zero fill work, and can
// still fill deeper rows for budgets beyond the snapshot.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	seq := grouped(t)
	ctx := context.Background()
	warm, err := pta.NewMatrixSet(seq, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shallow := pta.Size(seq.Len() / 4)
	want, err := warm.Compress(ctx, shallow)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Filled != warm.Rows() || snap.N != seq.Len() || snap.Class != warm.Class() {
		t.Fatalf("snapshot shape: %+v vs rows=%d", snap, warm.Rows())
	}

	cold, err := pta.RestoreMatrixSet(seq, "ptac", pta.Options{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Rows() != warm.Rows() {
		t.Fatalf("restored rows = %d, want %d", cold.Rows(), warm.Rows())
	}
	got, err := cold.Compress(ctx, shallow)
	if err != nil {
		t.Fatal(err)
	}
	if got.C != want.C || got.Error != want.Error {
		t.Errorf("restored answer (C=%d, E=%g) != original (C=%d, E=%g)", got.C, got.Error, want.C, want.Error)
	}
	if !got.Series.Equal(want.Series, 0) {
		t.Error("restored rows differ from original")
	}
	if got.Stats.Cells != 0 {
		t.Errorf("restored set filled %d cells on a warm budget, want 0", got.Stats.Cells)
	}

	// A deeper budget resumes the fill from the snapshot's last row and
	// matches a never-snapshotted set.
	deep := pta.Size(seq.Len() / 2)
	wantDeep, err := warm.Compress(ctx, deep)
	if err != nil {
		t.Fatal(err)
	}
	gotDeep, err := cold.Compress(ctx, deep)
	if err != nil {
		t.Fatal(err)
	}
	if gotDeep.C != wantDeep.C || math.Abs(gotDeep.Error-wantDeep.Error) > 0 {
		t.Errorf("deep resume (C=%d, E=%g) != fresh (C=%d, E=%g)",
			gotDeep.C, gotDeep.Error, wantDeep.C, wantDeep.Error)
	}
	if !gotDeep.Series.Equal(wantDeep.Series, 0) {
		t.Error("deep resume rows differ")
	}

	// Error budgets reuse the snapshot's SSEmax normalization.
	wantEps, err := warm.Compress(ctx, pta.ErrorBound(0.1))
	if err != nil {
		t.Fatal(err)
	}
	gotEps, err := cold.Compress(ctx, pta.ErrorBound(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if gotEps.C != wantEps.C || gotEps.Error != wantEps.Error {
		t.Errorf("eps budget (C=%d, E=%g) != (C=%d, E=%g)", gotEps.C, gotEps.Error, wantEps.C, wantEps.Error)
	}
}

// memRowSource is a SplitRowSource over an in-memory snapshot, with
// per-row failure injection and read accounting.
type memRowSource struct {
	n      int
	splits []int32 // row-major, rows 1..filled
	failAt int     // SplitRow(failAt) errors; 0 = never
	reads  map[int]int
}

func (m *memRowSource) SplitRow(k int) ([]int32, error) {
	if m.reads == nil {
		m.reads = make(map[int]int)
	}
	m.reads[k]++
	if k == m.failAt {
		return nil, errRowGone
	}
	row := m.splits[(k-1)*(m.n+1) : k*(m.n+1)]
	return append([]int32(nil), row...), nil
}

var errRowGone = pta.ErrCanceled // any sentinel; identity checked via WarmLostError

// TestSnapshotRestoreLazy: a lazily restored set answers budgets bitwise
// identically with zero fill work, reads each row at most once, resumes
// deeper fills, and surfaces WarmLostError when the source fails mid-life.
func TestSnapshotRestoreLazy(t *testing.T) {
	seq := grouped(t)
	ctx := context.Background()
	warm, err := pta.NewMatrixSet(seq, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shallow := pta.Size(seq.Len() / 4)
	want, err := warm.Compress(ctx, shallow)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	src := &memRowSource{n: snap.N, splits: snap.Splits}
	hollow := *snap
	hollow.Splits = nil
	lazy, err := pta.RestoreMatrixSetLazy(seq, "ptac", pta.Options{}, &hollow, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazy.Compress(ctx, shallow)
	if err != nil {
		t.Fatal(err)
	}
	if got.C != want.C || got.Error != want.Error || !got.Series.Equal(want.Series, 0) {
		t.Errorf("lazy answer (C=%d, E=%g) != original (C=%d, E=%g)", got.C, got.Error, want.C, want.Error)
	}
	if got.Stats.Cells != 0 {
		t.Errorf("lazy set filled %d cells on a warm budget, want 0", got.Stats.Cells)
	}
	// Only rows 1..c were touched, once each; the rest stayed on "disk".
	for k, c := range src.reads {
		if c > 1 {
			t.Errorf("row %d read %d times, want at most once", k, c)
		}
		if k > want.C {
			t.Errorf("row %d read for a c=%d budget", k, want.C)
		}
	}
	// A deeper budget resumes the fill and matches the eager set.
	deep := pta.Size(seq.Len() / 2)
	wantDeep, err := warm.Compress(ctx, deep)
	if err != nil {
		t.Fatal(err)
	}
	gotDeep, err := lazy.Compress(ctx, deep)
	if err != nil {
		t.Fatal(err)
	}
	if gotDeep.C != wantDeep.C || gotDeep.Error != wantDeep.Error || !gotDeep.Series.Equal(wantDeep.Series, 0) {
		t.Errorf("lazy deep resume (C=%d, E=%g) != fresh (C=%d, E=%g)",
			gotDeep.C, gotDeep.Error, wantDeep.C, wantDeep.Error)
	}

	// A source that fails after restore surfaces the typed loss, wrapped.
	bad := &memRowSource{n: snap.N, splits: snap.Splits, failAt: 1}
	lost, err := pta.RestoreMatrixSetLazy(seq, "ptac", pta.Options{}, &hollow, bad)
	if err != nil {
		t.Fatal(err)
	}
	_, err = lost.Compress(ctx, shallow)
	var wl *pta.WarmLostError
	if !errors.As(err, &wl) {
		t.Fatalf("failed source returned %v, want WarmLostError", err)
	}
	if wl.Row != 1 {
		t.Errorf("WarmLostError.Row = %d, want 1", wl.Row)
	}
}

// TestSnapshotRestoreRejections: corrupt or mismatched snapshots fail
// cleanly instead of producing a poisoned set.
func TestSnapshotRestoreRejections(t *testing.T) {
	seq := grouped(t)
	ctx := context.Background()
	set, err := pta.NewMatrixSet(seq, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Compress(ctx, pta.Size(seq.Len()/4)); err != nil {
		t.Fatal(err)
	}
	good, err := set.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(s *pta.MatrixSnapshot)) {
		s := *good
		s.RowErr = append([]float64(nil), good.RowErr...)
		s.LastE = append([]float64(nil), good.LastE...)
		s.Splits = append([]int32(nil), good.Splits...)
		f(&s)
		if _, err := pta.RestoreMatrixSet(seq, "ptac", pta.Options{}, &s); err == nil {
			t.Errorf("%s: restore accepted a bad snapshot", name)
		}
	}
	mutate("wrong n", func(s *pta.MatrixSnapshot) { s.N++ })
	mutate("wrong class", func(s *pta.MatrixSnapshot) { s.Class = "dp" })
	mutate("truncated row errors", func(s *pta.MatrixSnapshot) { s.RowErr = s.RowErr[:1] })
	mutate("truncated splits", func(s *pta.MatrixSnapshot) { s.Splits = s.Splits[:len(s.Splits)-1] })
	mutate("split out of range", func(s *pta.MatrixSnapshot) { s.Splits[0] = int32(s.N + 5) })
	mutate("negative split", func(s *pta.MatrixSnapshot) { s.Splits[0] = -1 })
	mutate("filled too deep", func(s *pta.MatrixSnapshot) { s.Filled = s.N + 1 })

	if _, err := pta.RestoreMatrixSet(seq, "ptac", pta.Options{}, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := pta.RestoreMatrixSet(seq, "gms", pta.Options{}, good); err == nil {
		t.Error("non-DP strategy accepted a snapshot")
	}

	// The pristine snapshot still restores after all the rejected copies.
	if _, err := pta.RestoreMatrixSet(seq, "ptac", pta.Options{}, good); err != nil {
		t.Errorf("good snapshot rejected: %v", err)
	}
}
