package pta

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Evaluator is a named compression strategy. Implementations are registered
// with Register and resolved by name through Engine.Compress and the
// package-level Compress; they must be safe for concurrent use.
type Evaluator interface {
	// Name is the registry key, e.g. "ptac".
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// Supports reports whether the strategy accepts the budget kind.
	Supports(k BudgetKind) bool
	// Evaluate compresses an in-memory series under the budget. The
	// context is polled inside the evaluation loops, so long runs abort
	// promptly on cancellation. The returned Result carries the reduced
	// series and its true error; the engine stamps Strategy and Budget.
	Evaluate(ctx context.Context, s *Series, b Budget, opts Options) (*Result, error)
}

// StreamEvaluator is an Evaluator that can also compress a row stream in
// bounded memory, merging while rows are still being produced.
type StreamEvaluator interface {
	Evaluator
	// EvaluateStream compresses the stream under the budget. Error budgets
	// require Options.Estimate.
	EvaluateStream(ctx context.Context, src Stream, b Budget, opts Options) (*Result, error)
}

// ParallelEvaluator is an Evaluator whose evaluation decomposes over the
// maximal adjacent runs of the series (aggregation groups are a coarsening
// of runs), so independent parts can be evaluated concurrently without
// changing the result. Engine routes through it when its parallelism
// exceeds one.
type ParallelEvaluator interface {
	Evaluator
	// EvaluateParallel compresses like Evaluate on a pool of workers
	// goroutines (0 = all cores) and returns an equivalent result.
	EvaluateParallel(ctx context.Context, s *Series, b Budget, opts Options, workers int) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Evaluator{}
)

// Register adds a strategy to the registry. It panics on an empty or
// duplicate name — registration is a program-initialization concern.
func Register(e Evaluator) {
	name := e.Name()
	if name == "" {
		panic("pta: Register with empty strategy name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("pta: Register called twice for strategy %q", name))
	}
	registry[name] = e
}

// Lookup resolves a strategy by name.
func Lookup(name string) (Evaluator, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Strategies returns the sorted names of every registered strategy.
func Strategies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StrategyInfo describes one registry entry for listings (CLI -list,
// benchmark tables).
type StrategyInfo struct {
	// Name is the registry key.
	Name string
	// Description is the strategy's one-line summary.
	Description string
	// Size and Error report the supported budget kinds.
	Size, Error bool
	// Streaming reports StreamEvaluator capability.
	Streaming bool
}

// FormatStrategies renders the registry as the canonical aligned text table.
// It is the single human-readable description source: ptacli
// -list-strategies prints it, and GET /v1/strategies serves the same
// Describe records as JSON, so the CLI, the server and the docs cannot
// drift apart.
func FormatStrategies(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-14s %-5s %-5s %-7s %s\n",
		"strategy", "c", "eps", "stream", "description"); err != nil {
		return err
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, info := range Describe() {
		if _, err := fmt.Fprintf(w, "%-14s %-5s %-5s %-7s %s\n",
			info.Name, mark(info.Size), mark(info.Error), mark(info.Streaming),
			info.Description); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nexact DP strategies accept a row-fill algorithm (%s): identical results,\ndifferent speed — pin one via pta.WithFillAlgo / Options.FillAlgo / the fill_algo plan field\n",
		strings.Join(FillAlgoNames(), "|"))
	return err
}

// Describe returns the registry as sorted StrategyInfo records.
func Describe() []StrategyInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]StrategyInfo, 0, len(registry))
	for _, e := range registry {
		_, streaming := e.(StreamEvaluator)
		out = append(out, StrategyInfo{
			Name:        e.Name(),
			Description: e.Description(),
			Size:        e.Supports(BudgetSize),
			Error:       e.Supports(BudgetError),
			Streaming:   streaming,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
