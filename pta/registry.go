package pta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors of the facade, matchable with errors.Is.
var (
	// ErrUnknownStrategy reports a strategy name absent from the registry.
	ErrUnknownStrategy = errors.New("unknown strategy")
	// ErrBudgetKind reports a budget kind the strategy does not support.
	ErrBudgetKind = errors.New("unsupported budget kind")
	// ErrNotStreaming reports a CompressStream call on a strategy that
	// needs its whole input in memory.
	ErrNotStreaming = errors.New("strategy is not stream-capable")
	// ErrSeriesShape reports an input outside a strategy's applicability:
	// the classic time-series baselines need a single-group, gap-free,
	// one-dimensional series.
	ErrSeriesShape = errors.New("series shape unsupported by strategy")
)

// Evaluator is a named compression strategy. Implementations are registered
// with Register and resolved by name through Compress; they must be safe for
// concurrent use.
type Evaluator interface {
	// Name is the registry key, e.g. "ptac".
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// Supports reports whether the strategy accepts the budget kind.
	Supports(k BudgetKind) bool
	// Evaluate compresses an in-memory series under the budget. The
	// returned Result carries the reduced series and its true error;
	// Compress stamps Strategy and Budget.
	Evaluate(s *Series, b Budget, opts Options) (*Result, error)
}

// StreamEvaluator is an Evaluator that can also compress a row stream in
// bounded memory, merging while rows are still being produced.
type StreamEvaluator interface {
	Evaluator
	// EvaluateStream compresses the stream under the budget. Error budgets
	// require Options.Estimate.
	EvaluateStream(src Stream, b Budget, opts Options) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Evaluator{}
)

// Register adds a strategy to the registry. It panics on an empty or
// duplicate name — registration is a program-initialization concern.
func Register(e Evaluator) {
	name := e.Name()
	if name == "" {
		panic("pta: Register with empty strategy name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("pta: Register called twice for strategy %q", name))
	}
	registry[name] = e
}

// Lookup resolves a strategy by name.
func Lookup(name string) (Evaluator, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Strategies returns the sorted names of every registered strategy.
func Strategies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StrategyInfo describes one registry entry for listings (CLI -list,
// benchmark tables).
type StrategyInfo struct {
	// Name is the registry key.
	Name string
	// Description is the strategy's one-line summary.
	Description string
	// Size and Error report the supported budget kinds.
	Size, Error bool
	// Streaming reports StreamEvaluator capability.
	Streaming bool
}

// Describe returns the registry as sorted StrategyInfo records.
func Describe() []StrategyInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]StrategyInfo, 0, len(registry))
	for _, e := range registry {
		_, streaming := e.(StreamEvaluator)
		out = append(out, StrategyInfo{
			Name:        e.Name(),
			Description: e.Description(),
			Size:        e.Supports(BudgetSize),
			Error:       e.Supports(BudgetError),
			Streaming:   streaming,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
