package pta_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/amnesic"
	"repro/internal/dataset"
	"repro/pta"
)

func mustEngine(t *testing.T, opts ...pta.Option) *pta.Engine {
	t.Helper()
	e, err := pta.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineOptionValidation pins the functional-option error contract.
func TestEngineOptionValidation(t *testing.T) {
	if _, err := pta.New(pta.WithParallelism(-1)); err == nil {
		t.Error("WithParallelism(-1) should fail")
	}
	if _, err := pta.New(pta.WithWeights([]float64{1, 0})); err == nil {
		t.Error("WithWeights with a zero weight should fail")
	}
	if _, err := pta.New(pta.WithEstimator(nil)); err == nil {
		t.Error("WithEstimator(nil) should fail")
	}
	if _, err := pta.New(pta.WithScratchPool(nil)); err == nil {
		t.Error("WithScratchPool(nil) should fail")
	}
	if _, err := pta.New(pta.WithWeights([]float64{2, 1}), pta.WithParallelism(0), pta.WithReadAhead(2)); err != nil {
		t.Errorf("valid options: %v", err)
	}
}

// TestEngineMatchesFacade: Engine.Compress and the legacy wrapper agree for
// every strategy and budget kind.
func TestEngineMatchesFacade(t *testing.T) {
	eng := mustEngine(t)
	ctx := context.Background()
	seq := grouped(t)
	c := max(seq.CMin(), seq.Len()/6)
	for _, name := range []string{"ptac", "gms", "gptac", "amnesic"} {
		want, err := pta.Compress(seq, name, pta.Size(c), pta.Options{})
		if err != nil {
			t.Fatalf("%s facade: %v", name, err)
		}
		got, err := eng.Compress(ctx, seq, pta.Plan{Strategy: name, Budget: pta.Size(c)})
		if err != nil {
			t.Fatalf("%s engine: %v", name, err)
		}
		if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-9*(1+want.Error) {
			t.Errorf("%s: engine C=%d E=%v vs facade C=%d E=%v", name, got.C, got.Error, want.C, want.Error)
		}
		if got.Strategy != name || got.Budget != pta.Size(c) {
			t.Errorf("%s: result not stamped: %q %v", name, got.Strategy, got.Budget)
		}
	}
}

// TestEngineConcurrentCompress hammers one shared engine (and its scratch
// pool) from many goroutines; every result must equal the serial reference.
// Run under -race this is the engine's concurrency-safety proof.
func TestEngineConcurrentCompress(t *testing.T) {
	eng := mustEngine(t)
	ctx := context.Background()
	seqs := []*pta.Series{oneDim(t), grouped(t), projITA(t)}
	type job struct {
		seq  *pta.Series
		plan pta.Plan
	}
	var jobs []job
	refs := map[int]*pta.Result{}
	for si, seq := range seqs {
		c := max(seq.CMin(), seq.Len()/5)
		for _, strategy := range []string{"ptac", "ptae", "gms", "gptac"} {
			b := pta.Size(c)
			if strategy == "ptae" {
				b = pta.ErrorBound(0.1)
			}
			plan := pta.Plan{Strategy: strategy, Budget: b}
			ref, err := eng.Compress(ctx, seq, plan)
			if err != nil {
				t.Fatalf("reference %s on seq %d: %v", strategy, si, err)
			}
			refs[len(jobs)] = ref
			jobs = append(jobs, job{seq: seq, plan: plan})
		}
	}

	const goroutines = 16
	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				j := (g + r) % len(jobs)
				res, err := eng.Compress(ctx, jobs[j].seq, jobs[j].plan)
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d job %d: %v", g, j, err)
					return
				}
				ref := refs[j]
				if res.C != ref.C || math.Abs(res.Error-ref.Error) > 1e-9*(1+ref.Error) ||
					!res.Series.Equal(ref.Series, 1e-9) {
					errCh <- fmt.Errorf("goroutine %d job %d: result differs from reference", g, j)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestEngineCancellation: an already-canceled context fails fast, a context
// canceled mid-DP aborts the evaluation, and both surface the typed
// ErrCanceled that also matches context.Canceled.
func TestEngineCancellation(t *testing.T) {
	eng := mustEngine(t)
	seq := grouped(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Compress(ctx, seq, pta.Plan{Strategy: "ptac", Budget: pta.Size(seq.CMin())})
	if !errors.Is(err, pta.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: %v", err)
	}
	var ce *pta.CanceledError
	if !errors.As(err, &ce) || ce.Strategy != "ptac" {
		t.Fatalf("want CanceledError carrying the strategy, got %v", err)
	}

	// Mid-DP: a large gap-free input on the unpruned DP takes seconds
	// serially; a short deadline must abort it far sooner.
	big, err := dataset.Uniform(1, 3000, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer dcancel()
	start := time.Now()
	_, err = eng.Compress(dctx, big, pta.Plan{Strategy: "dpbasic", Budget: pta.Size(300)})
	elapsed := time.Since(start)
	if !errors.Is(err, pta.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-DP deadline: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestEngineParallelConformance: group-parallel evaluation is byte-identical
// across worker counts (same decomposition, deterministic combination) and
// matches the serial monolithic DP result.
func TestEngineParallelConformance(t *testing.T) {
	ctx := context.Background()
	seq := grouped(t)
	c := max(seq.CMin(), seq.Len()/4)
	for _, b := range []pta.Budget{pta.Size(c), pta.ErrorBound(0.05)} {
		strategy := "ptac"
		if b.Kind() == pta.BudgetError {
			strategy = "ptae"
		}
		plan := pta.Plan{Strategy: strategy, Budget: b}

		serial, err := mustEngine(t, pta.WithParallelism(1)).Compress(ctx, seq, plan)
		if err != nil {
			t.Fatalf("serial %v: %v", b, err)
		}
		var parallel []*pta.Result
		for _, workers := range []int{2, 4, 8} {
			res, err := mustEngine(t, pta.WithParallelism(workers)).Compress(ctx, seq, plan)
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, b, err)
			}
			parallel = append(parallel, res)
		}
		// Any two parallel runs take the identical decomposed path: rows
		// must match bit for bit regardless of the worker count.
		for i := 1; i < len(parallel); i++ {
			if !reflect.DeepEqual(parallel[0].Series.Rows, parallel[i].Series.Rows) {
				t.Errorf("%v: parallel results differ between worker counts", b)
			}
		}
		// Against the serial monolithic DP: same size, same optimal error,
		// same reduction (floating-point agreement within noise).
		par := parallel[0]
		if par.C != serial.C || math.Abs(par.Error-serial.Error) > 1e-6*(1+serial.Error) {
			t.Errorf("%v: parallel C=%d E=%v vs serial C=%d E=%v", b, par.C, par.Error, serial.C, serial.Error)
		}
		if !par.Series.Equal(serial.Series, 1e-6) {
			t.Errorf("%v: parallel reduction differs from serial", b)
		}
	}
}

// TestCompressMany: amortized evaluation returns exactly what independent
// Compress calls return, plan for plan, across strategies and budget kinds.
func TestCompressMany(t *testing.T) {
	eng := mustEngine(t)
	ctx := context.Background()
	seq := grouped(t)
	n, cmin := seq.Len(), seq.CMin()
	plans := []pta.Plan{
		{Strategy: "ptac", Budget: pta.Size(max(cmin, n/10))},
		{Strategy: "ptac", Budget: pta.Size(max(cmin, n/4))},
		{Strategy: "ptae", Budget: pta.ErrorBound(0.1)},
		{Strategy: "ptac", Budget: pta.Size(n)},
		{Strategy: "gms", Budget: pta.Size(max(cmin, n/4))},
		{Strategy: "ptae", Budget: pta.ErrorBound(0)},
		{Strategy: "gptac", Budget: pta.Size(max(cmin, n/4)),
			Options: &pta.Options{ReadAhead: 1}},
	}
	many, err := eng.CompressMany(ctx, seq, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(plans) {
		t.Fatalf("CompressMany returned %d results for %d plans", len(many), len(plans))
	}
	for i, p := range plans {
		want, err := eng.Compress(ctx, seq, p)
		if err != nil {
			t.Fatalf("plan %d individually: %v", i, err)
		}
		got := many[i]
		if got == nil {
			t.Fatalf("plan %d: nil result", i)
		}
		if got.Strategy != p.Strategy || got.Budget != p.Budget {
			t.Errorf("plan %d: stamped %q %v", i, got.Strategy, got.Budget)
		}
		if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-9*(1+want.Error) ||
			!got.Series.Equal(want.Series, 1e-9) {
			t.Errorf("plan %d (%s %v): CompressMany C=%d E=%v vs Compress C=%d E=%v",
				i, p.Strategy, p.Budget, got.C, got.Error, want.C, want.Error)
		}
	}

	// On a parallel engine the amortized serial pass yields to the
	// group-parallel per-plan path; results must not change.
	parEng := mustEngine(t, pta.WithParallelism(4))
	parMany, err := parEng.CompressMany(ctx, seq, plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if parMany[i].C != many[i].C || !parMany[i].Series.Equal(many[i].Series, 1e-6) {
			t.Errorf("plan %d: parallel-engine CompressMany differs from serial", i)
		}
	}

	// An infeasible member fails the call and names the offending plan.
	if cmin > 1 {
		_, err = eng.CompressMany(ctx, seq, []pta.Plan{
			{Strategy: "ptac", Budget: pta.Size(max(cmin, n/4))},
			{Strategy: "ptac", Budget: pta.Size(cmin - 1)},
		})
		var inf *pta.InfeasibleBudgetError
		if !errors.As(err, &inf) {
			t.Fatalf("infeasible plan: %v", err)
		}
		if inf.Budget != pta.Size(cmin-1) || inf.CMin != cmin {
			t.Errorf("blamed %v (cmin %d), want %v (cmin %d)", inf.Budget, inf.CMin, pta.Size(cmin-1), cmin)
		}
	}
}

// collectSink records everything pushed into it.
type collectSink struct {
	rows   []pta.Row
	closed *pta.Result
}

func (s *collectSink) Emit(row pta.Row) error { s.rows = append(s.rows, row); return nil }
func (s *collectSink) Close(res *pta.Result) error {
	if s.closed != nil {
		return errors.New("closed twice")
	}
	s.closed = res
	return nil
}

// TestCompressStreamSink: the sink receives every result row in order and a
// single Close with the summary; sink failures surface to the caller.
func TestCompressStreamSink(t *testing.T) {
	eng := mustEngine(t)
	ctx := context.Background()
	seq := grouped(t)
	c := max(seq.CMin(), seq.Len()/8)
	sink := &collectSink{}
	res, err := eng.CompressStream(ctx, pta.NewStream(seq), pta.Plan{
		Strategy: "gptac", Budget: pta.Size(c),
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.closed != res {
		t.Error("Close did not receive the result")
	}
	if len(sink.rows) != res.C {
		t.Fatalf("sink got %d rows, result has %d", len(sink.rows), res.C)
	}
	for i, row := range sink.rows {
		if !reflect.DeepEqual(row, res.Series.Rows[i]) {
			t.Fatalf("sink row %d differs from result row", i)
		}
	}

	// A failing sink aborts the push.
	boom := errors.New("downstream full")
	_, err = eng.CompressStream(ctx, pta.NewStream(seq), pta.Plan{
		Strategy: "gptac", Budget: pta.Size(c),
	}, pta.SinkFunc(func(pta.Row) error { return boom }))
	if !errors.Is(err, boom) {
		t.Errorf("sink failure: %v", err)
	}
}

// TestEngineEstimator: an engine-level estimator serves error-bounded
// streaming plans that carry no explicit estimate.
func TestEngineEstimator(t *testing.T) {
	ctx := context.Background()
	seq := grouped(t)
	est, err := pta.ExactEstimate(seq, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	eng := mustEngine(t, pta.WithEstimator(func(ctx context.Context, meta *pta.Series) (pta.Estimate, error) {
		calls++
		if meta.Len() != 0 {
			t.Error("estimator meta should be row-less")
		}
		return est, nil
	}))
	res, err := eng.CompressStream(ctx, pta.NewStream(seq), pta.Plan{
		Strategy: "gptae", Budget: pta.ErrorBound(0.1),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("estimator called %d times, want 1", calls)
	}
	want, err := pta.CompressStream(pta.NewStream(seq), "gptae", pta.ErrorBound(0.1),
		pta.Options{Estimate: &est})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Series.Equal(want.Series, 1e-9) {
		t.Error("estimator-fed stream differs from explicit-estimate stream")
	}
}

// TestTypedErrors pins the typed error surface: concrete types carry the
// offending name or bound, and every one matches its sentinel.
func TestTypedErrors(t *testing.T) {
	eng := mustEngine(t)
	ctx := context.Background()
	seq := grouped(t)

	_, err := eng.Compress(ctx, seq, pta.Plan{Strategy: "nope", Budget: pta.Size(4)})
	var unknown *pta.UnknownStrategyError
	if !errors.As(err, &unknown) || !errors.Is(err, pta.ErrUnknownStrategy) {
		t.Fatalf("unknown strategy: %v", err)
	}
	if unknown.Name != "nope" || len(unknown.Known) == 0 {
		t.Errorf("UnknownStrategyError = %+v", unknown)
	}

	cmin := seq.CMin()
	_, err = eng.Compress(ctx, seq, pta.Plan{Strategy: "ptac", Budget: pta.Size(cmin - 1)})
	var inf *pta.InfeasibleBudgetError
	if !errors.As(err, &inf) || !errors.Is(err, pta.ErrBudgetInfeasible) {
		t.Fatalf("infeasible budget: %v", err)
	}
	if inf.Strategy != "ptac" || inf.CMin != cmin || inf.Budget != pta.Size(cmin-1) {
		t.Errorf("InfeasibleBudgetError = %+v", inf)
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	_, err = eng.Compress(cctx, seq, pta.Plan{Strategy: "ptac", Budget: pta.Size(cmin)})
	var canceled *pta.CanceledError
	if !errors.As(err, &canceled) || !errors.Is(err, pta.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: %v", err)
	}
}

// TestAmnesicStrategy: the "amnesic" registry entry reproduces the direct
// internal reduction and honors Options.Amnesic; the nil default works.
func TestAmnesicStrategy(t *testing.T) {
	eng := mustEngine(t)
	ctx := context.Background()
	seq := oneDim(t)
	now := seq.Rows[len(seq.Rows)-1].T.End
	const c = 24

	res, err := eng.Compress(ctx, seq, pta.Plan{
		Strategy: "amnesic",
		Budget:   pta.Size(c),
		Options:  &pta.Options{Amnesic: pta.AmnesicLinearAge(now, 2.0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := amnesic.ReduceSize(ctx, seq, c, amnesic.LinearAge(now, 2.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Series.Equal(direct.Sequence, 1e-9) || math.Abs(res.Error-direct.Error) > 1e-9*(1+direct.Error) {
		t.Error("registry amnesic differs from direct amnesic.ReduceSize")
	}

	// The nil default must work (CLI and registry sweep path) and stay
	// within the size budget.
	def, err := eng.Compress(ctx, seq, pta.Plan{Strategy: "amnesic", Budget: pta.Size(c)})
	if err != nil {
		t.Fatal(err)
	}
	if def.C > c {
		t.Errorf("default amnesic size %d exceeds budget %d", def.C, c)
	}
}
