// Package pta is the public front door of the parsimonious temporal
// aggregation library (Gordevicius, Gamper, Böhlen; EDBT 2009). It bridges
// the internal temporal data model to a small, swappable evaluator API:
//
//   - Series is a sequential relation — the output of instant temporal
//     aggregation and the input of every compression strategy.
//   - Budget unifies the paper's two compression targets: a size bound c
//     (Size) or an error bound ε relative to SSEmax (ErrorBound).
//   - Evaluator is the strategy interface; the package registry names every
//     implementation (exact dynamic programming, greedy merging, streaming
//     greedy with δ read-ahead, age-weighted amnesic reduction, and the
//     classic time-series baselines PAA, PLA and APCA behind the same
//     interface). Strategies lists the names.
//   - Engine is the session-oriented entry point: New(opts...) configures
//     weights, parallelism, estimators, the DP row-fill algorithm
//     (WithFillAlgo) and reusable scratch buffers once, then
//     Compress/CompressMany/CompressStream evaluate any number of plans
//     under a context, concurrently safe.
//   - Fingerprint, MatrixSet and DPClass are the matrix-cache hooks: a
//     serving layer keys warm DP matrices by (series content, strategy
//     class, weights) and answers repeated budgets of a hot series without
//     refilling them. internal/serve and cmd/ptaserve build the HTTP
//     serving layer on exactly these three.
//
// A minimal end-to-end use (see the Example functions for runnable
// versions of every entry point):
//
//	seq, _ := ita.Eval(rel, query)                      // ITA result
//	eng, _ := pta.New(pta.WithParallelism(4))
//	res, err := eng.Compress(ctx, seq, pta.Plan{Strategy: "ptac", Budget: pta.Size(12)})
//	// res.Series has ≤ 12 rows, res.Error is the introduced SSE
//
// The context-free helpers Compress and CompressStream wrap a lazily
// initialized serial default engine, so one-shot callers stay one line.
//
// New backends register themselves with Register and become available to
// every consumer — the CLI, the HTTP server, the benchmark harness and the
// experiment suite all enumerate the registry instead of hard-wiring call
// sites, and FormatStrategies renders the one canonical description table
// they all share.
package pta

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/temporal"
)

// Series is a sequential relation (Section 3 of the paper): rows hold a
// dictionary-encoded aggregation group, p aggregate values and a validity
// interval, sorted by (group, time) with non-intersecting timestamps within
// each group. It aliases the internal temporal model, so values returned by
// the internal packages flow through the facade unchanged.
type Series = temporal.Sequence

// Row is one tuple of a Series.
type Row = temporal.SeqRow

// Interval is a closed chronon interval [Start, End].
type Interval = temporal.Interval

// Chronon is a discrete time instant.
type Chronon = temporal.Chronon

// Attribute describes one grouping attribute of a Series.
type Attribute = temporal.Attribute

// Estimate carries the a-priori guesses the streaming error-bounded
// evaluator needs before its input ends: the expected input size N and the
// expected maximal error EMax (Section 6.3).
type Estimate = core.Estimate

// Stream yields the rows of a sequential relation in (group, time) order;
// ita.Iterator implements it, so streaming strategies can compress an ITA
// result while it is still being produced.
type Stream = core.Stream

// FillAlgo selects the row-fill algorithm of the exact DP strategies. Every
// algorithm produces bitwise-identical matrices and results; they differ
// only in speed (see the core documentation and docs/ARCHITECTURE.md).
type FillAlgo = core.FillAlgo

// Fill-algorithm selections (Options.FillAlgo / WithFillAlgo / the serve
// codec's fill_algo field).
const (
	// FillAuto picks the algorithm by input size (the default).
	FillAuto = core.FillAuto
	// FillPruned is the paper's pruned right-to-left candidate scan.
	FillPruned = core.FillPruned
	// FillDC is the monotone divide-and-conquer fill, O(n log n) per row
	// on counter-like (per-run monotone) series.
	FillDC = core.FillDC
	// FillSMAWK is the SMAWK row-minima fill, O(n) per row on counter-like
	// series.
	FillSMAWK = core.FillSMAWK
	// FillOnline is the online (LARSCH-style) monotone frontier fill: cells
	// answered left to right with incremental candidate maintenance, the
	// algorithm the incremental Solver and the streaming exact-DP path
	// auto-select.
	FillOnline = core.FillOnline
)

// ParseFillAlgo resolves a fill-algorithm name ("auto", "pruned", "dc",
// "smawk", "online"). Unknown names fail with a facade-level error listing
// the recognized names.
func ParseFillAlgo(s string) (FillAlgo, error) {
	a, err := core.ParseFillAlgo(s)
	if err != nil {
		return a, fmt.Errorf("pta: unknown fill algorithm %q (have %v)", s, FillAlgoNames())
	}
	return a, nil
}

// FillAlgoNames lists the recognized fill-algorithm names.
func FillAlgoNames() []string { return core.FillAlgoNames() }

// NewSeries returns an empty series with the given grouping attributes and
// aggregate attribute names.
func NewSeries(groupAttrs []Attribute, aggNames []string) *Series {
	return temporal.NewSequence(groupAttrs, aggNames)
}

// NewStream adapts an in-memory series to the Stream interface.
func NewStream(s *Series) Stream { return core.NewSliceStream(s) }

// Read-ahead settings for the streaming strategies (the δ of Section 6.2).
const (
	// ReadAheadDefault (the Options zero value) is δ = ∞: merges happen
	// early only when provably identical to the greedy merging strategy
	// (Theorems 2 and 3), at the price of an unbounded heap.
	ReadAheadDefault = 0
	// ReadAheadEager is δ = 0: merge whenever possible. Smallest heap,
	// largest error.
	ReadAheadEager = -1
	// ReadAheadInf is δ = ∞, stated explicitly.
	ReadAheadInf = core.DeltaInf
)

// Options carries evaluation parameters shared by all strategies. The zero
// value is ready to use. Engine-level defaults are set once with the
// functional options of New (WithWeights, WithReadAhead); per-call overrides
// travel in Plan.Options.
type Options struct {
	// Weights holds one positive weight per aggregate attribute (w_d of
	// Definition 5). nil means all weights are 1.
	Weights []float64
	// ReadAhead is the δ read-ahead of the streaming strategies: 0
	// (ReadAheadDefault) and ReadAheadInf mean δ = ∞, ReadAheadEager means
	// δ = 0, any positive value is that δ. Non-streaming strategies ignore
	// it.
	ReadAhead int
	// Estimate overrides the (N, EMax) estimate of the streaming
	// error-bounded strategy. nil lets in-memory evaluation compute the
	// exact values; CompressStream with an error budget requires it (or an
	// engine-level WithEstimator).
	Estimate *Estimate
	// Amnesic is the relative amnesic function RA(t) of the "amnesic"
	// strategy: how much more error a chronon tolerates than the present
	// (values must be positive; typically grows with age). nil selects
	// AmnesicLinearAge over the series' own time span. Other strategies
	// ignore it.
	Amnesic func(Chronon) float64
	// FillAlgo selects the exact-DP row-fill algorithm (FillAuto picks by
	// input size). Results are identical for every selection; pin one to
	// A/B performance or to keep cache classes separated (DPClassWith).
	// Non-DP strategies ignore it.
	FillAlgo FillAlgo

	// scratch carries the engine's reusable DP buffers for this call; it is
	// set by the engine only and never shared across concurrent calls.
	scratch *core.Scratch
}

// coreOptions projects the options onto the internal evaluator options,
// without cancellation.
func (o Options) coreOptions() core.Options {
	return core.Options{Weights: o.Weights, Fill: o.FillAlgo}
}

// coreOptionsCtx projects the options onto the internal evaluator options,
// carrying the call context and the engine scratch buffers.
func (o Options) coreOptionsCtx(ctx context.Context) core.Options {
	return core.Options{Weights: o.Weights, Fill: o.FillAlgo, Ctx: ctx, Scratch: o.scratch}
}

// delta resolves the effective δ.
func (o Options) delta() int {
	switch {
	case o.ReadAhead > 0:
		return o.ReadAhead
	case o.ReadAhead == ReadAheadEager:
		return 0
	default:
		return core.DeltaInf
	}
}

// Stats counts the work an evaluation performed. Dynamic-programming
// strategies fill Cells and InnerIters; greedy strategies fill Merges,
// MaxHeap and ReadAhead.
type Stats struct {
	// Cells is the number of DP matrix cells evaluated.
	Cells int64
	// InnerIters is the number of DP split points tried across all cells.
	InnerIters int64
	// EnvelopeSkips is the number of DP candidates discarded in O(1) range
	// skips by the envelope-pruned completion scan (zero for non-DP
	// strategies and for workloads whose cells never reach the envelope).
	EnvelopeSkips int64
	// Merges is the number of greedy merge steps performed.
	Merges int
	// MaxHeap is the largest number of tuples simultaneously held by a
	// greedy evaluator (c+β of the complexity analysis).
	MaxHeap int
	// ReadAhead is β = MaxHeap − C (never negative).
	ReadAhead int
}

// Result is the outcome of one compression: the reduced series, its size,
// the introduced sum-squared error SSE(input, Series), and which strategy
// and budget produced it.
type Result struct {
	// Series is the reduced sequential relation.
	Series *Series
	// C is the number of rows of Series.
	C int
	// Error is SSE(input, Series) under the option weights.
	Error float64
	// Strategy is the registry name of the evaluator that ran.
	Strategy string
	// Budget is the budget the evaluation was given.
	Budget Budget
	// Stats describes the work performed.
	Stats Stats
}

// Compress reduces the series under the given budget with the named
// strategy (see Strategies for the registry). It is a thin wrapper over a
// lazily-initialized default Engine — context-free and serial, so existing
// callers keep compiling; new code that wants cancellation, reuse or
// group-parallel evaluation should hold its own Engine from New.
func Compress(s *Series, strategy string, b Budget, opts Options) (*Result, error) {
	return defaultEngine().Compress(context.Background(), s,
		Plan{Strategy: strategy, Budget: b, Options: &opts})
}

// CompressStream reduces a row stream under the given budget with the named
// strategy, which must be stream-capable (a StreamEvaluator — see Describe).
// With an error budget, Options.Estimate must provide the (N, EMax) guesses,
// since the exact values are unknowable before the stream ends. Like
// Compress, it wraps the default Engine; Engine.CompressStream additionally
// pushes the result rows into a Sink.
func CompressStream(src Stream, strategy string, b Budget, opts Options) (*Result, error) {
	return defaultEngine().CompressStream(context.Background(), src,
		Plan{Strategy: strategy, Budget: b, Options: &opts}, nil)
}

// MaxError returns SSEmax(s): the error of merging every maximal adjacent
// run of the series into one tuple — the reference point of error budgets.
func MaxError(s *Series, opts Options) (float64, error) {
	px, err := core.NewKernel(s, opts.coreOptions())
	if err != nil {
		return 0, err
	}
	return px.MaxError(), nil
}

// MonotoneCoverage reports the fraction of the series' rows lying inside
// piecewise-monotone segments long enough for the exact DP's monotone row
// fills (FillDC/FillSMAWK/FillOnline) to engage — 1.0 on counter-like data, 0.0 on
// pure oscillating noise. It predicts how much of an evaluation runs at the
// monotone fills' O(n log n)/O(n) per-row cost instead of the pruned scan's;
// results are bit-identical either way. The weights only validate (the
// segmentation is weight-independent).
func MonotoneCoverage(s *Series, opts Options) (float64, error) {
	px, err := core.NewKernel(s, opts.coreOptions())
	if err != nil {
		return 0, err
	}
	return px.MonotoneCoverage(), nil
}

// SSE returns the sum-squared error between a series and a reduction of it
// (Definition 5), matching aggregation groups by value.
func SSE(s, z *Series, opts Options) (float64, error) {
	return core.SSEBetween(s, z, opts.coreOptions())
}

// ErrorCurve returns the minimal error of reducing s to k tuples for every
// k = 1..kmax (+Inf where the reduction is infeasible). It costs one
// size-bounded exact evaluation with c = kmax.
func ErrorCurve(s *Series, kmax int, opts Options) ([]float64, error) {
	return core.ErrorCurve(s, kmax, opts.coreOptions())
}

// Matrices runs the exact dynamic program for k = 1..c and returns copies of
// the error matrix rows E[k] and split-point rows J[k] (the paper's
// Figs. 4-5; row k at index k−1, columns 1-based). It exists for inspection;
// Compress is the production entry point.
func Matrices(s *Series, c int, opts Options) ([][]float64, [][]int32, error) {
	return core.Matrices(s, c, opts.coreOptions())
}

// ExactEstimate computes the exact (N, EMax) of an in-memory series, for
// feeding CompressStream when the data is available locally.
func ExactEstimate(s *Series, opts Options) (Estimate, error) {
	return core.ExactEstimate(s, opts.coreOptions())
}

// SampleEstimate estimates (N, EMax) for the ITA result of a relation of
// inputSize tuples from a prefix sample holding the given fraction of its
// rows (Section 6.3).
func SampleEstimate(sample *Series, inputSize int, fraction float64, opts Options) (Estimate, error) {
	return core.SampleEstimate(sample, inputSize, fraction, opts.coreOptions())
}

// RandomSampleEstimate estimates (N, EMax) from a uniform random sample of
// the series' rows — markedly less biased than a prefix sample on
// non-stationary data.
func RandomSampleEstimate(s *Series, fraction float64, seed int64, opts Options) (Estimate, error) {
	return core.RandomSampleEstimate(s, fraction, seed, opts.coreOptions())
}

// GroupCount returns the number of maximal same-group runs of the series —
// the floor reachable by the gap-bridging strategy.
func GroupCount(s *Series) int { return core.GroupCount(s) }
