package pta

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/temporal"
)

// Fingerprint returns a stable content hash of the series: two series with
// the same schema (grouping attributes, aggregate names), the same grouping
// values per row, the same aggregate values and the same validity intervals
// fingerprint identically — regardless of how their group dictionaries
// assigned ids. It is the cache key half a serving layer needs to recognize
// a hot series across requests (the other half is the strategy's DPClass and
// the evaluation weights).
//
// The hash covers values exactly (float bits, not formatted decimals), and
// every variable-length field is length-prefixed, so distinct series cannot
// collide by concatenation.
func Fingerprint(s *Series) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(v string) {
		u64(uint64(len(v)))
		h.Write([]byte(v))
	}
	datum := func(d temporal.Datum) {
		u64(uint64(d.Kind()))
		switch d.Kind() {
		case temporal.KindInt:
			u64(uint64(d.IntVal()))
		case temporal.KindFloat:
			u64(math.Float64bits(d.FloatVal()))
		default:
			str(d.Text())
		}
	}

	u64(uint64(len(s.GroupAttrs)))
	for _, a := range s.GroupAttrs {
		str(a.Name)
		u64(uint64(a.Kind))
	}
	u64(uint64(len(s.AggNames)))
	for _, n := range s.AggNames {
		str(n)
	}
	u64(uint64(len(s.Rows)))
	for _, r := range s.Rows {
		vals := s.Groups.Values(r.Group)
		u64(uint64(len(vals)))
		for _, v := range vals {
			datum(v)
		}
		for _, a := range r.Aggs {
			u64(math.Float64bits(a))
		}
		u64(uint64(r.T.Start))
		u64(uint64(r.T.End))
	}
	return hex.EncodeToString(h.Sum(nil))
}
