package pta

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// MatrixSet is a warm pair of DP matrices for one series and one exact-DP
// strategy class: rows of the error/split-point matrices are filled on
// demand and retained, so every later budget on the same series reuses the
// rows earlier budgets paid for — a repeated budget costs one backtrack and
// zero matrix cells. It is the unit a serving layer caches per hot series
// (see internal/serve's LRU matrix cache); Fingerprint supplies the series
// half of the cache key, DPClass the strategy half.
//
// A MatrixSet is NOT safe for concurrent use: callers serialize access, the
// natural fit for a cache that guards each entry with a mutex. The context
// travels per Compress call, so one cached set serves requests with
// different deadlines; an aborted call leaves the filled rows intact.
type MatrixSet struct {
	strategy string
	class    string
	sv       *core.Solver
}

// dpFlags resolves a strategy name to its exact-DP pruning flags; ok is
// false for unregistered names and for strategies that are not an exact
// dynamic program.
func dpFlags(strategy string) (pruneI, pruneJ, ok bool) {
	ev, found := Lookup(strategy)
	if !found {
		return false, false, false
	}
	mev, isFunc := ev.(interface{ multiDP() (bool, bool, bool) })
	if !isFunc {
		return false, false, false
	}
	pruneI, pruneJ, isDP := mev.multiDP()
	return pruneI, pruneJ, isDP
}

// DPClass reports the canonical matrix-cache class of a strategy: exact-DP
// strategies with the same Section 5.3 pruning flags fill identical matrices
// and therefore share cached MatrixSets — "ptac" and "ptae" both map to
// "dp+imax+jmin", so a size-bounded and an error-bounded request on the same
// hot series hit the same cache entry. ok is false for strategies that are
// not an exact dynamic program (greedy, streaming, amnesic, baselines):
// their evaluations are not matrix-cacheable.
func DPClass(strategy string) (string, bool) {
	return DPClassWith(strategy, FillAuto)
}

// DPClassWith is DPClass for an explicit row-fill algorithm: requests that
// pin an algorithm (the serve codec's fill_algo, Options.FillAlgo) key
// their cached matrices per algorithm — "dp+imax+jmin/fill=smawk" — so an
// A/B experiment never mixes entries between arms, while the default
// FillAuto keeps the shared "dp+imax+jmin" class. Every algorithm fills
// bit-identical matrices, so the split is a bookkeeping guarantee, not a
// correctness requirement.
func DPClassWith(strategy string, fill FillAlgo) (string, bool) {
	pruneI, pruneJ, ok := dpFlags(strategy)
	if !ok {
		return "", false
	}
	class := "dp"
	if pruneI {
		class += "+imax"
	}
	if pruneJ {
		class += "+jmin"
	}
	if fill != FillAuto {
		class += "/fill=" + fill.String()
	}
	return class, true
}

// NewMatrixSet builds a warm matrix set for the series under the named
// exact-DP strategy ("ptac", "ptae", "dpbasic" or an ablation mode; see
// DPClass). Options supply the error weights and the row-fill algorithm
// (FillAlgo; the class reflects a pinned algorithm, see DPClassWith);
// ReadAhead/Estimate/Amnesic do not apply to exact DP and are ignored. The
// series must be non-empty, and the caller must not mutate it while the set
// is alive — the matrices describe the rows as they were.
func NewMatrixSet(s *Series, strategy string, opts Options) (*MatrixSet, error) {
	pruneI, pruneJ, ok := dpFlags(strategy)
	if !ok {
		if _, found := Lookup(strategy); !found {
			return nil, &UnknownStrategyError{Name: strategy, Known: Strategies()}
		}
		return nil, fmt.Errorf("pta: strategy %q is not an exact DP: no matrices to retain", strategy)
	}
	sv, err := core.NewSolver(s, opts.coreOptions(), pruneI, pruneJ)
	if err != nil {
		return nil, fmt.Errorf("pta: %s: %w", strategy, err)
	}
	class, _ := DPClassWith(strategy, opts.FillAlgo)
	return &MatrixSet{strategy: strategy, class: class, sv: sv}, nil
}

// Strategy returns the registry name the set was built for.
func (m *MatrixSet) Strategy() string { return m.strategy }

// Class returns the set's DPClass — sets of the same class over the same
// series are interchangeable.
func (m *MatrixSet) Class() string { return m.class }

// N returns the input size n.
func (m *MatrixSet) N() int { return m.sv.N() }

// Rows returns how many matrix rows are filled so far (grows monotonically
// toward the deepest budget served).
func (m *MatrixSet) Rows() int { return m.sv.Rows() }

// MemBytes estimates the retained matrix memory, for byte-bounded caches.
func (m *MatrixSet) MemBytes() int64 { return m.sv.MemBytes() }

// FillAlgo returns the concrete row-fill algorithm the set's solver
// resolved to (never FillAuto) — what /metrics reports as the kernel path
// production traffic takes.
func (m *MatrixSet) FillAlgo() FillAlgo { return m.sv.Fill() }

// MonotoneCoverage reports the fraction of the series' rows the monotone
// row fills accelerate (see pta.MonotoneCoverage); cached with the set's
// kernel, so per-request scrapes are free.
func (m *MatrixSet) MonotoneCoverage() float64 { return m.sv.MonotoneCoverage() }

// Compress answers one budget from the warm matrices, filling further rows
// only when the budget needs deeper ones. Errors are the typed facade
// errors (ErrBudgetInfeasible, ErrCanceled, ...); Result.Stats reports the
// cumulative fill work of the set, not a per-call share — a fully warm set
// answers with zero new cells.
func (m *MatrixSet) Compress(ctx context.Context, b Budget) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Strategy: m.strategy, Cause: err}
	}
	var (
		dres *core.DPResult
		err  error
	)
	switch b.Kind() {
	case BudgetSize:
		dres, err = m.sv.SolveSize(ctx, b.C())
	case BudgetError:
		dres, err = m.sv.SolveError(ctx, b.Eps())
	default:
		return nil, ErrBudgetKind
	}
	res, err := fromDP(dres, err)
	return finishResult(m.strategy, b, res, err)
}
