package dist

import "repro/internal/obs"

// metrics is the coordinator's observability surface, on the registry the
// caller shares via WithRegistry (cmd/ptaserve puts it on the same /metrics
// as the serving tier) or a private one.
type metrics struct {
	reg           *obs.Registry
	compressions  *obs.Counter
	shards        *obs.Counter
	retries       *obs.Counter
	ringMoves     *obs.Counter
	curveHits     *obs.Counter
	curveMisses   *obs.Counter
	workerSeconds *obs.HistogramVec
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg: reg,
		compressions: reg.NewCounter("ptadist_compressions_total",
			"Distributed compressions coordinated."),
		shards: reg.NewCounter("ptadist_shard_requests_total",
			"Shard curve fetches issued to workers (the scatter fan-out)."),
		retries: reg.NewCounter("ptadist_retries_total",
			"Shard requests retried after a worker failure, timeout, error status or corrupt response."),
		ringMoves: reg.NewCounter("ptadist_ring_moves_total",
			"Recently routed series whose primary worker changed on a ring update."),
		curveHits: reg.NewCounter("ptadist_curve_hits_total",
			"Shards seeded from the coordinator's sub-request curve cache (no worker scatter for already-gathered rows)."),
		curveMisses: reg.NewCounter("ptadist_curve_misses_total",
			"Shards whose run fingerprint was not in the sub-request curve cache."),
		workerSeconds: reg.NewHistogramVec("ptadist_worker_request_seconds",
			"Latency of one worker HTTP request, by worker.", nil, "worker"),
	}
}
