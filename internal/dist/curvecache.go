package dist

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/pta"
)

// curveCache is the coordinator's sub-request cache: the gathered per-run
// state — error curve, split ranges, worker-reported DP cost — keyed by the
// run's content fingerprint plus the options that change curve values
// (weights, pinned fill algorithm). Repeat compressions of a series whose
// runs did not change seed their shards from the cache and skip the worker
// scatter entirely; an edited run fingerprints to a new key and only that
// run is re-fetched. Like every cache tier here, invalidation is by
// displacement only — the key is a content address, so an entry can never
// go stale in place.
//
// Ranges are stored relative to the run (the shard's lo subtracted), because
// the same run content can sit at a different global offset in another
// series — or shift inside an edited one — and still reuse the entry.
type curveCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	byKey    map[string]*list.Element // value: *curveEntry
}

type curveEntry struct {
	key    string
	curve  []float64
	ranges [][][2]int32 // ranges[k-1][i] = 0-based (first,last) within the run
	cells  int64
	inner  int64
}

func newCurveCache(capacity int) *curveCache {
	return &curveCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// curveKey derives a shard's cache key. The fingerprint already hashes the
// run's rows and schema; weights and the pinned fill algorithm are folded in
// because they change curve values (weights) or the worker's DP class
// (fill), mirroring the serve tier's matrix-cache key.
func curveKey(fp string, opts pta.Options) string {
	var sb strings.Builder
	sb.WriteString(fp)
	for _, w := range opts.Weights {
		sb.WriteByte('|')
		sb.WriteString(strconv.FormatFloat(w, 'b', -1, 64))
	}
	sb.WriteByte('|')
	if opts.FillAlgo != 0 {
		sb.WriteString(opts.FillAlgo.String())
	}
	return sb.String()
}

// seed copies a cached entry into a fresh shard — curve, ranges shifted to
// the shard's global offset, and the DP cost the fleet once paid for the
// rows — reporting whether the key was present. Slices are cloned both ways,
// so a shard deepening its curve never mutates the cached state.
func (cc *curveCache) seed(sh *shard, key string) bool {
	cc.mu.Lock()
	el, ok := cc.byKey[key]
	if !ok {
		cc.mu.Unlock()
		return false
	}
	cc.ll.MoveToFront(el)
	e := el.Value.(*curveEntry)
	sh.curve = append([]float64(nil), e.curve...)
	sh.ranges = make([][][2]int32, len(e.ranges))
	lo := int32(sh.lo)
	for k, rgs := range e.ranges {
		out := make([][2]int32, len(rgs))
		for i, rg := range rgs {
			out[i] = [2]int32{rg[0] + lo, rg[1] + lo}
		}
		sh.ranges[k] = out
	}
	sh.cells = e.cells
	sh.inner = e.inner
	cc.mu.Unlock()
	return true
}

// store commits a shard's gathered state under key, replacing any shallower
// entry. The shard's slices are cloned and its ranges rebased to the run.
func (cc *curveCache) store(sh *shard, key string) {
	e := &curveEntry{
		key:    key,
		curve:  append([]float64(nil), sh.curve...),
		ranges: make([][][2]int32, len(sh.ranges)),
		cells:  sh.cells,
		inner:  sh.inner,
	}
	lo := int32(sh.lo)
	for k, rgs := range sh.ranges {
		out := make([][2]int32, len(rgs))
		for i, rg := range rgs {
			out[i] = [2]int32{rg[0] - lo, rg[1] - lo}
		}
		e.ranges[k] = out
	}
	cc.mu.Lock()
	if el, ok := cc.byKey[key]; ok {
		cc.ll.MoveToFront(el)
		el.Value = e
	} else {
		cc.byKey[key] = cc.ll.PushFront(e)
		for cc.ll.Len() > cc.capacity {
			back := cc.ll.Back()
			cc.ll.Remove(back)
			delete(cc.byKey, back.Value.(*curveEntry).key)
		}
	}
	cc.mu.Unlock()
}

// len reports the resident entry count (for stats and tests).
func (cc *curveCache) len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.ll.Len()
}
