package dist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func ringWorkers(n int) []string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return ws
}

func without(ws []string, victim string) []string {
	out := make([]string, 0, len(ws)-1)
	for _, w := range ws {
		if w != victim {
			out = append(out, w)
		}
	}
	return out
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("series-%d", i)
	}
	return keys
}

// TestRingDeterministicRouting: the same membership set routes the same
// key to the same worker, regardless of listing order or rebuild count.
func TestRingDeterministicRouting(t *testing.T) {
	ws := ringWorkers(5)
	reversed := make([]string, len(ws))
	for i, w := range ws {
		reversed[len(ws)-1-i] = w
	}
	r1 := newRing(ws, 96)
	r2 := newRing(reversed, 96)
	r3 := newRing(ws, 96)
	for _, key := range ringKeys(300) {
		a, b, c := r1.lookup(key), r2.lookup(key), r3.lookup(key)
		if a != b {
			t.Fatalf("key %q: order-dependent routing (%s vs %s)", key, a, b)
		}
		if a != c {
			t.Fatalf("key %q: non-deterministic routing (%s vs %s)", key, a, c)
		}
	}
}

// TestRingSequence: the failover walk starts at the primary and visits
// distinct workers, covering the whole fleet when asked.
func TestRingSequence(t *testing.T) {
	ws := ringWorkers(4)
	r := newRing(ws, 64)
	for _, key := range ringKeys(50) {
		seq := r.sequence(key, len(ws))
		if len(seq) != len(ws) {
			t.Fatalf("key %q: sequence has %d workers, want %d", key, len(seq), len(ws))
		}
		if seq[0] != r.lookup(key) {
			t.Fatalf("key %q: sequence does not start at the primary", key)
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("key %q: duplicate worker %s in failover sequence", key, w)
			}
			seen[w] = true
		}
	}
	if got := r.sequence("k", 2); len(got) != 2 {
		t.Fatalf("sequence(k, 2) returned %d workers", len(got))
	}
	empty := newRing(nil, 64)
	if got := empty.lookup("k"); got != "" {
		t.Fatalf("empty ring routed to %q", got)
	}
}

// TestRingMinimalDisruption (table-driven): removing one worker moves only
// the keys it owned, adding one moves keys only onto it, and the moved
// fraction stays near K/N.
func TestRingMinimalDisruption(t *testing.T) {
	const K = 4000
	keys := ringKeys(K)
	for _, tc := range []struct {
		name   string
		n      int
		vnodes int
	}{
		{"n3_v96", 3, 96},
		{"n5_v96", 5, 96},
		{"n8_v32", 8, 32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := ringWorkers(tc.n)
			before := newRing(ws, tc.vnodes)
			victim := ws[tc.n/2]
			after := newRing(without(ws, victim), tc.vnodes)

			moved := 0
			for _, key := range keys {
				was, now := before.lookup(key), after.lookup(key)
				if now == victim {
					t.Fatalf("key %q still routed to removed worker", key)
				}
				if was == victim {
					moved++
					continue
				}
				if was != now {
					t.Fatalf("key %q moved between surviving workers (%s -> %s)", key, was, now)
				}
			}
			// Expected ≈ K/N; allow generous slack for hash variance.
			lo, hi := K/(4*tc.n), 3*K/tc.n
			if moved < lo || moved > hi {
				t.Fatalf("removal moved %d of %d keys, want within [%d, %d] (~K/N = %d)",
					moved, K, lo, hi, K/tc.n)
			}

			// Adding a fresh worker moves keys only onto it.
			joined := append(without(ws, victim), "http://10.0.0.99:8080")
			grown := newRing(joined, tc.vnodes)
			movedTo := 0
			for _, key := range keys {
				was, now := after.lookup(key), grown.lookup(key)
				if was == now {
					continue
				}
				if now != "http://10.0.0.99:8080" {
					t.Fatalf("key %q moved to %s, not the joining worker", key, now)
				}
				movedTo++
			}
			if movedTo < lo || movedTo > hi {
				t.Fatalf("join moved %d of %d keys, want within [%d, %d]", movedTo, K, lo, hi)
			}
		})
	}
}

// TestRingDisruptionProperty (quick.Check): over random fleet sizes, vnode
// counts and key sets, removal never reshuffles keys between survivors.
func TestRingDisruptionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		vnodes := 16 << rng.Intn(3)
		ws := ringWorkers(n)
		before := newRing(ws, vnodes)
		victim := ws[rng.Intn(n)]
		after := newRing(without(ws, victim), vnodes)
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("q-%d-%d", seed, i)
			was, now := before.lookup(key), after.lookup(key)
			if was == victim {
				if now == victim {
					return false
				}
			} else if was != now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
