package dist

// Shared warm tier suite: the coordinator's sub-request curve cache
// (repeat compressions of unchanged runs stop re-scattering) and the fleet
// scenario behind it — a worker killed -9 with its spill volume wiped comes
// back and warms itself entirely from its peers, serving previously-warm
// traffic with zero DP cells filled.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/dist/disttest"
	"repro/internal/serve"
	"repro/pta"
)

// TestDistCurveCacheSkipsRescatter: a repeat compression of an unchanged
// series issues zero worker requests — every shard seeds from the curve
// cache — and still answers bit-identically, stats included. A deeper
// budget fetches only the missing curve rows.
func TestDistCurveCacheSkipsRescatter(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	co := newTestCoordinator(t, cluster)
	s := fixtureSeries(t)
	b := pta.Size(s.CMin() + 2)

	first := mustCompress(t, co, s, b)
	if co.m.curveMisses.Value() == 0 {
		t.Fatal("first compression recorded no curve-cache misses")
	}
	if co.curves.len() == 0 {
		t.Fatal("no curves cached after the first compression")
	}

	shardsBefore := co.m.shards.Value()
	second := mustCompress(t, co, s, b)
	assertSameResult(t, "cached repeat", second, first)
	if second.Stats.Cells != first.Stats.Cells || second.Stats.InnerIters != first.Stats.InnerIters {
		t.Errorf("cached repeat stats %+v, want %+v (fleet cost is part of the entry)",
			second.Stats, first.Stats)
	}
	if got := co.m.shards.Value(); got != shardsBefore {
		t.Fatalf("repeat compression issued %d shard requests, want 0", got-shardsBefore)
	}
	if co.m.curveHits.Value() == 0 {
		t.Fatal("repeat compression recorded no curve hits")
	}

	// A deeper budget re-scatters only the rows the cache does not hold
	// yet; a third pass at that depth is then free again.
	deeper := pta.Size(min(s.Len(), s.CMin()+9))
	mustCompress(t, co, s, deeper)
	shardsAfterDeepen := co.m.shards.Value()
	if shardsAfterDeepen == shardsBefore {
		t.Fatal("deeper budget fetched nothing — curves cannot have been deep enough")
	}
	mustCompress(t, co, s, deeper)
	if got := co.m.shards.Value(); got != shardsAfterDeepen {
		t.Fatalf("repeat of the deeper budget issued %d shard requests, want 0", got-shardsAfterDeepen)
	}

	// The error-bound path deepens through the same cache.
	eb := pta.ErrorBound(0.4)
	firstE := mustCompress(t, co, s, eb)
	shardsAfterE := co.m.shards.Value()
	assertSameResult(t, "cached eps repeat", mustCompress(t, co, s, eb), firstE)
	if got := co.m.shards.Value(); got != shardsAfterE {
		t.Fatalf("repeat eps compression issued %d shard requests, want 0", got-shardsAfterE)
	}

	// WithCurveCache(0) restores the always-scatter behavior.
	off := newTestCoordinator(t, cluster, WithCurveCache(0))
	offFirst := mustCompress(t, off, s, b)
	offShards := off.m.shards.Value()
	assertSameResult(t, "cache off", mustCompress(t, off, s, b), offFirst)
	if got := off.m.shards.Value(); got == offShards {
		t.Fatal("disabled curve cache still skipped the re-scatter")
	}
	if off.m.curveHits.Value() != 0 || off.m.curveMisses.Value() != 0 {
		t.Fatal("disabled curve cache moved its counters")
	}
}

// TestDistCurveCacheDistinguishesOptions: weights and a pinned fill
// algorithm are part of the curve key — a change must re-scatter, not reuse
// the cached curves.
func TestDistCurveCacheDistinguishesOptions(t *testing.T) {
	cluster := disttest.NewCluster(t, 2, serve.Config{})
	co := newTestCoordinator(t, cluster)
	s := fixtureSeries(t)
	b := pta.Size(s.CMin() + 1)

	mustCompress(t, co, s, b)
	before := co.m.shards.Value()
	if _, err := co.Compress(t.Context(), s, b, pta.Options{Weights: []float64{2.5, 0.75}[:len(s.AggNames)]}); err != nil {
		t.Fatal(err)
	}
	if co.m.shards.Value() == before {
		t.Fatal("changed weights reused cached curves — wrong key")
	}
	before = co.m.shards.Value()
	algo, err := pta.ParseFillAlgo("dc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Compress(t.Context(), s, b, pta.Options{FillAlgo: algo}); err != nil {
		t.Fatal(err)
	}
	if co.m.shards.Value() == before {
		t.Fatal("changed fill algorithm reused cached curves — wrong key")
	}
}

// workerSend drives one compress/many request directly at a worker (the
// proxy address), the way ptaload does in the CI cluster smoke.
func workerSend(t *testing.T, url string, s *pta.Series, b pta.Budget) serve.ResultWire {
	t.Helper()
	body, err := json.Marshal(serve.CompressManyRequest{
		Series: serve.EncodeSeries(s),
		Plans:  []serve.PlanWire{{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", b.C())}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/compress/many", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker %s: status %d: %s", url, resp.StatusCode, data)
	}
	var out serve.ManyResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("worker %s: %d results, want 1", url, len(out.Results))
	}
	return out.Results[0]
}

// workerStats fetches one worker's /v1/stats body.
func workerStats(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestDistPeerWarmWipeRestart is the fleet acceptance scenario from the
// shared-warm-tier work: warm the tier, kill -9 a worker, wipe its spill
// volume, restart it — and the re-driven traffic must come back as warm
// hits fetched from peers, with the restarted worker filling zero DP cells.
func TestDistPeerWarmWipeRestart(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	cluster.WirePeers()
	keeper, bystander, victim := cluster.Workers[0], cluster.Workers[1], cluster.Workers[2]
	_ = bystander // present so peer rendezvous has a cold member to skip past

	// Ten distinct series, all cold-filled on the victim (the only worker
	// holding their blobs afterwards).
	type req struct {
		s *pta.Series
		b pta.Budget
	}
	reqs := make([]req, 0, 10)
	for seed := int64(100); seed < 110; seed++ {
		s := genSeries(rand.New(rand.NewSource(seed)), "mixed")
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req{s, pta.Size(s.CMin() + 1)})
	}
	for _, r := range reqs {
		res := workerSend(t, victim.URL(), r.s, r.b)
		if res.Stats.Cells == 0 {
			t.Fatal("cold fill on the victim reported zero cells")
		}
	}

	// The keeper warms itself from the victim over the peer tier: every
	// request is a warm hit with zero fill work, and the blobs are adopted
	// into the keeper's own spill.
	for _, r := range reqs {
		res := workerSend(t, keeper.URL(), r.s, r.b)
		if res.Cache != "hit" || res.Stats.Cells != 0 {
			t.Fatalf("keeper warm-up: cache=%q cells=%d, want peer-warm hit", res.Cache, res.Stats.Cells)
		}
	}
	if cells := workerStats(t, keeper.URL())["dp_cells_filled"].(float64); cells != 0 {
		t.Fatalf("keeper dp_cells_filled = %v, want 0 (all peer-warmed)", cells)
	}

	// kill -9 the victim, lose its volume, bring it back empty.
	victim.Kill()
	victim.WipeSpill()
	victim.Restart()

	// Re-driven traffic: every previously-warm series is a hit via peer
	// fetch; the restarted worker does no DP work at all.
	hits := 0
	for _, r := range reqs {
		res := workerSend(t, victim.URL(), r.s, r.b)
		if res.Stats.Cells != 0 {
			t.Fatalf("restarted victim filled %d cells, want 0", res.Stats.Cells)
		}
		if res.Cache == "hit" {
			hits++
		}
	}
	if ratio := float64(hits) / float64(len(reqs)); ratio < 0.9 {
		t.Fatalf("warm hit ratio %.2f after wipe-and-restart, want >= 0.9", ratio)
	}
	stats := workerStats(t, victim.URL())
	if cells := stats["dp_cells_filled"].(float64); cells != 0 {
		t.Fatalf("restarted victim dp_cells_filled = %v, want 0", cells)
	}
	peer := stats["peer"].(map[string]any)
	if fetched := peer["fetch_hits"].(float64); fetched != float64(len(reqs)) {
		t.Fatalf("restarted victim peer fetch_hits = %v, want %d", fetched, len(reqs))
	}
	if errs := peer["fetch_errors"].(float64); errs != 0 {
		t.Fatalf("restarted victim peer fetch_errors = %v, want 0", errs)
	}
}
