package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/pta"
)

const (
	defaultVnodes       = 96
	defaultRetries      = 3
	defaultBackoff      = 25 * time.Millisecond
	defaultShardTimeout = 15 * time.Second
	defaultFanout       = 16
	defaultCurveEntries = 256
	routedMemoLimit     = 4096
	maxResponseBytes    = 64 << 20
)

// Coordinator scatters a series over ptaserve workers and gathers an exact
// result. The unit of distribution is the maximal gap-free run (shards
// never span aggregation groups — every group boundary is a run boundary):
// each shard's error curve is fetched from the worker that consistent
// hashing assigns its fingerprint, so repeated compressions of the same
// series hit the same workers' matrix and spill caches, and the curves are
// recombined locally with the in-process allocation DP and the global cost
// kernel. Workers therefore only contribute curve values and split
// boundaries — every returned row is re-derived from the coordinator's own
// kernel, which is what makes the distributed result bit-identical to
// core.PTAcParallel/PTAeParallel (see docs/ARCHITECTURE.md § Distribution).
//
// A Coordinator is safe for concurrent use.
type Coordinator struct {
	client  *http.Client
	timeout time.Duration // per shard attempt
	retries int           // extra attempts per shard fetch
	backoff time.Duration // first retry delay; doubles per retry
	vnodes  int
	fanout  int // concurrent shard fetches

	m *metrics

	// curves is the sub-request cache over gathered per-run state (nil =
	// disabled); see curveCache.
	curves *curveCache

	mu     sync.Mutex
	ring   *ring
	routed map[string]string // fingerprint → primary worker; ring-move accounting
}

// Option configures a Coordinator at construction.
type Option func(*Coordinator) error

// WithWorkers sets the worker base URLs (e.g. "http://10.0.0.7:8080").
func WithWorkers(urls ...string) Option {
	return func(c *Coordinator) error {
		ws, err := normalizeWorkers(urls)
		if err != nil {
			return err
		}
		c.ring = newRing(ws, c.vnodes)
		return nil
	}
}

// WithHTTPClient replaces the HTTP client shard requests use.
func WithHTTPClient(client *http.Client) Option {
	return func(c *Coordinator) error {
		if client == nil {
			return fmt.Errorf("dist: WithHTTPClient(nil)")
		}
		c.client = client
		return nil
	}
}

// WithShardTimeout bounds one shard request attempt (default 15s); the
// caller's context still bounds the whole compression.
func WithShardTimeout(d time.Duration) Option {
	return func(c *Coordinator) error {
		if d <= 0 {
			return fmt.Errorf("dist: WithShardTimeout(%v): want > 0", d)
		}
		c.timeout = d
		return nil
	}
}

// WithRetries sets how many extra attempts a failed shard fetch gets; each
// retry walks to the next surviving ring replica (default 3).
func WithRetries(n int) Option {
	return func(c *Coordinator) error {
		if n < 0 {
			return fmt.Errorf("dist: WithRetries(%d): want >= 0", n)
		}
		c.retries = n
		return nil
	}
}

// WithBackoff sets the delay before the first retry; it doubles per retry
// (default 25ms).
func WithBackoff(d time.Duration) Option {
	return func(c *Coordinator) error {
		if d < 0 {
			return fmt.Errorf("dist: WithBackoff(%v): want >= 0", d)
		}
		c.backoff = d
		return nil
	}
}

// WithVirtualNodes sets the points per worker on the hash ring — more
// points, smoother balance (default 96).
func WithVirtualNodes(n int) Option {
	return func(c *Coordinator) error {
		if n < 1 {
			return fmt.Errorf("dist: WithVirtualNodes(%d): want >= 1", n)
		}
		c.vnodes = n
		return nil
	}
}

// WithFanout bounds concurrent shard fetches per compression (default 16).
func WithFanout(n int) Option {
	return func(c *Coordinator) error {
		if n < 1 {
			return fmt.Errorf("dist: WithFanout(%d): want >= 1", n)
		}
		c.fanout = n
		return nil
	}
}

// WithCurveCache bounds the coordinator's sub-request cache of gathered
// per-run error curves, in runs (default 256; 0 disables). Repeat
// compressions whose runs are unchanged seed their shards from it and skip
// the worker scatter entirely.
func WithCurveCache(entries int) Option {
	return func(c *Coordinator) error {
		if entries < 0 {
			return fmt.Errorf("dist: WithCurveCache(%d): want >= 0", entries)
		}
		if entries == 0 {
			c.curves = nil
			return nil
		}
		c.curves = newCurveCache(entries)
		return nil
	}
}

// WithRegistry puts the coordinator's metric families on reg instead of a
// private registry, so one /metrics exposition carries them.
func WithRegistry(reg *obs.Registry) Option {
	return func(c *Coordinator) error {
		if reg == nil {
			return fmt.Errorf("dist: WithRegistry(nil)")
		}
		c.m = newMetrics(reg)
		return nil
	}
}

// New builds a Coordinator. Note WithVirtualNodes must precede WithWorkers
// to affect the initial ring.
func New(opts ...Option) (*Coordinator, error) {
	c := &Coordinator{
		client:  &http.Client{},
		timeout: defaultShardTimeout,
		retries: defaultRetries,
		backoff: defaultBackoff,
		vnodes:  defaultVnodes,
		fanout:  defaultFanout,
		curves:  newCurveCache(defaultCurveEntries),
		routed:  make(map[string]string),
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.ring == nil {
		c.ring = newRing(nil, c.vnodes)
	}
	if c.m == nil {
		c.m = newMetrics(obs.NewRegistry())
	}
	return c, nil
}

// normalizeWorkers trims trailing slashes and rejects empties/duplicates.
func normalizeWorkers(urls []string) ([]string, error) {
	out := make([]string, 0, len(urls))
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("dist: empty worker URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("dist: duplicate worker URL %q", u)
		}
		seen[u] = true
		out = append(out, u)
	}
	return out, nil
}

// Registry returns the registry carrying the coordinator's metrics.
func (c *Coordinator) Registry() *obs.Registry { return c.m.reg }

// Workers returns the current worker set.
func (c *Coordinator) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.ring.workers...)
}

// SetWorkers replaces the worker set, rebuilding the ring. Recently routed
// series whose primary worker changes are counted on the ring-moves metric
// — the live measure of how much cache heat a membership change costs.
func (c *Coordinator) SetWorkers(urls ...string) error {
	ws, err := normalizeWorkers(urls)
	if err != nil {
		return err
	}
	moves := 0
	c.mu.Lock()
	c.ring = newRing(ws, c.vnodes)
	for key, w := range c.routed {
		if nw := c.ring.lookup(key); nw != w {
			moves++
			c.routed[key] = nw
		}
	}
	c.mu.Unlock()
	c.m.ringMoves.Add(uint64(moves))
	return nil
}

// route returns the key's failover sequence (primary first) and memoizes
// the primary for ring-move accounting.
func (c *Coordinator) route(key string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.ring.sequence(key, len(c.ring.workers))
	if len(seq) > 0 {
		if len(c.routed) >= routedMemoLimit {
			c.routed = make(map[string]string) // bounded memo: reset, not LRU
		}
		c.routed[key] = seq[0]
	}
	return seq
}

// shard is one maximal gap-free run of the series with the state gathered
// from workers: the error curve (curve[k-1] = optimal error at size k) and,
// per size, the global row ranges the worker's optimal reduction merges.
type shard struct {
	lo, hi int // 1-based row bounds in the global series
	sub    *pta.Series
	fp     string
	curve  []float64
	ranges [][][2]int32 // ranges[k-1][i] = global (first,last) of merged row i
	cells  int64        // worker-reported DP cost, summed over rounds
	inner  int64
}

// makeShards cuts the series into shards along the kernel's gap positions —
// exactly core.decomposeRuns' decomposition.
func makeShards(s *pta.Series, kn *core.CostKernel) []*shard {
	bounds := append(append([]int(nil), kn.Gaps()...), s.Len())
	shards := make([]*shard, 0, len(bounds))
	lo := 1
	for _, g := range bounds {
		sub := s.WithRows(s.Rows[lo-1 : g])
		shards = append(shards, &shard{lo: lo, hi: g, sub: sub, fp: pta.Fingerprint(sub)})
		lo = g + 1
	}
	return shards
}

// Compress evaluates one budget over the series using the worker fleet and
// returns a result bit-identical to the in-process parallel evaluators.
// opts forwards Weights and FillAlgo to the workers; ReadAhead does not
// apply to the exact DP.
func (c *Coordinator) Compress(ctx context.Context, s *pta.Series, b pta.Budget, opts pta.Options) (*pta.Result, error) {
	res, err := c.compress(ctx, s, b, opts)
	if err != nil {
		return nil, err
	}
	res.Strategy = "dist"
	res.Budget = b
	return res, nil
}

func (c *Coordinator) compress(ctx context.Context, s *pta.Series, b pta.Budget, opts pta.Options) (*pta.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := s.Len()
	if n == 0 {
		if b.Kind() == pta.BudgetSize && b.C() != 0 {
			return nil, fmt.Errorf("dist: size bound %d for an empty relation", b.C())
		}
		return &pta.Result{Series: s.WithRows(nil)}, nil
	}
	if len(c.Workers()) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	kn, err := core.NewKernel(s, core.Options{Weights: opts.Weights, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	c.m.compressions.Inc()

	if b.Kind() == pta.BudgetSize {
		cb := b.C()
		if cmin := kn.CMin(); cb < cmin {
			return nil, &core.InfeasibleSizeError{C: cb, CMin: cmin}
		}
		if cb >= n {
			return &pta.Result{Series: s.Clone(), C: n}, nil
		}
		shards := makeShards(s, kn)
		// Per-shard curves past cb−R+1 rows can never be chosen (every
		// other shard keeps ≥ 1 tuple) — the same truncation PTAcParallel
		// applies.
		if err := c.gather(ctx, shards, cb-len(shards)+1, opts); err != nil {
			return nil, err
		}
		final, choice := core.AllocateCurves(curvesOf(shards), cb)
		return finishResult(s, kn, shards, final, choice, cb)
	}

	// Error bound: iterative deepening exactly like PTAeParallel — the
	// acceptance threshold, the deepening schedule and the curve truncation
	// all match, so the chosen size k is identical. Each round widens the
	// per-shard fetch to only the new curve rows; the workers' matrix
	// caches make the repeat visits cheap.
	maxErr := kn.MaxError()
	accept := core.AcceptErrorBound(b.Eps()*maxErr, maxErr)
	shards := makeShards(s, kn)
	R := len(shards)
	for K := min(n, R+63); ; K = min(n, 2*K) {
		if err := c.gather(ctx, shards, K-R+1, opts); err != nil {
			return nil, err
		}
		final, choice := core.AllocateCurves(curvesOf(shards), K)
		for k := R; k <= K; k++ {
			if final[k] <= accept {
				return finishResult(s, kn, shards, final, choice, k)
			}
		}
		if K == n {
			return nil, fmt.Errorf("dist: internal error: error bound not reached at full size")
		}
	}
}

func curvesOf(shards []*shard) [][]float64 {
	curves := make([][]float64, len(shards))
	for i, sh := range shards {
		curves[i] = sh.curve
	}
	return curves
}

// finishResult recombines gathered shard state into the final reduction:
// the allocation DP picks each shard's size, and every output row is
// merged from the coordinator's own global kernel over the worker-reported
// split ranges — workers never contribute aggregate arithmetic.
func finishResult(s *pta.Series, kn *core.CostKernel, shards []*shard, final []float64, choice [][]int32, k int) (*pta.Result, error) {
	alloc, err := core.SplitAllocation(choice, k)
	if err != nil {
		return nil, err
	}
	rows := make([]pta.Row, 0, k)
	var stats pta.Stats
	for r, sh := range shards {
		for _, rg := range sh.ranges[alloc[r]-1] {
			rows = append(rows, kn.MergeRange(int(rg[0]), int(rg[1])))
		}
		stats.Cells += sh.cells
		stats.InnerIters += sh.inner
	}
	return &pta.Result{Series: s.WithRows(rows), C: k, Error: final[k], Stats: stats}, nil
}

// gather extends every shard's curve to min(shard length, kcap) rows,
// fetching only missing rows, with bounded fan-out.
func (c *Coordinator) gather(ctx context.Context, shards []*shard, kcap int, opts pta.Options) error {
	type job struct {
		sh       *shard
		from, to int
	}
	var jobs []job
	for _, sh := range shards {
		// A shard with no curve yet (first gather of this compression) seeds
		// from the sub-request cache; whatever rows the fleet already paid
		// for come back without a worker round trip, and only the missing
		// depth — often none — is fetched below.
		if c.curves != nil && len(sh.curve) == 0 {
			if c.curves.seed(sh, curveKey(sh.fp, opts)) {
				c.m.curveHits.Inc()
			} else {
				c.m.curveMisses.Inc()
			}
		}
		to := min(sh.hi-sh.lo+1, kcap)
		if from := len(sh.curve) + 1; from <= to {
			jobs = append(jobs, job{sh, from, to})
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	c.m.shards.Add(uint64(len(jobs)))
	sem := make(chan struct{}, c.fanout)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = c.fetchShard(ctx, j.sh, j.from, j.to, opts)
		}(i, j)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	// Store back every deepened shard so the next compression of an
	// unchanged run starts this deep.
	if c.curves != nil {
		for _, j := range jobs {
			c.curves.store(j.sh, curveKey(j.sh.fp, opts))
		}
	}
	return nil
}

// fetchShard asks a worker for the shard's optimal reductions at every size
// in [from, to] (one /v1/compress/many round trip) and absorbs the response.
// Failures — transport errors, timeouts, non-200 statuses, corrupt or
// inconsistent bodies — retry with doubled backoff against the next ring
// replica, so any surviving worker can serve any shard (exactness never
// depends on placement; placement is only cache affinity).
func (c *Coordinator) fetchShard(ctx context.Context, sh *shard, from, to int, opts pta.Options) error {
	plans := make([]serve.PlanWire, 0, to-from+1)
	fill := ""
	if opts.FillAlgo != 0 {
		fill = opts.FillAlgo.String()
	}
	for k := from; k <= to; k++ {
		plans = append(plans, serve.PlanWire{
			Strategy: "ptac",
			Budget:   fmt.Sprintf("c=%d", k),
			Weights:  opts.Weights,
			FillAlgo: fill,
		})
	}
	body, err := json.Marshal(serve.CompressManyRequest{Series: serve.EncodeSeries(sh.sub), Plans: plans})
	if err != nil {
		return err
	}
	cands := c.route(sh.fp)
	if len(cands) == 0 {
		return fmt.Errorf("dist: no workers configured")
	}
	attempts := c.retries + 1
	backoff := c.backoff
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.m.retries.Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return fmt.Errorf("dist: shard rows %d-%d: %w", sh.lo, sh.hi, context.Cause(ctx))
			}
			backoff *= 2
		}
		w := cands[a%len(cands)]
		results, err := c.post(ctx, w, body)
		if err == nil {
			if err = sh.absorb(results, from, to); err == nil {
				return nil
			}
		}
		lastErr = fmt.Errorf("worker %s: %w", w, err)
		if ctx.Err() != nil {
			return fmt.Errorf("dist: shard rows %d-%d: %w", sh.lo, sh.hi, lastErr)
		}
	}
	return fmt.Errorf("dist: shard rows %d-%d: %d attempts failed: %w", sh.lo, sh.hi, attempts, lastErr)
}

// post runs one worker round trip under the per-shard timeout.
func (c *Coordinator) post(ctx context.Context, worker string, body []byte) ([]serve.ResultWire, error) {
	tctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, worker+"/v1/compress/many", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.client.Do(req)
	c.m.workerSeconds.With(worker).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env serve.ErrorEnvelope
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Error.Message != "" {
			return nil, fmt.Errorf("status %d: %s (%s)", resp.StatusCode, env.Error.Message, env.Error.Code)
		}
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out serve.ManyResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return out.Results, nil
}

// absorb validates one worker response carrying sizes from..to and commits
// it to the shard's curve and range table. Every inconsistency is an error:
// the caller treats a corrupt response exactly like a failed one and
// retries elsewhere, so a misbehaving worker can delay a result but never
// distort it.
func (sh *shard) absorb(results []serve.ResultWire, from, to int) error {
	if len(results) != to-from+1 {
		return fmt.Errorf("%d results for %d requested sizes", len(results), to-from+1)
	}
	if len(sh.curve) != from-1 {
		return fmt.Errorf("internal error: curve has %d rows before absorbing size %d", len(sh.curve), from)
	}
	ranges := make([][][2]int32, len(results))
	var cells, inner int64
	for i, res := range results {
		k := from + i
		if res.C != k || len(res.Rows) != k {
			return fmt.Errorf("size %d answered with c=%d over %d rows", k, res.C, len(res.Rows))
		}
		if math.IsNaN(res.Error) || math.IsInf(res.Error, 0) || res.Error < 0 {
			return fmt.Errorf("size %d reports error %v", k, res.Error)
		}
		rgs, err := sh.mapRows(res.Rows)
		if err != nil {
			return fmt.Errorf("size %d: %w", k, err)
		}
		ranges[i] = rgs
		// Every result of one amortized worker pass reports the shared
		// fill cost; count it once per round trip.
		cells = max(cells, res.Stats.Cells)
		inner = max(inner, res.Stats.InnerIters)
	}
	for i, res := range results {
		sh.curve = append(sh.curve, res.Error)
		sh.ranges = append(sh.ranges, ranges[i])
	}
	sh.cells += cells
	sh.inner += inner
	return nil
}

// mapRows maps a worker result's rows back onto global row ranges by
// matching interval boundaries against the shard's input rows: the worker
// only merges adjacent rows, so the rows must tile the shard exactly. The
// worker's aggregate values are deliberately ignored — recombination
// re-merges from the coordinator's kernel.
func (sh *shard) mapRows(rows []serve.RowWire) ([][2]int32, error) {
	out := make([][2]int32, len(rows))
	p := sh.lo
	for i, r := range rows {
		if p > sh.hi {
			return nil, fmt.Errorf("result rows overrun the shard")
		}
		if int64(sh.sub.Rows[p-sh.lo].T.Start) != r.Start {
			return nil, fmt.Errorf("result row %d starts at %d, shard expects %d", i, r.Start, sh.sub.Rows[p-sh.lo].T.Start)
		}
		j := p
		for ; j <= sh.hi; j++ {
			if int64(sh.sub.Rows[j-sh.lo].T.End) == r.End {
				break
			}
		}
		if j > sh.hi {
			return nil, fmt.Errorf("result row %d ends at %d, not on a shard row boundary", i, r.End)
		}
		out[i] = [2]int32{int32(p), int32(j)}
		p = j + 1
	}
	if p != sh.hi+1 {
		return nil, fmt.Errorf("result rows cover %d of %d shard rows", p-sh.lo, sh.hi-sh.lo+1)
	}
	return out, nil
}
