package dist

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/pta"
)

// active is the coordinator behind the registry's "dist" strategy. The
// registry API passes no configuration, so the process installs its
// coordinator once (cmd/ptaserve and cmd/ptacli build one from -workers).
var active atomic.Pointer[Coordinator]

// Activate installs c as the coordinator the "dist" strategy evaluates
// with, returning the previous one (nil if none) so tests can restore it.
func Activate(c *Coordinator) *Coordinator {
	return active.Swap(c)
}

// evaluator adapts the Coordinator to the strategy registry.
type evaluator struct{}

func (evaluator) Name() string { return "dist" }

func (evaluator) Description() string {
	return "exact DP scattered over ptaserve workers by gap-free run, gathered bit-identically (needs -workers)"
}

func (evaluator) Supports(pta.BudgetKind) bool { return true }

func (evaluator) Evaluate(ctx context.Context, s *pta.Series, b pta.Budget, opts pta.Options) (*pta.Result, error) {
	co := active.Load()
	if co == nil {
		return nil, fmt.Errorf("dist: no coordinator configured (dist.Activate, or -workers on ptaserve/ptacli)")
	}
	return co.Compress(ctx, s, b, opts)
}

func init() { pta.Register(evaluator{}) }
