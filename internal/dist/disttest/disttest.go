// Package disttest is the in-process multi-worker cluster fixture behind
// the dist conformance and fault-injection suites: N real serve.Servers on
// httptest listeners, each fronted by a long-lived fault-injecting proxy.
// The proxy owns the address a coordinator routes to, so a worker can be
// "kill -9"ed (connections severed, backend closed) and restarted (a fresh
// server process on the same spill directory) without the address — and
// therefore the consistent-hash routing — ever changing, exactly like a
// supervised daemon restarting on a fixed port.
package disttest

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// Proxy forwards requests to a replaceable backend and injects faults on
// command. All fault knobs are safe for concurrent use.
type Proxy struct {
	ts     *httptest.Server
	client *http.Client

	mu      sync.Mutex
	backend string // current backend base URL

	dropN    atomic.Int64 // sever the next N requests mid-flight
	failN429 atomic.Int64 // answer the next N requests with 429
	corruptN atomic.Int64 // corrupt the next N response bodies
	delay    atomic.Int64 // nanoseconds added to every request
	down     atomic.Bool  // worker killed: sever everything
}

// URL is the stable address clients route to.
func (p *Proxy) URL() string { return p.ts.URL }

// Drop severs the next n requests without a response (connection reset).
func (p *Proxy) Drop(n int) { p.dropN.Store(int64(n)) }

// Fail429 answers the next n requests with 429 and a Retry-After header.
func (p *Proxy) Fail429(n int) { p.failN429.Store(int64(n)) }

// Corrupt truncates and bit-flips the next n response bodies.
func (p *Proxy) Corrupt(n int) { p.corruptN.Store(int64(n)) }

// Delay adds d to every forwarded request (0 restores normal service).
func (p *Proxy) Delay(d time.Duration) { p.delay.Store(int64(d)) }

func (p *Proxy) setBackend(url string) {
	p.mu.Lock()
	p.backend = url
	p.mu.Unlock()
}

func (p *Proxy) backendURL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backend
}

// take decrements a fault budget if any remains.
func take(a *atomic.Int64) bool {
	for {
		v := a.Load()
		if v <= 0 {
			return false
		}
		if a.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(p.delay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	if take(&p.dropN) || p.down.Load() {
		panic(http.ErrAbortHandler) // sever without a response
	}
	if take(&p.failN429) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = io.WriteString(w, `{"error":{"status":429,"code":"injected","message":"fault injection"}}`)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.backendURL()+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		panic(http.ErrAbortHandler) // backend gone: behave like a dead worker
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if take(&p.corruptN) && len(out) > 2 {
		out = out[:len(out)/2] // truncation guarantees invalid JSON
		out[len(out)-1] ^= 0xff
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(out)
}

// Worker is one cluster member: a serve.Server on an httptest listener
// behind its fault proxy. The spill directory survives Kill/Restart, like a
// daemon's persistent cache volume.
type Worker struct {
	t        testing.TB
	cfg      serve.Config
	Proxy    *Proxy
	backend  *httptest.Server
	Server   *serve.Server
	spillDir string
	peers    []string // re-applied on every boot, like a daemon's config file
}

// newWorker boots a serve.Server with its own spill dir and fronts it with
// a fresh proxy.
func newWorker(t testing.TB, cfg serve.Config) *Worker {
	t.Helper()
	w := &Worker{t: t, cfg: cfg, spillDir: cfg.SpillDir}
	if w.spillDir == "" {
		w.spillDir = t.TempDir()
	}
	w.Proxy = &Proxy{client: &http.Client{}}
	w.Proxy.ts = httptest.NewServer(w.Proxy)
	t.Cleanup(w.Proxy.ts.Close)
	w.boot()
	return w
}

// boot starts a fresh backend server on the worker's spill dir.
func (w *Worker) boot() {
	w.t.Helper()
	cfg := w.cfg
	cfg.SpillDir = w.spillDir
	if w.peers != nil {
		cfg.Peers = w.peers
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		w.t.Fatalf("disttest: worker boot: %v", err)
	}
	w.Server = srv
	w.backend = httptest.NewServer(srv.Handler())
	w.Proxy.setBackend(w.backend.URL)
}

// URL is the worker's routable address (the proxy, stable across restarts).
func (w *Worker) URL() string { return w.Proxy.URL() }

// Kill terminates the worker abruptly: in-flight and future requests are
// severed without responses until Restart. The spill directory survives.
func (w *Worker) Kill() {
	w.Proxy.down.Store(true)
	w.backend.CloseClientConnections()
	w.backend.Close()
}

// Restart boots a fresh server process on the same spill directory (and
// the same peer wiring) and resumes service at the same address.
func (w *Worker) Restart() {
	w.t.Helper()
	w.boot()
	w.Proxy.down.Store(false)
}

// WipeSpill empties the worker's spill directory — the "lost volume"
// restart scenario: call between Kill and Restart to bring the worker back
// with no local warm state at all.
func (w *Worker) WipeSpill() {
	w.t.Helper()
	entries, err := os.ReadDir(w.spillDir)
	if err != nil {
		w.t.Fatalf("disttest: wiping spill dir: %v", err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(w.spillDir, e.Name())); err != nil {
			w.t.Fatalf("disttest: wiping spill dir: %v", err)
		}
	}
}

// SetPeers wires the worker into a peer warm tier by proxy addresses. The
// list is applied to the live server and remembered across Restart.
func (w *Worker) SetPeers(urls []string) {
	w.t.Helper()
	w.peers = append([]string(nil), urls...)
	if err := w.Server.SetPeers(w.peers); err != nil {
		w.t.Fatalf("disttest: SetPeers: %v", err)
	}
}

// Cluster is N workers sharing one Config template (each gets a private
// spill dir unless the template names one).
type Cluster struct {
	Workers []*Worker
}

// NewCluster boots n workers. Cleanup is bound to t.
func NewCluster(t testing.TB, n int, cfg serve.Config) *Cluster {
	t.Helper()
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.Workers = append(c.Workers, newWorker(t, cfg))
	}
	t.Cleanup(c.Close)
	return c
}

// URLs returns every worker's routable address.
func (c *Cluster) URLs() []string {
	urls := make([]string, len(c.Workers))
	for i, w := range c.Workers {
		urls[i] = w.URL()
	}
	return urls
}

// WirePeers connects every worker to all the others as a peer warm tier,
// by proxy address (so peer fetches survive Kill/Restart of the target and
// respect injected faults). The wiring persists across worker restarts.
func (c *Cluster) WirePeers() {
	urls := c.URLs()
	for i, w := range c.Workers {
		peers := make([]string, 0, len(urls)-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		w.SetPeers(peers)
	}
}

// Close shuts every backend down (idempotent; proxies close via t.Cleanup).
func (c *Cluster) Close() {
	for _, w := range c.Workers {
		if !w.Proxy.down.Load() {
			w.backend.Close()
		}
	}
}
