// Package dist is the scatter/gather tier over ptaserve workers: a
// coordinator shards a series by aggregation group and, within a group, by
// maximal gap-free run — the exact decomposition behind core.PTAcParallel —
// routes each shard to a worker by consistent hashing on its fingerprint,
// gathers per-shard error curves over the /v1/compress/many wire schema
// with per-shard deadlines and retry-with-backoff, and recombines the
// curves locally with core.AllocateCurves, so the distributed result is
// bit-identical to the in-process parallel evaluators. The registry name is
// "dist" (strategy.go); docs/ARCHITECTURE.md § Distribution has the
// exactness argument.
package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over worker base URLs: every worker owns
// vnodes pseudo-random points on a uint64 circle, and a key routes to the
// owner of the first point at or after the key's hash. Adding or removing
// one worker only moves the keys whose owning points belonged to it —
// about K/N of K keys over N workers — so the other workers' matrix and
// spill caches stay hot across membership changes.
type ring struct {
	workers []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int32 // index into workers
}

// hashKey maps a routing key onto the circle (the first 8 bytes of its
// SHA-256, like the spill-file names).
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing places vnodes points per worker. Construction is deterministic
// and order-independent: point positions hash only the worker URL, so
// routing depends on the set of workers, never the order they were listed.
func newRing(workers []string, vnodes int) *ring {
	r := &ring{workers: append([]string(nil), workers...)}
	r.points = make([]ringPoint, 0, len(r.workers)*vnodes)
	for wi, w := range r.workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(w + "#" + strconv.Itoa(v)),
				worker: int32(wi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break on the URL so even then
		// construction order cannot matter.
		return r.workers[r.points[i].worker] < r.workers[r.points[j].worker]
	})
	return r
}

// lookup returns the primary worker for key, or "" on an empty ring.
func (r *ring) lookup(key string) string {
	seq := r.sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// sequence returns up to n distinct workers in ring order from the key's
// position: the primary first, then the failover candidates a retry walks.
func (r *ring) sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	n = min(n, len(r.workers))
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int32]bool, n)
	out := make([]string, 0, n)
	for j := 0; len(out) < n && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		out = append(out, r.workers[p.worker])
	}
	return out
}
