package dist

// The exactness-conformance suite: "dist" output compared against the
// serial and in-process parallel evaluators across the strategy, budget and
// fill-algorithm matrix, over quick.Check-generated mixed, counter and
// adversarial series, against a real 3-worker cluster (run under -race).
//
// What is asserted, and why:
//
//   - vs the parallel engine (WithParallelism): everything bitwise — rows,
//     C, and the Error float's exact bits. dist reimplements PTAcParallel /
//     PTAeParallel with the curve computation moved across HTTP, so any
//     drift here is a bug.
//   - vs the serial evaluator: C always equal, Error equal to within float
//     summation reassociation (the run-decomposed pass adds per-run errors
//     in a different order), and rows BITWISE equal whenever the optimum is
//     unique. The mixed and counter generators draw continuous values, so
//     ties between candidate split sets have probability zero and the
//     byte-identity assertion holds unconditionally. The adversarial
//     generator manufactures ties on purpose (integer plateaus), where any
//     optimal split set is acceptable; there the suite asserts the relaxed
//     contract (same C, same error, valid series) plus full byte-identity
//     to the parallel engine, which pins ONE deterministic choice.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dist/disttest"
	"repro/internal/serve"
	"repro/internal/temporal"
	"repro/pta"
)

// newTestCoordinator wires a coordinator to the cluster with test-friendly
// retry pacing.
func newTestCoordinator(t testing.TB, cluster *disttest.Cluster, extra ...Option) *Coordinator {
	t.Helper()
	opts := append([]Option{
		WithWorkers(cluster.URLs()...),
		WithBackoff(time.Millisecond),
		WithRetries(4),
		WithShardTimeout(30 * time.Second),
	}, extra...)
	co, err := New(opts...)
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	return co
}

// genSeries builds a multi-group series with random gap structure.
// Modes: "mixed" is a continuous random walk (tie-free), "counter" is a
// monotone cumulative counter with continuous increments (tie-free),
// "adversarial" is integer plateaus engineered for DP ties.
func genSeries(rng *rand.Rand, mode string) *pta.Series {
	groups := 1 + rng.Intn(3)
	p := 1 + rng.Intn(2)
	aggs := make([]string, p)
	for d := range aggs {
		aggs[d] = fmt.Sprintf("v%d", d)
	}
	s := pta.NewSeries([]pta.Attribute{{Name: "g", Kind: temporal.KindString}}, aggs)
	for g := 0; g < groups; g++ {
		id := s.Groups.Intern([]temporal.Datum{temporal.String(fmt.Sprintf("G%d", g))})
		rows := 3 + rng.Intn(18)
		tcur := int64(rng.Intn(4))
		walk := make([]float64, p)
		for d := range walk {
			walk[d] = 10 * rng.Float64()
		}
		for i := 0; i < rows; i++ {
			if i > 0 && rng.Float64() < 0.3 {
				tcur += int64(2 + rng.Intn(4)) // open a gap: a new run starts
			}
			span := int64(1 + rng.Intn(3))
			row := pta.Row{
				Group: id,
				Aggs:  make([]float64, p),
				T: pta.Interval{
					Start: pta.Chronon(tcur),
					End:   pta.Chronon(tcur + span - 1),
				},
			}
			for d := 0; d < p; d++ {
				switch mode {
				case "counter":
					walk[d] += rng.Float64() * 3
					row.Aggs[d] = walk[d]
				case "adversarial":
					row.Aggs[d] = float64(rng.Intn(3))
				default: // mixed
					walk[d] += rng.NormFloat64()
					row.Aggs[d] = walk[d]
				}
			}
			s.Rows = append(s.Rows, row)
			tcur += span
		}
	}
	s.Sort()
	return s
}

// bitIdentical reports whether two series have byte-for-byte equal rows:
// same groups, same intervals, and aggregate floats with identical bits.
func bitIdentical(a, b *pta.Series) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.T != rb.T || len(ra.Aggs) != len(rb.Aggs) {
			return false
		}
		if !temporal.DatumsEqual(a.Groups.Values(ra.Group), b.Groups.Values(rb.Group)) {
			return false
		}
		for d := range ra.Aggs {
			if math.Float64bits(ra.Aggs[d]) != math.Float64bits(rb.Aggs[d]) {
				return false
			}
		}
	}
	return true
}

// relClose reports |a−b| within tol relative to their magnitude.
func relClose(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

// budgetsFor enumerates the budget matrix for one generated series: both
// budget kinds at their interesting corners plus one random interior point.
func budgetsFor(rng *rand.Rand, s *pta.Series) []pta.Budget {
	n, cmin := s.Len(), s.CMin()
	var out []pta.Budget
	seen := map[int]bool{}
	for _, c := range []int{cmin, (cmin + n) / 2, n - 1, n} {
		if c >= cmin && c <= n && !seen[c] {
			seen[c] = true
			out = append(out, pta.Size(c))
		}
	}
	for _, eps := range []float64{0, 0.2 + 0.6*rng.Float64(), 1} {
		out = append(out, pta.ErrorBound(eps))
	}
	return out
}

func strategyFor(b pta.Budget) string {
	if b.Kind() == pta.BudgetError {
		return "ptae"
	}
	return "ptac"
}

// TestDistConformance is the headline suite: for each generator mode,
// quick.Check draws seeds, and every (series, budget) cell is compressed
// three ways — distributed, in-process parallel, serial — and compared.
func TestDistConformance(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	co := newTestCoordinator(t, cluster)
	serial, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	par, err := pta.New(pta.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	maxCount := 6
	if testing.Short() {
		maxCount = 2
	}
	for _, mode := range []string{"mixed", "counter", "adversarial"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				s := genSeries(rng, mode)
				if err := s.Validate(); err != nil {
					t.Fatalf("seed %d: generated series invalid: %v", seed, err)
				}
				for _, b := range budgetsFor(rng, s) {
					if !checkCell(t, ctx, co, serial, par, s, b, pta.Options{}, mode, seed) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
				t.Error(err)
			}
		})
	}
}

// checkCell runs one (series, budget) cell through all three evaluators and
// applies the conformance contract described in the file comment.
func checkCell(t *testing.T, ctx context.Context, co *Coordinator, serial, par *pta.Engine,
	s *pta.Series, b pta.Budget, opts pta.Options, mode string, seed int64) bool {
	t.Helper()
	name := fmt.Sprintf("seed %d budget %v", seed, b)

	dres, err := co.Compress(ctx, s, b, opts)
	if err != nil {
		t.Errorf("%s: dist: %v", name, err)
		return false
	}
	strat := strategyFor(b)
	plan := pta.Plan{Strategy: strat, Budget: b, Options: &opts}
	pres, err := par.Compress(ctx, s, plan)
	if err != nil {
		t.Errorf("%s: parallel %s: %v", name, strat, err)
		return false
	}
	sres, err := serial.Compress(ctx, s, plan)
	if err != nil {
		t.Errorf("%s: serial %s: %v", name, strat, err)
		return false
	}

	// Bitwise contract against the in-process parallel evaluator.
	if dres.C != pres.C {
		t.Errorf("%s: dist C=%d, parallel C=%d", name, dres.C, pres.C)
		return false
	}
	if math.Float64bits(dres.Error) != math.Float64bits(pres.Error) {
		t.Errorf("%s: dist Error bits %x (%v), parallel %x (%v)",
			name, math.Float64bits(dres.Error), dres.Error,
			math.Float64bits(pres.Error), pres.Error)
		return false
	}
	if !bitIdentical(dres.Series, pres.Series) {
		t.Errorf("%s: dist rows differ from parallel evaluator", name)
		return false
	}

	// Contract against the serial evaluator.
	if dres.C != sres.C {
		t.Errorf("%s: dist C=%d, serial C=%d", name, dres.C, sres.C)
		return false
	}
	if !relClose(dres.Error, sres.Error, 1e-9) {
		t.Errorf("%s: dist Error %v vs serial %v beyond reassociation tolerance", name, dres.Error, sres.Error)
		return false
	}
	if mode != "adversarial" && !bitIdentical(dres.Series, sres.Series) {
		t.Errorf("%s: dist rows differ from serial on tie-free data", name)
		return false
	}
	if err := dres.Series.Validate(); err != nil {
		t.Errorf("%s: dist result invalid: %v", name, err)
		return false
	}
	if dres.Strategy == "" || dres.Budget.IsZero() {
		t.Errorf("%s: dist result missing strategy/budget metadata", name)
		return false
	}

	// Every other exact strategy realizes the same optimum: C and error
	// must agree even where split sets legitimately may not.
	if b.Kind() == pta.BudgetSize {
		for _, alt := range []string{"dpbasic", "ptac-imax", "ptac-jmin"} {
			ares, err := serial.Compress(ctx, s, pta.Plan{Strategy: alt, Budget: b, Options: &opts})
			if err != nil {
				t.Errorf("%s: serial %s: %v", name, alt, err)
				return false
			}
			if ares.C != dres.C || !relClose(ares.Error, dres.Error, 1e-9) {
				t.Errorf("%s: dist (C=%d err=%v) disagrees with exact strategy %s (C=%d err=%v)",
					name, dres.C, dres.Error, alt, ares.C, ares.Error)
				return false
			}
		}
	}
	return true
}

// TestDistConformanceFillAlgos pins the fill-algorithm matrix: every row
// fill must produce byte-identical distributed results.
func TestDistConformanceFillAlgos(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	co := newTestCoordinator(t, cluster)
	serial, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	par, err := pta.New(pta.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rng := rand.New(rand.NewSource(7))
	s := genSeries(rng, "mixed")
	n, cmin := s.Len(), s.CMin()
	budgets := []pta.Budget{pta.Size((cmin + n) / 2), pta.ErrorBound(0.35)}
	for _, name := range pta.FillAlgoNames() {
		algo, err := pta.ParseFillAlgo(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range budgets {
			if !checkCell(t, ctx, co, serial, par, s, b, pta.Options{FillAlgo: algo}, "mixed", 7) {
				t.Fatalf("fill algo %s failed conformance", name)
			}
		}
	}
}

// TestDistWeightsConformance checks the weighted-SSE path survives the wire.
func TestDistWeightsConformance(t *testing.T) {
	cluster := disttest.NewCluster(t, 2, serve.Config{})
	co := newTestCoordinator(t, cluster)
	serial, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	par, err := pta.New(pta.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	s := genSeries(rng, "mixed")
	opts := pta.Options{Weights: []float64{2.5, 0.75}[:len(s.AggNames)]}
	for _, b := range []pta.Budget{pta.Size(s.CMin()), pta.ErrorBound(0.5)} {
		checkCell(t, context.Background(), co, serial, par, s, b, opts, "mixed", 11)
	}
}
