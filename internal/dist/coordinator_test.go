package dist

// Fault-injection suite: the coordinator must return byte-identical results
// while workers drop connections, throttle, delay, corrupt responses, or
// die and come back — and must surface clean errors when the whole fleet is
// gone or a shard can't meet its deadline.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist/disttest"
	"repro/internal/serve"
	"repro/pta"
)

// fixtureSeries is a fixed multi-group, multi-run series large enough to
// scatter several shards across a 3-worker ring.
func fixtureSeries(t *testing.T) *pta.Series {
	t.Helper()
	s := genSeries(rand.New(rand.NewSource(42)), "mixed")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// shardPrimaries maps each worker URL to how many of the series' shards it
// is the primary for.
func shardPrimaries(t *testing.T, co *Coordinator, s *pta.Series) map[string]int {
	t.Helper()
	kn, err := core.NewKernel(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	primaries := map[string]int{}
	for _, sh := range makeShards(s, kn) {
		seq := co.route(sh.fp)
		if len(seq) == 0 {
			t.Fatal("route returned no workers")
		}
		primaries[seq[0]]++
	}
	return primaries
}

func mustCompress(t *testing.T, co *Coordinator, s *pta.Series, b pta.Budget) *pta.Result {
	t.Helper()
	res, err := co.Compress(context.Background(), s, b, pta.Options{})
	if err != nil {
		t.Fatalf("dist compress (%v): %v", b, err)
	}
	return res
}

func assertSameResult(t *testing.T, name string, got, want *pta.Result) {
	t.Helper()
	if got.C != want.C {
		t.Fatalf("%s: C=%d, want %d", name, got.C, want.C)
	}
	if math.Float64bits(got.Error) != math.Float64bits(want.Error) {
		t.Fatalf("%s: Error %v, want %v (bit-exact)", name, got.Error, want.Error)
	}
	if !bitIdentical(got.Series, want.Series) {
		t.Fatalf("%s: result rows differ from fault-free baseline", name)
	}
}

// TestDistFaultInjection runs the same compression under every recoverable
// fault and requires byte-identical output plus a visible retry count.
func TestDistFaultInjection(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	// The curve cache would answer the repeat compressions without touching
	// a worker; disable it so every run re-exercises the scatter path the
	// faults are injected into.
	co := newTestCoordinator(t, cluster, WithCurveCache(0))
	s := fixtureSeries(t)
	budgets := []pta.Budget{pta.Size(s.CMin() + 1), pta.ErrorBound(0.4)}
	baseline := make([]*pta.Result, len(budgets))
	for i, b := range budgets {
		baseline[i] = mustCompress(t, co, s, b)
	}

	inject := map[string]func(w *disttest.Worker){
		"drop":    func(w *disttest.Worker) { w.Proxy.Drop(1) },
		"429":     func(w *disttest.Worker) { w.Proxy.Fail429(1) },
		"corrupt": func(w *disttest.Worker) { w.Proxy.Corrupt(1) },
	}
	for name, fault := range inject {
		t.Run(name, func(t *testing.T) {
			for i, b := range budgets {
				before := co.m.retries.Value()
				for _, w := range cluster.Workers {
					fault(w)
				}
				got := mustCompress(t, co, s, b)
				assertSameResult(t, name, got, baseline[i])
				if co.m.retries.Value() == before {
					t.Fatalf("%s: no retries recorded despite injected faults", name)
				}
			}
		})
	}

	t.Run("delay", func(t *testing.T) {
		for _, w := range cluster.Workers {
			w.Proxy.Delay(5 * time.Millisecond)
		}
		defer func() {
			for _, w := range cluster.Workers {
				w.Proxy.Delay(0)
			}
		}()
		for i, b := range budgets {
			assertSameResult(t, "delay", mustCompress(t, co, s, b), baseline[i])
		}
	})
}

// TestDistKillRestart kills a worker that is primary for at least one
// shard, verifies failover keeps results byte-identical, then restarts the
// worker (same address, same spill dir) and verifies again.
func TestDistKillRestart(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	co := newTestCoordinator(t, cluster, WithCurveCache(0)) // repeats must re-scatter

	s := fixtureSeries(t)
	b := pta.Size((s.CMin() + s.Len()) / 2)
	baseline := mustCompress(t, co, s, b)

	primaries := shardPrimaries(t, co, s)
	var victim *disttest.Worker
	for _, w := range cluster.Workers {
		if primaries[w.URL()] > 0 {
			victim = w
			break
		}
	}
	if victim == nil {
		t.Fatal("no worker is primary for any shard")
	}

	victim.Kill()
	retriesBefore := co.m.retries.Value()
	assertSameResult(t, "after kill", mustCompress(t, co, s, b), baseline)
	if co.m.retries.Value() == retriesBefore {
		t.Fatal("failover to surviving replicas recorded no retries")
	}

	victim.Restart()
	assertSameResult(t, "after restart", mustCompress(t, co, s, b), baseline)
}

// TestDistAllWorkersDown: with the whole fleet dead the coordinator fails
// with a bounded-retry error instead of hanging.
func TestDistAllWorkersDown(t *testing.T) {
	cluster := disttest.NewCluster(t, 2, serve.Config{})
	co := newTestCoordinator(t, cluster, WithRetries(1), WithBackoff(time.Millisecond))
	s := fixtureSeries(t)
	for _, w := range cluster.Workers {
		w.Kill()
	}
	_, err := co.Compress(context.Background(), s, pta.Size(s.CMin()), pta.Options{})
	if err == nil {
		t.Fatal("compress succeeded with every worker dead")
	}
	if !strings.Contains(err.Error(), "attempts failed") {
		t.Fatalf("error %q does not mention exhausted attempts", err)
	}
}

// TestDistShardDeadline: a worker slower than the per-shard timeout makes
// the request fail over; with every worker slow, the call errors after the
// bounded retries rather than waiting out the full delay.
func TestDistShardDeadline(t *testing.T) {
	cluster := disttest.NewCluster(t, 2, serve.Config{})
	co := newTestCoordinator(t, cluster,
		WithShardTimeout(50*time.Millisecond), WithRetries(1), WithBackoff(time.Millisecond))
	s := fixtureSeries(t)
	for _, w := range cluster.Workers {
		w.Proxy.Delay(2 * time.Second)
	}
	start := time.Now()
	_, err := co.Compress(context.Background(), s, pta.Size(s.CMin()), pta.Options{})
	if err == nil {
		t.Fatal("compress succeeded despite universal slowness beyond the shard deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline failure took %v — per-shard timeout not enforced", elapsed)
	}
}

// TestDistContextCancel: caller cancellation aborts the scatter promptly.
func TestDistContextCancel(t *testing.T) {
	cluster := disttest.NewCluster(t, 2, serve.Config{})
	co := newTestCoordinator(t, cluster)
	s := fixtureSeries(t)
	for _, w := range cluster.Workers {
		w.Proxy.Delay(2 * time.Second)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := co.Compress(ctx, s, pta.Size(s.CMin()), pta.Options{})
	if err == nil {
		t.Fatal("compress succeeded past its context deadline")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestDistMetrics: the scatter/gather surfaces fan-out, latency and ring
// churn through the registry.
func TestDistMetrics(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	co := newTestCoordinator(t, cluster)
	s := fixtureSeries(t)
	mustCompress(t, co, s, pta.Size(s.CMin()))

	if got := co.m.compressions.Value(); got != 1 {
		t.Fatalf("compressions counter = %d, want 1", got)
	}
	if co.m.shards.Value() == 0 {
		t.Fatal("shard fan-out counter never moved")
	}
	var observed uint64
	for _, w := range cluster.Workers {
		observed += co.m.workerSeconds.With(w.URL()).Count()
	}
	if observed == 0 {
		t.Fatal("no per-worker latency observations recorded")
	}

	// Shrinking the fleet must move some recently routed series and count
	// the moves.
	if err := co.SetWorkers(cluster.URLs()[:1]...); err != nil {
		t.Fatal(err)
	}
	if co.m.ringMoves.Value() == 0 {
		t.Fatal("ring update moved no routed keys — ring_moves metric dead")
	}

	// The exposition itself must stay lint-clean with dist families on it.
	var buf strings.Builder
	co.Registry().WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "ptadist_shard_requests_total") {
		t.Fatal("ptadist_* families missing from exposition")
	}
}

// TestDistRegistryStrategy: "dist" resolves through the strategy registry
// once a coordinator is activated, and degrades to a clear error without
// one.
func TestDistRegistryStrategy(t *testing.T) {
	cluster := disttest.NewCluster(t, 3, serve.Config{})
	co := newTestCoordinator(t, cluster)
	s := fixtureSeries(t)
	b := pta.Size(s.CMin() + 1)

	prev := Activate(co)
	defer Activate(prev)

	viaRegistry, err := pta.Compress(s, "dist", b, pta.Options{})
	if err != nil {
		t.Fatalf(`pta.Compress(.., "dist", ..): %v`, err)
	}
	direct := mustCompress(t, co, s, b)
	assertSameResult(t, "registry vs direct", viaRegistry, direct)
	if viaRegistry.Strategy != "dist" {
		t.Fatalf("registry result strategy %q, want dist", viaRegistry.Strategy)
	}

	found := false
	for _, d := range pta.Describe() {
		if d.Name == "dist" {
			found = true
			if !d.Size || !d.Error {
				t.Fatalf("dist should support both budget kinds, got size=%v error=%v", d.Size, d.Error)
			}
		}
	}
	if !found {
		t.Fatal(`"dist" not in the strategy registry`)
	}

	Activate(nil)
	_, err = pta.Compress(s, "dist", b, pta.Options{})
	if err == nil || !strings.Contains(err.Error(), "no coordinator configured") {
		t.Fatalf("expected a no-coordinator error, got %v", err)
	}
}

// TestDistValidation covers the argument edges shared with the in-process
// evaluators.
func TestDistValidation(t *testing.T) {
	cluster := disttest.NewCluster(t, 2, serve.Config{})
	co := newTestCoordinator(t, cluster)
	s := fixtureSeries(t)
	ctx := context.Background()

	var inf *core.InfeasibleSizeError
	_, err := co.Compress(ctx, s, pta.Size(s.CMin()-1), pta.Options{})
	if !errors.As(err, &inf) {
		t.Fatalf("c < cmin: got %v, want InfeasibleSizeError", err)
	}

	res, err := co.Compress(ctx, s, pta.Size(s.Len()), pta.Options{})
	if err != nil || res.C != s.Len() {
		t.Fatalf("c = n should return the input unchanged: %v", err)
	}
	if !bitIdentical(res.Series, s) {
		t.Fatal("c = n result is not the input series")
	}

	empty := pta.NewSeries(nil, []string{"v"})
	if _, err := co.Compress(ctx, empty, pta.Size(3), pta.Options{}); err == nil {
		t.Fatal("size bound on an empty relation should fail")
	}
	res, err = co.Compress(ctx, empty, pta.ErrorBound(0.5), pta.Options{})
	if err != nil || res.Series.Len() != 0 {
		t.Fatalf("error bound on an empty relation: res=%v err=%v", res, err)
	}

	lonely, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lonely.Compress(ctx, s, pta.Size(s.CMin()), pta.Options{}); err == nil ||
		!strings.Contains(err.Error(), "no workers") {
		t.Fatalf("workerless coordinator: got %v", err)
	}

	if _, err := New(WithWorkers("http://a", "http://a")); err == nil {
		t.Fatal("duplicate worker URLs accepted")
	}
	if _, err := New(WithWorkers("")); err == nil {
		t.Fatal("empty worker URL accepted")
	}
}
