package obs

import (
	"runtime"
	"strconv"
)

// runtimeMetrics emits the Go runtime families from one ReadMemStats
// snapshot per scrape (each family as its own HELP/TYPE block, like every
// other exporter). Registered under the reserved name "go" so a registry
// carries at most one.
type runtimeMetrics struct{}

// RegisterRuntimeMetrics adds the standard Go runtime gauges and counters:
// goroutines, GOMAXPROCS, heap footprint and GC cycles.
func (r *Registry) RegisterRuntimeMetrics() {
	r.register(runtimeMetrics{})
}

func (runtimeMetrics) metricName() string { return "go" }

func (runtimeMetrics) write(b *[]byte) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge := func(name, help string, v float64) {
		header(b, name, help, "gauge")
		*b = append(*b, name...)
		*b = append(*b, ' ')
		*b = appendFloat(*b, v)
		*b = append(*b, '\n')
	}
	gauge("go_goroutines", "Number of goroutines that currently exist.", float64(runtime.NumGoroutine()))
	gauge("go_gomaxprocs", "GOMAXPROCS, the number of OS threads executing Go code simultaneously.", float64(runtime.GOMAXPROCS(0)))
	gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	gauge("go_memstats_heap_objects", "Number of currently allocated heap objects.", float64(ms.HeapObjects))
	gauge("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC))

	header(b, "go_gc_cycles_total", "Completed GC cycles since program start.", "counter")
	*b = append(*b, "go_gc_cycles_total "...)
	*b = strconv.AppendUint(*b, uint64(ms.NumGC), 10)
	*b = append(*b, '\n')
}
