package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds: half-millisecond
// cache hits through ten-second DP fills.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat accumulates float64 additions lock-free (CAS on the bit
// pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into cumulative buckets. Observe is
// lock-free: one linear scan over the (small, fixed) bounds slice, one
// atomic add per observation plus the sum/count updates. Scrapes may race
// observations; the exposition keeps bucket counts cumulative by summing
// at render time, so a torn read can lag a bucket but never violates the
// format.
type Histogram struct {
	bounds []float64       // upper bounds, strictly increasing, no +Inf
	counts []atomic.Uint64 // len(bounds)+1; last = observations above all bounds
	sum    atomicFloat
	count  atomic.Uint64

	name, help string
	labels     []string
	values     []string
}

// NewHistogram registers a plain histogram with the given upper bounds
// (strictly increasing; +Inf is implicit). nil bounds use DefBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds, nil, nil)
	r.register(h)
	return h
}

func newHistogram(name, help string, bounds []float64, labels, values []string) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %d", name, i))
		}
	}
	if n := len(bounds); n > 0 && math.IsInf(bounds[n-1], 1) {
		bounds = bounds[:n-1] // +Inf is implicit
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		name:   name, help: help, labels: labels, values: values,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(b *[]byte) {
	header(b, h.name, h.help, "histogram")
	h.writeSamples(b)
}

// writeSamples renders name_bucket{...,le="..."} lines plus _sum and
// _count. The +Inf bucket equals the cumulative total, and _count is taken
// from the same cumulative sum so the two always agree even under
// concurrent observations.
func (h *Histogram) writeSamples(b *[]byte) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		h.writeBucket(b, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	h.writeBucket(b, "+Inf", cum)

	*b = append(*b, h.name...)
	*b = append(*b, "_sum"...)
	*b = appendLabels(*b, h.labels, h.values)
	*b = append(*b, ' ')
	*b = appendFloat(*b, h.sum.load())
	*b = append(*b, '\n')

	*b = append(*b, h.name...)
	*b = append(*b, "_count"...)
	*b = appendLabels(*b, h.labels, h.values)
	*b = append(*b, ' ')
	*b = strconv.AppendUint(*b, cum, 10)
	*b = append(*b, '\n')
}

func (h *Histogram) writeBucket(b *[]byte, le string, cum uint64) {
	*b = append(*b, h.name...)
	*b = append(*b, "_bucket{"...)
	for i, n := range h.labels {
		*b = append(*b, n...)
		*b = append(*b, '=')
		*b = appendLabelValue(*b, h.values[i])
		*b = append(*b, ',')
	}
	*b = append(*b, `le=`...)
	*b = appendLabelValue(*b, le)
	*b = append(*b, "} "...)
	*b = strconv.AppendUint(*b, cum, 10)
	*b = append(*b, '\n')
}

// HistogramVec is a family of histograms distinguished by label values;
// like CounterVec, hot paths resolve children once and keep the *Histogram.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*Histogram
	order    []string
}

// NewHistogramVec registers a histogram family (nil bounds = DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	for _, l := range labels {
		if !validLabel(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid histogram label name %q", l))
		}
	}
	v := &HistogramVec{name: name, help: help, labels: labels, bounds: bounds,
		children: make(map[string]*Histogram)}
	r.register(v)
	return v
}

// With returns the child for the given label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	h := newHistogram(v.name, v.help, v.bounds, v.labels, append([]string(nil), values...))
	v.children[key] = h
	v.order = append(v.order, key)
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) write(b *[]byte) {
	header(b, v.name, v.help, "histogram")
	v.mu.Lock()
	children := make([]*Histogram, len(v.order))
	for i, key := range v.order {
		children[i] = v.children[key]
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].values, "\x00") < strings.Join(children[j].values, "\x00")
	})
	for _, h := range children {
		h.writeSamples(b)
	}
}
