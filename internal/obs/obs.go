// Package obs is a dependency-free metrics subsystem for the serving tier:
// counters, gauges and histograms with Prometheus text-format 0.0.4
// exposition. The hot path is lock-free — Inc/Add/Set/Observe are a handful
// of atomic operations, no mutexes, no allocations — so instrumenting the
// allocation-free serve codec does not reintroduce per-request allocations.
// Locks exist only at registration time and while a scrape renders the
// exposition text.
//
// The registry renders families in registration order, one family per
// metric name; Lint (lint.go) is a promtool-style validator used by the CI
// test over ptaserve's /metrics output.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one exposition family: it appends its complete HELP/TYPE/sample
// block to b. Implementations must tolerate concurrent hot-path updates
// while writing (all sample reads are atomic loads).
type metric interface {
	metricName() string
	write(b *[]byte)
}

// Registry owns an ordered set of metric families with unique names.
// Constructors panic on invalid or duplicate names — registration is
// wiring-time code, and a bad metric name is a programming error, not a
// runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.metricName()
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.byName[name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered family in text format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	b := make([]byte, 0, 4096)
	for _, m := range metrics {
		m.write(&b)
	}
	_, err := w.Write(b)
	return err
}

// ContentType is the exposition content type of WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the exposition over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally must not use ':', checked by
// validLabel).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	return validName(s) && !strings.Contains(s, ":") && !strings.HasPrefix(s, "__")
}

// header appends the # HELP / # TYPE comment block of one family.
func header(b *[]byte, name, help, typ string) {
	*b = append(*b, "# HELP "...)
	*b = append(*b, name...)
	*b = append(*b, ' ')
	*b = appendEscapedHelp(*b, help)
	*b = append(*b, "\n# TYPE "...)
	*b = append(*b, name...)
	*b = append(*b, ' ')
	*b = append(*b, typ...)
	*b = append(*b, '\n')
}

// appendEscapedHelp escapes backslash and newline per the text format.
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendLabelValue escapes backslash, quote and newline inside a quoted
// label value.
func appendLabelValue(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return append(b, '"')
}

// appendLabels appends {k1="v1",k2="v2"} (nothing when empty).
func appendLabels(b []byte, names, values []string) []byte {
	if len(names) == 0 {
		return b
	}
	b = append(b, '{')
	for i, n := range names {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, n...)
		b = append(b, '=')
		b = appendLabelValue(b, values[i])
	}
	return append(b, '}')
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// --- Counter ---

// Counter is a monotonically increasing value. The zero value is unusable;
// create counters through a Registry so exposition metadata exists.
type Counter struct {
	v atomic.Uint64

	name   string
	help   string
	labels []string // nil for a plain counter
	values []string
}

// NewCounter registers a plain (label-free) counter. By Prometheus
// convention the name should end in _total.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n ≥ 0; counters never go down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(b *[]byte) {
	header(b, c.name, c.help, "counter")
	c.writeSample(b)
}

func (c *Counter) writeSample(b *[]byte) {
	*b = append(*b, c.name...)
	*b = appendLabels(*b, c.labels, c.values)
	*b = append(*b, ' ')
	*b = strconv.AppendUint(*b, c.v.Load(), 10)
	*b = append(*b, '\n')
}

// CounterFunc is a counter whose value is computed at scrape time — the
// bridge for subsystems that already keep their own atomic counters (the
// matrix cache's hit/miss/eviction counts).
type CounterFunc struct {
	name, help string
	fn         func() float64
}

// NewCounterFunc registers a scrape-time counter. fn must be safe for
// concurrent calls and monotone non-decreasing.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(c)
	return c
}

func (c *CounterFunc) metricName() string { return c.name }

func (c *CounterFunc) write(b *[]byte) {
	header(b, c.name, c.help, "counter")
	*b = append(*b, c.name...)
	*b = append(*b, ' ')
	*b = appendFloat(*b, c.fn())
	*b = append(*b, '\n')
}

// --- Gauge ---

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64

	name, help string
}

// NewGauge registers a plain gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(b *[]byte) {
	header(b, g.name, g.help, "gauge")
	*b = append(*b, g.name...)
	*b = append(*b, ' ')
	*b = appendFloat(*b, g.Value())
	*b = append(*b, '\n')
}

// GaugeFunc is a gauge computed at scrape time (pool depths, uptimes,
// footprints owned elsewhere).
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a scrape-time gauge. fn must be safe for
// concurrent calls.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) metricName() string { return g.name }

func (g *GaugeFunc) write(b *[]byte) {
	header(b, g.name, g.help, "gauge")
	*b = append(*b, g.name...)
	*b = append(*b, ' ')
	*b = appendFloat(*b, g.fn())
	*b = append(*b, '\n')
}

// --- CounterVec ---

// CounterVec is a family of counters distinguished by label values. With
// takes the family lock, so hot paths resolve children once and keep the
// *Counter (its Inc is lock-free); see internal/serve's per-endpoint status
// tables.
type CounterVec struct {
	name, help string
	labels     []string

	mu       sync.Mutex
	children map[string]*Counter
	order    []string // insertion order for stable exposition
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &CounterVec{name: name, help: help, labels: labels, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := &Counter{name: v.name, help: v.help, labels: v.labels, values: append([]string(nil), values...)}
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) write(b *[]byte) {
	header(b, v.name, v.help, "counter")
	v.mu.Lock()
	children := make([]*Counter, len(v.order))
	for i, key := range v.order {
		children[i] = v.children[key]
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].values, "\x00") < strings.Join(children[j].values, "\x00")
	})
	for _, c := range children {
		c.writeSample(b)
	}
}
