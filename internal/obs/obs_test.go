package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	g := r.NewGauge("queue_depth", "Current queue depth.")
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	g.Add(-1)

	text := expose(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.\n# TYPE jobs_total counter\njobs_total 5\n",
		"# TYPE queue_depth gauge\nqueue_depth 1.5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if errs := Lint([]byte(text)); len(errs) > 0 {
		t.Errorf("lint: %v", errs)
	}
}

func TestCounterVecChildrenStableAndSorted(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("http_requests_total", "Requests.", "endpoint", "code")
	b := v.With("b", "200")
	a := v.With("a", "500")
	if v.With("b", "200") != b {
		t.Fatal("With not idempotent")
	}
	a.Inc()
	b.Add(2)

	text := expose(t, r)
	ia := strings.Index(text, `http_requests_total{endpoint="a",code="500"} 1`)
	ib := strings.Index(text, `http_requests_total{endpoint="b",code="200"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("vec exposition wrong or unsorted:\n%s", text)
	}
	if errs := Lint([]byte(text)); len(errs) > 0 {
		t.Errorf("lint: %v", errs)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	text := expose(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
		`latency_seconds_sum 56.05`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if errs := Lint([]byte(text)); len(errs) > 0 {
		t.Errorf("lint: %v", errs)
	}
}

func TestHistogramVecAndFuncs(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("op_seconds", "Op latency.", nil, "op")
	v.With("read").Observe(0.002)
	v.With("write").Observe(3)
	r.NewGaugeFunc("pool_inflight", "In-flight ops.", func() float64 { return 7 })
	r.NewCounterFunc("cache_hits_total", "Cache hits.", func() float64 { return 41 })
	r.RegisterRuntimeMetrics()

	text := expose(t, r)
	for _, want := range []string{
		`op_seconds_bucket{op="read",le="0.0025"} 1`,
		`op_seconds_count{op="write"} 1`,
		"pool_inflight 7",
		"cache_hits_total 41",
		"go_goroutines ",
		"# TYPE go_gc_cycles_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if errs := Lint([]byte(text)); len(errs) > 0 {
		t.Errorf("lint: %v", errs)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("weird_total", "Has \"quotes\" and\nnewlines.", "k")
	v.With("a\"b\\c\nd").Inc()
	text := expose(t, r)
	if !strings.Contains(text, `weird_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", text)
	}
	if errs := Lint([]byte(text)); len(errs) > 0 {
		t.Errorf("lint: %v", errs)
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.NewCounter("x_total", "again") },
		"invalid name":  func() { r.NewCounter("0bad", "h") },
		"invalid label": func() { r.NewCounterVec("y_total", "h", "0bad") },
		"le label":      func() { r.NewHistogramVec("z", "h", nil, "le") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n_total", "n")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h_seconds", "h", []float64{1, 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i % 4))
			}
		}()
	}
	// Scrape concurrently with the writers: must stay lint-clean.
	for i := 0; i < 20; i++ {
		if errs := Lint([]byte(expose(t, r))); len(errs) > 0 {
			t.Fatalf("mid-write lint: %v", errs)
		}
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if math.Abs(g.Value()-4000) > 1e-9 {
		t.Errorf("gauge = %v, want 4000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_total", "ok").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ok_total 1") {
		t.Errorf("body: %s", rec.Body.String())
	}
}

func TestLintCatchesBadExposition(t *testing.T) {
	cases := map[string]string{
		"no type":           "foo 1\n",
		"bad name":          "# TYPE 0bad counter\n0bad 1\n",
		"bad value":         "# TYPE a_total counter\na_total one\n",
		"counter suffix":    "# TYPE foo counter\nfoo 1\n",
		"type after sample": "# TYPE a_total counter\na_total 1\n# TYPE a_total counter\n",
		"duplicate series":  "# TYPE b gauge\nb 1\nb 2\n",
		"histogram no inf":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram order": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n" +
			"h_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
	}
	for name, text := range cases {
		if errs := Lint([]byte(text)); len(errs) == 0 {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
	clean := "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9.5\nh_count 5\n"
	if errs := Lint([]byte(clean)); len(errs) > 0 {
		t.Errorf("clean exposition rejected: %v", errs)
	}
}

func BenchmarkHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("n_total", "n")
	h := r.NewHistogram("h_seconds", "h", DefBuckets)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.003)
		}
	})
}
