package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates Prometheus text-format 0.0.4 exposition the way `promtool
// check metrics` does, without the external binary: syntax of every line,
// TYPE-before-samples ordering, family/sample name consistency, histogram
// completeness (+Inf bucket, cumulative non-decreasing buckets, _count
// consistency), counter naming conventions and duplicate series. It returns
// every problem found (nil means the text is clean), so a CI test can
// assert len(Lint(body)) == 0 and print the full list on failure.
func Lint(text []byte) []error {
	var errs []error
	addf := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type family struct {
		typ     string
		helped  bool
		samples int
	}
	families := map[string]*family{}
	seen := map[string]int{}          // full series (name + labels) → line
	buckets := map[string][]bucket2{} // histogram series (sans le) → (le, count)
	counts := map[string]float64{}    // histogram _count values by label set

	lines := strings.Split(string(text), "\n")
	for ln, raw := range lines {
		line := ln + 1
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "#") {
			fields := strings.SplitN(raw, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				if strings.HasPrefix(raw, "# HELP") || strings.HasPrefix(raw, "# TYPE") {
					addf(line, "malformed comment %q", raw)
				}
				continue // arbitrary comments are legal
			}
			name := fields[2]
			if !validName(name) {
				addf(line, "invalid metric name %q", name)
				continue
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			switch fields[1] {
			case "HELP":
				if f.helped {
					addf(line, "second HELP for %s", name)
				}
				f.helped = true
			case "TYPE":
				if len(fields) < 4 {
					addf(line, "TYPE for %s is missing the type", name)
					continue
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf(line, "unknown type %q for %s", typ, name)
					continue
				}
				if f.typ != "" {
					addf(line, "second TYPE for %s", name)
				}
				if f.samples > 0 {
					addf(line, "TYPE for %s after its samples", name)
				}
				f.typ = typ
				if typ == "counter" && !strings.HasSuffix(name, "_total") {
					addf(line, "counter %s should end in _total", name)
				}
			}
			continue
		}

		name, labels, value, ok := parseSample(raw)
		if !ok {
			addf(line, "unparsable sample %q", raw)
			continue
		}
		fname := name
		f := families[name]
		if f == nil {
			// histogram/summary series carry suffixes.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name && families[base] != nil {
					fname, f = base, families[base]
					break
				}
			}
		}
		if f == nil || f.typ == "" {
			addf(line, "sample %s has no preceding # TYPE", name)
			continue
		}
		f.samples++
		if f.typ == "histogram" {
			if err := checkHistogramSample(fname, name, labels, value, buckets, counts); err != nil {
				addf(line, "%v", err)
			}
		} else if name != fname {
			addf(line, "sample %s does not match family %s", name, fname)
		}
		series := name + "{" + canonicalLabels(labels) + "}"
		if prev, dup := seen[series]; dup {
			addf(line, "duplicate series %s (first at line %d)", series, prev)
		}
		seen[series] = line
		if math.IsNaN(value) && f.typ == "counter" {
			addf(line, "counter %s is NaN", name)
		}
	}

	// Per-histogram closure checks: +Inf bucket present, cumulative
	// non-decreasing, _count equals the +Inf bucket.
	var keys []string
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := buckets[k]
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := math.Inf(-1)
		prev := -1.0
		hasInf := false
		for _, b := range bs {
			if b.le <= last {
				errs = append(errs, fmt.Errorf("histogram %s: duplicate le=%v", k, b.le))
			}
			last = b.le
			if b.count < prev {
				errs = append(errs, fmt.Errorf("histogram %s: buckets not cumulative at le=%v", k, b.le))
			}
			prev = b.count
			if math.IsInf(b.le, 1) {
				hasInf = true
				if c, ok := counts[k]; ok && c != b.count {
					errs = append(errs, fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", k, c, b.count))
				}
			}
		}
		if !hasInf {
			errs = append(errs, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", k))
		}
	}
	return errs
}

// checkHistogramSample validates one histogram series and records buckets
// and counts for the closure checks. The histogram key is the family name
// plus every label except le.
func checkHistogramSample(fname, name string, labels [][2]string, value float64,
	buckets map[string][]bucket2, counts map[string]float64) error {
	var rest [][2]string
	le := ""
	for _, kv := range labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		rest = append(rest, kv)
	}
	key := fname + "{" + canonicalLabels(rest) + "}"
	switch name {
	case fname + "_bucket":
		if le == "" {
			return fmt.Errorf("histogram bucket %s without le label", name)
		}
		f, err := parseLE(le)
		if err != nil {
			return fmt.Errorf("histogram %s: bad le %q", fname, le)
		}
		buckets[key] = append(buckets[key], bucket2{le: f, count: value})
	case fname + "_sum":
	case fname + "_count":
		counts[key] = value
	default:
		return fmt.Errorf("sample %s does not match histogram family %s", name, fname)
	}
	return nil
}

type bucket2 struct{ le, count float64 }

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// canonicalLabels renders labels sorted by name, for duplicate detection.
func canonicalLabels(labels [][2]string) string {
	sorted := append([][2]string(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	var sb strings.Builder
	for i, kv := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[0])
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(kv[1]))
	}
	return sb.String()
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(s string) (name string, labels [][2]string, value float64, ok bool) {
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	name = s[:i]
	if !validName(name) {
		return "", nil, 0, false
	}
	if i < len(s) && s[i] == '{' {
		i++
		for {
			if i >= len(s) {
				return "", nil, 0, false
			}
			if s[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(s) && s[j] != '=' {
				j++
			}
			lname := s[i:j]
			if !validName(lname) || strings.Contains(lname, ":") || j+1 >= len(s) || s[j+1] != '"' {
				return "", nil, 0, false
			}
			// scan the quoted value honoring escapes
			v := strings.Builder{}
			k := j + 2
			for {
				if k >= len(s) {
					return "", nil, 0, false
				}
				if s[k] == '\\' {
					if k+1 >= len(s) {
						return "", nil, 0, false
					}
					switch s[k+1] {
					case '\\', '"':
						v.WriteByte(s[k+1])
					case 'n':
						v.WriteByte('\n')
					default:
						return "", nil, 0, false
					}
					k += 2
					continue
				}
				if s[k] == '"' {
					k++
					break
				}
				v.WriteByte(s[k])
				k++
			}
			labels = append(labels, [2]string{lname, v.String()})
			i = k
			if i < len(s) && s[i] == ',' {
				i++
			}
		}
	}
	if i >= len(s) || s[i] != ' ' {
		return "", nil, 0, false
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, false
	}
	f, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, false
		}
	}
	return name, labels, f, true
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
