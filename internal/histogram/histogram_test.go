package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/temporal"
)

func TestVOptimalExact(t *testing.T) {
	// Two clear plateaus: the 2-bucket optimum splits between them.
	vals := []float64{1, 1, 1, 9, 9, 9}
	h, err := VOptimal(vals, 2)
	if err != nil {
		t.Fatalf("VOptimal: %v", err)
	}
	if h.SSE != 0 {
		t.Errorf("SSE = %v, want 0", h.SSE)
	}
	if h.Buckets[0].Hi != 3 || h.Buckets[0].Mean != 1 || h.Buckets[1].Mean != 9 {
		t.Errorf("buckets = %+v", h.Buckets)
	}
}

func TestVOptimalSingleBucket(t *testing.T) {
	vals := []float64{2, 4, 6}
	h, err := VOptimal(vals, 1)
	if err != nil {
		t.Fatalf("VOptimal: %v", err)
	}
	// SSE = (2−4)² + (4−4)² + (6−4)² = 8.
	if math.Abs(h.SSE-8) > 1e-9 || math.Abs(h.Buckets[0].Mean-4) > 1e-9 {
		t.Errorf("SSE = %v mean = %v", h.SSE, h.Buckets[0].Mean)
	}
}

func TestVOptimalValidation(t *testing.T) {
	if _, err := VOptimal(nil, 2); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := VOptimal([]float64{1}, 0); err == nil {
		t.Error("b = 0 should fail")
	}
	h, err := VOptimal([]float64{1, 2}, 10)
	if err != nil || len(h.Buckets) != 2 || h.SSE != 0 {
		t.Errorf("b > n should clamp: %+v, %v", h, err)
	}
}

func TestVOptimalReconstructLen(t *testing.T) {
	vals := []float64{5, 1, 5, 1, 5}
	h, _ := VOptimal(vals, 3)
	rec := h.Reconstruct()
	if len(rec) != len(vals) {
		t.Fatalf("reconstruct length %d, want %d", len(rec), len(vals))
	}
}

// bruteForce finds the optimal SSE by enumerating every partition.
func bruteForce(vals []float64, b int) float64 {
	p := newPrefix(vals)
	n := len(vals)
	best := math.Inf(1)
	var rec func(start, left int, acc float64)
	rec = func(start, left int, acc float64) {
		if left == 1 {
			if e := acc + p.rangeSSE(start, n); e < best {
				best = e
			}
			return
		}
		for end := start + 1; end <= n-left+1; end++ {
			rec(end, left-1, acc+p.rangeSSE(start, end))
		}
	}
	rec(0, b, 0)
	return best
}

func TestVOptimalPropMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64() * 100)
		}
		b := 1 + rng.Intn(n)
		h, err := VOptimal(vals, b)
		if err != nil {
			return false
		}
		want := bruteForce(vals, b)
		return math.Abs(h.SSE-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestVOptimalPropMatchesCoreDP: V-optimal histogram construction is the
// 1-D, gap-free, unit-length special case of PTAc (Section 2.3 of the
// paper); the two independent implementations must agree.
func TestVOptimalPropMatchesCoreDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		vals := make([]float64, n)
		seq := temporal.NewSequence(nil, []string{"v"})
		gid := seq.Groups.Intern(nil)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*1000) / 8
			seq.Rows = append(seq.Rows, temporal.SeqRow{
				Group: gid,
				Aggs:  []float64{vals[i]},
				T:     temporal.Inst(temporal.Chronon(i)),
			})
		}
		b := 1 + rng.Intn(n)
		h, err1 := VOptimal(vals, b)
		res, err2 := core.PTAc(seq, b, core.Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(h.SSE-res.Error) > 1e-6*(1+res.Error) {
			return false
		}
		// Bucket boundaries must coincide with PTA row intervals.
		if len(h.Buckets) != res.Sequence.Len() {
			return false
		}
		for i, bk := range h.Buckets {
			row := res.Sequence.Rows[i]
			if int64(bk.Lo) != row.T.Start || int64(bk.Hi-1) != row.T.End {
				return false
			}
			if math.Abs(bk.Mean-row.Aggs[0]) > 1e-9*(1+math.Abs(bk.Mean)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVOptimalErrorBounded(t *testing.T) {
	vals := []float64{1, 1, 9, 9, 5, 5}
	full, _ := VOptimal(vals, 1)
	// A zero bound needs one bucket per distinct plateau (SSE 0 with 3).
	h, err := VOptimalError(vals, 0)
	if err != nil {
		t.Fatalf("VOptimalError: %v", err)
	}
	if h.SSE != 0 || len(h.Buckets) != 3 {
		t.Errorf("zero-bound histogram: %d buckets, SSE %v", len(h.Buckets), h.SSE)
	}
	// The full error bound allows a single bucket.
	h, err = VOptimalError(vals, full.SSE)
	if err != nil || len(h.Buckets) != 1 {
		t.Errorf("full-bound histogram: %d buckets (%v)", len(h.Buckets), err)
	}
	if _, err := VOptimalError(vals, -1); err == nil {
		t.Error("negative bound should fail")
	}
}

func TestVOptimalErrorPropMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64() * 50)
		}
		full, err := VOptimal(vals, 1)
		if err != nil {
			return false
		}
		bound := rng.Float64() * full.SSE
		h, err := VOptimalError(vals, bound)
		if err != nil {
			return false
		}
		if h.SSE > bound+1e-9 {
			return false
		}
		// One bucket fewer must violate the bound (unless already at 1).
		if len(h.Buckets) > 1 {
			smaller, err := VOptimal(vals, len(h.Buckets)-1)
			if err != nil {
				return false
			}
			if smaller.SSE <= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
