// Package histogram implements V-optimal histogram construction for
// one-dimensional data with a size or error bound, following Jagadish,
// Koudas, Muthukrishnan, Poosala, Sevcik and Suel, "Optimal Histograms with
// Quality Guarantees" (VLDB 1998) — the dynamic program that Section 5 of
// the PTA paper extends to multi-dimensional, gap-aware temporal data.
//
// A histogram partitions the value vector v[0..n) into b contiguous buckets;
// each bucket is summarized by its mean, and the quality measure is the sum
// squared error. The dynamic program finds the partition minimizing SSE in
// O(n²b) time and O(nb) space using prefix sums for O(1) bucket errors.
//
// PTA on a gap-free, single-group, unit-length sequential relation with one
// aggregate attribute is exactly this problem; the package doubles as an
// independent oracle for the core DP in tests.
package histogram

import (
	"fmt"
	"math"
)

// Bucket is one contiguous run of values summarized by its mean.
type Bucket struct {
	// Lo and Hi delimit the half-open index range [Lo, Hi) of the bucket.
	Lo, Hi int
	// Mean is the average of the values inside the bucket.
	Mean float64
	// SSE is the sum squared error of representing the bucket by Mean.
	SSE float64
}

// Histogram is a V-optimal partition of a value vector.
type Histogram struct {
	// Buckets lists the buckets in index order.
	Buckets []Bucket
	// SSE is the total error Σ bucket.SSE.
	SSE float64
}

// prefix enables O(1) range means and SSEs.
type prefix struct {
	s  []float64 // s[i] = Σ v[0..i)
	ss []float64
}

func newPrefix(vals []float64) *prefix {
	p := &prefix{s: make([]float64, len(vals)+1), ss: make([]float64, len(vals)+1)}
	for i, v := range vals {
		p.s[i+1] = p.s[i] + v
		p.ss[i+1] = p.ss[i] + v*v
	}
	return p
}

// rangeSSE returns the SSE of bucket [lo, hi) under its own mean.
func (p *prefix) rangeSSE(lo, hi int) float64 {
	if hi-lo <= 1 {
		return 0
	}
	n := float64(hi - lo)
	s := p.s[hi] - p.s[lo]
	sse := (p.ss[hi] - p.ss[lo]) - s*s/n
	if sse < 0 {
		return 0
	}
	return sse
}

func (p *prefix) rangeMean(lo, hi int) float64 {
	return (p.s[hi] - p.s[lo]) / float64(hi-lo)
}

// VOptimal builds the minimal-SSE histogram of vals with exactly
// min(b, len(vals)) buckets.
func VOptimal(vals []float64, b int) (*Histogram, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("histogram: empty input")
	}
	if b < 1 {
		return nil, fmt.Errorf("histogram: bucket count %d, want ≥ 1", b)
	}
	b = min(b, n)
	p := newPrefix(vals)

	// e[k][i]: minimal SSE of splitting the first i values into k buckets.
	// Only two rows are live; the split matrix is kept for reconstruction.
	prevE := make([]float64, n+1)
	curE := make([]float64, n+1)
	splits := make([][]int32, b)
	for i := 1; i <= n; i++ {
		curE[i] = p.rangeSSE(0, i)
	}
	splits[0] = make([]int32, n+1)
	for k := 2; k <= b; k++ {
		prevE, curE = curE, prevE
		row := make([]int32, n+1)
		for i := range curE {
			curE[i] = math.Inf(1)
		}
		for i := k; i <= n; i++ {
			best := math.Inf(1)
			bestJ := int32(k - 1)
			for j := i - 1; j >= k-1; j-- {
				tail := p.rangeSSE(j, i)
				if e := prevE[j] + tail; e < best {
					best = e
					bestJ = int32(j)
				}
				if tail > best {
					break
				}
			}
			curE[i] = best
			row[i] = bestJ
		}
		splits[k-1] = row
	}

	h := &Histogram{SSE: curE[n], Buckets: make([]Bucket, b)}
	hi := n
	for k := b; k >= 1; k-- {
		lo := 0
		if k > 1 {
			lo = int(splits[k-1][hi])
		}
		h.Buckets[k-1] = Bucket{Lo: lo, Hi: hi, Mean: p.rangeMean(lo, hi), SSE: p.rangeSSE(lo, hi)}
		hi = lo
	}
	return h, nil
}

// VOptimalError builds the smallest histogram whose SSE does not exceed
// maxSSE (the error-bounded variant). maxSSE must be non-negative.
func VOptimalError(vals []float64, maxSSE float64) (*Histogram, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("histogram: empty input")
	}
	if maxSSE < 0 {
		return nil, fmt.Errorf("histogram: negative error bound %v", maxSSE)
	}
	// The optimal SSE is non-increasing in b: binary search the smallest b.
	lo, hi := 1, len(vals)
	for lo < hi {
		mid := (lo + hi) / 2
		h, err := VOptimal(vals, mid)
		if err != nil {
			return nil, err
		}
		if h.SSE <= maxSSE {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return VOptimal(vals, lo)
}

// Reconstruct expands the histogram back to a full-resolution vector where
// every index carries its bucket mean.
func (h *Histogram) Reconstruct() []float64 {
	if len(h.Buckets) == 0 {
		return nil
	}
	out := make([]float64, h.Buckets[len(h.Buckets)-1].Hi)
	for _, b := range h.Buckets {
		for i := b.Lo; i < b.Hi; i++ {
			out[i] = b.Mean
		}
	}
	return out
}
