package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/temporal"
)

func TestRelationRoundTrip(t *testing.T) {
	r := dataset.Proj()
	var buf bytes.Buffer
	if err := StoreRelation(&buf, r); err != nil {
		t.Fatalf("StoreRelation: %v", err)
	}
	back, err := LoadRelation(&buf)
	if err != nil {
		t.Fatalf("LoadRelation: %v", err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip changed the relation:\n%v\nvs\n%v", r, back)
	}
}

func TestRelationRoundTripAllKinds(t *testing.T) {
	s := temporal.MustSchema(
		temporal.Attribute{Name: "s", Kind: temporal.KindString},
		temporal.Attribute{Name: "i", Kind: temporal.KindInt},
		temporal.Attribute{Name: "f", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(s)
	r.MustAppend([]temporal.Datum{temporal.String("x,y\"z"), temporal.Int(-7), temporal.Float(2.125)},
		temporal.Interval{Start: -3, End: 9})
	var buf bytes.Buffer
	if err := StoreRelation(&buf, r); err != nil {
		t.Fatalf("StoreRelation: %v", err)
	}
	back, err := LoadRelation(&buf)
	if err != nil {
		t.Fatalf("LoadRelation: %v", err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip changed the relation")
	}
}

func TestLoadRelationErrors(t *testing.T) {
	cases := []string{
		"",                                // no header
		"a:string\nx",                     // missing interval columns
		"a:blob,tstart,tend\nx,1,2",       // unknown kind
		"a:string,tstart,tend\nx,zap,2",   // bad tstart
		"a:string,tstart,tend\nx,1,zap",   // bad tend
		"a:int,tstart,tend\nnotanint,1,2", // bad datum
		"a:string,tstart,tend\nx,5,2",     // inverted interval
		"a,tstart,tend\nx,1,2",            // header not name:kind
	}
	for i, c := range cases {
		if _, err := LoadRelation(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}

func TestStoreSequence(t *testing.T) {
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		t.Fatalf("ITA: %v", err)
	}
	var buf bytes.Buffer
	if err := StoreSequence(&buf, seq); err != nil {
		t.Fatalf("StoreSequence: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Proj:string,AvgSal,tstart,tend\n") {
		t.Errorf("header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "A,800,1,2") {
		t.Errorf("missing first row in:\n%s", out)
	}
	lines := strings.Count(strings.TrimSpace(out), "\n")
	if lines != seq.Len() { // header + rows ⇒ rows newlines after trim
		t.Errorf("row count = %d, want %d", lines, seq.Len())
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	rpath := filepath.Join(dir, "proj.csv")
	if err := SaveRelationFile(rpath, dataset.Proj()); err != nil {
		t.Fatalf("SaveRelationFile: %v", err)
	}
	back, err := LoadRelationFile(rpath)
	if err != nil {
		t.Fatalf("LoadRelationFile: %v", err)
	}
	if !back.Equal(dataset.Proj()) {
		t.Error("file round trip changed the relation")
	}
	seq, _ := ita.Eval(dataset.Proj(), ita.Query{Aggs: []ita.AggSpec{{Func: ita.Count}}})
	if err := SaveSequenceFile(filepath.Join(dir, "seq.csv"), seq); err != nil {
		t.Fatalf("SaveSequenceFile: %v", err)
	}
	if _, err := LoadRelationFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}
