// Package csvio persists temporal relations and sequential relations as CSV
// files. It replaces the Oracle 11g instance the paper used as its storage
// medium; all reported measurements exclude storage I/O, so a plain-text
// format preserves every experiment.
//
// Relation format: a header of "name:kind" columns followed by the implicit
// "tstart" and "tend" interval columns, then one row per tuple:
//
//	Empl:string,Proj:string,Sal:float,tstart,tend
//	John,A,800,1,4
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/temporal"
)

// StoreRelation writes the relation as CSV.
func StoreRelation(w io.Writer, r *temporal.Relation) error {
	cw := csv.NewWriter(w)
	schema := r.Schema()
	header := make([]string, 0, schema.Len()+2)
	for _, a := range schema.Attrs() {
		header = append(header, a.Name+":"+a.Kind.String())
	}
	header = append(header, "tstart", "tend")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: writing header: %v", err)
	}
	row := make([]string, len(header))
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for j, v := range tp.Vals {
			row[j] = v.String()
		}
		row[len(row)-2] = strconv.FormatInt(tp.T.Start, 10)
		row[len(row)-1] = strconv.FormatInt(tp.T.End, 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: writing tuple %d: %v", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadRelation reads a relation previously written by StoreRelation (or
// hand-authored in the same format).
func LoadRelation(rd io.Reader) (*temporal.Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %v", err)
	}
	if len(header) < 3 || header[len(header)-2] != "tstart" || header[len(header)-1] != "tend" {
		return nil, fmt.Errorf("csvio: header must end in tstart,tend columns")
	}
	attrs := make([]temporal.Attribute, len(header)-2)
	for i, h := range header[:len(header)-2] {
		name, kindStr, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("csvio: header column %q is not name:kind", h)
		}
		kind, err := temporal.ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		attrs[i] = temporal.Attribute{Name: name, Kind: kind}
	}
	schema, err := temporal.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	out := temporal.NewRelation(schema)
	vals := make([]temporal.Datum, len(attrs))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %v", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		for i, a := range attrs {
			v, err := temporal.ParseDatum(a.Kind, rec[i])
			if err != nil {
				return nil, fmt.Errorf("csvio: line %d: %v", line, err)
			}
			vals[i] = v
		}
		start, err := strconv.ParseInt(strings.TrimSpace(rec[len(rec)-2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad tstart: %v", line, err)
		}
		end, err := strconv.ParseInt(strings.TrimSpace(rec[len(rec)-1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad tend: %v", line, err)
		}
		if err := out.Append(vals, temporal.Interval{Start: start, End: end}); err != nil {
			return nil, fmt.Errorf("csvio: line %d: %v", line, err)
		}
	}
	return out, nil
}

// StoreSequence writes a sequential relation as CSV: grouping columns, one
// column per aggregate attribute, then tstart and tend.
func StoreSequence(w io.Writer, seq *temporal.Sequence) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(seq.GroupAttrs)+seq.P()+2)
	for _, a := range seq.GroupAttrs {
		header = append(header, a.Name+":"+a.Kind.String())
	}
	header = append(header, seq.AggNames...)
	header = append(header, "tstart", "tend")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: writing header: %v", err)
	}
	row := make([]string, len(header))
	for _, r := range seq.Rows {
		i := 0
		for _, v := range seq.Groups.Values(r.Group) {
			row[i] = v.String()
			i++
		}
		for _, a := range r.Aggs {
			row[i] = strconv.FormatFloat(a, 'g', -1, 64)
			i++
		}
		row[i] = strconv.FormatInt(r.T.Start, 10)
		row[i+1] = strconv.FormatInt(r.T.End, 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: writing row: %v", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveRelationFile stores the relation at path, creating or truncating it.
func SaveRelationFile(path string, r *temporal.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := StoreRelation(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRelationFile loads a relation from path.
func LoadRelationFile(path string) (*temporal.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRelation(f)
}

// SaveSequenceFile stores the sequence at path.
func SaveSequenceFile(path string, seq *temporal.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := StoreSequence(f, seq); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
