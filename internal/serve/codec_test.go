package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
	"repro/pta"
)

// reflectJSON renders v through encoding/json exactly like writeJSON does
// (HTML escaping off), minus the trailing newline.
func reflectJSON(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

// codecResult builds a result whose series exercises every datum kind and
// the string/float corner cases of the wire format.
func codecResult() *pta.Result {
	attrs := []temporal.Attribute{
		{Name: "name", Kind: temporal.KindString},
		{Name: "id", Kind: temporal.KindInt},
		{Name: "score", Kind: temporal.KindFloat},
	}
	s := pta.NewSeries(attrs, []string{"a", "b"})
	add := func(name string, id int64, score float64, aggs []float64, start, end int64) {
		s.Rows = append(s.Rows, pta.Row{
			Group: s.Groups.Intern([]temporal.Datum{
				temporal.String(name), temporal.Int(id), temporal.Float(score),
			}),
			Aggs: aggs,
			T:    pta.Interval{Start: pta.Chronon(start), End: pta.Chronon(end)},
		})
	}
	add(`q"uote\back`, -42, 0.25, []float64{800, 1e-7}, 1, 2)
	add("new\nline\r\ttab\x01ctrl", 7, 1e21, []float64{0, math.Copysign(0, -1)}, 3, 3)
	add("héllo <b>&amp;</b>", 0, 1e-7, []float64{123.456, 5e-324}, 4, 6)
	add("bad\xffutf8 line\u2028sep\u2029", 1, -1.5e21, []float64{1e20, 0.000001}, 7, 8)
	add("plain", 2, 0, []float64{0.0000009999, -49166.666666666664}, 9, 9)
	return &pta.Result{
		Series:   s,
		C:        len(s.Rows),
		Error:    49166.666666666664,
		Strategy: "ptac",
		Budget:   pta.Size(4),
		Stats:    pta.Stats{Cells: 12, InnerIters: 345, EnvelopeSkips: 21, MaxHeap: 7, ReadAhead: 3},
	}
}

// TestAppendResultMatchesEncodingJSON pins appendResult to the reference
// encodeResult + encoding/json bytes across datum kinds, omitempty fields
// and formatting corner cases.
func TestAppendResultMatchesEncodingJSON(t *testing.T) {
	grouped := codecResult()

	ungrouped := pta.NewSeries(nil, []string{"v"})
	for i := 0; i < 3; i++ {
		ungrouped.Rows = append(ungrouped.Rows, pta.Row{
			Group: ungrouped.Groups.Intern(nil), // the empty group, like decodeSeries
			Aggs:  []float64{float64(i) + 0.5},
			T:     pta.Interval{Start: pta.Chronon(i), End: pta.Chronon(i)},
		})
	}
	flat := &pta.Result{Series: ungrouped, C: 3, Error: 0, Strategy: "gms", Budget: pta.ErrorBound(0.05)}

	empty := &pta.Result{Series: pta.NewSeries(nil, []string{"v"}), C: 0, Error: 0,
		Strategy: "ptae", Budget: pta.ErrorBound(0)}

	cases := []struct {
		name  string
		res   *pta.Result
		cache string
	}{
		{"grouped/hit", grouped, cacheHit},
		{"grouped/no-cache", grouped, ""},
		{"ungrouped/zero-stats", flat, cacheBypass},
		{"empty-rows", empty, cacheMiss},
	}
	for _, tc := range cases {
		got := appendResult(nil, tc.res, tc.cache)
		want := reflectJSON(t, encodeResult(tc.res, tc.cache))
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\n append = %s\nencoder = %s", tc.name, got, want)
		}
	}
}

// TestAppendJSONStringMatches drives the hand-rolled string escaper against
// encoding/json on generated strings and raw byte soup (invalid UTF-8).
func TestAppendJSONStringMatches(t *testing.T) {
	check := func(s string) bool {
		return bytes.Equal(appendJSONString(nil, s), reflectJSON(t, s))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		raw := make([]byte, rng.Intn(24))
		rng.Read(raw)
		if s := string(raw); !check(s) {
			t.Fatalf("mismatch on %q:\n append = %s\nencoder = %s",
				s, appendJSONString(nil, s), reflectJSON(t, s))
		}
	}
	for _, s := range []string{"", "\u2028", "\u2029", "\xff", "\xc3", "a\x00b", "\x7f", "<&>"} {
		if !check(s) {
			t.Errorf("mismatch on %q", s)
		}
	}
}

// TestAppendJSONFloatMatches sweeps the full exponent range plus generated
// values against encoding/json's float formatting; non-finite values (which
// encoding/json refuses outright) must render as null.
func TestAppendJSONFloatMatches(t *testing.T) {
	check := func(f float64) bool {
		return bytes.Equal(appendJSONFloat(nil, f), reflectJSON(t, f))
	}
	for e := -320; e <= 308; e++ {
		f := 1.2345 * math.Pow(10, float64(e))
		if !check(f) || !check(-f) {
			t.Fatalf("mismatch at 1.2345e%d: append = %s", e, appendJSONFloat(nil, f))
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if got := appendJSONFloat(nil, f); string(got) != "null" {
			t.Errorf("appendJSONFloat(%v) = %s, want null", f, got)
		}
	}
}

// --- allocation benchmarks ---

// benchResultRows builds an n-row grouped result, the shape a warm cache hit
// streams back.
func benchResultRows(n int) *pta.Result {
	attrs := []temporal.Attribute{{Name: "grp", Kind: temporal.KindString}}
	s := pta.NewSeries(attrs, []string{"v1", "v2"})
	for i := 0; i < n; i++ {
		s.Rows = append(s.Rows, pta.Row{
			Group: s.Groups.Intern([]temporal.Datum{temporal.String("tenant-7")}),
			Aggs:  []float64{float64(i) + 0.25, float64(i%9) * 1.5},
			T:     pta.Interval{Start: pta.Chronon(i * 3), End: pta.Chronon(i*3 + 2)},
		})
	}
	return &pta.Result{
		Series: s, C: n, Error: 12345.678,
		Strategy: "ptac", Budget: pta.Size(n),
		Stats: pta.Stats{Cells: 100, InnerIters: 4000},
	}
}

// BenchmarkEncodeResult isolates the response encoding: the reflective
// json.Encoder path writeJSON used to take for results versus the pooled
// appendResult path the compress handlers take now.
func BenchmarkEncodeResult(b *testing.B) {
	res := benchResultRows(64)
	b.Run("reflect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := json.NewEncoder(io.Discard)
			enc.SetEscapeHTML(false)
			if err := enc.Encode(encodeResult(res, cacheHit)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp := codecBufPool.Get().(*[]byte)
			buf := appendResult((*bp)[:0], res, cacheHit)
			*bp = buf[:0]
			codecBufPool.Put(bp)
		}
	})
}

// benchSeriesWire is a single-group wire series large enough that the
// response body dominates over the envelope.
func benchSeriesWire(n int) seriesWire {
	w := seriesWire{AggNames: []string{"v"}}
	for i := 0; i < n; i++ {
		w.Rows = append(w.Rows, rowWire{
			Aggs:  []float64{float64(i%17) + 0.25*float64(i%5)},
			Start: int64(i), End: int64(i),
		})
	}
	return w
}

func newBenchHandler(b *testing.B) http.Handler {
	b.Helper()
	s, err := New(Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	return s.Handler()
}

// BenchmarkCompressHit measures a full warm-cache /v1/compress request —
// decode, cache lookup, DP walk on cached matrices, pooled encode.
func BenchmarkCompressHit(b *testing.B) {
	h := newBenchHandler(b)
	raw, err := json.Marshal(compressRequest{
		Series: benchSeriesWire(64),
		Plan:   planWire{Strategy: "ptac", Budget: "c=24"},
	})
	if err != nil {
		b.Fatal(err)
	}
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/compress", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(); code != http.StatusOK {
		b.Fatalf("warm-up status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkCompressManyHit measures a warm-cache /v1/compress/many request
// resolving three plans over shared matrices.
func BenchmarkCompressManyHit(b *testing.B) {
	h := newBenchHandler(b)
	raw, err := json.Marshal(compressManyRequest{
		Series: benchSeriesWire(64),
		Plans: []planWire{
			{Strategy: "ptac", Budget: "c=24"},
			{Strategy: "ptac", Budget: "c=12"},
			{Strategy: "ptae", Budget: "eps=0.2"},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/compress/many", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(); code != http.StatusOK {
		b.Fatalf("warm-up status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}
