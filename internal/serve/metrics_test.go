package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrape fetches /metrics raw.
func scrape(t *testing.T, base string) (string, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// metricValue extracts one un-labeled sample value from an exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// TestMetricsEndpointLintsAndAgreesWithStats is the tentpole acceptance
// test: after traffic of every disposition, /metrics parses clean under the
// promtool-style linter, carries the catalog families, and its counters
// agree with /v1/stats.
func TestMetricsEndpointLintsAndAgreesWithStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := projWire()
	send := func(strategy, budget string) {
		t.Helper()
		raw, _ := json.Marshal(compressRequest{Series: series, Plan: planWire{Strategy: strategy, Budget: budget}})
		resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	send("ptac", "c=4") // miss
	send("ptac", "c=4") // hit
	send("gms", "c=4")  // bypass
	send("ptac", "c=2") // 422 infeasible
	send("nope", "c=4") // 400 unknown strategy
	get(t, ts.URL+"/healthz")

	text, contentType := scrape(t, ts.URL)
	if contentType != obs.ContentType {
		t.Errorf("content type %q, want %q", contentType, obs.ContentType)
	}
	if errs := obs.Lint([]byte(text)); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("lint found %d problems", len(errs))
	}
	for _, family := range []string{
		"ptaserve_http_requests_total",
		"ptaserve_http_request_duration_seconds_bucket",
		"ptaserve_http_inflight",
		"ptaserve_uptime_seconds",
		"ptaserve_compressions_total",
		"ptaserve_admission_rejected_total",
		"ptaserve_cache_hits_total",
		"ptaserve_cache_misses_total",
		"ptaserve_cache_evictions_total",
		"ptaserve_cache_entries",
		"ptaserve_cache_fill_seconds_bucket",
		"ptaserve_spill_loads_total",
		"ptaserve_dp_cells_filled_total",
		"ptapeer_peers",
		"ptapeer_fetch_hits_total",
		"ptapeer_fetch_misses_total",
		"ptapeer_fetch_errors_total",
		"ptapeer_fetch_bytes_total",
		"ptapeer_serve_hits_total",
		"ptapeer_serve_misses_total",
		"ptapeer_serve_bytes_total",
		"ptafill_requests_total",
		"ptafill_monotone_coverage_bucket",
		"go_goroutines",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition is missing %s", family)
		}
	}
	// Per-endpoint status codes landed on the right children.
	for _, sample := range []string{
		`ptaserve_http_requests_total{endpoint="compress",code="200"} 3`,
		`ptaserve_http_requests_total{endpoint="compress",code="422"} 1`,
		`ptaserve_http_requests_total{endpoint="compress",code="400"} 1`,
		`ptaserve_http_requests_total{endpoint="healthz",code="200"} 1`,
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("exposition is missing sample %q", sample)
		}
	}

	// /metrics and /v1/stats must tell the same story.
	status, stats := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	// The scrape precedes this stats call, so re-scrape for comparable
	// counters: counters only grow, so equality is checked on a fresh pair
	// where no traffic runs in between.
	text, _ = scrape(t, ts.URL)
	cache := stats["cache"].(map[string]any)
	if got, want := metricValue(t, text, "ptaserve_cache_hits_total"), cache["hits"].(float64); got != want {
		t.Errorf("metrics cache hits %v != stats %v", got, want)
	}
	if got, want := metricValue(t, text, "ptaserve_cache_misses_total"), cache["misses"].(float64); got != want {
		t.Errorf("metrics cache misses %v != stats %v", got, want)
	}
	if got, want := metricValue(t, text, "ptaserve_compressions_total"), stats["compressions"].(float64); got != want {
		t.Errorf("metrics compressions %v != stats %v", got, want)
	}
	if got, want := metricValue(t, text, "ptaserve_http_inflight"), stats["inflight"].(float64); got != want {
		t.Errorf("metrics inflight %v != stats %v", got, want)
	}
	if _, ok := stats["uptime_s"].(float64); !ok {
		t.Error("/v1/stats has no uptime_s")
	}
	if _, ok := stats["admission"].(map[string]any); !ok {
		t.Error("/v1/stats has no admission block")
	}
	if up := metricValue(t, text, "ptaserve_uptime_seconds"); up <= 0 {
		t.Errorf("uptime %v, want > 0", up)
	}
}

// TestAdmissionRejectsWithoutConsumingSlot: an over-budget request 429s
// promptly with Retry-After and the cost verdict even while every in-flight
// slot is held — proof that admission runs before slot acquisition.
func TestAdmissionRejectsWithoutConsumingSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, AdmissionMaxCells: 10})
	s.inflight <- struct{}{} // hold the only evaluation slot

	raw, _ := json.Marshal(compressRequest{
		Series:    projWire(), // 7 rows × c=4 = 28 cells > 10
		Plan:      planWire{Strategy: "ptac", Budget: "c=4"},
		TimeoutMS: 30_000,
	})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("rejection took %v — it waited for a slot", elapsed)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if code := errorField(t, out, "code"); code != "admission_rejected" {
		t.Errorf("code = %v", code)
	}
	if cells := errorField(t, out, "estimated_cells"); cells != float64(28) {
		t.Errorf("estimated_cells = %v, want 28", cells)
	}
	if maxCells := errorField(t, out, "max_cells"); maxCells != float64(10) {
		t.Errorf("max_cells = %v, want 10", maxCells)
	}

	// The rejection shows up on /metrics and /v1/stats alike.
	text, _ := scrape(t, ts.URL)
	if got := metricValue(t, text, "ptaserve_admission_rejected_total"); got != 1 {
		t.Errorf("admission_rejected_total = %v, want 1", got)
	}
	_, stats := get(t, ts.URL+"/v1/stats")
	adm := stats["admission"].(map[string]any)
	if adm["rejected"].(float64) != 1 || adm["max_cells"].(float64) != 10 || adm["policy"] != AdmissionReject {
		t.Errorf("stats admission block: %v", adm)
	}

	// An under-budget request passes admission; free the slot so it can run.
	<-s.inflight
	raw, _ = json.Marshal(compressRequest{
		Series: projWire(),
		Plan:   planWire{Strategy: "ptac", Budget: "c=1"}, // infeasible, but only 7 cells
	})
	resp2, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusTooManyRequests {
		t.Error("under-budget request was admission-rejected")
	}
}

// TestAdmissionQueuePolicy: under the queue policy, over-budget requests
// serialize through the single oversized slot instead of failing.
func TestAdmissionQueuePolicy(t *testing.T) {
	_, ts := newTestServer(t, Config{AdmissionMaxCells: 10, AdmissionPolicy: AdmissionQueue})
	raw, _ := json.Marshal(compressRequest{
		Series: projWire(),
		Plan:   planWire{Strategy: "ptac", Budget: "c=4"},
	})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("queued request %d: status %d, want 200", i, resp.StatusCode)
		}
	}
	_, stats := get(t, ts.URL+"/v1/stats")
	adm := stats["admission"].(map[string]any)
	if adm["queued"].(float64) != 3 || adm["rejected"].(float64) != 0 {
		t.Errorf("admission counters: %v", adm)
	}
}

// TestCompressManyAdmissionSumsPlans: many-plan requests are priced as a
// whole, so plans that pass individually still reject in aggregate.
func TestCompressManyAdmissionSumsPlans(t *testing.T) {
	_, ts := newTestServer(t, Config{AdmissionMaxCells: 50})
	status, out := post(t, ts.URL+"/v1/compress/many", compressManyRequest{
		Series: projWire(),
		Plans: []planWire{ // 28 cells each: each under 50, together 56 over
			{Strategy: "ptac", Budget: "c=4"},
			{Strategy: "ptac", Budget: "c=4"},
		},
	})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d: %v", status, out)
	}
	if cells := errorField(t, out, "estimated_cells"); cells != float64(56) {
		t.Errorf("estimated_cells = %v, want 56", cells)
	}
}

// TestConfigValidationMessages pins the "negative means invalid, zero means
// default" contract in the error text itself.
func TestConfigValidationMessages(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"CacheEntries", Config{CacheEntries: -1}, "want >= 0 (0 = default 64)"},
		{"Timeout", Config{Timeout: -time.Second}, "want >= 0 (0 = default 30s)"},
		{"MaxBodyBytes", Config{MaxBodyBytes: -1}, "want >= 0 (0 = default 8 MiB)"},
		{"MaxInflight", Config{MaxInflight: -1}, "want >= 0 (0 = default 2×GOMAXPROCS)"},
		{"DrainTimeout", Config{DrainTimeout: -time.Second}, "want >= 0 (0 = default 10s)"},
		{"SpillMaxBytes", Config{SpillMaxBytes: -1}, "want >= 0 (0 = default 64 MiB)"},
		{"PeerTimeout", Config{PeerTimeout: -time.Second}, "want >= 0 (0 = default 5s)"},
		{"Peers", Config{Peers: []string{"not-a-url"}}, "want an absolute http(s) URL"},
		{"AdmissionMaxCells", Config{AdmissionMaxCells: -1}, "want >= 0 (0 = unlimited)"},
		{"AdmissionPolicy", Config{AdmissionPolicy: "drop"}, `want "reject" or "queue"`},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not explain %q", tc.name, err, tc.want)
		}
	}
}
