package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/pta"
)

// warmSend posts one compress request with an explicit series and returns
// the decoded result plus the raw response body, for byte-identity checks.
func warmSend(url string, series seriesWire, plan planWire) (resultWire, []byte, error) {
	var res resultWire
	raw, err := json.Marshal(compressRequest{Series: series, Plan: plan})
	if err != nil {
		return res, nil, err
	}
	resp, err := http.Post(url+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		return res, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return res, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return res, body, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return res, body, json.Unmarshal(body, &res)
}

// statNum digs a numeric field out of a nested /v1/stats body.
func statNum(t *testing.T, stats map[string]any, path ...string) float64 {
	t.Helper()
	cur := any(stats)
	for _, p := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			t.Fatalf("stats path %v: %v is not an object", path, cur)
		}
		cur = m[p]
	}
	f, ok := cur.(float64)
	if !ok {
		t.Fatalf("stats path %v: %v is not a number", path, cur)
	}
	return f
}

// pollStats spins until the stats body satisfies ok, for sequencing races
// without sleeps.
func pollStats(t *testing.T, url string, what string, ok func(map[string]any) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, stats := get(t, url+"/v1/stats")
		if ok(stats) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stats condition %q not reached", what)
}

// TestPeerWarmRestart is the fleet acceptance scenario: worker B boots with
// a wiped (fresh) spill directory and peers pointing at A. Every series A
// warmed answers on B as a cache hit with zero DP cells filled — the blob
// travels over GET /v1/matrix/{hash}, fully validated, byte-identical down
// to the adopted spill file — so a restarted node warms itself from its
// siblings instead of re-running the DP.
func TestPeerWarmRestart(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	plans := []struct {
		series seriesWire
		plan   planWire
	}{
		{projWire(), planWire{Strategy: "ptac", Budget: "c=4"}},
		{bigWire(9, 200), planWire{Strategy: "ptac", Budget: "c=16"}},
	}

	// answerBytes renders a result with the per-request fields (cache
	// disposition, this worker's own fill stats) cleared, leaving exactly
	// the answer: strategy, budget, C, error, rows.
	answerBytes := func(res resultWire) []byte {
		res.Cache = ""
		res.Stats = statsWire{}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	_, tsA := newTestServer(t, Config{SpillDir: dirA})
	warmAnswers := make([][]byte, len(plans))
	for i, p := range plans {
		if res, _, err := warmSend(tsA.URL, p.series, p.plan); err != nil || res.Cache != cacheMiss || res.Stats.Cells == 0 {
			t.Fatalf("cold fill %d on A: res=%+v err=%v", i, res, err)
		}
		res, _, err := warmSend(tsA.URL, p.series, p.plan)
		if err != nil || res.Cache != cacheHit {
			t.Fatalf("warm repeat %d on A: cache=%q err=%v", i, res.Cache, err)
		}
		warmAnswers[i] = answerBytes(res)
	}

	_, tsB := newTestServer(t, Config{SpillDir: dirB, Peers: []string{tsA.URL}})
	for i, p := range plans {
		res, _, err := warmSend(tsB.URL, p.series, p.plan)
		if err != nil {
			t.Fatalf("peer-warm %d on B: %v", i, err)
		}
		if res.Cache != cacheHit {
			t.Errorf("peer-warm %d on B: cache=%q, want hit", i, res.Cache)
		}
		if res.Stats.Cells != 0 {
			t.Errorf("peer-warm %d on B filled %d cells, want 0", i, res.Stats.Cells)
		}
		if !bytes.Equal(answerBytes(res), warmAnswers[i]) {
			t.Errorf("peer-warm %d on B: answer differs from A's warm answer", i)
		}
	}

	// The counters tell the same story on both sides: B did no DP work and
	// fetched every key; A served every fetch.
	_, statsB := get(t, tsB.URL+"/v1/stats")
	if cells := statNum(t, statsB, "dp_cells_filled"); cells != 0 {
		t.Errorf("B dp_cells_filled = %v, want 0", cells)
	}
	if hits := statNum(t, statsB, "peer", "fetch_hits"); hits != float64(len(plans)) {
		t.Errorf("B peer fetch_hits = %v, want %d", hits, len(plans))
	}
	if e := statNum(t, statsB, "peer", "fetch_errors"); e != 0 {
		t.Errorf("B peer fetch_errors = %v, want 0", e)
	}
	// Fetched blobs were written through B's own spill (adopt) and restored
	// lazily from it.
	if stores := statNum(t, statsB, "spill", "stores"); stores != float64(len(plans)) {
		t.Errorf("B spill stores = %v, want %d", stores, len(plans))
	}
	if loads := statNum(t, statsB, "spill", "loads"); loads != float64(len(plans)) {
		t.Errorf("B spill loads = %v, want %d", loads, len(plans))
	}
	_, statsA := get(t, tsA.URL+"/v1/stats")
	if hits := statNum(t, statsA, "peer", "serve_hits"); hits != float64(len(plans)) {
		t.Errorf("A peer serve_hits = %v, want %d", hits, len(plans))
	}

	// Spill files are content-addressed: B's adopted files carry the same
	// names and the same bytes as A's originals.
	filesA, filesB := spillFiles(t, dirA), spillFiles(t, dirB)
	if len(filesA) != len(plans) || len(filesB) != len(plans) {
		t.Fatalf("spill files: A=%d B=%d, want %d each", len(filesA), len(filesB), len(plans))
	}
	for i := range filesA {
		a, err := os.ReadFile(filesA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filesB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("adopted spill file %d differs from the origin blob", i)
		}
	}

	// A deeper budget on the peer-warmed (lazily restored) set resumes the
	// fill on B — the lazy rows materialize under the deeper reconstruction.
	res, _, err := warmSend(tsB.URL, projWire(), planWire{Strategy: "ptac", Budget: "c=5"})
	if err != nil || res.Cache != cacheHit || res.C != 5 {
		t.Errorf("deeper budget on B after peer warm: cache=%q C=%d err=%v", res.Cache, res.C, err)
	}
}

// TestPeerRaceToFillOneKey: two mutual peers race on the same cold key;
// the tier performs exactly one cold fill. The second worker's fetch lands
// on the owner's entry semaphore and waits for the in-flight fill instead
// of duplicating it.
func TestPeerRaceToFillOneKey(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sA, tsA := newTestServer(t, Config{SpillDir: dirA})
	_, tsB := newTestServer(t, Config{SpillDir: dirB, Peers: []string{tsA.URL}})
	if err := sA.SetPeers([]string{tsB.URL}); err != nil {
		t.Fatal(err)
	}

	// Big enough that the owner's fill is still in flight when the racer
	// arrives (~2s under -race), small enough to stay far from the 30s
	// request deadline.
	series := bigWire(42, 1500)
	plan := planWire{Strategy: "ptac", Budget: "c=32"}

	type outcome struct {
		res resultWire
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, _, err := warmSend(tsA.URL, series, plan)
		done <- outcome{res, err}
	}()
	// Release B only after A is past its own peer-fetch step (a clean miss
	// against cold B) and owns the fill — otherwise both workers can miss
	// simultaneously and legitimately fill twice.
	pollStats(t, tsA.URL, "A past peer fetch", func(stats map[string]any) bool {
		return statNum(t, stats, "cache", "entries") >= 1 &&
			statNum(t, stats, "peer", "fetch_misses") >= 1
	})
	resB, _, errB := warmSend(tsB.URL, series, plan)
	outA := <-done

	if outA.err != nil || errB != nil {
		t.Fatalf("raced sends: A err=%v, B err=%v", outA.err, errB)
	}
	if outA.res.Cache != cacheMiss || outA.res.Stats.Cells == 0 {
		t.Errorf("A (owner): cache=%q cells=%d, want the one cold fill", outA.res.Cache, outA.res.Stats.Cells)
	}
	if resB.Cache != cacheHit || resB.Stats.Cells != 0 {
		t.Errorf("B (racer): cache=%q cells=%d, want a peer-warm hit with zero fill", resB.Cache, resB.Stats.Cells)
	}
	if resB.C != outA.res.C || resB.Error != outA.res.Error {
		t.Errorf("raced answers diverge: A C=%d err=%v, B C=%d err=%v",
			outA.res.C, outA.res.Error, resB.C, resB.Error)
	}
	// Exactly one cold fill tier-wide: all DP cells live on A, none on B.
	_, statsA := get(t, tsA.URL+"/v1/stats")
	_, statsB := get(t, tsB.URL+"/v1/stats")
	if cells := statNum(t, statsA, "dp_cells_filled"); cells != float64(outA.res.Stats.Cells) {
		t.Errorf("A dp_cells_filled = %v, want %d (its own fill only)", cells, outA.res.Stats.Cells)
	}
	if cells := statNum(t, statsB, "dp_cells_filled"); cells != 0 {
		t.Errorf("B dp_cells_filled = %v, want 0", cells)
	}
	if hits := statNum(t, statsB, "peer", "fetch_hits"); hits != 1 {
		t.Errorf("B peer fetch_hits = %v, want 1", hits)
	}
}

// TestPeerMissFallsBackCold: a configured peer that has nothing (and one
// that is unreachable) degrade to a local cold fill — never an error.
func TestPeerMissFallsBackCold(t *testing.T) {
	t.Run("peer cold", func(t *testing.T) {
		_, tsA := newTestServer(t, Config{})
		_, tsB := newTestServer(t, Config{Peers: []string{tsA.URL}})
		res, _, err := warmSend(tsB.URL, projWire(), planWire{Strategy: "ptac", Budget: "c=4"})
		if err != nil || res.Cache != cacheMiss || res.Stats.Cells == 0 {
			t.Fatalf("res=%+v err=%v, want a cold fill", res, err)
		}
		_, stats := get(t, tsB.URL+"/v1/stats")
		if m := statNum(t, stats, "peer", "fetch_misses"); m != 1 {
			t.Errorf("peer fetch_misses = %v, want 1", m)
		}
		if h := statNum(t, stats, "peer", "fetch_hits"); h != 0 {
			t.Errorf("peer fetch_hits = %v, want 0", h)
		}
	})
	t.Run("peer unreachable", func(t *testing.T) {
		_, ts := newTestServer(t, Config{
			Peers:       []string{"http://127.0.0.1:1"},
			PeerTimeout: 200 * time.Millisecond,
		})
		res, _, err := warmSend(ts.URL, projWire(), planWire{Strategy: "ptac", Budget: "c=4"})
		if err != nil || res.Cache != cacheMiss || res.Stats.Cells == 0 {
			t.Fatalf("res=%+v err=%v, want a cold fill", res, err)
		}
		_, stats := get(t, ts.URL+"/v1/stats")
		if e := statNum(t, stats, "peer", "fetch_errors"); e < 1 {
			t.Errorf("peer fetch_errors = %v, want >= 1", e)
		}
	})
}

// TestMatrixEndpointAddresses pins the /v1/matrix contract: a resident key
// answers by content address with the exact spill encoding, everything else
// is a clean 404.
func TestMatrixEndpointAddresses(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{SpillDir: dir})
	spillSend(t, ts.URL, planWire{Strategy: "ptac", Budget: "c=4"})

	files := spillFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d spill files, want 1", len(files))
	}
	want, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var hash string
	s.cache.mu.Lock()
	for h := range s.cache.byHash {
		hash = h
	}
	s.cache.mu.Unlock()
	if hash == "" {
		t.Fatal("no resident cache entry after a fill")
	}

	resp, err := http.Get(ts.URL + "/v1/matrix/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix fetch status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Error("matrix blob differs from the spill file")
	}
	for _, bad := range []string{
		"0123456789abcdef0123456789abcdef", // well-formed, unknown
		"not-a-hash",
		"ABCDEF0123456789ABCDEF0123456789", // uppercase: not an address we mint
	} {
		resp, err := http.Get(ts.URL + "/v1/matrix/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/matrix/%s: status %d, want 404", bad, resp.StatusCode)
		}
	}
}

// TestSlabTruncationWhileMapped: a spill file truncated in place underneath
// a live mapping must surface as a clean WarmLostError on the first row
// touch — never a process-killing SIGBUS — and the serve layer's response
// is a cold rebuild.
func TestSlabTruncationWhileMapped(t *testing.T) {
	dir := t.TempDir()
	cs, err := newCacheStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	series, err := decodeSeries(bigWire(3, 600))
	if err != nil {
		t.Fatal(err)
	}
	budget, err := pta.ParseBudget("c=64")
	if err != nil {
		t.Fatal(err)
	}
	set, err := pta.NewMatrixSet(series, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := set.Compress(ctx, budget); err != nil {
		t.Fatal(err)
	}
	const key = "trunc-test"
	if !cs.store(key, set) {
		t.Fatal("store refused the warm set")
	}

	// Restore lazily (the rows stay behind the mapping), then truncate the
	// file so every row page is beyond EOF. n=600 keeps the header past the
	// 4 KiB boundary, so the whole row region faults rather than reading
	// zeros.
	lazy := cs.load(key, series, "ptac", pta.Options{})
	if lazy == nil {
		t.Fatal("lazy load failed on an intact file")
	}
	files := spillFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d spill files, want 1", len(files))
	}
	if err := os.Truncate(files[0], 4096); err != nil {
		t.Fatal(err)
	}

	_, err = lazy.Compress(ctx, budget)
	var lost *pta.WarmLostError
	if !errors.As(err, &lost) {
		t.Fatalf("compress over the truncated mapping: %v, want a WarmLostError", err)
	}
	if lost.Row < 1 || lost.Row > 64 {
		t.Errorf("WarmLostError.Row = %d, want a row in 1..64", lost.Row)
	}

	// discardCorrupt unmaps before unlinking; the file is gone and later
	// touches keep failing cleanly rather than resurrecting the mapping.
	cs.discardCorrupt(key)
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Errorf("%d spill files after discardCorrupt, want 0", len(files))
	}
	if _, err := lazy.Compress(ctx, budget); !errors.As(err, &lost) {
		t.Errorf("compress after discard: %v, want a WarmLostError", err)
	}
	if got := cs.errors.Load(); got < 1 {
		t.Errorf("spill errors = %d, want >= 1", got)
	}
}

// TestWarmLostRebuildsColdOverHTTP: end-to-end truncation recovery — a
// lazily restored set loses rows mid-life and the request still answers
// correctly via the retry-cold path.
func TestWarmLostRebuildsColdOverHTTP(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{SpillDir: dir})
	spillSend(t, ts1.URL, planWire{Strategy: "ptac", Budget: "c=6"})
	want := spillSend(t, ts1.URL, planWire{Strategy: "ptac", Budget: "c=6"})
	ts1.Close()

	_, ts2 := newTestServer(t, Config{SpillDir: dir})
	// Shallow budget first: rows 1..3 materialize, 4..6 stay lazy.
	if res := spillSend(t, ts2.URL, planWire{Strategy: "ptac", Budget: "c=3"}); res.Cache != cacheHit || res.Stats.Cells != 0 {
		t.Fatalf("shallow budget after restart: cache=%q cells=%d", res.Cache, res.Stats.Cells)
	}
	files := spillFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d spill files, want 1", len(files))
	}
	// Cut the row region out from under the mapping (the header keeps its
	// size, so only row touches fail).
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], int64(len(data))-3*int64(spillRowSize(7))); err != nil {
		t.Fatal(err)
	}

	// The deeper budget touches a lost row, the entry is discarded and the
	// request rebuilds cold — correct answer, no error surfaced.
	res := spillSend(t, ts2.URL, planWire{Strategy: "ptac", Budget: "c=6"})
	if res.Cache != cacheMiss || res.Stats.Cells == 0 {
		t.Errorf("after truncation: cache=%q cells=%d, want a cold rebuild", res.Cache, res.Stats.Cells)
	}
	if res.C != want.C || res.Error != want.Error {
		t.Errorf("rebuilt answer C=%d err=%v, want C=%d err=%v", res.C, res.Error, want.C, want.Error)
	}
	_, stats := get(t, ts2.URL+"/v1/stats")
	if e := statNum(t, stats, "spill", "errors"); e < 1 {
		t.Errorf("spill errors = %v, want >= 1", e)
	}
	// The cold rebuild re-spilled a fresh file under the same address.
	if files := spillFiles(t, dir); len(files) != 1 {
		t.Errorf("%d spill files after rebuild, want 1", len(files))
	}
}

// TestUnmapBeforeDelete: removing a corrupt spill file while a restored set
// still holds its mapping must invalidate the view first, so the held set
// fails cleanly instead of touching freed pages.
func TestUnmapBeforeDelete(t *testing.T) {
	dir := t.TempDir()
	cs, err := newCacheStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	series, err := decodeSeries(projWire())
	if err != nil {
		t.Fatal(err)
	}
	budget, err := pta.ParseBudget("c=4")
	if err != nil {
		t.Fatal(err)
	}
	set, err := pta.NewMatrixSet(series, "ptac", pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := set.Compress(ctx, budget); err != nil {
		t.Fatal(err)
	}
	const key = "unmap-test"
	if !cs.store(key, set) {
		t.Fatal("store refused the warm set")
	}

	held := cs.load(key, series, "ptac", pta.Options{})
	if held == nil {
		t.Fatal("lazy load failed on an intact file")
	}
	cs.discardCorrupt(key)
	if files := spillFiles(t, dir); len(files) != 0 {
		t.Fatalf("%d spill files after discardCorrupt, want 0", len(files))
	}
	_, err = held.Compress(ctx, budget)
	var lost *pta.WarmLostError
	if !errors.As(err, &lost) {
		t.Fatalf("held set after unlink: %v, want a WarmLostError", err)
	}
}
