package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
)

// slabView is the lazy row source behind a spill-restored MatrixSet: the
// whole file is mmap'd read-only (falling back to pread where mmap is
// unavailable) and each split row is copied out, CRC-checked and decoded on
// the first reconstruction that touches it. A huge warm set therefore costs
// page faults proportional to the rows budgets actually walk, not bytes on
// disk. The solver retains every materialized row, so each row is read at
// most once per restored set.
//
// Lifecycle: a view stays valid as long as its inode does — a deepened
// re-spill renames a new file over the path, the old mapping keeps serving
// the old (still-correct) rows, and the GC cleanup unmaps it when the set
// is collected. invalidate is the explicit early exit used by the
// unmap-before-delete path: after it, SplitRow fails cleanly and the
// mapping is gone, so unlinking the file can never strand a reader on
// freed pages. A file truncated in place underneath the mapping (outside
// the store's own discipline) raises SIGBUS on touch; SplitRow converts
// that into an error via debug.SetPanicOnFault rather than crashing the
// process.
type slabView struct {
	mu      sync.Mutex
	data    []byte   // mmap'd whole file; nil on the pread fallback
	f       *os.File // pread fallback handle; nil when mapped
	clean   runtime.Cleanup
	rowsOff int
	n       int
	filled  int
	gone    bool
}

// newSlabView wraps an open, header-validated spill file. It takes
// ownership of f: mapped views close the descriptor immediately (the
// mapping survives it), fallback views keep it for ReadAt and close it on
// invalidate or GC.
func newSlabView(f *os.File, size, rowsOff, n, filled int) *slabView {
	v := &slabView{rowsOff: rowsOff, n: n, filled: filled}
	if data, ok := mapSpill(f, size); ok {
		v.data = data
		f.Close()
		v.clean = runtime.AddCleanup(v, unmapSpill, data)
	} else {
		v.f = f
		v.clean = runtime.AddCleanup(v, func(f *os.File) { f.Close() }, f)
	}
	return v
}

// SplitRow implements pta.SplitRowSource over the mapped row region.
func (v *slabView) SplitRow(k int) ([]int32, error) {
	rowSize := spillRowSize(v.n)
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.gone {
		return nil, fmt.Errorf("spill: view invalidated (file removed)")
	}
	if k < 1 || k > v.filled {
		return nil, fmt.Errorf("spill: row %d outside 1..%d", k, v.filled)
	}
	off := v.rowsOff + (k-1)*rowSize
	buf := make([]byte, rowSize)
	if v.data != nil {
		if !safeCopy(buf, v.data[off:off+rowSize]) {
			return nil, fmt.Errorf("spill: mapping faulted reading row %d (file truncated?)", k)
		}
	} else if _, err := v.f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("spill: reading row %d: %w", k, err)
	}
	body := buf[:rowSize-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[rowSize-4:]) {
		return nil, fmt.Errorf("spill: row %d CRC mismatch", k)
	}
	row := make([]int32, v.n+1)
	for i := range row {
		row[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return row, nil
}

// invalidate tears the view down now: stop the GC cleanup, unmap/close, and
// fail every later SplitRow. Idempotent; serialized with in-flight reads by
// the view mutex, so no reader ever touches the mapping after it is gone.
func (v *slabView) invalidate() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.gone {
		return
	}
	v.gone = true
	v.clean.Stop()
	if v.data != nil {
		unmapSpill(v.data)
		v.data = nil
	}
	if v.f != nil {
		v.f.Close()
		v.f = nil
	}
}

// safeCopy copies out of an mmap'd region, converting the SIGBUS a
// truncated-in-place mapping raises into a clean false: SetPanicOnFault
// turns the fault into a recoverable panic on this goroutine only.
func safeCopy(dst, src []byte) (ok bool) {
	old := debug.SetPanicOnFault(true)
	defer debug.SetPanicOnFault(old)
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	copy(dst, src)
	return true
}
