package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// spillSend posts one compress request and returns the decoded result.
func spillSend(t *testing.T, url string, plan planWire) resultWire {
	t.Helper()
	raw, _ := json.Marshal(compressRequest{Series: projWire(), Plan: plan})
	resp, err := http.Post(url+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	var res resultWire
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// spillFiles lists the .ptam files in dir.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"+spillSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestSpillSurvivesRestart is the kill-9 acceptance scenario: a second
// Server over the same spill directory — a restarted worker; nothing is
// flushed at shutdown because spilling happens at fill time — answers a
// previously-warm request as a cache hit with zero DP cells filled.
func TestSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	plan := planWire{Strategy: "ptac", Budget: "c=4"}

	_, ts1 := newTestServer(t, Config{SpillDir: dir})
	if res := spillSend(t, ts1.URL, plan); res.Cache != cacheMiss || res.Stats.Cells == 0 {
		t.Fatalf("cold request: cache=%q cells=%d, want miss with fill work", res.Cache, res.Stats.Cells)
	}
	if files := spillFiles(t, dir); len(files) != 1 {
		t.Fatalf("%d spill files after a warm fill, want 1", len(files))
	}
	ts1.Close() // the worker dies; only the spill directory survives

	_, ts2 := newTestServer(t, Config{SpillDir: dir})
	res := spillSend(t, ts2.URL, plan)
	if res.Cache != cacheHit {
		t.Errorf("restarted worker: cache=%q, want hit from spill", res.Cache)
	}
	if res.Stats.Cells != 0 {
		t.Errorf("restarted worker filled %d cells, want 0 (no refill)", res.Stats.Cells)
	}
	if res.C != 4 {
		t.Errorf("restored answer C=%d, want 4", res.C)
	}
	// A deeper budget on the restored matrices resumes the fill and spills
	// the deeper state.
	if res := spillSend(t, ts2.URL, planWire{Strategy: "ptac", Budget: "c=5"}); res.Cache != cacheHit || res.C != 5 {
		t.Errorf("deeper budget after restore: cache=%q C=%d", res.Cache, res.C)
	}
	_, stats := get(t, ts2.URL+"/v1/stats")
	spill := stats["spill"].(map[string]any)
	if spill["loads"].(float64) != 1 {
		t.Errorf("spill loads = %v, want 1", spill["loads"])
	}
	if spill["stores"].(float64) < 1 {
		t.Errorf("spill stores = %v, want ≥ 1 (deeper fill re-spilled)", spill["stores"])
	}
	if spill["errors"].(float64) != 0 {
		t.Errorf("spill errors = %v, want 0", spill["errors"])
	}
}

// TestSpillCorruptionFallsBackCold: flipped payload bytes, a stale format
// version and truncation all degrade to a cold build — never an error, and
// the bad file is removed.
func TestSpillCorruptionFallsBackCold(t *testing.T) {
	plan := planWire{Strategy: "ptac", Budget: "c=4"}
	corrupt := func(name string, mutate func([]byte) []byte) {
		dir := t.TempDir()
		_, ts1 := newTestServer(t, Config{SpillDir: dir})
		spillSend(t, ts1.URL, plan)
		ts1.Close()
		files := spillFiles(t, dir)
		if len(files) != 1 {
			t.Fatalf("%s: %d spill files, want 1", name, len(files))
		}
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(files[0], mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}

		_, ts2 := newTestServer(t, Config{SpillDir: dir})
		res := spillSend(t, ts2.URL, plan)
		if res.Cache != cacheMiss || res.Stats.Cells == 0 {
			t.Errorf("%s: cache=%q cells=%d, want a cold rebuild", name, res.Cache, res.Stats.Cells)
		}
		_, stats := get(t, ts2.URL+"/v1/stats")
		spill := stats["spill"].(map[string]any)
		if spill["errors"].(float64) < 1 {
			t.Errorf("%s: spill errors = %v, want ≥ 1", name, spill["errors"])
		}
		if spill["loads"].(float64) != 0 {
			t.Errorf("%s: spill loads = %v, want 0", name, spill["loads"])
		}
		// The rebuild re-spilled over the removed bad file.
		if files := spillFiles(t, dir); len(files) != 1 {
			t.Errorf("%s: %d spill files after rebuild, want 1", name, len(files))
		}
	}

	corrupt("flipped payload byte", func(b []byte) []byte {
		b[len(b)/2] ^= 0xFF
		return b
	})
	corrupt("stale version", func(b []byte) []byte {
		// Patch the version field and re-seal the header CRC so only the
		// version check can reject it.
		hl := binary.LittleEndian.Uint32(b[8:])
		binary.LittleEndian.PutUint32(b[4:], spillVersion+7)
		binary.LittleEndian.PutUint32(b[hl-4:], crc32.ChecksumIEEE(b[:hl-4]))
		return b
	})
	corrupt("truncated", func(b []byte) []byte {
		return b[:len(b)/3]
	})
	corrupt("empty", func(b []byte) []byte {
		return nil
	})
}

// TestSpillDecodeRejections covers the decoder directly: every framing
// violation is an error, and the encoder round-trips.
func TestSpillDecodeRejections(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{SpillDir: dir})
	spillSend(t, ts.URL, planWire{Strategy: "ptac", Budget: "c=4"})
	files := spillFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d spill files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	// Recover the key: it is length-prefixed right after the preamble
	// (magic, version, header length).
	keyLen := binary.LittleEndian.Uint32(data[spillPreamble:])
	key := string(data[spillPreamble+4 : spillPreamble+4+int(keyLen)])

	snap, err := decodeSnapshot(data, key)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if snap.Strategy != "ptac" || snap.N != 7 || snap.Filled < 4 {
		t.Errorf("decoded snapshot: strategy=%q n=%d filled=%d", snap.Strategy, snap.N, snap.Filled)
	}
	reencoded := encodeSnapshot(key, snap)
	if !bytes.Equal(reencoded, data) {
		t.Error("encode(decode(file)) != file")
	}

	if _, err := decodeSnapshot(data, "some-other-key"); err == nil {
		t.Error("decoder accepted a key mismatch")
	}
	if _, err := decodeSnapshot(data[:16], key); err == nil {
		t.Error("decoder accepted a truncated file")
	}
	if _, err := decodeSnapshot(append(append([]byte(nil), data...), 0), key); err == nil {
		t.Error("decoder accepted trailing bytes")
	}
	bad := append([]byte(nil), data...)
	copy(bad, "XXXX")
	hl := binary.LittleEndian.Uint32(bad[8:])
	binary.LittleEndian.PutUint32(bad[hl-4:], crc32.ChecksumIEEE(bad[:hl-4]))
	if _, err := decodeSnapshot(bad, key); err == nil {
		t.Error("decoder accepted a bad magic")
	}
	// A flipped row byte with an intact header is caught per-row.
	rowbad := append([]byte(nil), data...)
	rowbad[len(rowbad)-6] ^= 0xFF
	if _, err := decodeSnapshot(rowbad, key); err == nil {
		t.Error("decoder accepted a corrupt split row")
	}
}
