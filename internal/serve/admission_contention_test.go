package serve

// Error-path tests for admission under contention: the exact Retry-After
// contract of a 429, and the queue policy's one-at-a-time FIFO behavior
// when several over-budget requests pile up on the oversized slot.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryAfterHeaderContents pins the full 429 contract: the exact
// Retry-After value (the documented one second), the JSON content type, and
// a body whose fields agree with the header-level verdict.
func TestRetryAfterHeaderContents(t *testing.T) {
	_, ts := newTestServer(t, Config{AdmissionMaxCells: 10})
	raw, _ := json.Marshal(compressRequest{
		Series: projWire(), // 7 rows × c=4 = 28 cells > 10
		Plan:   planWire{Strategy: "ptac", Budget: "c=4"},
	})
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q (delay-seconds form)", ra, "1")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if status := errorField(t, out, "status"); status != float64(http.StatusTooManyRequests) {
		t.Errorf("body status = %v, want 429", status)
	}
	if msg := errorField(t, out, "message"); msg != "estimated cost 28 cells exceeds the admission budget 10" {
		t.Errorf("message = %q", msg)
	}

	// A non-admission failure must NOT carry Retry-After: the header means
	// "try the same request later", which is wrong advice for a budget that
	// can never fit.
	raw, _ = json.Marshal(compressRequest{
		Series: projWire(),
		Plan:   planWire{Strategy: "ptac", Budget: "c=1"}, // 7 cells, passes admission; infeasible
	})
	resp2, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible budget: status %d, want 422", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "" {
		t.Errorf("422 carries Retry-After %q; only admission 429s may", ra)
	}
}

// bigWire builds an n-row single-group series with distinct values per
// seed, so each request fingerprints to its own cache key and pays a real
// fill — keeping queued evaluations long enough to observe their order.
func bigWire(seed int64, n int) seriesWire {
	rng := rand.New(rand.NewSource(seed))
	w := seriesWire{
		GroupAttrs: []attrWire{{Name: "g", Kind: "string"}},
		AggNames:   []string{"v"},
	}
	for i := 0; i < n; i++ {
		w.Rows = append(w.Rows, rowWire{
			Group: []any{"only"},
			Aggs:  []float64{rng.NormFloat64()},
			Start: int64(i),
			End:   int64(i),
		})
	}
	return w
}

// TestAdmissionQueueOrderingUnderContention: with the oversized slot held,
// several over-budget requests queue instead of rejecting; none may
// complete while the slot is held; on release they run one at a time in
// arrival order, each to a 200.
func TestAdmissionQueueOrderingUnderContention(t *testing.T) {
	const waiters = 3
	const n = 300
	s, ts := newTestServer(t, Config{AdmissionMaxCells: 1000, AdmissionPolicy: AdmissionQueue})
	s.oversized <- struct{}{} // hold the single oversized slot

	var (
		mu        sync.Mutex
		finished  []int
		completed atomic.Int64
		wg        sync.WaitGroup
		errs      [waiters]error
		statuses  [waiters]int
	)
	for i := 0; i < waiters; i++ {
		raw, _ := json.Marshal(compressRequest{
			Series:    bigWire(int64(i), n),
			Plan:      planWire{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", n/2)},
			TimeoutMS: 60_000,
		})
		wg.Add(1)
		go func(i int, raw []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			mu.Lock()
			finished = append(finished, i)
			mu.Unlock()
			completed.Add(1)
		}(i, raw)

		// Don't launch the next request until this one is provably parked
		// on the slot, so arrival order is deterministic.
		deadline := time.Now().Add(10 * time.Second)
		for s.metrics.admissionQueued.Value() != uint64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("request %d never queued (counter at %d)", i, s.metrics.admissionQueued.Value())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The slot is still held: nobody may have finished.
	time.Sleep(50 * time.Millisecond)
	if got := completed.Load(); got != 0 {
		t.Fatalf("%d queued requests completed while the oversized slot was held", got)
	}
	if got := s.metrics.admissionRejected.Value(); got != 0 {
		t.Fatalf("queue policy rejected %d requests", got)
	}

	<-s.oversized // release: the queue drains one at a time
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("queued request %d: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("queued request %d: status %d, want 200", i, statuses[i])
		}
	}
	mu.Lock()
	order := append([]int(nil), finished...)
	mu.Unlock()
	for i, id := range order {
		if id != i {
			t.Fatalf("completion order %v, want FIFO arrival order [0 1 2]", order)
		}
	}
}

// TestAdmissionQueueHonorsDeadline: a queued request gives up at its own
// deadline with 504 instead of waiting behind the slot unboundedly.
func TestAdmissionQueueHonorsDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{AdmissionMaxCells: 10, AdmissionPolicy: AdmissionQueue})
	s.oversized <- struct{}{}
	defer func() { <-s.oversized }()

	raw, _ := json.Marshal(compressRequest{
		Series:    projWire(),
		Plan:      planWire{Strategy: "ptac", Budget: "c=4"},
		TimeoutMS: 80,
	})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: queued request waited %v", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		t.Fatalf("status %d (%v), want 504", resp.StatusCode, out)
	}
}
