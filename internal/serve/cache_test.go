package serve

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/pta"
)

// cacheTestSeries builds a small single-group series for direct cache tests.
func cacheTestSeries(t *testing.T) *pta.Series {
	t.Helper()
	seq, err := dataset.Counter(1, 64, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestEvictionRacingInflightFill: an entry evicted while its fill is still
// running must complete its request correctly without resurrecting itself
// into the LRU or corrupting the counters. The sequence: request A misses
// and starts a slow build; key B displaces A; A's build finishes and its
// budget still answers (the detached entry is self-contained); a later
// request for A is a fresh miss on a fresh entry. Run under -race in CI.
func TestEvictionRacingInflightFill(t *testing.T) {
	series := cacheTestSeries(t)
	c := newMatrixCache(1)
	keyA, keyB := "series-A", "series-B"

	entryA, hit := c.acquire(keyA)
	if hit {
		t.Fatal("fresh cache reported a hit")
	}

	buildStarted := make(chan struct{})
	buildRelease := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := entryA.compress(context.Background(), c,
			func() (*pta.MatrixSet, error) {
				close(buildStarted)
				<-buildRelease // hold the fill mid-build while B evicts us
				return pta.NewMatrixSet(series, "ptac", pta.Options{})
			},
			func(set *pta.MatrixSet) (*pta.Result, error) {
				return set.Compress(context.Background(), pta.Size(series.Len()/4))
			})
		done <- err
	}()

	<-buildStarted
	if _, hit := c.acquire(keyB); hit {
		t.Fatal("keyB reported a hit")
	}
	// Capacity 1: B displaced A while A's build holds the entry semaphore.
	close(buildRelease)
	if err := <-done; err != nil {
		t.Fatalf("in-flight fill failed after eviction: %v", err)
	}

	st := c.stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (the late fill must not resurrect A)", st.Entries)
	}
	if st.Misses != 2 || st.Evictions != 1 || st.Hits != 0 {
		t.Errorf("counters hits=%d misses=%d evictions=%d, want 0/2/1", st.Hits, st.Misses, st.Evictions)
	}
	if _, hit := c.acquire(keyB); !hit {
		t.Error("keyB fell out of the cache")
	}

	// A is gone: re-acquiring is a miss that yields a fresh entry, not the
	// evicted one (which still holds its own warm set, harmlessly).
	entryA2, hit := c.acquire(keyA)
	if hit {
		t.Error("evicted key reported a hit")
	}
	if entryA2 == entryA {
		t.Error("re-acquired entry is the evicted one")
	}

	// discard on the long-gone entry must not remove the fresh one.
	c.discard(entryA)
	if _, hit := c.acquire(keyA); !hit {
		t.Error("discard of the stale entry removed the fresh entry")
	}
}
