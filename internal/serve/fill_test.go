package serve

import (
	"strings"
	"testing"
)

// TestFillAlgoPlans: pinned fill algorithms return the same reduction as
// the default, key separate cache entries per algorithm, and unknown names
// are a 400.
func TestFillAlgoPlans(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	defer ts.Close()

	want := map[string]any{}
	for i, algo := range []string{"", "auto", "pruned", "dc", "smawk", "online"} {
		status, body := post(t, ts.URL+"/v1/compress", compressRequest{
			Series: projWire(),
			Plan:   planWire{Strategy: "ptac", Budget: "c=4", FillAlgo: algo},
		})
		if status != 200 {
			t.Fatalf("fill_algo %q: status %d: %v", algo, status, body)
		}
		if i == 0 {
			want = body
			continue
		}
		if body["c"] != want["c"] || body["error"] != want["error"] {
			t.Fatalf("fill_algo %q: c=%v err=%v, want c=%v err=%v",
				algo, body["c"], body["error"], want["c"], want["error"])
		}
	}

	// "" and "auto" share the default class; each pinned algorithm owns a
	// class, so the sequence above built 1 + 4 distinct cache entries.
	if st := s.cache.stats(); st.Entries != 5 {
		t.Fatalf("cache entries = %d, want 5 (default + four pinned classes)", st.Entries)
	}

	status, body := post(t, ts.URL+"/v1/compress", compressRequest{
		Series: projWire(),
		Plan:   planWire{Strategy: "ptac", Budget: "c=4", FillAlgo: "bogus"},
	})
	if status != 400 {
		t.Fatalf("unknown fill_algo: status %d, want 400 (%v)", status, body)
	}
}

// TestFillAlgoCacheHit: a repeated pinned-algo budget hits the per-algo
// entry instead of rebuilding it.
func TestFillAlgoCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	defer ts.Close()
	req := compressRequest{
		Series: projWire(),
		Plan:   planWire{Strategy: "ptae", Budget: "eps=0.1", FillAlgo: "dc"},
	}
	if status, body := post(t, ts.URL+"/v1/compress", req); status != 200 || body["cache"] != "miss" {
		t.Fatalf("first pinned request: status %d cache %v", status, body["cache"])
	}
	if status, body := post(t, ts.URL+"/v1/compress", req); status != 200 || body["cache"] != "hit" {
		t.Fatalf("second pinned request: status %d cache %v", status, body["cache"])
	}
	if st := s.cache.stats(); st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}
}

// TestFillMetrics: answered exact-DP budgets count under the resolved
// row-fill algorithm (ptafill_requests_total), cold builds observe the
// certified monotone coverage, and /v1/stats carries the matching fill
// block. The 7-row proj series resolves FillAuto to the pruned scan.
func TestFillMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	for i := 0; i < 2; i++ {
		status, body := post(t, ts.URL+"/v1/compress", compressRequest{
			Series: projWire(),
			Plan:   planWire{Strategy: "ptac", Budget: "c=4"},
		})
		if status != 200 {
			t.Fatalf("request %d: status %d: %v", i, status, body)
		}
	}

	text, _ := scrape(t, ts.URL)
	if got := metricValue(t, text, `ptafill_requests_total{algo="pruned"}`); got != 2 {
		t.Errorf(`ptafill_requests_total{algo="pruned"} = %v, want 2`, got)
	}
	if !strings.Contains(text, "ptafill_monotone_coverage_bucket") {
		t.Error("exposition is missing ptafill_monotone_coverage buckets")
	}

	_, stats := get(t, ts.URL+"/v1/stats")
	fill, ok := stats["fill"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats has no fill block: %v", stats)
	}
	reqs := fill["requests"].(map[string]any)
	if reqs["pruned"].(float64) != 2 {
		t.Errorf("stats fill requests = %v, want pruned: 2", reqs)
	}
	if fill["coverage_observed"].(float64) != 1 {
		t.Errorf("coverage_observed = %v, want 1 (one cold build)", fill["coverage_observed"])
	}
}

// TestStrategiesExposeFillAlgos: /v1/strategies lists the fill algorithms
// (one global list — they apply to every matrix-cacheable strategy).
func TestStrategiesExposeFillAlgos(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	status, body := get(t, ts.URL+"/v1/strategies")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	algos, ok := body["fill_algos"].([]any)
	if !ok || len(algos) != 5 {
		t.Fatalf("fill_algos = %v", body["fill_algos"])
	}
	strategies := body["strategies"].([]any)
	sawDP := false
	for _, raw := range strategies {
		entry := raw.(map[string]any)
		_, cacheable := entry["matrix_cache_class"]
		sawDP = sawDP || cacheable
	}
	if !sawDP {
		t.Fatal("no matrix-cacheable strategy listed")
	}
}
