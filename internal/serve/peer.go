package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/pta"
)

// peerTier is the fleet-shared warm cache: on a local miss (memory and
// spill both cold) the server asks its peers for the content-addressed
// spill blob over GET /v1/matrix/{hash} before paying the DP fill. Peers
// are tried in rendezvous (highest-random-weight) order per hash, so every
// worker in a fleet agrees on which peer most likely filled a given key
// without any coordination or shared ring state. Fetched blobs are fully
// validated (key equality, header CRC, every row CRC) before use — a
// malfunctioning peer degrades to a cold fill, never to wrong bytes.
//
// The tier is always constructed (counters and /v1/stats shape stay stable)
// and does nothing until peers are configured; SetPeers swaps the list at
// runtime, which disttest uses to wire a cluster after boot.
type peerTier struct {
	client  *http.Client
	timeout time.Duration
	maxBlob int64

	mu    sync.RWMutex
	peers []string

	fetchHits, fetchMisses, fetchErrors, fetchBytes atomic.Int64
	serveHits, serveMisses, serveBytes              atomic.Int64
}

func newPeerTier(timeout time.Duration, maxBlob int64) *peerTier {
	return &peerTier{
		client:  &http.Client{},
		timeout: timeout,
		maxBlob: maxBlob,
	}
}

// validatePeers rejects anything that is not an absolute http(s) URL; a
// typo'd peer should fail at config time, not as a per-key fetch error.
func validatePeers(urls []string) error {
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("serve: peer %q, want an absolute http(s) URL", raw)
		}
	}
	return nil
}

func (p *peerTier) set(urls []string) {
	p.mu.Lock()
	p.peers = append([]string(nil), urls...)
	p.mu.Unlock()
}

func (p *peerTier) active() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.peers) > 0
}

func (p *peerTier) count() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.peers)
}

// order returns the peers ranked by rendezvous weight for hash: every
// worker hashing (peer, key-hash) the same way ranks the same peer first,
// so the fleet converges on one owner per key without a shared ring
// (internal/dist keeps its own ring on the coordinator; workers stay
// coordination-free).
func (p *peerTier) order(hash string) []string {
	p.mu.RLock()
	peers := p.peers
	p.mu.RUnlock()
	if len(peers) <= 1 {
		return peers
	}
	type ranked struct {
		peer   string
		weight uint64
	}
	rs := make([]ranked, len(peers))
	for i, peer := range peers {
		sum := sha256.Sum256([]byte(peer + "#" + hash))
		rs[i] = ranked{peer, binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].weight > rs[j].weight })
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.peer
	}
	return out
}

// fetch asks each peer in rendezvous order for the blob of (hash, key) and
// returns the first fully validated response, decoded. A 404 is a clean
// miss; transport errors and invalid blobs count as fetch errors and the
// next peer is tried. nil means no peer had it.
func (p *peerTier) fetch(ctx context.Context, hash, key string) ([]byte, *pta.MatrixSnapshot) {
	for _, peer := range p.order(hash) {
		data, snap := p.fetchOne(ctx, peer, hash, key)
		if snap != nil {
			p.fetchHits.Add(1)
			p.fetchBytes.Add(int64(len(data)))
			return data, snap
		}
		if ctx.Err() != nil {
			break
		}
	}
	p.fetchMisses.Add(1)
	return nil, nil
}

func (p *peerTier) fetchOne(ctx context.Context, peer, hash, key string) ([]byte, *pta.MatrixSnapshot) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/matrix/"+hash, nil)
	if err != nil {
		p.fetchErrors.Add(1)
		return nil, nil
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.fetchErrors.Add(1)
		return nil, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		p.fetchErrors.Add(1)
		return nil, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBlob+1))
	if err != nil || int64(len(data)) > p.maxBlob {
		p.fetchErrors.Add(1)
		return nil, nil
	}
	snap, err := decodeSnapshot(data, key)
	if err != nil {
		p.fetchErrors.Add(1)
		return nil, nil
	}
	return data, snap
}

// peerStats is the /v1/stats peer block (zero-valued when no peers are
// configured, so the shape is stable for dashboards).
type peerStats struct {
	Peers       int   `json:"peers"`
	FetchHits   int64 `json:"fetch_hits"`
	FetchMisses int64 `json:"fetch_misses"`
	FetchErrors int64 `json:"fetch_errors"`
	FetchBytes  int64 `json:"fetch_bytes"`
	ServeHits   int64 `json:"serve_hits"`
	ServeMisses int64 `json:"serve_misses"`
	ServeBytes  int64 `json:"serve_bytes"`
}

func (p *peerTier) stats() peerStats {
	return peerStats{
		Peers:       p.count(),
		FetchHits:   p.fetchHits.Load(),
		FetchMisses: p.fetchMisses.Load(),
		FetchErrors: p.fetchErrors.Load(),
		FetchBytes:  p.fetchBytes.Load(),
		ServeHits:   p.serveHits.Load(),
		ServeMisses: p.serveMisses.Load(),
		ServeBytes:  p.serveBytes.Load(),
	}
}
