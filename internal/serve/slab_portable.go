//go:build !unix

package serve

import "os"

// mapSpill always declines off unix; slabView serves rows via pread.
func mapSpill(*os.File, int) ([]byte, bool) { return nil, false }

func unmapSpill([]byte) {}
