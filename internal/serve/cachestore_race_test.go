package serve

// Concurrency tests for the spill tier (run these under -race): concurrent
// misses on one key must coalesce into exactly one matrix fill, a restarted
// worker's concurrent first requests must race the spill reload safely with
// exactly one load, and the .ptam file must stay valid throughout.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"testing"
)

// trySend posts one compress request, returning an error instead of
// failing, so racing goroutines can use it (t.Fatal is main-goroutine
// only).
func trySend(url string, plan planWire) (resultWire, error) {
	var res resultWire
	raw, err := json.Marshal(compressRequest{Series: projWire(), Plan: plan})
	if err != nil {
		return res, err
	}
	resp, err := http.Post(url+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return res, fmt.Errorf("status %d: %v", resp.StatusCode, out)
	}
	return res, json.NewDecoder(resp.Body).Decode(&res)
}

// raceSend fires n concurrent identical requests and returns the results.
func raceSend(t *testing.T, url string, plan planWire, n int) []resultWire {
	t.Helper()
	results := make([]resultWire, n)
	errs := make([]error, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait() // maximize overlap: all goroutines release together
			results[i], errs[i] = trySend(url, plan)
		}(i)
	}
	start.Done()
	done.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("raced request: %v", err)
		}
	}
	return results
}

// TestColdFillRace: G goroutines miss the same cold key together; the entry
// semaphore must coalesce them into one fill — one cache miss, G−1 hits,
// and total DP cell work equal to a single serial fill.
func TestColdFillRace(t *testing.T) {
	const g = 8
	plan := planWire{Strategy: "ptac", Budget: "c=4"}

	// Serial reference: the fill cost of this plan on a fresh server.
	_, ref := newTestServer(t, Config{})
	want := spillSend(t, ref.URL, plan)

	s, ts := newTestServer(t, Config{SpillDir: t.TempDir()})
	results := raceSend(t, ts.URL, plan, g)

	var misses int64
	for _, res := range results {
		if res.Cache == cacheMiss {
			misses++
		}
		// Cells is the set's cumulative fill: had any request refilled, the
		// later readings would exceed the single-fill cost.
		if res.Stats.Cells != want.Stats.Cells {
			t.Fatalf("raced request saw %d cumulative cells, want %d (exactly one fill)",
				res.Stats.Cells, want.Stats.Cells)
		}
		if res.C != want.C || res.Error != want.Error {
			t.Fatalf("raced result (C=%d err=%v) differs from serial (C=%d err=%v)",
				res.C, res.Error, want.C, want.Error)
		}
	}
	if misses != 1 {
		t.Fatalf("%d requests reported a cache miss, want exactly 1 (one fill)", misses)
	}
	if got := s.metrics.fillSeconds.Count(); got != 1 {
		t.Fatalf("fill latency histogram observed %d fills, want exactly 1", got)
	}
	if got := s.cache.misses.Load(); got != 1 {
		t.Fatalf("cache recorded %d misses, want 1", got)
	}
	if got := s.cache.hits.Load(); got != g-1 {
		t.Fatalf("cache recorded %d hits, want %d", got, g-1)
	}
	if st := s.store.stats(); st.Stores != 1 || st.Errors != 0 {
		t.Fatalf("spill counters %+v, want exactly one store and no errors", st)
	}
}

// TestSpillReloadRace is the restart scenario: two-plus goroutines miss the
// same key on a freshly restarted worker and race the spill reload.
// Exactly one goroutine may touch the disk; everyone must answer from the
// restored matrices with zero fill work; the .ptam file must stay valid.
func TestSpillReloadRace(t *testing.T) {
	const g = 8
	dir := t.TempDir()
	plan := planWire{Strategy: "ptac", Budget: "c=4"}

	// Warm worker spills, then dies.
	_, ts1 := newTestServer(t, Config{SpillDir: dir})
	want := spillSend(t, ts1.URL, plan)
	files := spillFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d spill files after the warm fill, want 1", len(files))
	}
	spilled, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Restarted worker: concurrent first requests race the reload.
	s2, ts2 := newTestServer(t, Config{SpillDir: dir})
	for _, res := range raceSend(t, ts2.URL, plan, g) {
		if res.Cache != cacheHit {
			t.Fatalf("restarted worker answered %q, want %q via the spill tier", res.Cache, cacheHit)
		}
		if res.Stats.Cells != 0 {
			t.Fatalf("restarted worker filled %d cells, want 0 (restored matrices)", res.Stats.Cells)
		}
		if res.C != want.C || res.Error != want.Error {
			t.Fatalf("reloaded result (C=%d err=%v) differs from pre-restart (C=%d err=%v)",
				res.C, res.Error, want.C, want.Error)
		}
	}
	st := s2.store.stats()
	if st.Loads != 1 {
		t.Fatalf("spill tier recorded %d loads, want exactly 1 for %d racing misses", st.Loads, g)
	}
	if st.Errors != 0 {
		t.Fatalf("spill tier recorded %d errors", st.Errors)
	}
	// The reload answered the budget already on disk, so nothing deepened
	// and the file must be byte-identical — never rewritten, never torn.
	after, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(spilled) {
		t.Fatal("spill file changed during a read-only reload race")
	}
}

// TestSpillDeepenRace: racing DIFFERENT budgets of one key forces the
// matrices to deepen and re-spill under contention. The entry semaphore
// must keep the file monotone and valid: after the dust settles a fresh
// worker answers the deepest budget as a pure hit.
func TestSpillDeepenRace(t *testing.T) {
	dir := t.TempDir()
	plans := []planWire{
		{Strategy: "ptac", Budget: "c=3"}, // cmin of the fixture
		{Strategy: "ptac", Budget: "c=4"},
		{Strategy: "ptac", Budget: "c=5"},
		{Strategy: "ptac", Budget: "c=6"},
	}

	s1, ts1 := newTestServer(t, Config{SpillDir: dir})
	errs := make([]error, 2*len(plans))
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(len(errs))
	for round := 0; round < 2; round++ {
		for i, plan := range plans {
			go func(slot int, plan planWire) {
				defer done.Done()
				start.Wait()
				_, errs[slot] = trySend(ts1.URL, plan)
			}(round*len(plans)+i, plan)
		}
	}
	start.Done()
	done.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("raced deepening request: %v", err)
		}
	}
	if st := s1.store.stats(); st.Errors != 0 {
		t.Fatalf("spill tier recorded %d errors under deepening contention", st.Errors)
	}
	if files := spillFiles(t, dir); len(files) != 1 {
		t.Fatalf("%d spill files for one cache key, want 1", len(files))
	}
	ts1.Close()

	// The surviving file must be complete enough for the deepest budget.
	_, ts2 := newTestServer(t, Config{SpillDir: dir})
	res := spillSend(t, ts2.URL, plans[len(plans)-1])
	if res.Cache != cacheHit || res.Stats.Cells != 0 {
		t.Fatalf("deepest budget after restart: cache=%q cells=%d, want a zero-fill hit",
			res.Cache, res.Stats.Cells)
	}
}
