package serve

import (
	"context"
	"fmt"
	"math"

	"repro/pta"
)

// Admission policies for requests whose estimated DP cost exceeds
// Config.AdmissionMaxCells.
const (
	// AdmissionReject answers over-budget requests with 429 + Retry-After
	// before they consume an in-flight slot. The default.
	AdmissionReject = "reject"
	// AdmissionQueue serializes over-budget requests through one dedicated
	// oversized slot instead of rejecting: at most one expensive fill runs
	// at a time, later ones wait up to their own deadline.
	AdmissionQueue = "queue"
)

// estimateCells predicts the worst-case DP fill cost of one resolved plan
// over an n-row series, in matrix cells — the unit the solver's own
// DPStats.Cells reports. The estimate is deliberately cold: it ignores
// cache warmth, so the budget holds even when a restart (or an eviction
// storm) empties the cache and every request pays its full fill.
//
//   - size budget c over an exact DP: rows 1..min(c, n), ≈ n·min(c, n) cells
//   - error budget over an exact DP: the bound search may fill all n rows,
//     ≈ n² cells
//   - non-DP strategies: the greedy merge heap, ≈ n·log₂(n) "cells"
func estimateCells(n int, pw planWire, plan pta.Plan) int64 {
	if n <= 0 {
		return 0
	}
	nn := int64(n)
	if _, dp := pta.DPClass(pw.Strategy); !dp {
		return nn * int64(math.Ceil(math.Log2(float64(n+1))))
	}
	if plan.Budget.Kind() == pta.BudgetSize {
		c := int64(plan.Budget.C())
		if c > nn {
			c = nn
		}
		if c < 0 {
			c = 0
		}
		return nn * c
	}
	return nn * nn
}

// admissionError is the typed carrier for a rejected request; statusFor
// maps it to 429 and writeError attaches the estimate, the budget and a
// Retry-After header.
type admissionError struct {
	cells  int64
	budget int64
}

func (e admissionError) Error() string {
	return fmt.Sprintf("estimated cost %d cells exceeds the admission budget %d", e.cells, e.budget)
}

// admit enforces the admission budget before the request takes an in-flight
// slot. Under-budget requests pass for free. Over-budget requests are
// rejected (default) or, under the queue policy, wait for the single
// oversized slot; the returned release func must be called when the request
// finishes (it is a no-op for under-budget requests).
func (s *Server) admit(ctx context.Context, cells int64) (release func(), err error) {
	if s.cfg.AdmissionMaxCells <= 0 || cells <= s.cfg.AdmissionMaxCells {
		return func() {}, nil
	}
	if s.cfg.AdmissionPolicy == AdmissionQueue {
		s.metrics.admissionQueued.Inc()
		select {
		case s.oversized <- struct{}{}:
			return func() { <-s.oversized }, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.metrics.admissionRejected.Inc()
	return nil, admissionError{cells: cells, budget: s.cfg.AdmissionMaxCells}
}
