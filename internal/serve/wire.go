package serve

import "repro/pta"

// This file exports the wire schema to sibling packages that speak the
// ptaserve protocol as clients — internal/dist's scatter/gather coordinator
// builds shard requests and decodes worker responses with the very structs
// the handlers decode and encode, so the two ends of the wire cannot drift.

// Exported aliases of the wire types (see codec.go for field semantics).
type (
	// AttrWire is one grouping attribute of the wire schema.
	AttrWire = attrWire
	// RowWire is one series tuple on the wire.
	RowWire = rowWire
	// SeriesWire is the wire form of a pta.Series.
	SeriesWire = seriesWire
	// PlanWire names one compression on the wire.
	PlanWire = planWire
	// CompressRequest is the body of POST /v1/compress.
	CompressRequest = compressRequest
	// CompressManyRequest is the body of POST /v1/compress/many.
	CompressManyRequest = compressManyRequest
	// StatsWire mirrors pta.Stats on the wire.
	StatsWire = statsWire
	// ResultWire is one compression outcome on the wire.
	ResultWire = resultWire
	// ErrorWire is the payload of the uniform error envelope.
	ErrorWire = errorWire
)

// ManyResponse is the body of a /v1/compress/many success response.
type ManyResponse struct {
	Results []ResultWire `json:"results"`
}

// ErrorEnvelope is the uniform error body: {"error": {...}}.
type ErrorEnvelope struct {
	Error ErrorWire `json:"error"`
}

// EncodeSeries renders a facade series onto the wire — the inverse of the
// handlers' decodeSeries. Aggregate values and float group values survive a
// JSON round trip bit-exactly (encoding/json emits the shortest form that
// re-parses to the same float64), so a decoded copy fingerprints and
// evaluates identically to the original.
func EncodeSeries(s *pta.Series) SeriesWire {
	w := SeriesWire{
		AggNames: s.AggNames,
		Rows:     make([]RowWire, len(s.Rows)),
	}
	if len(s.GroupAttrs) > 0 {
		w.GroupAttrs = make([]AttrWire, len(s.GroupAttrs))
		for i, a := range s.GroupAttrs {
			w.GroupAttrs[i] = AttrWire{Name: a.Name, Kind: a.Kind.String()}
		}
	}
	for i, r := range s.Rows {
		vals := s.Groups.Values(r.Group)
		var group []any
		if len(vals) > 0 {
			group = make([]any, len(vals))
			for j, v := range vals {
				group[j] = encodeDatum(v)
			}
		}
		w.Rows[i] = RowWire{
			Group: group,
			Aggs:  r.Aggs,
			Start: int64(r.T.Start),
			End:   int64(r.T.End),
		}
	}
	return w
}
