// Package serve is the HTTP/JSON serving layer over the public pta Engine:
// cmd/ptaserve wires it to a listener. It adds what a network boundary
// needs on top of the in-process API — a JSON codec for series and plans, a
// shared LRU matrix cache so repeated budgets of a hot series skip the DP
// fill entirely, per-request deadlines mapped onto the typed pta errors as
// HTTP status codes, and a bounded in-flight pool.
//
// Endpoints:
//
//	POST /v1/compress       one series, one plan
//	POST /v1/compress/many  one series, several plans (amortized)
//	GET  /v1/strategies     the strategy registry (pta.Describe)
//	GET  /v1/stats          cache and request counters
//	GET  /healthz           liveness
//
// See docs/ARCHITECTURE.md for the cache design and its invalidation rules.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/temporal"
	"repro/pta"
)

// attrWire is one grouping attribute of the wire schema.
type attrWire struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "string", "int" or "float"
}

// rowWire is one series tuple on the wire. Group values align with the
// series' group_attrs; start/end are the closed chronon interval.
type rowWire struct {
	Group []any     `json:"group,omitempty"`
	Aggs  []float64 `json:"aggs"`
	Start int64     `json:"start"`
	End   int64     `json:"end"`
}

// seriesWire is the wire form of a pta.Series.
type seriesWire struct {
	GroupAttrs []attrWire `json:"group_attrs,omitempty"`
	AggNames   []string   `json:"agg_names"`
	Rows       []rowWire  `json:"rows"`
}

// planWire names one compression: a registry strategy, a budget in the
// ParseBudget syntax ("c=12" or "eps=0.05"), and optional per-plan options.
// FillAlgo pins the exact-DP row-fill algorithm ("auto", "pruned", "dc",
// "smawk"; empty means auto) — results are identical for every value, so
// clients use it to A/B performance; unknown values are a 400.
type planWire struct {
	Strategy  string    `json:"strategy"`
	Budget    string    `json:"budget"`
	Weights   []float64 `json:"weights,omitempty"`
	ReadAhead int       `json:"read_ahead,omitempty"`
	FillAlgo  string    `json:"fill_algo,omitempty"`
}

// compressRequest is the body of POST /v1/compress.
type compressRequest struct {
	Series seriesWire `json:"series"`
	Plan   planWire   `json:"plan"`
	// TimeoutMS optionally tightens the server's per-request deadline; it
	// can never extend it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// compressManyRequest is the body of POST /v1/compress/many.
type compressManyRequest struct {
	Series    seriesWire `json:"series"`
	Plans     []planWire `json:"plans"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
}

// statsWire mirrors pta.Stats.
type statsWire struct {
	Cells      int64 `json:"cells,omitempty"`
	InnerIters int64 `json:"inner_iters,omitempty"`
	Merges     int   `json:"merges,omitempty"`
	MaxHeap    int   `json:"max_heap,omitempty"`
	ReadAhead  int   `json:"read_ahead,omitempty"`
}

// resultWire is one compression outcome. Cache reports how the matrix cache
// served the plan: "hit", "miss" (entry built by this request) or "bypass"
// (strategy not matrix-cacheable).
type resultWire struct {
	Strategy string    `json:"strategy"`
	Budget   string    `json:"budget"`
	C        int       `json:"c"`
	Error    float64   `json:"error"`
	Cache    string    `json:"cache,omitempty"`
	Stats    statsWire `json:"stats"`
	Rows     []rowWire `json:"rows"`
}

// errorWire is the uniform error envelope: {"error": {...}}.
type errorWire struct {
	Status  int      `json:"status"`
	Code    string   `json:"code"`
	Message string   `json:"message"`
	CMin    int      `json:"cmin,omitempty"`  // budget_infeasible: smallest reachable size
	Known   []string `json:"known,omitempty"` // unknown_strategy: the registry
}

// decodeSeries validates and converts a wire series into the facade model:
// group values are interned into a fresh dictionary, rows are sorted into
// the canonical (group, time) order and the sequential-relation invariants
// are checked.
func decodeSeries(w seriesWire) (*pta.Series, error) {
	if len(w.AggNames) == 0 {
		return nil, fmt.Errorf("series: need at least one aggregate attribute name")
	}
	if len(w.Rows) == 0 {
		return nil, fmt.Errorf("series: need at least one row")
	}
	attrs := make([]temporal.Attribute, len(w.GroupAttrs))
	for i, a := range w.GroupAttrs {
		kind, err := temporal.ParseKind(a.Kind)
		if err != nil {
			return nil, fmt.Errorf("series: group attribute %q: %v", a.Name, err)
		}
		if a.Name == "" {
			return nil, fmt.Errorf("series: group attribute %d has no name", i)
		}
		attrs[i] = temporal.Attribute{Name: a.Name, Kind: kind}
	}
	s := pta.NewSeries(attrs, w.AggNames)
	p := len(w.AggNames)
	vals := make([]temporal.Datum, len(attrs))
	for i, r := range w.Rows {
		if len(r.Group) != len(attrs) {
			return nil, fmt.Errorf("series: row %d has %d group values, schema has %d attributes",
				i, len(r.Group), len(attrs))
		}
		if len(r.Aggs) != p {
			return nil, fmt.Errorf("series: row %d has %d aggregate values, want %d", i, len(r.Aggs), p)
		}
		for j, v := range r.Group {
			d, err := decodeDatum(attrs[j].Kind, v)
			if err != nil {
				return nil, fmt.Errorf("series: row %d, attribute %q: %v", i, attrs[j].Name, err)
			}
			vals[j] = d
		}
		s.Rows = append(s.Rows, pta.Row{
			Group: s.Groups.Intern(vals),
			Aggs:  append([]float64(nil), r.Aggs...),
			T:     pta.Interval{Start: pta.Chronon(r.Start), End: pta.Chronon(r.End)},
		})
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("series: %v", err)
	}
	return s, nil
}

// decodeDatum converts one JSON group value to the attribute's domain.
func decodeDatum(kind temporal.Kind, v any) (temporal.Datum, error) {
	switch kind {
	case temporal.KindString:
		s, ok := v.(string)
		if !ok {
			return temporal.Datum{}, fmt.Errorf("want a string, have %T", v)
		}
		return temporal.String(s), nil
	case temporal.KindInt:
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) {
			return temporal.Datum{}, fmt.Errorf("want an integer, have %v (%T)", v, v)
		}
		return temporal.Int(int64(f)), nil
	case temporal.KindFloat:
		f, ok := v.(float64)
		if !ok {
			return temporal.Datum{}, fmt.Errorf("want a number, have %T", v)
		}
		return temporal.Float(f), nil
	}
	return temporal.Datum{}, fmt.Errorf("unsupported kind %v", kind)
}

// encodeDatum renders one group value for the wire, preserving the domain.
func encodeDatum(d temporal.Datum) any {
	switch d.Kind() {
	case temporal.KindInt:
		return d.IntVal()
	case temporal.KindFloat:
		return d.FloatVal()
	default:
		return d.Text()
	}
}

// encodeResult packages a facade result with its cache disposition.
func encodeResult(res *pta.Result, cache string) resultWire {
	rows := make([]rowWire, len(res.Series.Rows))
	for i, r := range res.Series.Rows {
		vals := res.Series.Groups.Values(r.Group)
		var group []any
		if len(vals) > 0 {
			group = make([]any, len(vals))
			for j, v := range vals {
				group[j] = encodeDatum(v)
			}
		}
		rows[i] = rowWire{
			Group: group,
			Aggs:  r.Aggs,
			Start: int64(r.T.Start),
			End:   int64(r.T.End),
		}
	}
	return resultWire{
		Strategy: res.Strategy,
		Budget:   res.Budget.String(),
		C:        res.C,
		Error:    res.Error,
		Cache:    cache,
		Stats: statsWire{
			Cells:      res.Stats.Cells,
			InnerIters: res.Stats.InnerIters,
			Merges:     res.Stats.Merges,
			MaxHeap:    res.Stats.MaxHeap,
			ReadAhead:  res.Stats.ReadAhead,
		},
		Rows: rows,
	}
}

// decodeJSON strictly decodes one JSON value from the request body,
// rejecting trailing garbage.
func decodeJSON(r io.Reader, into any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("body: trailing data after the JSON value")
	}
	return nil
}
