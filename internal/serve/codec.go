// Package serve is the HTTP/JSON serving layer over the public pta Engine:
// cmd/ptaserve wires it to a listener. It adds what a network boundary
// needs on top of the in-process API — a JSON codec for series and plans, a
// shared LRU matrix cache so repeated budgets of a hot series skip the DP
// fill entirely, per-request deadlines mapped onto the typed pta errors as
// HTTP status codes, and a bounded in-flight pool.
//
// Endpoints:
//
//	POST /v1/compress       one series, one plan
//	POST /v1/compress/many  one series, several plans (amortized)
//	GET  /v1/strategies     the strategy registry (pta.Describe)
//	GET  /v1/stats          cache and request counters
//	GET  /healthz           liveness
//
// See docs/ARCHITECTURE.md for the cache design and its invalidation rules.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/temporal"
	"repro/pta"
)

// attrWire is one grouping attribute of the wire schema.
type attrWire struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "string", "int" or "float"
}

// rowWire is one series tuple on the wire. Group values align with the
// series' group_attrs; start/end are the closed chronon interval.
type rowWire struct {
	Group []any     `json:"group,omitempty"`
	Aggs  []float64 `json:"aggs"`
	Start int64     `json:"start"`
	End   int64     `json:"end"`
}

// seriesWire is the wire form of a pta.Series.
type seriesWire struct {
	GroupAttrs []attrWire `json:"group_attrs,omitempty"`
	AggNames   []string   `json:"agg_names"`
	Rows       []rowWire  `json:"rows"`
}

// planWire names one compression: a registry strategy, a budget in the
// ParseBudget syntax ("c=12" or "eps=0.05"), and optional per-plan options.
// FillAlgo pins the exact-DP row-fill algorithm ("auto", "pruned", "dc",
// "smawk"; empty means auto) — results are identical for every value, so
// clients use it to A/B performance; unknown values are a 400.
type planWire struct {
	Strategy  string    `json:"strategy"`
	Budget    string    `json:"budget"`
	Weights   []float64 `json:"weights,omitempty"`
	ReadAhead int       `json:"read_ahead,omitempty"`
	FillAlgo  string    `json:"fill_algo,omitempty"`
}

// compressRequest is the body of POST /v1/compress.
type compressRequest struct {
	Series seriesWire `json:"series"`
	Plan   planWire   `json:"plan"`
	// TimeoutMS optionally tightens the server's per-request deadline; it
	// can never extend it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// compressManyRequest is the body of POST /v1/compress/many.
type compressManyRequest struct {
	Series    seriesWire `json:"series"`
	Plans     []planWire `json:"plans"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
}

// statsWire mirrors pta.Stats.
type statsWire struct {
	Cells         int64 `json:"cells,omitempty"`
	InnerIters    int64 `json:"inner_iters,omitempty"`
	EnvelopeSkips int64 `json:"envelope_skips,omitempty"`
	Merges        int   `json:"merges,omitempty"`
	MaxHeap       int   `json:"max_heap,omitempty"`
	ReadAhead     int   `json:"read_ahead,omitempty"`
}

// resultWire is one compression outcome. Cache reports how the matrix cache
// served the plan: "hit", "miss" (entry built by this request) or "bypass"
// (strategy not matrix-cacheable).
type resultWire struct {
	Strategy string    `json:"strategy"`
	Budget   string    `json:"budget"`
	C        int       `json:"c"`
	Error    float64   `json:"error"`
	Cache    string    `json:"cache,omitempty"`
	Stats    statsWire `json:"stats"`
	Rows     []rowWire `json:"rows"`
}

// errorWire is the uniform error envelope: {"error": {...}}.
type errorWire struct {
	Status  int      `json:"status"`
	Code    string   `json:"code"`
	Message string   `json:"message"`
	CMin    int      `json:"cmin,omitempty"`  // budget_infeasible: smallest reachable size
	Known   []string `json:"known,omitempty"` // unknown_strategy: the registry

	// admission_rejected: the cost model's verdict, so clients can split
	// the request or pick a smaller budget instead of blind retries.
	EstimatedCells int64 `json:"estimated_cells,omitempty"`
	MaxCells       int64 `json:"max_cells,omitempty"`
}

// decodeSeries validates and converts a wire series into the facade model:
// group values are interned into a fresh dictionary, rows are sorted into
// the canonical (group, time) order and the sequential-relation invariants
// are checked.
func decodeSeries(w seriesWire) (*pta.Series, error) {
	if len(w.AggNames) == 0 {
		return nil, fmt.Errorf("series: need at least one aggregate attribute name")
	}
	if len(w.Rows) == 0 {
		return nil, fmt.Errorf("series: need at least one row")
	}
	attrs := make([]temporal.Attribute, len(w.GroupAttrs))
	for i, a := range w.GroupAttrs {
		kind, err := temporal.ParseKind(a.Kind)
		if err != nil {
			return nil, fmt.Errorf("series: group attribute %q: %v", a.Name, err)
		}
		if a.Name == "" {
			return nil, fmt.Errorf("series: group attribute %d has no name", i)
		}
		attrs[i] = temporal.Attribute{Name: a.Name, Kind: kind}
	}
	s := pta.NewSeries(attrs, w.AggNames)
	p := len(w.AggNames)
	vals := make([]temporal.Datum, len(attrs))
	for i, r := range w.Rows {
		if len(r.Group) != len(attrs) {
			return nil, fmt.Errorf("series: row %d has %d group values, schema has %d attributes",
				i, len(r.Group), len(attrs))
		}
		if len(r.Aggs) != p {
			return nil, fmt.Errorf("series: row %d has %d aggregate values, want %d", i, len(r.Aggs), p)
		}
		for j, v := range r.Group {
			d, err := decodeDatum(attrs[j].Kind, v)
			if err != nil {
				return nil, fmt.Errorf("series: row %d, attribute %q: %v", i, attrs[j].Name, err)
			}
			vals[j] = d
		}
		s.Rows = append(s.Rows, pta.Row{
			Group: s.Groups.Intern(vals),
			Aggs:  append([]float64(nil), r.Aggs...),
			T:     pta.Interval{Start: pta.Chronon(r.Start), End: pta.Chronon(r.End)},
		})
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("series: %v", err)
	}
	return s, nil
}

// decodeDatum converts one JSON group value to the attribute's domain.
func decodeDatum(kind temporal.Kind, v any) (temporal.Datum, error) {
	switch kind {
	case temporal.KindString:
		s, ok := v.(string)
		if !ok {
			return temporal.Datum{}, fmt.Errorf("want a string, have %T", v)
		}
		return temporal.String(s), nil
	case temporal.KindInt:
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) {
			return temporal.Datum{}, fmt.Errorf("want an integer, have %v (%T)", v, v)
		}
		return temporal.Int(int64(f)), nil
	case temporal.KindFloat:
		f, ok := v.(float64)
		if !ok {
			return temporal.Datum{}, fmt.Errorf("want a number, have %T", v)
		}
		return temporal.Float(f), nil
	}
	return temporal.Datum{}, fmt.Errorf("unsupported kind %v", kind)
}

// encodeDatum renders one group value for the wire, preserving the domain.
func encodeDatum(d temporal.Datum) any {
	switch d.Kind() {
	case temporal.KindInt:
		return d.IntVal()
	case temporal.KindFloat:
		return d.FloatVal()
	default:
		return d.Text()
	}
}

// encodeResult packages a facade result with its cache disposition. It is
// the reference implementation of the result wire format: the hot handlers
// encode through appendResult instead (same bytes, no reflection, no
// allocation), and TestAppendResultMatchesEncodingJSON pins the two to each
// other.
func encodeResult(res *pta.Result, cache string) resultWire {
	rows := make([]rowWire, len(res.Series.Rows))
	for i, r := range res.Series.Rows {
		vals := res.Series.Groups.Values(r.Group)
		var group []any
		if len(vals) > 0 {
			group = make([]any, len(vals))
			for j, v := range vals {
				group[j] = encodeDatum(v)
			}
		}
		rows[i] = rowWire{
			Group: group,
			Aggs:  r.Aggs,
			Start: int64(r.T.Start),
			End:   int64(r.T.End),
		}
	}
	return resultWire{
		Strategy: res.Strategy,
		Budget:   res.Budget.String(),
		C:        res.C,
		Error:    res.Error,
		Cache:    cache,
		Stats: statsWire{
			Cells:         res.Stats.Cells,
			InnerIters:    res.Stats.InnerIters,
			EnvelopeSkips: res.Stats.EnvelopeSkips,
			Merges:        res.Stats.Merges,
			MaxHeap:       res.Stats.MaxHeap,
			ReadAhead:     res.Stats.ReadAhead,
		},
		Rows: rows,
	}
}

// --- allocation-free result encoding ---
//
// The compress handlers answer cache hits without filling a single matrix
// cell, so on the hot path the response encoding used to dominate the
// allocation profile: encoding/json walks resultWire reflectively and
// allocates per row. appendResult renders the identical bytes (field order,
// omitempty behavior, float and string formatting) straight into a pooled
// byte buffer — zero allocations per request once the pool is warm.

// codecBufPool recycles response-body buffers across requests. Buffers that
// grew beyond codecBufMax (a giant series) are dropped instead of pooled so
// one outlier does not pin its worst-case footprint forever.
var codecBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

const codecBufMax = 1 << 20

// appendResult appends the JSON of one compression outcome, byte-identical
// to encoding/json over encodeResult(res, cache) with HTML escaping off.
func appendResult(b []byte, res *pta.Result, cache string) []byte {
	b = append(b, `{"strategy":`...)
	b = appendJSONString(b, res.Strategy)
	b = append(b, `,"budget":`...)
	b = appendJSONString(b, res.Budget.String())
	b = append(b, `,"c":`...)
	b = strconv.AppendInt(b, int64(res.C), 10)
	b = append(b, `,"error":`...)
	b = appendJSONFloat(b, res.Error)
	if cache != "" {
		b = append(b, `,"cache":`...)
		b = appendJSONString(b, cache)
	}
	b = append(b, `,"stats":{`...)
	b = appendStatField(b, `"cells":`, res.Stats.Cells)
	b = appendStatField(b, `"inner_iters":`, res.Stats.InnerIters)
	b = appendStatField(b, `"envelope_skips":`, res.Stats.EnvelopeSkips)
	b = appendStatField(b, `"merges":`, int64(res.Stats.Merges))
	b = appendStatField(b, `"max_heap":`, int64(res.Stats.MaxHeap))
	b = appendStatField(b, `"read_ahead":`, int64(res.Stats.ReadAhead))
	b = append(b, `},"rows":[`...)
	for i := range res.Series.Rows {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendRow(b, res.Series, &res.Series.Rows[i])
	}
	return append(b, `]}`...)
}

// appendStatField appends one omitempty stats field (name includes the
// quoted key and colon); zero values are omitted like the statsWire tags.
func appendStatField(b []byte, name string, v int64) []byte {
	if v == 0 {
		return b
	}
	if b[len(b)-1] != '{' {
		b = append(b, ',')
	}
	b = append(b, name...)
	return strconv.AppendInt(b, v, 10)
}

// appendRow appends one rowWire: group (omitted when the series has no
// grouping attributes), aggs, start, end.
func appendRow(b []byte, s *pta.Series, r *pta.Row) []byte {
	b = append(b, '{')
	if vals := s.Groups.Values(r.Group); len(vals) > 0 {
		b = append(b, `"group":[`...)
		for j, v := range vals {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendDatum(b, v)
		}
		b = append(b, `],`...)
	}
	b = append(b, `"aggs":[`...)
	for j, v := range r.Aggs {
		if j > 0 {
			b = append(b, ',')
		}
		b = appendJSONFloat(b, v)
	}
	b = append(b, `],"start":`...)
	b = strconv.AppendInt(b, int64(r.T.Start), 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, int64(r.T.End), 10)
	return append(b, '}')
}

// appendDatum appends one group value, preserving the domain like
// encodeDatum.
func appendDatum(b []byte, d temporal.Datum) []byte {
	switch d.Kind() {
	case temporal.KindInt:
		return strconv.AppendInt(b, d.IntVal(), 10)
	case temporal.KindFloat:
		return appendJSONFloat(b, d.FloatVal())
	}
	return appendJSONString(b, d.Text())
}

// appendJSONFloat appends a float64 with encoding/json's exact formatting:
// shortest 'f' form normally, 'e' form with a cleaned exponent for very
// small or very large magnitudes. Non-finite values (which encoding/json
// refuses, truncating the response mid-body) render as null — strictly more
// useful to a client than a broken body.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims a zero-padded exponent: 1e-07 → 1e-7.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a quoted JSON string with encoding/json's
// escaping rules under SetEscapeHTML(false): quote, backslash and control
// characters are escaped (\b, \f, \n, \r, \t short forms, \u00xx otherwise),
// invalid UTF-8 becomes U+FFFD, and the JavaScript line separators U+2028
// and U+2029 are escaped; everything else is copied verbatim in spans.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', byte('8'+r-'\u2028'))
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// decodeJSON strictly decodes one JSON value from the request body,
// rejecting trailing garbage.
func decodeJSON(r io.Reader, into any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("body: trailing data after the JSON value")
	}
	return nil
}
