package serve

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/pta"
)

// matrixCache is a concurrency-safe LRU of warm pta.MatrixSets, keyed by
// (series fingerprint, DP class, weights). Repeated budgets of a hot series
// backtrack over the cached matrices instead of refilling them; a new budget
// on a cached series only extends the matrices to the deeper row it needs.
//
// Entries are invalidated by displacement only: the key is a content hash,
// so a series that changes upstream simply fingerprints to a new key and the
// stale entry ages out of the LRU. There is no TTL — matrices are pure
// functions of (series, class, weights) and can never go stale in place.
type matrixCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	byKey    map[string]*list.Element // value: *cacheEntry
	byHash   map[string]*list.Element // spillHash(key) → same element, for /v1/matrix

	hits, misses, evictions atomic.Int64
}

// cacheEntry guards one MatrixSet. The set is built under the entry
// semaphore by the request that missed, so concurrent requests for the same
// key wait and then hit the warm matrices; the semaphore also serializes
// Compress calls (a MatrixSet is not concurrency-safe). It is a channel,
// not a mutex, so a waiting request still honors its own deadline instead
// of blocking unboundedly behind another request's long fill.
type cacheEntry struct {
	key  string
	hash string // spillHash(key): the content address peers fetch by

	sem chan struct{} // capacity 1
	set *pta.MatrixSet

	// bytes and rows mirror the set's footprint after the latest use, so
	// stats never have to take entry locks.
	bytes atomic.Int64
	rows  atomic.Int64

	// spilled is how many rows the persistent tier already holds for this
	// key, so repeated budgets do not rewrite an unchanged spill file.
	spilled atomic.Int64

	// cells is the set's cumulative DP fill as of the last evaluation; the
	// per-evaluation delta feeds ptaserve_dp_cells_filled_total, the counter
	// the warm-tier tests use to prove "zero cells recomputed".
	cells atomic.Int64
}

// newMatrixCache builds a cache holding at most capacity entries (≥ 1).
func newMatrixCache(capacity int) *matrixCache {
	return &matrixCache{
		capacity: max(1, capacity),
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		byHash:   make(map[string]*list.Element),
	}
}

// cacheKey derives the full cache key of one evaluation. Weights are part of
// the key because they change the error matrix cell values.
func cacheKey(fingerprint, class string, weights []float64) string {
	var sb strings.Builder
	sb.WriteString(fingerprint)
	sb.WriteByte('|')
	sb.WriteString(class)
	for _, w := range weights {
		sb.WriteByte('|')
		sb.WriteString(strconv.FormatFloat(w, 'b', -1, 64))
	}
	return sb.String()
}

// acquire returns the entry for key, creating (and counting a miss) when
// absent, touching the LRU order and counting a hit otherwise.
func (c *matrixCache) acquire(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry), true
	}
	c.misses.Add(1)
	e := &cacheEntry{key: key, hash: spillHash(key), sem: make(chan struct{}, 1)}
	el := c.ll.PushFront(e)
	c.byKey[key] = el
	c.byHash[e.hash] = el
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		evicted := back.Value.(*cacheEntry)
		delete(c.byKey, evicted.key)
		delete(c.byHash, evicted.hash)
		c.evictions.Add(1)
	}
	return e, false
}

// lookupByHash resolves a content address to its resident entry for the
// peer /v1/matrix endpoint, touching the LRU (a peer fetch is a use) but
// not the hit/miss counters (those count compression lookups).
func (c *matrixCache) lookupByHash(hash string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byHash[hash]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// discard drops an entry whose MatrixSet failed to build, so a poisoned key
// does not count later requests as hits.
func (c *matrixCache) discard(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok && el.Value.(*cacheEntry) == e {
		c.ll.Remove(el)
		delete(c.byKey, e.key)
		delete(c.byHash, e.hash)
	}
}

// cacheStats is the /v1/stats snapshot of the cache.
type cacheStats struct {
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Rows      int64 `json:"rows"`
	MemBytes  int64 `json:"mem_bytes"`
}

// stats snapshots the counters and the footprint of the resident entries.
func (c *matrixCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := cacheStats{
		Capacity:  c.capacity,
		Entries:   c.ll.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		st.Rows += e.rows.Load()
		st.MemBytes += e.bytes.Load()
	}
	return st
}

// compress serves one budget through the cache: it builds the MatrixSet on
// first use and answers every call under the entry semaphore, giving up
// with the context error when the request's deadline expires while queued
// behind another request's fill. A build failure discards the entry and
// surfaces the error.
func (e *cacheEntry) compress(ctx context.Context, c *matrixCache, build func() (*pta.MatrixSet, error), do func(*pta.MatrixSet) (*pta.Result, error)) (*pta.Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	if e.set == nil {
		set, err := build()
		if err != nil {
			c.discard(e)
			return nil, err
		}
		e.set = set
	}
	res, err := do(e.set)
	e.bytes.Store(e.set.MemBytes())
	e.rows.Store(int64(e.set.Rows()))
	return res, err
}

// String renders the counters for logs.
func (c *matrixCache) String() string {
	st := c.stats()
	return fmt.Sprintf("cache{entries=%d/%d hits=%d misses=%d evictions=%d}",
		st.Entries, st.Capacity, st.Hits, st.Misses, st.Evictions)
}
