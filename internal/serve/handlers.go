package serve

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/pta"
)

// Cache dispositions reported per result.
const (
	cacheHit    = "hit"
	cacheMiss   = "miss"
	cacheBypass = "bypass"
)

// statusClientClosedRequest is the de-facto status for a client that went
// away mid-evaluation (nginx's 499); nothing reads the response, but logs
// and stats distinguish it from a server-side deadline.
const statusClientClosedRequest = 499

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.nHealth.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	s.nStrategies.Add(1)
	infos := pta.Describe()
	out := make([]map[string]any, len(infos))
	for i, info := range infos {
		class, cacheable := pta.DPClass(info.Name)
		entry := map[string]any{
			"name":        info.Name,
			"description": info.Description,
			"size":        info.Size,
			"error":       info.Error,
			"streaming":   info.Streaming,
		}
		if cacheable {
			entry["matrix_cache_class"] = class
		}
		out[i] = entry
	}
	// Every exact DP strategy (the matrix-cacheable ones) accepts a pinned
	// row-fill algorithm via the plan's fill_algo field; results are
	// identical per value, so the list is global rather than per entry.
	writeJSON(w, http.StatusOK, map[string]any{
		"strategies": out,
		"fill_algos": pta.FillAlgoNames(),
	})
}

// handleMetrics serves the Prometheus text-format exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.metrics.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.nStats.Add(1)
	uptime := time.Since(s.started).Seconds()
	body := map[string]any{
		"uptime_seconds": uptime,
		"uptime_s":       uptime,
		"requests": map[string]int64{
			"compress":      s.nCompress.Load(),
			"compress_many": s.nCompressMany.Load(),
			"strategies":    s.nStrategies.Load(),
			"stats":         s.nStats.Load(),
			"healthz":       s.nHealth.Load(),
		},
		"compressions": s.compressions.Load(),
		"inflight":     len(s.inflight),
		"cache":        s.cache.stats(),
		"admission": map[string]any{
			"max_cells": s.cfg.AdmissionMaxCells,
			"policy":    cmp.Or(s.cfg.AdmissionPolicy, AdmissionReject),
			"rejected":  s.metrics.admissionRejected.Value(),
			"queued":    s.metrics.admissionQueued.Value(),
		},
		"fill": map[string]any{
			"requests":          s.fillRequestCounts(),
			"coverage_observed": s.metrics.fillCoverage.Count(),
		},
	}
	if s.store != nil {
		body["spill"] = s.store.stats()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	s.nCompress.Add(1)
	var req compressRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	plan, err := resolvePlan(req.Plan)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	// The series decodes before any slot is taken: admission must price the
	// request (and possibly reject it) without consuming in-flight capacity.
	series, err := decodeSeries(req.Series)
	if err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	if s.cfg.AdmissionMaxCells > 0 {
		release, err := s.admit(ctx, estimateCells(series.Len(), req.Plan, plan))
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		defer release()
	}
	if !s.acquireSlot(ctx) {
		s.writeError(w, r, ctx.Err())
		return
	}
	defer s.releaseSlot()
	res, disposition, err := s.compressOne(ctx, series, "", req.Plan, plan)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writePooledJSON(w, http.StatusOK, func(b []byte) []byte {
		return appendResult(b, res, disposition)
	})
}

func (s *Server) handleCompressMany(w http.ResponseWriter, r *http.Request) {
	s.nCompressMany.Add(1)
	var req compressManyRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	if len(req.Plans) == 0 {
		s.writeError(w, r, badRequest(errors.New("need at least one plan")))
		return
	}
	series, err := decodeSeries(req.Series)
	if err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// Admission prices the whole request — the sum of per-plan worst cases
	// — before any slot is taken. Plans resolve again in the evaluation
	// loop; that duplication keeps the admission-disabled hot path free of
	// the pricing pass entirely.
	if s.cfg.AdmissionMaxCells > 0 {
		var cells int64
		for _, pw := range req.Plans {
			plan, err := resolvePlan(pw)
			if err != nil {
				s.writeError(w, r, err)
				return
			}
			cells += estimateCells(series.Len(), pw, plan)
		}
		release, err := s.admit(ctx, cells)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		defer release()
	}
	if !s.acquireSlot(ctx) {
		s.writeError(w, r, ctx.Err())
		return
	}
	defer s.releaseSlot()

	// The series fingerprints once; each plan resolves its own cache key
	// (strategies of one DP class share an entry, so a c= and an eps= plan
	// of the same request amortize through the same warm matrices — the
	// cross-request generalization of Engine.CompressMany). Non-cacheable
	// plans fall through to one Engine.CompressMany call, which amortizes
	// whatever the engine can.
	fingerprint := pta.Fingerprint(series)
	type resultEntry struct {
		res         *pta.Result
		disposition string
	}
	results := make([]resultEntry, len(req.Plans))
	var enginePlans []pta.Plan
	var engineIdx []int
	for i, pw := range req.Plans {
		plan, err := resolvePlan(pw)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		if _, cacheable := s.cacheKeyFor(fingerprint, pw); !cacheable {
			enginePlans = append(enginePlans, plan)
			engineIdx = append(engineIdx, i)
			continue
		}
		res, disposition, err := s.compressOne(ctx, series, fingerprint, pw, plan)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		results[i] = resultEntry{res, disposition}
	}
	if len(enginePlans) > 0 {
		engineResults, err := s.engine.CompressMany(ctx, series, enginePlans)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.compressions.Add(int64(len(engineResults)))
		for j, res := range engineResults {
			results[engineIdx[j]] = resultEntry{res, cacheBypass}
		}
	}
	writePooledJSON(w, http.StatusOK, func(b []byte) []byte {
		b = append(b, `{"results":[`...)
		for i, e := range results {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendResult(b, e.res, e.disposition)
		}
		return append(b, `]}`...)
	})
}

// effectiveWeights mirrors the engine's planOptions semantics: a plan
// without weights inherits the engine-level defaults, so cached and engine
// evaluations always use the same vector.
func (s *Server) effectiveWeights(pw planWire) []float64 {
	if pw.Weights != nil {
		return pw.Weights
	}
	return s.defaultWeights
}

// cacheKeyFor reports the matrix-cache key of one plan, and whether the plan
// is cacheable at all: the strategy must be an exact DP and the plan must
// not carry options the DP ignores anyway except weights (which are part of
// the key, engine defaults included) and a pinned fill algorithm (which
// selects a per-algo DP class, so A/B arms never share entries).
func (s *Server) cacheKeyFor(fingerprint string, pw planWire) (string, bool) {
	if fingerprint == "" {
		return "", false
	}
	fill, err := pta.ParseFillAlgo(pw.FillAlgo)
	if err != nil {
		return "", false
	}
	class, ok := pta.DPClassWith(pw.Strategy, fill)
	if !ok || pw.ReadAhead != 0 {
		return "", false
	}
	return cacheKey(fingerprint, class, s.effectiveWeights(pw)), true
}

// resolvePlan validates one wire plan into an engine plan.
func resolvePlan(pw planWire) (pta.Plan, error) {
	if pw.Strategy == "" {
		return pta.Plan{}, badRequest(errors.New("plan: missing strategy"))
	}
	b, err := pta.ParseBudget(pw.Budget)
	if err != nil {
		return pta.Plan{}, badRequest(err)
	}
	fill, err := pta.ParseFillAlgo(pw.FillAlgo)
	if err != nil {
		return pta.Plan{}, badRequest(fmt.Errorf("plan: %w", err))
	}
	plan := pta.Plan{Strategy: pw.Strategy, Budget: b}
	if pw.Weights != nil || pw.ReadAhead != 0 || fill != pta.FillAuto {
		plan.Options = &pta.Options{Weights: pw.Weights, ReadAhead: pw.ReadAhead, FillAlgo: fill}
	}
	return plan, nil
}

// compressOne evaluates one resolved plan over the series, through the
// matrix cache when the plan is cacheable and through the engine otherwise.
// fingerprint may be passed in to amortize hashing across plans; ""
// computes it here.
func (s *Server) compressOne(ctx context.Context, series *pta.Series, fingerprint string, pw planWire, plan pta.Plan) (*pta.Result, string, error) {
	s.compressions.Add(1)

	if fingerprint == "" {
		if _, ok := pta.DPClass(pw.Strategy); ok && pw.ReadAhead == 0 {
			fingerprint = pta.Fingerprint(series)
		}
	}
	fill, _ := pta.ParseFillAlgo(pw.FillAlgo) // validated by resolvePlan
	key, cacheable := s.cacheKeyFor(fingerprint, pw)
	if cacheable {
		// The cache path answers through MatrixSet, which never consults
		// Supports; keep the engine's (strategy, budget kind) contract by
		// routing unsupported kinds to the engine's typed error.
		if ev, ok := pta.Lookup(pw.Strategy); !ok || !ev.Supports(plan.Budget.Kind()) {
			cacheable = false
		}
	}
	if !cacheable {
		res, err := s.engine.Compress(ctx, series, plan)
		return res, cacheBypass, err
	}

	entry, hit := s.cache.acquire(key)
	disposition := cacheMiss
	if hit {
		disposition = cacheHit
	}
	opts := pta.Options{Weights: s.effectiveWeights(pw), FillAlgo: fill}
	// Cold builds observe the kernel's certified monotone coverage; every
	// answered budget counts against the set's resolved fill algorithm
	// (ptafill_* family).
	build := func() (*pta.MatrixSet, error) {
		set, err := pta.NewMatrixSet(series, pw.Strategy, opts)
		if err == nil {
			s.metrics.fillCoverage.Observe(set.MonotoneCoverage())
		}
		return set, err
	}
	var res *pta.Result
	var err error
	if s.store == nil {
		start := time.Now()
		res, err = entry.compress(ctx, s.cache, build,
			func(set *pta.MatrixSet) (*pta.Result, error) {
				res, err := set.Compress(ctx, plan.Budget)
				if err == nil {
					s.metrics.fillServed(set.FillAlgo())
				}
				return res, err
			})
		if err == nil && !hit {
			s.metrics.fillSeconds.Observe(time.Since(start).Seconds())
		}
	} else {
		fromSpill := false
		start := time.Now()
		res, err = entry.compress(ctx, s.cache,
			func() (*pta.MatrixSet, error) {
				// An in-memory miss consults the persistent tier first: a
				// spill hit restores the warm matrices and the budget
				// answers with a backtrack, no fill — the client sees it as
				// a cache hit.
				if set := s.store.load(key, series, pw.Strategy, opts); set != nil {
					fromSpill = true
					entry.spilled.Store(int64(set.Rows())) // disk already has these rows
					return set, nil
				}
				return build()
			},
			func(set *pta.MatrixSet) (*pta.Result, error) {
				res, err := set.Compress(ctx, plan.Budget)
				// Spill under the entry semaphore whenever this evaluation
				// deepened the matrices past what is already on disk.
				if err == nil {
					s.metrics.fillServed(set.FillAlgo())
					if rows := int64(set.Rows()); rows > entry.spilled.Load() && s.store.store(key, set) {
						entry.spilled.Store(rows)
					}
				}
				return res, err
			})
		if err == nil {
			if fromSpill {
				disposition = cacheHit
			} else if !hit {
				s.metrics.fillSeconds.Observe(time.Since(start).Seconds())
			}
		}
	}
	if err != nil {
		return nil, disposition, err
	}
	// Stamp the requested strategy: a ptac entry may serve a ptae plan of
	// the same class.
	res.Strategy = pw.Strategy
	return res, disposition, nil
}

// badRequestError marks client-side validation failures for statusFor.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return badRequestError{err: err} }

// statusFor maps an error onto (HTTP status, machine-readable code).
func statusFor(err error) (int, string) {
	var br badRequestError
	var adm admissionError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest, "bad_request"
	case errors.As(err, &adm):
		return http.StatusTooManyRequests, "admission_rejected"
	case errors.Is(err, pta.ErrUnknownStrategy):
		return http.StatusBadRequest, "unknown_strategy"
	case errors.Is(err, pta.ErrBudgetKind):
		return http.StatusBadRequest, "unsupported_budget_kind"
	case errors.Is(err, pta.ErrSeriesShape):
		return http.StatusBadRequest, "series_shape"
	case errors.Is(err, pta.ErrNotStreaming):
		return http.StatusBadRequest, "not_streaming"
	case errors.Is(err, pta.ErrBudgetInfeasible):
		return http.StatusUnprocessableEntity, "budget_infeasible"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, pta.ErrCanceled), errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "client_closed_request"
	}
	return http.StatusInternalServerError, "internal"
}

// writeError renders the uniform error envelope with the typed carriers'
// details attached.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := statusFor(err)
	body := errorWire{Status: status, Code: code, Message: err.Error()}
	var inf *pta.InfeasibleBudgetError
	if errors.As(err, &inf) {
		body.CMin = inf.CMin
	}
	var unk *pta.UnknownStrategyError
	if errors.As(err, &unk) {
		body.Known = unk.Known
	}
	var adm admissionError
	if errors.As(err, &adm) {
		body.EstimatedCells = adm.cells
		body.MaxCells = adm.budget
		// One second is enough for the in-flight burst that tripped the
		// budget to clear; clients with real backoff ignore it anyway.
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	if status >= 500 || status == statusClientClosedRequest {
		s.log.Printf("serve: %s %s: %d %s: %v", r.Method, r.URL.Path, status, code, err)
	}
	writeJSON(w, status, map[string]any{"error": body})
}

// writeJSON renders one response body through encoding/json; the cold
// endpoints (errors, stats, strategies) keep the reflective encoder, the
// compress hot paths go through writePooledJSON instead.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the status line is out; encoding errors only affect the body
}

// writePooledJSON renders one response body into a pooled buffer filled by
// encode (appendResult and friends) and writes it in a single Write call,
// with the trailing newline json.Encoder clients already expect. The buffer
// returns to the pool unless it grew beyond codecBufMax.
func writePooledJSON(w http.ResponseWriter, status int, encode func(b []byte) []byte) {
	bp := codecBufPool.Get().(*[]byte)
	b := append(encode((*bp)[:0]), '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
	if cap(b) <= codecBufMax {
		*bp = b[:0]
		codecBufPool.Put(bp)
	}
}
