package serve

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/pta"
)

// Cache dispositions reported per result.
const (
	cacheHit    = "hit"
	cacheMiss   = "miss"
	cacheBypass = "bypass"
)

// statusClientClosedRequest is the de-facto status for a client that went
// away mid-evaluation (nginx's 499); nothing reads the response, but logs
// and stats distinguish it from a server-side deadline.
const statusClientClosedRequest = 499

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.nHealth.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	s.nStrategies.Add(1)
	infos := pta.Describe()
	out := make([]map[string]any, len(infos))
	for i, info := range infos {
		class, cacheable := pta.DPClass(info.Name)
		entry := map[string]any{
			"name":        info.Name,
			"description": info.Description,
			"size":        info.Size,
			"error":       info.Error,
			"streaming":   info.Streaming,
		}
		if cacheable {
			entry["matrix_cache_class"] = class
		}
		out[i] = entry
	}
	// Every exact DP strategy (the matrix-cacheable ones) accepts a pinned
	// row-fill algorithm via the plan's fill_algo field; results are
	// identical per value, so the list is global rather than per entry.
	writeJSON(w, http.StatusOK, map[string]any{
		"strategies": out,
		"fill_algos": pta.FillAlgoNames(),
	})
}

// handleMetrics serves the Prometheus text-format exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.metrics.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.nStats.Add(1)
	uptime := time.Since(s.started).Seconds()
	body := map[string]any{
		"uptime_seconds": uptime,
		"uptime_s":       uptime,
		"requests": map[string]int64{
			"compress":      s.nCompress.Load(),
			"compress_many": s.nCompressMany.Load(),
			"strategies":    s.nStrategies.Load(),
			"stats":         s.nStats.Load(),
			"healthz":       s.nHealth.Load(),
			"matrix":        s.nMatrix.Load(),
		},
		"compressions":    s.compressions.Load(),
		"dp_cells_filled": s.metrics.dpCells.Value(),
		"inflight":        len(s.inflight),
		"cache":           s.cache.stats(),
		"peer":            s.peers.stats(),
		"admission": map[string]any{
			"max_cells": s.cfg.AdmissionMaxCells,
			"policy":    cmp.Or(s.cfg.AdmissionPolicy, AdmissionReject),
			"rejected":  s.metrics.admissionRejected.Value(),
			"queued":    s.metrics.admissionQueued.Value(),
		},
		"fill": map[string]any{
			"requests":          s.fillRequestCounts(),
			"coverage_observed": s.metrics.fillCoverage.Count(),
		},
	}
	if s.store != nil {
		body["spill"] = s.store.stats()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMatrix serves one content-addressed spill blob to a peer worker:
// the local spill file verbatim when present, otherwise the resident
// in-memory set encoded on the fly. The in-memory path takes the entry
// semaphore — a fetch that lands while this worker is still filling the
// key waits for the fill instead of forcing the requester to duplicate it,
// which is what makes "exactly one cold fill tier-wide" hold under races.
// The requester validates everything (key, CRCs); serving is unauthenticated
// reads of content-addressed bytes.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	s.nMatrix.Add(1)
	hash := r.PathValue("hash")
	if len(hash) != 32 || !isHex(hash) {
		s.peers.serveMisses.Add(1)
		writeJSON(w, http.StatusNotFound, map[string]any{"error": errorWire{
			Status: http.StatusNotFound, Code: "matrix_not_found", Message: "not a spill content address"}})
		return
	}
	if s.store != nil {
		if data := s.store.readBlob(hash); data != nil {
			s.writeMatrixBlob(w, data)
			return
		}
	}
	if e := s.cache.lookupByHash(hash); e != nil {
		select {
		case e.sem <- struct{}{}:
		case <-r.Context().Done():
			s.peers.serveMisses.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": errorWire{
				Status: http.StatusServiceUnavailable, Code: "matrix_busy", Message: "fill in flight"}})
			return
		}
		var data []byte
		if e.set != nil {
			if snap, err := e.set.Snapshot(); err == nil && snap.Filled > 0 {
				data = encodeSnapshot(e.key, snap)
			}
		}
		<-e.sem
		if data != nil {
			s.writeMatrixBlob(w, data)
			return
		}
	}
	s.peers.serveMisses.Add(1)
	writeJSON(w, http.StatusNotFound, map[string]any{"error": errorWire{
		Status: http.StatusNotFound, Code: "matrix_not_found", Message: "no warm matrices for this address"}})
}

func (s *Server) writeMatrixBlob(w http.ResponseWriter, data []byte) {
	s.peers.serveHits.Add(1)
	s.peers.serveBytes.Add(int64(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	s.nCompress.Add(1)
	var req compressRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	plan, err := resolvePlan(req.Plan)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	// The series decodes before any slot is taken: admission must price the
	// request (and possibly reject it) without consuming in-flight capacity.
	series, err := decodeSeries(req.Series)
	if err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	if s.cfg.AdmissionMaxCells > 0 {
		release, err := s.admit(ctx, estimateCells(series.Len(), req.Plan, plan))
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		defer release()
	}
	if !s.acquireSlot(ctx) {
		s.writeError(w, r, ctx.Err())
		return
	}
	defer s.releaseSlot()
	res, disposition, err := s.compressOne(ctx, series, "", req.Plan, plan)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writePooledJSON(w, http.StatusOK, func(b []byte) []byte {
		return appendResult(b, res, disposition)
	})
}

func (s *Server) handleCompressMany(w http.ResponseWriter, r *http.Request) {
	s.nCompressMany.Add(1)
	var req compressManyRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	if len(req.Plans) == 0 {
		s.writeError(w, r, badRequest(errors.New("need at least one plan")))
		return
	}
	series, err := decodeSeries(req.Series)
	if err != nil {
		s.writeError(w, r, badRequest(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// Admission prices the whole request — the sum of per-plan worst cases
	// — before any slot is taken. Plans resolve again in the evaluation
	// loop; that duplication keeps the admission-disabled hot path free of
	// the pricing pass entirely.
	if s.cfg.AdmissionMaxCells > 0 {
		var cells int64
		for _, pw := range req.Plans {
			plan, err := resolvePlan(pw)
			if err != nil {
				s.writeError(w, r, err)
				return
			}
			cells += estimateCells(series.Len(), pw, plan)
		}
		release, err := s.admit(ctx, cells)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		defer release()
	}
	if !s.acquireSlot(ctx) {
		s.writeError(w, r, ctx.Err())
		return
	}
	defer s.releaseSlot()

	// The series fingerprints once; each plan resolves its own cache key
	// (strategies of one DP class share an entry, so a c= and an eps= plan
	// of the same request amortize through the same warm matrices — the
	// cross-request generalization of Engine.CompressMany). Non-cacheable
	// plans fall through to one Engine.CompressMany call, which amortizes
	// whatever the engine can.
	fingerprint := pta.Fingerprint(series)
	type resultEntry struct {
		res         *pta.Result
		disposition string
	}
	results := make([]resultEntry, len(req.Plans))
	var enginePlans []pta.Plan
	var engineIdx []int
	for i, pw := range req.Plans {
		plan, err := resolvePlan(pw)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		if _, cacheable := s.cacheKeyFor(fingerprint, pw); !cacheable {
			enginePlans = append(enginePlans, plan)
			engineIdx = append(engineIdx, i)
			continue
		}
		res, disposition, err := s.compressOne(ctx, series, fingerprint, pw, plan)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		results[i] = resultEntry{res, disposition}
	}
	if len(enginePlans) > 0 {
		engineResults, err := s.engine.CompressMany(ctx, series, enginePlans)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.compressions.Add(int64(len(engineResults)))
		for j, res := range engineResults {
			results[engineIdx[j]] = resultEntry{res, cacheBypass}
		}
	}
	writePooledJSON(w, http.StatusOK, func(b []byte) []byte {
		b = append(b, `{"results":[`...)
		for i, e := range results {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendResult(b, e.res, e.disposition)
		}
		return append(b, `]}`...)
	})
}

// effectiveWeights mirrors the engine's planOptions semantics: a plan
// without weights inherits the engine-level defaults, so cached and engine
// evaluations always use the same vector.
func (s *Server) effectiveWeights(pw planWire) []float64 {
	if pw.Weights != nil {
		return pw.Weights
	}
	return s.defaultWeights
}

// cacheKeyFor reports the matrix-cache key of one plan, and whether the plan
// is cacheable at all: the strategy must be an exact DP and the plan must
// not carry options the DP ignores anyway except weights (which are part of
// the key, engine defaults included) and a pinned fill algorithm (which
// selects a per-algo DP class, so A/B arms never share entries).
func (s *Server) cacheKeyFor(fingerprint string, pw planWire) (string, bool) {
	if fingerprint == "" {
		return "", false
	}
	fill, err := pta.ParseFillAlgo(pw.FillAlgo)
	if err != nil {
		return "", false
	}
	class, ok := pta.DPClassWith(pw.Strategy, fill)
	if !ok || pw.ReadAhead != 0 {
		return "", false
	}
	return cacheKey(fingerprint, class, s.effectiveWeights(pw)), true
}

// resolvePlan validates one wire plan into an engine plan.
func resolvePlan(pw planWire) (pta.Plan, error) {
	if pw.Strategy == "" {
		return pta.Plan{}, badRequest(errors.New("plan: missing strategy"))
	}
	b, err := pta.ParseBudget(pw.Budget)
	if err != nil {
		return pta.Plan{}, badRequest(err)
	}
	fill, err := pta.ParseFillAlgo(pw.FillAlgo)
	if err != nil {
		return pta.Plan{}, badRequest(fmt.Errorf("plan: %w", err))
	}
	plan := pta.Plan{Strategy: pw.Strategy, Budget: b}
	if pw.Weights != nil || pw.ReadAhead != 0 || fill != pta.FillAuto {
		plan.Options = &pta.Options{Weights: pw.Weights, ReadAhead: pw.ReadAhead, FillAlgo: fill}
	}
	return plan, nil
}

// compressOne evaluates one resolved plan over the series, through the
// matrix cache when the plan is cacheable and through the engine otherwise.
// fingerprint may be passed in to amortize hashing across plans; ""
// computes it here.
func (s *Server) compressOne(ctx context.Context, series *pta.Series, fingerprint string, pw planWire, plan pta.Plan) (*pta.Result, string, error) {
	s.compressions.Add(1)

	if fingerprint == "" {
		if _, ok := pta.DPClass(pw.Strategy); ok && pw.ReadAhead == 0 {
			fingerprint = pta.Fingerprint(series)
		}
	}
	fill, _ := pta.ParseFillAlgo(pw.FillAlgo) // validated by resolvePlan
	key, cacheable := s.cacheKeyFor(fingerprint, pw)
	if cacheable {
		// The cache path answers through MatrixSet, which never consults
		// Supports; keep the engine's (strategy, budget kind) contract by
		// routing unsupported kinds to the engine's typed error.
		if ev, ok := pta.Lookup(pw.Strategy); !ok || !ev.Supports(plan.Budget.Kind()) {
			cacheable = false
		}
	}
	if !cacheable {
		res, err := s.engine.Compress(ctx, series, plan)
		return res, cacheBypass, err
	}

	opts := pta.Options{Weights: s.effectiveWeights(pw), FillAlgo: fill}
	// Cold builds observe the kernel's certified monotone coverage; every
	// answered budget counts against the set's resolved fill algorithm
	// (ptafill_* family).
	build := func() (*pta.MatrixSet, error) {
		set, err := pta.NewMatrixSet(series, pw.Strategy, opts)
		if err == nil {
			s.metrics.fillCoverage.Observe(set.MonotoneCoverage())
		}
		return set, err
	}
	var res *pta.Result
	var err error
	var disposition string
	for attempt := 0; ; attempt++ {
		entry, hit := s.cache.acquire(key)
		disposition = cacheMiss
		if hit {
			disposition = cacheHit
		}
		// On an in-memory miss the build walks the warm-tier lookup order —
		// local spill, then peers in rendezvous order — before paying the
		// cold DP fill. Spill and peer restores answer with a backtrack, no
		// fill; the client sees them as cache hits.
		cold := false
		start := time.Now()
		res, err = entry.compress(ctx, s.cache,
			func() (*pta.MatrixSet, error) {
				if s.store != nil {
					if set := s.store.load(key, series, pw.Strategy, opts); set != nil {
						entry.spilled.Store(int64(set.Rows())) // disk already has these rows
						return set, nil
					}
				}
				if s.peers.active() {
					if set := s.peerWarm(ctx, entry, key, series, pw.Strategy, opts); set != nil {
						return set, nil
					}
				}
				cold = true
				return build()
			},
			func(set *pta.MatrixSet) (*pta.Result, error) {
				res, err := set.Compress(ctx, plan.Budget)
				if err != nil {
					return res, err
				}
				s.metrics.fillServed(set.FillAlgo())
				// The set's Stats.Cells is cumulative; the delta since this
				// entry's last evaluation is this worker's own fill work.
				if delta := res.Stats.Cells - entry.cells.Swap(res.Stats.Cells); delta > 0 {
					s.metrics.dpCells.Add(uint64(delta))
				}
				// Spill under the entry semaphore whenever this evaluation
				// deepened the matrices past what is already on disk.
				if s.store != nil {
					if rows := int64(set.Rows()); rows > entry.spilled.Load() && s.store.store(key, set) {
						entry.spilled.Store(rows)
					}
				}
				return res, err
			})
		if err == nil {
			if !hit && !cold {
				disposition = cacheHit // warmed from spill or a peer
			} else if cold {
				s.metrics.fillSeconds.Observe(time.Since(start).Seconds())
			}
			break
		}
		// A lazily restored set whose backing spill file went bad mid-life
		// (row CRC mismatch, truncation under the mapping) surfaces as a
		// WarmLostError. Unmap-and-remove the file, drop the poisoned
		// entry, and rebuild cold — once.
		var lost *pta.WarmLostError
		if attempt == 0 && errors.As(err, &lost) {
			s.cache.discard(entry)
			if s.store != nil {
				s.store.discardCorrupt(key)
			}
			continue
		}
		return nil, disposition, err
	}
	// Stamp the requested strategy: a ptac entry may serve a ptae plan of
	// the same class.
	res.Strategy = pw.Strategy
	return res, disposition, nil
}

// peerWarm tries to warm one entry from the peer tier: fetch the blob
// (already fully validated by the tier), write it through the local spill
// so the warmth survives this worker's own restarts, and restore — lazily
// via the freshly adopted spill file when the write-through landed, eagerly
// from the decoded snapshot otherwise (including the spill-less
// configuration). nil means no peer had the key; the caller fills cold.
func (s *Server) peerWarm(ctx context.Context, entry *cacheEntry, key string, series *pta.Series, strategy string, opts pta.Options) *pta.MatrixSet {
	data, snap := s.peers.fetch(ctx, entry.hash, key)
	if snap == nil {
		return nil
	}
	if s.store != nil && s.store.adopt(key, data) {
		entry.spilled.Store(int64(snap.Filled))
		if set := s.store.load(key, series, strategy, opts); set != nil {
			return set
		}
	}
	set, err := pta.RestoreMatrixSet(series, strategy, opts, snap)
	if err != nil {
		return nil
	}
	return set
}

// badRequestError marks client-side validation failures for statusFor.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return badRequestError{err: err} }

// statusFor maps an error onto (HTTP status, machine-readable code).
func statusFor(err error) (int, string) {
	var br badRequestError
	var adm admissionError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest, "bad_request"
	case errors.As(err, &adm):
		return http.StatusTooManyRequests, "admission_rejected"
	case errors.Is(err, pta.ErrUnknownStrategy):
		return http.StatusBadRequest, "unknown_strategy"
	case errors.Is(err, pta.ErrBudgetKind):
		return http.StatusBadRequest, "unsupported_budget_kind"
	case errors.Is(err, pta.ErrSeriesShape):
		return http.StatusBadRequest, "series_shape"
	case errors.Is(err, pta.ErrNotStreaming):
		return http.StatusBadRequest, "not_streaming"
	case errors.Is(err, pta.ErrBudgetInfeasible):
		return http.StatusUnprocessableEntity, "budget_infeasible"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, pta.ErrCanceled), errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "client_closed_request"
	}
	return http.StatusInternalServerError, "internal"
}

// writeError renders the uniform error envelope with the typed carriers'
// details attached.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := statusFor(err)
	body := errorWire{Status: status, Code: code, Message: err.Error()}
	var inf *pta.InfeasibleBudgetError
	if errors.As(err, &inf) {
		body.CMin = inf.CMin
	}
	var unk *pta.UnknownStrategyError
	if errors.As(err, &unk) {
		body.Known = unk.Known
	}
	var adm admissionError
	if errors.As(err, &adm) {
		body.EstimatedCells = adm.cells
		body.MaxCells = adm.budget
		// One second is enough for the in-flight burst that tripped the
		// budget to clear; clients with real backoff ignore it anyway.
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	if status >= 500 || status == statusClientClosedRequest {
		s.log.Printf("serve: %s %s: %d %s: %v", r.Method, r.URL.Path, status, code, err)
	}
	writeJSON(w, status, map[string]any{"error": body})
}

// writeJSON renders one response body through encoding/json; the cold
// endpoints (errors, stats, strategies) keep the reflective encoder, the
// compress hot paths go through writePooledJSON instead.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the status line is out; encoding errors only affect the body
}

// writePooledJSON renders one response body into a pooled buffer filled by
// encode (appendResult and friends) and writes it in a single Write call,
// with the trailing newline json.Encoder clients already expect. The buffer
// returns to the pool unless it grew beyond codecBufMax.
func writePooledJSON(w http.ResponseWriter, status int, encode func(b []byte) []byte) {
	bp := codecBufPool.Get().(*[]byte)
	b := append(encode((*bp)[:0]), '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
	if cap(b) <= codecBufMax {
		*bp = b[:0]
		codecBufPool.Put(bp)
	}
}
