package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/pta"
)

// cacheStore is the persistent tier under the in-memory matrix cache: warm
// pta.MatrixSet snapshots spilled to one file per cache key, so a restarted
// worker answers previously-warm series as cache hits without refilling a
// single DP cell. Files are keyed by the full cache key (content
// fingerprint, DP class, weights), hashed into the file name — like the
// in-memory cache, invalidation is by displacement only: a changed series
// fingerprints to a new key and the stale file is simply never read again.
//
// The on-disk format is versioned and checksummed; load treats any
// mismatch (magic, version, key, shape, CRC) as a cold miss, removes the
// bad file and lets the caller rebuild. Writes go through a temp file +
// rename so a crash mid-write never leaves a torn file under a live key.
type cacheStore struct {
	dir      string
	maxBytes int64

	loads, stores, errors atomic.Int64
}

const (
	spillMagic   = "PTAM"
	spillVersion = uint32(1)
	spillSuffix  = ".ptam"
)

// newCacheStore opens (creating if needed) the spill directory. maxBytes
// bounds one spill file (0 = 64 MiB); oversized snapshots stay memory-only.
func newCacheStore(dir string, maxBytes int64) (*cacheStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	if maxBytes == 0 {
		maxBytes = 64 << 20
	}
	return &cacheStore{dir: dir, maxBytes: maxBytes}, nil
}

// path maps a cache key to its spill file. The key embeds a sha256 content
// fingerprint already; hashing the whole key keeps file names short and
// filesystem-safe regardless of weight vectors.
func (cs *cacheStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(cs.dir, hex.EncodeToString(sum[:16])+spillSuffix)
}

// store spills one warm set's snapshot, reporting whether a file was
// written. Failures only count errors — the in-memory entry stays valid.
func (cs *cacheStore) store(key string, set *pta.MatrixSet) bool {
	snap := set.Snapshot()
	if snap.Filled == 0 {
		return false
	}
	data := encodeSnapshot(key, snap)
	if int64(len(data)) > cs.maxBytes {
		return false
	}
	tmp, err := os.CreateTemp(cs.dir, "spill-*")
	if err != nil {
		cs.errors.Add(1)
		return false
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), cs.path(key)) != nil {
		os.Remove(tmp.Name())
		cs.errors.Add(1)
		return false
	}
	cs.stores.Add(1)
	return true
}

// load restores a warm set for key over the series, or nil on any miss:
// no file, corrupt file, stale version, or a snapshot the restore layer
// rejects. Bad files are removed so the next miss goes straight to a cold
// build instead of re-parsing garbage.
func (cs *cacheStore) load(key string, series *pta.Series, strategy string, opts pta.Options) *pta.MatrixSet {
	path := cs.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			cs.errors.Add(1)
		}
		return nil
	}
	snap, err := decodeSnapshot(data, key)
	if err != nil {
		cs.errors.Add(1)
		os.Remove(path)
		return nil
	}
	set, err := pta.RestoreMatrixSet(series, strategy, opts, snap)
	if err != nil {
		cs.errors.Add(1)
		os.Remove(path)
		return nil
	}
	cs.loads.Add(1)
	return set
}

// spillStats is the /v1/stats snapshot of the persistent tier.
type spillStats struct {
	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`
	Errors int64 `json:"errors"`
}

func (cs *cacheStore) stats() spillStats {
	return spillStats{Loads: cs.loads.Load(), Stores: cs.stores.Load(), Errors: cs.errors.Load()}
}

// encodeSnapshot renders the versioned binary spill format: magic, version,
// the full cache key (verified on load so a hash-collision file can never
// serve the wrong series), the snapshot fields in fixed little-endian
// layout, and a trailing CRC32 over everything before it.
func encodeSnapshot(key string, snap *pta.MatrixSnapshot) []byte {
	size := 4 + 4 + // magic, version
		4 + len(key) + 4 + len(snap.Strategy) + 4 + len(snap.Class) +
		8 + 8 + 1 + 8 + // n, filled, hasMax, bound
		8*len(snap.RowErr) + 8*len(snap.LastE) + 4*len(snap.Splits) +
		4 // crc
	b := make([]byte, 0, size)
	b = append(b, spillMagic...)
	b = binary.LittleEndian.AppendUint32(b, spillVersion)
	b = appendSpillString(b, key)
	b = appendSpillString(b, snap.Strategy)
	b = appendSpillString(b, snap.Class)
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.N))
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.Filled))
	if snap.HasMax {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(snap.Bound))
	for _, v := range snap.RowErr {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, v := range snap.LastE {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, v := range snap.Splits {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func appendSpillString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// decodeSnapshot parses and fully validates one spill file for key. Deep
// semantic validation (split ranges, class match) happens again in
// RestoreMatrixSet; this layer guards framing: magic, version, key
// equality, declared lengths against the actual payload, and the CRC.
func decodeSnapshot(data []byte, key string) (*pta.MatrixSnapshot, error) {
	if len(data) < 4+4+4 {
		return nil, fmt.Errorf("spill: short file (%d bytes)", len(data))
	}
	crcAt := len(data) - 4
	if got, want := crc32.ChecksumIEEE(data[:crcAt]), binary.LittleEndian.Uint32(data[crcAt:]); got != want {
		return nil, fmt.Errorf("spill: CRC mismatch")
	}
	d := spillReader{data: data[:crcAt]}
	if string(d.bytes(4)) != spillMagic {
		return nil, fmt.Errorf("spill: bad magic")
	}
	if v := d.u32(); v != spillVersion {
		return nil, fmt.Errorf("spill: version %d, want %d", v, spillVersion)
	}
	if k := d.str(); k != key {
		return nil, fmt.Errorf("spill: key mismatch")
	}
	snap := &pta.MatrixSnapshot{Strategy: d.str(), Class: d.str()}
	n := d.u64()
	filled := d.u64()
	hasMax := d.bytes(1)
	bound := d.u64()
	// Bound the declared shape by the remaining payload before allocating.
	if d.err != nil || n > uint64(len(data)) || filled > n {
		return nil, fmt.Errorf("spill: implausible shape n=%d filled=%d", n, filled)
	}
	snap.N, snap.Filled = int(n), int(filled)
	snap.HasMax = len(hasMax) == 1 && hasMax[0] == 1
	snap.Bound = math.Float64frombits(bound)
	snap.RowErr = d.f64s(snap.Filled)
	snap.LastE = d.f64s(snap.N + 1)
	snap.Splits = d.i32s(snap.Filled * (snap.N + 1))
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != d.off {
		return nil, fmt.Errorf("spill: %d trailing bytes", len(d.data)-d.off)
	}
	return snap, nil
}

// spillReader walks the decode cursor, latching the first framing error.
type spillReader struct {
	data []byte
	off  int
	err  error
}

func (d *spillReader) bytes(n int) []byte {
	if d.err != nil || d.off+n > len(d.data) {
		if d.err == nil {
			d.err = fmt.Errorf("spill: truncated at byte %d", d.off)
		}
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *spillReader) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *spillReader) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *spillReader) str() string {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.data)) {
		if d.err == nil {
			d.err = fmt.Errorf("spill: implausible string length %d", n)
		}
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *spillReader) f64s(n int) []float64 {
	b := d.bytes(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (d *spillReader) i32s(n int) []int32 {
	b := d.bytes(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
