package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/pta"
)

// cacheStore is the persistent tier under the in-memory matrix cache: warm
// pta.MatrixSet snapshots spilled to one file per cache key, so a restarted
// worker answers previously-warm series as cache hits without refilling a
// single DP cell. Files are keyed by the full cache key (content
// fingerprint, DP class, weights), hashed into the file name — like the
// in-memory cache, invalidation is by displacement only: a changed series
// fingerprints to a new key and the stale file is simply never read again.
// The same content-addressed blobs travel between workers over GET
// /v1/matrix/{hash} (the peer warm tier); adopt writes a fetched blob
// through to disk so the next restart warms locally.
//
// The on-disk format is versioned and checksummed in two granularities: an
// eagerly validated header (identity, shapes, row errors, resume row) and
// one CRC per split-point row, so load can hand the row region to an
// mmap-backed lazy view and each row's integrity is paid on first touch
// instead of at load time. Header-level mismatches (magic, version, key,
// shape, CRC, truncated row region) are a cold miss: the bad file is
// removed and the caller rebuilds. Row-level corruption surfaces later as a
// pta.WarmLostError from the evaluation; the serve layer then calls
// discardCorrupt and retries cold. Writes go through a temp file + rename
// so a crash mid-write never leaves a torn file under a live key.
type cacheStore struct {
	dir      string
	maxBytes int64

	loads, stores, errors atomic.Int64

	// views tracks the live lazy view per spill path so corrupt-file
	// removal can unmap before unlinking (satellite: a concurrently mmap'd
	// reader must observe a clean error, never a stale mapping or SIGBUS
	// after the file is replaced). Superseded views (a deepened re-spill
	// renames a new inode over the path) stay valid over their old inode
	// and are unmapped by their GC cleanup.
	viewsMu sync.Mutex
	views   map[string]*slabView
}

const (
	spillMagic    = "PTAM"
	spillVersion  = uint32(2)
	spillSuffix   = ".ptam"
	spillPreamble = 12 // magic + version + headerLen
)

// spillRowSize is the on-disk footprint of one split row: n+1 little-endian
// uint32 cells plus a CRC32 over them.
func spillRowSize(n int) int { return (n+1)*4 + 4 }

// newCacheStore opens (creating if needed) the spill directory. maxBytes
// bounds one spill file (0 = 64 MiB); oversized snapshots stay memory-only.
func newCacheStore(dir string, maxBytes int64) (*cacheStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	if maxBytes == 0 {
		maxBytes = 64 << 20
	}
	return &cacheStore{dir: dir, maxBytes: maxBytes, views: make(map[string]*slabView)}, nil
}

// spillHash maps a cache key to its content address: the hex of the first
// 16 sha256 bytes. It names the spill file and the /v1/matrix/{hash} peer
// resource. The key embeds a sha256 content fingerprint already; hashing
// the whole key keeps names short and filesystem-safe regardless of weight
// vectors.
func spillHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

// path maps a cache key to its spill file.
func (cs *cacheStore) path(key string) string { return cs.pathForHash(spillHash(key)) }

func (cs *cacheStore) pathForHash(hash string) string {
	return filepath.Join(cs.dir, hash+spillSuffix)
}

// store spills one warm set's snapshot, reporting whether a file was
// written. Failures only count errors — the in-memory entry stays valid.
func (cs *cacheStore) store(key string, set *pta.MatrixSet) bool {
	snap, err := set.Snapshot()
	if err != nil {
		cs.errors.Add(1)
		return false
	}
	if snap.Filled == 0 {
		return false
	}
	data := encodeSnapshot(key, snap)
	if int64(len(data)) > cs.maxBytes {
		return false
	}
	return cs.writeBlob(key, data)
}

// adopt writes a peer-fetched, already-validated blob through to the local
// spill file, so the warmth survives this worker's own restarts too.
func (cs *cacheStore) adopt(key string, data []byte) bool {
	if int64(len(data)) > cs.maxBytes {
		return false
	}
	return cs.writeBlob(key, data)
}

func (cs *cacheStore) writeBlob(key string, data []byte) bool {
	tmp, err := os.CreateTemp(cs.dir, "spill-*")
	if err != nil {
		cs.errors.Add(1)
		return false
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), cs.path(key)) != nil {
		os.Remove(tmp.Name())
		cs.errors.Add(1)
		return false
	}
	cs.stores.Add(1)
	return true
}

// readBlob returns the raw spill bytes for a content hash, for the peer
// /v1/matrix endpoint. The requester validates; serving is a plain read.
func (cs *cacheStore) readBlob(hash string) []byte {
	data, err := os.ReadFile(cs.pathForHash(hash))
	if err != nil {
		return nil
	}
	return data
}

// load restores a warm set for key over the series, or nil on any miss: no
// file, or a file whose header fails validation (corrupt, stale version,
// shape mismatch). The restored set is lazy: split rows stay behind an
// mmap'd view (read-at fallback off unix) and materialize on first touch.
// Header-level bad files are removed so the next miss goes straight to a
// cold build instead of re-parsing garbage; row-level corruption is
// detected on touch and handled by discardCorrupt.
func (cs *cacheStore) load(key string, series *pta.Series, strategy string, opts pta.Options) *pta.MatrixSet {
	path := cs.path(key)
	snap, view, err := cs.openView(path, key)
	if err != nil {
		if !os.IsNotExist(err) {
			cs.errors.Add(1)
			cs.drop(path)
		}
		return nil
	}
	set, err := pta.RestoreMatrixSetLazy(series, strategy, opts, snap, view)
	if err != nil {
		view.invalidate()
		cs.errors.Add(1)
		cs.drop(path)
		return nil
	}
	cs.viewsMu.Lock()
	cs.views[path] = view
	cs.viewsMu.Unlock()
	cs.loads.Add(1)
	return set
}

// discardCorrupt removes key's spill file after its lazy view failed
// mid-life (row CRC mismatch, truncation under the mapping): the view is
// invalidated (unmapped) before the unlink and the failure is counted. The
// caller rebuilds cold.
func (cs *cacheStore) discardCorrupt(key string) {
	cs.errors.Add(1)
	cs.drop(cs.path(key))
}

// drop invalidates any live view over path before removing the file —
// unmap-before-delete, so a concurrent reader of the old mapping gets a
// clean "unmapped" error instead of touching freed pages.
func (cs *cacheStore) drop(path string) {
	cs.viewsMu.Lock()
	if v := cs.views[path]; v != nil {
		delete(cs.views, path)
		v.invalidate()
	} else {
		cs.viewsMu.Unlock()
		os.Remove(path)
		return
	}
	cs.viewsMu.Unlock()
	os.Remove(path)
}

// openView opens and header-validates one spill file, returning the eager
// scalar state (Splits nil) and the lazy row view. Any error means the file
// is unusable as a whole; the caller counts and removes it.
func (cs *cacheStore) openView(path, key string) (*pta.MatrixSnapshot, *slabView, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	size := fi.Size()
	if size < spillPreamble+4 || size > cs.maxBytes {
		f.Close()
		return nil, nil, fmt.Errorf("spill: implausible file size %d", size)
	}
	pre := make([]byte, spillPreamble)
	if _, err := f.ReadAt(pre, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("spill: reading preamble: %w", err)
	}
	hl := int64(binary.LittleEndian.Uint32(pre[8:]))
	if hl < spillPreamble+4 || hl > size {
		f.Close()
		return nil, nil, fmt.Errorf("spill: implausible header length %d", hl)
	}
	header := make([]byte, hl)
	if _, err := f.ReadAt(header, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("spill: reading header: %w", err)
	}
	snap, err := parseSpillHeader(header, key)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if want := hl + int64(snap.Filled)*int64(spillRowSize(snap.N)); want != size {
		f.Close()
		return nil, nil, fmt.Errorf("spill: file size %d, want %d for n=%d filled=%d", size, want, snap.N, snap.Filled)
	}
	return snap, newSlabView(f, int(size), int(hl), snap.N, snap.Filled), nil
}

// spillStats is the /v1/stats snapshot of the persistent tier.
type spillStats struct {
	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`
	Errors int64 `json:"errors"`
}

func (cs *cacheStore) stats() spillStats {
	return spillStats{Loads: cs.loads.Load(), Stores: cs.stores.Load(), Errors: cs.errors.Load()}
}

// encodeSnapshot renders the versioned binary spill format, v2: an eagerly
// validated header — magic, version, total header length, the full cache
// key (verified on load so a hash-collision file can never serve the wrong
// series), the scalar snapshot fields and the per-row errors and resume row
// in fixed little-endian layout, sealed by a CRC32 — followed by one
// section per split row, each sealed by its own CRC32 so a lazy view can
// validate exactly the rows it materializes. The encoding is deterministic:
// equal snapshots produce byte-identical blobs, which is what makes spill
// files content-addressed peer resources.
func encodeSnapshot(key string, snap *pta.MatrixSnapshot) []byte {
	cols := snap.N + 1
	headerLen := spillPreamble +
		4 + len(key) + 4 + len(snap.Strategy) + 4 + len(snap.Class) +
		8 + 8 + 1 + 8 + // n, filled, hasMax, bound
		8*len(snap.RowErr) + 8*len(snap.LastE) +
		4 // header crc
	b := make([]byte, 0, headerLen+snap.Filled*spillRowSize(snap.N))
	b = append(b, spillMagic...)
	b = binary.LittleEndian.AppendUint32(b, spillVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(headerLen))
	b = appendSpillString(b, key)
	b = appendSpillString(b, snap.Strategy)
	b = appendSpillString(b, snap.Class)
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.N))
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.Filled))
	if snap.HasMax {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(snap.Bound))
	for _, v := range snap.RowErr {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, v := range snap.LastE {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	for k := 0; k < snap.Filled; k++ {
		start := len(b)
		for _, v := range snap.Splits[k*cols : (k+1)*cols] {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
	}
	return b
}

func appendSpillString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// parseSpillHeader validates one header section (header[0:headerLen]) for
// key and returns the snapshot with Splits nil. It guards framing: magic,
// version, key equality, declared lengths against the actual payload, and
// the header CRC; split rows are validated separately (eagerly by
// decodeSnapshot, lazily by slabView).
func parseSpillHeader(header []byte, key string) (*pta.MatrixSnapshot, error) {
	if len(header) < spillPreamble+4 {
		return nil, fmt.Errorf("spill: short header (%d bytes)", len(header))
	}
	crcAt := len(header) - 4
	if got, want := crc32.ChecksumIEEE(header[:crcAt]), binary.LittleEndian.Uint32(header[crcAt:]); got != want {
		return nil, fmt.Errorf("spill: header CRC mismatch")
	}
	d := spillReader{data: header[:crcAt]}
	if string(d.bytes(4)) != spillMagic {
		return nil, fmt.Errorf("spill: bad magic")
	}
	if v := d.u32(); v != spillVersion {
		return nil, fmt.Errorf("spill: version %d, want %d", v, spillVersion)
	}
	if hl := d.u32(); int(hl) != len(header) {
		return nil, fmt.Errorf("spill: header length %d, have %d bytes", hl, len(header))
	}
	if k := d.str(); k != key {
		return nil, fmt.Errorf("spill: key mismatch")
	}
	snap := &pta.MatrixSnapshot{Strategy: d.str(), Class: d.str()}
	n := d.u64()
	filled := d.u64()
	hasMax := d.bytes(1)
	bound := d.u64()
	// Bound the declared shape by the remaining payload before allocating:
	// the header carries filled row errors and n+1 resume cells itself.
	if d.err != nil || filled > n || n > uint64(len(header)) {
		return nil, fmt.Errorf("spill: implausible shape n=%d filled=%d", n, filled)
	}
	snap.N, snap.Filled = int(n), int(filled)
	snap.HasMax = len(hasMax) == 1 && hasMax[0] == 1
	snap.Bound = math.Float64frombits(bound)
	snap.RowErr = d.f64s(snap.Filled)
	snap.LastE = d.f64s(snap.N + 1)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != d.off {
		return nil, fmt.Errorf("spill: %d trailing header bytes", len(d.data)-d.off)
	}
	return snap, nil
}

// decodeSnapshot parses and fully validates one spill blob for key — the
// header plus every row CRC — materializing the split rows eagerly. It is
// the validation gate for peer-fetched blobs (and the memory-only restore
// path when no spill dir is configured); local disk loads go through
// openView instead and leave rows lazy.
func decodeSnapshot(data []byte, key string) (*pta.MatrixSnapshot, error) {
	if len(data) < spillPreamble+4 {
		return nil, fmt.Errorf("spill: short file (%d bytes)", len(data))
	}
	hl := int(binary.LittleEndian.Uint32(data[8:spillPreamble]))
	if hl < spillPreamble+4 || hl > len(data) {
		return nil, fmt.Errorf("spill: implausible header length %d", hl)
	}
	snap, err := parseSpillHeader(data[:hl], key)
	if err != nil {
		return nil, err
	}
	cols := snap.N + 1
	rowSize := spillRowSize(snap.N)
	if want := hl + snap.Filled*rowSize; want != len(data) {
		return nil, fmt.Errorf("spill: %d bytes, want %d for n=%d filled=%d", len(data), want, snap.N, snap.Filled)
	}
	snap.Splits = make([]int32, snap.Filled*cols)
	for k := 0; k < snap.Filled; k++ {
		row := data[hl+k*rowSize : hl+(k+1)*rowSize]
		body := row[:len(row)-4]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(row[len(row)-4:]) {
			return nil, fmt.Errorf("spill: row %d CRC mismatch", k+1)
		}
		out := snap.Splits[k*cols : (k+1)*cols]
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		}
	}
	return snap, nil
}

// spillReader walks the decode cursor, latching the first framing error.
type spillReader struct {
	data []byte
	off  int
	err  error
}

func (d *spillReader) bytes(n int) []byte {
	if d.err != nil || d.off+n > len(d.data) {
		if d.err == nil {
			d.err = fmt.Errorf("spill: truncated at byte %d", d.off)
		}
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *spillReader) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *spillReader) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *spillReader) str() string {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.data)) {
		if d.err == nil {
			d.err = fmt.Errorf("spill: implausible string length %d", n)
		}
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *spillReader) f64s(n int) []float64 {
	b := d.bytes(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
