//go:build unix

package serve

import (
	"os"
	"syscall"
)

// mapSpill maps one spill file read-only. A failed mmap (exotic
// filesystems, resource limits) is not an error — the caller keeps the
// descriptor and falls back to pread.
func mapSpill(f *os.File, size int) ([]byte, bool) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}

func unmapSpill(data []byte) { _ = syscall.Munmap(data) }
