package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/pta"
)

// Config parameterizes a Server. The zero value is usable: a serial private
// engine, 64 cache entries, a 30-second deadline, 8 MiB bodies and
// 2×GOMAXPROCS in-flight compressions.
type Config struct {
	// Engine is the compression session behind every request. nil builds a
	// private serial engine; cmd/ptaserve passes one configured with
	// WithParallelism and a shared scratch pool.
	Engine *pta.Engine
	// CacheEntries bounds the LRU matrix cache (0 = 64 entries).
	CacheEntries int
	// Timeout is the per-request deadline; requests may tighten it with
	// timeout_ms but never extend it (0 = 30s).
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxInflight bounds concurrently evaluated compressions; excess
	// requests wait for a slot until their deadline (0 = 2×GOMAXPROCS).
	MaxInflight int
	// DrainTimeout bounds how long a graceful shutdown waits for in-flight
	// requests before force-closing their connections (0 = 10s).
	DrainTimeout time.Duration
	// SpillDir enables the persistent matrix-cache tier: warm MatrixSet
	// snapshots are written to versioned binary files in this directory,
	// keyed by (fingerprint, DP class, weights), and reloaded on the first
	// miss after a restart ("" = disabled).
	SpillDir string
	// SpillMaxBytes bounds one spill file (0 = 64 MiB); larger snapshots
	// stay memory-only.
	SpillMaxBytes int64
	// Peers lists the base URLs of sibling workers forming a shared warm
	// tier: on a local miss (memory and spill both cold) the server fetches
	// the content-addressed spill blob from peers in rendezvous order over
	// GET /v1/matrix/{hash} before paying the DP fill. Empty = no peer
	// fetching. SetPeers changes the list at runtime.
	Peers []string
	// PeerTimeout bounds one peer fetch attempt (0 = 5s). A peer blocked on
	// an in-flight fill of the requested key holds the request until the
	// fill lands, so this also bounds how long a miss waits for a sibling's
	// fill instead of duplicating it.
	PeerTimeout time.Duration
	// AdmissionMaxCells bounds the estimated worst-case DP cost, in matrix
	// cells (≈ n·c for a size budget, n² for an error budget), one request
	// may demand (0 = unlimited). Over-budget requests get 429 with
	// Retry-After under the default reject policy, or serialize through a
	// single oversized slot under the queue policy — either way before they
	// consume an in-flight slot.
	AdmissionMaxCells int64
	// AdmissionPolicy is AdmissionReject ("" = reject) or AdmissionQueue;
	// see AdmissionMaxCells.
	AdmissionPolicy string
	// Logger receives one line per failed request (nil = standard logger).
	Logger *log.Logger
	// Metrics, when non-nil, is the obs.Registry the server registers its
	// metric families on, so one /metrics exposition can carry several
	// tiers (cmd/ptaserve shares it with the dist coordinator). nil builds
	// a private registry. At most one Server may use a given registry —
	// family names collide otherwise.
	Metrics *obs.Registry
}

// Server is the HTTP serving layer: a handler tree over one pta.Engine and
// one shared matrix cache. Create it with New, mount Handler, or run
// ListenAndServe for the full listener + graceful-shutdown lifecycle.
type Server struct {
	cfg            Config
	engine         *pta.Engine
	defaultWeights []float64 // the engine's WithWeights vector, folded into cache keys
	cache          *matrixCache
	store          *cacheStore // nil unless SpillDir is set
	peers          *peerTier   // always non-nil; inert until peers configured
	metrics        *serverMetrics
	mux            *http.ServeMux
	log            *log.Logger

	started   time.Time
	inflight  chan struct{}
	oversized chan struct{} // the single queue-policy slot; see admission.go

	// request counters by endpoint, surfaced on /v1/stats
	nCompress, nCompressMany, nStrategies, nStats, nHealth, nMatrix atomic.Int64
	compressions                                                    atomic.Int64
}

// New validates the config and builds a ready-to-mount server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		eng, err := pta.New()
		if err != nil {
			return nil, err
		}
		cfg.Engine = eng
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 64
	}
	if cfg.CacheEntries < 0 {
		return nil, fmt.Errorf("serve: CacheEntries %d, want >= 0 (0 = default 64)", cfg.CacheEntries)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("serve: Timeout %v, want >= 0 (0 = default 30s)", cfg.Timeout)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("serve: MaxBodyBytes %d, want >= 0 (0 = default 8 MiB)", cfg.MaxBodyBytes)
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("serve: MaxInflight %d, want >= 0 (0 = default 2×GOMAXPROCS)", cfg.MaxInflight)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.DrainTimeout < 0 {
		return nil, fmt.Errorf("serve: DrainTimeout %v, want >= 0 (0 = default 10s)", cfg.DrainTimeout)
	}
	if cfg.SpillMaxBytes < 0 {
		return nil, fmt.Errorf("serve: SpillMaxBytes %d, want >= 0 (0 = default 64 MiB)", cfg.SpillMaxBytes)
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = 5 * time.Second
	}
	if cfg.PeerTimeout < 0 {
		return nil, fmt.Errorf("serve: PeerTimeout %v, want >= 0 (0 = default 5s)", cfg.PeerTimeout)
	}
	if err := validatePeers(cfg.Peers); err != nil {
		return nil, err
	}
	if cfg.AdmissionMaxCells < 0 {
		return nil, fmt.Errorf("serve: AdmissionMaxCells %d, want >= 0 (0 = unlimited)", cfg.AdmissionMaxCells)
	}
	switch cfg.AdmissionPolicy {
	case "", AdmissionReject, AdmissionQueue:
	default:
		return nil, fmt.Errorf("serve: AdmissionPolicy %q, want %q or %q", cfg.AdmissionPolicy, AdmissionReject, AdmissionQueue)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	s := &Server{
		cfg:            cfg,
		engine:         cfg.Engine,
		defaultWeights: cfg.Engine.Weights(),
		cache:          newMatrixCache(cfg.CacheEntries),
		log:            cfg.Logger,
		started:        time.Now(),
		inflight:       make(chan struct{}, cfg.MaxInflight),
		oversized:      make(chan struct{}, 1),
	}
	if cfg.SpillDir != "" {
		store, err := newCacheStore(cfg.SpillDir, cfg.SpillMaxBytes)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	maxBlob := cfg.SpillMaxBytes
	if maxBlob == 0 {
		maxBlob = 64 << 20
	}
	s.peers = newPeerTier(cfg.PeerTimeout, maxBlob)
	s.peers.set(cfg.Peers)
	s.metrics = newServerMetrics(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/strategies", s.instrument("strategies", s.handleStrategies))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("POST /v1/compress", s.instrument("compress", s.handleCompress))
	s.mux.HandleFunc("POST /v1/compress/many", s.instrument("compress_many", s.handleCompressMany))
	s.mux.HandleFunc("GET /v1/matrix/{hash}", s.instrument("matrix", s.handleMatrix))
	return s, nil
}

// SetPeers replaces the peer list at runtime (validated like Config.Peers).
// Safe for concurrent use with request serving; in-flight fetches finish
// against the old list.
func (s *Server) SetPeers(peers []string) error {
	if err := validatePeers(peers); err != nil {
		return err
	}
	s.peers.set(peers)
	return nil
}

// Handler returns the route tree, for mounting under an outer mux or an
// httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until ctx is canceled, then drains
// in-flight requests gracefully. It returns nil on a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests and examples
// bind ":0" themselves to learn the port). Canceling ctx triggers a
// graceful shutdown: the listener closes but in-flight evaluations keep
// their own request contexts and get up to Config.DrainTimeout to drain —
// ctx is deliberately NOT the BaseContext, which would abort them instead.
// When the drain window expires, remaining connections are force-closed
// and Serve still returns nil: an operator-bounded drain is a clean exit.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			s.log.Printf("serve: drain window %v expired, force-closing", s.cfg.DrainTimeout)
			_ = srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// acquireSlot takes one in-flight token, waiting until the request deadline
// at most. It reports whether the slot was acquired.
func (s *Server) acquireSlot(ctx context.Context) bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *Server) releaseSlot() { <-s.inflight }

// requestContext applies the per-request deadline: the server timeout,
// tightened (never extended) by the request's timeout_ms.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		if req := time.Duration(timeoutMS) * time.Millisecond; req < d {
			d = req
		}
	}
	return context.WithTimeout(r.Context(), d)
}
