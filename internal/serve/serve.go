package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/pta"
)

// Config parameterizes a Server. The zero value is usable: a serial private
// engine, 64 cache entries, a 30-second deadline, 8 MiB bodies and
// 2×GOMAXPROCS in-flight compressions.
type Config struct {
	// Engine is the compression session behind every request. nil builds a
	// private serial engine; cmd/ptaserve passes one configured with
	// WithParallelism and a shared scratch pool.
	Engine *pta.Engine
	// CacheEntries bounds the LRU matrix cache (0 = 64 entries).
	CacheEntries int
	// Timeout is the per-request deadline; requests may tighten it with
	// timeout_ms but never extend it (0 = 30s).
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxInflight bounds concurrently evaluated compressions; excess
	// requests wait for a slot until their deadline (0 = 2×GOMAXPROCS).
	MaxInflight int
	// Logger receives one line per failed request (nil = standard logger).
	Logger *log.Logger
}

// Server is the HTTP serving layer: a handler tree over one pta.Engine and
// one shared matrix cache. Create it with New, mount Handler, or run
// ListenAndServe for the full listener + graceful-shutdown lifecycle.
type Server struct {
	cfg            Config
	engine         *pta.Engine
	defaultWeights []float64 // the engine's WithWeights vector, folded into cache keys
	cache          *matrixCache
	mux            *http.ServeMux
	log            *log.Logger

	started  time.Time
	inflight chan struct{}

	// request counters by endpoint, surfaced on /v1/stats
	nCompress, nCompressMany, nStrategies, nStats, nHealth atomic.Int64
	compressions                                           atomic.Int64
}

// New validates the config and builds a ready-to-mount server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		eng, err := pta.New()
		if err != nil {
			return nil, err
		}
		cfg.Engine = eng
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 64
	}
	if cfg.CacheEntries < 0 {
		return nil, fmt.Errorf("serve: CacheEntries %d, want > 0", cfg.CacheEntries)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("serve: Timeout %v, want > 0", cfg.Timeout)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("serve: MaxInflight %d, want > 0", cfg.MaxInflight)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	s := &Server{
		cfg:            cfg,
		engine:         cfg.Engine,
		defaultWeights: cfg.Engine.Weights(),
		cache:          newMatrixCache(cfg.CacheEntries),
		log:            cfg.Logger,
		started:        time.Now(),
		inflight:       make(chan struct{}, cfg.MaxInflight),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/compress", s.handleCompress)
	s.mux.HandleFunc("POST /v1/compress/many", s.handleCompressMany)
	return s, nil
}

// Handler returns the route tree, for mounting under an outer mux or an
// httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until ctx is canceled, then drains
// in-flight requests gracefully. It returns nil on a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests and examples
// bind ":0" themselves to learn the port). Canceling ctx triggers a
// graceful shutdown: the listener closes but in-flight evaluations keep
// their own request contexts and get up to 10 seconds to drain — ctx is
// deliberately NOT the BaseContext, which would abort them instead.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// acquireSlot takes one in-flight token, waiting until the request deadline
// at most. It reports whether the slot was acquired.
func (s *Server) acquireSlot(ctx context.Context) bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *Server) releaseSlot() { <-s.inflight }

// requestContext applies the per-request deadline: the server timeout,
// tightened (never extended) by the request's timeout_ms.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		if req := time.Duration(timeoutMS) * time.Millisecond; req < d {
			d = req
		}
	}
	return context.WithTimeout(r.Context(), d)
}
