package serve

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/pta"
)

// serverMetrics is the observability tier of one Server: an obs.Registry
// exposed as GET /metrics plus the pre-resolved children the hot paths
// update. Everything on a request path is an atomic op on an
// already-resolved child — no map lookups, no locks, no allocations — so
// instrumentation does not disturb the allocation-free codec
// (BenchmarkCompressHit pins that).
type serverMetrics struct {
	reg *obs.Registry

	requests  *obs.CounterVec   // ptaserve_http_requests_total{endpoint,code}
	durations *obs.HistogramVec // ptaserve_http_request_duration_seconds{endpoint}
	endpoints map[string]*endpointMetrics

	admissionRejected *obs.Counter
	admissionQueued   *obs.Counter
	fillSeconds       *obs.Histogram

	// dpCells counts DP matrix cells this worker filled itself (cold fills
	// and deepens through the matrix cache). A worker serving entirely from
	// the warm tier — spill or peers — holds this at zero, which is what
	// the wipe-and-restart tests assert.
	dpCells *obs.Counter

	// ptafill_* family: which kernel row-fill path production traffic
	// takes. fillRequests children are pre-resolved per concrete algorithm
	// (the resolved choice, never "auto"); fillCoverage observes each cold
	// matrix-set build's certified monotone coverage.
	fillRequests map[string]*obs.Counter
	fillCoverage *obs.Histogram
}

// endpointMetrics carries one endpoint's pre-resolved children. codes is a
// by-status table of counter children filled lazily: the first response
// with a given status pays one vec lookup, every later one is a single
// atomic load + add.
type endpointMetrics struct {
	name  string
	dur   *obs.Histogram
	vec   *obs.CounterVec
	codes [600]atomic.Pointer[obs.Counter]
}

func (em *endpointMetrics) done(status int, d time.Duration) {
	em.dur.Observe(d.Seconds())
	if status < 0 || status >= len(em.codes) {
		em.vec.With(em.name, strconv.Itoa(status)).Inc()
		return
	}
	c := em.codes[status].Load()
	if c == nil {
		c = em.vec.With(em.name, strconv.Itoa(status))
		em.codes[status].Store(c)
	}
	c.Inc()
}

// endpointNames is the fixed catalog instrumented by New; the middleware
// only ever sees these, so the label set is bounded.
var endpointNames = []string{"compress", "compress_many", "strategies", "stats", "healthz", "metrics", "matrix"}

// newServerMetrics builds the registry and wires the scrape-time gauges to
// the server's live state (in-flight pool, cache footprint, uptime). It
// runs before the routes mount, so every endpoint's children exist by the
// first request.
func newServerMetrics(s *Server) *serverMetrics {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &serverMetrics{
		reg: reg,
		requests: reg.NewCounterVec("ptaserve_http_requests_total",
			"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		durations: reg.NewHistogramVec("ptaserve_http_request_duration_seconds",
			"HTTP request latency in seconds, by endpoint.", nil, "endpoint"),
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		admissionRejected: reg.NewCounter("ptaserve_admission_rejected_total",
			"Requests rejected with 429 because their estimated DP cost exceeded AdmissionMaxCells."),
		admissionQueued: reg.NewCounter("ptaserve_admission_queued_total",
			"Over-budget requests serialized through the oversized slot (AdmissionPolicy queue)."),
		fillSeconds: reg.NewHistogram("ptaserve_cache_fill_seconds",
			"Latency of cold matrix-set builds (the first fill of a cache entry).", nil),
		dpCells: reg.NewCounter("ptaserve_dp_cells_filled_total",
			"DP matrix cells filled by this worker's own evaluations (cold fills and deepens); stays zero while serving entirely from the warm tier."),
		fillRequests: make(map[string]*obs.Counter),
		fillCoverage: reg.NewHistogram("ptafill_monotone_coverage",
			"Certified monotone dispatch coverage of each cold matrix-set build (0 = oscillating noise, 1 = counter-like).",
			[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}),
	}
	fillVec := reg.NewCounterVec("ptafill_requests_total",
		"Compress requests answered by the exact DP, by resolved row-fill algorithm.", "algo")
	for _, name := range pta.FillAlgoNames() {
		if name == "auto" {
			continue // auto always resolves to a concrete algorithm
		}
		m.fillRequests[name] = fillVec.With(name)
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointMetrics{
			name: name,
			dur:  m.durations.With(name),
			vec:  m.requests,
		}
	}

	reg.NewGaugeFunc("ptaserve_http_inflight",
		"Evaluation slots currently in use (MaxInflight bounds this).",
		func() float64 { return float64(len(s.inflight)) })
	reg.NewGaugeFunc("ptaserve_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.NewCounterFunc("ptaserve_compressions_total",
		"Plan evaluations answered (cache and engine paths); same source as /v1/stats.",
		func() float64 { return float64(s.compressions.Load()) })

	reg.NewCounterFunc("ptaserve_cache_hits_total",
		"Matrix-cache lookups answered by a resident entry.",
		func() float64 { return float64(s.cache.hits.Load()) })
	reg.NewCounterFunc("ptaserve_cache_misses_total",
		"Matrix-cache lookups that created a new entry.",
		func() float64 { return float64(s.cache.misses.Load()) })
	reg.NewCounterFunc("ptaserve_cache_evictions_total",
		"Matrix-cache entries displaced by the LRU capacity bound.",
		func() float64 { return float64(s.cache.evictions.Load()) })
	reg.NewGaugeFunc("ptaserve_cache_entries",
		"Resident matrix-cache entries.",
		func() float64 { return float64(s.cache.stats().Entries) })
	reg.NewGaugeFunc("ptaserve_cache_rows",
		"DP matrix rows retained across resident cache entries.",
		func() float64 { return float64(s.cache.stats().Rows) })
	reg.NewGaugeFunc("ptaserve_cache_bytes",
		"Estimated bytes retained across resident cache entries.",
		func() float64 { return float64(s.cache.stats().MemBytes) })

	// Spill counters read the store's own atomics at scrape time (zero when
	// the persistent tier is disabled), so /metrics and /v1/stats can never
	// disagree.
	spill := func(f func(cs *cacheStore) int64) func() float64 {
		return func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(f(s.store))
		}
	}
	reg.NewCounterFunc("ptaserve_spill_loads_total",
		"Warm matrix sets restored from the persistent spill tier.",
		spill(func(cs *cacheStore) int64 { return cs.loads.Load() }))
	reg.NewCounterFunc("ptaserve_spill_stores_total",
		"Matrix-set snapshots written to the persistent spill tier.",
		spill(func(cs *cacheStore) int64 { return cs.stores.Load() }))
	reg.NewCounterFunc("ptaserve_spill_errors_total",
		"Spill files rejected (corrupt, stale version, shape mismatch) or failed writes.",
		spill(func(cs *cacheStore) int64 { return cs.errors.Load() }))

	// Peer warm-tier counters read the tier's atomics at scrape time (all
	// zero until peers are configured), mirroring the /v1/stats peer block.
	reg.NewGaugeFunc("ptapeer_peers",
		"Sibling workers currently configured for peer matrix fetching.",
		func() float64 { return float64(s.peers.count()) })
	reg.NewCounterFunc("ptapeer_fetch_hits_total",
		"Warm matrix blobs fetched and fully validated from a peer on a local miss.",
		func() float64 { return float64(s.peers.fetchHits.Load()) })
	reg.NewCounterFunc("ptapeer_fetch_misses_total",
		"Local misses no configured peer could serve (the request fell through to a cold fill).",
		func() float64 { return float64(s.peers.fetchMisses.Load()) })
	reg.NewCounterFunc("ptapeer_fetch_errors_total",
		"Per-peer fetch failures: transport errors, non-200/404 statuses, oversized or invalid blobs.",
		func() float64 { return float64(s.peers.fetchErrors.Load()) })
	reg.NewCounterFunc("ptapeer_fetch_bytes_total",
		"Bytes of validated matrix blobs fetched from peers.",
		func() float64 { return float64(s.peers.fetchBytes.Load()) })
	reg.NewCounterFunc("ptapeer_serve_hits_total",
		"GET /v1/matrix requests answered with a blob (from the spill file or the resident set).",
		func() float64 { return float64(s.peers.serveHits.Load()) })
	reg.NewCounterFunc("ptapeer_serve_misses_total",
		"GET /v1/matrix requests for addresses this worker holds nothing for.",
		func() float64 { return float64(s.peers.serveMisses.Load()) })
	reg.NewCounterFunc("ptapeer_serve_bytes_total",
		"Bytes of matrix blobs served to peers.",
		func() float64 { return float64(s.peers.serveBytes.Load()) })

	reg.RegisterRuntimeMetrics()
	return m
}

// fillRequestCounts snapshots the ptafill_requests_total children for the
// /v1/stats fill block, by algorithm name.
func (s *Server) fillRequestCounts() map[string]uint64 {
	out := make(map[string]uint64, len(s.metrics.fillRequests))
	for name, c := range s.metrics.fillRequests {
		out[name] = c.Value()
	}
	return out
}

// fillServed records one exact-DP compression under the row-fill algorithm
// its matrix set resolved to (a pre-resolved child; unknown names — never
// produced by the solver — are dropped rather than allocated).
func (m *serverMetrics) fillServed(algo pta.FillAlgo) {
	if c := m.fillRequests[algo.String()]; c != nil {
		c.Inc()
	}
}

// statusWriter captures the response status for the middleware; pooled so
// instrumentation adds no per-request allocation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

var statusWriterPool = sync.Pool{New: func() any { return &statusWriter{} }}

// instrument wraps one endpoint handler with the request-count and latency
// middleware. endpoint must be one of endpointNames.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, http.StatusOK
		start := time.Now()
		h(sw, r)
		em.done(sw.status, time.Since(start))
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
	}
}
