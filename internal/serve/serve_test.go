package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/pta"
)

// newTestServer mounts a fresh server over httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// projWire is the running example (Fig. 1 of the paper) on the wire: 7 ITA
// rows, cmin = 3.
func projWire() seriesWire {
	return seriesWire{
		GroupAttrs: []attrWire{{Name: "Proj", Kind: "string"}},
		AggNames:   []string{"AvgSal"},
		Rows: []rowWire{
			{Group: []any{"A"}, Aggs: []float64{800}, Start: 1, End: 2},
			{Group: []any{"A"}, Aggs: []float64{600}, Start: 3, End: 3},
			{Group: []any{"A"}, Aggs: []float64{500}, Start: 4, End: 4},
			{Group: []any{"A"}, Aggs: []float64{350}, Start: 5, End: 6},
			{Group: []any{"A"}, Aggs: []float64{300}, Start: 7, End: 7},
			{Group: []any{"B"}, Aggs: []float64{500}, Start: 4, End: 5},
			{Group: []any{"B"}, Aggs: []float64{500}, Start: 7, End: 8},
		},
	}
}

// post sends one JSON request and decodes the response envelope.
func post(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// get fetches one JSON endpoint.
func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// errorField digs the error envelope out of a response.
func errorField(t *testing.T, out map[string]any, field string) any {
	t.Helper()
	env, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("response %v has no error envelope", out)
	}
	return env[field]
}

// TestCompressSuccess reproduces Fig. 1(d): the testdata request (also used
// by the CI smoke) reduces the running example to 4 rows with the paper's
// error.
func TestCompressSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw, err := os.ReadFile("testdata/compress_request.json")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res resultWire
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.C != 4 || len(res.Rows) != 4 {
		t.Fatalf("C = %d, rows = %d, want 4", res.C, len(res.Rows))
	}
	if math.Abs(res.Error-49166.666666) > 1e-3 {
		t.Errorf("error = %v, want ≈ 49166.67 (Fig. 1d)", res.Error)
	}
	if res.Strategy != "ptac" || res.Budget != "c=4" || res.Cache != cacheMiss {
		t.Errorf("provenance: %q %q cache=%q", res.Strategy, res.Budget, res.Cache)
	}
	if res.Rows[0].Group[0] != "A" || res.Rows[0].Start != 1 || res.Rows[0].End != 3 {
		t.Errorf("first row = %+v, want A [1, 3]", res.Rows[0])
	}
}

// TestCacheHitAcrossBudgets is the acceptance scenario: a repeated-budget
// request sequence shows nonzero hits on /v1/stats, and the ptae plan of the
// same class hits the matrices the ptac plan filled.
func TestCacheHitAcrossBudgets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := projWire()
	send := func(strategy, budget string) resultWire {
		t.Helper()
		raw, _ := json.Marshal(compressRequest{Series: series, Plan: planWire{Strategy: strategy, Budget: budget}})
		resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var out map[string]any
			json.NewDecoder(resp.Body).Decode(&out)
			t.Fatalf("%s %s: status %d: %v", strategy, budget, resp.StatusCode, out)
		}
		var res resultWire
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := send("ptac", "c=4"); res.Cache != cacheMiss {
		t.Errorf("first request cache = %q, want miss", res.Cache)
	}
	if res := send("ptac", "c=4"); res.Cache != cacheHit {
		t.Errorf("repeated budget cache = %q, want hit", res.Cache)
	}
	if res := send("ptac", "c=3"); res.Cache != cacheHit {
		t.Errorf("shallower budget cache = %q, want hit", res.Cache)
	}
	// Same DP class, other budget kind: still the same matrices.
	if res := send("ptae", "eps=0.2"); res.Cache != cacheHit {
		t.Errorf("ptae on warm ptac matrices = %q, want hit", res.Cache)
	}
	// A different weight vector is a different entry.
	raw, _ := json.Marshal(compressRequest{Series: series,
		Plan: planWire{Strategy: "ptac", Budget: "c=4", Weights: []float64{2}}})
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status, stats := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	cache := stats["cache"].(map[string]any)
	if hits := cache["hits"].(float64); hits < 3 {
		t.Errorf("cache hits = %v, want ≥ 3", hits)
	}
	if misses := cache["misses"].(float64); misses != 2 {
		t.Errorf("cache misses = %v, want 2 (one per key)", misses)
	}
	if entries := cache["entries"].(float64); entries != 2 {
		t.Errorf("cache entries = %v, want 2", entries)
	}
	if rows := cache["rows"].(float64); rows <= 0 {
		t.Errorf("cached rows = %v, want > 0", rows)
	}
}

// TestCompressMany: plans across budget kinds and cacheability resolve in
// order, cacheable plans share matrices, non-DP plans bypass.
func TestCompressMany(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, out := post(t, ts.URL+"/v1/compress/many", compressManyRequest{
		Series: projWire(),
		Plans: []planWire{
			{Strategy: "ptac", Budget: "c=4"},
			{Strategy: "ptac", Budget: "c=3"},
			{Strategy: "ptae", Budget: "eps=0.2"},
			{Strategy: "gms", Budget: "c=4"},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	results := out["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	first := results[0].(map[string]any)
	if first["cache"] != cacheMiss || first["c"].(float64) != 4 {
		t.Errorf("plan 0: %v", first)
	}
	for i, want := range []string{cacheMiss, cacheHit, cacheHit, cacheBypass} {
		r := results[i].(map[string]any)
		if r["cache"] != want {
			t.Errorf("plan %d cache = %v, want %s", i, r["cache"], want)
		}
	}
	gms := results[3].(map[string]any)
	if gms["strategy"] != "gms" || gms["c"].(float64) != 4 {
		t.Errorf("gms plan: %v", gms)
	}
}

// TestTypedErrorStatuses pins the typed-error → HTTP status contract.
func TestTypedErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := projWire()

	// Infeasible size budget (cmin = 3) → 422 with the reachable floor.
	status, out := post(t, ts.URL+"/v1/compress", compressRequest{
		Series: series, Plan: planWire{Strategy: "ptac", Budget: "c=2"},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: status %d: %v", status, out)
	}
	if code := errorField(t, out, "code"); code != "budget_infeasible" {
		t.Errorf("infeasible code = %v", code)
	}
	if cmin := errorField(t, out, "cmin"); cmin != float64(3) {
		t.Errorf("cmin = %v, want 3", cmin)
	}

	// Unknown strategy → 400 with the registry attached.
	status, out = post(t, ts.URL+"/v1/compress", compressRequest{
		Series: series, Plan: planWire{Strategy: "nope", Budget: "c=4"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown strategy: status %d", status)
	}
	if code := errorField(t, out, "code"); code != "unknown_strategy" {
		t.Errorf("unknown code = %v", code)
	}
	if known := errorField(t, out, "known"); known == nil {
		t.Error("unknown_strategy carries no registry")
	}

	// Unparsable budget, malformed body, invalid series → 400.
	status, _ = post(t, ts.URL+"/v1/compress", compressRequest{
		Series: series, Plan: planWire{Strategy: "ptac", Budget: "twelve"},
	})
	if status != http.StatusBadRequest {
		t.Errorf("bad budget: status %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	overlapping := projWire()
	overlapping.Rows[1].Start = 1 // overlaps row 0 within group A
	status, _ = post(t, ts.URL+"/v1/compress", compressRequest{
		Series: overlapping, Plan: planWire{Strategy: "ptac", Budget: "c=4"},
	})
	if status != http.StatusBadRequest {
		t.Errorf("overlapping series: status %d", status)
	}

	// Method and path discipline (plain-text mux responses, no JSON body).
	resp, err = http.Get(ts.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compress: status %d", resp.StatusCode)
	}
}

// TestDeadlineMapsTo504: a request whose deadline expires mid-evaluation
// returns 504 deadline_exceeded.
func TestDeadlineMapsTo504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A large single-group series: the DP fill is far slower than 1 ms.
	series := seriesWire{AggNames: []string{"v"}}
	n := 4000
	for i := 0; i < n; i++ {
		series.Rows = append(series.Rows, rowWire{
			Aggs:  []float64{float64(i%17) + 0.25*float64(i%5)},
			Start: int64(i), End: int64(i),
		})
	}
	status, out := post(t, ts.URL+"/v1/compress", compressRequest{
		Series:    series,
		Plan:      planWire{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", n/2)},
		TimeoutMS: 1,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %v", status, out)
	}
	if code := errorField(t, out, "code"); code != "deadline_exceeded" {
		t.Errorf("code = %v", code)
	}
}

// TestStrategiesEndpoint: the registry endpoint serves the same Describe
// records the CLI table renders, with cache classes on the DP strategies.
func TestStrategiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, out := get(t, ts.URL+"/v1/strategies")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	list := out["strategies"].([]any)
	if len(list) != len(pta.Describe()) {
		t.Fatalf("%d strategies on the wire, registry has %d", len(list), len(pta.Describe()))
	}
	byName := map[string]map[string]any{}
	for _, e := range list {
		m := e.(map[string]any)
		byName[m["name"].(string)] = m
	}
	ptac := byName["ptac"]
	if ptac == nil || ptac["matrix_cache_class"] != "dp+imax+jmin" || ptac["description"] == "" {
		t.Errorf("ptac entry: %v", ptac)
	}
	if gms := byName["gms"]; gms == nil || gms["matrix_cache_class"] != nil {
		t.Errorf("gms entry: %v", gms)
	}
}

// TestHealthz: liveness.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, out := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", status, out)
	}
}

// TestConcurrentRequests hammers one hot series from many goroutines — the
// cache-entry locking and the LRU bookkeeping must hold up under -race.
func TestConcurrentRequests(t *testing.T) {
	eng, err := pta.New(pta.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Engine: eng, CacheEntries: 2, Timeout: 20 * time.Second})
	series := projWire()
	budgets := []planWire{
		{Strategy: "ptac", Budget: "c=3"},
		{Strategy: "ptac", Budget: "c=4"},
		{Strategy: "ptae", Budget: "eps=0.1"},
		{Strategy: "gms", Budget: "c=4"},
		{Strategy: "ptac", Budget: "c=4", Weights: []float64{3}},
		{Strategy: "ptac", Budget: "c=4", Weights: []float64{5}},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				plan := budgets[(g+i)%len(budgets)]
				raw, _ := json.Marshal(compressRequest{Series: series, Plan: plan})
				resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("%s %s: status %d", plan.Strategy, plan.Budget, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	status, stats := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	cache := stats["cache"].(map[string]any)
	if entries := cache["entries"].(float64); entries > 2 {
		t.Errorf("cache entries = %v, capacity 2", entries)
	}
	if evictions := cache["evictions"].(float64); evictions == 0 {
		t.Error("two keys over capacity 2 with weight variants: want evictions > 0")
	}
}

// TestEngineWeightsReachCachePath: a server whose engine carries default
// weights must apply them on the cached DP path exactly like the engine
// path does (and key cache entries by them).
func TestEngineWeightsReachCachePath(t *testing.T) {
	eng, err := pta.New(pta.WithWeights([]float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Engine: eng})
	series := projWire()
	status, out := post(t, ts.URL+"/v1/compress", compressRequest{
		Series: series, Plan: planWire{Strategy: "ptac", Budget: "c=4"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	// w=2 quadruples every squared error: 4 × 49166.67.
	if got := out["error"].(float64); math.Abs(got-4*49166.6666667) > 1e-3 {
		t.Errorf("cached error = %v, want %v (engine weights applied)", got, 4*49166.6666667)
	}
	if out["cache"] != cacheMiss {
		t.Errorf("cache = %v, want miss", out["cache"])
	}
	// Explicit weights matching the default share the same entry.
	status, out = post(t, ts.URL+"/v1/compress", compressRequest{
		Series: series, Plan: planWire{Strategy: "ptac", Budget: "c=4", Weights: []float64{2}},
	})
	if status != http.StatusOK || out["cache"] != cacheHit {
		t.Errorf("explicit matching weights: status %d cache %v, want hit", status, out["cache"])
	}
}

// TestGracefulShutdownDrains: canceling the Serve context must let an
// in-flight evaluation finish (200), not abort it — the rolling-restart
// contract.
func TestGracefulShutdownDrains(t *testing.T) {
	// A generous deadline: under -race the DP is an order of magnitude
	// slower, and this test is about shutdown, not timeouts.
	s, err := New(Config{Logger: log.New(io.Discard, "", 0), Timeout: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// A request slow enough to still be in flight when shutdown starts.
	series := seriesWire{AggNames: []string{"v"}}
	n := 1200
	for i := 0; i < n; i++ {
		series.Rows = append(series.Rows, rowWire{
			Aggs:  []float64{float64(i%13) + 0.5*float64(i%7)},
			Start: int64(i), End: int64(i),
		})
	}
	raw, _ := json.Marshal(compressRequest{
		Series: series, Plan: planWire{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", n/2)},
	})
	type reply struct {
		status int
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(base+"/v1/compress", "application/json", bytes.NewReader(raw))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		resp.Body.Close()
		replies <- reply{status: resp.StatusCode}
	}()
	time.Sleep(30 * time.Millisecond) // let the evaluation start
	cancel()                          // trigger graceful shutdown mid-flight

	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got %d during shutdown, want 200", r.status)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil", err)
	}
}

// TestDrainTimeoutForcesClose: a configured drain window bounds shutdown —
// when an in-flight evaluation outlives it, Serve force-closes and still
// returns nil instead of hanging for the full evaluation.
func TestDrainTimeoutForcesClose(t *testing.T) {
	s, err := New(Config{
		Logger:       log.New(io.Discard, "", 0),
		Timeout:      5 * time.Minute,
		DrainTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// A request far slower than the 50 ms drain window.
	series := seriesWire{AggNames: []string{"v"}}
	n := 3000
	for i := 0; i < n; i++ {
		series.Rows = append(series.Rows, rowWire{
			Aggs:  []float64{float64(i%13) + 0.5*float64(i%7)},
			Start: int64(i), End: int64(i),
		})
	}
	raw, _ := json.Marshal(compressRequest{
		Series: series, Plan: planWire{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", n/2)},
	})
	requestDone := make(chan struct{})
	go func() {
		defer close(requestDone)
		resp, err := http.Post(base+"/v1/compress", "application/json", bytes.NewReader(raw))
		if err == nil {
			resp.Body.Close()
		}
		// Either outcome is fine: the connection may be force-closed
		// mid-response or the evaluation may finish first on a fast machine.
	}()
	time.Sleep(30 * time.Millisecond) // let the evaluation start
	start := time.Now()
	cancel()

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after a bounded drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return: drain window was not enforced")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("Serve returned after %v, before the drain window elapsed", elapsed)
	}
	<-requestDone
}

// TestDecodeSeriesValidation covers codec-level rejections.
func TestDecodeSeriesValidation(t *testing.T) {
	base := projWire()
	cases := []struct {
		name   string
		mutate func(*seriesWire)
	}{
		{"no aggs", func(s *seriesWire) { s.AggNames = nil }},
		{"no rows", func(s *seriesWire) { s.Rows = nil }},
		{"bad kind", func(s *seriesWire) { s.GroupAttrs[0].Kind = "blob" }},
		{"group arity", func(s *seriesWire) { s.Rows[0].Group = []any{"A", "B"} }},
		{"agg arity", func(s *seriesWire) { s.Rows[0].Aggs = []float64{1, 2} }},
		{"group type", func(s *seriesWire) { s.Rows[0].Group = []any{42.0} }},
		{"bad interval", func(s *seriesWire) { s.Rows[0].Start = 9; s.Rows[0].End = 1 }},
	}
	for _, tc := range cases {
		w := base
		w.GroupAttrs = append([]attrWire(nil), base.GroupAttrs...)
		w.Rows = make([]rowWire, len(base.Rows))
		copy(w.Rows, base.Rows)
		w.Rows[0].Group = append([]any(nil), base.Rows[0].Group...)
		w.Rows[0].Aggs = append([]float64(nil), base.Rows[0].Aggs...)
		tc.mutate(&w)
		if _, err := decodeSeries(w); err == nil {
			t.Errorf("%s: decodeSeries accepted the series", tc.name)
		}
	}
	if s, err := decodeSeries(base); err != nil || s.Len() != 7 || s.CMin() != 3 {
		t.Errorf("valid series rejected: %v", err)
	}
}
