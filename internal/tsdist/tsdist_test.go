package tsdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/temporal"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round(rng.Float64()*1000) / 8
	}
	return out
}

func TestEuclideanBasics(t *testing.T) {
	d, err := Euclidean([]float64{0, 3}, []float64{4, 3})
	if err != nil || d != 4 {
		t.Errorf("Euclidean = %v, %v", d, err)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// TestPAADistancePropLowerBounds: the PAA distance never exceeds the true
// Euclidean distance (Keogh & Pazzani's guarantee — no false dismissals).
func TestPAADistancePropLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		a, b := randSeries(rng, n), randSeries(rng, n)
		c := 1 + rng.Intn(n)
		lb, err1 := PAADistance(a, b, c)
		d, err2 := Euclidean(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return lb <= d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSAXMinDistPropLowerBounds: MINDIST lower-bounds the Euclidean
// distance of the z-normalized series.
func TestSAXMinDistPropLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(60)
		a, b := randSeries(rng, n), randSeries(rng, n)
		c := 2 + rng.Intn(8)
		w := 3 + rng.Intn(7)
		wa, err1 := approx.SAX(a, c, w)
		wb, err2 := approx.SAX(b, c, w)
		if err1 != nil || err2 != nil {
			return false
		}
		md, err := SAXMinDist(wa, wb)
		if err != nil {
			return false
		}
		d, err := Euclidean(ZNormalize(a), ZNormalize(b))
		if err != nil {
			return false
		}
		return md <= d+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSAXMinDistValidation(t *testing.T) {
	a, _ := approx.SAX([]float64{1, 2, 3, 4}, 2, 4)
	b, _ := approx.SAX([]float64{1, 2, 3, 4, 5, 6}, 3, 4)
	if _, err := SAXMinDist(a, b); err == nil {
		t.Error("word length mismatch should fail")
	}
	c, _ := approx.SAX([]float64{1, 2, 3, 4}, 2, 8)
	if _, err := SAXMinDist(a, c); err == nil {
		t.Error("alphabet mismatch should fail")
	}
}

func TestZNormalize(t *testing.T) {
	z := ZNormalize([]float64{2, 4, 6})
	var mean float64
	for _, v := range z {
		mean += v
	}
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalized mean = %v", mean)
	}
	if zc := ZNormalize([]float64{5, 5, 5}); zc[0] != 0 || zc[2] != 0 {
		t.Error("constant series should normalize to zeros")
	}
	if ZNormalize(nil) != nil {
		t.Error("empty series should normalize to nil")
	}
}

// TestSequenceEuclideanMatchesExpansion: the step-function distance between
// two sequences equals the pointwise distance of their expansions.
func TestSequenceEuclideanMatchesExpansion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *temporal.Sequence {
			seq := temporal.NewSequence(nil, []string{"v"})
			gid := seq.Groups.Intern(nil)
			at := temporal.Chronon(0)
			for i := 0; i < 3+rng.Intn(10); i++ {
				l := temporal.Chronon(1 + rng.Intn(4))
				seq.Rows = append(seq.Rows, temporal.SeqRow{
					Group: gid,
					Aggs:  []float64{math.Round(rng.Float64() * 50)},
					T:     temporal.Interval{Start: at, End: at + l - 1},
				})
				at += l
			}
			return seq
		}
		a, b := mk(), mk()
		got, err := SequenceEuclidean(a, b, 0)
		if err != nil {
			return false
		}
		// Expand both over the union span and compare pointwise.
		end := max(a.Rows[a.Len()-1].T.End, b.Rows[b.Len()-1].T.End)
		var sum float64
		for ts := temporal.Chronon(0); ts <= end; ts++ {
			va, vb := 0.0, 0.0
			for _, r := range a.Rows {
				if r.T.Contains(ts) {
					va = r.Aggs[0]
				}
			}
			for _, r := range b.Rows {
				if r.T.Contains(ts) {
					vb = r.Aggs[0]
				}
			}
			d := va - vb
			sum += d * d
		}
		return math.Abs(got-math.Sqrt(sum)) <= 1e-6*(1+math.Sqrt(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPTACompressionPreservesNeighbors: the paper's motivating application —
// a query's nearest neighbor among PTA-compressed series matches the
// nearest neighbor among the originals when compression keeps moderate
// error.
func TestPTACompressionPreservesNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mkSmooth := func(phase float64) []float64 {
		vals := make([]float64, 128)
		for i := range vals {
			vals[i] = 50*math.Sin(float64(i)/10+phase) + rng.Float64()
		}
		return vals
	}
	candidates := [][]float64{mkSmooth(0), mkSmooth(1.2), mkSmooth(2.4), mkSmooth(3.6)}
	query := mkSmooth(0.08) // closest to phase 0

	// Exact nearest neighbor.
	wantIdx, _, _, err := NearestNeighbor(query, candidates, 16)
	if err != nil {
		t.Fatal(err)
	}
	if wantIdx != 0 {
		t.Fatalf("sanity: expected candidate 0, got %d", wantIdx)
	}

	// Compress every candidate with PTA to 16 tuples and compare distances
	// on the step functions.
	toSeq := func(vals []float64) *temporal.Sequence {
		seq := temporal.NewSequence(nil, []string{"v"})
		gid := seq.Groups.Intern(nil)
		for i, v := range vals {
			seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: []float64{v},
				T: temporal.Inst(temporal.Chronon(i))})
		}
		return seq
	}
	qSeq := toSeq(query)
	bestIdx, bestDist := -1, math.Inf(1)
	for i, cand := range candidates {
		res, err := core.PTAc(toSeq(cand), 16, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := SequenceEuclidean(qSeq, res.Sequence, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx != wantIdx {
		t.Errorf("PTA-compressed nearest neighbor = %d, want %d", bestIdx, wantIdx)
	}
}

// TestNearestNeighborPruning: the PAA lower bound must never change the
// answer, only reduce full scans.
func TestNearestNeighborPruning(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(32)
		var candidates [][]float64
		for i := 0; i < 2+rng.Intn(10); i++ {
			candidates = append(candidates, randSeries(rng, n))
		}
		query := randSeries(rng, n)
		idx, dist, scans, err := NearestNeighbor(query, candidates, 4)
		if err != nil || scans > len(candidates) {
			return false
		}
		// Brute force.
		bi, bd := -1, math.Inf(1)
		for i, cand := range candidates {
			d, _ := Euclidean(query, cand)
			if d < bd {
				bi, bd = i, d
			}
		}
		return idx == bi && math.Abs(dist-bd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNearestNeighborValidation(t *testing.T) {
	if _, _, _, err := NearestNeighbor([]float64{1}, nil, 2); err == nil {
		t.Error("no candidates should fail")
	}
}
