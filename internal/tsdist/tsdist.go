// Package tsdist implements the distance machinery of the similarity-search
// application that motivates PTA (Section 1.1: "similarity search for
// classification and clustering, where the fine-grained result of ITA is too
// large to handle"): Euclidean distance between step-function sequences, and
// the lower-bounding distances of the PAA and SAX representations (Keogh &
// Pazzani 2000; Lin et al. 2007) that make index-based search admissible.
//
// The lower-bounding property — the representation distance never exceeds
// the true Euclidean distance — is what guarantees no false dismissals in
// similarity search; it is property-tested in this package.
package tsdist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/approx"
	"repro/internal/temporal"
)

// Euclidean returns the L2 distance between two equal-length series.
func Euclidean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("tsdist: series lengths differ: %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// SequenceEuclidean computes the Euclidean distance between two single-group
// sequential relations over their common time span, treating each row's
// value as holding at every chronon of its interval — the step-function view
// under which a PTA result approximates its ITA original. Chronons covered
// by only one of the sequences contribute that value against zero.
func SequenceEuclidean(a, b *temporal.Sequence, dim int) (float64, error) {
	if dim < 0 || dim >= a.P() || dim >= b.P() {
		return 0, fmt.Errorf("tsdist: dimension %d out of range", dim)
	}
	// Collect the union of breakpoints: row starts and the instants right
	// after row ends. Between consecutive breakpoints both step functions
	// are constant.
	pointSet := make(map[temporal.Chronon]bool, 2*(a.Len()+b.Len()))
	for _, r := range a.Rows {
		pointSet[r.T.Start] = true
		pointSet[r.T.End+1] = true
	}
	for _, r := range b.Rows {
		pointSet[r.T.Start] = true
		pointSet[r.T.End+1] = true
	}
	points := make([]temporal.Chronon, 0, len(pointSet))
	for pt := range pointSet {
		points = append(points, pt)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

	var sum float64
	ai, bi := 0, 0
	for k := 0; k+1 < len(points); k++ {
		cur, next := points[k], points[k+1]
		for ai < a.Len() && a.Rows[ai].T.End < cur {
			ai++
		}
		for bi < b.Len() && b.Rows[bi].T.End < cur {
			bi++
		}
		va, oka := valueAt(a, ai, cur, dim)
		vb, okb := valueAt(b, bi, cur, dim)
		if oka || okb {
			d := va - vb
			sum += float64(next-cur) * d * d
		}
	}
	return math.Sqrt(sum), nil
}

func valueAt(s *temporal.Sequence, idx int, t temporal.Chronon, dim int) (float64, bool) {
	if idx < s.Len() && s.Rows[idx].T.Contains(t) {
		return s.Rows[idx].Aggs[dim], true
	}
	return 0, false
}

// PAADistance is the lower-bounding distance between the PAA
// representations of two series of length n reduced to c segments:
//
//	LB(a, b) = sqrt( Σ_k len_k · (ā_k − b̄_k)² ) ≤ Euclidean(a, b).
func PAADistance(a, b []float64, c int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("tsdist: series lengths differ: %d vs %d", len(a), len(b))
	}
	sa, err := approx.PAA(a, c, 0)
	if err != nil {
		return 0, err
	}
	sb, err := approx.PAA(b, c, 0)
	if err != nil {
		return 0, err
	}
	var sum float64
	for k := range sa {
		d := sa[k].Vals[0] - sb[k].Vals[0]
		sum += float64(sa[k].T.Len()) * d * d
	}
	return math.Sqrt(sum), nil
}

// SAXMinDist is the MINDIST of Lin et al.: a lower bound of the Euclidean
// distance between the *z-normalized* series, computed from their SAX words
// alone. Words must agree in length and alphabet.
func SAXMinDist(a, b *approx.SAXWord) (float64, error) {
	if len(a.Symbols) != len(b.Symbols) {
		return 0, fmt.Errorf("tsdist: word lengths differ: %d vs %d", len(a.Symbols), len(b.Symbols))
	}
	if len(a.Breakpoints) != len(b.Breakpoints) {
		return 0, fmt.Errorf("tsdist: alphabet sizes differ")
	}
	if a.N != b.N {
		return 0, fmt.Errorf("tsdist: series lengths differ: %d vs %d", a.N, b.N)
	}
	bps := a.Breakpoints
	cellDist := func(r, c int) float64 {
		if abs(r-c) <= 1 {
			return 0
		}
		hi, lo := r, c
		if hi < lo {
			hi, lo = lo, hi
		}
		return bps[hi-1] - bps[lo]
	}
	var sum float64
	for k := range a.Symbols {
		d := cellDist(int(a.Symbols[k]-'a'), int(b.Symbols[k]-'a'))
		sum += d * d
	}
	return math.Sqrt(float64(a.N)/float64(len(a.Symbols))) * math.Sqrt(sum), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ZNormalize returns the z-normalized copy of the series (mean 0, stddev 1;
// a constant series normalizes to all zeros).
func ZNormalize(vals []float64) []float64 {
	n := float64(len(vals))
	if n == 0 {
		return nil
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= n
	var variance float64
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	std := math.Sqrt(variance / n)
	out := make([]float64, len(vals))
	if std == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = (v - mean) / std
	}
	return out
}

// NearestNeighbor returns the index of the candidate series closest to the
// query under the Euclidean distance, with PAA lower-bound pruning: a
// candidate whose lower bound already exceeds the best true distance is
// skipped without a full scan. It returns the index, the distance, and how
// many full distance computations were needed.
func NearestNeighbor(query []float64, candidates [][]float64, paaSegments int) (best int, dist float64, fullScans int, err error) {
	if len(candidates) == 0 {
		return -1, 0, 0, fmt.Errorf("tsdist: no candidates")
	}
	best, dist = -1, math.Inf(1)
	for i, cand := range candidates {
		lb, err := PAADistance(query, cand, paaSegments)
		if err != nil {
			return -1, 0, 0, err
		}
		if lb >= dist {
			continue // admissibly pruned
		}
		d, err := Euclidean(query, cand)
		if err != nil {
			return -1, 0, 0, err
		}
		fullScans++
		if d < dist {
			best, dist = i, d
		}
	}
	return best, dist, fullScans, nil
}
