package amnesic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/temporal"
)

func unitSequence(vals []float64) *temporal.Sequence {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	for i, v := range vals {
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: []float64{v},
			T: temporal.Inst(temporal.Chronon(i))})
	}
	return seq
}

func randVals(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Round(rng.Float64()*1000) / 8
	}
	return vals
}

// TestReduceSizeEquivalentToGPTAc pins the paper's Section 2.2 claim: "For
// time series data and parameter δ = 0 for gPTAc, the two algorithms are
// equivalent" (with the amnesic effect disabled, RA ≡ 1).
func TestReduceSizeEquivalentToGPTAc(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := unitSequence(randVals(rng, 5+rng.Intn(60)))
		c := 1 + rng.Intn(seq.Len())
		am, err1 := ReduceSize(nil, seq, c, Constant(1), nil)
		gp, err2 := core.GPTAc(core.NewSliceStream(seq), c, 0, core.Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return am.Sequence.Equal(gp.Sequence, 1e-9) &&
			math.Abs(am.Error-gp.Error) <= 1e-9*(1+gp.Error)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReduceErrorEquivalentToATC pins the second equivalence: "For an
// absolute amnesic function AA(t) = ε ... the problem becomes equivalent to
// ATC."
func TestReduceErrorEquivalentToATC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := unitSequence(randVals(rng, 5+rng.Intn(60)))
		eps := rng.Float64() * 500
		am, err1 := ReduceError(seq, Constant(eps))
		atc, err2 := approx.ATC(seq, eps, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return am.Equal(atc, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReduceSizeAmnesiaPrefersOldMerges: with a relative amnesic function
// that forgives old errors, merges concentrate on the old half of the
// series.
func TestReduceSizeAmnesiaPrefersOldMerges(t *testing.T) {
	// Alternating values: any merge costs the same raw error everywhere, so
	// only the amnesic scaling decides where merges happen.
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64((i % 2) * 10)
	}
	seq := unitSequence(vals)
	now := temporal.Chronon(len(vals) - 1)
	res, err := ReduceSize(nil, seq, 40, LinearAge(now, 5), nil)
	if err != nil {
		t.Fatalf("ReduceSize: %v", err)
	}
	if res.Sequence.Len() != 40 {
		t.Fatalf("C = %d, want 40", res.Sequence.Len())
	}
	// The first (oldest) rows should be merged into longer segments than
	// the last (newest) rows.
	firstLen := res.Sequence.Rows[0].T.Len()
	lastLen := res.Sequence.Rows[res.Sequence.Len()-1].T.Len()
	if firstLen <= lastLen {
		t.Errorf("oldest segment length %d should exceed newest %d", firstLen, lastLen)
	}
}

// TestReduceErrorTighterRecentBound: an absolute amnesic function with a
// small allowance on recent data yields finer recent segments.
func TestReduceErrorTighterRecentBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randVals(rng, 200)
	seq := unitSequence(vals)
	aa := func(t temporal.Chronon) float64 {
		if t >= 150 {
			return 1 // recent: almost exact
		}
		return 1e6 // old: anything goes
	}
	res, err := ReduceError(seq, aa)
	if err != nil {
		t.Fatalf("ReduceError: %v", err)
	}
	var oldRows, newRows int
	for _, r := range res.Rows {
		if r.T.Start >= 150 {
			newRows++
		} else {
			oldRows++
		}
	}
	if oldRows >= newRows {
		t.Errorf("old rows %d should be far fewer than recent rows %d", oldRows, newRows)
	}
}

func TestReduceSizeValidation(t *testing.T) {
	seq := unitSequence([]float64{1, 2})
	if _, err := ReduceSize(nil, seq, 0, nil, nil); err == nil {
		t.Error("c = 0 should fail")
	}
	res, err := ReduceSize(nil, seq, 5, nil, nil)
	if err != nil || res.Sequence.Len() != 2 {
		t.Errorf("c ≥ n should keep the input: %v, %v", res, err)
	}
}

func TestReduceErrorValidation(t *testing.T) {
	if _, err := ReduceError(unitSequence([]float64{1}), nil); err == nil {
		t.Error("nil amnesic function should fail")
	}
}

// TestReduceSizeRespectsGapsAndGroups: non-adjacent pairs never merge.
func TestReduceSizeRespectsGapsAndGroups(t *testing.T) {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	seq.Rows = []temporal.SeqRow{
		{Group: gid, Aggs: []float64{1}, T: temporal.Inst(0)},
		{Group: gid, Aggs: []float64{1}, T: temporal.Inst(5)}, // gap
	}
	res, err := ReduceSize(nil, seq, 1, Constant(1), nil)
	if err != nil {
		t.Fatalf("ReduceSize: %v", err)
	}
	if res.Sequence.Len() != 2 {
		t.Errorf("C = %d; merging across the gap must be impossible", res.Sequence.Len())
	}
}
