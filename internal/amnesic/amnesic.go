// Package amnesic implements the user-defined amnesic approximation
// framework of Palpanas, Vlachos, Keogh, Gunopulos and Truppel ("Online
// amnesic approximation of streaming time series", ICDE 2004), which the
// paper discusses at length in Section 2.2: older entries of a series may be
// approximated with a higher error than recent ones, controlled by an
// amnesic function over time.
//
// Two variants exist, mirroring the PTA pair:
//
//   - a *relative* amnesic function RA(t) scales how much error each time
//     point tolerates; the result size is bounded and the (scaled) error is
//     minimized greedily. The paper: "the problem is equivalent to
//     size-bounded PTA when a relative amnesic function is used with
//     RA(t) = 1 ... For time series data and parameter δ = 0 for gPTAc, the
//     two algorithms are equivalent." TestReduceSizeEquivalentToGPTAc pins
//     this equivalence against the core implementation.
//
//   - an *absolute* amnesic function AA(t) bounds the error each segment may
//     carry; the result size is minimized in one pass. The paper: "For an
//     absolute amnesic function AA(t) = ε the amnesic effect is eliminated
//     and the problem becomes equivalent to ATC."
//     TestReduceErrorEquivalentToATC pins this against internal/approx.
package amnesic

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/temporal"
)

// Func is an amnesic function over chronons. For relative amnesia the value
// scales the tolerated error at t (≥ 1 means "older, forget more" when it
// grows with age); for absolute amnesia it is the error allowance at t.
// Values must be positive.
type Func func(t temporal.Chronon) float64

// Constant returns the amnesic function that ignores time.
func Constant(v float64) Func { return func(temporal.Chronon) float64 { return v } }

// LinearAge returns a relative amnesic function that grows linearly with
// age: RA(t) = 1 + slope·(now − t) for t ≤ now (clamped at 1).
func LinearAge(now temporal.Chronon, slope float64) Func {
	return func(t temporal.Chronon) float64 {
		age := float64(now - t)
		if age < 0 {
			age = 0
		}
		return 1 + slope*age
	}
}

// Result is the outcome of a relative-amnesic reduction.
type Result struct {
	// Sequence is the reduced series.
	Sequence *temporal.Sequence
	// Error is the *unscaled* sum squared error of the reduction.
	Error float64
	// ScaledError is the amnesic objective Σ dsim/RA actually minimized.
	ScaledError float64
	// MaxHeap is the largest number of simultaneously buffered segments.
	MaxHeap int
}

// segNode is one buffered segment of the online algorithm.
type segNode struct {
	row        temporal.SeqRow
	prev, next *segNode
	key        float64 // scaled merge cost with prev
	raw        float64 // unscaled merge cost with prev
	hpos       int
	seq        int
}

type segHeap struct{ ns []*segNode }

func (h *segHeap) len() int { return len(h.ns) }
func (h *segHeap) peek() *segNode {
	if len(h.ns) == 0 {
		return nil
	}
	return h.ns[0]
}

func segLess(a, b *segNode) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.row.T.Start != b.row.T.Start {
		return a.row.T.Start < b.row.T.Start
	}
	return a.seq < b.seq
}

func (h *segHeap) swap(i, j int) {
	h.ns[i], h.ns[j] = h.ns[j], h.ns[i]
	h.ns[i].hpos = i
	h.ns[j].hpos = j
}

func (h *segHeap) push(n *segNode) {
	n.hpos = len(h.ns)
	h.ns = append(h.ns, n)
	h.up(n.hpos)
}

func (h *segHeap) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !segLess(h.ns[i], h.ns[p]) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

func (h *segHeap) down(i int) {
	n := len(h.ns)
	for {
		l, r, best := 2*i+1, 2*i+2, i
		if l < n && segLess(h.ns[l], h.ns[best]) {
			best = l
		}
		if r < n && segLess(h.ns[r], h.ns[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *segHeap) fix(n *segNode) {
	if !h.up(n.hpos) {
		h.down(n.hpos)
	}
}
func (h *segHeap) remove(n *segNode) {
	i := n.hpos
	last := len(h.ns) - 1
	h.swap(i, last)
	h.ns = h.ns[:last]
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
	n.hpos = -1
}

// ReduceSize runs the online size-bounded amnesic reduction: rows arrive in
// order; whenever more than c segments are buffered, the pair with the
// smallest *amnesically scaled* merge cost dsim(a,b)/RA(midpoint) is merged
// (only adjacent, same-group pairs merge). With RA ≡ 1 the algorithm is the
// paper's gPTAc with δ = 0. The context is polled periodically so long
// reductions abort promptly on cancellation; nil means no cancellation.
// weights holds one positive error weight per aggregate attribute (w_d of
// the paper's Definition 5); nil means all weights are 1.
func ReduceSize(ctx context.Context, seq *temporal.Sequence, c int, ra Func, weights []float64) (*Result, error) {
	if c < 1 {
		return nil, fmt.Errorf("amnesic: size bound %d, want ≥ 1", c)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("amnesic: reduction canceled: %w", err)
	}
	if ra == nil {
		ra = Constant(1)
	}
	p := seq.P()
	w2 := make([]float64, p)
	for d := range w2 {
		w2[d] = 1
	}
	if weights != nil {
		if len(weights) != p {
			return nil, fmt.Errorf("amnesic: %d weights for %d aggregate attributes", len(weights), p)
		}
		for d, w := range weights {
			if !(w > 0) {
				return nil, fmt.Errorf("amnesic: weight %d is %v, want > 0", d, w)
			}
			w2[d] = w * w
		}
	}

	var (
		h          segHeap
		tail       *segNode
		seqNo      int
		totalRaw   float64
		totalScale float64
		maxHeap    int
	)
	scaledKey := func(a, b *segNode) (raw, scaled float64, ok bool) {
		if !core.RowsAdjacent(a.row, b.row) {
			return 0, 0, false
		}
		raw = core.Dissimilarity(a.row, b.row, w2)
		mid := (a.row.T.Start + b.row.T.End) / 2
		f := ra(mid)
		if f <= 0 {
			f = 1e-12
		}
		return raw, raw / f, true
	}
	rekey := func(n *segNode) {
		if n.prev == nil {
			n.key, n.raw = core.Inf, core.Inf
			return
		}
		raw, scaled, ok := scaledKey(n.prev, n)
		if !ok {
			n.key, n.raw = core.Inf, core.Inf
			return
		}
		n.raw, n.key = raw, scaled
	}
	mergeTop := func() {
		n := h.peek()
		p := n.prev
		totalRaw += n.raw
		totalScale += n.key
		p.row = core.MergeRows(p.row, n.row)
		p.next = n.next
		if n.next != nil {
			n.next.prev = p
		} else {
			tail = p
		}
		h.remove(n)
		rekey(p)
		h.fix(p)
		if s := p.next; s != nil {
			rekey(s)
			h.fix(s)
		}
	}

	for _, row := range seq.Rows {
		seqNo++
		if seqNo%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("amnesic: reduction canceled: %w", err)
			}
		}
		n := &segNode{row: row.CloneAggs(), seq: seqNo}
		if tail != nil {
			n.prev = tail
			tail.next = n
		}
		tail = n
		rekey(n)
		h.push(n)
		if h.len() > maxHeap {
			maxHeap = h.len()
		}
		for h.len() > c {
			top := h.peek()
			if top.key == core.Inf {
				break
			}
			mergeTop()
		}
	}

	var head *segNode
	for n := tail; n != nil; n = n.prev {
		head = n
	}
	var rows []temporal.SeqRow
	for n := head; n != nil; n = n.next {
		rows = append(rows, n.row)
	}
	return &Result{
		Sequence:    seq.WithRows(rows),
		Error:       totalRaw,
		ScaledError: totalScale,
		MaxHeap:     maxHeap,
	}, nil
}

// ReduceError runs the one-pass size-minimizing absolute-amnesic reduction:
// a segment absorbs the next adjacent row as long as its internal sum
// squared error stays within the smallest allowance AA(t) over the chronons
// it covers. With AA ≡ ε the pass is exactly approximate temporal
// coalescing.
func ReduceError(seq *temporal.Sequence, aa Func) (*temporal.Sequence, error) {
	if aa == nil {
		return nil, fmt.Errorf("amnesic: nil absolute amnesic function")
	}
	p := seq.P()
	out := seq.WithRows(nil)
	var (
		open      bool
		group     int32
		iv        temporal.Interval
		length    float64
		allowance float64
		sv        = make([]float64, p)
		ssv       = make([]float64, p)
	)
	emit := func() {
		aggs := make([]float64, p)
		for d := 0; d < p; d++ {
			aggs[d] = sv[d] / length
		}
		out.Rows = append(out.Rows, temporal.SeqRow{Group: group, Aggs: aggs, T: iv})
	}
	for _, row := range seq.Rows {
		l := float64(row.T.Len())
		rowAllow := aa(row.T.Start)
		if end := aa(row.T.End); end < rowAllow {
			rowAllow = end
		}
		if open && row.Group == group && iv.Meets(row.T) {
			newAllow := min(allowance, rowAllow)
			newLen := length + l
			var cand float64
			for d := 0; d < p; d++ {
				nsv := sv[d] + l*row.Aggs[d]
				nssv := ssv[d] + l*row.Aggs[d]*row.Aggs[d]
				cand += nssv - nsv*nsv/newLen
			}
			if cand < 0 {
				cand = 0
			}
			if cand <= newAllow {
				for d := 0; d < p; d++ {
					sv[d] += l * row.Aggs[d]
					ssv[d] += l * row.Aggs[d] * row.Aggs[d]
				}
				length = newLen
				iv.End = row.T.End
				allowance = newAllow
				continue
			}
		}
		if open {
			emit()
		}
		open = true
		group = row.Group
		iv = row.T
		length = l
		allowance = rowAllow
		for d := 0; d < p; d++ {
			sv[d] = l * row.Aggs[d]
			ssv[d] = l * row.Aggs[d] * row.Aggs[d]
		}
	}
	if open {
		emit()
	}
	return out, nil
}
