// Package sbtree provides incremental computation and maintenance of
// temporal aggregates after Yang & Widom ("Incremental computation and
// maintenance of temporal aggregates", VLDB Journal 2003) — reference [30]
// of the paper: tuples are inserted (and removed) one at a time, and at any
// moment the structure answers instant queries and materializes the full
// ITA-style result for the decomposable functions sum, count and avg.
//
// Yang & Widom's disk-oriented SB-tree stores interval/value entries in
// B-tree nodes; this in-memory realization keeps the same operations and
// logarithmic bounds with a randomized balanced search tree (treap) over
// interval endpoints carrying value deltas and subtree sums: inserting
// [s, e] with value v adds +v at s and −v at e+1, and the aggregate holding
// at instant t is the prefix sum over endpoints ≤ t. The structural
// substitution is documented here because the original's node layout only
// matters on disk.
package sbtree

import (
	"fmt"
	"math/rand"

	"repro/internal/temporal"
)

// node is a treap node for one endpoint.
type node struct {
	key      temporal.Chronon
	priority int64
	// delta holds the value change at key: index 0 is the active-tuple
	// count, 1..p are the aggregate attribute sums.
	delta []float64
	// subtreeSum aggregates delta over the whole subtree for O(log n)
	// prefix sums.
	subtreeSum  []float64
	left, right *node
}

// Tree maintains running temporal aggregates over p value attributes.
// The zero value is not usable; call New.
type Tree struct {
	p    int
	root *node
	rng  *rand.Rand
	n    int // live endpoints
}

// New returns an empty tree for p aggregate attributes. The seed drives
// treap priorities only (balance, not results).
func New(p int, seed int64) (*Tree, error) {
	if p < 0 {
		return nil, fmt.Errorf("sbtree: negative attribute count %d", p)
	}
	return &Tree{p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// P returns the number of aggregate attributes.
func (t *Tree) P() int { return t.p }

// Len returns the number of distinct endpoints currently stored.
func (t *Tree) Len() int { return t.n }

// Insert registers a tuple holding vals throughout iv.
func (t *Tree) Insert(iv temporal.Interval, vals []float64) error {
	if !iv.Valid() {
		return fmt.Errorf("sbtree: invalid interval %v", iv)
	}
	if len(vals) != t.p {
		return fmt.Errorf("sbtree: %d values for %d attributes", len(vals), t.p)
	}
	t.apply(iv, vals, +1)
	return nil
}

// Delete removes a previously inserted tuple (incremental maintenance).
// Deleting a tuple that was never inserted corrupts the aggregate, as with
// any delta structure; callers own that invariant.
func (t *Tree) Delete(iv temporal.Interval, vals []float64) error {
	if !iv.Valid() {
		return fmt.Errorf("sbtree: invalid interval %v", iv)
	}
	if len(vals) != t.p {
		return fmt.Errorf("sbtree: %d values for %d attributes", len(vals), t.p)
	}
	t.apply(iv, vals, -1)
	return nil
}

func (t *Tree) apply(iv temporal.Interval, vals []float64, sign float64) {
	width := t.p + 1
	add := make([]float64, width)
	add[0] = sign
	for d, v := range vals {
		add[d+1] = sign * v
	}
	t.addDelta(iv.Start, add)
	for i := range add {
		add[i] = -add[i]
	}
	t.addDelta(iv.End+1, add)
}

// addDelta merges a delta into the endpoint's node, creating it on demand
// and removing it when it zeroes out entirely.
func (t *Tree) addDelta(key temporal.Chronon, add []float64) {
	left, mid, right := split(t.root, key)
	if mid == nil {
		mid = &node{
			key:        key,
			priority:   t.rng.Int63(),
			delta:      append([]float64(nil), add...),
			subtreeSum: append([]float64(nil), add...),
		}
		t.n++
	} else {
		allZero := true
		for i := range mid.delta {
			mid.delta[i] += add[i]
			if mid.delta[i] != 0 {
				allZero = false
			}
		}
		if allZero {
			mid = nil
			t.n--
		} else {
			recompute(mid) // split stripped the children; sums follow delta
		}
	}
	t.root = join(join(left, mid), right)
}

// At returns the active tuple count and the per-attribute sums holding at
// instant ts.
func (t *Tree) At(ts temporal.Chronon) (count float64, sums []float64) {
	acc := make([]float64, t.p+1)
	prefix(t.root, ts, acc)
	return acc[0], acc[1:]
}

// AvgAt returns the average of attribute d at instant ts and whether any
// tuple is active there.
func (t *Tree) AvgAt(ts temporal.Chronon, d int) (float64, bool) {
	count, sums := t.At(ts)
	if count == 0 {
		return 0, false
	}
	return sums[d] / count, true
}

// Sequence materializes the current state as a sequential relation over the
// given aggregate functions, mirroring ITA's output for sum/count/avg.
// fns[d] selects what column d reports from attribute attr[d]; attr is
// ignored for "count".
type Column struct {
	// Fn is "sum", "count" or "avg".
	Fn string
	// Attr is the 0-based attribute index (ignored for count).
	Attr int
	// Name labels the output column.
	Name string
}

// Sequence walks the endpoints in order and emits the coalesced constant
// intervals where at least one tuple is active.
func (t *Tree) Sequence(cols []Column) (*temporal.Sequence, error) {
	for _, c := range cols {
		switch c.Fn {
		case "sum", "avg":
			if c.Attr < 0 || c.Attr >= t.p {
				return nil, fmt.Errorf("sbtree: column %q references attribute %d of %d", c.Name, c.Attr, t.p)
			}
		case "count":
		default:
			return nil, fmt.Errorf("sbtree: unsupported column function %q", c.Fn)
		}
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	out := temporal.NewSequence(nil, names)
	gid := out.Groups.Intern(nil)

	// In-order endpoint walk with running totals.
	acc := make([]float64, t.p+1)
	var keys []temporal.Chronon
	var deltas [][]float64
	collect(t.root, &keys, &deltas)
	aggBuf := make([]float64, len(cols))
	for i := 0; i < len(keys); i++ {
		for j := range acc {
			acc[j] += deltas[i][j]
		}
		if acc[0] == 0 {
			continue // no active tuples until the next endpoint
		}
		if i+1 >= len(keys) {
			return nil, fmt.Errorf("sbtree: inconsistent state: positive count after the last endpoint")
		}
		iv := temporal.Interval{Start: keys[i], End: keys[i+1] - 1}
		for j, c := range cols {
			switch c.Fn {
			case "sum":
				aggBuf[j] = acc[c.Attr+1]
			case "count":
				aggBuf[j] = acc[0]
			case "avg":
				aggBuf[j] = acc[c.Attr+1] / acc[0]
			}
		}
		n := len(out.Rows)
		if n > 0 && out.Rows[n-1].T.End+1 == iv.Start && equal(out.Rows[n-1].Aggs, aggBuf) {
			out.Rows[n-1].T.End = iv.End
			continue
		}
		out.Rows = append(out.Rows, temporal.SeqRow{
			Group: gid,
			Aggs:  append([]float64(nil), aggBuf...),
			T:     iv,
		})
	}
	return out, nil
}

func equal(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- treap plumbing ---

func recompute(n *node) {
	for i := range n.subtreeSum {
		n.subtreeSum[i] = n.delta[i]
	}
	if n.left != nil {
		for i := range n.subtreeSum {
			n.subtreeSum[i] += n.left.subtreeSum[i]
		}
	}
	if n.right != nil {
		for i := range n.subtreeSum {
			n.subtreeSum[i] += n.right.subtreeSum[i]
		}
	}
}

// split partitions by key into (< key), (== key), (> key).
func split(n *node, key temporal.Chronon) (left, mid, right *node) {
	if n == nil {
		return nil, nil, nil
	}
	switch {
	case key < n.key:
		l, m, r := split(n.left, key)
		n.left = r
		recompute(n)
		return l, m, n
	case key > n.key:
		l, m, r := split(n.right, key)
		n.right = l
		recompute(n)
		return n, m, r
	default:
		l, r := n.left, n.right
		n.left, n.right = nil, nil
		recompute(n)
		return l, n, r
	}
}

// join concatenates two treaps where every key of a precedes every key of b.
func join(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.priority >= b.priority:
		a.right = join(a.right, b)
		recompute(a)
		return a
	default:
		b.left = join(a, b.left)
		recompute(b)
		return b
	}
}

// prefix accumulates delta sums over keys ≤ ts.
func prefix(n *node, ts temporal.Chronon, acc []float64) {
	for n != nil {
		if n.key <= ts {
			if n.left != nil {
				for i := range acc {
					acc[i] += n.left.subtreeSum[i]
				}
			}
			for i := range acc {
				acc[i] += n.delta[i]
			}
			n = n.right
		} else {
			n = n.left
		}
	}
}

// collect lists keys and deltas in order.
func collect(n *node, keys *[]temporal.Chronon, deltas *[][]float64) {
	if n == nil {
		return
	}
	collect(n.left, keys, deltas)
	*keys = append(*keys, n.key)
	*deltas = append(*deltas, n.delta)
	collect(n.right, keys, deltas)
}
