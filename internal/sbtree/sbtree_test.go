package sbtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/temporal"
)

func defaultCols() []Column {
	return []Column{
		{Fn: "sum", Attr: 0, Name: "sum_v"},
		{Fn: "count", Name: "count"},
		{Fn: "avg", Attr: 0, Name: "avg_v"},
	}
}

// TestSequenceMatchesITAProj: the incrementally maintained result equals
// the batch ITA result on the running example (ungrouped).
func TestSequenceMatchesITAProj(t *testing.T) {
	tr, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	proj := dataset.Proj()
	salIdx, _ := proj.Schema().Index("Sal")
	for i := 0; i < proj.Len(); i++ {
		tp := proj.Tuple(i)
		v, _ := tp.Vals[salIdx].Numeric()
		if err := tr.Insert(tp.T, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Sequence(defaultCols())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ita.Eval(proj, ita.Query{Aggs: []ita.AggSpec{
		{Func: ita.Sum, Attr: "Sal", As: "sum_v"},
		{Func: ita.Count, As: "count"},
		{Func: ita.Avg, Attr: "Sal", As: "avg_v"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Errorf("sbtree differs from ITA:\n%v\nvs\n%v", got, want)
	}
}

type tup struct {
	iv temporal.Interval
	v  float64
}

func randomTuples(rng *rand.Rand, n int) []tup {
	out := make([]tup, n)
	for i := range out {
		start := temporal.Chronon(rng.Intn(30))
		out[i] = tup{
			iv: temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(8))},
			v:  float64(rng.Intn(50) * 2),
		}
	}
	return out
}

// TestPropMatchesBruteForce: At() agrees with a direct scan at every
// instant, and Sequence() with instant-by-instant reconstruction.
func TestPropMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tuples := randomTuples(rng, 1+rng.Intn(20))
		tr, err := New(1, seed)
		if err != nil {
			return false
		}
		for _, tp := range tuples {
			if err := tr.Insert(tp.iv, []float64{tp.v}); err != nil {
				return false
			}
		}
		for ts := temporal.Chronon(-2); ts < 42; ts++ {
			var count, sum float64
			for _, tp := range tuples {
				if tp.iv.Contains(ts) {
					count++
					sum += tp.v
				}
			}
			gotCount, gotSums := tr.At(ts)
			if gotCount != count || math.Abs(gotSums[0]-sum) > 1e-9 {
				return false
			}
			avg, ok := tr.AvgAt(ts, 0)
			if ok != (count > 0) {
				return false
			}
			if ok && math.Abs(avg-sum/count) > 1e-9 {
				return false
			}
		}
		seq, err := tr.Sequence(defaultCols())
		return err == nil && seq.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropIncrementalDeleteUndo: inserting a batch and deleting a subset
// leaves exactly the state of inserting the complement.
func TestPropIncrementalDeleteUndo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tuples := randomTuples(rng, 2+rng.Intn(20))
		keep := rng.Intn(len(tuples))

		full, err := New(1, seed)
		if err != nil {
			return false
		}
		for _, tp := range tuples {
			if err := full.Insert(tp.iv, []float64{tp.v}); err != nil {
				return false
			}
		}
		for _, tp := range tuples[keep:] {
			if err := full.Delete(tp.iv, []float64{tp.v}); err != nil {
				return false
			}
		}

		fresh, err := New(1, seed+1)
		if err != nil {
			return false
		}
		for _, tp := range tuples[:keep] {
			if err := fresh.Insert(tp.iv, []float64{tp.v}); err != nil {
				return false
			}
		}
		a, err1 := full.Sequence(defaultCols())
		b, err2 := fresh.Sequence(defaultCols())
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Equal(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDeleteAllEmpties: removing everything leaves an empty tree (deltas
// cancel and nodes vanish).
func TestDeleteAllEmpties(t *testing.T) {
	tr, _ := New(1, 3)
	iv := temporal.Interval{Start: 2, End: 9}
	if err := tr.Insert(iv, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("expected endpoints after insert")
	}
	if err := tr.Delete(iv, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after full delete, want 0", tr.Len())
	}
	seq, err := tr.Sequence(defaultCols())
	if err != nil || seq.Len() != 0 {
		t.Errorf("sequence after full delete: %d rows, %v", seq.Len(), err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(-1, 1); err == nil {
		t.Error("negative p should fail")
	}
	tr, _ := New(1, 1)
	if err := tr.Insert(temporal.Interval{Start: 5, End: 2}, []float64{1}); err == nil {
		t.Error("invalid interval should fail")
	}
	if err := tr.Insert(temporal.Inst(1), []float64{1, 2}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := tr.Delete(temporal.Interval{Start: 5, End: 2}, []float64{1}); err == nil {
		t.Error("invalid delete interval should fail")
	}
	if err := tr.Delete(temporal.Inst(1), nil); err == nil {
		t.Error("delete arity mismatch should fail")
	}
	if _, err := tr.Sequence([]Column{{Fn: "median", Attr: 0}}); err == nil {
		t.Error("unsupported column should fail")
	}
	if _, err := tr.Sequence([]Column{{Fn: "sum", Attr: 7}}); err == nil {
		t.Error("out-of-range attribute should fail")
	}
}

// TestSequenceFeedsPTA: the maintained aggregate can flow straight into the
// PTA reduction — the end-to-end incremental pipeline.
func TestSequenceFeedsPTA(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, _ := New(1, 11)
	for _, tp := range randomTuples(rng, 40) {
		if err := tr.Insert(tp.iv, []float64{tp.v}); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := tr.Sequence([]Column{{Fn: "avg", Attr: 0, Name: "avg_v"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("invalid sequence: %v", err)
	}
}

func BenchmarkInsertQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr, _ := New(1, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := temporal.Chronon(rng.Intn(100000))
		if err := tr.Insert(temporal.Interval{Start: start, End: start + 50}, []float64{rng.Float64()}); err != nil {
			b.Fatal(err)
		}
		tr.At(start + 10)
	}
}
