package approx

import (
	"fmt"

	"repro/internal/temporal"
)

// PLA implements online piecewise linear approximation with a per-point
// precision guarantee in the spirit of Elmeleegy, Elmagarmid, Cecchet, Aref
// and Zwaenepoel ("Online piece-wise linear approximation of numerical
// streams with precision guarantees", PVLDB 2009), which the paper contrasts
// with PTA in Section 2.2: segments are linear functions, the error measure
// is the infinity norm (every point within ±eps of its segment), and a new
// segment starts only when the incoming point cannot be covered.
//
// The construction is the classic swing filter: a segment keeps a cone of
// feasible slopes anchored at its first point; every new point narrows the
// cone by intersecting it with the slopes that pass within ±eps of the
// point, and the segment closes when the cone empties.

// LinearSegment is y = Value0 + Slope·(t − T.Start) over T.
type LinearSegment struct {
	T      temporal.Interval
	Value0 float64
	Slope  float64
}

// At evaluates the segment at chronon t.
func (s LinearSegment) At(t temporal.Chronon) float64 {
	return s.Value0 + s.Slope*float64(t-s.T.Start)
}

// PLA compresses the series (one value per chronon starting at `start`) into
// linear segments whose pointwise deviation never exceeds eps.
func PLA(vals []float64, eps float64, start temporal.Chronon) ([]LinearSegment, error) {
	if eps < 0 {
		return nil, fmt.Errorf("approx: PLA tolerance %v, want ≥ 0", eps)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("approx: PLA of an empty series")
	}
	var out []LinearSegment
	i := 0
	for i < len(vals) {
		anchor := vals[i]
		lo, hi := -1e308, 1e308 // feasible slope cone
		j := i + 1
		for ; j < len(vals); j++ {
			dt := float64(j - i)
			upper := (vals[j] + eps - anchor) / dt
			lower := (vals[j] - eps - anchor) / dt
			// Tentatively narrow the cone; if it empties, the segment
			// closes before j and the cone reverts to the feasible one.
			nhi, nlo := hi, lo
			if upper < nhi {
				nhi = upper
			}
			if lower > nlo {
				nlo = lower
			}
			if nlo > nhi {
				break // cone empty: close the segment before j
			}
			lo, hi = nlo, nhi
		}
		slope := 0.0
		if j > i+1 {
			slope = (lo + hi) / 2
		}
		out = append(out, LinearSegment{
			T: temporal.Interval{
				Start: start + temporal.Chronon(i),
				End:   start + temporal.Chronon(j-1),
			},
			Value0: anchor,
			Slope:  slope,
		})
		i = j
	}
	return out, nil
}

// PLAReconstruct expands the segments back to one value per chronon.
func PLAReconstruct(segs []LinearSegment, n int, start temporal.Chronon) []float64 {
	out := make([]float64, n)
	for _, s := range segs {
		for t := s.T.Start; t <= s.T.End; t++ {
			idx := int(t - start)
			if idx >= 0 && idx < n {
				out[idx] = s.At(t)
			}
		}
	}
	return out
}
