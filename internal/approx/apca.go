package approx

import (
	"fmt"

	"repro/internal/temporal"
)

// APCA computes the adaptive piecewise constant approximation (Chakrabarti,
// Keogh, Mehrotra & Pazzani 2002) of a one-dimensional series with c
// segments: the series is decomposed into Haar coefficients, reconstructed
// from the c most significant ones (which yields up to ~3c plateaus), every
// plateau's value is replaced by the true mean of the underlying data, and
// the most similar adjacent segments are merged greedily until c remain.
// APCA is data-adaptive, but its segment boundaries are inherited from the
// non-adaptive wavelet decomposition — the weakness the paper's Fig. 2(f)
// and Fig. 15 demonstrate against gPTAc.
func APCA(vals []float64, c int, start temporal.Chronon) ([]Segment, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: APCA of an empty series")
	}
	if c < 1 {
		return nil, fmt.Errorf("approx: APCA segment count %d, want ≥ 1", c)
	}
	c = min(c, n)
	rec, err := DWTTopK(vals, c)
	if err != nil {
		return nil, err
	}

	// Plateau boundaries of the wavelet reconstruction, with true means.
	type seg struct {
		lo, hi int // half-open sample range
		sum    float64
		sqsum  float64
	}
	var segs []seg
	lo := 0
	for i := 1; i <= n; i++ {
		if i == n || rec[i] != rec[lo] {
			s := seg{lo: lo, hi: i}
			for _, v := range vals[lo:i] {
				s.sum += v
				s.sqsum += v * v
			}
			segs = append(segs, s)
			lo = i
		}
	}

	sse := func(s seg) float64 {
		n := float64(s.hi - s.lo)
		e := s.sqsum - s.sum*s.sum/n
		if e < 0 {
			return 0
		}
		return e
	}
	// Greedily merge the adjacent pair whose union increases the error
	// least until only c segments remain. A lazy-deletion binary heap of
	// candidate pairs keeps the step O(s log s), which matters when the
	// scalability experiments run APCA on millions of samples.
	type segNode struct {
		seg
		prev, next *segNode
		version    int
		dead       bool
	}
	var head *segNode
	{
		var tail *segNode
		for _, s := range segs {
			n := &segNode{seg: s}
			if tail == nil {
				head = n
			} else {
				tail.next = n
				n.prev = tail
			}
			tail = n
		}
	}
	type cand struct {
		inc     float64
		left    *segNode
		version int
	}
	var heap []cand
	less := func(a, b cand) bool { return a.inc < b.inc }
	push := func(c cand) {
		heap = append(heap, c)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() cand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r, best := 2*i+1, 2*i+2, i
			if l < len(heap) && less(heap[l], heap[best]) {
				best = l
			}
			if r < len(heap) && less(heap[r], heap[best]) {
				best = r
			}
			if best == i {
				break
			}
			heap[i], heap[best] = heap[best], heap[i]
			i = best
		}
		return top
	}
	pairInc := func(a, b *segNode) float64 {
		m := seg{lo: a.lo, hi: b.hi, sum: a.sum + b.sum, sqsum: a.sqsum + b.sqsum}
		return sse(m) - sse(a.seg) - sse(b.seg)
	}
	for n := head; n != nil && n.next != nil; n = n.next {
		push(cand{inc: pairInc(n, n.next), left: n, version: 0})
	}
	remaining := len(segs)
	for remaining > c && len(heap) > 0 {
		top := pop()
		l := top.left
		if l.dead || l.version != top.version || l.next == nil {
			continue // stale entry
		}
		r := l.next
		l.hi, l.sum, l.sqsum = r.hi, l.sum+r.sum, l.sqsum+r.sqsum
		l.next = r.next
		if r.next != nil {
			r.next.prev = l
		}
		r.dead = true
		l.version++
		remaining--
		if l.prev != nil {
			l.prev.version++
			push(cand{inc: pairInc(l.prev, l), left: l.prev, version: l.prev.version})
		}
		if l.next != nil {
			push(cand{inc: pairInc(l, l.next), left: l, version: l.version})
		}
	}

	out := make([]Segment, 0, remaining)
	for n := head; n != nil; n = n.next {
		out = append(out, Segment{
			T: temporal.Interval{
				Start: start + temporal.Chronon(n.lo),
				End:   start + temporal.Chronon(n.hi-1),
			},
			Vals: []float64{n.sum / float64(n.hi-n.lo)},
		})
	}
	return out, nil
}
