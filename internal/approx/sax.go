package approx

import (
	"fmt"
	"math"
)

// SAX implements symbolic aggregate approximation (Lin, Keogh, Wei & Lonardi
// 2007): the series is z-normalized, reduced to c segments with PAA, and
// each segment mean is mapped to one of w symbols chosen so that every
// symbol is equiprobable under a standard normal distribution. The paper
// lists SAX among the PAA-derived techniques whose limitations carry over
// (Section 2.2); it is provided for completeness of the baseline suite.

// SAXWord is a symbolic series representation.
type SAXWord struct {
	// Symbols holds one letter per segment, 'a' + bin index.
	Symbols []byte
	// Breakpoints are the w−1 standard-normal quantile boundaries used.
	Breakpoints []float64
	// Mean and Std of the original series (for reconstruction).
	Mean, Std float64
	// SegLen is the nominal segment length n/c.
	N, C int
}

// String returns the word as text, e.g. "accbba".
func (w *SAXWord) String() string { return string(w.Symbols) }

// saxBreakpoints returns the w−1 boundaries splitting the standard normal
// into w equiprobable bins.
func saxBreakpoints(w int) []float64 {
	bps := make([]float64, w-1)
	for i := 1; i < w; i++ {
		bps[i-1] = normalQuantile(float64(i) / float64(w))
	}
	return bps
}

// normalQuantile computes the standard normal inverse CDF with the
// Beasley-Springer-Moro / Acklam rational approximation (|ε| < 1.15e-9),
// refined by one Halley step — ample for symbol boundaries.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	pLow, pHigh := 0.02425, 1-0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the CDF error.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// SAX converts vals into a word of c symbols over an alphabet of w letters.
func SAX(vals []float64, c, w int) (*SAXWord, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: SAX of an empty series")
	}
	if c < 1 || c > n {
		return nil, fmt.Errorf("approx: SAX word length %d outside 1..%d", c, n)
	}
	if w < 2 || w > 26 {
		return nil, fmt.Errorf("approx: SAX alphabet size %d outside 2..26", w)
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	std := math.Sqrt(variance / float64(n))
	if std == 0 {
		std = 1 // constant series: all symbols map to the middle bin
	}

	segs, err := PAA(vals, c, 0)
	if err != nil {
		return nil, err
	}
	bps := saxBreakpoints(w)
	word := &SAXWord{Breakpoints: bps, Mean: mean, Std: std, N: n, C: len(segs)}
	for _, sg := range segs {
		z := (sg.Vals[0] - mean) / std
		bin := 0
		for bin < len(bps) && z > bps[bin] {
			bin++
		}
		word.Symbols = append(word.Symbols, byte('a'+bin))
	}
	return word, nil
}

// Reconstruct maps every symbol back to the centre of its normal bin (outer
// bins use the breakpoint ± half the median bin width) and expands segments
// to full resolution — a coarse numeric rendering used only for error
// comparisons.
func (w *SAXWord) Reconstruct() []float64 {
	bps := w.Breakpoints
	bins := len(bps) + 1
	centers := make([]float64, bins)
	for i := 0; i < bins; i++ {
		switch {
		case i == 0:
			centers[i] = bps[0] - 0.5
		case i == bins-1:
			centers[i] = bps[len(bps)-1] + 0.5
		default:
			centers[i] = (bps[i-1] + bps[i]) / 2
		}
	}
	out := make([]float64, w.N)
	for k, sym := range w.Symbols {
		lo := k * w.N / w.C
		hi := (k + 1) * w.N / w.C
		v := centers[sym-'a']*w.Std + w.Mean
		for i := lo; i < hi; i++ {
			out[i] = v
		}
	}
	return out
}
