package approx

import (
	"fmt"

	"repro/internal/temporal"
)

// PAA computes the piecewise aggregate approximation (Keogh & Pazzani 2000;
// "segmented means" of Yi & Faloutsos 2000) of a one-dimensional series: the
// series is cut into c segments of (near-)equal length and each segment is
// represented by its mean. PAA ignores the data distribution entirely — the
// property the paper contrasts with PTA's data-adaptive segments.
func PAA(vals []float64, c int, start temporal.Chronon) ([]Segment, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: PAA of an empty series")
	}
	if c < 1 {
		return nil, fmt.Errorf("approx: PAA segment count %d, want ≥ 1", c)
	}
	c = min(c, n)
	out := make([]Segment, 0, c)
	for k := 0; k < c; k++ {
		lo := k * n / c
		hi := (k + 1) * n / c
		if hi <= lo {
			continue
		}
		out = append(out, Segment{
			T: temporal.Interval{
				Start: start + temporal.Chronon(lo),
				End:   start + temporal.Chronon(hi-1),
			},
			Vals: []float64{meanRange(vals, lo, hi)},
		})
	}
	return out, nil
}

// PAAReconstruct expands the PAA of vals back to full resolution.
func PAAReconstruct(vals []float64, c int) ([]float64, error) {
	segs, err := PAA(vals, c, 0)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for _, sg := range segs {
		for t := sg.T.Start; t <= sg.T.End; t++ {
			out[t] = sg.Vals[0]
		}
	}
	return out, nil
}
