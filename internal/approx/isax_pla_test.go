package approx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// --- iSAX ---

func TestISAXSymbolString(t *testing.T) {
	for _, tc := range []struct {
		sym  ISAXSymbol
		want string
	}{
		{ISAXSymbol{Bin: 3, Card: 8}, "011"},
		{ISAXSymbol{Bin: 0, Card: 2}, "0"},
		{ISAXSymbol{Bin: 1, Card: 2}, "1"},
		{ISAXSymbol{Bin: 7, Card: 8}, "111"},
	} {
		if got := tc.sym.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.sym, got, tc.want)
		}
	}
}

func TestISAXWordShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := randSeries(rng, 128)
	word, err := ISAX(vals, 8, 4)
	if err != nil {
		t.Fatalf("ISAX: %v", err)
	}
	if len(word.Symbols) != 8 {
		t.Fatalf("symbols = %d", len(word.Symbols))
	}
	for _, s := range word.Symbols {
		if s.Card != 4 || s.Bin < 0 || s.Bin >= 4 {
			t.Errorf("symbol %+v out of range", s)
		}
	}
	if len(word.String()) == 0 {
		t.Error("empty word rendering")
	}
}

func TestISAXMatchesSAXBins(t *testing.T) {
	// At the same cardinality the iSAX bins must agree with SAX letters.
	rng := rand.New(rand.NewSource(3))
	vals := randSeries(rng, 64)
	sax, err := SAX(vals, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	isax, err := ISAX(vals, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sax.Symbols {
		if int(sax.Symbols[i]-'a') != isax.Symbols[i].Bin {
			t.Errorf("segment %d: SAX bin %d vs iSAX bin %d", i, sax.Symbols[i]-'a', isax.Symbols[i].Bin)
		}
	}
}

func TestISAXPromoteCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := randSeries(rng, 64)
	word, err := ISAX(vals, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	promoted, err := word.Promote(vals, 1)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if promoted.Symbols[1].Card != 4 {
		t.Errorf("promoted cardinality = %d, want 4", promoted.Symbols[1].Card)
	}
	// The refined symbol must stay compatible with the coarse one.
	if !word.Symbols[1].Compatible(promoted.Symbols[1]) {
		t.Errorf("promotion broke prefix compatibility: %v vs %v", word.Symbols[1], promoted.Symbols[1])
	}
	// The original word is unchanged.
	if word.Symbols[1].Card != 2 {
		t.Error("Promote mutated the receiver")
	}
}

func TestISAXCompatiblePropPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cardA := 2 << uint(rng.Intn(3)) // 2, 4, 8
		cardB := cardA << uint(rng.Intn(3))
		binB := rng.Intn(cardB)
		shift := 0
		for c := cardB; c > cardA; c >>= 1 {
			shift++
		}
		a := ISAXSymbol{Bin: binB >> uint(shift), Card: cardA}
		b := ISAXSymbol{Bin: binB, Card: cardB}
		if !a.Compatible(b) || !b.Compatible(a) {
			return false
		}
		// A different coarse bin must be incompatible.
		other := ISAXSymbol{Bin: (a.Bin + 1) % cardA, Card: cardA}
		return !other.Compatible(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestISAXValidation(t *testing.T) {
	if _, err := ISAX(nil, 1, 4); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := ISAX([]float64{1, 2}, 1, 3); err == nil {
		t.Error("non-power-of-two cardinality should fail")
	}
	if _, err := ISAX([]float64{1, 2}, 5, 4); err == nil {
		t.Error("c > n should fail")
	}
	word, _ := ISAX([]float64{1, 2, 3, 4}, 2, 256)
	if _, err := word.Promote([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Error("promoting past the cardinality limit should fail")
	}
	if _, err := word.Promote([]float64{1, 2, 3, 4}, 9); err == nil {
		t.Error("out-of-range symbol index should fail")
	}
}

// --- PLA ---

func TestPLAExactLine(t *testing.T) {
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 3 + 0.5*float64(i)
	}
	segs, err := PLA(vals, 1e-9, 7)
	if err != nil {
		t.Fatalf("PLA: %v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("a straight line needs 1 segment, got %d", len(segs))
	}
	if segs[0].T != (temporal.Interval{Start: 7, End: 56}) {
		t.Errorf("segment span = %v", segs[0].T)
	}
	if math.Abs(segs[0].Slope-0.5) > 1e-9 {
		t.Errorf("slope = %v, want 0.5", segs[0].Slope)
	}
}

func TestPLAPropInfinityNormGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randSeries(rng, 10+rng.Intn(100))
		eps := 1 + rng.Float64()*20
		segs, err := PLA(vals, eps, 0)
		if err != nil {
			return false
		}
		rec := PLAReconstruct(segs, len(vals), 0)
		for i := range vals {
			if math.Abs(vals[i]-rec[i]) > eps+1e-6 {
				return false
			}
		}
		// Segments must tile the domain.
		var at temporal.Chronon
		for _, s := range segs {
			if s.T.Start != at {
				return false
			}
			at = s.T.End + 1
		}
		return at == temporal.Chronon(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPLAPropLooserToleranceFewerSegments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randSeries(rng, 80)
		tight, err1 := PLA(vals, 1, 0)
		loose, err2 := PLA(vals, 50, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return len(loose) <= len(tight)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPLAValidation(t *testing.T) {
	if _, err := PLA(nil, 1, 0); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := PLA([]float64{1}, -1, 0); err == nil {
		t.Error("negative tolerance should fail")
	}
	segs, err := PLA([]float64{42}, 0, 5)
	if err != nil || len(segs) != 1 || segs[0].At(5) != 42 {
		t.Errorf("single point: %v, %v", segs, err)
	}
}
