package approx

import (
	"fmt"
	"math"
	"sort"
)

// The discrete Fourier transform baseline (Li, Yu & Castelli 1996): the
// series is approximated by the inverse transform of its c
// largest-magnitude frequency coefficients (kept in conjugate-symmetric
// pairs so the reconstruction stays real). Unlike PTA the result is a
// continuous curve, not a step function — Fig. 2(c).

// FFT computes the in-place radix-2 Cooley-Tukey fast Fourier transform of
// the complex signal (re, im). The length must be a power of two.
func FFT(re, im []float64) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("approx: FFT real/imaginary length mismatch %d vs %d", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("approx: FFT needs a power-of-two length, got %d", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			curRe, curIm := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				uRe, uIm := re[i+j], im[i+j]
				vRe := re[i+j+length/2]*curRe - im[i+j+length/2]*curIm
				vIm := re[i+j+length/2]*curIm + im[i+j+length/2]*curRe
				re[i+j], im[i+j] = uRe+vRe, uIm+vIm
				re[i+j+length/2], im[i+j+length/2] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
	return nil
}

// IFFT computes the inverse transform of FFT.
func IFFT(re, im []float64) error {
	for i := range im {
		im[i] = -im[i]
	}
	if err := FFT(re, im); err != nil {
		return err
	}
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] = -im[i] / n
	}
	return nil
}

// DFTNaive is the O(n²) direct transform, used to cross-check FFT in tests.
func DFTNaive(re, im []float64) ([]float64, []float64) {
	n := len(re)
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			outRe[k] += re[t]*c - im[t]*s
			outIm[k] += re[t]*s + im[t]*c
		}
	}
	return outRe, outIm
}

// DFTTopK reconstructs vals from its c largest-magnitude Fourier
// coefficients. Conjugate-symmetric partners count as one retained
// coefficient pair, matching the usual accounting in similarity-search work.
// The input is zero padded to a power of two and the reconstruction
// truncated back to the original length.
func DFTTopK(vals []float64, c int) ([]float64, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: DFT of an empty series")
	}
	if c < 1 {
		return nil, fmt.Errorf("approx: DFT coefficient count %d, want ≥ 1", c)
	}
	m := NextPow2(n)
	re := make([]float64, m)
	im := make([]float64, m)
	copy(re, vals)
	if err := FFT(re, im); err != nil {
		return nil, err
	}
	// Rank frequencies 0..m/2 by magnitude (conjugate halves are mirrors).
	half := m/2 + 1
	idx := make([]int, half)
	for i := range idx {
		idx[i] = i
	}
	mag := func(k int) float64 { return re[k]*re[k] + im[k]*im[k] }
	sort.Slice(idx, func(a, b int) bool { return mag(idx[a]) > mag(idx[b]) })
	keep := make([]bool, m)
	for i := 0; i < min(c, half); i++ {
		k := idx[i]
		keep[k] = true
		if k != 0 && k != m/2 {
			keep[m-k] = true // conjugate partner
		}
	}
	for k := range keep {
		if !keep[k] {
			re[k], im[k] = 0, 0
		}
	}
	if err := IFFT(re, im); err != nil {
		return nil, err
	}
	return re[:n], nil
}
