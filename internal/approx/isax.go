package approx

import (
	"fmt"
	"math"
	"strings"
)

// iSAX (Shieh & Keogh, KDD 2008) extends SAX with per-symbol cardinalities:
// each symbol is a binary word whose length may differ between symbols, so a
// word can be promoted to a finer resolution without re-reading the series.
// The paper lists iSAX as the scalable variant of SAX whose PAA-inherited
// limitations carry over (Section 2.2); it is provided to round out the
// symbolic baseline.

// ISAXSymbol is one segment's symbol: the breakpoint bin at the given
// cardinality (a power of two).
type ISAXSymbol struct {
	// Bin is the index of the bin under Card equiprobable bins, counted
	// from the lowest values.
	Bin int
	// Card is the cardinality (number of bins), a power of two ≥ 2.
	Card int
}

// String renders the symbol as its binary word, e.g. "011" for bin 3 of
// cardinality 8.
func (s ISAXSymbol) String() string {
	bits := 0
	for c := s.Card; c > 1; c >>= 1 {
		bits++
	}
	out := make([]byte, bits)
	for i := bits - 1; i >= 0; i-- {
		if s.Bin&(1<<uint(bits-1-i)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// ISAXWord is an iSAX representation: one symbol per PAA segment, each at
// its own cardinality.
type ISAXWord struct {
	Symbols []ISAXSymbol
	// Mean and Std of the original series (z-normalization parameters).
	Mean, Std float64
	N         int
}

// String renders the word as binary symbols joined by dots, with the
// cardinality as a suffix: "01.1.11" style words of the iSAX papers.
func (w *ISAXWord) String() string {
	parts := make([]string, len(w.Symbols))
	for i, s := range w.Symbols {
		parts[i] = s.String()
	}
	return strings.Join(parts, ".")
}

// ISAX builds a word of c segments, all at the given cardinality.
func ISAX(vals []float64, c, card int) (*ISAXWord, error) {
	if card < 2 || card&(card-1) != 0 || card > 256 {
		return nil, fmt.Errorf("approx: iSAX cardinality %d must be a power of two in 2..256", card)
	}
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: iSAX of an empty series")
	}
	if c < 1 || c > n {
		return nil, fmt.Errorf("approx: iSAX word length %d outside 1..%d", c, n)
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	std := 1.0
	if variance > 0 {
		std = math.Sqrt(variance / float64(n))
	}
	segs, err := PAA(vals, c, 0)
	if err != nil {
		return nil, err
	}
	bps := saxBreakpoints(card)
	word := &ISAXWord{Mean: mean, Std: std, N: n}
	for _, sg := range segs {
		z := (sg.Vals[0] - mean) / std
		bin := 0
		for bin < len(bps) && z > bps[bin] {
			bin++
		}
		word.Symbols = append(word.Symbols, ISAXSymbol{Bin: bin, Card: card})
	}
	return word, nil
}

// Promote returns a copy of the word with the i-th symbol refined to twice
// its cardinality using the original series — the iSAX indexing split step.
func (w *ISAXWord) Promote(vals []float64, i int) (*ISAXWord, error) {
	if i < 0 || i >= len(w.Symbols) {
		return nil, fmt.Errorf("approx: symbol index %d outside 0..%d", i, len(w.Symbols)-1)
	}
	newCard := w.Symbols[i].Card * 2
	if newCard > 256 {
		return nil, fmt.Errorf("approx: cardinality limit reached at symbol %d", i)
	}
	c := len(w.Symbols)
	lo := i * w.N / c
	hi := (i + 1) * w.N / c
	if hi <= lo {
		hi = lo + 1
	}
	segMean := meanRange(vals, lo, hi)
	z := (segMean - w.Mean) / w.Std
	bps := saxBreakpoints(newCard)
	bin := 0
	for bin < len(bps) && z > bps[bin] {
		bin++
	}
	out := &ISAXWord{Mean: w.Mean, Std: w.Std, N: w.N,
		Symbols: append([]ISAXSymbol(nil), w.Symbols...)}
	out.Symbols[i] = ISAXSymbol{Bin: bin, Card: newCard}
	return out, nil
}

// Compatible reports whether two symbols can describe the same value: the
// coarser symbol's bin must be the prefix of the finer one's. It is the
// match test of iSAX index traversal.
func (a ISAXSymbol) Compatible(b ISAXSymbol) bool {
	if a.Card > b.Card {
		a, b = b, a
	}
	// Reduce b to a's cardinality by dropping low bits.
	shift := 0
	for c := b.Card; c > a.Card; c >>= 1 {
		shift++
	}
	return b.Bin>>uint(shift) == a.Bin
}
