package approx

import (
	"fmt"
	"math"
	"sort"
)

// The discrete wavelet transform baseline (Agrawal, Faloutsos & Swami 1993;
// Stollnitz, DeRose & Salesin 1995) with orthonormal Haar wavelets:
// neighbouring values are recursively averaged, and a step function is
// restored from the c most influential coefficients. Because the transform
// needs a power-of-two length, shorter inputs are zero padded — the paper
// points out the resulting fluctuation at the right-hand side of Fig. 2(b).

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// HaarForward computes the orthonormal Haar wavelet transform of vals, whose
// length must be a power of two. Index 0 carries the overall (scaled)
// average; the remaining indices carry detail coefficients from coarsest to
// finest, in Mallat order.
func HaarForward(vals []float64) ([]float64, error) {
	n := len(vals)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("approx: Haar transform needs a power-of-two length, got %d", n)
	}
	out := append([]float64(nil), vals...)
	buf := make([]float64, n)
	inv2 := 1 / math.Sqrt2
	for length := n; length > 1; length >>= 1 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			buf[i] = (a + b) * inv2
			buf[half+i] = (a - b) * inv2
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// HaarInverse undoes HaarForward.
func HaarInverse(coefs []float64) ([]float64, error) {
	n := len(coefs)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("approx: Haar inverse needs a power-of-two length, got %d", n)
	}
	out := append([]float64(nil), coefs...)
	buf := make([]float64, n)
	inv2 := 1 / math.Sqrt2
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		for i := 0; i < half; i++ {
			s, d := out[i], out[half+i]
			buf[2*i] = (s + d) * inv2
			buf[2*i+1] = (s - d) * inv2
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// DWTTopK reconstructs vals from the k largest-magnitude Haar coefficients
// (zero padding to a power of two, truncating the padding afterwards).
// Because the basis is orthonormal, keeping the largest coefficients
// minimizes the L2 reconstruction error for the padded signal.
func DWTTopK(vals []float64, k int) ([]float64, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: DWT of an empty series")
	}
	if k < 1 {
		return nil, fmt.Errorf("approx: DWT coefficient count %d, want ≥ 1", k)
	}
	padded := make([]float64, NextPow2(n))
	copy(padded, vals)
	coefs, err := HaarForward(padded)
	if err != nil {
		return nil, err
	}
	if k < len(coefs) {
		idx := make([]int, len(coefs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(coefs[idx[a]]) > math.Abs(coefs[idx[b]])
		})
		keep := make(map[int]bool, k)
		for _, i := range idx[:k] {
			keep[i] = true
		}
		for i := range coefs {
			if !keep[i] {
				coefs[i] = 0
			}
		}
	}
	rec, err := HaarInverse(coefs)
	if err != nil {
		return nil, err
	}
	return rec[:n], nil
}

// DWTWithSegments searches for a coefficient budget whose reconstruction has
// exactly c plateaus and minimal error — the protocol the paper uses to make
// DWT comparable to size-bounded PTA ("the signal restored from k
// coefficients will contain from k to 3k intervals", Section 7.2.2). If no
// budget yields exactly c plateaus, the reconstruction with the closest
// plateau count (ties: smaller error) is returned.
func DWTWithSegments(vals []float64, c int) (recon []float64, coefs int, err error) {
	n := len(vals)
	if n == 0 {
		return nil, 0, fmt.Errorf("approx: DWT of an empty series")
	}
	if c < 1 {
		return nil, 0, fmt.Errorf("approx: DWT segment count %d, want ≥ 1", c)
	}
	// Transform and rank coefficients once; every candidate k then needs
	// only an O(n) inverse transform. A reconstruction from k coefficients
	// has between 1 and ~3k plateaus, so the scan window [1, 4c] suffices;
	// if it somehow misses, the closest plateau count wins.
	padded := make([]float64, NextPow2(n))
	copy(padded, vals)
	full, err := HaarForward(padded)
	if err != nil {
		return nil, 0, err
	}
	order := make([]int, len(full))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(full[order[a]]) > math.Abs(full[order[b]])
	})

	type cand struct {
		rec     []float64
		k       int
		segDist int
		sse     float64
	}
	var best *cand
	maxK := min(len(full), 4*c+4)
	trunc := make([]float64, len(full))
	for k := 1; k <= maxK; k++ {
		trunc[order[k-1]] = full[order[k-1]]
		rec, err := HaarInverse(trunc)
		if err != nil {
			return nil, 0, err
		}
		rec = rec[:n]
		segs := CountPlateaus(rec)
		dist := segs - c
		if dist < 0 {
			dist = -dist
		}
		var sse float64
		for i, v := range vals {
			d := v - rec[i]
			sse += d * d
		}
		if best == nil || dist < best.segDist || (dist == best.segDist && sse < best.sse) {
			best = &cand{rec: rec, k: k, segDist: dist, sse: sse}
		}
	}
	return best.rec, best.k, nil
}
