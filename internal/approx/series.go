// Package approx implements the time-series approximation baselines the
// paper compares PTA against (Sections 2.2 and 7): approximate temporal
// coalescing (ATC), piecewise aggregate approximation (PAA), adaptive
// piecewise constant approximation (APCA), discrete Haar wavelet transform
// (DWT), discrete Fourier transform (DFT), Chebyshev polynomial
// approximation, and symbolic aggregate approximation (SAX).
//
// Except for ATC — which operates on full sequential relations with
// aggregation groups and temporal gaps — the baselines work on Series: a
// gap-free, single-group time series with one sample per chronon, obtained
// from an ITA result via FromSequence. This mirrors the paper's observation
// that classic time-series techniques "cannot cope with multiple aggregation
// groups and temporal gaps".
package approx

import (
	"fmt"

	"repro/internal/temporal"
)

// Series is a regular, gap-free time series: sample t of dimension d lives
// at chronon Start+t with value Dims[d][t].
type Series struct {
	Start temporal.Chronon
	Dims  [][]float64
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if len(s.Dims) == 0 {
		return 0
	}
	return len(s.Dims[0])
}

// P returns the number of dimensions.
func (s *Series) P() int { return len(s.Dims) }

// FromSequence expands a single-group, gap-free sequential relation into a
// regular series with one sample per chronon. It reports an error when the
// relation spans several aggregation groups or contains temporal gaps.
func FromSequence(seq *temporal.Sequence) (*Series, error) {
	if seq.Len() == 0 {
		return nil, fmt.Errorf("approx: empty sequence")
	}
	if seq.Groups.Len() > 1 {
		return nil, fmt.Errorf("approx: sequence has %d aggregation groups; time-series methods need exactly one", seq.Groups.Len())
	}
	if gaps := seq.GapPositions(); len(gaps) > 0 {
		return nil, fmt.Errorf("approx: sequence has %d temporal gaps; time-series methods need none", len(gaps))
	}
	p := seq.P()
	n := int(seq.TotalLen())
	out := &Series{Start: seq.Rows[0].T.Start, Dims: make([][]float64, p)}
	for d := 0; d < p; d++ {
		out.Dims[d] = make([]float64, 0, n)
	}
	for _, row := range seq.Rows {
		for k := int64(0); k < row.T.Len(); k++ {
			for d := 0; d < p; d++ {
				out.Dims[d] = append(out.Dims[d], row.Aggs[d])
			}
		}
	}
	return out, nil
}

// Segment is one constant piece of a step-function approximation.
type Segment struct {
	T    temporal.Interval
	Vals []float64
}

// SegmentsToSequence packages a step function over the series' time range as
// a single-group sequential relation, so core.SSEBetween and the PTA
// machinery can consume baseline outputs.
func SegmentsToSequence(segs []Segment, aggNames []string) *temporal.Sequence {
	seq := temporal.NewSequence(nil, aggNames)
	gid := seq.Groups.Intern(nil)
	for _, sg := range segs {
		seq.Rows = append(seq.Rows, temporal.SeqRow{
			Group: gid,
			Aggs:  append([]float64(nil), sg.Vals...),
			T:     sg.T,
		})
	}
	return seq
}

// SSEReconstruction returns the sum squared error of a full-resolution
// reconstruction against the series, per dimension weight w2 (nil = 1).
// Reconstruction dimension d must have at least Len() samples; extra
// samples (e.g. wavelet padding) are ignored.
func (s *Series) SSEReconstruction(recon [][]float64, w2 []float64) float64 {
	var total float64
	for d := range s.Dims {
		w := 1.0
		if w2 != nil {
			w = w2[d]
		}
		for t, v := range s.Dims[d] {
			diff := v - recon[d][t]
			total += w * diff * diff
		}
	}
	return total
}

// SSESegments returns the sum squared error of a step function against the
// series.
func (s *Series) SSESegments(segs []Segment, w2 []float64) float64 {
	var total float64
	for _, sg := range segs {
		for t := sg.T.Start; t <= sg.T.End; t++ {
			idx := int(t - s.Start)
			if idx < 0 || idx >= s.Len() {
				continue
			}
			for d := range s.Dims {
				w := 1.0
				if w2 != nil {
					w = w2[d]
				}
				diff := s.Dims[d][idx] - sg.Vals[d]
				total += w * diff * diff
			}
		}
	}
	return total
}

// CountPlateaus returns the number of maximal constant runs in vals — the
// "segments" of a reconstructed step signal (used to size DWT results).
func CountPlateaus(vals []float64) int {
	if len(vals) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			n++
		}
	}
	return n
}

// PlateausToSegments converts a full-resolution step reconstruction into
// explicit segments anchored at chronon start.
func PlateausToSegments(vals []float64, start temporal.Chronon) []Segment {
	if len(vals) == 0 {
		return nil
	}
	var out []Segment
	lo := 0
	for i := 1; i <= len(vals); i++ {
		if i == len(vals) || vals[i] != vals[lo] {
			out = append(out, Segment{
				T:    temporal.Interval{Start: start + temporal.Chronon(lo), End: start + temporal.Chronon(i-1)},
				Vals: []float64{vals[lo]},
			})
			lo = i
		}
	}
	return out
}

// meanRange is a helper returning the mean of vals[lo:hi].
func meanRange(vals []float64, lo, hi int) float64 {
	var s float64
	for _, v := range vals[lo:hi] {
		s += v
	}
	return s / float64(hi-lo)
}
