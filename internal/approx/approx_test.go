package approx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func lineSeries(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	return vals
}

func randSeries(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Round(rng.Float64()*1000) / 8
	}
	return vals
}

// --- Series conversions ---

func unitSequence(vals []float64) *temporal.Sequence {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	for i, v := range vals {
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: []float64{v},
			T: temporal.Inst(temporal.Chronon(i))})
	}
	return seq
}

func TestFromSequenceExpandsRuns(t *testing.T) {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	seq.Rows = []temporal.SeqRow{
		{Group: gid, Aggs: []float64{5}, T: temporal.Interval{Start: 0, End: 2}},
		{Group: gid, Aggs: []float64{7}, T: temporal.Interval{Start: 3, End: 3}},
	}
	s, err := FromSequence(seq)
	if err != nil {
		t.Fatalf("FromSequence: %v", err)
	}
	want := []float64{5, 5, 5, 7}
	if s.Len() != 4 || s.P() != 1 {
		t.Fatalf("series %dx%d", s.P(), s.Len())
	}
	for i, v := range want {
		if s.Dims[0][i] != v {
			t.Errorf("sample %d = %v, want %v", i, s.Dims[0][i], v)
		}
	}
}

func TestFromSequenceRejectsGapsAndGroups(t *testing.T) {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	seq.Rows = []temporal.SeqRow{
		{Group: gid, Aggs: []float64{1}, T: temporal.Interval{Start: 0, End: 0}},
		{Group: gid, Aggs: []float64{2}, T: temporal.Interval{Start: 5, End: 5}},
	}
	if _, err := FromSequence(seq); err == nil {
		t.Error("gap should be rejected")
	}
	multi := temporal.NewSequence([]temporal.Attribute{{Name: "g", Kind: temporal.KindString}}, []string{"v"})
	a := multi.Groups.Intern([]temporal.Datum{temporal.String("a")})
	b := multi.Groups.Intern([]temporal.Datum{temporal.String("b")})
	multi.Rows = []temporal.SeqRow{
		{Group: a, Aggs: []float64{1}, T: temporal.Inst(0)},
		{Group: b, Aggs: []float64{2}, T: temporal.Inst(0)},
	}
	if _, err := FromSequence(multi); err == nil {
		t.Error("multiple groups should be rejected")
	}
	if _, err := FromSequence(temporal.NewSequence(nil, []string{"v"})); err == nil {
		t.Error("empty sequence should be rejected")
	}
}

// --- PAA ---

func TestPAAEqualSegments(t *testing.T) {
	segs, err := PAA([]float64{1, 1, 5, 5, 9, 9}, 3, 10)
	if err != nil {
		t.Fatalf("PAA: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	wantVals := []float64{1, 5, 9}
	for i, sg := range segs {
		if sg.Vals[0] != wantVals[i] {
			t.Errorf("segment %d mean = %v, want %v", i, sg.Vals[0], wantVals[i])
		}
	}
	if segs[0].T != (temporal.Interval{Start: 10, End: 11}) {
		t.Errorf("segment 0 interval = %v", segs[0].T)
	}
}

func TestPAAPropCoversSeries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		c := 1 + rng.Intn(n+3)
		segs, err := PAA(randSeries(rng, n), c, 0)
		if err != nil {
			return false
		}
		// Segments must tile [0, n−1] without holes or overlaps.
		var at temporal.Chronon
		for _, sg := range segs {
			if sg.T.Start != at {
				return false
			}
			at = sg.T.End + 1
		}
		return at == temporal.Chronon(n) && len(segs) == min(c, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- DWT ---

func TestHaarRoundTrip(t *testing.T) {
	vals := []float64{9, 7, 3, 5}
	coefs, err := HaarForward(vals)
	if err != nil {
		t.Fatalf("HaarForward: %v", err)
	}
	// Orthonormal Haar of (9,7,3,5): overall average = 6 scaled by 2.
	almost(t, coefs[0], 12, 1e-9, "c0")
	back, err := HaarInverse(coefs)
	if err != nil {
		t.Fatalf("HaarInverse: %v", err)
	}
	for i := range vals {
		almost(t, back[i], vals[i], 1e-9, "roundtrip")
	}
	if _, err := HaarForward([]float64{1, 2, 3}); err == nil {
		t.Error("non-power-of-two length should fail")
	}
}

func TestHaarPropParseval(t *testing.T) {
	// Orthonormality: energy is preserved.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		vals := randSeries(rng, n)
		coefs, err := HaarForward(vals)
		if err != nil {
			return false
		}
		var e1, e2 float64
		for i := range vals {
			e1 += vals[i] * vals[i]
			e2 += coefs[i] * coefs[i]
		}
		return math.Abs(e1-e2) <= 1e-6*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDWTTopKAllCoefficientsIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randSeries(rng, 16)
	rec, err := DWTTopK(vals, 16)
	if err != nil {
		t.Fatalf("DWTTopK: %v", err)
	}
	for i := range vals {
		almost(t, rec[i], vals[i], 1e-9, "exact reconstruction")
	}
}

func TestDWTTopKPropErrorDecreases(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randSeries(rng, 32)
		prev := math.Inf(1)
		for _, k := range []int{1, 4, 8, 16, 32} {
			rec, err := DWTTopK(vals, k)
			if err != nil {
				return false
			}
			var sse float64
			for i := range vals {
				d := vals[i] - rec[i]
				sse += d * d
			}
			if sse > prev+1e-9 {
				return false
			}
			prev = sse
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDWTWithSegments(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 9, 9, 9, 9}
	rec, k, err := DWTWithSegments(vals, 2)
	if err != nil {
		t.Fatalf("DWTWithSegments: %v", err)
	}
	if CountPlateaus(rec) != 2 || k < 1 {
		t.Errorf("plateaus = %d (k=%d)", CountPlateaus(rec), k)
	}
	almost(t, rec[0], 1, 1e-9, "left plateau")
	almost(t, rec[7], 9, 1e-9, "right plateau")
}

// --- FFT / DFT ---

func TestFFTMatchesNaiveDFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		re := randSeries(rng, n)
		im := randSeries(rng, n)
		wantRe, wantIm := DFTNaive(re, im)
		gotRe := append([]float64(nil), re...)
		gotIm := append([]float64(nil), im...)
		if err := FFT(gotRe, gotIm); err != nil {
			return false
		}
		for i := range re {
			if math.Abs(gotRe[i]-wantRe[i]) > 1e-6*(1+math.Abs(wantRe[i])) ||
				math.Abs(gotIm[i]-wantIm[i]) > 1e-6*(1+math.Abs(wantIm[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	re := randSeries(rng, 64)
	im := make([]float64, 64)
	orig := append([]float64(nil), re...)
	if err := FFT(re, im); err != nil {
		t.Fatalf("FFT: %v", err)
	}
	if err := IFFT(re, im); err != nil {
		t.Fatalf("IFFT: %v", err)
	}
	for i := range orig {
		almost(t, re[i], orig[i], 1e-9, "fft roundtrip")
	}
}

func TestDFTTopKConstantAndErrors(t *testing.T) {
	rec, err := DFTTopK([]float64{4, 4, 4, 4}, 1)
	if err != nil {
		t.Fatalf("DFTTopK: %v", err)
	}
	for i := range rec {
		almost(t, rec[i], 4, 1e-9, "constant series")
	}
	if _, err := DFTTopK(nil, 1); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := DFTTopK([]float64{1}, 0); err == nil {
		t.Error("c = 0 should fail")
	}
}

func TestFFTRejectsBadLength(t *testing.T) {
	if err := FFT(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Error("length 3 should fail")
	}
	if err := FFT(make([]float64, 4), make([]float64, 2)); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

// --- Chebyshev ---

func TestChebyshevConstant(t *testing.T) {
	rec, err := Chebyshev([]float64{3, 3, 3, 3, 3}, 1)
	if err != nil {
		t.Fatalf("Chebyshev: %v", err)
	}
	for i := range rec {
		almost(t, rec[i], 3, 1e-9, "constant")
	}
}

func TestChebyshevLinear(t *testing.T) {
	// T1(x) = x reproduces a linear ramp with 2 coefficients; the nearest-
	// sample interpolation of the step input adds a small quantization
	// error, so allow a loose tolerance away from the edges.
	vals := lineSeries(129)
	rec, err := Chebyshev(vals, 2)
	if err != nil {
		t.Fatalf("Chebyshev: %v", err)
	}
	for i := 5; i < len(vals)-5; i++ {
		if math.Abs(rec[i]-vals[i]) > 1.5 {
			t.Fatalf("linear reconstruction off at %d: %v vs %v", i, rec[i], vals[i])
		}
	}
}

func TestChebyshevMoreCoefficientsHelp(t *testing.T) {
	// A smooth signal: a generous coefficient budget must beat a tiny one
	// by a wide margin. (Error is not strictly monotone in m because the
	// step-interpolated quadrature aliases, so only the endpoints are
	// compared.)
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = math.Sin(float64(i)/8) * 10
	}
	sseFor := func(m int) float64 {
		rec, err := Chebyshev(vals, m)
		if err != nil {
			t.Fatalf("Chebyshev(%d): %v", m, err)
		}
		var sse float64
		for i := range vals {
			d := vals[i] - rec[i]
			sse += d * d
		}
		return sse
	}
	lo, hi := sseFor(24), sseFor(2)
	if lo > hi/10 {
		t.Errorf("m=24 error %v not ≪ m=2 error %v", lo, hi)
	}
}

// --- APCA ---

func TestAPCASegmentCountAndMeans(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 9, 9, 9, 9}
	segs, err := APCA(vals, 2, 0)
	if err != nil {
		t.Fatalf("APCA: %v", err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	almost(t, segs[0].Vals[0], 1, 1e-9, "left mean")
	almost(t, segs[1].Vals[0], 9, 1e-9, "right mean")
}

func TestAPCAPropValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		vals := randSeries(rng, n)
		c := 1 + rng.Intn(n/2+1)
		segs, err := APCA(vals, c, 0)
		if err != nil {
			return false
		}
		if len(segs) > c {
			return false
		}
		var at temporal.Chronon
		for _, sg := range segs {
			if sg.T.Start != at {
				return false
			}
			at = sg.T.End + 1
		}
		return at == temporal.Chronon(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- ATC ---

func TestATCZeroThresholdCoalescesOnlyEqual(t *testing.T) {
	seq := unitSequence([]float64{5, 5, 5, 7, 7, 5})
	z, err := ATC(seq, 0, nil)
	if err != nil {
		t.Fatalf("ATC: %v", err)
	}
	if z.Len() != 3 {
		t.Fatalf("segments = %d, want 3:\n%v", z.Len(), z)
	}
}

func TestATCLargeThresholdMergesAll(t *testing.T) {
	seq := unitSequence([]float64{1, 2, 3, 4})
	z, err := ATC(seq, 1e12, nil)
	if err != nil {
		t.Fatalf("ATC: %v", err)
	}
	if z.Len() != 1 {
		t.Fatalf("segments = %d, want 1", z.Len())
	}
	almost(t, z.Rows[0].Aggs[0], 2.5, 1e-9, "merged mean")
}

func TestATCRespectsGapsAndGroups(t *testing.T) {
	seq := temporal.NewSequence([]temporal.Attribute{{Name: "g", Kind: temporal.KindString}}, []string{"v"})
	a := seq.Groups.Intern([]temporal.Datum{temporal.String("a")})
	b := seq.Groups.Intern([]temporal.Datum{temporal.String("b")})
	seq.Rows = []temporal.SeqRow{
		{Group: a, Aggs: []float64{1}, T: temporal.Inst(0)},
		{Group: a, Aggs: []float64{1}, T: temporal.Inst(2)}, // gap
		{Group: b, Aggs: []float64{1}, T: temporal.Inst(3)}, // group change
	}
	z, err := ATC(seq, 1e12, nil)
	if err != nil {
		t.Fatalf("ATC: %v", err)
	}
	if z.Len() != 3 {
		t.Fatalf("segments = %d, want 3 (no merging across gaps/groups)", z.Len())
	}
}

func TestATCValidation(t *testing.T) {
	seq := unitSequence([]float64{1, 2})
	if _, err := ATC(seq, -1, nil); err == nil {
		t.Error("negative threshold should fail")
	}
	if _, err := ATC(seq, 0, []float64{1, 2}); err == nil {
		t.Error("weight arity mismatch should fail")
	}
	if _, err := ATC(seq, 0, []float64{0}); err == nil {
		t.Error("zero weight should fail")
	}
}

func TestATCPropLocalErrorBounded(t *testing.T) {
	// Every ATC segment's internal SSE stays within the threshold.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randSeries(rng, 5+rng.Intn(60))
		th := rng.Float64() * 500
		seq := unitSequence(vals)
		z, err := ATC(seq, th, nil)
		if err != nil {
			return false
		}
		for _, row := range z.Rows {
			var sum, sq float64
			for t := row.T.Start; t <= row.T.End; t++ {
				v := vals[t]
				sum += v
				sq += v * v
			}
			l := float64(row.T.Len())
			if sq-sum*sum/l > th+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestATCThresholds(t *testing.T) {
	ths, err := ATCThresholds(1, 1000, 4)
	if err != nil {
		t.Fatalf("ATCThresholds: %v", err)
	}
	want := []float64{1000, 100, 10, 1}
	for i := range want {
		almost(t, ths[i], want[i], 1e-6, "threshold")
	}
	if _, err := ATCThresholds(0, 10, 3); err == nil {
		t.Error("lo = 0 should fail")
	}
	if _, err := ATCThresholds(10, 1, 3); err == nil {
		t.Error("hi < lo should fail")
	}
}

// --- SAX ---

func TestSAXWordShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randSeries(rng, 64)
	word, err := SAX(vals, 8, 4)
	if err != nil {
		t.Fatalf("SAX: %v", err)
	}
	if len(word.Symbols) != 8 {
		t.Fatalf("word length = %d", len(word.Symbols))
	}
	for _, s := range word.Symbols {
		if s < 'a' || s >= 'a'+4 {
			t.Fatalf("symbol %c outside alphabet", s)
		}
	}
	rec := word.Reconstruct()
	if len(rec) != 64 {
		t.Fatalf("reconstruction length = %d", len(rec))
	}
}

func TestSAXBreakpointsEquiprobable(t *testing.T) {
	// Standard table values for w = 4: ±0.6745 and 0.
	bps := saxBreakpoints(4)
	almost(t, bps[0], -0.67449, 1e-3, "bp0")
	almost(t, bps[1], 0, 1e-9, "bp1")
	almost(t, bps[2], 0.67449, 1e-3, "bp2")
}

func TestNormalQuantile(t *testing.T) {
	almost(t, normalQuantile(0.5), 0, 1e-9, "median")
	almost(t, normalQuantile(0.975), 1.95996, 1e-4, "97.5%")
	almost(t, normalQuantile(0.025), -1.95996, 1e-4, "2.5%")
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("quantile at 0/1 should be NaN")
	}
}

func TestSAXValidation(t *testing.T) {
	if _, err := SAX(nil, 1, 4); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := SAX([]float64{1, 2}, 3, 4); err == nil {
		t.Error("c > n should fail")
	}
	if _, err := SAX([]float64{1, 2}, 1, 1); err == nil {
		t.Error("w < 2 should fail")
	}
}

func TestSAXConstantSeries(t *testing.T) {
	word, err := SAX([]float64{5, 5, 5, 5}, 2, 4)
	if err != nil {
		t.Fatalf("SAX: %v", err)
	}
	if word.Symbols[0] != word.Symbols[1] {
		t.Error("constant series should map to one symbol")
	}
}

// --- Cross-method sanity on a plateau signal ---

func TestPlateauSignalRanking(t *testing.T) {
	// A signal of clear plateaus: data-adaptive segmentations (APCA) must
	// fit it at least as well as the fixed grid (PAA) given equal budgets
	// that do not divide the plateau boundaries evenly.
	vals := []float64{1, 1, 1, 1, 1, 9, 9, 2, 2, 2, 2, 2, 2, 2}
	c := 3
	paaSegs, err := PAA(vals, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	apcaSegs, err := APCA(vals, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := &Series{Dims: [][]float64{vals}}
	paaErr := s.SSESegments(paaSegs, nil)
	apcaErr := s.SSESegments(apcaSegs, nil)
	if apcaErr > paaErr+1e-9 {
		t.Errorf("APCA (%v) should not lose to PAA (%v) on plateau data", apcaErr, paaErr)
	}
}

func TestCountPlateausAndSegments(t *testing.T) {
	if CountPlateaus(nil) != 0 {
		t.Error("empty series has 0 plateaus")
	}
	if CountPlateaus([]float64{1, 1, 2, 2, 1}) != 3 {
		t.Error("plateau count wrong")
	}
	segs := PlateausToSegments([]float64{1, 1, 2}, 5)
	if len(segs) != 2 || segs[0].T != (temporal.Interval{Start: 5, End: 6}) {
		t.Errorf("segments = %+v", segs)
	}
}
