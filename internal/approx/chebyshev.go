package approx

import (
	"fmt"
	"math"
)

// The Chebyshev polynomial baseline (Cai & Ng 2004): the series, viewed as a
// function on [−1, 1], is projected onto the first m Chebyshev polynomials
// of the first kind using Gauss-Chebyshev quadrature; the restored signal is
// a continuous curve (Fig. 2(d)). Cai & Ng minimize maximum deviation for
// indexing; here the restored curve is compared to PTA under the paper's sum
// squared error, as in Section 7.2.2.

// ChebyshevFit computes m coefficients of the series vals.
func ChebyshevFit(vals []float64, m int) ([]float64, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("approx: Chebyshev fit of an empty series")
	}
	if m < 1 {
		return nil, fmt.Errorf("approx: Chebyshev coefficient count %d, want ≥ 1", m)
	}
	m = min(m, n)
	// Quadrature nodes x_k = cos(π(k+1/2)/n); the series is sampled at the
	// position nearest to each node (the step-function interpolant).
	coefs := make([]float64, m)
	for k := 0; k < n; k++ {
		theta := math.Pi * (float64(k) + 0.5) / float64(n)
		x := math.Cos(theta)
		// Map x ∈ [−1,1] to a sample index 0..n−1.
		pos := (x + 1) / 2 * float64(n-1)
		f := vals[int(math.Round(pos))]
		for j := 0; j < m; j++ {
			coefs[j] += f * math.Cos(float64(j)*theta)
		}
	}
	for j := range coefs {
		coefs[j] *= 2 / float64(n)
	}
	return coefs, nil
}

// ChebyshevReconstruct evaluates the truncated Chebyshev series at every
// sample position of a series of length n.
func ChebyshevReconstruct(coefs []float64, n int) ([]float64, error) {
	if len(coefs) == 0 {
		return nil, fmt.Errorf("approx: no Chebyshev coefficients")
	}
	if n < 1 {
		return nil, fmt.Errorf("approx: reconstruction length %d, want ≥ 1", n)
	}
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		var x float64
		if n > 1 {
			x = 2*float64(t)/float64(n-1) - 1
		}
		// Clenshaw evaluation of Σ' c_j T_j(x) with the c_0/2 convention.
		var b1, b2 float64
		for j := len(coefs) - 1; j >= 1; j-- {
			b1, b2 = 2*x*b1-b2+coefs[j], b1
		}
		out[t] = x*b1 - b2 + coefs[0]/2
	}
	return out, nil
}

// Chebyshev fits and reconstructs in one step.
func Chebyshev(vals []float64, m int) ([]float64, error) {
	coefs, err := ChebyshevFit(vals, m)
	if err != nil {
		return nil, err
	}
	return ChebyshevReconstruct(coefs, len(vals))
}
