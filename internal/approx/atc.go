package approx

import (
	"fmt"
	"math"

	"repro/internal/temporal"
)

// ATC implements approximate temporal coalescing (Berberich, Bedathur,
// Neumann & Weikum 2007): a single forward pass over a sorted sequential
// relation that extends the current segment with the next adjacent tuple as
// long as the segment's local error stays within the threshold, and starts a
// new segment otherwise. Unlike PTA the decision uses local information
// only, which is why its total error varies with the dataset (Section 2.1).
//
// The local error of a segment is the sum squared deviation of its
// constituent tuples from the segment's length-weighted mean — the same
// measure PTA charges for the corresponding merge. Groups and temporal gaps
// always start a new segment, so ATC handles the paper's I- and T-queries.
func ATC(seq *temporal.Sequence, threshold float64, weights []float64) (*temporal.Sequence, error) {
	if threshold < 0 {
		return nil, fmt.Errorf("approx: ATC threshold %v, want ≥ 0", threshold)
	}
	p := seq.P()
	w2 := make([]float64, p)
	for d := range w2 {
		w2[d] = 1
	}
	if weights != nil {
		if len(weights) != p {
			return nil, fmt.Errorf("approx: %d weights for %d aggregate attributes", len(weights), p)
		}
		for d, w := range weights {
			if !(w > 0) {
				return nil, fmt.Errorf("approx: weight %d is %v, want > 0", d, w)
			}
			w2[d] = w * w
		}
	}

	out := seq.WithRows(nil)
	// Running statistics of the open segment.
	var (
		open   bool
		group  int32
		iv     temporal.Interval
		length float64
		sv     = make([]float64, p)
		ssv    = make([]float64, p)
	)
	emit := func() {
		aggs := make([]float64, p)
		for d := 0; d < p; d++ {
			aggs[d] = sv[d] / length
		}
		out.Rows = append(out.Rows, temporal.SeqRow{Group: group, Aggs: aggs, T: iv})
	}
	for _, row := range seq.Rows {
		l := float64(row.T.Len())
		if open && row.Group == group && iv.Meets(row.T) {
			// Tentatively absorb the row; accept if the segment error stays
			// within the threshold.
			newLen := length + l
			var candSSE float64
			{
				var e float64
				for d := 0; d < p; d++ {
					nsv := sv[d] + l*row.Aggs[d]
					nssv := ssv[d] + l*row.Aggs[d]*row.Aggs[d]
					e += w2[d] * (nssv - nsv*nsv/newLen)
				}
				candSSE = math.Max(e, 0)
			}
			if candSSE <= threshold {
				for d := 0; d < p; d++ {
					sv[d] += l * row.Aggs[d]
					ssv[d] += l * row.Aggs[d] * row.Aggs[d]
				}
				length = newLen
				iv.End = row.T.End
				continue
			}
		}
		if open {
			emit()
		}
		open = true
		group = row.Group
		iv = row.T
		length = l
		for d := 0; d < p; d++ {
			sv[d] = l * row.Aggs[d]
			ssv[d] = l * row.Aggs[d] * row.Aggs[d]
		}
	}
	if open {
		emit()
	}
	return out, nil
}

// ATCThresholds builds the exponentially decaying threshold list the paper
// sweeps to make ATC comparable with size-bounded algorithms: count values
// from hi down to lo (hi > lo > 0), logarithmically spaced.
func ATCThresholds(lo, hi float64, count int) ([]float64, error) {
	if !(lo > 0) || !(hi > lo) || count < 2 {
		return nil, fmt.Errorf("approx: invalid threshold sweep (lo=%v hi=%v count=%d)", lo, hi, count)
	}
	out := make([]float64, count)
	ratio := math.Pow(hi/lo, 1/float64(count-1))
	v := hi
	for i := range out {
		out[i] = v
		v /= ratio
	}
	return out, nil
}

// ATCSweep runs ATC for every threshold and keeps, for every result size,
// the result with the smallest total error against seq — the protocol of
// Section 7.2.2. It returns a map from result size to (sequence, error).
type ATCResult struct {
	Sequence  *temporal.Sequence
	Error     float64
	Threshold float64
}

// ATCSweep evaluates the thresholds and retains the best result per size.
func ATCSweep(seq *temporal.Sequence, thresholds []float64, weights []float64,
	sseFn func(z *temporal.Sequence) (float64, error)) (map[int]ATCResult, error) {
	out := make(map[int]ATCResult)
	for _, th := range thresholds {
		z, err := ATC(seq, th, weights)
		if err != nil {
			return nil, err
		}
		sse, err := sseFn(z)
		if err != nil {
			return nil, err
		}
		prev, seen := out[z.Len()]
		if !seen || sse < prev.Error {
			out[z.Len()] = ATCResult{Sequence: z, Error: sse, Threshold: th}
		}
	}
	return out, nil
}
