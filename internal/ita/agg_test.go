package ita

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestSumStateAddRemove(t *testing.T) {
	s := newAggState(Sum)
	s.enter(5, 10)
	s.enter(3, 10)
	if got := s.at(0, 2); got != 8 {
		t.Errorf("sum = %v, want 8", got)
	}
	s.leave(5)
	if got := s.at(0, 1); got != 3 {
		t.Errorf("sum after leave = %v, want 3", got)
	}
	s.reset()
	if got := s.at(0, 0); got != 0 {
		t.Errorf("sum after reset = %v, want 0", got)
	}
}

func TestAvgState(t *testing.T) {
	s := newAggState(Avg)
	s.enter(10, 5)
	s.enter(20, 5)
	if got := s.at(0, 2); got != 15 {
		t.Errorf("avg = %v, want 15", got)
	}
}

func TestCountState(t *testing.T) {
	s := newAggState(Count)
	s.enter(99, 1)
	if got := s.at(0, 7); got != 7 {
		t.Errorf("count = %v, want 7 (active count)", got)
	}
}

func TestExtremeStateLazyDeletion(t *testing.T) {
	mn := newAggState(Min)
	// Three tuples with different ends; the minimum must resurface as
	// earlier-ending smaller values expire.
	mn.enter(5, 2)  // active through chronon 2
	mn.enter(7, 10) // active through chronon 10
	mn.enter(6, 5)  // active through chronon 5
	if got := mn.at(0, 3); got != 5 {
		t.Errorf("min@0 = %v, want 5", got)
	}
	if got := mn.at(3, 2); got != 6 {
		t.Errorf("min@3 = %v, want 6 (5 expired)", got)
	}
	if got := mn.at(6, 1); got != 7 {
		t.Errorf("min@6 = %v, want 7 (6 expired)", got)
	}

	mx := newAggState(Max)
	mx.enter(5, 10)
	mx.enter(9, 2)
	if got := mx.at(0, 2); got != 9 {
		t.Errorf("max@0 = %v, want 9", got)
	}
	if got := mx.at(5, 1); got != 5 {
		t.Errorf("max@5 = %v, want 5 (9 expired)", got)
	}
}

func TestExtremeStateEmptyAfterExpiry(t *testing.T) {
	s := newAggState(Min)
	s.enter(4, 1)
	if got := s.at(5, 0); got != 0 {
		t.Errorf("expired-heap min = %v, want 0 sentinel", got)
	}
}

// TestExtremeStatePropMatchesSort: against a brute-force recomputation over
// random enter/advance schedules.
func TestExtremeStatePropMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type item struct {
			v   float64
			end temporal.Chronon
		}
		var items []item
		s := newAggState(Max)
		for step := 0; step < 30; step++ {
			v := float64(rng.Intn(50))
			end := temporal.Chronon(rng.Intn(40))
			items = append(items, item{v, end})
			s.enter(v, end)
			at := temporal.Chronon(rng.Intn(20)) // queries may move backwards? no: keep monotone
			_ = at
		}
		// Query at increasing times; compare with a scan.
		for _, q := range []temporal.Chronon{0, 5, 10, 20, 35} {
			var alive []float64
			for _, it := range items {
				if it.end >= q {
					alive = append(alive, it.v)
				}
			}
			if len(alive) == 0 {
				continue // lazy heap may answer arbitrarily without actives
			}
			sort.Float64s(alive)
			want := alive[len(alive)-1]
			if got := s.at(q, len(alive)); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
