package ita

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// TestMWTAZeroWindowEqualsITA: with before = after = 0 the two operators
// coincide (Section 2.1).
func TestMWTAZeroWindowEqualsITA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := temporal.MustSchema(
			temporal.Attribute{Name: "g", Kind: temporal.KindString},
			temporal.Attribute{Name: "v", Kind: temporal.KindInt},
		)
		r := temporal.NewRelation(schema)
		for i := 0; i < 1+rng.Intn(12); i++ {
			start := temporal.Chronon(rng.Intn(15))
			r.MustAppend([]temporal.Datum{
				temporal.String(string(rune('A' + rng.Intn(2)))),
				temporal.Int(int64(rng.Intn(50))),
			}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(4))})
		}
		q := Query{GroupBy: []string{"g"}, Aggs: []AggSpec{{Func: Sum, Attr: "v"}, {Func: Count}}}
		a, err1 := Eval(r, q)
		b, err2 := MWTA(r, q, 0, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Equal(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMWTAWindowExample: a hand-computed moving window.
func TestMWTAWindowExample(t *testing.T) {
	schema := temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindFloat})
	r := temporal.NewRelation(schema)
	r.MustAppend([]temporal.Datum{temporal.Float(10)}, temporal.Interval{Start: 0, End: 0})
	r.MustAppend([]temporal.Datum{temporal.Float(30)}, temporal.Interval{Start: 4, End: 4})
	q := Query{Aggs: []AggSpec{{Func: Avg, Attr: "v"}}}

	// Window [t−2, t]: the tuple at 0 is visible for t ∈ [0,2], the tuple
	// at 4 for t ∈ [4,6]; no overlap between their visibility ranges.
	res, err := MWTA(r, q, 2, 0)
	if err != nil {
		t.Fatalf("MWTA: %v", err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%v", res.Len(), res)
	}
	if res.Rows[0].T != (temporal.Interval{Start: 0, End: 2}) || res.Rows[0].Aggs[0] != 10 {
		t.Errorf("row 0 = %+v", res.Rows[0])
	}
	if res.Rows[1].T != (temporal.Interval{Start: 4, End: 6}) || res.Rows[1].Aggs[0] != 30 {
		t.Errorf("row 1 = %+v", res.Rows[1])
	}

	// A symmetric window [t−2, t+2] makes both tuples visible at t = 2:
	// avg(10, 30) = 20 there.
	res, err = MWTA(r, q, 2, 2)
	if err != nil {
		t.Fatalf("MWTA: %v", err)
	}
	var at2 *temporal.SeqRow
	for i := range res.Rows {
		if res.Rows[i].T.Contains(2) {
			at2 = &res.Rows[i]
		}
	}
	if at2 == nil || at2.Aggs[0] != 20 {
		t.Fatalf("window at t=2 should average both tuples: %v", res)
	}
}

func TestMWTAValidation(t *testing.T) {
	schema := temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindFloat})
	r := temporal.NewRelation(schema)
	r.MustAppend([]temporal.Datum{temporal.Float(1)}, temporal.Interval{Start: 0, End: 0})
	q := Query{Aggs: []AggSpec{{Func: Avg, Attr: "v"}}}
	if _, err := MWTA(r, q, -1, 0); err == nil {
		t.Error("negative window should fail")
	}
	if _, err := MWTA(r, Query{}, 0, 0); err == nil {
		t.Error("empty query should fail")
	}
}

// TestMWTAFeedsPTA: the MWTA result is a sequential relation, so PTA
// machinery applies unchanged.
func TestMWTAFeedsPTA(t *testing.T) {
	schema := temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindFloat})
	r := temporal.NewRelation(schema)
	for i := 0; i < 20; i++ {
		r.MustAppend([]temporal.Datum{temporal.Float(float64(i % 5))},
			temporal.Interval{Start: temporal.Chronon(i), End: temporal.Chronon(i + 2)})
	}
	res, err := MWTA(r, Query{Aggs: []AggSpec{{Func: Max, Attr: "v"}}}, 1, 1)
	if err != nil {
		t.Fatalf("MWTA: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("MWTA result not sequential: %v", err)
	}
}
