package ita

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestEvalBucketsFigure1c(t *testing.T) {
	for _, buckets := range []int{1, 2, 3, 8} {
		got, err := EvalBuckets(projRelation(), avgSalQuery(), buckets, 0)
		if err != nil {
			t.Fatalf("EvalBuckets(%d): %v", buckets, err)
		}
		want, _ := Eval(projRelation(), avgSalQuery())
		if !got.Equal(want, 1e-9) {
			t.Errorf("buckets=%d differs from sweep:\n%v\nvs\n%v", buckets, got, want)
		}
	}
}

func TestEvalBucketsValidation(t *testing.T) {
	if _, err := EvalBuckets(projRelation(), avgSalQuery(), 0, 1); err == nil {
		t.Error("zero buckets should fail")
	}
	if _, err := EvalBuckets(projRelation(), Query{}, 2, 1); err == nil {
		t.Error("empty query should fail")
	}
}

func TestEvalBucketsEmptyRelation(t *testing.T) {
	r := temporal.NewRelation(temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindFloat}))
	got, err := EvalBuckets(r, Query{Aggs: []AggSpec{{Func: Sum, Attr: "v"}}}, 4, 2)
	if err != nil || got.Len() != 0 {
		t.Errorf("empty relation: %d rows, %v", got.Len(), err)
	}
}

// TestEvalBucketsPropMatchesSweep: the bucket decomposition must be
// invisible — identical results for any bucket count and worker count,
// all aggregate functions included.
func TestEvalBucketsPropMatchesSweep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := temporal.MustSchema(
			temporal.Attribute{Name: "g", Kind: temporal.KindString},
			temporal.Attribute{Name: "v", Kind: temporal.KindInt},
		)
		r := temporal.NewRelation(schema)
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			start := temporal.Chronon(rng.Intn(40))
			r.MustAppend([]temporal.Datum{
				temporal.String(string(rune('A' + rng.Intn(3)))),
				temporal.Int(int64(rng.Intn(32)) * 4),
			}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(10))})
		}
		q := Query{
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Func: Sum, Attr: "v"}, {Func: Count},
				{Func: Min, Attr: "v"}, {Func: Max, Attr: "v"},
			},
		}
		want, err := Eval(r, q)
		if err != nil {
			return false
		}
		for _, buckets := range []int{1, 2, 5, 16} {
			got, err := EvalBuckets(r, q, buckets, 1+rng.Intn(4))
			if err != nil {
				return false
			}
			if !got.Equal(want, 1e-9) || got.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalBucketsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	schema := temporal.MustSchema(
		temporal.Attribute{Name: "g", Kind: temporal.KindInt},
		temporal.Attribute{Name: "v", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(schema)
	for i := 0; i < 20000; i++ {
		start := temporal.Chronon(rng.Intn(50000))
		r.MustAppend([]temporal.Datum{
			temporal.Int(int64(rng.Intn(10))),
			temporal.Float(rng.Float64() * 1000),
		}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(100))})
	}
	q := Query{GroupBy: []string{"g"}, Aggs: []AggSpec{{Func: Avg, Attr: "v"}, {Func: Max, Attr: "v"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBuckets(r, q, 16, 0); err != nil {
			b.Fatal(err)
		}
	}
}
