package ita

import (
	"fmt"

	"repro/internal/temporal"
)

// MWTA implements moving-window (cumulative) temporal aggregation
// (Section 2.1; Navathe & Ahmed 1989, Yang & Widom 2003): the aggregate
// value at instant t is computed over all tuples of the group that hold
// anywhere in the window [t−before, t+after], and value-equivalent results
// over consecutive instants are coalesced. With before = after = 0 MWTA
// degenerates to ITA.
//
// Like ITA, MWTA's result can be up to twice the input size — it is the
// second member of the "most detailed result" family that PTA compresses.
func MWTA(r *temporal.Relation, q Query, before, after int64) (*temporal.Sequence, error) {
	if before < 0 || after < 0 {
		return nil, fmt.Errorf("ita: negative window (before=%d, after=%d)", before, after)
	}
	// A tuple with timestamp [s, e] intersects the window around t iff
	// s − after ≤ t ≤ e + before: widening every tuple by (after, before)
	// and running the plain ITA sweep yields exactly the MWTA semantics.
	widened := temporal.NewRelation(r.Schema())
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		iv := temporal.Interval{Start: tp.T.Start - after, End: tp.T.End + before}
		if err := widened.Append(tp.Vals, iv); err != nil {
			return nil, fmt.Errorf("ita: widening tuple %d: %v", i, err)
		}
	}
	return Eval(widened, q)
}
