package ita

import (
	"sort"

	"repro/internal/temporal"
)

// This file implements the aggregation-tree evaluation of instant temporal
// aggregation after Kline & Snodgrass ("Computing temporal aggregates",
// ICDE 1995) — reference [15] of the paper and one of the ITA algorithms its
// Section 5.4 assumes. The tree is built per aggregation group over the
// endpoint-compressed time line; each input tuple adds its contribution to
// O(log m) canonical node ranges, and an in-order traversal with running
// partial aggregates emits the constant intervals.
//
// The sweep in iterator.go remains the production evaluator (it streams and
// supports min/max cheaply); the tree exists as the classic alternative and
// as an independent oracle — TestAggTreeMatchesSweep cross-checks the two on
// random inputs.

// EvalTree evaluates the ITA query with aggregation trees. It supports the
// decomposable functions Sum, Count and Avg; Min and Max would need
// per-node multisets and are served by the sweep evaluator.
func EvalTree(r *temporal.Relation, q Query) (*temporal.Sequence, error) {
	c, err := compile(r.Schema(), q)
	if err != nil {
		return nil, err
	}
	for _, spec := range c.specs {
		if spec.Func == Min || spec.Func == Max {
			return nil, errMinMaxTree
		}
	}
	meta := c.resultMeta(r.Schema())

	// Partition tuples by group.
	type member struct {
		iv   temporal.Interval
		vals []float64
	}
	byGroup := make(map[int32][]member)
	groupVals := make([]temporal.Datum, len(c.groupIdx))
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for gi, idx := range c.groupIdx {
			groupVals[gi] = tp.Vals[idx]
		}
		id := meta.Groups.Intern(groupVals)
		vals := make([]float64, len(c.specs))
		for d, idx := range c.attrIdx {
			if idx >= 0 {
				v, _ := tp.Vals[idx].Numeric()
				vals[d] = v
			}
		}
		byGroup[id] = append(byGroup[id], member{iv: tp.T, vals: vals})
	}

	for _, gid := range meta.Groups.SortedIDs() {
		members := byGroup[gid]
		if len(members) == 0 {
			continue
		}
		// Endpoint compression: elementary interval k spans
		// [points[k], points[k+1]−1].
		pointSet := make(map[temporal.Chronon]bool, 2*len(members))
		for _, m := range members {
			pointSet[m.iv.Start] = true
			pointSet[m.iv.End+1] = true
		}
		points := make([]temporal.Chronon, 0, len(pointSet))
		for pt := range pointSet {
			points = append(points, pt)
		}
		sort.Slice(points, func(a, b int) bool { return points[a] < points[b] })
		leaves := len(points) - 1

		tree := newAggTree(leaves, len(c.specs))
		locate := func(t temporal.Chronon) int {
			return sort.Search(len(points), func(i int) bool { return points[i] > t }) - 1
		}
		for _, m := range members {
			lo := locate(m.iv.Start)
			hi := locate(m.iv.End) // inclusive leaf range
			tree.add(lo, hi, m.vals)
		}

		// Traverse leaves left to right accumulating path sums, coalescing
		// equal aggregate vectors over consecutive elementary intervals.
		var pending temporal.SeqRow
		hasPending := false
		flush := func() {
			if hasPending {
				meta.Rows = append(meta.Rows, pending)
				hasPending = false
			}
		}
		aggBuf := make([]float64, len(c.specs))
		tree.walk(func(leaf int, count float64, sums []float64) {
			if count == 0 {
				flush()
				return
			}
			for d, spec := range c.specs {
				switch spec.Func {
				case Sum:
					aggBuf[d] = sums[d]
				case Count:
					aggBuf[d] = count
				case Avg:
					aggBuf[d] = sums[d] / count
				}
			}
			iv := temporal.Interval{Start: points[leaf], End: points[leaf+1] - 1}
			if hasPending && pending.T.End+1 == iv.Start && floatsEqual(pending.Aggs, aggBuf) {
				pending.T.End = iv.End
				return
			}
			flush()
			pending = temporal.SeqRow{Group: gid, Aggs: append([]float64(nil), aggBuf...), T: iv}
			hasPending = true
		})
		flush()
	}
	return meta, nil
}

// errMinMaxTree keeps the error value stable for tests.
var errMinMaxTree = errMinMax{}

type errMinMax struct{}

func (errMinMax) Error() string {
	return "ita: the aggregation tree supports sum/count/avg; use Eval for min/max"
}

// aggTree is a segment tree over elementary intervals: node annotations hold
// the contribution of tuples covering the node's whole range (the canonical
// decomposition of Kline & Snodgrass' aggregation tree).
type aggTree struct {
	leaves int
	p      int
	count  []float64 // per node: tuples covering the full node range
	sums   []float64 // per node × dimension
}

func newAggTree(leaves, p int) *aggTree {
	return &aggTree{
		leaves: leaves,
		p:      p,
		count:  make([]float64, 4*leaves+4),
		sums:   make([]float64, (4*leaves+4)*p),
	}
}

// add registers one tuple's contribution on the canonical node ranges
// covering leaves [lo, hi].
func (t *aggTree) add(lo, hi int, vals []float64) {
	t.addRec(1, 0, t.leaves-1, lo, hi, vals)
}

func (t *aggTree) addRec(node, nodeLo, nodeHi, lo, hi int, vals []float64) {
	if hi < nodeLo || nodeHi < lo {
		return
	}
	if lo <= nodeLo && nodeHi <= hi {
		t.count[node]++
		base := node * t.p
		for d, v := range vals {
			t.sums[base+d] += v
		}
		return
	}
	mid := (nodeLo + nodeHi) / 2
	t.addRec(2*node, nodeLo, mid, lo, hi, vals)
	t.addRec(2*node+1, mid+1, nodeHi, lo, hi, vals)
}

// walk visits the leaves in order, passing the accumulated count and sums
// along the root-to-leaf path (the tuples active on that leaf).
func (t *aggTree) walk(visit func(leaf int, count float64, sums []float64)) {
	pathSums := make([]float64, t.p)
	t.walkRec(1, 0, t.leaves-1, 0, pathSums, visit)
}

func (t *aggTree) walkRec(node, nodeLo, nodeHi int, count float64, sums []float64, visit func(int, float64, []float64)) {
	count += t.count[node]
	base := node * t.p
	for d := 0; d < t.p; d++ {
		sums[d] += t.sums[base+d]
	}
	if nodeLo == nodeHi {
		visit(nodeLo, count, sums)
	} else {
		mid := (nodeLo + nodeHi) / 2
		t.walkRec(2*node, nodeLo, mid, count, sums, visit)
		t.walkRec(2*node+1, mid+1, nodeHi, count, sums, visit)
	}
	for d := 0; d < t.p; d++ {
		sums[d] -= t.sums[base+d]
	}
}
