package ita

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// projRelation builds the running-example relation of Fig. 1(a).
func projRelation() *temporal.Relation {
	s := temporal.MustSchema(
		temporal.Attribute{Name: "Empl", Kind: temporal.KindString},
		temporal.Attribute{Name: "Proj", Kind: temporal.KindString},
		temporal.Attribute{Name: "Sal", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(s)
	r.MustAppend([]temporal.Datum{temporal.String("John"), temporal.String("A"), temporal.Float(800)}, temporal.Interval{Start: 1, End: 4})
	r.MustAppend([]temporal.Datum{temporal.String("Ann"), temporal.String("A"), temporal.Float(400)}, temporal.Interval{Start: 3, End: 6})
	r.MustAppend([]temporal.Datum{temporal.String("Tom"), temporal.String("A"), temporal.Float(300)}, temporal.Interval{Start: 4, End: 7})
	r.MustAppend([]temporal.Datum{temporal.String("John"), temporal.String("B"), temporal.Float(500)}, temporal.Interval{Start: 4, End: 5})
	r.MustAppend([]temporal.Datum{temporal.String("John"), temporal.String("B"), temporal.Float(500)}, temporal.Interval{Start: 7, End: 8})
	return r
}

func avgSalQuery() Query {
	return Query{
		GroupBy: []string{"Proj"},
		Aggs:    []AggSpec{{Func: Avg, Attr: "Sal", As: "AvgSal"}},
	}
}

// TestEvalFigure1c checks the ITA result of the running example against
// Fig. 1(c) tuple by tuple.
func TestEvalFigure1c(t *testing.T) {
	got, err := Eval(projRelation(), avgSalQuery())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	type want struct {
		proj string
		avg  float64
		iv   temporal.Interval
	}
	wants := []want{
		{"A", 800, temporal.Interval{Start: 1, End: 2}},
		{"A", 600, temporal.Interval{Start: 3, End: 3}},
		{"A", 500, temporal.Interval{Start: 4, End: 4}},
		{"A", 350, temporal.Interval{Start: 5, End: 6}},
		{"A", 300, temporal.Interval{Start: 7, End: 7}},
		{"B", 500, temporal.Interval{Start: 4, End: 5}},
		{"B", 500, temporal.Interval{Start: 7, End: 8}},
	}
	if got.Len() != len(wants) {
		t.Fatalf("ITA result has %d rows, want %d:\n%v", got.Len(), len(wants), got)
	}
	for i, w := range wants {
		r := got.Rows[i]
		if g := got.Groups.Values(r.Group)[0].Text(); g != w.proj {
			t.Errorf("row %d group = %q, want %q", i, g, w.proj)
		}
		if math.Abs(r.Aggs[0]-w.avg) > 1e-9 {
			t.Errorf("row %d avg = %v, want %v", i, r.Aggs[0], w.avg)
		}
		if r.T != w.iv {
			t.Errorf("row %d interval = %v, want %v", i, r.T, w.iv)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("result is not a valid sequential relation: %v", err)
	}
	if got.CMin() != 3 {
		t.Errorf("CMin = %d, want 3", got.CMin())
	}
	if got.AggNames[0] != "AvgSal" || got.GroupAttrs[0].Name != "Proj" {
		t.Errorf("result metadata wrong: %v %v", got.AggNames, got.GroupAttrs)
	}
}

func TestEvalMultipleAggregates(t *testing.T) {
	q := Query{
		GroupBy: []string{"Proj"},
		Aggs: []AggSpec{
			{Func: Min, Attr: "Sal"},
			{Func: Max, Attr: "Sal"},
			{Func: Sum, Attr: "Sal"},
			{Func: Count},
		},
	}
	got, err := Eval(projRelation(), q)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Group A at month 4 holds {800, 400, 300}.
	var at4 *temporal.SeqRow
	for i := range got.Rows {
		r := &got.Rows[i]
		if got.Groups.Values(r.Group)[0].Text() == "A" && r.T.Contains(4) {
			at4 = r
			break
		}
	}
	if at4 == nil {
		t.Fatal("no group-A row containing month 4")
	}
	if at4.Aggs[0] != 300 || at4.Aggs[1] != 800 || at4.Aggs[2] != 1500 || at4.Aggs[3] != 3 {
		t.Errorf("month-4 aggregates = %v, want [300 800 1500 3]", at4.Aggs)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("invalid result: %v", err)
	}
}

func TestEvalNoGrouping(t *testing.T) {
	q := Query{Aggs: []AggSpec{{Func: Sum, Attr: "Sal"}}}
	got, err := Eval(projRelation(), q)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Month 1-2: 800; month 3: 800+400; month 4: 800+400+300+500;
	// month 5: 400+300+500; month 6: 400+300; month 7: 300+500; month 8: 500.
	wantVals := []float64{800, 1200, 2000, 1200, 700, 800, 500}
	wantIvs := []temporal.Interval{{Start: 1, End: 2}, {Start: 3, End: 3}, {Start: 4, End: 4},
		{Start: 5, End: 5}, {Start: 6, End: 6}, {Start: 7, End: 7}, {Start: 8, End: 8}}
	if got.Len() != len(wantVals) {
		t.Fatalf("rows = %d, want %d:\n%v", got.Len(), len(wantVals), got)
	}
	for i := range wantVals {
		if got.Rows[i].Aggs[0] != wantVals[i] || got.Rows[i].T != wantIvs[i] {
			t.Errorf("row %d = %v %v, want %v %v", i, got.Rows[i].Aggs[0], got.Rows[i].T, wantVals[i], wantIvs[i])
		}
	}
	if got.Groups.Len() != 1 {
		t.Errorf("expected a single implicit group, got %d", got.Groups.Len())
	}
}

func TestEvalEmptyRelation(t *testing.T) {
	r := temporal.NewRelation(temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindFloat}))
	got, err := Eval(r, Query{Aggs: []AggSpec{{Func: Avg, Attr: "v"}}})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("expected empty result, got %d rows", got.Len())
	}
}

func TestQueryValidation(t *testing.T) {
	r := projRelation()
	cases := []Query{
		{}, // no aggregates
		{Aggs: []AggSpec{{Func: Avg, Attr: "Nope"}}},                          // unknown attribute
		{Aggs: []AggSpec{{Func: Avg, Attr: "Empl"}}},                          // non-numeric attribute
		{Aggs: []AggSpec{{Func: Avg}}},                                        // avg without attribute
		{GroupBy: []string{"Nope"}, Aggs: []AggSpec{{Func: Count}}},           // unknown group
		{Aggs: []AggSpec{{Func: Avg, Attr: "Sal"}, {Func: Avg, Attr: "Sal"}}}, // duplicate name
	}
	for i, q := range cases {
		if _, err := Eval(r, q); err == nil {
			t.Errorf("case %d: expected error for %+v", i, q)
		}
	}
}

func TestFuncStringParse(t *testing.T) {
	for _, f := range []Func{Avg, Sum, Count, Min, Max} {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunc(%v) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFunc("median"); err == nil {
		t.Error("ParseFunc(median) should fail")
	}
}

func TestAggSpecName(t *testing.T) {
	if (AggSpec{Func: Avg, Attr: "Sal"}).Name() != "avg_Sal" {
		t.Error("default name wrong")
	}
	if (AggSpec{Func: Count}).Name() != "count" {
		t.Error("count default name wrong")
	}
	if (AggSpec{Func: Avg, Attr: "Sal", As: "x"}).Name() != "x" {
		t.Error("explicit name not honored")
	}
}

func TestIteratorMatchesEval(t *testing.T) {
	it, err := NewIterator(projRelation(), avgSalQuery())
	if err != nil {
		t.Fatalf("NewIterator: %v", err)
	}
	batch, _ := Eval(projRelation(), avgSalQuery())
	var i int
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		if i >= batch.Len() {
			t.Fatal("iterator yields more rows than Eval")
		}
		want := batch.Rows[i]
		if row.T != want.T || row.Group != want.Group || !floatsEqual(row.Aggs, want.Aggs) {
			t.Errorf("row %d = %+v, want %+v", i, row, want)
		}
		i++
	}
	if i != batch.Len() {
		t.Errorf("iterator yielded %d rows, Eval %d", i, batch.Len())
	}
	if it.P() != 1 {
		t.Errorf("P() = %d", it.P())
	}
}

// bruteForceITA evaluates the query instant by instant with fresh
// aggregations — the semantics of Definition 1 stated directly.
func bruteForceITA(t *testing.T, r *temporal.Relation, q Query) *temporal.Sequence {
	t.Helper()
	c, err := compile(r.Schema(), q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	meta := c.resultMeta(r.Schema())
	span, ok := r.TimeSpan()
	if !ok {
		return meta
	}
	gvbuf := make([]temporal.Datum, len(c.groupIdx))
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for gi, idx := range c.groupIdx {
			gvbuf[gi] = tp.Vals[idx]
		}
		meta.Groups.Intern(gvbuf)
	}
	type instantRow struct {
		group int32
		aggs  []float64
	}
	var rows []temporal.SeqRow
	emit := func(group int32, aggs []float64, at temporal.Chronon) {
		n := len(rows)
		if n > 0 && rows[n-1].Group == group && rows[n-1].T.End+1 == at && floatsEqual(rows[n-1].Aggs, aggs) {
			rows[n-1].T.End = at
			return
		}
		rows = append(rows, temporal.SeqRow{Group: group, Aggs: append([]float64(nil), aggs...), T: temporal.Inst(at)})
	}
	for _, gid := range meta.Groups.SortedIDs() {
		gvals := meta.Groups.Values(gid)
		for at := span.Start; at <= span.End; at++ {
			var members []temporal.Tuple
			for i := 0; i < r.Len(); i++ {
				tp := r.Tuple(i)
				if !tp.T.Contains(at) {
					continue
				}
				match := true
				for gi, idx := range c.groupIdx {
					if !tp.Vals[idx].Equal(gvals[gi]) {
						match = false
						break
					}
				}
				if match {
					members = append(members, tp)
				}
			}
			if len(members) == 0 {
				continue
			}
			aggs := make([]float64, len(c.specs))
			for d, spec := range c.specs {
				var vals []float64
				for _, m := range members {
					if c.attrIdx[d] >= 0 {
						v, _ := m.Vals[c.attrIdx[d]].Numeric()
						vals = append(vals, v)
					} else {
						vals = append(vals, 0)
					}
				}
				switch spec.Func {
				case Count:
					aggs[d] = float64(len(vals))
				case Sum:
					for _, v := range vals {
						aggs[d] += v
					}
				case Avg:
					for _, v := range vals {
						aggs[d] += v
					}
					aggs[d] /= float64(len(vals))
				case Min:
					aggs[d] = vals[0]
					for _, v := range vals[1:] {
						aggs[d] = math.Min(aggs[d], v)
					}
				case Max:
					aggs[d] = vals[0]
					for _, v := range vals[1:] {
						aggs[d] = math.Max(aggs[d], v)
					}
				}
			}
			emit(gid, aggs, at)
		}
	}
	meta.Rows = rows
	_ = instantRow{}
	return meta
}

// TestEvalPropMatchesBruteForce cross-checks the sweep against the
// instant-by-instant semantics on random relations with integer values
// (exact float arithmetic, so results must agree to the bit).
func TestEvalPropMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := temporal.MustSchema(
			temporal.Attribute{Name: "g", Kind: temporal.KindString},
			temporal.Attribute{Name: "v", Kind: temporal.KindInt},
		)
		r := temporal.NewRelation(schema)
		n := 1 + rng.Intn(14)
		for i := 0; i < n; i++ {
			start := temporal.Chronon(rng.Intn(16))
			r.MustAppend([]temporal.Datum{
				temporal.String(string(rune('A' + rng.Intn(2)))),
				temporal.Int(int64(rng.Intn(8)) * 4), // multiples keep avg of ≤4 values exact often; equality still exact as both sides divide identically
			}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(5))})
		}
		q := Query{
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Func: Sum, Attr: "v"},
				{Func: Count},
				{Func: Min, Attr: "v"},
				{Func: Max, Attr: "v"},
			},
		}
		got, err := Eval(r, q)
		if err != nil {
			return false
		}
		want := bruteForceITA(t, r, q)
		return got.Equal(want, 0) && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEvalPropResultBounded checks the classic bound |ITA(r)| ≤ 2n − 1 per
// aggregation group partition (Section 3).
func TestEvalPropResultBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindInt})
		r := temporal.NewRelation(schema)
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			start := temporal.Chronon(rng.Intn(30))
			r.MustAppend([]temporal.Datum{temporal.Int(int64(rng.Intn(100)))},
				temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(8))})
		}
		got, err := Eval(r, Query{Aggs: []AggSpec{{Func: Sum, Attr: "v"}}})
		return err == nil && got.Len() <= 2*n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	schema := temporal.MustSchema(
		temporal.Attribute{Name: "g", Kind: temporal.KindInt},
		temporal.Attribute{Name: "v", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(schema)
	for i := 0; i < 20000; i++ {
		start := temporal.Chronon(rng.Intn(50000))
		r.MustAppend([]temporal.Datum{
			temporal.Int(int64(rng.Intn(10))),
			temporal.Float(rng.Float64() * 1000),
		}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(100))})
	}
	q := Query{GroupBy: []string{"g"}, Aggs: []AggSpec{{Func: Avg, Attr: "v"}, {Func: Max, Attr: "v"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(r, q); err != nil {
			b.Fatal(err)
		}
	}
}
