package ita

import (
	"sort"

	"repro/internal/temporal"
)

// Iterator streams the ITA result row by row in (group, time) order. The
// greedy PTA algorithms consume this stream and merge before the full result
// materializes.
type Iterator struct {
	meta   *temporal.Sequence
	groups []*groupSweep // in canonical group order
	cur    int
}

// sweepItem is one argument tuple projected to what the sweep needs: its
// interval and one numeric value per aggregate spec.
type sweepItem struct {
	start, end temporal.Chronon
	vals       []float64
}

// endEvent marks the instant end+1 at which an item stops being active.
type endEvent struct {
	t    temporal.Chronon
	vals []float64
}

// groupSweep is the per-group sweep state of the event-driven ITA
// evaluation. Events are the starts of items and the instants right after
// their ends; between two consecutive events the aggregate vector is
// constant, and value-equivalent stretches are coalesced on the fly.
type groupSweep struct {
	group      int32
	specs      []AggSpec
	items      []sweepItem
	ends       []endEvent
	i, j       int
	active     int
	prevT      temporal.Chronon
	started    bool
	aggs       []aggState
	pending    temporal.SeqRow
	hasPending bool
	prepared   bool
}

func (g *groupSweep) prepare(specs []AggSpec) {
	sort.Slice(g.items, func(a, b int) bool { return g.items[a].start < g.items[b].start })
	g.ends = make([]endEvent, len(g.items))
	for i, it := range g.items {
		g.ends[i] = endEvent{t: it.end + 1, vals: it.vals}
	}
	sort.Slice(g.ends, func(a, b int) bool { return g.ends[a].t < g.ends[b].t })
	g.aggs = make([]aggState, len(specs))
	for d, s := range specs {
		g.aggs[d] = newAggState(s.Func)
	}
	g.prepared = true
}

// step advances the sweep past one event. It returns a completed result row
// when one is flushed, and done=true when the group is exhausted.
func (g *groupSweep) step() (row temporal.SeqRow, emitted, done bool) {
	if g.i >= len(g.items) && g.j >= len(g.ends) {
		if g.hasPending {
			g.hasPending = false
			return g.pending, true, false
		}
		return temporal.SeqRow{}, false, true
	}

	// The next event time: the earliest pending start or end+1 instant.
	var t temporal.Chronon
	switch {
	case g.i >= len(g.items):
		t = g.ends[g.j].t
	case g.j >= len(g.ends):
		t = g.items[g.i].start
	default:
		t = min(g.items[g.i].start, g.ends[g.j].t)
	}

	// Close the elementary interval [prevT, t−1] if tuples were active.
	if g.started && g.active > 0 {
		iv := temporal.Interval{Start: g.prevT, End: t - 1}
		vals := make([]float64, len(g.aggs))
		for d, a := range g.aggs {
			vals[d] = a.at(g.prevT, g.active)
		}
		switch {
		case g.hasPending && g.pending.T.End+1 == iv.Start && floatsEqual(g.pending.Aggs, vals):
			// Coalesce: identical aggregate vector over consecutive instants.
			g.pending.T.End = iv.End
		case g.hasPending:
			row, emitted = g.pending, true
			g.pending = temporal.SeqRow{Group: g.group, Aggs: vals, T: iv}
		default:
			g.pending = temporal.SeqRow{Group: g.group, Aggs: vals, T: iv}
			g.hasPending = true
		}
	}

	// Apply all events at t: leaves first, then enters.
	for g.j < len(g.ends) && g.ends[g.j].t == t {
		for d, a := range g.aggs {
			a.leave(g.ends[g.j].vals[d])
		}
		g.active--
		g.j++
	}
	for g.i < len(g.items) && g.items[g.i].start == t {
		for d, a := range g.aggs {
			a.enter(g.items[g.i].vals[d], g.items[g.i].end)
		}
		g.active++
		g.i++
	}
	g.prevT, g.started = t, true
	return row, emitted, false
}

func floatsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NewIterator compiles the query against the relation's schema, partitions
// the tuples into aggregation groups, and returns a streaming iterator over
// the ITA result.
func NewIterator(r *temporal.Relation, q Query) (*Iterator, error) {
	c, err := compile(r.Schema(), q)
	if err != nil {
		return nil, err
	}
	meta := c.resultMeta(r.Schema())

	byGroup := make(map[int32]*groupSweep)
	groupVals := make([]temporal.Datum, len(c.groupIdx))
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for gi, idx := range c.groupIdx {
			groupVals[gi] = tp.Vals[idx]
		}
		id := meta.Groups.Intern(groupVals)
		gs := byGroup[id]
		if gs == nil {
			gs = &groupSweep{group: id}
			byGroup[id] = gs
		}
		vals := make([]float64, len(c.specs))
		for d, idx := range c.attrIdx {
			if idx < 0 {
				continue // Count ignores the attribute
			}
			v, _ := tp.Vals[idx].Numeric()
			vals[d] = v
		}
		gs.items = append(gs.items, sweepItem{start: tp.T.Start, end: tp.T.End, vals: vals})
	}

	it := &Iterator{meta: meta}
	for _, id := range meta.Groups.SortedIDs() {
		if gs, ok := byGroup[id]; ok {
			gs.specs = c.specs
			it.groups = append(it.groups, gs)
		}
	}
	return it, nil
}

// Sequence returns the (row-less) result metadata: grouping attributes,
// aggregate names, and the group dictionary shared with the emitted rows.
func (it *Iterator) Sequence() *temporal.Sequence { return it.meta.WithRows(nil) }

// P returns the number of aggregate attributes of the result.
func (it *Iterator) P() int { return it.meta.P() }

// Next returns the next ITA result row, or ok=false when the stream ends.
func (it *Iterator) Next() (_ temporal.SeqRow, ok bool) {
	for it.cur < len(it.groups) {
		g := it.groups[it.cur]
		if !g.prepared {
			g.prepare(g.specs)
		}
		for {
			row, emitted, done := g.step()
			if emitted {
				return row, true
			}
			if done {
				it.cur++
				break
			}
		}
	}
	return temporal.SeqRow{}, false
}
