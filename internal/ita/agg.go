package ita

import "repro/internal/temporal"

// aggState is the incremental state of one aggregate function during the
// per-group sweep. enter is called when a tuple becomes active, leave when
// the sweep passes its end, and at returns the aggregate value for the
// elementary interval starting at chronon t while `active` tuples hold.
type aggState interface {
	enter(v float64, end temporal.Chronon)
	leave(v float64)
	at(t temporal.Chronon, active int) float64
	reset()
}

func newAggState(f Func) aggState {
	switch f {
	case Avg:
		return &avgState{}
	case Sum:
		return &sumState{}
	case Count:
		return &countState{}
	case Min:
		return &extremeState{wantMax: false}
	case Max:
		return &extremeState{wantMax: true}
	}
	panic("ita: unknown aggregate function")
}

type sumState struct{ sum float64 }

func (s *sumState) enter(v float64, _ temporal.Chronon)  { s.sum += v }
func (s *sumState) leave(v float64)                      { s.sum -= v }
func (s *sumState) at(_ temporal.Chronon, _ int) float64 { return s.sum }
func (s *sumState) reset()                               { s.sum = 0 }

type avgState struct{ sum float64 }

func (s *avgState) enter(v float64, _ temporal.Chronon)       { s.sum += v }
func (s *avgState) leave(v float64)                           { s.sum -= v }
func (s *avgState) at(_ temporal.Chronon, active int) float64 { return s.sum / float64(active) }
func (s *avgState) reset()                                    { s.sum = 0 }

type countState struct{}

func (countState) enter(float64, temporal.Chronon)           {}
func (countState) leave(float64)                             {}
func (countState) at(_ temporal.Chronon, active int) float64 { return float64(active) }
func (countState) reset()                                    {}

// extremeState keeps a lazy-deletion binary heap of (value, end) pairs. A
// pair stays in the heap after its tuple ends and is discarded only when it
// surfaces at the top with end < t. This gives O(log m) amortized updates
// without an order-statistics structure.
type extremeState struct {
	wantMax bool
	heap    []extremeEntry
}

type extremeEntry struct {
	v   float64
	end temporal.Chronon
}

func (s *extremeState) better(a, b float64) bool {
	if s.wantMax {
		return a > b
	}
	return a < b
}

func (s *extremeState) enter(v float64, end temporal.Chronon) {
	s.heap = append(s.heap, extremeEntry{v: v, end: end})
	// Sift up.
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.better(s.heap[i].v, s.heap[parent].v) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *extremeState) leave(float64) {} // lazy: cleaned up in at()

func (s *extremeState) pop() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && s.better(s.heap[l].v, s.heap[best].v) {
			best = l
		}
		if r < n && s.better(s.heap[r].v, s.heap[best].v) {
			best = r
		}
		if best == i {
			return
		}
		s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
		i = best
	}
}

func (s *extremeState) at(t temporal.Chronon, _ int) float64 {
	for len(s.heap) > 0 && s.heap[0].end < t {
		s.pop()
	}
	if len(s.heap) == 0 {
		// The sweep only queries while at least one tuple is active, so the
		// heap cannot be empty here; returning 0 keeps the method total.
		return 0
	}
	return s.heap[0].v
}

func (s *extremeState) reset() { s.heap = s.heap[:0] }
