package ita

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestEvalTreeFigure1c(t *testing.T) {
	got, err := EvalTree(projRelation(), avgSalQuery())
	if err != nil {
		t.Fatalf("EvalTree: %v", err)
	}
	want, _ := Eval(projRelation(), avgSalQuery())
	if !got.Equal(want, 1e-9) {
		t.Errorf("aggregation tree differs from sweep:\n%v\nvs\n%v", got, want)
	}
}

func TestEvalTreeRejectsMinMax(t *testing.T) {
	q := Query{Aggs: []AggSpec{{Func: Max, Attr: "Sal"}}}
	_, err := EvalTree(projRelation(), q)
	if !errors.Is(err, errMinMaxTree) {
		t.Errorf("expected errMinMaxTree, got %v", err)
	}
}

func TestEvalTreeEmptyRelation(t *testing.T) {
	r := temporal.NewRelation(temporal.MustSchema(temporal.Attribute{Name: "v", Kind: temporal.KindFloat}))
	got, err := EvalTree(r, Query{Aggs: []AggSpec{{Func: Sum, Attr: "v"}}})
	if err != nil || got.Len() != 0 {
		t.Errorf("empty relation: %v rows, %v", got.Len(), err)
	}
}

// TestEvalTreePropMatchesSweep cross-checks the two independent ITA
// evaluators on random relations — both must produce the identical
// sequential relation.
func TestEvalTreePropMatchesSweep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := temporal.MustSchema(
			temporal.Attribute{Name: "g", Kind: temporal.KindString},
			temporal.Attribute{Name: "v", Kind: temporal.KindInt},
		)
		r := temporal.NewRelation(schema)
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			start := temporal.Chronon(rng.Intn(30))
			r.MustAppend([]temporal.Datum{
				temporal.String(string(rune('A' + rng.Intn(3)))),
				temporal.Int(int64(rng.Intn(64)) * 8),
			}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(8))})
		}
		q := Query{
			GroupBy: []string{"g"},
			Aggs:    []AggSpec{{Func: Sum, Attr: "v"}, {Func: Count}, {Func: Avg, Attr: "v"}},
		}
		a, err1 := Eval(r, q)
		b, err2 := EvalTree(r, q)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Equal(b, 1e-9) && b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEvalTreeUngrouped: the tree handles the single implicit group.
func TestEvalTreeUngrouped(t *testing.T) {
	q := Query{Aggs: []AggSpec{{Func: Sum, Attr: "Sal"}}}
	a, _ := Eval(projRelation(), q)
	b, err := EvalTree(projRelation(), q)
	if err != nil {
		t.Fatalf("EvalTree: %v", err)
	}
	if !a.Equal(b, 1e-9) {
		t.Errorf("ungrouped tree differs:\n%v\nvs\n%v", b, a)
	}
}

func BenchmarkEvalTree(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	schema := temporal.MustSchema(
		temporal.Attribute{Name: "g", Kind: temporal.KindInt},
		temporal.Attribute{Name: "v", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(schema)
	for i := 0; i < 20000; i++ {
		start := temporal.Chronon(rng.Intn(50000))
		r.MustAppend([]temporal.Datum{
			temporal.Int(int64(rng.Intn(10))),
			temporal.Float(rng.Float64() * 1000),
		}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(100))})
	}
	q := Query{GroupBy: []string{"g"}, Aggs: []AggSpec{{Func: Avg, Attr: "v"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalTree(r, q); err != nil {
			b.Fatal(err)
		}
	}
}
