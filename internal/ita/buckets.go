package ita

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/temporal"
)

// EvalBuckets evaluates the ITA query with the bucket decomposition of Moon,
// Vega Lopez and Immanuel ("Efficient algorithms for large-scale temporal
// aggregation", TKDE 2003) — reference [18] of the paper: the time line is
// cut into `buckets` equal spans, every tuple is clipped to the buckets it
// overlaps, the buckets are aggregated independently (here: concurrently,
// one goroutine per bucket bounded by `workers`, 0 = GOMAXPROCS), and the
// per-bucket results are concatenated with boundary coalescing.
//
// Clipping preserves each instant's active tuple set, so the result is
// identical to Eval's (property-tested); the decomposition exists for
// relations too large to sweep in one piece and to use multiple cores.
func EvalBuckets(r *temporal.Relation, q Query, buckets, workers int) (*temporal.Sequence, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("ita: bucket count %d, want ≥ 1", buckets)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Compile once for validation and result metadata.
	c, err := compile(r.Schema(), q)
	if err != nil {
		return nil, err
	}
	out := c.resultMeta(r.Schema())
	span, ok := r.TimeSpan()
	if !ok {
		return out, nil
	}
	if int64(buckets) > span.End-span.Start+1 {
		buckets = int(span.End - span.Start + 1)
	}

	// Bucket b spans [bounds[b], bounds[b+1]−1].
	bounds := make([]temporal.Chronon, buckets+1)
	width := (span.End - span.Start + 1) / int64(buckets)
	for b := 0; b < buckets; b++ {
		bounds[b] = span.Start + int64(b)*width
	}
	bounds[buckets] = span.End + 1

	// Clip tuples into their buckets.
	clipped := make([]*temporal.Relation, buckets)
	for b := range clipped {
		clipped[b] = temporal.NewRelation(r.Schema())
	}
	locate := func(t temporal.Chronon) int {
		if width == 0 {
			return 0
		}
		b := int((t - span.Start) / width)
		if b >= buckets {
			b = buckets - 1
		}
		// Guard against rounding at the last, wider bucket.
		for b > 0 && t < bounds[b] {
			b--
		}
		return b
	}
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for b := locate(tp.T.Start); b < buckets && bounds[b] <= tp.T.End; b++ {
			iv := temporal.Interval{
				Start: max(tp.T.Start, bounds[b]),
				End:   min(tp.T.End, bounds[b+1]-1),
			}
			if err := clipped[b].Append(tp.Vals, iv); err != nil {
				return nil, err
			}
		}
	}

	// Aggregate buckets concurrently.
	seqs := make([]*temporal.Sequence, buckets)
	errs := make([]error, buckets)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for b := range clipped {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seqs[b], errs[b] = Eval(clipped[b], q)
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stitch: collect each group's rows across buckets (buckets are in
	// time order), re-interning group values into the output dictionary,
	// then emit groups canonically with boundary coalescing.
	type grow struct {
		rows []temporal.SeqRow
	}
	byGroup := make(map[int32]*grow)
	for _, seq := range seqs {
		for _, row := range seq.Rows {
			gid := out.Groups.Intern(seq.Groups.Values(row.Group))
			g := byGroup[gid]
			if g == nil {
				g = &grow{}
				byGroup[gid] = g
			}
			row.Group = gid
			g.rows = append(g.rows, row)
		}
	}
	for _, gid := range out.Groups.SortedIDs() {
		g := byGroup[gid]
		if g == nil {
			continue
		}
		for _, row := range g.rows {
			n := len(out.Rows)
			if n > 0 {
				last := &out.Rows[n-1]
				if last.Group == row.Group && last.T.End+1 == row.T.Start && floatsEqual(last.Aggs, row.Aggs) {
					last.T.End = row.T.End
					continue
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}
