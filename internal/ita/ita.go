// Package ita implements instant temporal aggregation (ITA, Definition 1 of
// the paper): for every aggregation group g and time instant t, the
// aggregate functions are evaluated over all argument tuples of group g
// whose timestamp contains t, and value-equivalent results over consecutive
// instants are coalesced into rows over maximal intervals.
//
// The package offers a batch evaluator (Eval) and a streaming Iterator that
// produces result rows one at a time in (group, time) order — the order the
// greedy PTA algorithms consume while merging early.
//
// The sweep runs in O(n log n) time per aggregation group: sum, count and
// avg are maintained incrementally, min and max with lazy-deletion heaps.
package ita

import (
	"fmt"
	"strings"

	"repro/internal/temporal"
)

// Func enumerates the supported aggregate functions.
type Func uint8

const (
	// Avg is the arithmetic mean of the attribute over the active tuples.
	Avg Func = iota
	// Sum is the sum of the attribute over the active tuples.
	Sum
	// Count is the number of active tuples (the attribute is ignored).
	Count
	// Min is the minimum attribute value over the active tuples.
	Min
	// Max is the maximum attribute value over the active tuples.
	Max
)

// String returns the lower-case SQL-ish name of the function.
func (f Func) String() string {
	switch f {
	case Avg:
		return "avg"
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("func(%d)", uint8(f))
}

// ParseFunc is the inverse of Func.String.
func ParseFunc(s string) (Func, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "avg", "mean":
		return Avg, nil
	case "sum":
		return Sum, nil
	case "count", "cnt":
		return Count, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	}
	return 0, fmt.Errorf("ita: unknown aggregate function %q", s)
}

// AggSpec is one aggregate function application fi/Bi: the function, the
// input attribute it aggregates (empty for Count), and the name of the
// output attribute (defaulted to "func_attr" when empty).
type AggSpec struct {
	Func Func
	Attr string
	As   string
}

// Name returns the output attribute name Bi.
func (a AggSpec) Name() string {
	if a.As != "" {
		return a.As
	}
	if a.Attr == "" {
		return a.Func.String()
	}
	return a.Func.String() + "_" + a.Attr
}

// Query is an ITA query: grouping attributes A and aggregate functions F.
type Query struct {
	GroupBy []string
	Aggs    []AggSpec
}

// compiled holds a query resolved against a concrete schema.
type compiled struct {
	groupIdx []int
	attrIdx  []int // -1 for Count without attribute
	specs    []AggSpec
}

func compile(schema *temporal.Schema, q Query) (*compiled, error) {
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("ita: query needs at least one aggregate function")
	}
	groupIdx, err := schema.Indices(q.GroupBy)
	if err != nil {
		return nil, err
	}
	c := &compiled{groupIdx: groupIdx, specs: q.Aggs}
	seen := make(map[string]bool, len(q.Aggs))
	for _, a := range q.Aggs {
		name := a.Name()
		if seen[name] {
			return nil, fmt.Errorf("ita: duplicate output attribute %q", name)
		}
		seen[name] = true
		if a.Attr == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("ita: %v needs an input attribute", a.Func)
			}
			c.attrIdx = append(c.attrIdx, -1)
			continue
		}
		idx, ok := schema.Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("ita: unknown attribute %q", a.Attr)
		}
		if k := schema.Attr(idx).Kind; a.Func != Count && k != temporal.KindInt && k != temporal.KindFloat {
			return nil, fmt.Errorf("ita: attribute %q of kind %v is not numeric", a.Attr, k)
		}
		c.attrIdx = append(c.attrIdx, idx)
	}
	return c, nil
}

// resultMeta builds the empty result sequence (schema S of Definition 1).
func (c *compiled) resultMeta(schema *temporal.Schema) *temporal.Sequence {
	groupAttrs := make([]temporal.Attribute, len(c.groupIdx))
	for i, gi := range c.groupIdx {
		groupAttrs[i] = schema.Attr(gi)
	}
	names := make([]string, len(c.specs))
	for i, a := range c.specs {
		names[i] = a.Name()
	}
	return temporal.NewSequence(groupAttrs, names)
}

// Eval evaluates the ITA query over relation r and returns the full result
// sequence.
func Eval(r *temporal.Relation, q Query) (*temporal.Sequence, error) {
	it, err := NewIterator(r, q)
	if err != nil {
		return nil, err
	}
	out := it.Sequence()
	out.Rows = make([]temporal.SeqRow, 0, r.Len())
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
