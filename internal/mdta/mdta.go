// Package mdta implements (a faithful core of) multi-dimensional temporal
// aggregation after Böhlen, Gamper and Jensen ("Multi-dimensional
// aggregation for temporal data", EDBT 2006) — reference [4] of the paper,
// the operator that generalizes instant and span temporal aggregation
// "towards more flexibility for the specification of aggregation groups"
// (Section 2.1).
//
// The query supplies explicit group specifications: each result group names
// the grouping-attribute values it stands for (or matches every tuple when
// none are given) and the time interval it reports on. An argument tuple
// contributes to a group when its grouping attributes equal the group's
// values and its timestamp overlaps the group's interval. ITA is the
// special case of one group per (value combination, instant) followed by
// coalescing; STA is the special case of regular spans per value
// combination — both equivalences are property-tested.
package mdta

import (
	"fmt"
	"math"

	"repro/internal/ita"
	"repro/internal/temporal"
)

// GroupSpec is one user-defined aggregation group.
type GroupSpec struct {
	// Vals are the grouping-attribute values tuples must match, aligned
	// with Query.GroupBy. A nil Vals matches every tuple — an aggregation
	// across all value combinations, which neither ITA nor STA can express.
	Vals []temporal.Datum
	// T is the interval the group reports on; tuples qualify by overlap.
	T temporal.Interval
}

// Query is an MDTA query: the grouping attributes that specs constrain and
// the aggregate functions.
type Query struct {
	GroupBy []string
	Aggs    []ita.AggSpec
}

// Eval evaluates the group specifications over the relation. The result
// holds one row per spec with a non-empty qualifying set, timestamped with
// the spec's interval, in the given spec order (specs for equal values and
// ascending disjoint intervals therefore yield a valid sequential relation;
// overlapping specs yield a general temporal relation that must not be fed
// to PTA).
func Eval(r *temporal.Relation, q Query, specs []GroupSpec) (*temporal.Sequence, error) {
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("mdta: query needs at least one aggregate function")
	}
	schema := r.Schema()
	groupIdx, err := schema.Indices(q.GroupBy)
	if err != nil {
		return nil, err
	}
	attrIdx := make([]int, len(q.Aggs))
	names := make([]string, len(q.Aggs))
	seen := make(map[string]bool)
	for i, a := range q.Aggs {
		names[i] = a.Name()
		if seen[names[i]] {
			return nil, fmt.Errorf("mdta: duplicate output attribute %q", names[i])
		}
		seen[names[i]] = true
		if a.Attr == "" {
			if a.Func != ita.Count {
				return nil, fmt.Errorf("mdta: %v needs an input attribute", a.Func)
			}
			attrIdx[i] = -1
			continue
		}
		idx, ok := schema.Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("mdta: unknown attribute %q", a.Attr)
		}
		if k := schema.Attr(idx).Kind; a.Func != ita.Count && k != temporal.KindInt && k != temporal.KindFloat {
			return nil, fmt.Errorf("mdta: attribute %q of kind %v is not numeric", a.Attr, k)
		}
		attrIdx[i] = idx
	}

	groupAttrs := make([]temporal.Attribute, len(groupIdx))
	for i, gi := range groupIdx {
		groupAttrs[i] = schema.Attr(gi)
	}
	out := temporal.NewSequence(groupAttrs, names)

	for si, spec := range specs {
		if !spec.T.Valid() {
			return nil, fmt.Errorf("mdta: group spec %d has invalid interval %v", si, spec.T)
		}
		if spec.Vals != nil && len(spec.Vals) != len(groupIdx) {
			return nil, fmt.Errorf("mdta: group spec %d has %d values for %d grouping attributes",
				si, len(spec.Vals), len(groupIdx))
		}
		var members []temporal.Tuple
		for i := 0; i < r.Len(); i++ {
			tp := r.Tuple(i)
			if !tp.T.Overlaps(spec.T) {
				continue
			}
			if spec.Vals != nil {
				match := true
				for gi, idx := range groupIdx {
					if !tp.Vals[idx].Equal(spec.Vals[gi]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
			}
			members = append(members, tp)
		}
		if len(members) == 0 {
			continue
		}
		gid := out.Groups.Intern(spec.Vals)
		aggs := make([]float64, len(q.Aggs))
		for d, a := range q.Aggs {
			aggs[d] = aggregate(a.Func, attrIdx[d], members)
		}
		out.Rows = append(out.Rows, temporal.SeqRow{Group: gid, Aggs: aggs, T: spec.T})
	}
	return out, nil
}

// InstantSpecs builds one group spec per (value combination, instant) over
// the span — the decomposition whose coalesced evaluation is ITA.
func InstantSpecs(valueCombos [][]temporal.Datum, span temporal.Interval) []GroupSpec {
	var out []GroupSpec
	for _, vals := range valueCombos {
		for t := span.Start; t <= span.End; t++ {
			out = append(out, GroupSpec{Vals: vals, T: temporal.Inst(t)})
		}
	}
	return out
}

// SpanSpecs builds one group spec per (value combination, span) — the
// decomposition equal to STA.
func SpanSpecs(valueCombos [][]temporal.Datum, spans []temporal.Interval) []GroupSpec {
	var out []GroupSpec
	for _, vals := range valueCombos {
		for _, sp := range spans {
			out = append(out, GroupSpec{Vals: vals, T: sp})
		}
	}
	return out
}

// ValueCombos lists the distinct grouping-attribute value combinations in
// the relation, in canonical order.
func ValueCombos(r *temporal.Relation, groupBy []string) ([][]temporal.Datum, error) {
	idx, err := r.Schema().Indices(groupBy)
	if err != nil {
		return nil, err
	}
	dict := temporal.NewGroupDict()
	buf := make([]temporal.Datum, len(idx))
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for gi, id := range idx {
			buf[gi] = tp.Vals[id]
		}
		dict.Intern(buf)
	}
	var out [][]temporal.Datum
	for _, id := range dict.SortedIDs() {
		out = append(out, dict.Values(id))
	}
	return out, nil
}

func aggregate(f ita.Func, attrIdx int, members []temporal.Tuple) float64 {
	if f == ita.Count {
		return float64(len(members))
	}
	var sum float64
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, tp := range members {
		v, _ := tp.Vals[attrIdx].Numeric()
		sum += v
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	switch f {
	case ita.Sum:
		return sum
	case ita.Avg:
		return sum / float64(len(members))
	case ita.Min:
		return mn
	case ita.Max:
		return mx
	}
	panic("mdta: unknown aggregate function")
}
