package mdta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ita"
	"repro/internal/sta"
	"repro/internal/temporal"
)

func projRelation() *temporal.Relation {
	s := temporal.MustSchema(
		temporal.Attribute{Name: "Empl", Kind: temporal.KindString},
		temporal.Attribute{Name: "Proj", Kind: temporal.KindString},
		temporal.Attribute{Name: "Sal", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(s)
	add := func(e, p string, sal float64, a, b temporal.Chronon) {
		r.MustAppend([]temporal.Datum{temporal.String(e), temporal.String(p), temporal.Float(sal)},
			temporal.Interval{Start: a, End: b})
	}
	add("John", "A", 800, 1, 4)
	add("Ann", "A", 400, 3, 6)
	add("Tom", "A", 300, 4, 7)
	add("John", "B", 500, 4, 5)
	add("John", "B", 500, 7, 8)
	return r
}

func avgQuery() Query {
	return Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}}}
}

// TestMDTASubsumesSTA: span specs reproduce the STA result exactly.
func TestMDTASubsumesSTA(t *testing.T) {
	r := projRelation()
	spans, _ := sta.Spans(1, 8, 4)
	combos, err := ValueCombos(r, []string{"Proj"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(r, avgQuery(), SpanSpecs(combos, spans))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	want, err := sta.Eval(r, ita.Query{GroupBy: []string{"Proj"}, Aggs: avgQuery().Aggs}, spans)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Errorf("MDTA span specs differ from STA:\n%v\nvs\n%v", got, want)
	}
}

// TestMDTASubsumesITA: instant specs plus coalescing reproduce ITA.
func TestMDTASubsumesITA(t *testing.T) {
	r := projRelation()
	combos, err := ValueCombos(r, []string{"Proj"})
	if err != nil {
		t.Fatal(err)
	}
	span, _ := r.TimeSpan()
	raw, err := Eval(r, avgQuery(), InstantSpecs(combos, span))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Coalesce value-equivalent instants, as ITA's final step does.
	coalesced := raw.WithRows(nil)
	for _, row := range raw.Rows {
		n := len(coalesced.Rows)
		if n > 0 {
			last := &coalesced.Rows[n-1]
			if last.Group == row.Group && last.T.End+1 == row.T.Start && last.Aggs[0] == row.Aggs[0] {
				last.T.End = row.T.End
				continue
			}
		}
		coalesced.Rows = append(coalesced.Rows, row.CloneAggs())
	}
	want, err := ita.Eval(r, ita.Query{GroupBy: []string{"Proj"}, Aggs: avgQuery().Aggs})
	if err != nil {
		t.Fatal(err)
	}
	if !coalesced.Equal(want, 1e-9) {
		t.Errorf("MDTA instant specs + coalescing differ from ITA:\n%v\nvs\n%v", coalesced, want)
	}
}

// TestMDTAWildcardGroups: a nil-Vals spec aggregates across every value
// combination, which ITA/STA cannot express.
func TestMDTAWildcardGroups(t *testing.T) {
	r := projRelation()
	specs := []GroupSpec{{Vals: nil, T: temporal.Interval{Start: 1, End: 8}}}
	got, err := Eval(r, avgQuery(), specs)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("rows = %d, want 1", got.Len())
	}
	// avg over all five tuples: (800+400+300+500+500)/5 = 500.
	if math.Abs(got.Rows[0].Aggs[0]-500) > 1e-9 {
		t.Errorf("wildcard avg = %v, want 500", got.Rows[0].Aggs[0])
	}
}

// TestMDTAOverlappingSpecs: result groups may overlap in time — a shape no
// previous operator produces.
func TestMDTAOverlappingSpecs(t *testing.T) {
	r := projRelation()
	a := []temporal.Datum{temporal.String("A")}
	specs := []GroupSpec{
		{Vals: a, T: temporal.Interval{Start: 1, End: 5}},
		{Vals: a, T: temporal.Interval{Start: 3, End: 8}},
	}
	got, err := Eval(r, avgQuery(), specs)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2", got.Len())
	}
	if got.Rows[0].T.Overlaps(got.Rows[1].T) == false {
		t.Error("expected overlapping result timestamps")
	}
}

func TestMDTAValidation(t *testing.T) {
	r := projRelation()
	if _, err := Eval(r, Query{}, nil); err == nil {
		t.Error("no aggregates should fail")
	}
	bad := Query{GroupBy: []string{"Nope"}, Aggs: avgQuery().Aggs}
	if _, err := Eval(r, bad, nil); err == nil {
		t.Error("unknown grouping attribute should fail")
	}
	if _, err := Eval(r, avgQuery(), []GroupSpec{{T: temporal.Interval{Start: 5, End: 1}}}); err == nil {
		t.Error("invalid spec interval should fail")
	}
	if _, err := Eval(r, avgQuery(), []GroupSpec{
		{Vals: []temporal.Datum{temporal.String("A"), temporal.String("x")}, T: temporal.Inst(1)},
	}); err == nil {
		t.Error("arity-mismatched spec values should fail")
	}
	dupe := Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{
		{Func: ita.Avg, Attr: "Sal"}, {Func: ita.Avg, Attr: "Sal"},
	}}
	if _, err := Eval(r, dupe, nil); err == nil {
		t.Error("duplicate output names should fail")
	}
	nonNum := Query{Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Empl"}}}
	if _, err := Eval(r, nonNum, nil); err == nil {
		t.Error("non-numeric aggregate should fail")
	}
}

// TestMDTAPropSubsumesSTA cross-checks MDTA against STA on random relations
// and random span widths.
func TestMDTAPropSubsumesSTA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := temporal.MustSchema(
			temporal.Attribute{Name: "g", Kind: temporal.KindString},
			temporal.Attribute{Name: "v", Kind: temporal.KindInt},
		)
		r := temporal.NewRelation(schema)
		for i := 0; i < 1+rng.Intn(15); i++ {
			start := temporal.Chronon(rng.Intn(20))
			r.MustAppend([]temporal.Datum{
				temporal.String(string(rune('A' + rng.Intn(2)))),
				temporal.Int(int64(rng.Intn(100))),
			}, temporal.Interval{Start: start, End: start + temporal.Chronon(rng.Intn(6))})
		}
		span, _ := r.TimeSpan()
		width := int64(1 + rng.Intn(6))
		spans, err := sta.Spans(span.Start, span.End, width)
		if err != nil {
			return false
		}
		q := Query{GroupBy: []string{"g"}, Aggs: []ita.AggSpec{
			{Func: ita.Sum, Attr: "v"}, {Func: ita.Count}, {Func: ita.Min, Attr: "v"}, {Func: ita.Max, Attr: "v"},
		}}
		combos, err := ValueCombos(r, []string{"g"})
		if err != nil {
			return false
		}
		got, err1 := Eval(r, q, SpanSpecs(combos, spans))
		want, err2 := sta.Eval(r, ita.Query{GroupBy: q.GroupBy, Aggs: q.Aggs}, spans)
		if err1 != nil || err2 != nil {
			return false
		}
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
