package experiments

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/pta"
)

func init() {
	register("ablation", "Ablation of the DP search-space bounds (Section 5.3)", runAblation)
	register("gapbridge", "Future-work extension: merging across temporal gaps (Section 8)", runGapBridge)
	register("parallel", "Engineering extension: divide-and-conquer PTA over runs, multicore", runParallel)
}

// runParallel contrasts the monolithic PTAc with the run-decomposed,
// multicore evaluator on gapped workloads. Both produce the identical
// optimum (property-tested in internal/core); only the work distribution
// differs.
func runParallel(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "parallel", Title: "monolithic PTAc vs run-decomposed parallel evaluation",
		Header: []string{"workload", "n", "runs", "c", "PTAc_ms", "parallel_ms", "speedup", "same_error"},
	}
	type wl struct {
		name           string
		groups, perGrp int
	}
	for _, w := range []wl{
		{"S2-style", 200, max(4, cfg.scaled(4000)/200)},
		{"few groups", 20, max(4, cfg.scaled(4000)/20)},
	} {
		seq, err := dataset.Uniform(w.groups, w.perGrp, 4, cfg.Seed+22)
		if err != nil {
			return nil, err
		}
		c := max(seq.CMin(), seq.Len()/5)
		var mono, par *pta.Result
		dMono, err := timeIt(func() error {
			var err error
			mono, err = cfg.compress(ctx, seq, "ptac", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		dPar, err := timeIt(func() error {
			var err error
			par, err = cfg.compress(ctx, seq, "ptac-parallel", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		same := "yes"
		if diff := par.Error - mono.Error; diff > 1e-6*(1+mono.Error) || diff < -1e-6*(1+mono.Error) {
			same = "NO"
		}
		t.AddRow(w.name, fmt.Sprintf("%d", seq.Len()), fmt.Sprintf("%d", seq.CMin()),
			fmt.Sprintf("%d", c), fmtDur(dMono), fmtDur(dPar),
			fmtF(float64(dMono)/float64(dPar)), same)
	}
	t.AddNote("the decomposition computes per-run error curves concurrently and allocates the budget")
	t.AddNote("with a small curve-combination DP; beyond using all cores it also avoids redundant search")
	return t, nil
}

// runGapBridge evaluates the paper's first future-work item: allowing the
// greedy strategy to merge across temporal gaps within a group. Bridging
// lowers the reachable floor from cmin (runs) to the group count and is
// compared against classic GMS at sizes both can reach.
func runGapBridge(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "gapbridge", Title: "classic vs gap-bridging greedy reduction",
		Header: []string{"query", "n", "cmin", "groups", "c", "GMS_err", "bridged_err", "bridged_reaches"},
	}
	for _, name := range []string{"I1", "T3"} {
		ws, err := Workloads(cfg, name)
		if err != nil {
			return nil, err
		}
		seq := ws[0].Seq
		n, cmin := seq.Len(), seq.CMin()
		groups := pta.GroupCount(seq)
		for _, c := range []int{cmin, max(cmin, n/20)} {
			gms, err := cfg.compress(ctx, seq, "gms", pta.Size(c), pta.Options{})
			if err != nil {
				return nil, err
			}
			bridged, err := cfg.compress(ctx, seq, "gms-bridged", pta.Size(c), pta.Options{})
			if err != nil {
				return nil, err
			}
			// How far below cmin can bridging go?
			floor, err := cfg.compress(ctx, seq, "gms-bridged", pta.Size(groups), pta.Options{})
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", cmin),
				fmt.Sprintf("%d", groups), fmt.Sprintf("%d", c),
				fmtF(gms.Error), fmtF(bridged.Error), fmt.Sprintf("%d", floor.C))
		}
	}
	t.AddNote("bridging reaches the group count (far below cmin) and never merges across groups;")
	t.AddNote("at sizes classic GMS can reach, bridging may trade a little error for the freedom to cross gaps")
	return t, nil
}

// runAblation isolates the two Section 5.3 optimizations — the column bound
// imax = G_k and the split-point bound j_min — on a gapped workload, and
// contrasts them with a gap-free workload where neither can help. Every mode
// computes the identical optimal reduction; only the work differs.
func runAblation(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "ablation", Title: "DP pruning ablation: cells / inner iterations / time by mode",
		Header: []string{"workload", "mode", "cells", "inner_iters", "time_ms", "error"},
	}
	// The four pruning modes are themselves registry strategies.
	modes := []struct{ strategy, label string }{
		{"dpbasic", "none"}, {"ptac-imax", "imax"}, {"ptac-jmin", "jmin"}, {"ptac", "imax+jmin"},
	}

	gapped, err := dataset.Uniform(100, max(4, cfg.scaled(3000)/100), 4, cfg.Seed+20)
	if err != nil {
		return nil, err
	}
	gapFree, err := dataset.Uniform(1, cfg.scaled(1500), 4, cfg.Seed+21)
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name string
		run  func(strategy string) (*pta.Result, error)
	}{
		{"gapped(100 groups)", func(strategy string) (*pta.Result, error) {
			c := max(gapped.CMin(), gapped.Len()/5)
			return cfg.compress(ctx, gapped, strategy, pta.Size(c), pta.Options{})
		}},
		{"gap-free", func(strategy string) (*pta.Result, error) {
			c := max(1, gapFree.Len()/5)
			return cfg.compress(ctx, gapFree, strategy, pta.Size(c), pta.Options{})
		}},
	}

	var reference *pta.Result
	for _, w := range workloads {
		reference = nil
		for _, m := range modes {
			var res *pta.Result
			d, err := timeIt(func() error {
				var err error
				res, err = w.run(m.strategy)
				return err
			})
			if err != nil {
				return nil, err
			}
			if reference == nil {
				reference = res
			} else if diff := res.Error - reference.Error; diff > 1e-6*(1+reference.Error) || diff < -1e-6*(1+reference.Error) {
				return nil, fmt.Errorf("ablation: mode %v changed the optimum: %v vs %v", m.label, res.Error, reference.Error)
			}
			t.AddRow(w.name, m.label,
				fmt.Sprintf("%d", res.Stats.Cells),
				fmt.Sprintf("%d", res.Stats.InnerIters),
				fmtDur(d), fmtF(res.Error))
		}
	}
	t.AddNote("both bounds cut work only in the presence of gaps/groups; the optimum never changes")
	t.AddNote("jmin dominates: it shortens every inner loop, while imax only removes all-infinite columns")
	return t, nil
}
