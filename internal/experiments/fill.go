package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/pta"
)

func init() {
	register("fill", "DP row-fill algorithms over input size: pruned scan vs monotone DC/SMAWK", runFill)
}

// fillAlgos are the pinned selections the sweep compares; "pruned" is the
// paper's scan and the baseline.
var fillAlgos = []pta.FillAlgo{pta.FillPruned, pta.FillDC, pta.FillSMAWK}

// runFill sweeps input size × row-fill algorithm on the Counter workload
// (cumulative counters: per-run monotone values, the shape the cost kernel
// certifies for the monotone fills). Every algorithm must return the exact
// same reduction — the sweep verifies C and Error bit for bit against the
// scan — so the table isolates pure fill speed. The committed
// BENCH_fill.json pins this table as the perf trajectory of the DP kernel.
func runFill(ctx context.Context, cfg Config) (*Table, error) {
	const c = 48
	t := &Table{
		ID:     "fill",
		Title:  fmt.Sprintf("row-fill runtime on cumulative-counter series, c = max(cmin, %d)", c),
		Header: []string{"workload", "n", "algo", "ms", "cells", "inner_iters", "vs_pruned"},
	}
	type workload struct {
		name   string
		groups int
	}
	sweep := []struct {
		workload
		sizes []int
	}{
		{workload{"counter", 1}, []int{1024, 2048, 4096, 8192}},
		{workload{"counter-200grp", 200}, []int{8192}},
	}
	for _, sw := range sweep {
		for _, base := range sw.sizes {
			n := cfg.scaled(base)
			perGroup := max(1, n/sw.groups)
			seq, err := dataset.Counter(sw.groups, perGroup, 1, cfg.Seed+16)
			if err != nil {
				return nil, err
			}
			budget := pta.Size(max(seq.CMin(), min(c, seq.Len())))
			var baseline *pta.Result
			var baselineMS float64
			for _, algo := range fillAlgos {
				opts := pta.Options{FillAlgo: algo}
				var res *pta.Result
				d, err := timeIt(func() error {
					var cerr error
					res, cerr = cfg.compress(ctx, seq, "ptac", budget, opts)
					return cerr
				})
				if err != nil {
					return nil, fmt.Errorf("fill: %s n=%d: %v", algo, seq.Len(), err)
				}
				ms := float64(d.Microseconds()) / 1000
				speedup := "1.00x"
				if algo == pta.FillPruned {
					baseline, baselineMS = res, ms
				} else {
					if res.C != baseline.C || math.Float64bits(res.Error) != math.Float64bits(baseline.Error) {
						return nil, fmt.Errorf("fill: %s n=%d diverged from the scan: C=%d err=%v, want C=%d err=%v",
							algo, seq.Len(), res.C, res.Error, baseline.C, baseline.Error)
					}
					speedup = fmt.Sprintf("%.2fx", baselineMS/math.Max(ms, 0.001))
				}
				t.AddRow(sw.name, fmt.Sprintf("%d", seq.Len()), algo.String(), fmtDur(d),
					fmt.Sprintf("%d", res.Stats.Cells), fmt.Sprintf("%d", res.Stats.InnerIters), speedup)
			}
		}
	}
	t.AddNote("all algorithms verified bitwise-identical (C and Error) against the pruned scan per row")
	t.AddNote("dc/smawk apply the monotone-matrix (quadrangle inequality) structure the Counter workload certifies;")
	t.AddNote("on data without per-run monotone values they fall back to the scan, so pinning is always safe")
	return t, nil
}
