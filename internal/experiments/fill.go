package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/pta"
)

func init() {
	register("fill", "DP row-fill algorithms over input size: pruned scan vs monotone DC/SMAWK/online", runFill)
}

// fillAlgos are the pinned selections the sweep compares; "pruned" is the
// paper's scan and the baseline.
var fillAlgos = []pta.FillAlgo{pta.FillPruned, pta.FillDC, pta.FillSMAWK, pta.FillOnline}

// runFill sweeps input size × row-fill algorithm on two workload families:
// Counter (cumulative counters — fully monotone per run, coverage 1.0) and
// Mixed (counter ramps interleaved with oscillating noise — the kernel
// certifies the ramps as monotone segments and the fills dispatch a monotone
// fill inside them, completing the rest with the envelope-pruned scan). The
// coverage column is the certified fraction pta.MonotoneCoverage reports; it
// predicts how much of the row fill runs at the monotone algorithms' cost.
// The env_skips column counts candidates the completion scan discarded in
// O(1) range skips (zero for the pruned baseline, which never consults the
// envelope). Every algorithm must return the exact same reduction — the
// sweep verifies C and Error bit for bit against the scan — so the table
// isolates pure fill speed. A final "stream" row per workload drives the
// same budget through CompressStream (the incremental Solver path, which
// auto-selects the online fill) and verifies it too. The committed
// BENCH_fill.json pins this table as the perf trajectory of the DP kernel.
func runFill(ctx context.Context, cfg Config) (*Table, error) {
	const c = 48
	t := &Table{
		ID:     "fill",
		Title:  fmt.Sprintf("row-fill runtime on counter and mixed series, c = max(cmin, %d)", c),
		Header: []string{"workload", "n", "coverage", "algo", "ms", "cells", "inner_iters", "env_skips", "vs_pruned"},
	}
	type workload struct {
		name   string
		gen    func(groups, perGroup, p int, seed int64) (*pta.Series, error)
		groups int
	}
	sweep := []struct {
		workload
		sizes []int
	}{
		{workload{"counter", dataset.Counter, 1}, []int{1024, 2048, 4096, 8192, 16384}},
		{workload{"counter-200grp", dataset.Counter, 200}, []int{8192}},
		{workload{"mixed", dataset.Mixed, 1}, []int{1024, 2048, 4096, 8192, 16384}},
		{workload{"mixed-200grp", dataset.Mixed, 200}, []int{8192}},
	}
	for _, sw := range sweep {
		for _, base := range sw.sizes {
			n := cfg.scaled(base)
			perGroup := max(1, n/sw.groups)
			seq, err := sw.gen(sw.groups, perGroup, 1, cfg.Seed+16)
			if err != nil {
				return nil, err
			}
			coverage, err := pta.MonotoneCoverage(seq, pta.Options{})
			if err != nil {
				return nil, err
			}
			budget := pta.Size(max(seq.CMin(), min(c, seq.Len())))
			addRow := func(algo string, d float64, res *pta.Result, speedup string) {
				t.AddRow(sw.name, fmt.Sprintf("%d", seq.Len()), fmt.Sprintf("%.2f", coverage),
					algo, fmt.Sprintf("%.2f", d),
					fmt.Sprintf("%d", res.Stats.Cells), fmt.Sprintf("%d", res.Stats.InnerIters),
					fmt.Sprintf("%d", res.Stats.EnvelopeSkips), speedup)
			}
			verify := func(algo string, res, baseline *pta.Result) error {
				if res.C != baseline.C || math.Float64bits(res.Error) != math.Float64bits(baseline.Error) {
					return fmt.Errorf("fill: %s %s n=%d diverged from the scan: C=%d err=%v, want C=%d err=%v",
						sw.name, algo, seq.Len(), res.C, res.Error, baseline.C, baseline.Error)
				}
				return nil
			}
			var baseline *pta.Result
			var baselineMS float64
			for _, algo := range fillAlgos {
				opts := pta.Options{FillAlgo: algo}
				var res *pta.Result
				d, err := timeIt(func() error {
					var cerr error
					res, cerr = cfg.compress(ctx, seq, "ptac", budget, opts)
					return cerr
				})
				if err != nil {
					return nil, fmt.Errorf("fill: %s %s n=%d: %v", sw.name, algo, seq.Len(), err)
				}
				ms := float64(d.Microseconds()) / 1000
				speedup := "1.00x"
				if algo == pta.FillPruned {
					baseline, baselineMS = res, ms
				} else {
					if err := verify(algo.String(), res, baseline); err != nil {
						return nil, err
					}
					speedup = fmt.Sprintf("%.2fx", baselineMS/math.Max(ms, 0.001))
				}
				addRow(algo.String(), ms, res, speedup)
			}
			// Streaming fill: the same budget answered through CompressStream
			// — the exact DP materializes the stream into an incremental
			// Solver, whose Deepen path auto-selects the online fill.
			var sres *pta.Result
			d, err := timeIt(func() error {
				var cerr error
				sres, cerr = cfg.engine().CompressStream(ctx, pta.NewStream(seq),
					pta.Plan{Strategy: "ptac", Budget: budget, Options: &pta.Options{}}, nil)
				return cerr
			})
			if err != nil {
				return nil, fmt.Errorf("fill: %s stream n=%d: %v", sw.name, seq.Len(), err)
			}
			if err := verify("stream", sres, baseline); err != nil {
				return nil, err
			}
			ms := float64(d.Microseconds()) / 1000
			addRow("stream", ms, sres, fmt.Sprintf("%.2fx", baselineMS/math.Max(ms, 0.001)))
		}
	}
	t.AddNote("all algorithms verified bitwise-identical (C and Error) against the pruned scan per row")
	t.AddNote("coverage = fraction of rows inside certified monotone segments long enough for a monotone fill (pta.MonotoneCoverage);")
	t.AddNote("counter certifies fully (1.00), mixed partially — the fills dispatch per segment and envelope-prune the rest;")
	t.AddNote("env_skips = candidates discarded in O(1) range skips by the envelope bound (pruned baseline never consults it);")
	t.AddNote("stream = CompressStream through the incremental Solver, which auto-selects the online fill at n >= 256;")
	t.AddNote("at coverage 0 the kernel demotes to the scan outright, so pinning dc/smawk/online is always safe")
	return t, nil
}
