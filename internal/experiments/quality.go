package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/sta"
	"repro/internal/temporal"
	"repro/pta"
)

func init() {
	register("tab1", "ITA aggregation queries used for the evaluation (Table 1)", runTab1)
	register("fig1", "Running example: proj relation, STA, ITA and PTA results (Fig. 1)", runFig1)
	register("fig2", "Approximations of a time-series excerpt (Fig. 2)", runFig2)
	register("fig4fig5", "Error matrix E and split-point matrix J of the running example (Figs. 4-5)", runFig4Fig5)
	register("fig9", "Greedy dendrogram of the running example (Fig. 9)", runFig9)
	register("fig14a", "PTA error vs reduction ratio, real workloads (Fig. 14a)", runFig14a)
	register("fig14b", "PTA error vs reduction ratio by dimensionality (Fig. 14b)", runFig14b)
	register("fig15", "Reduction error of all algorithms on T1 (Fig. 15)", runFig15)
	register("fig16", "Average error ratio per query and method (Fig. 16)", runFig16)
	register("fig17", "Impact of the read-ahead parameter δ (Fig. 17)", runFig17)
}

// --- tab1 ---

func runTab1(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "tab1", Title: "workload inventory",
		Header: []string{"query", "grouping", "functions", "input", "ita_size", "cmin"},
	}
	names := []string{"E1", "E2", "E3", "E4", "I1", "I2", "I3", "T1", "T2", "T3", "S1", "S2"}
	ws, err := Workloads(cfg, names...)
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		t.AddRow(w.Name, w.Grouping, w.Funcs,
			fmt.Sprintf("%d", w.InputSize),
			fmt.Sprintf("%d", w.Seq.Len()),
			fmt.Sprintf("%d", w.Seq.CMin()))
	}
	t.AddNote("paper (Table 1): E1-E3 ITA 6394/cmin 1; E4 ITA 5419493/cmin 339067; I1-I3 ITA 16144/cmin 131;")
	t.AddNote("T1 1800/1; T2 8746/1; T3 6574/216; S1 10M/1; S2 10M/50000 — here regenerated at reproduction scale.")
	return t, nil
}

// --- fig1 ---

func runFig1(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "fig1", Title: "running example",
		Header: []string{"relation", "group", "value", "interval"},
	}
	r := dataset.Proj()
	q := ita.Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}}}

	spans, err := sta.Spans(1, 8, 4)
	if err != nil {
		return nil, err
	}
	staRes, err := sta.Eval(r, q, spans)
	if err != nil {
		return nil, err
	}
	itaRes, err := ita.Eval(r, q)
	if err != nil {
		return nil, err
	}
	ptaRes, err := cfg.compress(ctx, itaRes, "ptac", pta.Size(4), pta.Options{})
	if err != nil {
		return nil, err
	}
	emit := func(label string, seq *temporal.Sequence) {
		for _, row := range seq.Rows {
			t.AddRow(label, seq.Groups.Values(row.Group)[0].Text(), fmtF(row.Aggs[0]), row.T.String())
		}
	}
	emit("STA (b)", staRes)
	emit("ITA (c)", itaRes)
	emit("PTA c=4 (d)", ptaRes.Series)
	t.AddNote("PTA error = %s (paper: 49166, Example 6)", fmtF(ptaRes.Error))
	return t, nil
}

// --- fig2 ---

// fig2Excerpt extracts a gap-free single-group stretch with constant-value
// runs. The paper plots "a small excerpt of the Incumbents data set" whose
// profile is piecewise constant with jumps in both directions (Fig. 2(a));
// the matching stand-in is the active-assignment count of one Incumbents
// aggregation group: small integer plateaus that rise and fall.
func fig2Excerpt(cfg Config) (*temporal.Sequence, error) {
	rel, err := buildIncumbents(cfg)
	if err != nil {
		return nil, err
	}
	seq, err := ita.Eval(rel, ita.Query{
		GroupBy: []string{"Dept", "Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Count}},
	})
	if err != nil {
		return nil, err
	}
	// Longest gap-free run, capped at 400 rows.
	bestLo, bestHi, lo := 0, 0, 0
	for i := 0; i <= seq.Len(); i++ {
		if i == seq.Len() || (i > 0 && !seq.Adjacent(i-1)) {
			if i-lo > bestHi-bestLo {
				bestLo, bestHi = lo, i
			}
			lo = i
		}
	}
	if bestHi-bestLo > 400 {
		bestHi = bestLo + 400
	}
	rows := make([]temporal.SeqRow, 0, bestHi-bestLo)
	for _, r := range seq.Rows[bestLo:bestHi] {
		rows = append(rows, r.CloneAggs())
	}
	out := temporal.NewSequence(nil, []string{"value"})
	gid := out.Groups.Intern(nil)
	for i := range rows {
		rows[i].Group = gid
	}
	out.Rows = rows
	return out, nil
}

func runFig2(ctx context.Context, cfg Config) (*Table, error) {
	seq, err := fig2Excerpt(cfg)
	if err != nil {
		return nil, err
	}
	if seq.Len() < 16 {
		return nil, fmt.Errorf("fig2: excerpt too short (%d rows)", seq.Len())
	}
	series, err := approx.FromSequence(seq)
	if err != nil {
		return nil, err
	}
	vals := series.Dims[0]
	const budget = 10

	t := &Table{
		ID: "fig2", Title: fmt.Sprintf("approximations of a %d-row excerpt, budget %d", seq.Len(), budget),
		Header: []string{"method", "sse", "segments_or_coefs"},
	}
	pointSSE := func(rec []float64) float64 {
		var s float64
		for i, v := range vals {
			d := v - rec[i]
			s += d * d
		}
		return s
	}

	// DWT with 10 coefficients.
	dwtRec, err := approx.DWTTopK(vals, budget)
	if err != nil {
		return nil, err
	}
	t.AddRow("DWT", fmtF(pointSSE(dwtRec)), fmt.Sprintf("%d coefs", budget))
	// DFT with 10 coefficients.
	dftRec, err := approx.DFTTopK(vals, budget)
	if err != nil {
		return nil, err
	}
	t.AddRow("DFT", fmtF(pointSSE(dftRec)), fmt.Sprintf("%d coefs", budget))
	// Chebyshev with 10 coefficients.
	chebRec, err := approx.Chebyshev(vals, budget)
	if err != nil {
		return nil, err
	}
	t.AddRow("Chebyshev", fmtF(pointSSE(chebRec)), fmt.Sprintf("%d coefs", budget))
	// Segmentation methods, enumerated through the strategy registry under
	// the same shared budget.
	for _, spec := range []struct{ strategy, label string }{
		{"paa", "PAA"}, {"apca", "APCA"}, {"pla", "PLA"},
		{"ptac", "PTA"}, {"gptac", "gPTAc"},
	} {
		res, err := cfg.compress(ctx, seq, spec.strategy, pta.Size(budget),
			pta.Options{ReadAhead: pta.ReadAheadInf})
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.label, fmtF(res.Error), fmt.Sprintf("%d segments", res.C))
	}

	t.AddNote("paper (Fig. 2, different excerpt): DWT 2903, DFT 669, Chebyshev 17257, PAA 2516, APCA 2573, PTA 109, gPTAc 119")
	t.AddNote("the load-bearing shape: PTA < gPTAc << every step-function baseline (DWT, PAA, APCA)")
	t.AddNote("continuous fits (DFT, Chebyshev) rank with the excerpt's jump sizes: the paper's excerpt had extreme")
	t.AddNote("discontinuities that made Chebyshev ring; this synthetic excerpt is milder, so it ranks higher")
	return t, nil
}

// --- fig4fig5 ---

func runFig4Fig5(ctx context.Context, cfg Config) (*Table, error) {
	r := dataset.Proj()
	seq, err := ita.Eval(r, ita.Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}}})
	if err != nil {
		return nil, err
	}
	em, jm, err := pta.Matrices(seq, 4, pta.Options{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig4fig5", Title: "DP matrices of the running example (c = 4)",
		Header: []string{"matrix", "k", "i=1", "i=2", "i=3", "i=4", "i=5", "i=6", "i=7"},
	}
	for k := 1; k <= 4; k++ {
		row := []string{"E", fmt.Sprintf("%d", k)}
		for i := 1; i <= 7; i++ {
			if math.IsInf(em[k-1][i], 1) {
				row = append(row, "inf")
			} else {
				row = append(row, fmtF(em[k-1][i]))
			}
		}
		t.AddRow(row...)
	}
	for k := 1; k <= 4; k++ {
		row := []string{"J", fmt.Sprintf("%d", k)}
		for i := 1; i <= 7; i++ {
			row = append(row, fmt.Sprintf("%d", jm[k-1][i]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper Fig. 4 row 4: 0 1666 6666 49166; Fig. 5 optimal path J[4][7]=6, J[3][6]=5, J[2][5]=2, J[1][2]=0")
	return t, nil
}

// --- fig9 ---

func runFig9(ctx context.Context, cfg Config) (*Table, error) {
	r := dataset.Proj()
	seq, err := ita.Eval(r, ita.Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}}})
	if err != nil {
		return nil, err
	}
	opt, err := cfg.compress(ctx, seq, "ptac", pta.Size(4), pta.Options{})
	if err != nil {
		return nil, err
	}
	greedy, err := cfg.compress(ctx, seq, "gms", pta.Size(4), pta.Options{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig9", Title: "greedy vs optimal reduction to 4 tuples",
		Header: []string{"algorithm", "error", "result"},
	}
	render := func(seq *temporal.Sequence) string {
		s := ""
		for i, row := range seq.Rows {
			if i > 0 {
				s += "; "
			}
			s += fmt.Sprintf("(%s,%s,%s)", seq.Groups.Values(row.Group)[0].Text(), fmtF(row.Aggs[0]), row.T)
		}
		return s
	}
	t.AddRow("PTAc", fmtF(opt.Error), render(opt.Series))
	t.AddRow("GMS", fmtF(greedy.Error), render(greedy.Series))
	t.AddRow("ratio", fmtF(greedy.Error/opt.Error), "")
	t.AddNote("paper (Example 17): optimal 49166, greedy 63000, ratio 1.28")
	return t, nil
}

// --- fig14 ---

// reductionGrid maps reduction ratios (percent) to size bounds k.
func kForReduction(n, cmin int, r float64) int {
	k := int(math.Round(float64(n) - r/100*float64(n-cmin)))
	return max(cmin, min(n, k))
}

func runFig14a(ctx context.Context, cfg Config) (*Table, error) {
	names := []string{"E1", "E2", "E3", "I1", "I2", "I3", "T1", "T2", "T3"}
	ws, err := Workloads(cfg, names...)
	if err != nil {
		return nil, err
	}
	ratios := []float64{90, 92, 94, 96, 97, 98, 99, 99.5, 100}
	t := &Table{
		ID: "fig14a", Title: "error (% of SSEmax) vs reduction ratio (90-100%)",
		Header: append([]string{"reduction%"}, names...),
	}
	type curveInfo struct {
		curve []float64
		emax  float64
		n     int
		cmin  int
	}
	infos := make([]curveInfo, len(ws))
	for i, w := range ws {
		emax, err := pta.MaxError(w.Seq, pta.Options{})
		if err != nil {
			return nil, err
		}
		n, cmin := w.Seq.Len(), w.Seq.CMin()
		kmax := kForReduction(n, cmin, ratios[0])
		curve, err := pta.ErrorCurve(w.Seq, kmax, pta.Options{})
		if err != nil {
			return nil, err
		}
		infos[i] = curveInfo{curve: curve, emax: emax, n: n, cmin: cmin}
	}
	for _, r := range ratios {
		row := []string{fmtF(r)}
		for _, info := range infos {
			k := kForReduction(info.n, info.cmin, r)
			if k > len(info.curve) {
				row = append(row, "-")
				continue
			}
			row = append(row, fmtF(100*info.curve[k-1]/info.emax))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: most queries stay below ~10%% error even at 95%% reduction; T3 (12 dims) reaches ~55%% at 90%%")
	return t, nil
}

func runFig14b(ctx context.Context, cfg Config) (*Table, error) {
	n := cfg.scaled(2000)
	full, err := dataset.Uniform(1, n, 10, cfg.Seed+6)
	if err != nil {
		return nil, err
	}
	dims := []int{1, 2, 4, 6, 8, 10}
	ratios := []float64{0, 20, 40, 60, 80, 90, 95, 99, 100}
	t := &Table{
		ID: "fig14b", Title: fmt.Sprintf("error (%% of SSEmax) vs reduction, %d uniform tuples, by dimensionality", n),
		Header: append([]string{"reduction%"}, func() []string {
			h := make([]string, len(dims))
			for i, d := range dims {
				h[i] = fmt.Sprintf("%dD", d)
			}
			return h
		}()...),
	}
	curves := make([][]float64, len(dims))
	emaxs := make([]float64, len(dims))
	for i, d := range dims {
		proj := full.WithRows(nil)
		proj.AggNames = full.AggNames[:d]
		rows := make([]temporal.SeqRow, full.Len())
		for j, r := range full.Rows {
			rows[j] = temporal.SeqRow{Group: r.Group, Aggs: r.Aggs[:d], T: r.T}
		}
		proj.Rows = rows
		emax, err := pta.MaxError(proj, pta.Options{})
		if err != nil {
			return nil, err
		}
		curve, err := pta.ErrorCurve(proj, proj.Len(), pta.Options{})
		if err != nil {
			return nil, err
		}
		curves[i] = curve
		emaxs[i] = emax
	}
	for _, r := range ratios {
		row := []string{fmtF(r)}
		for i := range dims {
			k := kForReduction(n, 1, r)
			row = append(row, fmtF(100*curves[i][k-1]/emaxs[i]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: the error at a fixed reduction ratio grows with the dimensionality")
	return t, nil
}

// --- fig15 ---

// baselineErrors evaluates every comparable algorithm on a 1-D gap-free
// workload for one size bound c, returning SSE values (NaN = inapplicable).
type methodErrors struct {
	gptac, atc, apca, dwt, paa float64
}

func runFig15(ctx context.Context, cfg Config) (*Table, error) {
	ws, err := Workloads(cfg, "T1")
	if err != nil {
		return nil, err
	}
	seq := ws[0].Seq
	n, cmin := seq.Len(), seq.CMin()
	emax, err := pta.MaxError(seq, pta.Options{})
	if err != nil {
		return nil, err
	}
	series, err := approx.FromSequence(seq)
	if err != nil {
		return nil, err
	}
	vals := series.Dims[0]

	ratios := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99}
	kmax := kForReduction(n, cmin, ratios[0])
	curve, err := pta.ErrorCurve(seq, kmax, pta.Options{})
	if err != nil {
		return nil, err
	}

	// ATC sweep once; for every size bound the best result that does not
	// exceed it is charged (the paper's protocol with a dense exponential
	// threshold list).
	ths, err := approx.ATCThresholds(emax/1e8+1e-12, emax, 120)
	if err != nil {
		return nil, err
	}
	atcBySize, err := approx.ATCSweep(seq, ths, nil, func(z *temporal.Sequence) (float64, error) {
		return pta.SSE(seq, z, pta.Options{})
	})
	if err != nil {
		return nil, err
	}
	nearestATC := func(c int) (float64, int) {
		best, bestSize := math.NaN(), -1
		for size, res := range atcBySize {
			fits := size <= c
			bestFits := bestSize >= 0 && bestSize <= c
			switch {
			case bestSize < 0,
				fits && !bestFits,
				fits == bestFits && abs(size-c) < abs(bestSize-c):
				best, bestSize = res.Error, size
			}
		}
		return best, bestSize
	}

	t := &Table{
		ID: "fig15", Title: fmt.Sprintf("T1 (n=%d): error %% of SSEmax and ratio vs PTAc", n),
		Header: []string{"reduction%", "c", "PTAc%", "gPTAc%", "ATC%", "APCA%", "DWT%", "PAA%",
			"ratio_gPTAc", "ratio_ATC", "ratio_APCA"},
	}
	for _, r := range ratios {
		c := kForReduction(n, cmin, r)
		opt := curve[c-1]
		g, err := cfg.compress(ctx, seq, "gptac", pta.Size(c), pta.Options{ReadAhead: pta.ReadAheadInf})
		if err != nil {
			return nil, err
		}
		atcErr, _ := nearestATC(c)
		apcaRes, err := cfg.compress(ctx, seq, "apca", pta.Size(c), pta.Options{})
		if err != nil {
			return nil, err
		}
		apcaErr := apcaRes.Error
		dwtRec, _, err := approx.DWTWithSegments(vals, c)
		if err != nil {
			return nil, err
		}
		dwtErr := pointSSE(vals, dwtRec)
		paaRes, err := cfg.compress(ctx, seq, "paa", pta.Size(c), pta.Options{})
		if err != nil {
			return nil, err
		}
		paaErr := paaRes.Error
		pct := func(e float64) string { return fmtF(100 * e / emax) }
		ratio := func(e float64) string {
			if opt <= 0 {
				return "-"
			}
			return fmtF(e / opt)
		}
		t.AddRow(fmtF(r), fmt.Sprintf("%d", c), pct(opt), pct(g.Error), pct(atcErr),
			pct(apcaErr), pct(dwtErr), pct(paaErr), ratio(g.Error), ratio(atcErr), ratio(apcaErr))
	}
	t.AddNote("paper: gPTAc hugs PTAc (ratio → ≤1.25); ATC and APCA lag; DWT and PAA are far worse")
	return t, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// --- fig16 ---

func runFig16(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "fig16", Title: "average error ratio against PTAc (E4: against gPTAc)",
		Header: []string{"query", "gPTAc", "ATC", "APCA", "DWT", "PAA", "Cheb"},
	}
	type spec struct {
		name       string
		timeSeries bool // 1-D gap-free: all baselines apply
	}
	specs := []spec{
		{"E1", true}, {"E2", true}, {"E3", true}, {"E4", false},
		{"I1", false}, {"I2", false}, {"I3", false},
		{"T1", true}, {"T2", true}, {"T3", false},
	}
	for _, sp := range specs {
		ws, err := Workloads(cfg, sp.name)
		if err != nil {
			return nil, err
		}
		seq := ws[0].Seq
		row, err := fig16Row(ctx, cfg, sp.name, seq, sp.timeSeries)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s: %v", sp.name, err)
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: gPTAc consistently closest to 1; ATC second but inconsistent; DWT/PAA/Chebyshev worst;")
	t.AddNote("time-series methods are n/a on grouped or gapped queries (E4, I1-I3, T3); E4 uses gPTAc as the baseline")
	return t, nil
}

// fig16Row computes the average error ratios of one query.
func fig16Row(ctx context.Context, cfg Config, name string, seq *temporal.Sequence, timeSeries bool) ([]string, error) {
	n, cmin := seq.Len(), seq.CMin()
	emax, err := pta.MaxError(seq, pta.Options{})
	if err != nil {
		return nil, err
	}
	grid := make([]int, 0, 12)
	for _, r := range []float64{15, 25, 35, 45, 55, 65, 75, 85, 92, 97} {
		c := kForReduction(n, cmin, r)
		if len(grid) == 0 || grid[len(grid)-1] != c {
			grid = append(grid, c)
		}
	}

	// Baseline errors: exact DP when feasible, greedy for E4-sized inputs.
	big := n > 20000
	baseline := make(map[int]float64, len(grid))
	if big {
		for _, c := range grid {
			g, err := cfg.compress(ctx, seq, "gptac", pta.Size(c), pta.Options{ReadAhead: pta.ReadAheadInf})
			if err != nil {
				return nil, err
			}
			baseline[c] = g.Error
		}
	} else {
		maxC := grid[0]
		for _, c := range grid {
			maxC = max(maxC, c)
		}
		curve, err := pta.ErrorCurve(seq, maxC, pta.Options{})
		if err != nil {
			return nil, err
		}
		for _, c := range grid {
			baseline[c] = curve[c-1]
		}
	}

	// ATC sweep shared across grid points.
	ths, err := approx.ATCThresholds(emax/1e8+1e-12, emax, 80)
	if err != nil {
		return nil, err
	}
	atcBySize, err := approx.ATCSweep(seq, ths, nil, func(z *temporal.Sequence) (float64, error) {
		return pta.SSE(seq, z, pta.Options{})
	})
	if err != nil {
		return nil, err
	}

	var vals []float64
	if timeSeries {
		series, err := approx.FromSequence(seq)
		if err != nil {
			return nil, err
		}
		vals = series.Dims[0]
	}

	type acc struct {
		sum, sq float64
		n       int
	}
	var gptac, atc, apca, dwt, paa, cheb acc
	add := func(a *acc, ratio float64) {
		if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
			return
		}
		a.sum += ratio
		a.sq += ratio * ratio
		a.n++
	}
	for _, c := range grid {
		opt := baseline[c]
		if opt <= 1e-9*emax {
			continue // ratio unstable where the optimum is ~exact
		}
		if !big {
			g, err := cfg.compress(ctx, seq, "gptac", pta.Size(c), pta.Options{ReadAhead: pta.ReadAheadInf})
			if err != nil {
				return nil, err
			}
			add(&gptac, g.Error/opt)
		} else {
			add(&gptac, 1) // E4 regime: gPTAc is the baseline itself
		}
		if best, ok := nearestSize(atcBySize, c); ok {
			add(&atc, best/opt)
		}
		if timeSeries {
			apcaRes, err := cfg.compress(ctx, seq, "apca", pta.Size(c), pta.Options{})
			if err != nil {
				return nil, err
			}
			add(&apca, apcaRes.Error/opt)
			rec, _, err := approx.DWTWithSegments(vals, c)
			if err != nil {
				return nil, err
			}
			add(&dwt, pointSSE(vals, rec)/opt)
			paaRes, err := cfg.compress(ctx, seq, "paa", pta.Size(c), pta.Options{})
			if err != nil {
				return nil, err
			}
			add(&paa, paaRes.Error/opt)
			m := min(c, 1000) // the paper caps Chebyshev budgets
			chebRec, err := approx.Chebyshev(vals, m)
			if err != nil {
				return nil, err
			}
			add(&cheb, pointSSE(vals, chebRec)/opt)
		}
	}
	cell := func(a acc) string {
		if a.n == 0 {
			return "n/a"
		}
		mean := a.sum / float64(a.n)
		variance := a.sq/float64(a.n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		stderr := math.Sqrt(variance / float64(a.n))
		return fmt.Sprintf("%s±%s", fmtF(mean), fmtF(stderr))
	}
	return []string{name, cell(gptac), cell(atc), cell(apca), cell(dwt), cell(paa), cell(cheb)}, nil
}

// nearestSize charges the best sweep result whose size does not exceed c,
// falling back to the closest size when every result is larger.
func nearestSize(bySize map[int]approx.ATCResult, c int) (float64, bool) {
	best, bestSize := math.NaN(), -1
	for size, res := range bySize {
		fits := size <= c
		bestFits := bestSize >= 0 && bestSize <= c
		switch {
		case bestSize < 0,
			fits && !bestFits,
			fits == bestFits && abs(size-c) < abs(bestSize-c):
			best, bestSize = res.Error, size
		}
	}
	return best, bestSize >= 0
}

func pointSSE(vals, rec []float64) float64 {
	var s float64
	for i, v := range vals {
		d := v - rec[i]
		s += d * d
	}
	return s
}

// --- fig17 ---

func runFig17(ctx context.Context, cfg Config) (*Table, error) {
	names := []string{"E1", "E2", "E3", "I1", "I2", "I3", "T1", "T2", "T3"}
	// δ settings in pta.Options.ReadAhead convention: 0, 1, 2, ∞.
	deltas := []int{pta.ReadAheadEager, 1, 2, pta.ReadAheadInf}
	t := &Table{
		ID: "fig17", Title: "average error ratio of gPTAc and gPTAε by δ",
		Header: []string{"query",
			"gPTAc δ=0", "gPTAc δ=1", "gPTAc δ=2", "gPTAc δ=inf",
			"gPTAe δ=0", "gPTAe δ=1", "gPTAe δ=2", "gPTAe δ=inf"},
	}
	for _, name := range names {
		ws, err := Workloads(cfg, name)
		if err != nil {
			return nil, err
		}
		seq := ws[0].Seq
		n, cmin := seq.Len(), seq.CMin()
		emax, err := pta.MaxError(seq, pta.Options{})
		if err != nil {
			return nil, err
		}
		est := pta.Estimate{N: n, EMax: emax}

		grid := make([]int, 0, 8)
		for _, r := range []float64{30, 50, 70, 85, 93, 97} {
			c := kForReduction(n, cmin, r)
			if len(grid) == 0 || grid[len(grid)-1] != c {
				grid = append(grid, c)
			}
		}
		maxC := 0
		for _, c := range grid {
			maxC = max(maxC, c)
		}
		curve, err := pta.ErrorCurve(seq, maxC, pta.Options{})
		if err != nil {
			return nil, err
		}

		row := []string{name}
		// Size-bounded: ratio to PTAc averaged over the c grid.
		for _, d := range deltas {
			var sum float64
			var cnt int
			for _, c := range grid {
				opt := curve[c-1]
				if opt <= 1e-9*emax {
					continue
				}
				g, err := cfg.compress(ctx, seq, "gptac", pta.Size(c), pta.Options{ReadAhead: d})
				if err != nil {
					return nil, err
				}
				sum += g.Error / opt
				cnt++
			}
			if cnt == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmtF(sum/float64(cnt)))
			}
		}
		// Error-bounded: ratio to PTAε over an ε grid (exact estimates, as
		// in Section 7.2.2).
		epsGrid := []float64{0.001, 0.01, 0.05, 0.2, 0.5}
		fullCurve, err := pta.ErrorCurve(seq, n, pta.Options{})
		if err != nil {
			return nil, err
		}
		optErrForEps := func(eps float64) float64 {
			bound := eps * emax
			for k := 1; k <= n; k++ {
				if fullCurve[k-1] <= bound {
					return fullCurve[k-1]
				}
			}
			return 0
		}
		for _, d := range deltas {
			var sum float64
			var cnt int
			for _, eps := range epsGrid {
				opt := optErrForEps(eps)
				if opt <= 1e-9*emax {
					continue
				}
				g, err := cfg.compress(ctx, seq, "gptae", pta.ErrorBound(eps),
					pta.Options{ReadAhead: d, Estimate: &est})
				if err != nil {
					return nil, err
				}
				sum += g.Error / opt
				cnt++
			}
			if cnt == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmtF(sum/float64(cnt)))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: δ=0 is worst; δ≥1 is practically indistinguishable from δ=∞ — one tuple of read-ahead suffices")
	t.AddNote("gPTAε ratios can dip below 1: greedy may stop at a larger size (lower error) than the optimal")
	t.AddNote("minimal-size result for the same ε — both respect the error bound")
	return t, nil
}
