package experiments

import (
	"context"
	"fmt"

	"repro/pta"
)

func init() {
	register("estimates", "Impact of the Êmax estimate on gPTAε (Section 6.3)", runEstimates)
}

// runEstimates reproduces the Section 6.3 discussion experimentally: the
// error-bounded greedy needs an a-priori estimate Êmax of the maximal error.
// "As long as Êmax ≤ Emax, the estimate only influences the size of the
// heap... when Êmax ≪ Emax, none or very few early merges will take place
// [and] the heap will be filled with almost the entire ITA result. When the
// error is overestimated we cannot guarantee that the result is the same as
// for GMS." The sweep scales the true Emax by several factors and reports
// heap size, result size, whether the final error respects the bound, and
// whether the output still equals the GMS reference. The random-sampling
// estimator of Section 8's future work is included as the practical row.
func runEstimates(ctx context.Context, cfg Config) (*Table, error) {
	ws, err := Workloads(cfg, "T2")
	if err != nil {
		return nil, err
	}
	seq := ws[0].Seq
	exact, err := pta.ExactEstimate(seq, pta.Options{})
	if err != nil {
		return nil, err
	}
	const eps = 0.05
	gms, err := cfg.compress(ctx, seq, "gms", pta.ErrorBound(eps), pta.Options{})
	if err != nil {
		return nil, err
	}
	bound := eps * exact.EMax

	t := &Table{
		ID: "estimates", Title: fmt.Sprintf("gPTAε (ε=%.2f, δ=1) on T2 (n=%d) under scaled Êmax", eps, seq.Len()),
		Header: []string{"estimate", "EMax_hat/EMax", "C", "max_heap", "error", "within_bound", "equals_GMS"},
	}
	addRow := func(label string, est pta.Estimate) error {
		res, err := cfg.compress(ctx, seq, "gptae", pta.ErrorBound(eps),
			pta.Options{ReadAhead: 1, Estimate: &est})
		if err != nil {
			return err
		}
		within := "yes"
		if res.Error > bound*(1+1e-9) {
			within = "NO"
		}
		same := "yes"
		if res.C != gms.C || !res.Series.Equal(gms.Series, 1e-6) {
			same = "no"
		}
		t.AddRow(label, fmtF(est.EMax/exact.EMax), fmt.Sprintf("%d", res.C),
			fmt.Sprintf("%d", res.Stats.MaxHeap), fmtF(res.Error), within, same)
		return nil
	}
	for _, scale := range []float64{0.01, 0.1, 0.5, 1, 2, 10} {
		est := pta.Estimate{N: exact.N, EMax: exact.EMax * scale}
		if err := addRow(fmt.Sprintf("%.2fx true", scale), est); err != nil {
			return nil, err
		}
	}
	sampled, err := pta.RandomSampleEstimate(seq, 0.1, cfg.Seed, pta.Options{})
	if err != nil {
		return nil, err
	}
	if err := addRow("10% random sample", sampled); err != nil {
		return nil, err
	}
	t.AddNote("paper (§6.3): underestimates only grow the heap (fewer early merges); overestimates may")
	t.AddNote("deviate from GMS; the final phase always enforces the true bound, so within_bound stays yes")
	return t, nil
}
