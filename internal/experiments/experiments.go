// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7). Each experiment is a pure function from a Config
// to a text table; cmd/ptabench drives them, and bench_test.go at the module
// root wraps them in testing.B benchmarks. EXPERIMENTS.md records the
// paper-reported numbers next to ours.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/pta"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the default (laptop-sized) workload sizes. 1.0
	// reproduces the shapes of the paper's figures in minutes; smaller
	// values give quicker, coarser runs.
	Scale float64
	// Seed drives dataset generation.
	Seed int64
	// Quick switches to tiny sizes for unit tests and smoke runs.
	Quick bool
	// Engine runs every facade compression of the suite (ptabench wires
	// its -parallel flag into it). nil falls back to a shared serial
	// engine, so tests and library callers need no setup.
	Engine *pta.Engine
}

// DefaultConfig is the standard reproduction configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

// fallbackEngine serves configs without an explicit engine.
var fallbackEngine = sync.OnceValue(func() *pta.Engine {
	e, err := pta.New()
	if err != nil {
		panic(err)
	}
	return e
})

// engine resolves the evaluation engine of this configuration.
func (c Config) engine() *pta.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return fallbackEngine()
}

// compress routes one facade compression through the configured engine —
// the single evaluation call site of the whole experiment suite.
func (c Config) compress(ctx context.Context, seq *pta.Series, strategy string, b pta.Budget, opts pta.Options) (*pta.Result, error) {
	return c.engine().Compress(ctx, seq, pta.Plan{Strategy: strategy, Budget: b, Options: &opts})
}

// scaled applies the scale factor with a floor.
func (c Config) scaled(n int) int {
	if c.Quick {
		n = n / 20
	}
	v := int(float64(n) * c.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

// Table is an experiment outcome: a header, rows of formatted cells, and
// free-form notes (including the paper's reference numbers).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends one note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV renders the table as comma-separated values (quotes are not needed:
// cells are numeric or simple identifiers).
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Experiment is one reproducible table or figure. Run observes the context:
// canceling it aborts the experiment mid-evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, Config) (*Table, error)
}

var registry []Experiment

func register(id, title string, run func(context.Context, Config) (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeIt measures fn's wall-clock time.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// fmtF formats a float compactly for table cells.
func fmtF(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1e308 || v < -1e308:
		return "inf"
	case v == 0:
		return "0"
	case v >= 1e7 || v <= -1e7:
		return fmt.Sprintf("%.3e", v)
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// fmtDur formats a duration in milliseconds.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
