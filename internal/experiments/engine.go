package experiments

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/pta"
)

func init() {
	register("engine", "Engine group-parallel compression: serial vs 4 workers (pta.WithParallelism)", runEngine)
	register("multibudget", "Engine.CompressMany: budgets sharing one DP matrix pass vs independent evaluations", runMultiBudget)
}

// runEngine measures the group-parallel execution path of pta.Engine on
// multi-group workloads: the same exact "ptac"/"ptae" strategies, once on a
// serial engine and once on an engine with four workers. Groups compress
// independently (Section 3: the sequential-relation model guarantees merges
// never cross groups), so the decomposition is exact — the table checks the
// results agree while the wall clock drops.
func runEngine(ctx context.Context, cfg Config) (*Table, error) {
	serial, err := pta.New(pta.WithParallelism(1))
	if err != nil {
		return nil, err
	}
	par, err := pta.New(pta.WithParallelism(4))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "engine", Title: "Engine.Compress on multi-group workloads: parallelism 1 vs 4",
		Header: []string{"workload", "budget", "n", "groups", "serial_ms", "par4_ms", "speedup", "same_result"},
	}
	type wl struct {
		name           string
		groups, perGrp int
	}
	for _, w := range []wl{
		{"S2-style", 200, max(4, cfg.scaled(4000)/200)},
		{"few groups", 20, max(4, cfg.scaled(4000)/20)},
	} {
		seq, err := dataset.Uniform(w.groups, w.perGrp, 4, cfg.Seed+23)
		if err != nil {
			return nil, err
		}
		c := max(seq.CMin(), seq.Len()/5)
		for _, b := range []pta.Budget{pta.Size(c), pta.ErrorBound(0.05)} {
			strategy := "ptac"
			if b.Kind() == pta.BudgetError {
				strategy = "ptae"
			}
			plan := pta.Plan{Strategy: strategy, Budget: b}
			var sres, pres *pta.Result
			dSerial, err := timeIt(func() error {
				var err error
				sres, err = serial.Compress(ctx, seq, plan)
				return err
			})
			if err != nil {
				return nil, err
			}
			dPar, err := timeIt(func() error {
				var err error
				pres, err = par.Compress(ctx, seq, plan)
				return err
			})
			if err != nil {
				return nil, err
			}
			same := "yes"
			if pres.C != sres.C || !pres.Series.Equal(sres.Series, 1e-6) {
				same = "NO"
			}
			t.AddRow(w.name, b.String(), fmt.Sprintf("%d", seq.Len()),
				fmt.Sprintf("%d", w.groups), fmtDur(dSerial), fmtDur(dPar),
				fmtF(float64(dSerial)/float64(dPar)), same)
		}
	}
	t.AddNote("parallelism decomposes the series over maximal adjacent runs (groups are run boundaries)")
	t.AddNote("and combines per-run error curves exactly; the result never changes, only the wall clock")
	return t, nil
}

// runMultiBudget measures CompressMany's shared-matrix amortization: serving
// several sizes and an error bound of the same series either independently
// or through one DP matrix pass — the engine's answer to multi-resolution
// serving (dashboards asking the same series at several zoom levels).
func runMultiBudget(ctx context.Context, cfg Config) (*Table, error) {
	eng := cfg.engine()
	ws, err := Workloads(cfg, "T1")
	if err != nil {
		return nil, err
	}
	seq := ws[0].Seq
	n, cmin := seq.Len(), seq.CMin()
	plans := []pta.Plan{
		{Strategy: "ptac", Budget: pta.Size(max(cmin, n/20))},
		{Strategy: "ptac", Budget: pta.Size(max(cmin, n/10))},
		{Strategy: "ptac", Budget: pta.Size(max(cmin, n/5))},
		{Strategy: "ptac", Budget: pta.Size(max(cmin, n/2))},
		{Strategy: "ptae", Budget: pta.ErrorBound(0.05)},
	}
	var loop, many []*pta.Result
	dLoop, err := timeIt(func() error {
		loop = loop[:0]
		for _, p := range plans {
			res, err := eng.Compress(ctx, seq, p)
			if err != nil {
				return err
			}
			loop = append(loop, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dMany, err := timeIt(func() error {
		var err error
		many, err = eng.CompressMany(ctx, seq, plans)
		return err
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "multibudget", Title: fmt.Sprintf("serving %d budgets of T1 (n=%d): loop vs CompressMany", len(plans), n),
		Header: []string{"plan", "C", "err_loop", "err_many", "same"},
	}
	for i, p := range plans {
		same := "yes"
		if many[i].C != loop[i].C || !many[i].Series.Equal(loop[i].Series, 1e-6) {
			same = "NO"
		}
		t.AddRow(fmt.Sprintf("%s %v", p.Strategy, p.Budget), fmt.Sprintf("%d", many[i].C),
			fmtF(loop[i].Error), fmtF(many[i].Error), same)
	}
	t.AddRow("total ms", "", fmtDur(dLoop), fmtDur(dMany),
		fmtF(float64(dLoop)/float64(dMany))+"x")
	t.AddNote("the ptac plans share one filling of the error/split matrices; only the deepest budget pays")
	t.AddNote("independent evaluations re-fill the matrix per budget — CompressMany is the serving-layer path")
	return t, nil
}
