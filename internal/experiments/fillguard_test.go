package experiments

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/pta"
)

// Committed ceilings for the envelope-pruned fill guard below. InnerIters
// counts candidate evaluations — a pure function of the pinned dataset and
// the algorithm, independent of machine load — so the guard asserts
// algorithmic work, not wall time, and holds on saturated CI runners. The
// ceilings sit at roughly 2x the measured counts (mixed n=8192, seed 23:
// dc 17.78M, online 19.54M, against a 248.6M pruned baseline), so they trip
// on a pruning regression an order of magnitude before the speedup claim in
// BENCH_fill.json is lost, while tolerating drift from dispatch tweaks.
const (
	guardMixedN          = 8192
	guardSeed            = 23 // bench default (7) + the fill sweep's offset (16)
	guardMixedDCIters    = 36_000_000
	guardMixedOnIters    = 40_000_000
	guardStreamReduction = 5 // ISSUE floor: streaming iters vs pruned, counter workload
)

// TestFillIterationCeilings is the CI perf guard for the envelope-pruned
// completion scan: on the mixed workload the monotone fills' candidate
// evaluations must stay under the committed ceilings, with the envelope
// recording genuine O(1) range skips. Results are still verified against
// the pruned scan so a "fast but wrong" regression cannot pass.
func TestFillIterationCeilings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size guard workload")
	}
	ctx := context.Background()
	cfg := Config{Scale: 1, Seed: 7}
	seq, err := dataset.Mixed(1, guardMixedN, 1, guardSeed)
	if err != nil {
		t.Fatal(err)
	}
	budget := pta.Size(max(seq.CMin(), 48))
	want, err := cfg.compress(ctx, seq, "ptac", budget, pta.Options{FillAlgo: pta.FillPruned})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct {
		algo    pta.FillAlgo
		ceiling int64
	}{
		{pta.FillDC, guardMixedDCIters},
		{pta.FillOnline, guardMixedOnIters},
	} {
		res, err := cfg.compress(ctx, seq, "ptac", budget, pta.Options{FillAlgo: g.algo})
		if err != nil {
			t.Fatalf("%v: %v", g.algo, err)
		}
		if res.C != want.C || res.Error != want.Error {
			t.Fatalf("%v diverged from the pruned scan: C=%d err=%v, want C=%d err=%v",
				g.algo, res.C, res.Error, want.C, want.Error)
		}
		if res.Stats.InnerIters > g.ceiling {
			t.Errorf("%v mixed n=%d: %d inner iterations, ceiling %d — the envelope-pruned completion regressed",
				g.algo, guardMixedN, res.Stats.InnerIters, g.ceiling)
		}
		if res.Stats.EnvelopeSkips <= 0 {
			t.Errorf("%v mixed n=%d: no envelope skips recorded — the bound never engaged", g.algo, guardMixedN)
		}
		if res.Stats.InnerIters*2 >= want.Stats.InnerIters {
			t.Errorf("%v mixed n=%d: %d iterations vs pruned %d — under 2x reduction",
				g.algo, guardMixedN, res.Stats.InnerIters, want.Stats.InnerIters)
		}
	}
}

// TestStreamIterationReduction guards the ISSUE's streaming criterion: the
// incremental path (CompressStream through the Solver, which auto-selects
// the online fill) must evaluate at least guardStreamReduction times fewer
// candidates than the pruned scan on counter data, with identical results.
func TestStreamIterationReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size guard workload")
	}
	ctx := context.Background()
	cfg := Config{Scale: 1, Seed: 7}
	seq, err := dataset.Counter(1, guardMixedN, 1, guardSeed)
	if err != nil {
		t.Fatal(err)
	}
	budget := pta.Size(max(seq.CMin(), 48))
	want, err := cfg.compress(ctx, seq, "ptac", budget, pta.Options{FillAlgo: pta.FillPruned})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cfg.engine().CompressStream(ctx, pta.NewStream(seq),
		pta.Plan{Strategy: "ptac", Budget: budget, Options: &pta.Options{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.C != want.C || res.Error != want.Error {
		t.Fatalf("stream diverged from the pruned scan: C=%d err=%v, want C=%d err=%v",
			res.C, res.Error, want.C, want.Error)
	}
	if res.Stats.InnerIters*guardStreamReduction > want.Stats.InnerIters {
		t.Errorf("stream counter n=%d: %d inner iterations vs pruned %d — under the %dx floor",
			guardMixedN, res.Stats.InnerIters, want.Stats.InnerIters, guardStreamReduction)
	}
}
