package experiments

import (
	"context"
	"fmt"

	"repro/internal/approx"
	"repro/internal/dataset"
	"repro/pta"
)

func init() {
	register("fig18a", "DP vs PTAc runtime over input size, no gaps (Fig. 18a)", runFig18a)
	register("fig18b", "DP vs PTAc runtime over input size, with gaps (Fig. 18b)", runFig18b)
	register("fig19", "DP vs PTAc runtime over output size (Fig. 19)", runFig19)
	register("fig20a", "Maximal heap size of gPTAc by output size and δ (Fig. 20a)", runFig20a)
	register("fig20b", "Maximal heap size of gPTAε by output size and δ (Fig. 20b)", runFig20b)
	register("fig21", "Greedy algorithms vs linear approximation methods, runtime over input size (Fig. 21)", runFig21)
}

// --- fig18 ---

func runFig18a(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "fig18a", Title: "runtime (ms) vs input size; gap-free 10-dim synthetic, c = 200",
		Header: []string{"n", "DP_ms", "PTAc_ms", "DP_cells", "PTAc_cells"},
	}
	// The unpruned DP is genuinely quadratic (the paper's Fig. 18a tops out
	// near 5 000 s); the default sizes keep the default harness run in the
	// minutes range while preserving the growth shape. -scale raises them.
	sizes := []int{400, 800, 1200, 1600, 2000}
	for _, base := range sizes {
		n := cfg.scaled(base)
		c := min(cfg.scaled(200), n)
		seq, err := dataset.Uniform(1, n, 10, cfg.Seed+10)
		if err != nil {
			return nil, err
		}
		var basic, pruned *pta.Result
		dBasic, err := timeIt(func() error {
			var err error
			basic, err = cfg.compress(ctx, seq, "dpbasic", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		dPruned, err := timeIt(func() error {
			var err error
			pruned, err = cfg.compress(ctx, seq, "ptac", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtDur(dBasic), fmtDur(dPruned),
			fmt.Sprintf("%d", basic.Stats.Cells), fmt.Sprintf("%d", pruned.Stats.Cells))
	}
	t.AddNote("paper: without gaps the two approaches show no significant difference and grow quadratically")
	return t, nil
}

func runFig18b(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "fig18b", Title: "runtime (ms) vs input size; 200 groups (S2-style), c = 250",
		Header: []string{"n", "DP_ms", "PTAc_ms", "DP_cells", "PTAc_cells"},
	}
	sizes := []int{1000, 2000, 3000, 4000}
	const groups = 200
	for _, base := range sizes {
		n := cfg.scaled(base)
		perGroup := max(1, n/groups)
		seq, err := dataset.Uniform(groups, perGroup, 10, cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		c := min(cfg.scaled(250), seq.Len())
		c = max(c, seq.CMin())
		var basic, pruned *pta.Result
		dBasic, err := timeIt(func() error {
			var err error
			basic, err = cfg.compress(ctx, seq, "dpbasic", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		dPruned, err := timeIt(func() error {
			var err error
			pruned, err = cfg.compress(ctx, seq, "ptac", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", seq.Len()), fmtDur(dBasic), fmtDur(dPruned),
			fmt.Sprintf("%d", basic.Stats.Cells), fmt.Sprintf("%d", pruned.Stats.Cells))
	}
	t.AddNote("paper: with gaps PTAc scales almost linearly and outruns DP by two orders of magnitude")
	return t, nil
}

func runFig19(ctx context.Context, cfg Config) (*Table, error) {
	n := cfg.scaled(1200)
	const groups = 200
	perGroup := max(1, n/groups)
	seq, err := dataset.Uniform(groups, perGroup, 10, cfg.Seed+12)
	if err != nil {
		return nil, err
	}
	cmin := seq.CMin()
	t := &Table{
		ID: "fig19", Title: fmt.Sprintf("runtime (ms) vs output size; %d tuples in %d groups", seq.Len(), groups),
		Header: []string{"c", "DP_ms", "PTAc_ms"},
	}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		c := max(cmin, int(frac*float64(seq.Len())))
		dBasic, err := timeIt(func() error {
			_, err := cfg.compress(ctx, seq, "dpbasic", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		dPruned, err := timeIt(func() error {
			_, err := cfg.compress(ctx, seq, "ptac", pta.Size(c), pta.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", c), fmtDur(dBasic), fmtDur(dPruned))
	}
	t.AddNote("paper: runtime grows linearly in c; PTAc is much less sensitive because gaps dominate")
	return t, nil
}

// --- fig20 ---

func runFig20a(ctx context.Context, cfg Config) (*Table, error) {
	n := cfg.scaled(200000)
	seq, err := dataset.Uniform(1, n, 1, cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	deltas := []int{pta.ReadAheadInf, 2, 1, pta.ReadAheadEager}
	t := &Table{
		ID: "fig20a", Title: fmt.Sprintf("gPTAc maximal heap size; gap-free input n = %d", n),
		Header: []string{"c", "δ=inf", "δ=2", "δ=1", "δ=0"},
	}
	for _, c := range logGrid(n) {
		row := []string{fmt.Sprintf("%d", c)}
		for _, d := range deltas {
			res, err := cfg.compress(ctx, seq, "gptac", pta.Size(c), pta.Options{ReadAhead: d})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.Stats.MaxHeap))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: δ=∞ fills the heap with the whole input; δ=0 caps it at ~c; small δ gives c+β with tiny β")
	return t, nil
}

func runFig20b(ctx context.Context, cfg Config) (*Table, error) {
	n := cfg.scaled(200000)
	seq, err := dataset.Uniform(1, n, 1, cfg.Seed+14)
	if err != nil {
		return nil, err
	}
	est, err := pta.ExactEstimate(seq, pta.Options{})
	if err != nil {
		return nil, err
	}
	deltas := []int{pta.ReadAheadInf, 2, 1, pta.ReadAheadEager}
	t := &Table{
		ID: "fig20b", Title: fmt.Sprintf("gPTAε result size and maximal heap size; gap-free input n = %d", n),
		Header: []string{"eps", "C", "δ=inf", "δ=2", "δ=1", "δ=0"},
	}
	for _, eps := range []float64{0.9, 0.5, 0.2, 0.05, 0.01, 0.001} {
		row := []string{fmtF(eps)}
		var size int
		heaps := make([]string, 0, len(deltas))
		for _, d := range deltas {
			res, err := cfg.compress(ctx, seq, "gptae", pta.ErrorBound(eps),
				pta.Options{ReadAhead: d, Estimate: &est})
			if err != nil {
				return nil, err
			}
			size = res.C
			heaps = append(heaps, fmt.Sprintf("%d", res.Stats.MaxHeap))
		}
		row = append(row, fmt.Sprintf("%d", size))
		row = append(row, heaps...)
		t.AddRow(row...)
	}
	t.AddNote("paper: the gPTAε heap is significantly larger than gPTAc's independently of δ")
	return t, nil
}

func logGrid(n int) []int {
	var out []int
	for c := 1; c < n; c *= 10 {
		out = append(out, c)
	}
	out = append(out, n)
	return out
}

// --- fig21 ---

func runFig21(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID: "fig21", Title: "runtime (ms) of greedy PTA vs linear approximation methods (c = n/10, ε = 0.65, δ = 1)",
		Header: []string{"n", "gPTAe_ms", "PAA_ms", "ATC_ms", "gPTAc_ms", "APCA_ms", "DWT_ms"},
	}
	sizes := []int{50000, 100000, 200000, 400000}
	for _, base := range sizes {
		n := cfg.scaled(base)
		seq, err := dataset.Uniform(1, n, 1, cfg.Seed+15)
		if err != nil {
			return nil, err
		}
		c := max(1, n/10)
		est, err := pta.ExactEstimate(seq, pta.Options{})
		if err != nil {
			return nil, err
		}
		series, err := approx.FromSequence(seq)
		if err != nil {
			return nil, err
		}
		vals := series.Dims[0]

		dGPTAe, err := timeIt(func() error {
			_, err := cfg.compress(ctx, seq, "gptae", pta.ErrorBound(0.65),
				pta.Options{ReadAhead: 1, Estimate: &est})
			return err
		})
		if err != nil {
			return nil, err
		}
		dPAA, err := timeIt(func() error {
			_, err := approx.PAA(vals, c, series.Start)
			return err
		})
		if err != nil {
			return nil, err
		}
		dATC, err := timeIt(func() error {
			_, err := approx.ATC(seq, 0.01, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		dGPTAc, err := timeIt(func() error {
			_, err := cfg.compress(ctx, seq, "gptac", pta.Size(c), pta.Options{ReadAhead: 1})
			return err
		})
		if err != nil {
			return nil, err
		}
		dAPCA, err := timeIt(func() error {
			_, err := approx.APCA(vals, c, series.Start)
			return err
		})
		if err != nil {
			return nil, err
		}
		dDWT, err := timeIt(func() error {
			_, err := approx.DWTTopK(vals, c)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtDur(dGPTAe), fmtDur(dPAA), fmtDur(dATC),
			fmtDur(dGPTAc), fmtDur(dAPCA), fmtDur(dDWT))
	}
	t.AddNote("paper: gPTAε is slowest (large heap); gPTAc is comparable to the linear methods")
	return t, nil
}
