package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/pta"
)

func init() {
	register("strategies", "Unified evaluator registry: every strategy under both budget kinds", runStrategies)
}

// runStrategies enumerates the pta strategy registry — no hand-rolled switch
// over algorithms — and runs every evaluator on the T1 workload under a size
// budget and an error budget. It is the conformance table of the facade: one
// row per registered strategy, "n/a" where a budget kind or the series shape
// is unsupported, and the wall-clock and error cost of each.
func runStrategies(ctx context.Context, cfg Config) (*Table, error) {
	ws, err := Workloads(cfg, "T1")
	if err != nil {
		return nil, err
	}
	seq := ws[0].Seq
	n, cmin := seq.Len(), seq.CMin()
	c := max(cmin, n/10)
	const eps = 0.05
	emax, err := pta.MaxError(seq, pta.Options{})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "strategies",
		Title: fmt.Sprintf("registry sweep on T1 (n=%d): %v and %v", n, pta.Size(c), pta.ErrorBound(eps)),
		Header: []string{"strategy", "stream",
			"size_C", "size_err%", "size_ms", "eps_C", "eps_err%", "eps_ms"},
	}
	for _, info := range pta.Describe() {
		row := []string{info.Name, boolCell(info.Streaming)}
		for _, b := range []pta.Budget{pta.Size(c), pta.ErrorBound(eps)} {
			var res *pta.Result
			d, err := timeIt(func() error {
				var cerr error
				res, cerr = cfg.compress(ctx, seq, info.Name, b, pta.Options{})
				return cerr
			})
			switch {
			case errors.Is(err, pta.ErrBudgetKind), errors.Is(err, pta.ErrSeriesShape):
				row = append(row, "n/a", "n/a", "n/a")
				continue
			case err != nil:
				return nil, fmt.Errorf("strategies: %s under %v: %v", info.Name, b, err)
			}
			row = append(row, fmt.Sprintf("%d", res.C),
				fmtF(100*res.Error/emax), fmtDur(d))
		}
		t.AddRow(row...)
	}
	t.AddNote("size budget: every C ≤ %d; error budget: every err%% ≤ %s (the shared conformance contract)", c, fmtF(100*eps))
	t.AddNote("exact strategies minimize err%% at fixed C (size) and C at fixed err%% (error); baselines trail")
	return t, nil
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}
