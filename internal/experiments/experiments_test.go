package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func quickConfig() Config { return Config{Scale: 1, Seed: 7, Quick: true} }

// TestAllExperimentsRunQuick smoke-tests every registered experiment at
// Quick scale: it must succeed, produce a well-formed table, and render.
func TestAllExperimentsRunQuick(t *testing.T) {
	exps := All()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(context.Background(), quickConfig())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
				}
			}
			var buf bytes.Buffer
			if err := tab.Format(&buf); err != nil {
				t.Errorf("Format: %v", err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Error("formatted output lacks the id")
			}
			buf.Reset()
			if err := tab.CSV(&buf); err != nil {
				t.Errorf("CSV: %v", err)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig15"); !ok {
		t.Error("fig15 should exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("nope should not exist")
	}
}

func TestWorkloadsUnknownName(t *testing.T) {
	if _, err := Workloads(quickConfig(), "Z9"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestWorkloadShapes(t *testing.T) {
	ws, err := Workloads(quickConfig(), "E1", "E4", "I1", "T1", "T3", "S2")
	if err != nil {
		t.Fatalf("Workloads: %v", err)
	}
	byName := map[string]Workload{}
	for _, w := range ws {
		byName[w.Name] = w
		if err := w.Seq.Validate(); err != nil {
			t.Errorf("%s: invalid sequence: %v", w.Name, err)
		}
	}
	if byName["E1"].Seq.CMin() != 1 {
		t.Errorf("E1 cmin = %d, want 1", byName["E1"].Seq.CMin())
	}
	if byName["E4"].Seq.Len() <= byName["E4"].InputSize {
		t.Errorf("E4 ITA size %d should exceed input %d", byName["E4"].Seq.Len(), byName["E4"].InputSize)
	}
	if byName["T3"].Seq.P() != 12 {
		t.Errorf("T3 dims = %d, want 12", byName["T3"].Seq.P())
	}
	if byName["S2"].Seq.Groups.Len() < 2 {
		t.Error("S2 should be grouped")
	}
}

// TestFig14aErrorsAreMonotone: within one query column, the error grows
// with the reduction ratio.
func TestFig14aErrorsAreMonotone(t *testing.T) {
	tab, err := ByIDMust("fig14a").Run(context.Background(), quickConfig())
	if err != nil {
		t.Fatalf("fig14a: %v", err)
	}
	cols := len(tab.Header)
	for c := 1; c < cols; c++ {
		prev := -1.0
		for _, row := range tab.Rows {
			if row[c] == "-" {
				continue
			}
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatalf("cell %q: %v", row[c], err)
			}
			if v+1e-6 < prev {
				t.Errorf("column %s not monotone: %v after %v", tab.Header[c], v, prev)
			}
			prev = v
		}
	}
}

// TestFig16GPTAcNearOne: the gPTAc column must stay close to the optimum
// (the paper's headline claim).
func TestFig16GPTAcNearOne(t *testing.T) {
	tab, err := ByIDMust("fig16").Run(context.Background(), quickConfig())
	if err != nil {
		t.Fatalf("fig16: %v", err)
	}
	for _, row := range tab.Rows {
		cell := row[1]
		if cell == "n/a" {
			continue
		}
		mean, _, ok := strings.Cut(cell, "±")
		if !ok {
			t.Fatalf("cell %q not mean±err", cell)
		}
		v, err := strconv.ParseFloat(mean, 64)
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		if v < 0.5 || v > 3 {
			t.Errorf("%s: gPTAc average ratio %v outside a plausible range", row[0], v)
		}
	}
}

func ByIDMust(id string) Experiment {
	e, ok := ByID(id)
	if !ok {
		panic("missing experiment " + id)
	}
	return e
}
