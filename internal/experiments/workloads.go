package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/temporal"
)

// Workload is one of the twelve ITA queries of Table 1, materialized as its
// sequential relation (the input of the PTA merging phase).
type Workload struct {
	// Name is the paper's query id: E1..E4, I1..I3, T1..T3, S1, S2.
	Name string
	// Grouping and Funcs describe the query for reporting.
	Grouping, Funcs string
	// Seq is the ITA result (or the raw series for T- and S-workloads).
	Seq *temporal.Sequence
	// InputSize is the argument relation's cardinality (0 for series that
	// skip the ITA step).
	InputSize int
}

// buildETDS generates the employee relation once per call scale.
func buildETDS(cfg Config) (*temporal.Relation, error) {
	c := dataset.DefaultETDS()
	c.Seed = cfg.Seed
	c.Records = cfg.scaled(60000)
	c.Horizon = cfg.scaled(1600)
	return dataset.ETDS(c)
}

func buildIncumbents(cfg Config) (*temporal.Relation, error) {
	c := dataset.IncumbentsConfig{
		Records: cfg.scaled(30000),
		Depts:   6,
		Projs:   4,
		Horizon: max(48, cfg.scaled(144)),
		Seed:    cfg.Seed + 1,
	}
	return dataset.Incumbents(c)
}

// Workloads materializes the named workloads (see Table 1). Relations are
// generated and aggregated on demand; requesting several E- or I-queries
// reuses one generated relation.
func Workloads(cfg Config, names ...string) ([]Workload, error) {
	var (
		etds, incumbents *temporal.Relation
		err              error
	)
	needETDS := func() (*temporal.Relation, error) {
		if etds == nil {
			etds, err = buildETDS(cfg)
		}
		return etds, err
	}
	needIncumbents := func() (*temporal.Relation, error) {
		if incumbents == nil {
			incumbents, err = buildIncumbents(cfg)
		}
		return incumbents, err
	}
	salAgg := func(f ita.Func) []ita.AggSpec {
		return []ita.AggSpec{{Func: f, Attr: "Salary"}}
	}

	out := make([]Workload, 0, len(names))
	for _, name := range names {
		var w Workload
		w.Name = name
		switch name {
		case "E1", "E2", "E3":
			r, err := needETDS()
			if err != nil {
				return nil, err
			}
			f := map[string]ita.Func{"E1": ita.Avg, "E2": ita.Max, "E3": ita.Sum}[name]
			seq, err := ita.Eval(r, ita.Query{Aggs: salAgg(f)})
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "-", f.String()+"(Salary)"
			w.Seq, w.InputSize = seq, r.Len()
		case "E4":
			r, err := needETDS()
			if err != nil {
				return nil, err
			}
			seq, err := ita.Eval(r, ita.Query{GroupBy: []string{"EmpNo", "Dept"}, Aggs: salAgg(ita.Avg)})
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "EmpNo,Dept", "avg(Salary)"
			w.Seq, w.InputSize = seq, r.Len()
		case "I1", "I2", "I3":
			r, err := needIncumbents()
			if err != nil {
				return nil, err
			}
			f := map[string]ita.Func{"I1": ita.Avg, "I2": ita.Max, "I3": ita.Sum}[name]
			seq, err := ita.Eval(r, ita.Query{GroupBy: []string{"Dept", "Proj"}, Aggs: salAgg(f)})
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "Dept,Proj", f.String()+"(Salary)"
			w.Seq, w.InputSize = seq, r.Len()
		case "T1":
			seq, err := dataset.Chaotic(cfg.scaled(1800))
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "-", "1 dim"
			w.Seq = seq
		case "T2":
			seq, err := dataset.Tide(cfg.scaled(8746), cfg.Seed+2)
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "-", "1 dim"
			w.Seq = seq
		case "T3":
			n := cfg.scaled(6574)
			gaps := min(215, n/4)
			seq, err := dataset.Wind(n, 12, gaps, cfg.Seed+3)
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "-", "12 dims"
			w.Seq = seq
		case "S1":
			seq, err := dataset.Uniform(1, cfg.scaled(200000), 10, cfg.Seed+4)
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "-", "10 dims"
			w.Seq = seq
		case "S2":
			groups := cfg.scaled(1000)
			seq, err := dataset.Uniform(groups, 200, 10, cfg.Seed+5)
			if err != nil {
				return nil, err
			}
			w.Grouping, w.Funcs = "yes", "10 dims"
			w.Seq = seq
		default:
			return nil, fmt.Errorf("experiments: unknown workload %q", name)
		}
		out = append(out, w)
	}
	return out, nil
}
