// Package sta implements span temporal aggregation (STA, Section 1/2.1 of
// the paper): the query specifies the time intervals (spans) for which
// result tuples are reported; for every aggregation group and span, the
// aggregate functions are evaluated over all argument tuples that overlap
// the span.
//
// STA's result size is predictable (one tuple per non-empty group × span),
// but unlike ITA and PTA it ignores the distribution of the data — it is
// implemented here as the contrast baseline the paper motivates PTA against.
package sta

import (
	"fmt"
	"math"

	"repro/internal/ita"
	"repro/internal/temporal"
)

// Spans partitions [from, to] into consecutive intervals of the given width
// (the last span is truncated at to). It is the usual way STA queries
// express granularities such as "each trimester".
func Spans(from, to temporal.Chronon, width int64) ([]temporal.Interval, error) {
	if width <= 0 {
		return nil, fmt.Errorf("sta: span width must be positive, got %d", width)
	}
	if from > to {
		return nil, fmt.Errorf("sta: empty span range [%d, %d]", from, to)
	}
	var out []temporal.Interval
	for s := from; s <= to; s += width {
		e := min(s+width-1, to)
		out = append(out, temporal.Interval{Start: s, End: e})
	}
	return out, nil
}

// Eval evaluates the STA query over relation r for the given spans. Spans
// must be pairwise disjoint and sorted; each result row's timestamp is the
// span it reports on. Groups with no overlapping tuples in a span produce no
// row for that span.
func Eval(r *temporal.Relation, q ita.Query, spans []temporal.Interval) (*temporal.Sequence, error) {
	for i, sp := range spans {
		if !sp.Valid() {
			return nil, fmt.Errorf("sta: span %d is invalid: %v", i, sp)
		}
		if i > 0 && spans[i-1].End >= sp.Start {
			return nil, fmt.Errorf("sta: spans %d and %d overlap or are unsorted", i-1, i)
		}
	}
	// Reuse ITA's query compilation by evaluating it against the schema; we
	// only need the resolved indices and result metadata, so compile via a
	// throwaway iterator on an empty clone of the schema-bearing relation.
	plan, err := newPlan(r, q)
	if err != nil {
		return nil, err
	}
	out := plan.meta

	for _, gid := range out.Groups.SortedIDs() {
		tuples := plan.byGroup[gid]
		for _, span := range spans {
			var member []temporal.Tuple
			for _, tp := range tuples {
				if tp.T.Overlaps(span) {
					member = append(member, tp)
				}
			}
			if len(member) == 0 {
				continue
			}
			aggs := make([]float64, len(plan.specs))
			for d := range plan.specs {
				aggs[d] = aggregate(plan.specs[d].Func, plan.attrIdx[d], member)
			}
			out.Rows = append(out.Rows, temporal.SeqRow{Group: gid, Aggs: aggs, T: span})
		}
	}
	return out, nil
}

// plan is the compiled form of an STA query: resolved attribute indices and
// the argument tuples partitioned by aggregation group.
type plan struct {
	meta    *temporal.Sequence
	specs   []ita.AggSpec
	attrIdx []int
	byGroup map[int32][]temporal.Tuple
}

func newPlan(r *temporal.Relation, q ita.Query) (*plan, error) {
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("sta: query needs at least one aggregate function")
	}
	schema := r.Schema()
	groupIdx, err := schema.Indices(q.GroupBy)
	if err != nil {
		return nil, err
	}
	p := &plan{specs: q.Aggs, byGroup: make(map[int32][]temporal.Tuple)}
	groupAttrs := make([]temporal.Attribute, len(groupIdx))
	for i, gi := range groupIdx {
		groupAttrs[i] = schema.Attr(gi)
	}
	names := make([]string, len(q.Aggs))
	seen := make(map[string]bool)
	for i, a := range q.Aggs {
		names[i] = a.Name()
		if seen[names[i]] {
			return nil, fmt.Errorf("sta: duplicate output attribute %q", names[i])
		}
		seen[names[i]] = true
		if a.Attr == "" {
			if a.Func != ita.Count {
				return nil, fmt.Errorf("sta: %v needs an input attribute", a.Func)
			}
			p.attrIdx = append(p.attrIdx, -1)
			continue
		}
		idx, ok := schema.Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("sta: unknown attribute %q", a.Attr)
		}
		if k := schema.Attr(idx).Kind; a.Func != ita.Count && k != temporal.KindInt && k != temporal.KindFloat {
			return nil, fmt.Errorf("sta: attribute %q of kind %v is not numeric", a.Attr, k)
		}
		p.attrIdx = append(p.attrIdx, idx)
	}
	p.meta = temporal.NewSequence(groupAttrs, names)

	gvals := make([]temporal.Datum, len(groupIdx))
	for i := 0; i < r.Len(); i++ {
		tp := r.Tuple(i)
		for gi, idx := range groupIdx {
			gvals[gi] = tp.Vals[idx]
		}
		id := p.meta.Groups.Intern(gvals)
		p.byGroup[id] = append(p.byGroup[id], tp)
	}
	return p, nil
}

func aggregate(f ita.Func, attrIdx int, member []temporal.Tuple) float64 {
	if f == ita.Count {
		return float64(len(member))
	}
	vals := make([]float64, len(member))
	for i, tp := range member {
		v, _ := tp.Vals[attrIdx].Numeric()
		vals[i] = v
	}
	switch f {
	case ita.Sum:
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	case ita.Avg:
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case ita.Min:
		m := vals[0]
		for _, v := range vals[1:] {
			m = math.Min(m, v)
		}
		return m
	case ita.Max:
		m := vals[0]
		for _, v := range vals[1:] {
			m = math.Max(m, v)
		}
		return m
	}
	panic("sta: unknown aggregate function")
}
