package sta

import (
	"math"
	"testing"

	"repro/internal/ita"
	"repro/internal/temporal"
)

func projRelation() *temporal.Relation {
	s := temporal.MustSchema(
		temporal.Attribute{Name: "Empl", Kind: temporal.KindString},
		temporal.Attribute{Name: "Proj", Kind: temporal.KindString},
		temporal.Attribute{Name: "Sal", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(s)
	add := func(e, p string, sal float64, a, b temporal.Chronon) {
		r.MustAppend([]temporal.Datum{temporal.String(e), temporal.String(p), temporal.Float(sal)},
			temporal.Interval{Start: a, End: b})
	}
	add("John", "A", 800, 1, 4)
	add("Ann", "A", 400, 3, 6)
	add("Tom", "A", 300, 4, 7)
	add("John", "B", 500, 4, 5)
	add("John", "B", 500, 7, 8)
	return r
}

func TestSpans(t *testing.T) {
	got, err := Spans(1, 8, 4)
	if err != nil {
		t.Fatalf("Spans: %v", err)
	}
	want := []temporal.Interval{{Start: 1, End: 4}, {Start: 5, End: 8}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Spans = %v, want %v", got, want)
	}
	// Truncated last span.
	got, _ = Spans(1, 7, 3)
	if len(got) != 3 || got[2] != (temporal.Interval{Start: 7, End: 7}) {
		t.Errorf("Spans(1,7,3) = %v", got)
	}
	if _, err := Spans(1, 8, 0); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := Spans(8, 1, 2); err == nil {
		t.Error("inverted range should fail")
	}
}

// TestEvalFigure1b checks the STA result of the running example ("average
// monthly salary per project and trimester") against Fig. 1(b).
func TestEvalFigure1b(t *testing.T) {
	spans, _ := Spans(1, 8, 4)
	q := ita.Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}}}
	got, err := Eval(projRelation(), q, spans)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	type want struct {
		proj string
		avg  float64
		iv   temporal.Interval
	}
	wants := []want{
		{"A", 500, temporal.Interval{Start: 1, End: 4}},
		{"A", 350, temporal.Interval{Start: 5, End: 8}},
		{"B", 500, temporal.Interval{Start: 1, End: 4}},
		{"B", 500, temporal.Interval{Start: 5, End: 8}},
	}
	if got.Len() != len(wants) {
		t.Fatalf("STA result has %d rows, want %d:\n%v", got.Len(), len(wants), got)
	}
	for i, w := range wants {
		r := got.Rows[i]
		if g := got.Groups.Values(r.Group)[0].Text(); g != w.proj {
			t.Errorf("row %d group = %q, want %q", i, g, w.proj)
		}
		if math.Abs(r.Aggs[0]-w.avg) > 1e-9 {
			t.Errorf("row %d avg = %v, want %v", i, r.Aggs[0], w.avg)
		}
		if r.T != w.iv {
			t.Errorf("row %d interval = %v, want %v", i, r.T, w.iv)
		}
	}
}

func TestEvalAllFunctions(t *testing.T) {
	spans := []temporal.Interval{{Start: 1, End: 8}}
	q := ita.Query{Aggs: []ita.AggSpec{
		{Func: ita.Min, Attr: "Sal"},
		{Func: ita.Max, Attr: "Sal"},
		{Func: ita.Sum, Attr: "Sal"},
		{Func: ita.Count},
		{Func: ita.Avg, Attr: "Sal"},
	}}
	got, err := Eval(projRelation(), q, spans)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	a := got.Rows[0].Aggs
	if a[0] != 300 || a[1] != 800 || a[2] != 2500 || a[3] != 5 || a[4] != 500 {
		t.Errorf("aggregates = %v, want [300 800 2500 5 500]", a)
	}
}

func TestEvalEmptySpanProducesNoRow(t *testing.T) {
	spans := []temporal.Interval{{Start: 100, End: 200}}
	q := ita.Query{Aggs: []ita.AggSpec{{Func: ita.Count}}}
	got, err := Eval(projRelation(), q, spans)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("expected no rows, got %d", got.Len())
	}
}

func TestEvalValidation(t *testing.T) {
	q := ita.Query{Aggs: []ita.AggSpec{{Func: ita.Count}}}
	if _, err := Eval(projRelation(), q, []temporal.Interval{{Start: 5, End: 2}}); err == nil {
		t.Error("invalid span should fail")
	}
	if _, err := Eval(projRelation(), q, []temporal.Interval{{Start: 1, End: 4}, {Start: 3, End: 6}}); err == nil {
		t.Error("overlapping spans should fail")
	}
	if _, err := Eval(projRelation(), ita.Query{}, nil); err == nil {
		t.Error("query without aggregates should fail")
	}
	bad := ita.Query{Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Empl"}}}
	if _, err := Eval(projRelation(), bad, nil); err == nil {
		t.Error("non-numeric aggregate should fail")
	}
	badGroup := ita.Query{GroupBy: []string{"Zip"}, Aggs: []ita.AggSpec{{Func: ita.Count}}}
	if _, err := Eval(projRelation(), badGroup, nil); err == nil {
		t.Error("unknown grouping attribute should fail")
	}
}
