package dataset

import (
	"testing"

	"repro/internal/ita"
	"repro/internal/temporal"
)

func TestProjMatchesFigure1a(t *testing.T) {
	r := Proj()
	if r.Len() != 5 {
		t.Fatalf("proj has %d tuples, want 5", r.Len())
	}
	tp := r.Tuple(0)
	if tp.Vals[0].Text() != "John" || tp.Vals[1].Text() != "A" || tp.Vals[2].FloatVal() != 800 {
		t.Errorf("first tuple = %v", tp)
	}
	if tp.T != (temporal.Interval{Start: 1, End: 4}) {
		t.Errorf("first interval = %v", tp.T)
	}
}

func TestETDSShape(t *testing.T) {
	cfg := ETDSConfig{Records: 8000, Horizon: 600, Seed: 1}
	r, err := ETDS(cfg)
	if err != nil {
		t.Fatalf("ETDS: %v", err)
	}
	if r.Len() < cfg.Records || r.Len() > cfg.Records+20 {
		t.Errorf("records = %d, want ≈%d", r.Len(), cfg.Records)
	}
	span, ok := r.TimeSpan()
	if !ok || span.Start < 0 || span.End >= temporal.Chronon(cfg.Horizon) {
		t.Errorf("time span %v outside horizon %d", span, cfg.Horizon)
	}

	// E1-style query: ungrouped avg(Salary). The ITA size must be bounded
	// by ~2 × horizon and far below the input size.
	seq, err := ita.Eval(r, ita.Query{Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}}})
	if err != nil {
		t.Fatalf("ITA: %v", err)
	}
	if seq.Len() >= r.Len()/2 {
		t.Errorf("ungrouped ITA size %d not ≪ input %d", seq.Len(), r.Len())
	}
	if seq.Len() > 2*cfg.Horizon {
		t.Errorf("ungrouped ITA size %d exceeds 2×horizon", seq.Len())
	}
	if err := seq.Validate(); err != nil {
		t.Errorf("invalid ITA result: %v", err)
	}

	// E4-style query: grouped by employee and department, the ITA result
	// must exceed the input size (the paper's 2.87 M → 5.4 M regime).
	seq4, err := ita.Eval(r, ita.Query{
		GroupBy: []string{"EmpNo", "Dept"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}},
	})
	if err != nil {
		t.Fatalf("ITA E4: %v", err)
	}
	if seq4.Len() <= r.Len() {
		t.Errorf("grouped ITA size %d does not exceed input %d", seq4.Len(), r.Len())
	}
}

func TestETDSDeterministic(t *testing.T) {
	cfg := ETDSConfig{Records: 500, Horizon: 240, Seed: 7}
	a, _ := ETDS(cfg)
	b, _ := ETDS(cfg)
	if !a.Equal(b) {
		t.Error("same seed must give identical relations")
	}
	cfg.Seed = 8
	c, _ := ETDS(cfg)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}

func TestETDSValidation(t *testing.T) {
	if _, err := ETDS(ETDSConfig{Records: 0, Horizon: 100}); err == nil {
		t.Error("zero records should fail")
	}
	if _, err := ETDS(ETDSConfig{Records: 10, Horizon: 5}); err == nil {
		t.Error("tiny horizon should fail")
	}
}

func TestIncumbentsShape(t *testing.T) {
	cfg := IncumbentsConfig{Records: 6000, Depts: 8, Projs: 6, Horizon: 360, Seed: 2}
	r, err := Incumbents(cfg)
	if err != nil {
		t.Fatalf("Incumbents: %v", err)
	}
	if r.Len() < cfg.Records {
		t.Errorf("records = %d, want ≥ %d", r.Len(), cfg.Records)
	}
	seq, err := ita.Eval(r, ita.Query{
		GroupBy: []string{"Dept", "Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}},
	})
	if err != nil {
		t.Fatalf("ITA: %v", err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("invalid ITA result: %v", err)
	}
	// The paper's I-queries have 131 runs over ~16 k rows: many groups,
	// some with suspension gaps. Require a comparable structure: more runs
	// than groups (some gaps exist), far fewer runs than rows.
	groups := cfg.Depts * cfg.Projs
	cmin := seq.CMin()
	if cmin < groups/2 {
		t.Errorf("cmin = %d suspiciously small for %d groups", cmin, groups)
	}
	if cmin > groups*6 {
		t.Errorf("cmin = %d too large for %d groups", cmin, groups)
	}
	if seq.Len() < 10*cmin {
		t.Errorf("ITA size %d not ≫ cmin %d", seq.Len(), cmin)
	}
}

func TestIncumbentsValidation(t *testing.T) {
	if _, err := Incumbents(IncumbentsConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestChaoticShape(t *testing.T) {
	seq, err := Chaotic(1800)
	if err != nil {
		t.Fatalf("Chaotic: %v", err)
	}
	if seq.Len() != 1800 || seq.P() != 1 {
		t.Fatalf("series %d×%d", seq.Len(), seq.P())
	}
	if seq.CMin() != 1 {
		t.Errorf("cmin = %d, want 1 (no gaps)", seq.CMin())
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Chaos: essentially no constant runs.
	for i := 0; i+1 < 100; i++ {
		if seq.Rows[i].Aggs[0] == seq.Rows[i+1].Aggs[0] {
			t.Fatalf("unexpected constant run at %d", i)
		}
	}
	if _, err := Chaotic(0); err == nil {
		t.Error("n = 0 should fail")
	}
}

func TestTideShape(t *testing.T) {
	seq, err := Tide(8746, 3)
	if err != nil {
		t.Fatalf("Tide: %v", err)
	}
	if seq.Len() != 8746 || seq.CMin() != 1 {
		t.Fatalf("len=%d cmin=%d", seq.Len(), seq.CMin())
	}
	a, _ := Tide(100, 3)
	b, _ := Tide(100, 3)
	if !a.Equal(b, 0) {
		t.Error("same seed must reproduce")
	}
	if _, err := Tide(0, 1); err == nil {
		t.Error("n = 0 should fail")
	}
}

func TestWindShape(t *testing.T) {
	seq, err := Wind(6574, 12, 215, 4)
	if err != nil {
		t.Fatalf("Wind: %v", err)
	}
	if seq.Len() != 6574 || seq.P() != 12 {
		t.Fatalf("series %d×%d", seq.Len(), seq.P())
	}
	if got := seq.CMin(); got != 216 {
		t.Errorf("cmin = %d, want 216 (215 gaps)", got)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if _, err := Wind(10, 2, 10, 1); err == nil {
		t.Error("gaps ≥ n should fail")
	}
	if _, err := Wind(0, 2, 0, 1); err == nil {
		t.Error("n = 0 should fail")
	}
}

func TestUniformShape(t *testing.T) {
	s1, err := Uniform(1, 5000, 10, 5)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if s1.Len() != 5000 || s1.P() != 10 || s1.CMin() != 1 {
		t.Fatalf("S1 shape: len=%d p=%d cmin=%d", s1.Len(), s1.P(), s1.CMin())
	}
	s2, err := Uniform(50, 200, 10, 5)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if s2.Len() != 10000 || s2.CMin() != 50 {
		t.Fatalf("S2 shape: len=%d cmin=%d", s2.Len(), s2.CMin())
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if _, err := Uniform(0, 1, 1, 1); err == nil {
		t.Error("zero groups should fail")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, _ := Uniform(3, 50, 2, 9)
	b, _ := Uniform(3, 50, 2, 9)
	if !a.Equal(b, 0) {
		t.Error("same seed must reproduce")
	}
}

func TestCounterShape(t *testing.T) {
	seq, err := Counter(3, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 120 {
		t.Fatalf("len = %d, want 120", seq.Len())
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	// Values must be monotone non-decreasing within every group (the
	// precondition the DP kernel certifies for the monotone row fills).
	for i := 1; i < seq.Len(); i++ {
		if seq.Rows[i].Group != seq.Rows[i-1].Group {
			continue
		}
		for d := range seq.Rows[i].Aggs {
			if seq.Rows[i].Aggs[d] < seq.Rows[i-1].Aggs[d] {
				t.Fatalf("row %d dim %d decreases", i, d)
			}
		}
	}
	if _, err := Counter(0, 1, 1, 0); err == nil {
		t.Error("invalid config must fail")
	}
}
