// Package dataset generates the evaluation workloads of Section 7.1
// (Table 1). The paper's original inputs — the Incumbents relation donated
// by the University of Arizona, F. Wang's employee temporal data set (ETDS),
// and three UCR time-series files — are not redistributable, so this package
// synthesizes relations and series with the same *shape*: input cardinality,
// aggregation-group counts, overlap structure (which drives the ITA result
// size), run lengths, and temporal gap counts (which drive cmin). Every
// generator is deterministic in its seed. The substitutions are documented
// in DESIGN.md.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/temporal"
)

// Proj returns the five-tuple running-example relation of Fig. 1(a).
func Proj() *temporal.Relation {
	s := temporal.MustSchema(
		temporal.Attribute{Name: "Empl", Kind: temporal.KindString},
		temporal.Attribute{Name: "Proj", Kind: temporal.KindString},
		temporal.Attribute{Name: "Sal", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(s)
	add := func(e, p string, sal float64, a, b temporal.Chronon) {
		r.MustAppend([]temporal.Datum{temporal.String(e), temporal.String(p), temporal.Float(sal)},
			temporal.Interval{Start: a, End: b})
	}
	add("John", "A", 800, 1, 4)
	add("Ann", "A", 400, 3, 6)
	add("Tom", "A", 300, 4, 7)
	add("John", "B", 500, 4, 5)
	add("John", "B", 500, 7, 8)
	return r
}

// ETDSConfig sizes the synthetic employee temporal data set.
type ETDSConfig struct {
	// Records is the approximate number of tuples to generate (the paper's
	// original holds 2 875 697).
	Records int
	// Horizon is the number of months covered. The ungrouped ITA result
	// size is bounded by ~2× the number of active months, so Horizon is the
	// lever that reproduces the paper's 6 394-row E1–E3 results at any
	// input scale.
	Horizon int
	// Seed drives all randomness.
	Seed int64
}

// DefaultETDS is a laptop-scale configuration whose E1–E3 ITA results land
// near the paper's 6 394 rows.
func DefaultETDS() ETDSConfig { return ETDSConfig{Records: 120000, Horizon: 3200, Seed: 1} }

// ETDS generates the employee relation with schema
// (EmpNo:int, Sex:string, Dept:string, Title:string, Salary:float, T).
// Employees have multi-record careers; within one (employee, department)
// group consecutive records often overlap by a few months (contract renewal
// before expiry), which makes the E4 grouped ITA result *larger* than the
// input — the regime the paper highlights.
func ETDS(cfg ETDSConfig) (*temporal.Relation, error) {
	if cfg.Records < 1 || cfg.Horizon < 12 {
		return nil, fmt.Errorf("dataset: ETDS needs ≥1 record and ≥12 months, got %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := temporal.MustSchema(
		temporal.Attribute{Name: "EmpNo", Kind: temporal.KindInt},
		temporal.Attribute{Name: "Sex", Kind: temporal.KindString},
		temporal.Attribute{Name: "Dept", Kind: temporal.KindString},
		temporal.Attribute{Name: "Title", Kind: temporal.KindString},
		temporal.Attribute{Name: "Salary", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(schema)
	depts := []string{"d001", "d002", "d003", "d004", "d005", "d006", "d007", "d008", "d009"}
	titles := []string{"Engineer", "Senior Engineer", "Staff", "Senior Staff", "Manager", "Technique Leader"}
	sexes := []string{"M", "F"}

	const recordsPerEmp = 5 // average career length in records
	// Monthly wage inflation: without it the running maximum would be
	// pinned to one historic top earner for long stretches and the
	// max-aggregate ITA result would coalesce to a handful of rows; with it
	// the E2/I2 queries change value as often as E1/E3, as in Table 1.
	const inflation = 0.004
	emp := int64(10000)
	for r.Len() < cfg.Records {
		emp++
		sex := sexes[rng.Intn(2)]
		dept := depts[rng.Intn(len(depts))]
		title := titles[rng.Intn(3)]
		month := temporal.Chronon(rng.Intn(cfg.Horizon))
		salary := (38000 + rng.Float64()*25000) * math.Pow(1+inflation, float64(month))
		n := 1 + rng.Intn(2*recordsPerEmp-1)
		for k := 0; k < n && r.Len() < cfg.Records; k++ {
			length := temporal.Chronon(6 + rng.Intn(30))
			end := month + length - 1
			if end >= temporal.Chronon(cfg.Horizon) {
				end = temporal.Chronon(cfg.Horizon) - 1
			}
			if end < month {
				break
			}
			r.MustAppend([]temporal.Datum{
				temporal.Int(emp),
				temporal.String(sex),
				temporal.String(dept),
				temporal.String(title),
				temporal.Float(math.Round(salary)),
			}, temporal.Interval{Start: month, End: end})
			// Renewal: usually overlap the tail of the previous record by a
			// few months (grows the grouped ITA result), sometimes change
			// department or pause.
			salary *= 1 + rng.Float64()*0.08
			if rng.Float64() < 0.15 {
				title = titles[rng.Intn(len(titles))]
			}
			switch {
			case rng.Float64() < 0.10:
				dept = depts[rng.Intn(len(depts))]
				month = end + temporal.Chronon(1+rng.Intn(6))
			case rng.Float64() < 0.5:
				overlap := temporal.Chronon(1 + rng.Intn(4))
				month = end - overlap + 1
				if month < 0 {
					month = 0
				}
			default:
				month = end + 1
			}
			if month >= temporal.Chronon(cfg.Horizon) {
				break
			}
		}
	}
	return r, nil
}

// IncumbentsConfig sizes the synthetic incumbents relation.
type IncumbentsConfig struct {
	// Records approximates the input size (the paper's original: 83 857).
	Records int
	// Depts × Projs determines the number of aggregation groups; with the
	// occasional project suspension this sets cmin (the paper's I-queries:
	// 131 runs over 16 144 ITA rows).
	Depts, Projs int
	// Horizon is the number of months covered.
	Horizon int
	// Seed drives all randomness.
	Seed int64
}

// DefaultIncumbents is a laptop-scale configuration with the paper's group
// and gap structure.
func DefaultIncumbents() IncumbentsConfig {
	return IncumbentsConfig{Records: 80000, Depts: 8, Projs: 6, Horizon: 360, Seed: 2}
}

// Incumbents generates the relation (Dept:string, Proj:string,
// Salary:float, T): employees assigned to department/project pairs with
// piecewise-constant salaries; projects are occasionally suspended for a few
// months, producing the temporal gaps the DP optimizations exploit.
func Incumbents(cfg IncumbentsConfig) (*temporal.Relation, error) {
	if cfg.Records < 1 || cfg.Depts < 1 || cfg.Projs < 1 || cfg.Horizon < 12 {
		return nil, fmt.Errorf("dataset: invalid incumbents config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := temporal.MustSchema(
		temporal.Attribute{Name: "Dept", Kind: temporal.KindString},
		temporal.Attribute{Name: "Proj", Kind: temporal.KindString},
		temporal.Attribute{Name: "Salary", Kind: temporal.KindFloat},
	)
	r := temporal.NewRelation(schema)
	type window struct{ start, end temporal.Chronon }
	// Every (dept, proj) pair is active during 1–3 windows separated by
	// suspensions: each extra window adds one temporal gap to the grouped
	// ITA result.
	horizon := temporal.Chronon(cfg.Horizon)
	groups := make([][]window, 0, cfg.Depts*cfg.Projs)
	for d := 0; d < cfg.Depts; d++ {
		for p := 0; p < cfg.Projs; p++ {
			nw := 1 + rng.Intn(3)
			var ws []window
			at := temporal.Chronon(rng.Intn(cfg.Horizon / 8))
			for w := 0; w < nw && at < horizon-6; w++ {
				length := temporal.Chronon(cfg.Horizon/4 + rng.Intn(cfg.Horizon/3))
				end := min(at+length, horizon-1)
				ws = append(ws, window{start: at, end: end})
				at = end + temporal.Chronon(3+rng.Intn(12)) // suspension gap
			}
			groups = append(groups, ws)
		}
	}
	for r.Len() < cfg.Records {
		g := rng.Intn(len(groups))
		d, p := g/cfg.Projs, g%cfg.Projs
		ws := groups[g]
		if len(ws) == 0 {
			continue
		}
		w := ws[rng.Intn(len(ws))]
		if w.end <= w.start {
			continue
		}
		start := w.start + temporal.Chronon(rng.Intn(int(w.end-w.start)))
		length := temporal.Chronon(3 + rng.Intn(36))
		end := min(start+length, w.end)
		// Wage inflation keeps the per-group maximum moving (see ETDS).
		salary := math.Round((30000 + rng.Float64()*50000) * math.Pow(1.004, float64(start)))
		r.MustAppend([]temporal.Datum{
			temporal.String(fmt.Sprintf("dept%02d", d)),
			temporal.String(fmt.Sprintf("proj%02d", p)),
			temporal.Float(salary),
		}, temporal.Interval{Start: start, End: end})
	}
	return r, nil
}
