package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/temporal"
)

// unitSeq wraps per-chronon samples into a single-group sequential relation
// (validity intervals of length one), the representation the paper uses for
// the UCR time-series data: "we replace the timestamp by a validity interval
// of length one ... and pass the data directly to the PTA merging step".
func unitSeq(names []string, samples [][]float64) *temporal.Sequence {
	seq := temporal.NewSequence(nil, names)
	gid := seq.Groups.Intern(nil)
	for t, vals := range samples {
		seq.Rows = append(seq.Rows, temporal.SeqRow{
			Group: gid,
			Aggs:  append([]float64(nil), vals...),
			T:     temporal.Inst(temporal.Chronon(t)),
		})
	}
	return seq
}

// Chaotic synthesizes the stand-in for the UCR chaotic.dat series (paper:
// n = 1 800, one dimension, cmin = 1): the Mackey-Glass delay differential
// equation dx/dt = β·x(t−τ)/(1+x(t−τ)¹⁰) − γ·x with the classic chaotic
// parameters β=0.2, γ=0.1, τ=17, integrated by the Euler method. The
// trajectory is deterministic chaos yet locally smooth, which is why the
// paper can reduce T1 by 95% with under 10% error.
func Chaotic(n int) (*temporal.Sequence, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: chaotic length %d, want ≥ 1", n)
	}
	const (
		beta, gamma = 0.2, 0.1
		tau         = 17
		burnIn      = 500
	)
	hist := make([]float64, tau+1)
	for i := range hist {
		hist[i] = 1.2
	}
	x := 1.2
	samples := make([][]float64, n)
	for t := 0; t < burnIn+n; t++ {
		delayed := hist[t%(tau+1)]
		next := x + beta*delayed/(1+math.Pow(delayed, 10)) - gamma*x
		hist[t%(tau+1)] = x
		x = next
		if t >= burnIn {
			samples[t-burnIn] = []float64{math.Round(x*10000) / 100}
		}
	}
	return unitSeq([]string{"value"}, samples), nil
}

// Tide synthesizes the stand-in for tide.dat (paper: n = 8 746, one
// dimension): a sum of the principal tidal harmonics (M2, S2, K1, O1) over
// hourly samples plus small seeded noise — smooth, quasi-periodic data with
// long gently-varying stretches.
func Tide(n int, seed int64) (*temporal.Sequence, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: tide length %d, want ≥ 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	type harmonic struct{ amp, periodH, phase float64 }
	hs := []harmonic{
		{amp: 120, periodH: 12.4206, phase: 0.3}, // M2
		{amp: 48, periodH: 12.0000, phase: 1.1},  // S2
		{amp: 30, periodH: 23.9345, phase: 2.0},  // K1
		{amp: 21, periodH: 25.8193, phase: 0.7},  // O1
		{amp: 10, periodH: 327.86, phase: 1.9},   // Mf (fortnightly)
	}
	samples := make([][]float64, n)
	// Samples every six minutes (0.1 h): the M2 period then spans ~124
	// samples, giving the smooth locally-flat profile of real tide gauges.
	const dt = 0.1
	for t := 0; t < n; t++ {
		v := 200.0
		for _, h := range hs {
			v += h.amp * math.Sin(2*math.Pi*float64(t)*dt/h.periodH+h.phase)
		}
		// Gauge chop and instrument noise: real tide traces are locally
		// rough, which keeps polynomial fits from dominating step
		// functions.
		v += rng.NormFloat64() * 2.0
		samples[t] = []float64{math.Round(v*100) / 100}
	}
	return unitSeq([]string{"level"}, samples), nil
}

// Wind synthesizes the stand-in for wind.dat (paper: n = 6 574, twelve
// dimensions, cmin = 216): correlated AR(1) processes — one per measurement
// station — with the requested number of missing-data gaps punched into the
// timeline so that cmin = gaps+1.
func Wind(n, dims, gaps int, seed int64) (*temporal.Sequence, error) {
	if n < 1 || dims < 1 {
		return nil, fmt.Errorf("dataset: wind needs n ≥ 1 and dims ≥ 1, got n=%d dims=%d", n, dims)
	}
	if gaps < 0 || gaps >= n {
		return nil, fmt.Errorf("dataset: wind gap count %d outside 0..%d", gaps, n-1)
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, dims)
	for d := range names {
		names[d] = fmt.Sprintf("station%02d", d+1)
	}
	// A shared regional wind component keeps the stations correlated.
	state := make([]float64, dims)
	shared := 0.0
	samples := make([][]float64, n)
	for t := 0; t < n; t++ {
		shared = 0.9*shared + rng.NormFloat64()*1.2
		row := make([]float64, dims)
		for d := 0; d < dims; d++ {
			// Gusty per-station turbulence on top of the regional signal:
			// the low persistence keeps 12-dimensional reductions expensive
			// (the paper's T3 reaches ~55% error at 90% reduction).
			state[d] = 0.55*state[d] + rng.NormFloat64()*1.6
			row[d] = math.Round((10+shared+state[d])*100) / 100
		}
		samples[t] = row
	}
	seq := unitSeq(names, samples)
	// Punch gaps: pick distinct cut positions and shift subsequent rows
	// forward by a few chronons each.
	if gaps > 0 {
		cuts := rng.Perm(n - 1)[:gaps]
		shift := make([]temporal.Chronon, n)
		for _, c := range cuts {
			width := temporal.Chronon(1 + rng.Intn(3))
			for i := c + 1; i < n; i++ {
				shift[i] += width
			}
		}
		for i := range seq.Rows {
			seq.Rows[i].T.Start += shift[i]
			seq.Rows[i].T.End += shift[i]
		}
	}
	return seq, nil
}

// Uniform synthesizes the scalability dataset of Table 1(d): rows with p
// uniformly distributed aggregate values, organized as `groups` aggregation
// groups of `perGroup` consecutive unit-length tuples each (groups = 1
// reproduces S1, many groups reproduce S2). Uniform noise has no constant
// runs, so the ITA result size equals the input size, as in the paper.
func Uniform(groups, perGroup, p int, seed int64) (*temporal.Sequence, error) {
	if groups < 1 || perGroup < 1 || p < 1 {
		return nil, fmt.Errorf("dataset: invalid uniform config groups=%d perGroup=%d p=%d", groups, perGroup, p)
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, p)
	for d := range names {
		names[d] = fmt.Sprintf("a%02d", d+1)
	}
	var attrs []temporal.Attribute
	if groups > 1 {
		attrs = []temporal.Attribute{{Name: "grp", Kind: temporal.KindInt}}
	}
	seq := temporal.NewSequence(attrs, names)
	for g := 0; g < groups; g++ {
		var gid int32
		if groups > 1 {
			gid = seq.Groups.Intern([]temporal.Datum{temporal.Int(int64(g))})
		} else {
			gid = seq.Groups.Intern(nil)
		}
		for t := 0; t < perGroup; t++ {
			vals := make([]float64, p)
			for d := range vals {
				vals[d] = rng.Float64() * 100
			}
			seq.Rows = append(seq.Rows, temporal.SeqRow{
				Group: gid,
				Aggs:  vals,
				T:     temporal.Inst(temporal.Chronon(t)),
			})
		}
	}
	return seq, nil
}

// Mixed synthesizes a mixed-shape workload: per group, cumulative-counter
// ramps (monotone non-decreasing running sums, blocks of 40–99 rows)
// interleaved with short blocks of strictly alternating oscillation around
// the current counter level (6–15 rows) — the shape of real telemetry where
// accumulating meters are punctuated by resets, retries or noisy intervals.
// A whole-run monotonicity certificate fails on every group, but the
// piecewise certification (CostKernel.MonotoneSegments) recovers the ramps:
// MonotoneCoverage sits around the ramp share (~0.8), so the monotone row
// fills engage on most rows while the noise falls back to the pruned scan.
// Like Counter, rows are unit-length and consecutive per group, so the ITA
// result size equals the input size.
func Mixed(groups, perGroup, p int, seed int64) (*temporal.Sequence, error) {
	if groups < 1 || perGroup < 1 || p < 1 {
		return nil, fmt.Errorf("dataset: invalid mixed config groups=%d perGroup=%d p=%d", groups, perGroup, p)
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, p)
	for d := range names {
		names[d] = fmt.Sprintf("a%02d", d+1)
	}
	var attrs []temporal.Attribute
	if groups > 1 {
		attrs = []temporal.Attribute{{Name: "grp", Kind: temporal.KindInt}}
	}
	seq := temporal.NewSequence(attrs, names)
	for g := 0; g < groups; g++ {
		var gid int32
		if groups > 1 {
			gid = seq.Groups.Intern([]temporal.Datum{temporal.Int(int64(g))})
		} else {
			gid = seq.Groups.Intern(nil)
		}
		totals := make([]float64, p)
		ramp := true
		left := 40 + rng.Intn(60)
		sign := 1.0
		for t := 0; t < perGroup; t++ {
			if left == 0 {
				if ramp = !ramp; ramp {
					left = 40 + rng.Intn(60)
				} else {
					left = 6 + rng.Intn(10)
					sign = 1.0
				}
			}
			left--
			vals := make([]float64, p)
			if ramp {
				for d := range vals {
					totals[d] += rng.Float64() * 10
					vals[d] = math.Round(totals[d]*100) / 100
				}
			} else {
				// Strictly alternating excursions around the counter level:
				// every dimension flips direction on every row, so no two
				// consecutive noise pairs extend a monotone segment.
				for d := range vals {
					vals[d] = math.Round((totals[d]+sign*(5+rng.Float64()*20))*100) / 100
				}
				sign = -sign
			}
			seq.Rows = append(seq.Rows, temporal.SeqRow{
				Group: gid,
				Aggs:  vals,
				T:     temporal.Inst(temporal.Chronon(t)),
			})
		}
	}
	return seq, nil
}

// Counter synthesizes a cumulative-counter workload: per group and
// dimension, values are running sums of non-negative uniform increments —
// monotone non-decreasing within every maximal run, the shape of request
// counters, cumulative sensor integrals and other accumulating telemetry.
// Monotone runs are exactly the precondition under which the DP cost kernel
// certifies the quadrangle inequality and the monotone row-fill algorithms
// (FillDC/FillSMAWK) apply; the `fill` experiment sweeps them on this
// dataset. Like Uniform, rows are unit-length and consecutive per group, so
// the ITA result size equals the input size.
func Counter(groups, perGroup, p int, seed int64) (*temporal.Sequence, error) {
	if groups < 1 || perGroup < 1 || p < 1 {
		return nil, fmt.Errorf("dataset: invalid counter config groups=%d perGroup=%d p=%d", groups, perGroup, p)
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, p)
	for d := range names {
		names[d] = fmt.Sprintf("a%02d", d+1)
	}
	var attrs []temporal.Attribute
	if groups > 1 {
		attrs = []temporal.Attribute{{Name: "grp", Kind: temporal.KindInt}}
	}
	seq := temporal.NewSequence(attrs, names)
	for g := 0; g < groups; g++ {
		var gid int32
		if groups > 1 {
			gid = seq.Groups.Intern([]temporal.Datum{temporal.Int(int64(g))})
		} else {
			gid = seq.Groups.Intern(nil)
		}
		totals := make([]float64, p)
		for t := 0; t < perGroup; t++ {
			vals := make([]float64, p)
			for d := range vals {
				totals[d] += rng.Float64() * 10
				vals[d] = math.Round(totals[d]*100) / 100
			}
			seq.Rows = append(seq.Rows, temporal.SeqRow{
				Group: gid,
				Aggs:  vals,
				T:     temporal.Inst(temporal.Chronon(t)),
			})
		}
	}
	return seq, nil
}
