package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewInterval(t *testing.T) {
	iv, err := NewInterval(1, 4)
	if err != nil {
		t.Fatalf("NewInterval(1, 4) failed: %v", err)
	}
	if iv.Start != 1 || iv.End != 4 {
		t.Fatalf("NewInterval(1, 4) = %v", iv)
	}
	if _, err := NewInterval(5, 4); err == nil {
		t.Fatal("NewInterval(5, 4) should fail")
	}
}

func TestIntervalLen(t *testing.T) {
	tests := []struct {
		iv   Interval
		want int64
	}{
		{Interval{1, 4}, 4},
		{Interval{3, 3}, 1},
		{Interval{-2, 2}, 5},
		{Interval{5, 4}, 0},
	}
	for _, tt := range tests {
		if got := tt.iv.Len(); got != tt.want {
			t.Errorf("%v.Len() = %d, want %d", tt.iv, got, tt.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{3, 6}
	for _, tc := range []struct {
		t    Chronon
		want bool
	}{{2, false}, {3, true}, {5, true}, {6, true}, {7, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("%v.Contains(%d) = %v, want %v", iv, tc.t, got, tc.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	tests := []struct {
		a, b Interval
		want bool
	}{
		{Interval{1, 4}, Interval{3, 6}, true},
		{Interval{1, 4}, Interval{4, 7}, true},
		{Interval{1, 4}, Interval{5, 8}, false},
		{Interval{5, 8}, Interval{1, 4}, false},
		{Interval{2, 2}, Interval{2, 2}, true},
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(tt.a); got != tt.want {
			t.Errorf("Overlaps not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	got, ok := Interval{1, 4}.Intersect(Interval{3, 6})
	if !ok || got != (Interval{3, 4}) {
		t.Errorf("[1,4] ∩ [3,6] = %v, %v", got, ok)
	}
	if _, ok := (Interval{1, 2}).Intersect(Interval{4, 6}); ok {
		t.Error("[1,2] ∩ [4,6] should be empty")
	}
}

func TestIntervalMeets(t *testing.T) {
	if !(Interval{1, 2}).Meets(Interval{3, 3}) {
		t.Error("[1,2] should meet [3,3]")
	}
	if (Interval{1, 2}).Meets(Interval{4, 5}) {
		t.Error("[1,2] should not meet [4,5]")
	}
	if (Interval{1, 2}).Meets(Interval{2, 5}) {
		t.Error("[1,2] should not meet [2,5] (overlap, not meet)")
	}
}

func TestIntervalUnion(t *testing.T) {
	if got, ok := (Interval{1, 2}).Union(Interval{3, 5}); !ok || got != (Interval{1, 5}) {
		t.Errorf("[1,2] ∪ [3,5] = %v, %v", got, ok)
	}
	if got, ok := (Interval{1, 4}).Union(Interval{2, 3}); !ok || got != (Interval{1, 4}) {
		t.Errorf("[1,4] ∪ [2,3] = %v, %v", got, ok)
	}
	if _, ok := (Interval{1, 2}).Union(Interval{4, 5}); ok {
		t.Error("[1,2] ∪ [4,5] should not be convex")
	}
	// Union must also succeed when the second interval meets the first.
	if got, ok := (Interval{3, 5}).Union(Interval{1, 2}); !ok || got != (Interval{1, 5}) {
		t.Errorf("[3,5] ∪ [1,2] = %v, %v", got, ok)
	}
}

func TestIntervalBefore(t *testing.T) {
	if !(Interval{1, 2}).Before(Interval{4, 5}) {
		t.Error("[1,2] should be before [4,5]")
	}
	if (Interval{1, 2}).Before(Interval{3, 5}) {
		t.Error("[1,2] meets [3,5]; Before requires a gap")
	}
}

func TestIntervalCompare(t *testing.T) {
	if (Interval{1, 2}).Compare(Interval{1, 2}) != 0 {
		t.Error("equal intervals should compare 0")
	}
	if (Interval{1, 2}).Compare(Interval{1, 3}) >= 0 {
		t.Error("[1,2] should sort before [1,3]")
	}
	if (Interval{2, 2}).Compare(Interval{1, 9}) <= 0 {
		t.Error("[2,2] should sort after [1,9]")
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{1, 4}).String(); got != "[1, 4]" {
		t.Errorf("String() = %q", got)
	}
}

// randomInterval yields small intervals so that overlap cases are frequent.
func randomInterval(r *rand.Rand) Interval {
	s := Chronon(r.Intn(40) - 20)
	return Interval{Start: s, End: s + Chronon(r.Intn(10))}
}

func TestIntervalPropOverlapIffIntersect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomInterval(r), randomInterval(r)
		_, ok := a.Intersect(b)
		return ok == a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalPropUnionCoversBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomInterval(r), randomInterval(r)
		u, ok := a.Union(b)
		if !ok {
			return true
		}
		return u.ContainsInterval(a) && u.ContainsInterval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalPropLenAdditiveWhenMeets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomInterval(r)
		b := Interval{Start: a.End + 1, End: a.End + 1 + Chronon(r.Intn(5))}
		u, ok := a.Union(b)
		return ok && u.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
