package temporal

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the attribute domains supported by the relational model.
type Kind uint8

const (
	// KindString is the domain of free-form text values.
	KindString Kind = iota
	// KindInt is the domain of 64-bit signed integers.
	KindInt
	// KindFloat is the domain of IEEE-754 double precision numbers.
	KindFloat
)

// String returns the lower-case name of the kind ("string", "int", "float").
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "text":
		return KindString, nil
	case "int", "integer":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	}
	return 0, fmt.Errorf("temporal: unknown kind %q", s)
}

// Datum is one attribute value: a string, an integer, or a float. The zero
// value is the empty string.
type Datum struct {
	kind Kind
	s    string
	i    int64
	f    float64
}

// String returns a datum of kind KindString.
func String(s string) Datum { return Datum{kind: KindString, s: s} }

// Int returns a datum of kind KindInt.
func Int(i int64) Datum { return Datum{kind: KindInt, i: i} }

// Float returns a datum of kind KindFloat.
func Float(f float64) Datum { return Datum{kind: KindFloat, f: f} }

// Kind returns the domain the datum belongs to.
func (d Datum) Kind() Kind { return d.kind }

// Text returns the string payload. It is only meaningful for KindString.
func (d Datum) Text() string { return d.s }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (d Datum) IntVal() int64 { return d.i }

// FloatVal returns the float payload. It is only meaningful for KindFloat.
func (d Datum) FloatVal() float64 { return d.f }

// Numeric returns the datum as a float64 and reports whether the datum is
// numeric (KindInt or KindFloat). Aggregate functions operate on numeric
// attributes only.
func (d Datum) Numeric() (float64, bool) {
	switch d.kind {
	case KindInt:
		return float64(d.i), true
	case KindFloat:
		return d.f, true
	}
	return 0, false
}

// Equal reports whether two datums have the same kind and payload.
func (d Datum) Equal(o Datum) bool {
	if d.kind != o.kind {
		return false
	}
	switch d.kind {
	case KindString:
		return d.s == o.s
	case KindInt:
		return d.i == o.i
	default:
		return d.f == o.f
	}
}

// Compare orders datums first by kind, then by payload. It returns a
// negative number, zero, or a positive number.
func (d Datum) Compare(o Datum) int {
	if d.kind != o.kind {
		return int(d.kind) - int(o.kind)
	}
	switch d.kind {
	case KindString:
		return strings.Compare(d.s, o.s)
	case KindInt:
		switch {
		case d.i < o.i:
			return -1
		case d.i > o.i:
			return 1
		}
		return 0
	default:
		switch {
		case d.f < o.f:
			return -1
		case d.f > o.f:
			return 1
		}
		return 0
	}
}

// String renders the payload; integers and floats use their canonical Go
// decimal representation.
func (d Datum) String() string {
	switch d.kind {
	case KindString:
		return d.s
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	default:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	}
}

// ParseDatum parses text into a datum of the requested kind.
func ParseDatum(k Kind, text string) (Datum, error) {
	switch k {
	case KindString:
		return String(text), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("temporal: parsing %q as int: %v", text, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Datum{}, fmt.Errorf("temporal: parsing %q as float: %v", text, err)
		}
		return Float(f), nil
	}
	return Datum{}, fmt.Errorf("temporal: unknown kind %d", k)
}

// DatumsEqual reports element-wise equality of two datum slices.
func DatumsEqual(a, b []Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// CompareDatums orders datum slices lexicographically.
func CompareDatums(a, b []Datum) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// encodeKey builds an injective string encoding of a datum slice, used as a
// map key by the group dictionary. Payloads are length-prefixed so that no
// two distinct slices collide.
func encodeKey(vals []Datum) string {
	var sb strings.Builder
	for _, v := range vals {
		s := v.String()
		sb.WriteByte(byte('0' + v.Kind()))
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}
