package temporal

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a relation schema. The timestamp
// attribute T is implicit and not listed among the attributes.
type Attribute struct {
	Name string
	Kind Kind
}

// String renders the attribute as "name:kind".
func (a Attribute) String() string { return a.Name + ":" + a.Kind.String() }

// Schema is a temporal relation schema R = (A1, ..., Am, T): an ordered list
// of explicit attributes plus the implicit timestamp attribute.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be non-empty and unique.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("temporal: schema attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("temporal: duplicate schema attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of explicit (non-timestamp) attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Indices resolves a list of attribute names to positions. It reports an
// error naming the first unknown attribute.
func (s *Schema) Indices(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("temporal: unknown attribute %q", n)
		}
		out[i] = idx
	}
	return out, nil
}

// String renders the schema as "(a:string, b:float, T)".
func (s *Schema) String() string {
	parts := make([]string, 0, len(s.attrs)+1)
	for _, a := range s.attrs {
		parts = append(parts, a.String())
	}
	parts = append(parts, "T")
	return "(" + strings.Join(parts, ", ") + ")"
}
