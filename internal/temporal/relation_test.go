package temporal

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func projSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "Empl", Kind: KindString},
		Attribute{Name: "Proj", Kind: KindString},
		Attribute{Name: "Sal", Kind: KindFloat},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := projSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("Proj"); !ok || i != 1 {
		t.Errorf("Index(Proj) = %d, %v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Error("Index(Nope) should not exist")
	}
	idx, err := s.Indices([]string{"Sal", "Empl"})
	if err != nil || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Indices = %v, %v", idx, err)
	}
	if _, err := s.Indices([]string{"Nope"}); err == nil {
		t.Error("Indices(Nope) should fail")
	}
	if got := s.String(); got != "(Empl:string, Proj:string, Sal:float, T)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty attribute name should fail")
	}
	if _, err := NewSchema(Attribute{Name: "a"}, Attribute{Name: "a"}); err == nil {
		t.Error("duplicate attribute should fail")
	}
}

func TestRelationAppendValidation(t *testing.T) {
	r := NewRelation(projSchema(t))
	if err := r.Append([]Datum{String("John"), String("A")}, Interval{1, 4}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := r.Append([]Datum{String("John"), String("A"), String("800")}, Interval{1, 4}); err == nil {
		t.Error("kind mismatch should fail")
	}
	if err := r.Append([]Datum{String("John"), String("A"), Float(800)}, Interval{4, 1}); err == nil {
		t.Error("invalid interval should fail")
	}
	if err := r.Append([]Datum{String("John"), String("A"), Float(800)}, Interval{1, 4}); err != nil {
		t.Errorf("valid append failed: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRelationTimeSpan(t *testing.T) {
	r := NewRelation(projSchema(t))
	if _, ok := r.TimeSpan(); ok {
		t.Error("empty relation should have no time span")
	}
	r.MustAppend([]Datum{String("a"), String("A"), Float(1)}, Interval{3, 6})
	r.MustAppend([]Datum{String("b"), String("B"), Float(2)}, Interval{1, 2})
	span, ok := r.TimeSpan()
	if !ok || span != (Interval{1, 6}) {
		t.Errorf("TimeSpan = %v, %v", span, ok)
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := NewRelation(projSchema(t))
	r.MustAppend([]Datum{String("a"), String("A"), Float(1)}, Interval{1, 2})
	c := r.Clone()
	c.MustAppend([]Datum{String("b"), String("B"), Float(2)}, Interval{3, 4})
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("clone is not independent")
	}
}

func TestCoalesceMergesValueEquivalent(t *testing.T) {
	s := MustSchema(Attribute{Name: "k", Kind: KindString})
	r := NewRelation(s)
	r.MustAppend([]Datum{String("x")}, Interval{1, 3})
	r.MustAppend([]Datum{String("x")}, Interval{4, 6}) // meets
	r.MustAppend([]Datum{String("x")}, Interval{5, 8}) // overlaps
	r.MustAppend([]Datum{String("x")}, Interval{10, 12})
	r.MustAppend([]Datum{String("y")}, Interval{2, 4})
	got := Coalesce(r)
	want := NewRelation(s)
	want.MustAppend([]Datum{String("x")}, Interval{1, 8})
	want.MustAppend([]Datum{String("x")}, Interval{10, 12})
	want.MustAppend([]Datum{String("y")}, Interval{2, 4})
	if !got.Equal(want) {
		t.Errorf("Coalesce produced:\n%v\nwant:\n%v", got, want)
	}
}

func TestCoalescePropIdempotent(t *testing.T) {
	s := MustSchema(Attribute{Name: "k", Kind: KindInt})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation(s)
		for i := 0; i < 12; i++ {
			start := Chronon(rng.Intn(20))
			r.MustAppend([]Datum{Int(int64(rng.Intn(3)))},
				Interval{start, start + Chronon(rng.Intn(5))})
		}
		once := Coalesce(r)
		twice := Coalesce(once)
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoalescePropPreservesCover(t *testing.T) {
	// Every (value, chronon) pair covered before coalescing must be covered
	// after, and vice versa.
	s := MustSchema(Attribute{Name: "k", Kind: KindInt})
	cover := func(r *Relation) map[[2]int64]bool {
		m := make(map[[2]int64]bool)
		for i := 0; i < r.Len(); i++ {
			tp := r.Tuple(i)
			for c := tp.T.Start; c <= tp.T.End; c++ {
				m[[2]int64{tp.Vals[0].IntVal(), c}] = true
			}
		}
		return m
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation(s)
		for i := 0; i < 10; i++ {
			start := Chronon(rng.Intn(15))
			r.MustAppend([]Datum{Int(int64(rng.Intn(2)))},
				Interval{start, start + Chronon(rng.Intn(4))})
		}
		before, after := cover(r), cover(Coalesce(r))
		if len(before) != len(after) {
			return false
		}
		for k := range before {
			if !after[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	r := NewRelation(projSchema(t))
	r.MustAppend([]Datum{String("John"), String("A"), Float(800)}, Interval{1, 4})
	got := r.String()
	if !strings.Contains(got, "John, A, 800, [1, 4]") {
		t.Errorf("String() = %q", got)
	}
}
