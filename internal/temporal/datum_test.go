package temporal

import (
	"testing"
	"testing/quick"
)

func TestDatumKinds(t *testing.T) {
	if String("x").Kind() != KindString || Int(3).Kind() != KindInt || Float(1.5).Kind() != KindFloat {
		t.Fatal("constructor kinds wrong")
	}
}

func TestDatumNumeric(t *testing.T) {
	if v, ok := Int(7).Numeric(); !ok || v != 7 {
		t.Errorf("Int(7).Numeric() = %v, %v", v, ok)
	}
	if v, ok := Float(2.5).Numeric(); !ok || v != 2.5 {
		t.Errorf("Float(2.5).Numeric() = %v, %v", v, ok)
	}
	if _, ok := String("a").Numeric(); ok {
		t.Error("strings are not numeric")
	}
}

func TestDatumEqualCompare(t *testing.T) {
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("string equality broken")
	}
	if String("1").Equal(Int(1)) {
		t.Error("cross-kind datums must not be equal")
	}
	if Int(1).Compare(Int(2)) >= 0 || Float(2).Compare(Float(1)) <= 0 {
		t.Error("numeric compare broken")
	}
	if String("a").Compare(String("a")) != 0 {
		t.Error("equal strings should compare 0")
	}
}

func TestDatumString(t *testing.T) {
	for _, tc := range []struct {
		d    Datum
		want string
	}{
		{String("hi"), "hi"},
		{Int(-4), "-4"},
		{Float(2.5), "2.5"},
	} {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"string", KindString}, {"INT", KindInt}, {"float", KindFloat}, {"double", KindFloat}} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestParseDatumRoundTrip(t *testing.T) {
	for _, d := range []Datum{String("abc"), Int(42), Float(3.25)} {
		got, err := ParseDatum(d.Kind(), d.String())
		if err != nil {
			t.Fatalf("ParseDatum(%v, %q): %v", d.Kind(), d.String(), err)
		}
		if !got.Equal(d) {
			t.Errorf("round trip of %v produced %v", d, got)
		}
	}
	if _, err := ParseDatum(KindInt, "x"); err == nil {
		t.Error("ParseDatum(int, x) should fail")
	}
	if _, err := ParseDatum(KindFloat, "x"); err == nil {
		t.Error("ParseDatum(float, x) should fail")
	}
}

func TestCompareDatums(t *testing.T) {
	a := []Datum{String("a"), Int(1)}
	b := []Datum{String("a"), Int(2)}
	if CompareDatums(a, b) >= 0 || CompareDatums(b, a) <= 0 || CompareDatums(a, a) != 0 {
		t.Error("CompareDatums ordering broken")
	}
	if CompareDatums(a, a[:1]) <= 0 {
		t.Error("longer slice with equal prefix should sort after")
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Classic collision trap for naive separators: ("a:b") vs ("a", "b").
	k1 := encodeKey([]Datum{String("a:b")})
	k2 := encodeKey([]Datum{String("a"), String("b")})
	if k1 == k2 {
		t.Error("encodeKey collided on nested separators")
	}
	k3 := encodeKey([]Datum{String("1")})
	k4 := encodeKey([]Datum{Int(1)})
	if k3 == k4 {
		t.Error("encodeKey collided across kinds")
	}
}

func TestEncodeKeyPropInjective(t *testing.T) {
	f := func(a, b string, x, y int64) bool {
		k1 := encodeKey([]Datum{String(a), Int(x)})
		k2 := encodeKey([]Datum{String(b), Int(y)})
		same := a == b && x == y
		return (k1 == k2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
