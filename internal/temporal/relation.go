package temporal

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a temporal relation: a vector of attribute values plus
// a validity interval.
type Tuple struct {
	Vals []Datum
	T    Interval
}

// String renders the tuple as "(v1, v2, ..., [s, e])".
func (t Tuple) String() string {
	parts := make([]string, 0, len(t.Vals)+1)
	for _, v := range t.Vals {
		parts = append(parts, v.String())
	}
	parts = append(parts, t.T.String())
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a temporal relation: a finite multiset of tuples over a schema.
// (Duplicate tuples are permitted in the input of temporal aggregation.)
type Relation struct {
	schema *Schema
	tuples []Tuple
}

// NewRelation returns an empty relation over the given schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple. The returned value shares the datum slice
// with the relation; callers must not mutate it.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Append validates and adds one tuple. The value vector must match the
// schema in arity and kinds, and the interval must be non-empty.
func (r *Relation) Append(vals []Datum, t Interval) error {
	if len(vals) != r.schema.Len() {
		return fmt.Errorf("temporal: tuple arity %d does not match schema arity %d", len(vals), r.schema.Len())
	}
	for i, v := range vals {
		if want := r.schema.Attr(i).Kind; v.Kind() != want {
			return fmt.Errorf("temporal: attribute %q expects kind %v, got %v", r.schema.Attr(i).Name, want, v.Kind())
		}
	}
	if !t.Valid() {
		return fmt.Errorf("temporal: invalid interval %v", t)
	}
	r.tuples = append(r.tuples, Tuple{Vals: append([]Datum(nil), vals...), T: t})
	return nil
}

// MustAppend is like Append but panics on error. It is intended for
// statically known data in tests and examples.
func (r *Relation) MustAppend(vals []Datum, t Interval) {
	if err := r.Append(vals, t); err != nil {
		panic(err)
	}
}

// TimeSpan returns the smallest interval covering every tuple's timestamp,
// and ok=false for an empty relation.
func (r *Relation) TimeSpan() (_ Interval, ok bool) {
	if len(r.tuples) == 0 {
		return Interval{}, false
	}
	span := r.tuples[0].T
	for _, t := range r.tuples[1:] {
		span.Start = min(span.Start, t.T.Start)
		span.End = max(span.End, t.T.End)
	}
	return span, true
}

// Clone returns a deep copy of the relation (the schema is shared; schemas
// are immutable after construction).
func (r *Relation) Clone() *Relation {
	out := &Relation{schema: r.schema, tuples: make([]Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		out.tuples[i] = Tuple{Vals: append([]Datum(nil), t.Vals...), T: t.T}
	}
	return out
}

// SortByValsTime sorts the tuples lexicographically by their attribute
// values and then chronologically. The order is total, making relation
// formatting and comparisons deterministic.
func (r *Relation) SortByValsTime() {
	sort.SliceStable(r.tuples, func(i, j int) bool {
		if c := CompareDatums(r.tuples[i].Vals, r.tuples[j].Vals); c != 0 {
			return c < 0
		}
		return r.tuples[i].T.Compare(r.tuples[j].T) < 0
	})
}

// Equal reports whether two relations have the same schema signature and,
// after sorting, identical tuples. It is intended for tests.
func (r *Relation) Equal(o *Relation) bool {
	if r.schema.String() != o.schema.String() || len(r.tuples) != len(o.tuples) {
		return false
	}
	a, b := r.Clone(), o.Clone()
	a.SortByValsTime()
	b.SortByValsTime()
	for i := range a.tuples {
		if !DatumsEqual(a.tuples[i].Vals, b.tuples[i].Vals) || a.tuples[i].T != b.tuples[i].T {
			return false
		}
	}
	return true
}

// String renders the relation one tuple per line, preceded by the schema.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(r.schema.String())
	sb.WriteByte('\n')
	for _, t := range r.tuples {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Coalesce implements the coalescing operator of Böhlen, Snodgrass and Soo:
// value-equivalent tuples whose timestamps overlap or meet are merged into
// tuples over maximal intervals. The input relation is not modified.
func Coalesce(r *Relation) *Relation {
	sorted := r.Clone()
	sorted.SortByValsTime()
	out := NewRelation(r.schema)
	for i := 0; i < sorted.Len(); {
		cur := sorted.Tuple(i)
		iv := cur.T
		j := i + 1
		for ; j < sorted.Len(); j++ {
			next := sorted.Tuple(j)
			if !DatumsEqual(cur.Vals, next.Vals) {
				break
			}
			u, ok := iv.Union(next.T)
			if !ok {
				break
			}
			iv = u
		}
		out.tuples = append(out.tuples, Tuple{Vals: cur.Vals, T: iv})
		i = j
	}
	return out
}
