package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure1cSequence builds the ITA result of Fig. 1(c) by hand:
//
//	s1 A 800 [1,2]; s2 A 600 [3,3]; s3 A 500 [4,4]; s4 A 350 [5,6];
//	s5 A 300 [7,7]; s6 B 500 [4,5]; s7 B 500 [7,8]
func figure1cSequence() *Sequence {
	s := NewSequence([]Attribute{{Name: "Proj", Kind: KindString}}, []string{"AvgSal"})
	a := s.Groups.Intern([]Datum{String("A")})
	b := s.Groups.Intern([]Datum{String("B")})
	s.Rows = []SeqRow{
		{Group: a, Aggs: []float64{800}, T: Interval{1, 2}},
		{Group: a, Aggs: []float64{600}, T: Interval{3, 3}},
		{Group: a, Aggs: []float64{500}, T: Interval{4, 4}},
		{Group: a, Aggs: []float64{350}, T: Interval{5, 6}},
		{Group: a, Aggs: []float64{300}, T: Interval{7, 7}},
		{Group: b, Aggs: []float64{500}, T: Interval{4, 5}},
		{Group: b, Aggs: []float64{500}, T: Interval{7, 8}},
	}
	return s
}

func TestSequenceAdjacency(t *testing.T) {
	s := figure1cSequence()
	// Example 2: s1 ≺ s2 ≺ s3 ≺ s4 ≺ s5; s5 ⊀ s6; s6 ⊀ s7.
	for i := 0; i < 4; i++ {
		if !s.Adjacent(i) {
			t.Errorf("rows %d,%d should be adjacent", i, i+1)
		}
	}
	if s.Adjacent(4) {
		t.Error("s5 and s6 are in different groups; not adjacent")
	}
	if s.Adjacent(5) {
		t.Error("s6 and s7 are separated by a gap; not adjacent")
	}
	if s.Adjacent(-1) || s.Adjacent(6) {
		t.Error("out-of-range adjacency should be false")
	}
}

func TestSequenceGapPositionsAndCMin(t *testing.T) {
	s := figure1cSequence()
	gaps := s.GapPositions()
	// Example 13: G = ⟨5, 6⟩.
	if len(gaps) != 2 || gaps[0] != 5 || gaps[1] != 6 {
		t.Errorf("GapPositions = %v, want [5 6]", gaps)
	}
	// Running example: cmin = 7 − 4 = 3.
	if got := s.CMin(); got != 3 {
		t.Errorf("CMin = %d, want 3", got)
	}
	empty := NewSequence(nil, []string{"v"})
	if empty.CMin() != 0 {
		t.Error("CMin of empty sequence should be 0")
	}
}

func TestSequenceValidate(t *testing.T) {
	s := figure1cSequence()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	bad := figure1cSequence()
	bad.Rows[1].T = Interval{2, 3} // overlaps row 0
	if err := bad.Validate(); err == nil {
		t.Error("overlapping rows should be rejected")
	}
	bad2 := figure1cSequence()
	bad2.Rows[0].Aggs = []float64{1, 2}
	if err := bad2.Validate(); err == nil {
		t.Error("wrong arity should be rejected")
	}
	bad3 := figure1cSequence()
	bad3.Rows[0].T = Interval{5, 2}
	if err := bad3.Validate(); err == nil {
		t.Error("invalid interval should be rejected")
	}
	bad4 := figure1cSequence()
	bad4.Rows[0].Group = 99
	if err := bad4.Validate(); err == nil {
		t.Error("unknown group should be rejected")
	}
}

func TestSequenceSort(t *testing.T) {
	s := figure1cSequence()
	// Shuffle and re-sort; must restore the canonical order.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(s.Rows), func(i, j int) { s.Rows[i], s.Rows[j] = s.Rows[j], s.Rows[i] })
	s.Sort()
	if err := s.Validate(); err != nil {
		t.Fatalf("sorted sequence invalid: %v", err)
	}
	if !s.Equal(figure1cSequence(), 0) {
		t.Error("sort did not restore canonical order")
	}
}

func TestSequenceTotalLen(t *testing.T) {
	s := figure1cSequence()
	if got := s.TotalLen(); got != 2+1+1+2+1+2+2 {
		t.Errorf("TotalLen = %d, want 11", got)
	}
}

func TestSequenceCloneIndependence(t *testing.T) {
	s := figure1cSequence()
	c := s.Clone()
	c.Rows[0].Aggs[0] = -1
	c.Rows = c.Rows[:2]
	if s.Rows[0].Aggs[0] != 800 || s.Len() != 7 {
		t.Error("clone mutated the original")
	}
}

func TestSequenceWithRowsSharesMeta(t *testing.T) {
	s := figure1cSequence()
	w := s.WithRows(s.Rows[:2])
	if w.Len() != 2 || w.Groups != s.Groups || w.P() != 1 {
		t.Error("WithRows metadata sharing broken")
	}
}

func TestGroupDict(t *testing.T) {
	g := NewGroupDict()
	a := g.Intern([]Datum{String("A")})
	b := g.Intern([]Datum{String("B")})
	a2 := g.Intern([]Datum{String("A")})
	if a != a2 || a == b || g.Len() != 2 {
		t.Fatalf("Intern ids: a=%d a2=%d b=%d len=%d", a, a2, b, g.Len())
	}
	if id, ok := g.Lookup([]Datum{String("B")}); !ok || id != b {
		t.Errorf("Lookup(B) = %d, %v", id, ok)
	}
	if _, ok := g.Lookup([]Datum{String("C")}); ok {
		t.Error("Lookup(C) should miss")
	}
	if !DatumsEqual(g.Values(a), []Datum{String("A")}) {
		t.Error("Values(a) wrong")
	}
}

func TestGroupDictSortedIDs(t *testing.T) {
	g := NewGroupDict()
	zc := g.Intern([]Datum{String("c")})
	za := g.Intern([]Datum{String("a")})
	zb := g.Intern([]Datum{String("b")})
	ids := g.SortedIDs()
	want := []int32{za, zb, zc}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortedIDs = %v, want %v", ids, want)
		}
	}
}

func TestGroupDictPropInternStable(t *testing.T) {
	f := func(names []string) bool {
		g := NewGroupDict()
		ids := make(map[string]int32)
		for _, n := range names {
			id := g.Intern([]Datum{String(n)})
			if prev, seen := ids[n]; seen && prev != id {
				return false
			}
			ids[n] = id
		}
		return g.Len() == len(ids)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequenceCMinPropEqualsRuns(t *testing.T) {
	// cmin must equal the number of maximal adjacent runs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSequence(nil, []string{"v"})
		id := s.Groups.Intern(nil)
		tcur := Chronon(0)
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				tcur += Chronon(1 + rng.Intn(3)) // inject a gap
			}
			length := Chronon(1 + rng.Intn(3))
			s.Rows = append(s.Rows, SeqRow{Group: id, Aggs: []float64{float64(i)},
				T: Interval{tcur, tcur + length - 1}})
			tcur += length
		}
		runs := 1
		for i := 0; i+1 < s.Len(); i++ {
			if !s.Adjacent(i) {
				runs++
			}
		}
		return s.CMin() == runs && s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
