// Package temporal implements the temporal relational model of Section 3 of
// the paper: a discrete time domain of chronons, inclusive time intervals,
// typed attribute values (datums), relation schemas, temporal relations, the
// coalescing operator, and sequential relations (the exchange format between
// instant temporal aggregation and parsimonious temporal aggregation).
package temporal

import (
	"fmt"
	"math"
)

// Chronon is a time instant of the discrete time domain. The domain carries
// the usual total order of int64. Applications map calendar granularities
// (months, days, seconds, ...) onto chronons before loading data.
type Chronon = int64

// ChrononMin and ChrononMax delimit the representable time domain.
const (
	ChrononMin Chronon = math.MinInt64
	ChrononMax Chronon = math.MaxInt64
)

// Interval is a timestamp: a convex set of chronons represented by its
// inclusive start and end points [Start, End]. The zero value is the single
// chronon interval [0, 0].
type Interval struct {
	Start Chronon
	End   Chronon
}

// NewInterval returns the interval [start, end]. It reports an error if
// start > end, i.e. the set of chronons would be empty.
func NewInterval(start, end Chronon) (Interval, error) {
	if start > end {
		return Interval{}, fmt.Errorf("temporal: invalid interval [%d, %d]: start after end", start, end)
	}
	return Interval{Start: start, End: end}, nil
}

// Inst returns the instantaneous interval [t, t].
func Inst(t Chronon) Interval { return Interval{Start: t, End: t} }

// Valid reports whether the interval contains at least one chronon.
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Len returns the number of chronons in the interval, |T| = End − Start + 1.
func (iv Interval) Len() int64 {
	if !iv.Valid() {
		return 0
	}
	return iv.End - iv.Start + 1
}

// Contains reports whether chronon t lies in the interval.
func (iv Interval) Contains(t Chronon) bool { return iv.Start <= t && t <= iv.End }

// ContainsInterval reports whether o is a subset of iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	return iv.Start <= o.Start && o.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one chronon.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

// Intersect returns the common chronons of the two intervals. ok is false if
// they are disjoint.
func (iv Interval) Intersect(o Interval) (_ Interval, ok bool) {
	s := max(iv.Start, o.Start)
	e := min(iv.End, o.End)
	if s > e {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Meets reports whether iv ends immediately before o starts, i.e. the
// concatenation iv·o is gap free. This is condition (2) of tuple adjacency
// (Definition 2).
func (iv Interval) Meets(o Interval) bool { return iv.End+1 == o.Start }

// Union returns the smallest interval covering both arguments. ok is false
// if the arguments neither overlap nor meet (in either order), because their
// union would not be convex.
func (iv Interval) Union(o Interval) (_ Interval, ok bool) {
	if !iv.Overlaps(o) && !iv.Meets(o) && !o.Meets(iv) {
		return Interval{}, false
	}
	return Interval{Start: min(iv.Start, o.Start), End: max(iv.End, o.End)}, true
}

// Before reports whether iv lies entirely before o with at least one
// chronon of temporal gap between them.
func (iv Interval) Before(o Interval) bool { return iv.End+1 < o.Start }

// Compare orders intervals by start point, then end point. It returns a
// negative number, zero, or a positive number as iv sorts before, equal to,
// or after o.
func (iv Interval) Compare(o Interval) int {
	switch {
	case iv.Start < o.Start:
		return -1
	case iv.Start > o.Start:
		return 1
	case iv.End < o.End:
		return -1
	case iv.End > o.End:
		return 1
	}
	return 0
}

// String renders the interval in the paper's notation, e.g. "[1, 4]".
func (iv Interval) String() string { return fmt.Sprintf("[%d, %d]", iv.Start, iv.End) }
