package temporal

import "sort"

// GroupDict is a dictionary encoding of aggregation-group values. Sequential
// relations store a compact int32 group id per row; the dictionary maps ids
// back to the grouping attribute values they stand for.
type GroupDict struct {
	byKey map[string]int32
	vals  [][]Datum
}

// NewGroupDict returns an empty dictionary.
func NewGroupDict() *GroupDict {
	return &GroupDict{byKey: make(map[string]int32)}
}

// Intern returns the id of the group with the given attribute values,
// assigning a fresh id on first sight. The value slice is copied.
func (g *GroupDict) Intern(vals []Datum) int32 {
	key := encodeKey(vals)
	if id, ok := g.byKey[key]; ok {
		return id
	}
	id := int32(len(g.vals))
	g.byKey[key] = id
	g.vals = append(g.vals, append([]Datum(nil), vals...))
	return id
}

// Lookup returns the id of the group with the given values, if present.
func (g *GroupDict) Lookup(vals []Datum) (int32, bool) {
	id, ok := g.byKey[encodeKey(vals)]
	return id, ok
}

// Values returns the attribute values of group id. Callers must not mutate
// the returned slice.
func (g *GroupDict) Values(id int32) []Datum { return g.vals[id] }

// Len returns the number of distinct groups.
func (g *GroupDict) Len() int { return len(g.vals) }

// SortedIDs returns all group ids ordered by their attribute values. The
// order is the canonical group order of sequential relations.
func (g *GroupDict) SortedIDs() []int32 {
	ids := make([]int32, len(g.vals))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return CompareDatums(g.vals[ids[a]], g.vals[ids[b]]) < 0
	})
	return ids
}

// Clone returns a deep copy of the dictionary.
func (g *GroupDict) Clone() *GroupDict {
	out := &GroupDict{
		byKey: make(map[string]int32, len(g.byKey)),
		vals:  make([][]Datum, len(g.vals)),
	}
	for k, v := range g.byKey {
		out.byKey[k] = v
	}
	for i, v := range g.vals {
		out.vals[i] = append([]Datum(nil), v...)
	}
	return out
}
