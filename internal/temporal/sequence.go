package temporal

import (
	"fmt"
	"sort"
	"strings"
)

// SeqRow is one tuple of a sequential relation: a dictionary-encoded
// aggregation group, p aggregate values B1..Bp, and a validity interval.
type SeqRow struct {
	Group int32
	Aggs  []float64
	T     Interval
}

// CloneAggs returns a copy of the row with its own aggregate-value slice.
func (r SeqRow) CloneAggs() SeqRow {
	r.Aggs = append([]float64(nil), r.Aggs...)
	return r
}

// Sequence is a sequential relation (Section 3): a temporal relation in
// which the timestamps of tuples within one aggregation group never
// intersect. Instant temporal aggregation always produces a sequential
// relation, and parsimonious temporal aggregation preserves the property.
//
// Rows are kept sorted by aggregation group and, within each group,
// chronologically — the order required by the merging algorithms.
type Sequence struct {
	// GroupAttrs describes the grouping attributes A1..Ak (may be empty).
	GroupAttrs []Attribute
	// AggNames names the aggregate attributes B1..Bp.
	AggNames []string
	// Groups maps row group ids to grouping attribute values.
	Groups *GroupDict
	// Rows holds the tuples in (group, time) order.
	Rows []SeqRow
}

// NewSequence returns an empty sequence with the given grouping attributes
// and aggregate attribute names.
func NewSequence(groupAttrs []Attribute, aggNames []string) *Sequence {
	return &Sequence{
		GroupAttrs: append([]Attribute(nil), groupAttrs...),
		AggNames:   append([]string(nil), aggNames...),
		Groups:     NewGroupDict(),
	}
}

// WithRows returns a sequence sharing this sequence's metadata (grouping
// attributes, aggregate names, group dictionary) but holding the given rows.
func (s *Sequence) WithRows(rows []SeqRow) *Sequence {
	return &Sequence{
		GroupAttrs: s.GroupAttrs,
		AggNames:   s.AggNames,
		Groups:     s.Groups,
		Rows:       rows,
	}
}

// P returns the number of aggregate attributes p.
func (s *Sequence) P() int { return len(s.AggNames) }

// Len returns the number of rows n.
func (s *Sequence) Len() int { return len(s.Rows) }

// Adjacent reports whether rows i and i+1 are adjacent per Definition 2:
// same aggregation group and no temporal gap between them.
func (s *Sequence) Adjacent(i int) bool {
	if i < 0 || i+1 >= len(s.Rows) {
		return false
	}
	a, b := s.Rows[i], s.Rows[i+1]
	return a.Group == b.Group && a.T.Meets(b.T)
}

// GapPositions returns the 1-based positions l (vector G of Section 5.3) at
// which row l and row l+1 are non-adjacent.
func (s *Sequence) GapPositions() []int {
	var gaps []int
	for i := 0; i+1 < len(s.Rows); i++ {
		if !s.Adjacent(i) {
			gaps = append(gaps, i+1)
		}
	}
	return gaps
}

// CMin returns the smallest size any reduction of the sequence can reach:
// cmin = |s| − #adjacent pairs, which equals the number of maximal adjacent
// runs. CMin of an empty sequence is 0.
func (s *Sequence) CMin() int {
	if len(s.Rows) == 0 {
		return 0
	}
	return len(s.GapPositions()) + 1
}

// Sort orders the rows canonically: by the grouping attribute values of
// their groups, then chronologically. Instant temporal aggregation emits
// rows already in this order; Sort is for sequences assembled by hand.
func (s *Sequence) Sort() {
	sort.SliceStable(s.Rows, func(i, j int) bool {
		a, b := s.Rows[i], s.Rows[j]
		if a.Group != b.Group {
			return CompareDatums(s.Groups.Values(a.Group), s.Groups.Values(b.Group)) < 0
		}
		return a.T.Compare(b.T) < 0
	})
}

// Validate checks the sequential-relation invariants: every row has p
// aggregate values and a valid interval, rows are sorted by (group, time),
// and timestamps within a group do not intersect.
func (s *Sequence) Validate() error {
	p := s.P()
	for i, r := range s.Rows {
		if len(r.Aggs) != p {
			return fmt.Errorf("temporal: row %d has %d aggregate values, want %d", i, len(r.Aggs), p)
		}
		if !r.T.Valid() {
			return fmt.Errorf("temporal: row %d has invalid interval %v", i, r.T)
		}
		if int(r.Group) < 0 || int(r.Group) >= s.Groups.Len() {
			return fmt.Errorf("temporal: row %d references unknown group %d", i, r.Group)
		}
		if i == 0 {
			continue
		}
		prev := s.Rows[i-1]
		if prev.Group == r.Group {
			if prev.T.End >= r.T.Start {
				return fmt.Errorf("temporal: rows %d and %d of group %d are unordered or overlapping (%v, %v)",
					i-1, i, r.Group, prev.T, r.T)
			}
		} else if CompareDatums(s.Groups.Values(prev.Group), s.Groups.Values(r.Group)) > 0 {
			return fmt.Errorf("temporal: groups of rows %d and %d are out of order", i-1, i)
		}
	}
	return nil
}

// TotalLen returns Σ|row.T| over all rows: the number of (group, chronon)
// cells the sequence covers.
func (s *Sequence) TotalLen() int64 {
	var total int64
	for _, r := range s.Rows {
		total += r.T.Len()
	}
	return total
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	out := &Sequence{
		GroupAttrs: append([]Attribute(nil), s.GroupAttrs...),
		AggNames:   append([]string(nil), s.AggNames...),
		Groups:     s.Groups.Clone(),
		Rows:       make([]SeqRow, len(s.Rows)),
	}
	for i, r := range s.Rows {
		out.Rows[i] = r.CloneAggs()
	}
	return out
}

// Equal reports whether two sequences hold the same rows with the same
// grouping values and aggregate values within tol. It is intended for tests.
func (s *Sequence) Equal(o *Sequence, tol float64) bool {
	if len(s.Rows) != len(o.Rows) || s.P() != o.P() {
		return false
	}
	for i := range s.Rows {
		a, b := s.Rows[i], o.Rows[i]
		if a.T != b.T {
			return false
		}
		if !DatumsEqual(s.Groups.Values(a.Group), o.Groups.Values(b.Group)) {
			return false
		}
		for d := range a.Aggs {
			diff := a.Aggs[d] - b.Aggs[d]
			if diff < -tol || diff > tol {
				return false
			}
		}
	}
	return true
}

// String renders the sequence one row per line, e.g. "A | 733.33 | [1, 3]".
func (s *Sequence) String() string {
	var sb strings.Builder
	for _, r := range s.Rows {
		parts := make([]string, 0, len(s.GroupAttrs)+s.P()+1)
		for _, v := range s.Groups.Values(r.Group) {
			parts = append(parts, v.String())
		}
		for _, a := range r.Aggs {
			parts = append(parts, fmt.Sprintf("%.4g", a))
		}
		parts = append(parts, r.T.String())
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteByte('\n')
	}
	return sb.String()
}
