package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// mixedShapeSequence builds the workload the envelope-pruned completion scan
// exists for: monotone ramps of at least fillSegmentMin rows interleaved
// with short strictly-oscillating noise blocks inside the same gap-free run.
// The kernel certifies several segments per run with at least one
// dispatch-eligible ramp starting mid-run, so completeSegment faces
// non-empty out-of-segment candidate windows — the path monotoneSequence
// (one segment per run) never reaches. The first two blocks are pinned
// (noise, then a ramp with no gap between them) so the shape guarantee
// holds for every seed; gapProb places temporal gaps before later blocks,
// which saturate whole cell ranges to +Inf in the shallow rows.
func mixedShapeSequence(rng *rand.Rand, blocks, p int, gapProb float64) *temporal.Sequence {
	attrs := []temporal.Attribute{{Name: "g", Kind: temporal.KindInt}}
	names := make([]string, p)
	for d := range names {
		names[d] = "v" + string(rune('0'+d))
	}
	seq := temporal.NewSequence(attrs, names)
	gid := seq.Groups.Intern([]temporal.Datum{temporal.Int(0)})
	tcur := temporal.Chronon(0)
	levels := make([]float64, p)
	for d := range levels {
		levels[d] = 50 + rng.Float64()*50
	}
	emit := func(aggs []float64) {
		length := temporal.Chronon(1 + rng.Intn(3))
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: aggs,
			T: temporal.Interval{Start: tcur, End: tcur + length - 1}})
		tcur += length
	}
	for b := 0; b < blocks; b++ {
		if b >= 2 && rng.Float64() < gapProb {
			tcur += temporal.Chronon(1 + rng.Intn(3))
		}
		ramp := b == 1 || (b >= 2 && rng.Float64() < 0.6)
		if ramp {
			m := fillSegmentMin + rng.Intn(25)
			dir := make([]float64, p)
			for d := range dir {
				dir[d] = 1
				if rng.Intn(2) == 0 {
					dir[d] = -1
				}
			}
			for r := 0; r < m; r++ {
				aggs := make([]float64, p)
				for d := range aggs {
					levels[d] += dir[d] * math.Round(rng.Float64()*100) / 10
					aggs[d] = levels[d]
				}
				emit(aggs)
			}
		} else {
			m := 4 + rng.Intn(7)
			for r := 0; r < m; r++ {
				aggs := make([]float64, p)
				for d := range aggs {
					amp := 5 + math.Round(rng.Float64()*200)/10
					if r%2 == 1 {
						amp = -amp
					}
					aggs[d] = levels[d] + amp
				}
				emit(aggs)
			}
		}
	}
	return seq
}

// assertMixedShape verifies the generator's contract: at least one
// dispatch-eligible certified segment starts mid-run, so the monotone fill
// handles its in-segment candidates and completeSegment genuinely searches
// a non-empty out-of-segment window.
func assertMixedShape(t *testing.T, kn *CostKernel) bool {
	t.Helper()
	runStart := map[int]bool{1: true}
	for _, g := range kn.Gaps() {
		runStart[g+1] = true
	}
	segs := kn.MonotoneSegments()
	for si, s := range segs {
		end := kn.N()
		if si+1 < len(segs) {
			end = int(segs[si+1]) - 1
		}
		if end-int(s)+1 >= fillSegmentMin && !runStart[int(s)] {
			return true
		}
	}
	t.Errorf("no dispatch-eligible mid-run segment: segs=%v gaps=%v n=%d", segs, kn.Gaps(), kn.N())
	return false
}

// TestFillPropEnvelopeMixedShapes: on ramps-plus-oscillation shapes — where
// the per-segment dispatch runs a monotone fill inside each long ramp and
// the envelope-pruned completion scan over everything to its left — every
// monotone fill reproduces the pruned scan's E and J matrices bit for bit,
// under every pruning-flag combination, with gaps (whole +Inf-saturated
// cell ranges in shallow rows) and random weights. This is the property
// that pins the envelope's O(1) block skips: a skipped candidate range must
// never change a cell value or displace a rightmost-tie split point.
func TestFillPropEnvelopeMixedShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := 3 + rng.Intn(4)
		p := 1 + rng.Intn(3)
		gapProb := []float64{0, 0.25, 0.6}[rng.Intn(3)]
		seq := mixedShapeSequence(rng, blocks, p, gapProb)
		n := seq.Len()
		opts := Options{}
		if rng.Intn(2) == 0 {
			w := make([]float64, p)
			for d := range w {
				w[d] = 0.25 + rng.Float64()*3
			}
			opts.Weights = w
		}
		kn, err := NewKernel(seq, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !assertMixedShape(t, kn) {
			return false
		}
		if kn.MonotoneRuns() {
			t.Errorf("seed %d: mixed shape certified fully monotone", seed)
			return false
		}
		c := 1 + rng.Intn(n)
		ok := true
		for _, flags := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
			baseOpts := opts
			baseOpts.Fill = FillPruned
			wantE, wantJ := fillMatrices(t, kn, baseOpts, flags[0], flags[1], c)
			for _, algo := range monotoneFills {
				algoOpts := opts
				algoOpts.Fill = algo
				gotE, gotJ := fillMatrices(t, kn, algoOpts, flags[0], flags[1], c)
				if !matricesBitwiseEqual(t, algo.String(), wantE, gotE, wantJ, gotJ) {
					t.Logf("seed=%d n=%d p=%d c=%d gapProb=%v pruneI=%v pruneJ=%v",
						seed, n, p, c, gapProb, flags[0], flags[1])
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFillEnvelopeExtremeWeightsMixed: the extreme-weight saturation
// regression on the mixed shape — merge costs overflow to +Inf mid-row
// while the envelope carries its block bounds across ramp boundaries. The
// completion scan must neither let a bound built from saturated candidates
// skip a finite improvement nor move a split point off an Inf-saturated
// cell's sentinel, so all fills agree bit for bit on every row.
func TestFillEnvelopeExtremeWeightsMixed(t *testing.T) {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	emit := func(v float64) {
		i := len(seq.Rows)
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid,
			Aggs: []float64{v}, T: temporal.Inst(temporal.Chronon(i))})
	}
	// ramp, oscillation, ramp: two dispatch-eligible segments, the second
	// mid-run with a non-empty completion window over the noise and the
	// first ramp.
	v := 0.0
	for i := 0; i < fillSegmentMin+4; i++ {
		v += 1000
		emit(v)
	}
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			emit(v + 500)
		} else {
			emit(v - 500)
		}
	}
	for i := 0; i < fillSegmentMin+4; i++ {
		v += 1000
		emit(v)
	}
	w := []float64{1.4e151} // pair merges stay finite, wider merges saturate to +Inf
	kn, err := NewKernel(seq, Options{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if !assertMixedShape(t, kn) {
		t.Fatal("extreme-weight shape missed the completion path")
	}
	n := seq.Len()
	for _, flags := range [][2]bool{{true, true}, {false, false}} {
		wantE, wantJ := fillMatrices(t, kn, Options{Weights: w, Fill: FillPruned}, flags[0], flags[1], n)
		for _, algo := range monotoneFills {
			gotE, gotJ := fillMatrices(t, kn, Options{Weights: w, Fill: algo}, flags[0], flags[1], n)
			matricesBitwiseEqual(t, algo.String(), wantE, gotE, wantJ, gotJ)
		}
		saturated := false
		for k := range wantE {
			for i := range wantE[k] {
				if math.IsInf(wantE[k][i], 1) {
					saturated = true
				}
			}
		}
		if !saturated {
			t.Error("extreme weights produced no +Inf-saturated cells; regression shape lost")
		}
	}
}
