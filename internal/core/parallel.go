package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/temporal"
)

// This file implements a divide-and-conquer evaluation of size-bounded PTA
// that makes the structure behind the paper's Section 5.3 pruning explicit:
// non-adjacent tuple pairs split the relation into maximal adjacent runs
// that never interact, so
//
//  1. each run's optimal error curve can be computed independently (and
//     concurrently — one goroutine per run, bounded by GOMAXPROCS), and
//  2. the global optimum is an allocation of the size budget c over the
//     runs, found by a small dynamic program over run curves:
//
//     A[r][k] = min over j of A[r−1][k−j] + curve_r[j].
//
// The result provably equals PTAc (property-tested); with many short runs
// it does asymptotically less work — per-run curves cost Σ O(q_r²·min(q_r,c))
// versus the monolithic scheme's larger search space — and it uses every
// core. The paper's evaluation is single-threaded; this is an engineering
// extension, reported by the `parallel` experiment.

// runCurve is one maximal adjacent run with its reduction error curve and
// the split matrices needed to reconstruct any reduction size.
type runCurve struct {
	lo, hi int // 1-based row bounds of the run, inclusive
	curve  []float64
	splits [][]int32
}

// PTAcParallel evaluates size-bounded PTA exactly, decomposing the work
// over maximal adjacent runs and computing run curves on workers goroutines
// (0 = GOMAXPROCS). It returns the same optimal reduction as PTAc.
func PTAcParallel(seq *temporal.Sequence, c int, opts Options, workers int) (*DPResult, error) {
	n := seq.Len()
	if n == 0 {
		if c != 0 {
			return nil, fmt.Errorf("core: size bound %d for an empty relation", c)
		}
		return &DPResult{Sequence: seq.WithRows(nil), C: 0}, nil
	}
	px, err := NewPrefix(seq, opts)
	if err != nil {
		return nil, err
	}
	cmin := px.CMin()
	if c < cmin {
		return nil, fmt.Errorf("core: size bound %d below cmin %d", c, cmin)
	}
	if c >= n {
		return &DPResult{Sequence: seq.Clone(), C: n}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Cut the relation into maximal adjacent runs.
	var runs []*runCurve
	lo := 1
	for _, g := range px.gaps {
		runs = append(runs, &runCurve{lo: lo, hi: g})
		lo = g + 1
	}
	runs = append(runs, &runCurve{lo: lo, hi: n})

	// Compute each run's error curve up to min(len, c) concurrently.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make([]error, len(runs))
	for i, rc := range runs {
		wg.Add(1)
		go func(i int, rc *runCurve) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = rc.compute(seq, c, opts)
		}(i, rc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Allocate the budget over runs: A[k] after r runs = minimal error of
	// spending k tuples on the first r runs (every run needs ≥ 1).
	const unset = -1
	prev := make([]float64, c+1)
	cur := make([]float64, c+1)
	choice := make([][]int32, len(runs)) // choice[r][k] = tuples given to run r
	for k := range prev {
		prev[k] = Inf
	}
	prev[0] = 0
	minNeeded := 0
	for r, rc := range runs {
		choice[r] = make([]int32, c+1)
		for k := range cur {
			cur[k] = Inf
			choice[r][k] = unset
		}
		maxLen := len(rc.curve)
		minNeeded++ // every run contributes ≥ 1 tuple
		for k := minNeeded; k <= c; k++ {
			for j := 1; j <= maxLen && j < k+1; j++ {
				if prev[k-j] == Inf {
					continue
				}
				if e := prev[k-j] + rc.curve[j-1]; e < cur[k] {
					cur[k] = e
					choice[r][k] = int32(j)
				}
			}
		}
		prev, cur = cur, prev
	}
	total := prev[c]

	// Reconstruct: walk choices backwards, then each run's own splits.
	alloc := make([]int, len(runs))
	k := c
	for r := len(runs) - 1; r >= 0; r-- {
		j := int(choice[r][k])
		if j == unset {
			return nil, fmt.Errorf("core: internal error reconstructing parallel DP at run %d", r)
		}
		alloc[r] = j
		k -= j
	}
	var rows []temporal.SeqRow
	for r, rc := range runs {
		rows = append(rows, rc.reconstruct(px, alloc[r])...)
	}
	return &DPResult{
		Sequence: seq.WithRows(rows),
		C:        c,
		Error:    total,
	}, nil
}

// compute fills the run's curve and split matrices for sizes 1..min(len, c)
// using the gap-free DP restricted to the run.
func (rc *runCurve) compute(seq *temporal.Sequence, c int, opts Options) error {
	sub := seq.WithRows(seq.Rows[rc.lo-1 : rc.hi])
	px, err := NewPrefix(sub, opts)
	if err != nil {
		return err
	}
	q := rc.hi - rc.lo + 1
	kmax := min(q, c)
	st := newDPState(px, true, true)
	rc.curve = make([]float64, kmax)
	for k := 1; k <= kmax; k++ {
		rc.curve[k-1] = st.fillRow(k)
	}
	rc.splits = st.splits
	return nil
}

// reconstruct expands the run's optimal reduction to size k into rows,
// using the global prefix for the merges (indices shifted to run space).
func (rc *runCurve) reconstruct(px *Prefix, k int) []temporal.SeqRow {
	rows := make([]temporal.SeqRow, k)
	hi := rc.hi - rc.lo + 1 // run-local 1-based end
	for kk := k; kk >= 1; kk-- {
		j := int(rc.splits[kk-1][hi])
		rows[kk-1] = px.MergeRange(rc.lo+j, rc.lo+hi-1)
		hi = j
	}
	return rows
}
