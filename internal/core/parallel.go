package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/temporal"
)

// This file implements a divide-and-conquer evaluation of exact PTA that
// makes the structure behind the paper's Section 5.3 pruning explicit:
// non-adjacent tuple pairs split the relation into maximal adjacent runs
// that never interact, so
//
//  1. each run's optimal error curve can be computed independently (and
//     concurrently — a bounded worker pool with per-run scratch
//     buffers), and
//  2. the global optimum is an allocation of the size budget c over the
//     runs, found by a small dynamic program over run curves:
//
//     A[r][k] = min over j of A[r−1][k−j] + curve_r[j].
//
// The result provably equals PTAc (property-tested); with many short runs
// it does asymptotically less work — per-run curves cost Σ O(q_r²·min(q_r,c))
// versus the monolithic scheme's larger search space — and it uses every
// core. Aggregation groups are a coarsening of runs (every group boundary
// is a run boundary), so this is also the group-parallel execution engine
// behind pta.Engine's WithParallelism. The paper's evaluation is
// single-threaded; this is an engineering extension, reported by the
// `parallel` and `engine` experiments.
//
// PTAcParallel serves size budgets; PTAeParallel computes full run curves
// and picks the smallest total size whose optimal error fits eps·SSEmax;
// DPMultiParallel (multiparallel.go) serves several budgets from one set of
// run curves. AllocateCurves/SplitAllocation/AcceptErrorBound export the
// recombination rules so distributed coordinators that gather run curves
// from remote workers recombine them with exactly the in-process
// tie-breaks.

// runCurve is one maximal adjacent run with its reduction error curve and
// the split matrices needed to reconstruct any reduction size. The DP fill
// state is retained across computeCurves rounds, so iterative deepening and
// multi-budget evaluation extend a curve row by row instead of recomputing
// it from scratch.
type runCurve struct {
	lo, hi int // 1-based row bounds of the run, inclusive
	curve  []float64
	splits [][]int32

	st *dpState // retained fill state; owns private buffers
}

// decomposeRuns cuts the relation into its maximal adjacent runs.
func decomposeRuns(kn *CostKernel) []*runCurve {
	var runs []*runCurve
	lo := 1
	for _, g := range kn.gaps {
		runs = append(runs, &runCurve{lo: lo, hi: g})
		lo = g + 1
	}
	runs = append(runs, &runCurve{lo: lo, hi: kn.n})
	return runs
}

// computeCurves fills every run's error curve up to min(run length, kcap) on
// a pool of workers goroutines (0 = GOMAXPROCS). Curves that are already
// long enough are untouched; shorter ones extend from their retained DP
// state, so deepening rounds and multi-budget passes pay only for the new
// rows. Each run owns a private Scratch, so the caller's Options.Scratch is
// never shared across goroutines.
func computeCurves(seq *temporal.Sequence, runs []*runCurve, kcap int, opts Options, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(runs))
	jobs := make(chan int)
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = runs[i].extend(seq, kcap, opts)
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// curveStats sums the DP fill counters across runs — the aggregate cost of
// the curves backing one parallel evaluation.
func curveStats(runs []*runCurve) DPStats {
	var st DPStats
	for _, rc := range runs {
		if rc.st != nil {
			st.Cells += rc.st.stats.Cells
			st.InnerIters += rc.st.stats.InnerIters
		}
	}
	return st
}

// AllocateCurves spends total sizes 1..kmax over per-run error curves with
// the combination DP A[r][k] = min over j of A[r−1][k−j] + curve_r[j],
// taking the smallest j on ties (strict improvement only). It returns the
// final row (the minimal total error of reducing the whole relation to k
// tuples; Inf where infeasible) and the per-run choice matrices consumed by
// SplitAllocation. Exported so distributed coordinators that gather run
// curves from remote workers recombine them with exactly the in-process
// tie-breaks.
func AllocateCurves(curves [][]float64, kmax int) (final []float64, choice [][]int32) {
	const unset = -1
	prev := make([]float64, kmax+1)
	cur := make([]float64, kmax+1)
	choice = make([][]int32, len(curves)) // choice[r][k] = tuples given to run r
	for k := range prev {
		prev[k] = Inf
	}
	prev[0] = 0
	minNeeded := 0
	for r, curve := range curves {
		choice[r] = make([]int32, kmax+1)
		for k := range cur {
			cur[k] = Inf
			choice[r][k] = unset
		}
		maxLen := len(curve)
		minNeeded++ // every run contributes ≥ 1 tuple
		for k := minNeeded; k <= kmax; k++ {
			for j := 1; j <= maxLen && j < k+1; j++ {
				if prev[k-j] == Inf {
					continue
				}
				if e := prev[k-j] + curve[j-1]; e < cur[k] {
					cur[k] = e
					choice[r][k] = int32(j)
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev, choice
}

// SplitAllocation walks the choice matrices of AllocateCurves backwards from
// a total size k and returns how many tuples each run receives (the entries
// sum to k).
func SplitAllocation(choice [][]int32, k int) ([]int, error) {
	const unset = -1
	alloc := make([]int, len(choice))
	for r := len(choice) - 1; r >= 0; r-- {
		j := int(choice[r][k])
		if j == unset {
			return nil, fmt.Errorf("core: internal error reconstructing parallel DP at run %d", r)
		}
		alloc[r] = j
		k -= j
	}
	return alloc, nil
}

// AcceptErrorBound widens an error-budget acceptance threshold by the
// relative-and-absolute tolerance every error-bounded evaluator in this
// package applies, so "the error fits the bound" means the same thing
// in-process and across a wire.
func AcceptErrorBound(bound, maxErr float64) float64 {
	return acceptErrorBound(bound, maxErr)
}

// allocateRuns is AllocateCurves over the runs' own curves.
func allocateRuns(runs []*runCurve, kmax int) (final []float64, choice [][]int32) {
	curves := make([][]float64, len(runs))
	for r, rc := range runs {
		curves[r] = rc.curve
	}
	return AllocateCurves(curves, kmax)
}

// reconstructRuns walks the choice matrices backwards from a total size k
// and expands each run's own splits into rows.
func reconstructRuns(kn *CostKernel, runs []*runCurve, choice [][]int32, k int) ([]temporal.SeqRow, error) {
	alloc, err := SplitAllocation(choice, k)
	if err != nil {
		return nil, err
	}
	var rows []temporal.SeqRow
	for r, rc := range runs {
		rows = append(rows, rc.reconstruct(kn, alloc[r])...)
	}
	return rows, nil
}

// PTAcParallel evaluates size-bounded PTA exactly, decomposing the work
// over maximal adjacent runs and computing run curves on workers goroutines
// (0 = GOMAXPROCS). It returns the same optimal reduction as PTAc.
func PTAcParallel(seq *temporal.Sequence, c int, opts Options, workers int) (*DPResult, error) {
	n := seq.Len()
	if n == 0 {
		if c != 0 {
			return nil, fmt.Errorf("core: size bound %d for an empty relation", c)
		}
		return &DPResult{Sequence: seq.WithRows(nil), C: 0}, nil
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	cmin := kn.CMin()
	if c < cmin {
		return nil, &InfeasibleSizeError{C: c, CMin: cmin}
	}
	if c >= n {
		return &DPResult{Sequence: seq.Clone(), C: n}, nil
	}

	runs := decomposeRuns(kn)
	// A total size of c leaves any single run at most c−R+1 tuples (every
	// other run keeps ≥ 1), so longer per-run curves can never be chosen —
	// the same truncation the error-bounded deepening relies on.
	if err := computeCurves(seq, runs, c-len(runs)+1, opts, workers); err != nil {
		return nil, err
	}
	final, choice := allocateRuns(runs, c)
	rows, err := reconstructRuns(kn, runs, choice, c)
	if err != nil {
		return nil, err
	}
	return &DPResult{
		Sequence: seq.WithRows(rows),
		C:        c,
		Error:    final[c],
		Stats:    curveStats(runs),
	}, nil
}

// PTAeParallel evaluates error-bounded PTA exactly with the same run
// decomposition: every run's full error curve is computed concurrently, the
// combination DP yields the optimal error for every total size, and the
// smallest size whose error fits eps·SSEmax wins — the same minimization as
// PTAe (Definition 7), parallel over runs.
func PTAeParallel(seq *temporal.Sequence, eps float64, opts Options, workers int) (*DPResult, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: error bound %v outside [0, 1]", eps)
	}
	n := seq.Len()
	if n == 0 {
		return &DPResult{Sequence: seq.WithRows(nil), C: 0}, nil
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	maxErr := kn.MaxError()
	accept := acceptErrorBound(eps*maxErr, maxErr)

	// Iterative deepening preserves the serial evaluator's early exit: a
	// total size of K needs per-run curves only up to K−R+1 (every other
	// run keeps ≥ 1 tuple), so loose bounds that stop at small K never pay
	// for full curves. Each failed round doubles K and extends the retained
	// per-run curves in place; the geometric growth bounds total work at a
	// small constant of the final round's.
	runs := decomposeRuns(kn)
	R := len(runs)
	for K := min(n, R+63); ; K = min(n, 2*K) {
		if err := computeCurves(seq, runs, K-R+1, opts, workers); err != nil {
			return nil, err
		}
		final, choice := allocateRuns(runs, K)
		for k := R; k <= K; k++ {
			if final[k] <= accept {
				// Curves cover every size ≤ K, so k is the exact minimum.
				rows, err := reconstructRuns(kn, runs, choice, k)
				if err != nil {
					return nil, err
				}
				return &DPResult{
					Sequence: seq.WithRows(rows),
					C:        k,
					Error:    final[k],
					Stats:    curveStats(runs),
				}, nil
			}
		}
		if K == n {
			// A[n] = 0 ≤ bound always triggers; reaching this point means
			// the curve combination is broken.
			panic("core: error-bounded parallel DP did not terminate")
		}
	}
}

// extend grows the run's curve and split matrices to sizes 1..min(len, c)
// using the gap-free DP restricted to the run, resuming from the retained
// state when the curve is partially filled. The split rows must outlive
// this call (reconstruction happens after all runs finish) and the state
// must survive across rounds that may land on different worker goroutines,
// so both use private allocations — never a caller- or worker-shared
// Scratch.
func (rc *runCurve) extend(seq *temporal.Sequence, c int, opts Options) error {
	q := rc.hi - rc.lo + 1
	kmax := min(q, c)
	if len(rc.curve) >= kmax {
		return nil
	}
	if rc.st == nil {
		sub := seq.WithRows(seq.Rows[rc.lo-1 : rc.hi])
		sopts := opts
		sopts.Scratch = &Scratch{} // private: retained by the state
		kn, err := NewKernel(sub, sopts)
		if err != nil {
			return err
		}
		rc.st = newDPState(kn, sopts, true, true, true)
		rc.st.ownSplits = true
	}
	for k := len(rc.curve) + 1; k <= kmax; k++ {
		e, err := rc.st.fillRow(k)
		if err != nil {
			return err
		}
		rc.curve = append(rc.curve, e)
	}
	rc.splits = rc.st.splits
	return nil
}

// reconstruct expands the run's optimal reduction to size k into rows,
// using the global prefix for the merges (indices shifted to run space).
func (rc *runCurve) reconstruct(kn *CostKernel, k int) []temporal.SeqRow {
	rows := make([]temporal.SeqRow, k)
	hi := rc.hi - rc.lo + 1 // run-local 1-based end
	for kk := k; kk >= 1; kk-- {
		j := int(rc.splits[kk-1][hi])
		rows[kk-1] = kn.MergeRange(rc.lo+j, rc.lo+hi-1)
		hi = j
	}
	return rows
}
