package core

import (
	"fmt"
	"sort"

	"repro/internal/temporal"
)

// Prefix holds the auxiliary structures of Section 5.2 for a sequential
// relation s of size n with p aggregate attributes:
//
//	S[d][i]  = Σ_{j≤i} |s_j.T| · s_j.B_d        (length-weighted value sums)
//	SS[d][i] = Σ_{j≤i} |s_j.T| · s_j.B_d²       (length-weighted square sums)
//	L[i]     = Σ_{j≤i} |s_j.T|                   (timestamp lengths)
//	G        = positions of non-adjacent tuple pairs (the gap vector)
//
// With them the error of merging any gap-free run s_i..s_j into one tuple is
// computed in O(p) time (Proposition 1). Building a Prefix costs O(np) time
// and space; in the paper this work is folded into the ITA scan.
type Prefix struct {
	seq  *temporal.Sequence
	n, p int
	w2   []float64
	s    [][]float64 // [p][n+1], index 0 is the empty prefix
	ss   [][]float64
	l    []int64
	gaps []int // 1-based positions l with s_l ⊀ s_{l+1}, ascending
}

// NewPrefix validates the sequence and the options and builds the prefix
// structures.
func NewPrefix(seq *temporal.Sequence, opts Options) (*Prefix, error) {
	w2, err := opts.weightsSquared(seq.P())
	if err != nil {
		return nil, err
	}
	n, p := seq.Len(), seq.P()
	px := &Prefix{
		seq:  seq,
		n:    n,
		p:    p,
		w2:   w2,
		s:    make([][]float64, p),
		ss:   make([][]float64, p),
		l:    make([]int64, n+1),
		gaps: seq.GapPositions(),
	}
	for d := 0; d < p; d++ {
		px.s[d] = make([]float64, n+1)
		px.ss[d] = make([]float64, n+1)
	}
	for i := 1; i <= n; i++ {
		row := seq.Rows[i-1]
		length := float64(row.T.Len())
		px.l[i] = px.l[i-1] + row.T.Len()
		for d := 0; d < p; d++ {
			v := row.Aggs[d]
			px.s[d][i] = px.s[d][i-1] + length*v
			px.ss[d][i] = px.ss[d][i-1] + length*v*v
		}
	}
	return px, nil
}

// N returns the sequence size n.
func (px *Prefix) N() int { return px.n }

// P returns the number of aggregate attributes p.
func (px *Prefix) P() int { return px.p }

// Sequence returns the underlying sequential relation.
func (px *Prefix) Sequence() *temporal.Sequence { return px.seq }

// Gaps returns the gap vector G: the ascending 1-based positions l at which
// rows l and l+1 are non-adjacent.
func (px *Prefix) Gaps() []int { return px.gaps }

// CMin returns the smallest reachable reduction size (number of maximal
// adjacent runs).
func (px *Prefix) CMin() int {
	if px.n == 0 {
		return 0
	}
	return len(px.gaps) + 1
}

// SSERange returns the error of merging the (assumed gap-free) run
// s_i..s_j into one tuple, per Proposition 1. Indices are 1-based and
// inclusive, 1 ≤ i ≤ j ≤ n.
func (px *Prefix) SSERange(i, j int) float64 {
	if i == j {
		return 0 // a single tuple merges into itself without error
	}
	length := float64(px.l[j] - px.l[i-1])
	var sse float64
	for d := 0; d < px.p; d++ {
		sv := px.s[d][j] - px.s[d][i-1]
		sse += px.w2[d] * (px.ss[d][j] - px.ss[d][i-1] - sv*sv/length)
	}
	// Guard against tiny negative residues from cancellation.
	if sse < 0 {
		return 0
	}
	return sse
}

// HasGap reports whether the run s_i..s_j (1-based, inclusive) contains at
// least one non-adjacent pair.
func (px *Prefix) HasGap(i, j int) bool {
	if i >= j {
		return false
	}
	// The run has a gap iff some gap position l satisfies i ≤ l < j.
	k := sort.SearchInts(px.gaps, i)
	return k < len(px.gaps) && px.gaps[k] < j
}

// RightmostGapBefore returns the largest gap position strictly smaller than
// i, or 0 when there is none. It is the j_min bound of Section 5.3.
func (px *Prefix) RightmostGapBefore(i int) int {
	k := sort.SearchInts(px.gaps, i)
	if k == 0 {
		return 0
	}
	return px.gaps[k-1]
}

// SSEMergeAll returns the error of merging s_i..s_j into one tuple, or Inf
// when the run crosses a gap or group boundary.
func (px *Prefix) SSEMergeAll(i, j int) float64 {
	if px.HasGap(i, j) {
		return Inf
	}
	return px.SSERange(i, j)
}

// MaxError returns SSEmax = SSE(s, ρ(s, cmin)): the error of the maximal
// reduction that merges every maximal adjacent run into a single tuple.
func (px *Prefix) MaxError() float64 {
	if px.n == 0 {
		return 0
	}
	var total float64
	start := 1
	for _, g := range px.gaps {
		total += px.SSERange(start, g)
		start = g + 1
	}
	total += px.SSERange(start, px.n)
	return total
}

// MergeRange builds the tuple s_i ⊕ ... ⊕ s_j (1-based, inclusive): the
// grouping values of s_i, the concatenated timestamp, and length-weighted
// average aggregate values (Definition 3 applied associatively).
func (px *Prefix) MergeRange(i, j int) temporal.SeqRow {
	px.validateBounds(i, j)
	first, last := px.seq.Rows[i-1], px.seq.Rows[j-1]
	length := float64(px.l[j] - px.l[i-1])
	aggs := make([]float64, px.p)
	for d := 0; d < px.p; d++ {
		aggs[d] = (px.s[d][j] - px.s[d][i-1]) / length
	}
	return temporal.SeqRow{
		Group: first.Group,
		Aggs:  aggs,
		T:     temporal.Interval{Start: first.T.Start, End: last.T.End},
	}
}

// validateBounds panics on malformed 1-based run bounds; exported entry
// points validate their arguments instead, so this is a defensive check for
// internal callers only.
func (px *Prefix) validateBounds(i, j int) {
	if i < 1 || j > px.n || i > j {
		panic(fmt.Sprintf("core: run bounds [%d, %d] out of range 1..%d", i, j, px.n))
	}
}
