package core

import "repro/internal/temporal"

// This file implements the first item of the paper's future work
// (Section 8): "we will explore the possibility of merging tuples separated
// by temporal gaps". Gap-bridging merging relaxes Definition 2: two tuples
// of the same aggregation group may merge even when a temporal gap separates
// them. The merged tuple's timestamp spans the gap, but its aggregate values
// and its error contribution are weighted by the chronons the constituents
// actually cover — the gap itself carries no data and no error. The greedy
// strategy carries the covered length alongside each node for that purpose.

// bridgeNode augments the heap node with the covered (non-gap) length.
type bridgeNode struct {
	id   int
	row  temporal.SeqRow
	cov  float64 // Σ|T| of the constituents, excluding bridged gaps
	prev *bridgeNode
	next *bridgeNode
	key  float64
	hpos int
}

// bridgeHeap is a binary min-heap over bridge nodes, ordered like mergeHeap.
type bridgeHeap struct{ ns []*bridgeNode }

func (h *bridgeHeap) len() int { return len(h.ns) }
func (h *bridgeHeap) peek() *bridgeNode {
	if len(h.ns) == 0 {
		return nil
	}
	return h.ns[0]
}

func bridgeLess(a, b *bridgeNode) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.row.T.Start != b.row.T.Start {
		return a.row.T.Start < b.row.T.Start
	}
	return a.id < b.id
}

func (h *bridgeHeap) swap(i, j int) {
	h.ns[i], h.ns[j] = h.ns[j], h.ns[i]
	h.ns[i].hpos = i
	h.ns[j].hpos = j
}

func (h *bridgeHeap) push(n *bridgeNode) {
	n.hpos = len(h.ns)
	h.ns = append(h.ns, n)
	h.up(n.hpos)
}

func (h *bridgeHeap) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !bridgeLess(h.ns[i], h.ns[p]) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

func (h *bridgeHeap) down(i int) {
	n := len(h.ns)
	for {
		l, r, best := 2*i+1, 2*i+2, i
		if l < n && bridgeLess(h.ns[l], h.ns[best]) {
			best = l
		}
		if r < n && bridgeLess(h.ns[r], h.ns[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *bridgeHeap) fix(n *bridgeNode) {
	if !h.up(n.hpos) {
		h.down(n.hpos)
	}
}

func (h *bridgeHeap) remove(n *bridgeNode) {
	i := n.hpos
	last := len(h.ns) - 1
	h.swap(i, last)
	h.ns = h.ns[:last]
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
	n.hpos = -1
}

// bridgeDsim is the covered-length-weighted dissimilarity: the SSE increase
// of merging a and b over the chronons they actually cover.
func bridgeDsim(a, b *bridgeNode, w2 []float64) float64 {
	factor := a.cov * b.cov / (a.cov + b.cov)
	var sse float64
	for d := range a.row.Aggs {
		diff := a.row.Aggs[d] - b.row.Aggs[d]
		sse += w2[d] * factor * diff * diff
	}
	return sse
}

// GMSBridged evaluates size-bounded PTA greedily while also allowing merges
// across temporal gaps within one aggregation group (never across groups).
// With gap bridging, cmin drops to the number of aggregation groups, so
// results smaller than the classic cmin become reachable; the price is that
// merged timestamps cover chronons where no input tuple holds. Reported
// error weights every constituent by its own covered length.
func GMSBridged(seq *temporal.Sequence, c int, opts Options) (*GreedyResult, error) {
	if err := validateSizeBound(seq, c); err != nil {
		return nil, err
	}
	w2, err := opts.weightsSquared(seq.P())
	if err != nil {
		return nil, err
	}
	var (
		h       bridgeHeap
		tail    *bridgeNode
		maxHeap int
	)
	for i, row := range seq.Rows {
		if i%cancelCheckCells == 0 {
			if err := opts.canceled(); err != nil {
				return nil, err
			}
		}
		n := &bridgeNode{id: i + 1, row: row.CloneAggs(), cov: float64(row.T.Len()), key: Inf}
		if tail != nil {
			n.prev = tail
			tail.next = n
			if tail.row.Group == row.Group {
				n.key = bridgeDsim(tail, n, w2)
			}
		}
		tail = n
		h.push(n)
		if h.len() > maxHeap {
			maxHeap = h.len()
		}
	}

	var totalError float64
	var merges int
	for h.len() > c {
		n := h.peek()
		if n == nil || n.key == Inf {
			break
		}
		if merges%cancelCheckCells == 0 {
			if err := opts.canceled(); err != nil {
				return nil, err
			}
		}
		p := n.prev
		totalError += n.key
		merges++
		// Covered-length-weighted merge; the timestamp spans any gap.
		total := p.cov + n.cov
		for d := range p.row.Aggs {
			p.row.Aggs[d] = (p.cov*p.row.Aggs[d] + n.cov*n.row.Aggs[d]) / total
		}
		p.row.T.End = n.row.T.End
		p.cov = total
		p.next = n.next
		if n.next != nil {
			n.next.prev = p
		} else {
			tail = p
		}
		h.remove(n)
		if p.prev != nil && p.prev.row.Group == p.row.Group {
			p.key = bridgeDsim(p.prev, p, w2)
		} else {
			p.key = Inf
		}
		h.fix(p)
		if s := p.next; s != nil {
			if s.row.Group == p.row.Group {
				s.key = bridgeDsim(p, s, w2)
			} else {
				s.key = Inf
			}
			h.fix(s)
		}
	}

	var head *bridgeNode
	for n := tail; n != nil; n = n.prev {
		head = n
	}
	var rows []temporal.SeqRow
	for n := head; n != nil; n = n.next {
		rows = append(rows, n.row)
	}
	out := seq.WithRows(rows)
	return &GreedyResult{
		Sequence: out,
		C:        len(rows),
		Error:    totalError,
		Merges:   merges,
		MaxHeap:  maxHeap,
	}, nil
}

// GroupCount returns the number of maximal same-group runs of the sequence —
// the cmin reachable once gap bridging is allowed.
func GroupCount(seq *temporal.Sequence) int {
	if seq.Len() == 0 {
		return 0
	}
	count := 1
	for i := 1; i < seq.Len(); i++ {
		if seq.Rows[i].Group != seq.Rows[i-1].Group {
			count++
		}
	}
	return count
}
