package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// mixedSequence builds long monotone stretches (sorted per dimension, each
// comfortably above fillSegmentMin) interleaved with short strictly
// alternating stretches, with optional temporal gaps between blocks:
// whole-run certification fails on every run containing noise, while the
// piecewise segmentation recovers the monotone stretches, so the
// per-segment dispatch genuinely engages next to in-row scan completion.
func mixedSequence(rng *rand.Rand, blocks, p int, gapProb float64) *temporal.Sequence {
	names := make([]string, p)
	for d := range names {
		names[d] = "v" + string(rune('0'+d))
	}
	seq := temporal.NewSequence(nil, names)
	gid := seq.Groups.Intern(nil)
	tcur := temporal.Chronon(0)
	emit := func(aggs []float64) {
		length := temporal.Chronon(1 + rng.Intn(3))
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: aggs,
			T: temporal.Interval{Start: tcur, End: tcur + length - 1}})
		tcur += length
	}
	for bl := 0; bl < blocks; bl++ {
		if bl > 0 && rng.Float64() < gapProb {
			tcur += temporal.Chronon(1 + rng.Intn(3))
		}
		if bl%2 == 0 {
			// Monotone block: sorted random values, direction per dimension.
			m := fillSegmentMin + 4 + rng.Intn(20)
			vals := make([][]float64, p)
			for d := range vals {
				vs := make([]float64, m)
				for r := range vs {
					vs[r] = math.Round(rng.Float64()*1000) / 10
				}
				sortFloat64s(vs)
				if rng.Intn(2) == 0 {
					for a, b := 0, m-1; a < b; a, b = a+1, b-1 {
						vs[a], vs[b] = vs[b], vs[a]
					}
				}
				vals[d] = vs
			}
			for r := 0; r < m; r++ {
				aggs := make([]float64, p)
				for d := range aggs {
					aggs[d] = vals[d][r]
				}
				emit(aggs)
			}
			continue
		}
		// Noise block: strictly alternating excursions in every dimension,
		// so no three consecutive rows are monotone.
		m := 3 + rng.Intn(5)
		sign := 1.0
		for r := 0; r < m; r++ {
			aggs := make([]float64, p)
			for d := range aggs {
				aggs[d] = math.Round((50+sign*(10+rng.Float64()*30))*10) / 10
			}
			sign = -sign
			emit(aggs)
		}
	}
	return seq
}

// flipSequence builds adversarial direction-flip data: back-to-back ramps of
// alternating direction with no noise or gaps in between, so every ramp
// boundary is exactly one direction change and the segmentation must cut at
// each of them.
func flipSequence(rng *rand.Rand, ramps, p int) *temporal.Sequence {
	names := make([]string, p)
	for d := range names {
		names[d] = "v" + string(rune('0'+d))
	}
	seq := temporal.NewSequence(nil, names)
	gid := seq.Groups.Intern(nil)
	t := temporal.Chronon(0)
	level := 500.0
	up := true
	for rp := 0; rp < ramps; rp++ {
		m := fillSegmentMin + rng.Intn(24)
		for r := 0; r < m; r++ {
			step := 1 + math.Round(rng.Float64()*90)/10
			if up {
				level += step
			} else {
				level -= step
			}
			aggs := make([]float64, p)
			for d := range aggs {
				aggs[d] = level + float64(d)
			}
			seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: aggs,
				T: temporal.Inst(t)})
			t++
		}
		up = !up
	}
	return seq
}

func sortFloat64s(vs []float64) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// TestMonotoneSegmentsUnit pins the segmentation on hand-built shapes:
// direction changes split, plateaus extend either direction, gaps always
// start a new segment, and MonotoneRuns is exactly "one segment per run".
func TestMonotoneSegmentsUnit(t *testing.T) {
	build := func(vals []float64, gapAfter int) *CostKernel {
		seq := temporal.NewSequence(nil, []string{"v"})
		gid := seq.Groups.Intern(nil)
		tcur := temporal.Chronon(0)
		for i, v := range vals {
			if i == gapAfter {
				tcur += 2
			}
			seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid,
				Aggs: []float64{v}, T: temporal.Inst(tcur)})
			tcur++
		}
		kn, err := NewKernel(seq, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return kn
	}
	cases := []struct {
		name     string
		vals     []float64
		gapAfter int // 0-based row index that starts after a gap; -1 for none
		want     []int32
		runs     bool
	}{
		{"ascending", []float64{1, 2, 3, 4}, -1, []int32{1}, true},
		{"peak", []float64{1, 2, 3, 2, 1, 5}, -1, []int32{1, 4, 6}, false},
		{"plateau", []float64{1, 5, 5, 2, 3}, -1, []int32{1, 4}, false},
		{"flat", []float64{5, 5, 5}, -1, []int32{1}, true},
		{"gap-starts-segment", []float64{1, 2, 3, 3, 2, 5}, 3, []int32{1, 4, 6}, false},
		{"monotone-runs-with-gap", []float64{1, 2, 3, 9, 7, 5}, 3, []int32{1, 4}, true},
	}
	for _, tc := range cases {
		kn := build(tc.vals, tc.gapAfter)
		if got := kn.MonotoneSegments(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: segments = %v, want %v", tc.name, got, tc.want)
		}
		if got := kn.MonotoneRuns(); got != tc.runs {
			t.Errorf("%s: MonotoneRuns = %v, want %v", tc.name, got, tc.runs)
		}
	}
}

// TestMonotoneCoverage pins the coverage metric against fillSegmentMin: only
// segments long enough for the dispatch to engage count as covered.
func TestMonotoneCoverage(t *testing.T) {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	// 2·fillSegmentMin ascending rows, then strict alternation for
	// fillSegmentMin rows: exactly the first segment is covered. The first
	// alternation row still extends the ascending segment (it rises above
	// the ramp), so the covered segment has 2·fillSegmentMin+1 rows.
	n := 0
	add := func(v float64) {
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid,
			Aggs: []float64{v}, T: temporal.Inst(temporal.Chronon(n))})
		n++
	}
	for i := 0; i < 2*fillSegmentMin; i++ {
		add(float64(i))
	}
	for i := 0; i < fillSegmentMin; i++ {
		if i%2 == 0 {
			add(1000)
		} else {
			add(-1000)
		}
	}
	kn, err := NewKernel(seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2*fillSegmentMin+1) / float64(n)
	if got := kn.MonotoneCoverage(); got != want {
		t.Fatalf("coverage = %v, want %v (segments %v)", got, want, kn.MonotoneSegments())
	}
	if kn.MonotoneRuns() {
		t.Fatal("mixed shape certified as whole-run monotone")
	}
}

// TestMonotoneSegmentsConcurrent is the -race regression test for lazy
// certification: many goroutines share one kernel — some through
// DPMultiKernel (the Engine.CompressMany sharing pattern), some calling the
// certification accessors directly — and must observe one consistent
// segmentation with no data race (the kernel computes it under a
// sync.Once).
func TestMonotoneSegmentsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	seq := mixedSequence(rng, 9, 2, 0.4)
	kn, err := NewKernel(seq, Options{Fill: FillDC})
	if err != nil {
		t.Fatal(err)
	}
	budgets := []MultiBudget{{C: kn.CMin()}, {Eps: 0.2}, {C: min(kn.CMin()+8, kn.N())}}
	want, err := DPMultiKernel(kn, budgets, Options{Fill: FillDC}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				segs := kn.MonotoneSegments()
				_ = kn.MonotoneRuns()
				if kn.MonotoneCoverage() == 0 || len(segs) == 0 {
					errs <- errMixedNotCovered
					return
				}
				return
			}
			got, err := DPMultiKernel(kn, budgets, Options{Fill: FillDC}, true, true)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				if got[i].C != want[i].C ||
					math.Float64bits(got[i].Error) != math.Float64bits(want[i].Error) {
					errs <- errMultiDiverged
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var (
	errMixedNotCovered = errors.New("shared kernel: mixed data lost its certified segments")
	errMultiDiverged   = errors.New("shared kernel: concurrent DPMultiKernel diverged")
)

// TestFillPropPiecewiseBitwiseIdentical: on mixed-shape data — where
// whole-run certification fails but segments qualify — the per-segment
// monotone fills must genuinely engage (no demotion to the scan) and still
// reproduce the pruned scan's E and J matrices bit for bit, under every
// pruning-flag combination.
func TestFillPropPiecewiseBitwiseIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := 3 + rng.Intn(4)
		p := 1 + rng.Intn(3)
		seq := mixedSequence(rng, blocks, p, []float64{0, 0.3, 0.6}[rng.Intn(3)])
		opts := Options{}
		if rng.Intn(2) == 0 {
			w := make([]float64, p)
			for d := range w {
				w[d] = 0.25 + rng.Float64()*3
			}
			opts.Weights = w
		}
		kn, err := NewKernel(seq, opts)
		if err != nil {
			t.Fatal(err)
		}
		if kn.MonotoneRuns() {
			t.Fatalf("seed %d: mixedSequence certified whole-run monotone", seed)
		}
		if kn.MonotoneCoverage() == 0 {
			t.Fatalf("seed %d: mixedSequence has no eligible segment", seed)
		}
		n := seq.Len()
		c := 1 + rng.Intn(n)
		ok := true
		for _, flags := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
			baseOpts := opts
			baseOpts.Fill = FillPruned
			wantE, wantJ := fillMatrices(t, kn, baseOpts, flags[0], flags[1], c)
			for _, algo := range monotoneFills {
				algoOpts := opts
				algoOpts.Fill = algo
				if st := newDPState(kn, algoOpts, flags[0], flags[1], false); st.algo != algo {
					t.Fatalf("seed %d: %v demoted to %v on covered mixed data", seed, algo, st.algo)
				}
				gotE, gotJ := fillMatrices(t, kn, algoOpts, flags[0], flags[1], c)
				if !matricesBitwiseEqual(t, "piecewise "+algo.String(), wantE, gotE, wantJ, gotJ) {
					t.Logf("seed=%d n=%d p=%d c=%d pruneI=%v pruneJ=%v", seed, n, p, c, flags[0], flags[1])
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFillPropAdversarialFlips repeats the bitwise check on back-to-back
// ramps of alternating direction — every block boundary is a direction flip,
// the worst case for the segment-boundary completion scan.
func TestFillPropAdversarialFlips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := flipSequence(rng, 2+rng.Intn(4), 1+rng.Intn(2))
		kn, err := NewKernel(seq, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if kn.MonotoneRuns() {
			t.Fatalf("seed %d: flipSequence certified whole-run monotone", seed)
		}
		if kn.MonotoneCoverage() == 0 {
			t.Fatalf("seed %d: flipSequence has no eligible segment", seed)
		}
		n := seq.Len()
		c := 1 + rng.Intn(n)
		wantE, wantJ := fillMatrices(t, kn, Options{Fill: FillPruned}, true, true, c)
		ok := true
		for _, algo := range monotoneFills {
			gotE, gotJ := fillMatrices(t, kn, Options{Fill: algo}, true, true, c)
			if !matricesBitwiseEqual(t, "flips "+algo.String(), wantE, gotE, wantJ, gotJ) {
				t.Logf("seed=%d n=%d c=%d segments=%v", seed, n, c, kn.MonotoneSegments())
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFillPiecewiseReconstructions: the full evaluators agree on mixed-shape
// data under every fill algorithm — reconstructions, sizes, and bit-equal
// errors, including the exact tie bounds eps = 0 and eps = 1.
func TestFillPiecewiseReconstructions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := mixedSequence(rng, 3+rng.Intn(3), 1+rng.Intn(2), 0.3)
		kn, _ := NewKernel(seq, Options{})
		cmin := kn.CMin()
		n := seq.Len()
		c := cmin + rng.Intn(n-cmin+1)
		for _, eps := range []float64{0, rng.Float64(), 1} {
			want, err := PTAe(seq, eps, Options{Fill: FillPruned})
			if err != nil {
				t.Fatalf("PTAe: %v", err)
			}
			for _, algo := range monotoneFills {
				got, err := PTAe(seq, eps, Options{Fill: algo})
				if err != nil {
					t.Fatalf("PTAe(%v): %v", algo, err)
				}
				if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
					!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
					t.Errorf("PTAe eps=%v algo=%v diverged (seed %d)", eps, algo, seed)
					return false
				}
			}
		}
		want, err := PTAc(seq, c, Options{Fill: FillPruned})
		if err != nil {
			t.Fatalf("PTAc: %v", err)
		}
		for _, algo := range monotoneFills {
			got, err := PTAc(seq, c, Options{Fill: algo})
			if err != nil {
				t.Fatalf("PTAc(%v): %v", algo, err)
			}
			if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
				!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
				t.Errorf("PTAc c=%d algo=%v diverged (seed %d)", c, algo, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFillPiecewiseParallel: the run-decomposed parallel evaluators agree
// with the serial ones on mixed-shape data under every fill algorithm
// (exercised with -race in CI — each worker builds and certifies its own
// run kernel concurrently).
func TestFillPiecewiseParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		seq := mixedSequence(rng, 4+rng.Intn(4), 1+rng.Intn(2), 0.5)
		kn, _ := NewKernel(seq, Options{})
		c := kn.CMin() + rng.Intn(seq.Len()-kn.CMin()+1)
		eps := rng.Float64()
		for _, algo := range []FillAlgo{FillPruned, FillDC, FillSMAWK} {
			opts := Options{Fill: algo}
			want, err := PTAc(seq, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PTAcParallel(seq, c, opts, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-9*(1+want.Error) ||
				!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
				t.Fatalf("trial %d algo %v: parallel size diverged", trial, algo)
			}
			wantE, err := PTAe(seq, eps, opts)
			if err != nil {
				t.Fatal(err)
			}
			gotE, err := PTAeParallel(seq, eps, opts, 4)
			if err != nil {
				t.Fatal(err)
			}
			if gotE.C != wantE.C {
				t.Fatalf("trial %d algo %v: parallel error-bounded C=%d, want %d",
					trial, algo, gotE.C, wantE.C)
			}
		}
	}
}
