package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ita"
)

// runningExample computes the ITA result of the paper's proj relation.
func runningExample() (*ita.Iterator, error) {
	return ita.NewIterator(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
}

// ExamplePTAc reduces the running example to the best four tuples
// (Fig. 1(d) of the paper).
func ExamplePTAc() {
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		panic(err)
	}
	res, err := core.PTAc(seq, 4, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("reduced %d -> %d tuples, error %.2f\n", seq.Len(), res.C, res.Error)
	fmt.Print(res.Sequence)
	// Output:
	// reduced 7 -> 4 tuples, error 49166.67
	// A | 733.3 | [1, 3]
	// A | 375 | [4, 7]
	// B | 500 | [4, 5]
	// B | 500 | [7, 8]
}

// ExamplePTAe asks for the smallest result within 20% of the maximal
// merging error.
func ExamplePTAe() {
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		panic(err)
	}
	res, err := core.PTAe(seq, 0.2, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("smallest size within the bound: %d tuples\n", res.C)
	// Output:
	// smallest size within the bound: 4 tuples
}

// ExampleGPTAc streams ITA rows straight into the greedy reducer — merging
// happens while aggregation is still running.
func ExampleGPTAc() {
	it, err := runningExample()
	if err != nil {
		panic(err)
	}
	res, err := core.GPTAc(it, 3, 1, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("result %d tuples, max heap %d\n", res.C, res.MaxHeap)
	// Output:
	// result 3 tuples, max heap 5
}

// ExampleGMS shows the plain greedy merging strategy and its error ratio
// against the exact optimum (Example 17 of the paper).
func ExampleGMS() {
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		panic(err)
	}
	greedy, err := core.GMS(seq, 4, core.Options{})
	if err != nil {
		panic(err)
	}
	exact, err := core.PTAc(seq, 4, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("greedy %.0f vs optimal %.2f (ratio %.2f)\n",
		greedy.Error, exact.Error, greedy.Error/exact.Error)
	// Output:
	// greedy 63000 vs optimal 49166.67 (ratio 1.28)
}
