package core

import (
	"fmt"

	"repro/internal/temporal"
)

// RowsAdjacent reports whether row a immediately precedes row b in the sense
// of Definition 2: same aggregation group and a.T meets b.T.
func RowsAdjacent(a, b temporal.SeqRow) bool {
	return a.Group == b.Group && a.T.Meets(b.T)
}

// MergeRows computes a ⊕ b for adjacent rows (Definition 3): the grouping
// values of a, the concatenation of the timestamps, and per-dimension
// length-weighted averages of the aggregate values.
func MergeRows(a, b temporal.SeqRow) temporal.SeqRow {
	la, lb := float64(a.T.Len()), float64(b.T.Len())
	aggs := make([]float64, len(a.Aggs))
	for d := range aggs {
		aggs[d] = (la*a.Aggs[d] + lb*b.Aggs[d]) / (la + lb)
	}
	return temporal.SeqRow{
		Group: a.Group,
		Aggs:  aggs,
		T:     temporal.Interval{Start: a.T.Start, End: b.T.End},
	}
}

// Dissimilarity returns dsim(a, b) (Proposition 2): the error introduced by
// merging the adjacent rows a and b, computed from the two rows alone as
//
//	dsim(a, b) = Σ_d w_d² · |a.T|·|b.T|/(|a.T|+|b.T|) · (a.B_d − b.B_d)².
//
// The closed form is algebraically equal to SSE({a,b},{a⊕b}) and avoids the
// cancellation of the textbook three-term formula.
func Dissimilarity(a, b temporal.SeqRow, w2 []float64) float64 {
	la, lb := float64(a.T.Len()), float64(b.T.Len())
	factor := la * lb / (la + lb)
	var sse float64
	for d := range a.Aggs {
		diff := a.Aggs[d] - b.Aggs[d]
		sse += w2[d] * factor * diff * diff
	}
	return sse
}

// SSEBetween computes SSE(s, z) of Definition 5 for an arbitrary reduction
// or approximation z of s: for every pair of rows with equal grouping values
// and overlapping timestamps, the squared aggregate-value distance weighted
// by the length of the overlap. When z was produced by merging rows of s the
// overlap decomposition coincides with Definition 5 exactly; it additionally
// handles approximations whose segment boundaries do not align with s (PAA,
// APCA, wavelets, ...).
func SSEBetween(s, z *temporal.Sequence, opts Options) (float64, error) {
	if s.P() != z.P() {
		return 0, fmt.Errorf("core: dimension mismatch: %d vs %d aggregate attributes", s.P(), z.P())
	}
	w2, err := opts.weightsSquared(s.P())
	if err != nil {
		return 0, err
	}

	// Index z rows by group id in z's dictionary; group ids of s and z may
	// come from different dictionaries, so groups are matched by value.
	zRows := make(map[int32][]temporal.SeqRow)
	for _, r := range z.Rows {
		zRows[r.Group] = append(zRows[r.Group], r)
	}

	var total float64
	i := 0
	for i < len(s.Rows) {
		gid := s.Rows[i].Group
		j := i
		for j < len(s.Rows) && s.Rows[j].Group == gid {
			j++
		}
		zid, ok := z.Groups.Lookup(s.Groups.Values(gid))
		if ok {
			total += groupSSE(s.Rows[i:j], zRows[zid], w2)
		} else {
			// No counterpart: the reduction dropped the group entirely;
			// charge the full within-group variance against a zero-length
			// cover, i.e. every chronon deviates by its own value from
			// nothing. This cannot happen for reductions produced by the
			// merge operator, so treat it as the error of merging to the
			// group mean of zero.
			for _, r := range s.Rows[i:j] {
				length := float64(r.T.Len())
				for d := range r.Aggs {
					total += w2[d] * length * r.Aggs[d] * r.Aggs[d]
				}
			}
		}
		i = j
	}
	return total, nil
}

// groupSSE merges two chronologically sorted row lists of one group and
// accumulates overlap-weighted squared distances.
func groupSSE(srows, zrows []temporal.SeqRow, w2 []float64) float64 {
	var total float64
	zi := 0
	for _, sr := range srows {
		for zi < len(zrows) && zrows[zi].T.End < sr.T.Start {
			zi++
		}
		for k := zi; k < len(zrows) && zrows[k].T.Start <= sr.T.End; k++ {
			ov, ok := sr.T.Intersect(zrows[k].T)
			if !ok {
				continue
			}
			length := float64(ov.Len())
			for d := range sr.Aggs {
				diff := sr.Aggs[d] - zrows[k].Aggs[d]
				total += w2[d] * length * diff * diff
			}
		}
	}
	return total
}
