package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPTAcParallelFigure1d: the decomposed evaluator reproduces the exact
// running-example reduction.
func TestPTAcParallelFigure1d(t *testing.T) {
	seq := figure1c()
	res, err := PTAcParallel(seq, 4, Options{}, 0)
	if err != nil {
		t.Fatalf("PTAcParallel: %v", err)
	}
	approx(t, res.Error, 49166.666, 1e-2, "error")
	want, _ := PTAc(seq, 4, Options{})
	if !res.Sequence.Equal(want.Sequence, 1e-9) {
		t.Errorf("parallel result differs:\n%v\nvs\n%v", res.Sequence, want.Sequence)
	}
}

// TestPTAcParallelPropMatchesPTAc: on random gapped inputs the decomposed
// evaluator returns the same optimal error and a valid reduction, for
// several worker counts.
func TestPTAcParallelPropMatchesPTAc(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.3)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		want, err := PTAc(seq, c, Options{})
		if err != nil {
			return false
		}
		for _, workers := range []int{0, 1, 4} {
			got, err := PTAcParallel(seq, c, Options{}, workers)
			if err != nil {
				return false
			}
			if math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
				return false
			}
			if got.Sequence.Len() != c || got.Sequence.Validate() != nil {
				return false
			}
			// The reconstructed reduction must realize the reported error.
			sse, err := SSEBetween(seq, got.Sequence, Options{})
			if err != nil || math.Abs(sse-got.Error) > 1e-6*(1+sse) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPTAcParallelGapFree: a single run degenerates to the plain DP.
func TestPTAcParallelGapFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seq := randomSequence(rng, 30, 1, 0)
	for c := 1; c <= 30; c += 7 {
		got, err := PTAcParallel(seq, c, Options{}, 2)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		want, _ := PTAc(seq, c, Options{})
		if math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
			t.Errorf("c=%d: error %v vs %v", c, got.Error, want.Error)
		}
	}
}

// TestPTAcParallelBounds mirrors PTAc's argument validation.
func TestPTAcParallelBounds(t *testing.T) {
	seq := figure1c()
	if _, err := PTAcParallel(seq, 2, Options{}, 0); err == nil {
		t.Error("c below cmin should fail")
	}
	res, err := PTAcParallel(seq, 7, Options{}, 0)
	if err != nil || res.C != 7 {
		t.Errorf("c = n: %+v, %v", res, err)
	}
}

func BenchmarkPTAcMonolithic(b *testing.B) {
	seq := benchSequence(4000, 1, 0.05)
	c := max(seq.CMin(), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PTAc(seq, c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPTAcParallel(b *testing.B) {
	seq := benchSequence(4000, 1, 0.05)
	c := max(seq.CMin(), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PTAcParallel(seq, c, Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
