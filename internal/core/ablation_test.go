package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPruneModeString covers the mode names used in reports.
func TestPruneModeString(t *testing.T) {
	for m, want := range map[PruneMode]string{
		PruneNone: "none", PruneIMax: "imax", PruneJMin: "jmin", PruneBoth: "imax+jmin",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

// TestPTAcAblationPropAllModesAgree: every pruning mode computes the same
// optimal error and reduction, and work only shrinks as bounds are added.
func TestPTAcAblationPropAllModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(25), 1+rng.Intn(2), 0.25)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		var ref *DPResult
		var noneIters, bothIters int64
		for _, m := range []PruneMode{PruneNone, PruneIMax, PruneJMin, PruneBoth} {
			res, err := PTAcAblation(seq, c, Options{}, m)
			if err != nil {
				return false
			}
			if ref == nil {
				ref = res
				noneIters = res.Stats.InnerIters
			} else {
				if math.Abs(res.Error-ref.Error) > 1e-6*(1+ref.Error) {
					return false
				}
				if !res.Sequence.Equal(ref.Sequence, 1e-6) {
					return false
				}
			}
			if m == PruneBoth {
				bothIters = res.Stats.InnerIters
			}
		}
		return bothIters <= noneIters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPTAcAblationGapFreeSameWork: without gaps the bounds are inert, so
// every mode performs identical work.
func TestPTAcAblationGapFreeSameWork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := randomSequence(rng, 40, 1, 0)
	var iters []int64
	for _, m := range []PruneMode{PruneNone, PruneIMax, PruneJMin, PruneBoth} {
		res, err := PTAcAblation(seq, 8, Options{}, m)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		iters = append(iters, res.Stats.InnerIters)
	}
	for _, it := range iters[1:] {
		if it != iters[0] {
			t.Errorf("gap-free work differs across modes: %v", iters)
		}
	}
}
