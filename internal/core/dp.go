package core

import (
	"fmt"

	"repro/internal/temporal"
)

// DPStats counts the work the dynamic program performed; the experiments use
// it alongside wall-clock time to show the effect of the Section 5.3
// pruning and of the row-fill algorithm.
type DPStats struct {
	// Cells is the number of matrix cells (k, i) evaluated.
	Cells int64
	// InnerIters is the number of split-point candidates evaluated across
	// all cells (for the monotone fills: candidate-matrix evaluations;
	// envelope bound probes are O(1) per block and not counted).
	InnerIters int64
	// EnvelopeSkips is the number of completion-scan candidates discarded
	// in O(1) range skips by the envelope bounds (see envComplete) instead
	// of being evaluated — the work the envelope pruning saved.
	EnvelopeSkips int64
}

// DPResult is the outcome of an exact PTA evaluation.
type DPResult struct {
	// Sequence is the reduced sequential relation z.
	Sequence *temporal.Sequence
	// C is the size of the result (the c actually reached).
	C int
	// Error is SSE(s, z), the total introduced error E[C][n].
	Error float64
	// Stats describes the work performed.
	Stats DPStats
}

// dpState fills the error matrix E and split-point matrix J row by row
// (k = 1, 2, ...). Only the previous and current E rows are kept; J rows are
// appended as needed for reconstruction. All row indices are 1-based.
//
// The two Section 5.3 bounds can be toggled independently (the ablation
// experiment exercises each in isolation): pruneI skips columns beyond the
// k-th gap (imax), pruneJ lower-bounds the split point at the rightmost gap
// (jmin). The row-fill algorithm (Options.Fill) is orthogonal: every
// algorithm produces bitwise-identical E and J rows; see fill.go.
type dpState struct {
	kn             *CostKernel
	opts           Options
	n              int
	pruneI, pruneJ bool
	algo           FillAlgo // resolved, never FillAuto
	storeSplits    bool
	ownSplits      bool // allocate split rows privately even with a Scratch
	prevE, curE    []float64
	splits         [][]int32 // splits[k-1][i] = J[k][i]
	stats          DPStats

	rerr       func(i, j int) float64 // kernel merge-cost hot path
	segs       []int32                // monotone fills: piecewise-monotone segment starts
	rightGap   []int32                // monotone fills: rightmostGapBefore per position
	smawkArg   []int32                // FillSMAWK: per-cell argmins of the current row
	smawkBuf   []int32                // FillSMAWK: column-list arena (see smawkCarve)
	smawkOff   int
	envMin     []float64 // envelope completion: per-block progressive lower bounds (see ensureEnvelope)
	envMinPrev []float64 // envelope completion: per-block min of prevE (static bound)
	envAt      []int32   // envelope completion: cell of each block's last refresh, −1 = never
	envLo      []int32   // envelope completion: leftmost leaf the block's refresh state covers
	envHi      []int32   // envelope completion: rightmost leaf the block's refresh state covers
	envMuLo    []float64 // envelope completion: per-block per-dimension run-mean minima at refresh
	envMuHi    []float64 // envelope completion: per-block per-dimension run-mean maxima at refresh
	envHint    int       // envelope completion: previous cell's completion argmin, −1 = none
	envValid   bool      // envelope state describes the current prevE row
	onJ, onS   []int32   // FillOnline: frontier candidates and interval starts
	fillSteps  int64     // candidate evaluations since the last context poll
}

// cancelCheckCells is how many DP candidate evaluations happen between
// context polls: coarse enough to keep the poll off the hot path, fine
// enough that a long run aborts within a handful of inner loops.
const cancelCheckCells = 4096

func newDPState(kn *CostKernel, opts Options, pruneI, pruneJ, storeSplits bool) *dpState {
	algo := opts.Fill
	if algo == FillAuto && !(pruneI && pruneJ) {
		// The ablation modes (dpbasic, ptac-imax, ptac-jmin) exist to
		// measure the scan's Section 5.3 bounds in isolation; auto never
		// swaps their fill out from under them. An explicitly pinned
		// monotone fill is still honored — results are identical, only the
		// work counters change meaning.
		algo = FillPruned
	}
	algo = algo.resolve(kn.N())
	var segs []int32
	if algo != FillPruned {
		// The monotone fills are only exact inside certified monotone
		// segments (the quadrangle inequality genuinely fails across a
		// direction change); dispatch is per segment, and when no segment is
		// long enough for the dispatch to engage the scan runs outright.
		if segs = kn.MonotoneSegments(); kn.MonotoneCoverage() == 0 {
			algo = FillPruned
			segs = nil
		}
	}
	st := &dpState{
		kn:          kn,
		opts:        opts,
		n:           kn.N(),
		pruneI:      pruneI,
		pruneJ:      pruneJ,
		algo:        algo,
		storeSplits: storeSplits,
		rerr:        kn.rangeErr(),
		segs:        segs,
	}
	if sc := opts.Scratch; sc != nil {
		st.prevE, st.curE = sc.eBuffers(kn.N())
	} else {
		st.prevE = make([]float64, kn.N()+1)
		st.curE = make([]float64, kn.N()+1)
	}
	return st
}

// fillRow computes row k of the matrices and returns E[k][n]. It polls the
// context while filling so canceled evaluations abort mid-matrix instead of
// running to completion; on cancellation the row swap is undone, so a
// retained state (core.Solver) can retry the row after the abort.
func (st *dpState) fillRow(k int) (float64, error) {
	if err := st.opts.canceled(); err != nil {
		return 0, err
	}
	kn, n := st.kn, st.n
	st.prevE, st.curE = st.curE, st.prevE
	for i := range st.curE {
		st.curE[i] = Inf
	}
	var jrow []int32
	if st.storeSplits {
		if sc := st.opts.Scratch; sc != nil && !st.ownSplits {
			jrow = sc.jRow(k, n)
		} else {
			jrow = make([]int32, n+1)
		}
	}

	// Upper bound for i: past the k-th gap every E[k][i] is infinite.
	imax := n
	if st.pruneI && k <= len(kn.gaps) {
		imax = kn.gaps[k-1]
	}

	var err error
	switch {
	case k == 1:
		err = st.fillFirstRow(imax)
	case st.algo == FillDC, st.algo == FillSMAWK, st.algo == FillOnline:
		err = st.fillRowSegmented(k, imax, jrow, st.algo)
	default:
		err = st.fillRowScan(k, imax, jrow)
	}
	if err != nil {
		// Undo the row swap so curE is E[k−1] again: a retained state
		// (core.Solver) may retry this row after the abort.
		st.prevE, st.curE = st.curE, st.prevE
		return 0, err
	}

	if st.storeSplits {
		st.splits = append(st.splits, jrow)
	}
	return st.curE[n], nil
}

// fillFirstRow fills E[1][i] = the cost of merging the whole prefix into
// one tuple (infinite across gaps); J[1] stays all zero.
func (st *dpState) fillFirstRow(imax int) error {
	kn := st.kn
	for i := 1; i <= imax; i++ {
		st.stats.Cells++
		if st.stats.Cells%cancelCheckCells == 0 {
			if err := st.opts.canceled(); err != nil {
				return err
			}
		}
		st.curE[i] = kn.MergeErrAll(1, i)
	}
	return nil
}

// fillRowScan fills row k ≥ 2 with the FillPruned candidate scan: for every
// cell, split points are tried right to left with the Jagadish-style early
// exit once the merge cost alone exceeds the best total.
func (st *dpState) fillRowScan(k, imax int, jrow []int32) error {
	kn := st.kn
	rerr := st.rerr
	for i := k; i <= imax; i++ {
		st.stats.Cells++
		if st.stats.Cells%cancelCheckCells == 0 {
			if err := st.opts.canceled(); err != nil {
				return err
			}
		}

		// Lower bound for j: merging the tail s_{j+1}..s_i across the
		// rightmost gap before i is infinite.
		jmin := k - 1
		var rightGap int
		if st.pruneJ {
			rightGap = kn.RightmostGapBefore(i)
			jmin = max(jmin, rightGap)
		}

		if st.pruneJ && k-2 < len(kn.gaps) && rightGap != 0 && kn.gaps[k-2] == jmin {
			// The prefix s_i contains exactly k−1 gaps: the only feasible
			// split point is the rightmost gap itself (Section 5.3).
			st.stats.InnerIters++
			st.curE[i] = st.prevE[jmin] + rerr(jmin+1, i)
			if jrow != nil {
				jrow[i] = int32(jmin)
			}
			continue
		}

		best := Inf
		bestJ := int32(0)
		inner := int64(0)
		for j := i - 1; j >= jmin; j-- {
			inner++
			err1 := st.prevE[j]
			var err2 float64
			if st.pruneJ {
				err2 = rerr(j+1, i) // gap free by construction of jmin
			} else {
				err2 = kn.MergeErrAll(j+1, i)
			}
			if err1+err2 < best {
				best = err1 + err2
				bestJ = int32(j)
			}
			// err2 grows as j decreases; once it alone exceeds the best
			// total, no smaller j can win (Jagadish et al.).
			if err2 > best {
				break
			}
		}
		st.stats.InnerIters += inner
		st.curE[i] = best
		if jrow != nil {
			jrow[i] = bestJ
		}
	}
	return nil
}

// reconstruct follows the split-point matrix from cell (c, n) and builds the
// reduced relation (Example 11).
func (st *dpState) reconstruct(c int) []temporal.SeqRow {
	rows := make([]temporal.SeqRow, c)
	n := st.n
	for k := c; k >= 1; k-- {
		j := int(st.splits[k-1][n])
		rows[k-1] = st.kn.MergeRange(j+1, n)
		n = j
	}
	return rows
}

// PruneMode selects which of the two Section 5.3 search-space bounds the
// dynamic program applies. PTAc uses PruneBoth; DPBasic uses PruneNone; the
// other modes exist for the ablation experiment.
type PruneMode uint8

const (
	// PruneNone disables both bounds (the basic DP scheme of Section 5.1).
	PruneNone PruneMode = iota
	// PruneIMax only skips matrix columns beyond the k-th gap.
	PruneIMax
	// PruneJMin only lower-bounds split points at the rightmost gap.
	PruneJMin
	// PruneBoth applies both bounds (the full PTAc algorithm).
	PruneBoth
)

// String names the mode for reports.
func (m PruneMode) String() string {
	switch m {
	case PruneNone:
		return "none"
	case PruneIMax:
		return "imax"
	case PruneJMin:
		return "jmin"
	case PruneBoth:
		return "imax+jmin"
	}
	return fmt.Sprintf("prune(%d)", uint8(m))
}

// PTAcAblation evaluates size-bounded PTA with an explicit pruning mode. All
// modes return the same optimal reduction; they differ only in the work
// counted by Stats and in runtime.
func PTAcAblation(seq *temporal.Sequence, c int, opts Options, mode PruneMode) (*DPResult, error) {
	return runSizeBoundedMode(seq, c, opts, mode == PruneIMax || mode == PruneBoth,
		mode == PruneJMin || mode == PruneBoth)
}

// runSizeBounded drives the DP for a size bound c with or without pruning.
func runSizeBounded(seq *temporal.Sequence, c int, opts Options, pruned bool) (*DPResult, error) {
	return runSizeBoundedMode(seq, c, opts, pruned, pruned)
}

func runSizeBoundedMode(seq *temporal.Sequence, c int, opts Options, pruneI, pruneJ bool) (*DPResult, error) {
	n := seq.Len()
	if n == 0 {
		if c != 0 {
			return nil, fmt.Errorf("core: size bound %d for an empty relation", c)
		}
		return &DPResult{Sequence: seq.WithRows(nil), C: 0}, nil
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	if cmin := kn.CMin(); c < cmin {
		return nil, &InfeasibleSizeError{C: c, CMin: cmin}
	}
	if c >= n {
		// ρ(s, c) = s when |s| ≤ c: nothing to merge.
		out := seq.Clone()
		return &DPResult{Sequence: out, C: n}, nil
	}
	st := newDPState(kn, opts, pruneI, pruneJ, true)
	var finalErr float64
	for k := 1; k <= c; k++ {
		if finalErr, err = st.fillRow(k); err != nil {
			return nil, err
		}
	}
	rows := st.reconstruct(c)
	return &DPResult{
		Sequence: seq.WithRows(rows),
		C:        c,
		Error:    finalErr,
		Stats:    st.stats,
	}, nil
}

// PTAc evaluates size-bounded PTA exactly (Definition 6, algorithm of
// Fig. 7): it reduces the sequential relation seq to c tuples with the
// minimal possible sum-squared error. It requires cmin ≤ c; when c ≥ n the
// input is returned unchanged. Worst-case complexity is O(n²·c·p) time
// with the default scan fill and O(n log n · c · p) with the monotone
// fills; space is O(n·c) either way. With temporal gaps and aggregation
// groups the Section 5.3 bounds prune most cells.
func PTAc(seq *temporal.Sequence, c int, opts Options) (*DPResult, error) {
	return runSizeBounded(seq, c, opts, true)
}

// DPBasic evaluates size-bounded PTA with the basic dynamic-programming
// scheme of Section 5.1: constant-time error evaluation but no gap/group
// pruning. It returns the same result as PTAc and exists as the baseline of
// the performance experiments (Figs. 18 and 19).
func DPBasic(seq *temporal.Sequence, c int, opts Options) (*DPResult, error) {
	return runSizeBounded(seq, c, opts, false)
}

// PTAe evaluates error-bounded PTA exactly (Definition 7, algorithm of
// Fig. 8): it finds the smallest c such that reducing seq to c tuples
// introduces at most eps·SSEmax error, 0 ≤ eps ≤ 1, and returns that optimal
// reduction.
func PTAe(seq *temporal.Sequence, eps float64, opts Options) (*DPResult, error) {
	return runErrorBoundedMode(seq, eps, opts, true, true)
}

// PTAeAblation evaluates error-bounded PTA with an explicit pruning mode,
// mirroring PTAcAblation: every mode returns the same minimal-size optimal
// reduction and differs only in the work counted by Stats.
func PTAeAblation(seq *temporal.Sequence, eps float64, opts Options, mode PruneMode) (*DPResult, error) {
	return runErrorBoundedMode(seq, eps, opts, mode == PruneIMax || mode == PruneBoth,
		mode == PruneJMin || mode == PruneBoth)
}

// DPBasicError evaluates error-bounded PTA with the basic dynamic-programming
// scheme (no gap/group pruning) — the error-bounded counterpart of DPBasic,
// used as the baseline of the performance experiments.
func DPBasicError(seq *temporal.Sequence, eps float64, opts Options) (*DPResult, error) {
	return runErrorBoundedMode(seq, eps, opts, false, false)
}

func runErrorBoundedMode(seq *temporal.Sequence, eps float64, opts Options, pruneI, pruneJ bool) (*DPResult, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: error bound %v outside [0, 1]", eps)
	}
	n := seq.Len()
	if n == 0 {
		return &DPResult{Sequence: seq.WithRows(nil), C: 0}, nil
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	maxErr := kn.MaxError()
	bound := acceptErrorBound(eps*maxErr, maxErr)
	st := newDPState(kn, opts, pruneI, pruneJ, true)
	for k := 1; k <= n; k++ {
		e, err := st.fillRow(k)
		if err != nil {
			return nil, err
		}
		if e <= bound {
			rows := st.reconstruct(k)
			return &DPResult{
				Sequence: seq.WithRows(rows),
				C:        k,
				Error:    e,
				Stats:    st.stats,
			}, nil
		}
	}
	// E[n][n] = 0 ≤ bound always triggers; reaching this point means the
	// matrix filling is broken.
	panic("core: error-bounded DP did not terminate")
}

// Matrices runs the pruned DP for k = 1..c and returns copies of the error
// matrix rows E[k] and split-point rows J[k]. Row k lives at index k−1 and
// column i is 1-based (index 0 is unused), matching the paper's Figs. 4-5.
// It exists for inspection and the fig4fig5 experiment; PTAc is the
// production entry point.
func Matrices(seq *temporal.Sequence, c int, opts Options) ([][]float64, [][]int32, error) {
	n := seq.Len()
	if c < 1 || c > n {
		return nil, nil, fmt.Errorf("core: matrix row count %d outside 1..%d", c, n)
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, nil, err
	}
	// The split rows leave the function, so they must not come from a
	// caller-provided Scratch (whose rows are reused by the next call).
	st := newDPState(kn, opts, true, true, true)
	st.ownSplits = true
	em := make([][]float64, c)
	for k := 1; k <= c; k++ {
		if _, err := st.fillRow(k); err != nil {
			return nil, nil, err
		}
		em[k-1] = append([]float64(nil), st.curE...)
	}
	return em, st.splits, nil
}

// ErrorCurve returns the minimal error of reducing seq to k tuples for every
// k = 1..kmax (Inf where k < cmin makes the reduction infeasible). It fills
// the same DP matrix as PTAc but stores no split points, so it costs one
// size-bounded run with c = kmax. The experiments use it to draw the
// error-versus-reduction curves of Fig. 14.
func ErrorCurve(seq *temporal.Sequence, kmax int, opts Options) ([]float64, error) {
	n := seq.Len()
	if kmax < 1 || kmax > n {
		return nil, fmt.Errorf("core: kmax %d outside 1..%d", kmax, n)
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	st := newDPState(kn, opts, true, true, false)
	curve := make([]float64, kmax)
	for k := 1; k <= kmax; k++ {
		var err error
		if curve[k-1], err = st.fillRow(k); err != nil {
			return nil, err
		}
	}
	return curve, nil
}
