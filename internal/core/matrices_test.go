package core

import (
	"math"
	"testing"
)

func TestMatricesShapeAndValues(t *testing.T) {
	seq := figure1c()
	em, jm, err := Matrices(seq, 4, Options{})
	if err != nil {
		t.Fatalf("Matrices: %v", err)
	}
	if len(em) != 4 || len(jm) != 4 {
		t.Fatalf("got %d/%d rows, want 4/4", len(em), len(jm))
	}
	for k := range em {
		if len(em[k]) != 8 || len(jm[k]) != 8 {
			t.Fatalf("row %d width %d/%d, want 8 (1-based columns)", k, len(em[k]), len(jm[k]))
		}
	}
	// Spot checks against Fig. 4 / Fig. 5.
	if math.Abs(em[3][7]-49166.67) > 1 {
		t.Errorf("E[4][7] = %v", em[3][7])
	}
	if jm[3][7] != 6 {
		t.Errorf("J[4][7] = %d", jm[3][7])
	}
	if !math.IsInf(em[1][7], 1) {
		t.Errorf("E[2][7] should be Inf, got %v", em[1][7])
	}
}

func TestMatricesValidation(t *testing.T) {
	seq := figure1c()
	if _, _, err := Matrices(seq, 0, Options{}); err == nil {
		t.Error("c = 0 should fail")
	}
	if _, _, err := Matrices(seq, 99, Options{}); err == nil {
		t.Error("c > n should fail")
	}
}

func TestNodeLessTieBreaks(t *testing.T) {
	a := &node{id: 1, key: 5}
	b := &node{id: 2, key: 5}
	a.row.T.Start = 10
	b.row.T.Start = 10
	if !nodeLess(a, b) || nodeLess(b, a) {
		t.Error("equal key and start must fall back to id")
	}
	b.row.T.Start = 3
	if nodeLess(a, b) {
		t.Error("smaller timestamp must win at equal keys")
	}
	b.key = 4
	if nodeLess(a, b) {
		t.Error("smaller key must always win")
	}
}

func TestPrefixValidateBoundsPanics(t *testing.T) {
	px, _ := NewKernel(figure1c(), Options{})
	defer func() {
		if recover() == nil {
			t.Error("MergeRange with inverted bounds should panic")
		}
	}()
	px.MergeRange(5, 2)
}

func TestPrefixSSEMergeAllAcrossGroups(t *testing.T) {
	px, _ := NewKernel(figure1c(), Options{})
	if !math.IsInf(px.MergeErrAll(5, 6), 1) {
		t.Error("merging across the group boundary must cost Inf")
	}
	if !math.IsInf(px.MergeErrAll(1, 7), 1) {
		t.Error("merging everything must cost Inf")
	}
	if math.IsInf(px.MergeErrAll(1, 5), 1) {
		t.Error("merging the group-A run must be finite")
	}
}

func TestGreedyResultReadAhead(t *testing.T) {
	seq := figure1c()
	res, err := GPTAc(NewSliceStream(seq), 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadAhead != res.MaxHeap-res.C {
		t.Errorf("ReadAhead = %d, want MaxHeap−C = %d", res.ReadAhead, res.MaxHeap-res.C)
	}
}

// TestErrorCurveBounds covers ErrorCurve argument validation.
func TestErrorCurveBounds(t *testing.T) {
	seq := figure1c()
	if _, err := ErrorCurve(seq, 0, Options{}); err == nil {
		t.Error("kmax = 0 should fail")
	}
	if _, err := ErrorCurve(seq, 8, Options{}); err == nil {
		t.Error("kmax > n should fail")
	}
	curve, err := ErrorCurve(seq, 7, Options{})
	if err != nil || len(curve) != 7 {
		t.Fatalf("full curve: %v, %v", curve, err)
	}
	// Fig. 4 diagonal: E[3][7] = 269285, E[4][7] = 49166.
	if math.Abs(curve[2]-269285.7) > 1 || math.Abs(curve[3]-49166.67) > 1 {
		t.Errorf("curve = %v", curve)
	}
}
