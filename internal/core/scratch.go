package core

// Scratch holds reusable evaluation buffers for the dynamic-programming
// evaluators: the two rolling error-matrix rows, the split-point rows, and
// the cost kernel's flat prefix slabs. Reusing a Scratch across calls on
// similarly-sized inputs removes the dominant per-call allocations, which
// matters when an engine serves many compressions back to back.
//
// A Scratch serves one evaluation at a time — callers that evaluate
// concurrently must pool instances (the public pta.ScratchPool does).
type Scratch struct {
	e1, e2 []float64
	jrows  [][]int32
	kslab  []float64 // kernel value/square-sum slabs, 2·p·(n+1)
	klen   []int64   // kernel cumulative-length slab, n+1
}

// kernelSlabs returns the cost kernel's prefix slabs for a sequence of n
// rows and p aggregate attributes, growing the backing arrays as needed:
// two p·(n+1) float64 slabs (value and square sums) carved from one
// contiguous allocation, and the n+1 cumulative lengths. Contents are
// unspecified; NewKernel overwrites every cell it reads. The slabs stay
// owned by the Scratch — a kernel built on them must not outlive the
// evaluation (retained states build kernels without a Scratch).
func (s *Scratch) kernelSlabs(n, p int) (sums, sqsums []float64, lens []int64) {
	need := 2 * p * (n + 1)
	if cap(s.kslab) < need {
		s.kslab = make([]float64, need)
	}
	if cap(s.klen) < n+1 {
		s.klen = make([]int64, n+1)
	}
	slab := s.kslab[:need]
	return slab[: p*(n+1) : p*(n+1)], slab[p*(n+1):], s.klen[:n+1]
}

// eBuffers returns the two error-matrix row buffers with n+1 entries each,
// growing the backing arrays as needed. Contents are unspecified; the DP
// overwrites every cell it reads.
func (s *Scratch) eBuffers(n int) (prev, cur []float64) {
	if cap(s.e1) < n+1 {
		s.e1 = make([]float64, n+1)
		s.e2 = make([]float64, n+1)
	}
	return s.e1[:n+1], s.e2[:n+1]
}

// jRow returns the k-th (1-based) split-point row buffer, zeroed, with n+1
// entries. Rows stay owned by the Scratch: they are valid until the next
// evaluation that uses it, so reconstruction must finish before the Scratch
// is reused (every core entry point does).
func (s *Scratch) jRow(k, n int) []int32 {
	for len(s.jrows) < k {
		s.jrows = append(s.jrows, nil)
	}
	r := s.jrows[k-1]
	if cap(r) < n+1 {
		r = make([]int32, n+1)
		s.jrows[k-1] = r
	} else {
		r = r[:n+1]
		clear(r)
	}
	return r
}
