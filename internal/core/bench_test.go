package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/temporal"
)

func benchSequence(n, p int, gapProb float64) *temporal.Sequence {
	rng := rand.New(rand.NewSource(99))
	return randomSequence(rng, n, p, gapProb)
}

func BenchmarkPrefixBuild(b *testing.B) {
	seq := benchSequence(10000, 4, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewKernel(seq, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSERange1D(b *testing.B) {
	seq := benchSequence(10000, 1, 0)
	px, err := NewKernel(seq, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += px.MergeErr(1+(i%5000), 5001+(i%5000))
	}
	_ = sink
}

func BenchmarkSSERange8D(b *testing.B) {
	seq := benchSequence(10000, 8, 0)
	px, err := NewKernel(seq, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += px.MergeErr(1+(i%5000), 5001+(i%5000))
	}
	_ = sink
}

// BenchmarkMergeErr measures the merge-cost kernel across attribute widths:
// p = 1 takes the dedicated scalar fast path, p ∈ {2, 3, 4} the dedicated
// straight-line paths, and p ≥ 5 the four-wide unrolled loop over the
// dimension-major slabs. The range closure variant is what the DP row fills
// actually call per candidate.
func BenchmarkMergeErr(b *testing.B) {
	for _, p := range []int{1, 2, 3, 4, 8, 12} {
		seq := benchSequence(10000, p, 0)
		px, err := NewKernel(seq, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("method/p=%d", p), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += px.MergeErr(1+(i%5000), 5001+(i%5000))
			}
			_ = sink
		})
		rerr := px.rangeErr()
		b.Run(fmt.Sprintf("closure/p=%d", p), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += rerr(1+(i%5000), 5001+(i%5000))
			}
			_ = sink
		})
	}
}

// BenchmarkMergeErrShort measures the kernel on short ranges (the shape the
// pruned scan's early exit produces: a handful of rows per merge), where
// call overhead and load latency dominate over the per-dimension loop.
func BenchmarkMergeErrShort(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		seq := benchSequence(10000, p, 0)
		px, err := NewKernel(seq, Options{})
		if err != nil {
			b.Fatal(err)
		}
		rerr := px.rangeErr()
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				base := 1 + (i % 9000)
				sink += rerr(base, base+1+(i%7))
			}
			_ = sink
		})
	}
}

func BenchmarkDissimilarity(b *testing.B) {
	a := temporal.SeqRow{Aggs: []float64{10, 20, 30}, T: temporal.Interval{Start: 0, End: 9}}
	c := temporal.SeqRow{Aggs: []float64{12, 18, 33}, T: temporal.Interval{Start: 10, End: 14}}
	w2 := []float64{1, 1, 1}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dissimilarity(a, c, w2)
	}
	_ = sink
}

func BenchmarkMergeHeapChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const size = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h mergeHeap
		nodes := make([]*node, size)
		for j := range nodes {
			nodes[j] = &node{id: j, key: rng.Float64()}
			h.push(nodes[j])
		}
		for h.len() > 0 {
			h.remove(h.peek())
		}
	}
}

func BenchmarkPTAcGapFree(b *testing.B) {
	seq := benchSequence(2000, 1, 0)
	c := 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PTAc(seq, c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPTAcGapped(b *testing.B) {
	seq := benchSequence(2000, 1, 0.2)
	c := max(seq.CMin(), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PTAc(seq, c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGMS(b *testing.B) {
	seq := benchSequence(20000, 1, 0.05)
	c := max(seq.CMin(), 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GMS(seq, c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPTAcDelta1(b *testing.B) {
	seq := benchSequence(20000, 1, 0.05)
	c := max(seq.CMin(), 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GPTAc(NewSliceStream(seq), c, 1, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPTAeDelta1(b *testing.B) {
	seq := benchSequence(20000, 1, 0.05)
	est, err := ExactEstimate(seq, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GPTAe(NewSliceStream(seq), 0.3, 1, est, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSEBetween(b *testing.B) {
	seq := benchSequence(20000, 2, 0.05)
	res, err := GMS(seq, max(seq.CMin(), 1000), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SSEBetween(seq, res.Sequence, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
