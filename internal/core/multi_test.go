package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDPMultiMatchesSingle: one shared matrix pass serves every budget with
// the same result as independent PTAc/PTAe evaluations.
func TestDPMultiMatchesSingle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.3)
		cmin := seq.CMin()
		n := seq.Len()
		budgets := []MultiBudget{
			{C: cmin},
			{C: cmin + rng.Intn(n-cmin+1)},
			{C: n},
			{Eps: 0},
			{Eps: rng.Float64()},
			{Eps: 1},
		}
		results, err := DPMulti(seq, budgets, Options{}, true, true)
		if err != nil {
			return false
		}
		for i, b := range budgets {
			var want *DPResult
			if b.C > 0 {
				want, err = PTAc(seq, b.C, Options{})
			} else {
				want, err = PTAe(seq, b.Eps, Options{})
			}
			if err != nil {
				return false
			}
			got := results[i]
			if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
				return false
			}
			if !got.Sequence.Equal(want.Sequence, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDPMultiInfeasible: a size bound below cmin fails the whole call with
// the typed error.
func TestDPMultiInfeasible(t *testing.T) {
	seq := figure1c()
	_, err := DPMulti(seq, []MultiBudget{{C: seq.CMin() - 1}}, Options{}, true, true)
	var inf *InfeasibleSizeError
	if err == nil || !asInfeasible(err, &inf) {
		t.Fatalf("want InfeasibleSizeError, got %v", err)
	}
	if inf.CMin != seq.CMin() {
		t.Errorf("CMin = %d, want %d", inf.CMin, seq.CMin())
	}
}

// asInfeasible is a minimal errors.As for the core test (avoiding the
// dependency on the errors package semantics being re-tested here).
func asInfeasible(err error, target **InfeasibleSizeError) bool {
	e, ok := err.(*InfeasibleSizeError)
	if ok {
		*target = e
	}
	return ok
}

// TestPTAeParallelMatchesPTAe: the run-decomposed error-bounded evaluator
// finds the same minimal size and optimal error as the serial PTAe.
func TestPTAeParallelMatchesPTAe(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.3)
		for _, eps := range []float64{0, 0.05, rng.Float64(), 1} {
			want, err := PTAe(seq, eps, Options{})
			if err != nil {
				return false
			}
			for _, workers := range []int{1, 4} {
				got, err := PTAeParallel(seq, eps, Options{}, workers)
				if err != nil {
					return false
				}
				if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
					return false
				}
				if got.Sequence.Validate() != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDPCancellation: a canceled context aborts the DP promptly with the
// context error in the chain.
func TestDPCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := randomSequence(rng, 400, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PTAc(seq, 40, Options{Ctx: ctx}); err == nil || !isCanceled(err) {
		t.Errorf("PTAc under canceled ctx: %v", err)
	}
	if _, err := GMS(seq, 40, Options{Ctx: ctx}); err == nil {
		t.Errorf("GMS under canceled ctx: %v", err)
	}
	if _, err := PTAcParallel(seq, 40, Options{Ctx: ctx}, 2); err == nil {
		t.Errorf("PTAcParallel under canceled ctx: %v", err)
	}
	if _, err := DPMulti(seq, []MultiBudget{{C: 40}}, Options{Ctx: ctx}, true, true); err == nil {
		t.Errorf("DPMulti under canceled ctx: %v", err)
	}
}

func isCanceled(err error) bool {
	for e := err; e != nil; {
		if e == context.Canceled {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestScratchReuse: evaluations sharing one Scratch across calls (serially)
// keep producing correct results on varying input sizes.
func TestScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sc := &Scratch{}
	for i := 0; i < 20; i++ {
		seq := randomSequence(rng, 5+rng.Intn(60), 1+rng.Intn(2), 0.25)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		want, err := PTAc(seq, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := PTAc(seq, c, Options{Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Error-want.Error) > 1e-9*(1+want.Error) || !got.Sequence.Equal(want.Sequence, 1e-9) {
			t.Fatalf("iteration %d: scratch run differs: %v vs %v", i, got.Error, want.Error)
		}
		eps := rng.Float64()
		wantE, err := PTAe(seq, eps, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotE, err := PTAe(seq, eps, Options{Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		if gotE.C != wantE.C || !gotE.Sequence.Equal(wantE.Sequence, 1e-9) {
			t.Fatalf("iteration %d: scratch PTAe differs", i)
		}
	}
}
