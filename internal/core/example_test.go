package core

import (
	"math"
	"testing"

	"repro/internal/temporal"
)

// figure1c builds the ITA result of the running example (Fig. 1(c)):
//
//	s1 A 800 [1,2]; s2 A 600 [3,3]; s3 A 500 [4,4]; s4 A 350 [5,6];
//	s5 A 300 [7,7]; s6 B 500 [4,5]; s7 B 500 [7,8]
func figure1c() *temporal.Sequence {
	s := temporal.NewSequence(
		[]temporal.Attribute{{Name: "Proj", Kind: temporal.KindString}},
		[]string{"AvgSal"},
	)
	a := s.Groups.Intern([]temporal.Datum{temporal.String("A")})
	b := s.Groups.Intern([]temporal.Datum{temporal.String("B")})
	s.Rows = []temporal.SeqRow{
		{Group: a, Aggs: []float64{800}, T: temporal.Interval{Start: 1, End: 2}},
		{Group: a, Aggs: []float64{600}, T: temporal.Interval{Start: 3, End: 3}},
		{Group: a, Aggs: []float64{500}, T: temporal.Interval{Start: 4, End: 4}},
		{Group: a, Aggs: []float64{350}, T: temporal.Interval{Start: 5, End: 6}},
		{Group: a, Aggs: []float64{300}, T: temporal.Interval{Start: 7, End: 7}},
		{Group: b, Aggs: []float64{500}, T: temporal.Interval{Start: 4, End: 5}},
		{Group: b, Aggs: []float64{500}, T: temporal.Interval{Start: 7, End: 8}},
	}
	return s
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsInf(want, 1) {
		if !math.IsInf(got, 1) {
			t.Errorf("%s = %v, want +Inf", what, got)
		}
		return
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

// TestPrefixExample12 reproduces Example 12: S, SS, L prefixes and the error
// of merging {s2, s3}.
func TestPrefixExample12(t *testing.T) {
	px, err := NewKernel(figure1c(), Options{})
	if err != nil {
		t.Fatalf("NewPrefix: %v", err)
	}
	wantS := []float64{1600, 2200, 2700, 3400}
	wantSS := []float64{1280000, 1640000, 1890000, 2135000}
	wantL := []int64{2, 3, 4, 6}
	for i := 1; i <= 4; i++ {
		approx(t, px.s[i], wantS[i-1], 1e-6, "S")
		approx(t, px.ss[i], wantSS[i-1], 1e-6, "SS")
		if px.l[i] != wantL[i-1] {
			t.Errorf("L[%d] = %d, want %d", i, px.l[i], wantL[i-1])
		}
	}
	// SSE({s2, s3}) = 1890000 − 1280000 − (2700−1600)²/(4−2) = 5000.
	approx(t, px.MergeErr(2, 3), 5000, 1e-6, "SSE(s2..s3)")
}

func TestPrefixGapsAndCMin(t *testing.T) {
	px, _ := NewKernel(figure1c(), Options{})
	gaps := px.Gaps()
	if len(gaps) != 2 || gaps[0] != 5 || gaps[1] != 6 {
		t.Fatalf("Gaps = %v, want [5 6]", gaps)
	}
	if px.CMin() != 3 {
		t.Errorf("CMin = %d, want 3", px.CMin())
	}
	if !px.HasGap(1, 6) || px.HasGap(1, 5) || !px.HasGap(6, 7) || px.HasGap(6, 6) {
		t.Error("HasGap boundaries wrong")
	}
	if px.RightmostGapBefore(7) != 6 || px.RightmostGapBefore(6) != 5 || px.RightmostGapBefore(5) != 0 {
		t.Error("RightmostGapBefore wrong")
	}
}

// TestPrefixMaxError checks SSEmax = 269285.714... (the value E[1][5] of
// Fig. 4 is the group-A run error; group-B runs are singletons with zero
// error, so SSEmax equals it).
func TestPrefixMaxError(t *testing.T) {
	px, _ := NewKernel(figure1c(), Options{})
	approx(t, px.MaxError(), 269285.714285714, 1e-3, "MaxError")
}

// TestErrorMatrixFig4 fills the DP matrix for the running example and
// compares every cell against Fig. 4 (values are floor-rounded in the
// paper; we use a ±1 tolerance).
func TestErrorMatrixFig4(t *testing.T) {
	px, _ := NewKernel(figure1c(), Options{})
	want := [][]float64{
		{0, 26666, 67500, 208333, 269285, Inf, Inf},
		{Inf, 0, 5000, 41666, 49166, 269285, Inf},
		{Inf, Inf, 0, 5000, 6666, 49166, 269285},
		{Inf, Inf, Inf, 0, 1666, 6666, 49166},
	}
	for _, pruned := range []bool{true, false} {
		st := newDPState(px, Options{}, pruned, pruned, true)
		for k := 1; k <= 4; k++ {
			st.fillRow(k)
			for i := 1; i <= 7; i++ {
				w := want[k-1][i-1]
				if math.IsInf(w, 1) {
					if !math.IsInf(st.curE[i], 1) {
						t.Errorf("pruned=%v E[%d][%d] = %v, want Inf", pruned, k, i, st.curE[i])
					}
					continue
				}
				if math.Abs(st.curE[i]-w) > 1 {
					t.Errorf("pruned=%v E[%d][%d] = %v, want ≈%v", pruned, k, i, st.curE[i], w)
				}
			}
		}
	}
}

// TestSplitMatrixFig5 checks the split points on the optimal path of Fig. 5:
// J[4][7]=6, J[3][6]=5, J[2][5]=2, J[1][2]=0.
func TestSplitMatrixFig5(t *testing.T) {
	px, _ := NewKernel(figure1c(), Options{})
	st := newDPState(px, Options{}, true, true, true)
	for k := 1; k <= 4; k++ {
		st.fillRow(k)
	}
	checks := []struct{ k, i, want int }{
		{4, 7, 6}, {3, 6, 5}, {2, 5, 2}, {1, 2, 0},
		// Additional cells from Fig. 5.
		{2, 4, 2}, {3, 5, 3}, {4, 5, 3}, {2, 6, 5}, {3, 7, 6},
	}
	for _, c := range checks {
		if got := int(st.splits[c.k-1][c.i]); got != c.want {
			t.Errorf("J[%d][%d] = %d, want %d", c.k, c.i, got, c.want)
		}
	}
}

// TestPTAcFigure1d reduces the running example to 4 tuples and checks the
// result of Fig. 1(d) and the optimal error 49 166.67 of Example 6.
func TestPTAcFigure1d(t *testing.T) {
	seq := figure1c()
	res, err := PTAc(seq, 4, Options{})
	if err != nil {
		t.Fatalf("PTAc: %v", err)
	}
	approx(t, res.Error, 49166.666, 1e-2, "PTA error")
	z := res.Sequence
	if z.Len() != 4 {
		t.Fatalf("result size %d, want 4:\n%v", z.Len(), z)
	}
	type want struct {
		proj string
		avg  float64
		iv   temporal.Interval
	}
	wants := []want{
		{"A", 733.3333, temporal.Interval{Start: 1, End: 3}},
		{"A", 375, temporal.Interval{Start: 4, End: 7}},
		{"B", 500, temporal.Interval{Start: 4, End: 5}},
		{"B", 500, temporal.Interval{Start: 7, End: 8}},
	}
	for i, w := range wants {
		r := z.Rows[i]
		if g := z.Groups.Values(r.Group)[0].Text(); g != w.proj {
			t.Errorf("row %d group = %q, want %q", i, g, w.proj)
		}
		approx(t, r.Aggs[0], w.avg, 1e-3, "avg")
		if r.T != w.iv {
			t.Errorf("row %d interval = %v, want %v", i, r.T, w.iv)
		}
	}
	if err := z.Validate(); err != nil {
		t.Errorf("PTA result not sequential: %v", err)
	}
}

// TestPTAcMatchesDPBasic checks that pruning does not change the result.
func TestPTAcMatchesDPBasic(t *testing.T) {
	seq := figure1c()
	for c := 3; c <= 7; c++ {
		a, err := PTAc(seq, c, Options{})
		if err != nil {
			t.Fatalf("PTAc(%d): %v", c, err)
		}
		b, err := DPBasic(seq, c, Options{})
		if err != nil {
			t.Fatalf("DPBasic(%d): %v", c, err)
		}
		approx(t, a.Error, b.Error, 1e-6, "error")
		if !a.Sequence.Equal(b.Sequence, 1e-9) {
			t.Errorf("c=%d: pruned and basic DP disagree:\n%v\nvs\n%v", c, a.Sequence, b.Sequence)
		}
		if a.Stats.InnerIters > b.Stats.InnerIters {
			t.Errorf("c=%d: pruned DP did more inner work (%d > %d)", c, a.Stats.InnerIters, b.Stats.InnerIters)
		}
	}
}

// TestPTAcBounds checks argument validation.
func TestPTAcBounds(t *testing.T) {
	seq := figure1c()
	if _, err := PTAc(seq, 2, Options{}); err == nil {
		t.Error("c below cmin should fail")
	}
	res, err := PTAc(seq, 7, Options{})
	if err != nil || res.Error != 0 || res.C != 7 {
		t.Errorf("c = n should return the input unchanged: %+v, %v", res, err)
	}
	res, err = PTAc(seq, 100, Options{})
	if err != nil || res.C != 7 {
		t.Errorf("c > n should return the input unchanged: %+v, %v", res, err)
	}
	empty := temporal.NewSequence(nil, []string{"v"})
	if _, err := PTAc(empty, 0, Options{}); err != nil {
		t.Errorf("empty relation with c=0 should succeed: %v", err)
	}
	if _, err := PTAc(empty, 1, Options{}); err == nil {
		t.Error("empty relation with c=1 should fail")
	}
	if _, err := PTAc(seq, 4, Options{Weights: []float64{1, 2}}); err == nil {
		t.Error("wrong weight count should fail")
	}
	if _, err := PTAc(seq, 4, Options{Weights: []float64{-1}}); err == nil {
		t.Error("non-positive weight should fail")
	}
}

// TestPTAeExample7: ε = 1 reduces to cmin = 3 tuples, and ε = 0.2 yields
// the 4-tuple result of Fig. 1(d).
//
// Note: the paper's Example 7 says "allowing 2% error yields 4 result
// tuples", but by the paper's own Fig. 4, E[4][7] = 49 166 is 18.3% of
// SSEmax = 269 285 while E[6][7] = 1 666 is 0.6%; with a literal 2% bound
// the minimal size is therefore 6, and the 4-tuple result needs ε ≈ 0.2.
// We assert the values consistent with Fig. 4.
func TestPTAeExample7(t *testing.T) {
	seq := figure1c()
	res, err := PTAe(seq, 1, Options{})
	if err != nil {
		t.Fatalf("PTAe(1): %v", err)
	}
	if res.C != 3 {
		t.Errorf("ε=1 result size = %d, want 3", res.C)
	}
	res, err = PTAe(seq, 0.2, Options{})
	if err != nil {
		t.Fatalf("PTAe(0.2): %v", err)
	}
	if res.C != 4 {
		t.Errorf("ε=0.2 result size = %d, want 4", res.C)
	}
	approx(t, res.Error, 49166.666, 1e-2, "ε=0.2 error")
	res, err = PTAe(seq, 0.02, Options{})
	if err != nil {
		t.Fatalf("PTAe(0.02): %v", err)
	}
	if res.C != 6 {
		t.Errorf("ε=0.02 result size = %d, want 6", res.C)
	}
	approx(t, res.Error, 1666.666, 1e-2, "ε=0.02 error")
	// ε = 0 keeps the relation intact.
	res, err = PTAe(seq, 0, Options{})
	if err != nil || res.C != 7 || res.Error != 0 {
		t.Errorf("ε=0 should reduce nothing: C=%d err=%v (%v)", res.C, res.Error, err)
	}
	if _, err := PTAe(seq, 1.5, Options{}); err == nil {
		t.Error("ε > 1 should fail")
	}
	if _, err := PTAe(seq, -0.1, Options{}); err == nil {
		t.Error("ε < 0 should fail")
	}
}

// TestGMSFigure9 reproduces the greedy dendrogram of Fig. 9/Example 17:
// greedy reduction to 4 tuples merges s4⊕s5, then s2⊕s3, then the two
// results, giving error 63 000 and error ratio 1.28 against the optimum.
func TestGMSFigure9(t *testing.T) {
	seq := figure1c()
	res, err := GMS(seq, 4, Options{})
	if err != nil {
		t.Fatalf("GMS: %v", err)
	}
	approx(t, res.Error, 63000, 1e-6, "greedy error")
	z := res.Sequence
	if z.Len() != 4 {
		t.Fatalf("greedy result size = %d, want 4:\n%v", z.Len(), z)
	}
	// z1 = (A,800,[1,2]), z2 = (A,420,[3,7]), z3 = s6, z4 = s7.
	approx(t, z.Rows[0].Aggs[0], 800, 1e-9, "z1")
	approx(t, z.Rows[1].Aggs[0], 420, 1e-9, "z2")
	if z.Rows[1].T != (temporal.Interval{Start: 3, End: 7}) {
		t.Errorf("z2 interval = %v, want [3, 7]", z.Rows[1].T)
	}
	opt, _ := PTAc(seq, 4, Options{})
	ratio := res.Error / opt.Error
	approx(t, ratio, 1.28, 0.005, "error ratio")
}

// TestGMSReducesToCMin: with c = 1 the greedy stops at cmin = 3.
func TestGMSReducesToCMin(t *testing.T) {
	res, err := GMS(figure1c(), 1, Options{})
	if err != nil {
		t.Fatalf("GMS: %v", err)
	}
	if res.C != 3 {
		t.Errorf("C = %d, want cmin = 3", res.C)
	}
	approx(t, res.Error, 269285.714, 1e-2, "max error")
}

// TestGPTAcExample21 runs gPTAc with c=3, δ=1 over the running example and
// checks the final state of Fig. 12(h): {s1⊕...⊕s5, s6, s7}, with the heap
// never exceeding five tuples.
func TestGPTAcExample21(t *testing.T) {
	res, err := GPTAc(NewSliceStream(figure1c()), 3, 1, Options{})
	if err != nil {
		t.Fatalf("GPTAc: %v", err)
	}
	z := res.Sequence
	if z.Len() != 3 {
		t.Fatalf("result size = %d, want 3:\n%v", z.Len(), z)
	}
	// s1⊕...⊕s5 = (A, 3700/7, [1,7]).
	approx(t, z.Rows[0].Aggs[0], 3700.0/7.0, 1e-9, "merged value")
	if z.Rows[0].T != (temporal.Interval{Start: 1, End: 7}) {
		t.Errorf("merged interval = %v, want [1, 7]", z.Rows[0].T)
	}
	if res.MaxHeap != 5 {
		t.Errorf("MaxHeap = %d, want 5 (Example 21)", res.MaxHeap)
	}
}

// TestGPTAcDeltaInfEqualsGMS is Theorem 2 on the running example.
func TestGPTAcDeltaInfEqualsGMS(t *testing.T) {
	for c := 3; c <= 6; c++ {
		g, err := GPTAc(NewSliceStream(figure1c()), c, DeltaInf, Options{})
		if err != nil {
			t.Fatalf("GPTAc: %v", err)
		}
		m, err := GMS(figure1c(), c, Options{})
		if err != nil {
			t.Fatalf("GMS: %v", err)
		}
		if !g.Sequence.Equal(m.Sequence, 1e-9) {
			t.Errorf("c=%d: gPTAc(δ=∞) ≠ GMS:\n%v\nvs\n%v", c, g.Sequence, m.Sequence)
		}
		approx(t, g.Error, m.Error, 1e-6, "error")
	}
}

// TestGPTAeExample22 runs gPTAε with ε=0.5, δ=1 and the exact estimates on
// the running example and cross-checks against error-bounded GMS.
func TestGPTAeExample22(t *testing.T) {
	seq := figure1c()
	est, err := ExactEstimate(seq, Options{})
	if err != nil {
		t.Fatalf("ExactEstimate: %v", err)
	}
	approx(t, est.EMax, 269285.714, 1e-2, "estimate EMax")
	if est.N != 7 {
		t.Errorf("estimate N = %d, want 7", est.N)
	}
	res, err := GPTAe(NewSliceStream(seq), 0.5, 1, est, Options{})
	if err != nil {
		t.Fatalf("GPTAe: %v", err)
	}
	if res.Error > 0.5*est.EMax {
		t.Errorf("error %v exceeds bound %v", res.Error, 0.5*est.EMax)
	}
	gms, err := GMSError(seq, 0.5, Options{})
	if err != nil {
		t.Fatalf("GMSError: %v", err)
	}
	if res.C != gms.C {
		t.Errorf("gPTAε C = %d, GMS C = %d", res.C, gms.C)
	}
}

// TestDissimilarityMatchesSSE checks Proposition 2 on Fig. 10's key values.
func TestDissimilarityMatchesSSE(t *testing.T) {
	w2 := []float64{1}
	s4 := temporal.SeqRow{Aggs: []float64{350}, T: temporal.Interval{Start: 5, End: 6}}
	s5 := temporal.SeqRow{Aggs: []float64{300}, T: temporal.Interval{Start: 7, End: 7}}
	approx(t, Dissimilarity(s4, s5, w2), 1666.666, 1e-2, "dsim(s4,s5)")
	s2 := temporal.SeqRow{Aggs: []float64{600}, T: temporal.Interval{Start: 3, End: 3}}
	s3 := temporal.SeqRow{Aggs: []float64{500}, T: temporal.Interval{Start: 4, End: 4}}
	approx(t, Dissimilarity(s2, s3, w2), 5000, 1e-6, "dsim(s2,s3)")
	s1 := temporal.SeqRow{Aggs: []float64{800}, T: temporal.Interval{Start: 1, End: 2}}
	approx(t, Dissimilarity(s1, s2, w2), 26666.666, 1e-2, "dsim(s1,s2)")
	// Fig. 10(b): key of s4⊕s5 against s2⊕s3 after both merges.
	s45 := MergeRows(s4, s5)
	s23 := MergeRows(s2, s3)
	approx(t, Dissimilarity(s23, s45, w2), 56333.333, 1e-2, "dsim(s2⊕s3, s4⊕s5)")
}

// TestMergeRowsExample3 checks s1 ⊕ s2 = (A, 733.33, [1,3]).
func TestMergeRowsExample3(t *testing.T) {
	s1 := temporal.SeqRow{Aggs: []float64{800}, T: temporal.Interval{Start: 1, End: 2}}
	s2 := temporal.SeqRow{Aggs: []float64{600}, T: temporal.Interval{Start: 3, End: 3}}
	z := MergeRows(s1, s2)
	approx(t, z.Aggs[0], 733.3333, 1e-3, "merged value")
	if z.T != (temporal.Interval{Start: 1, End: 3}) {
		t.Errorf("merged interval = %v", z.T)
	}
}

// TestSSEBetweenExample5 checks SSE(s, z) for the merge of s1, s2 into
// (A, 733.33, [1,3]): 26 666.67.
func TestSSEBetweenExample5(t *testing.T) {
	seq := figure1c()
	z := seq.WithRows([]temporal.SeqRow{
		MergeRows(seq.Rows[0], seq.Rows[1]),
		seq.Rows[2], seq.Rows[3], seq.Rows[4], seq.Rows[5], seq.Rows[6],
	})
	got, err := SSEBetween(seq, z, Options{})
	if err != nil {
		t.Fatalf("SSEBetween: %v", err)
	}
	approx(t, got, 26666.666, 1e-2, "SSE")
}

// TestSSEBetweenFullReduction: SSE of the Fig. 1(d) result equals the DP's
// reported error.
func TestSSEBetweenFullReduction(t *testing.T) {
	seq := figure1c()
	res, _ := PTAc(seq, 4, Options{})
	got, err := SSEBetween(seq, res.Sequence, Options{})
	if err != nil {
		t.Fatalf("SSEBetween: %v", err)
	}
	approx(t, got, res.Error, 1e-6, "SSE vs DP error")
}

// TestWeightsScaleError: doubling the weight quadruples the error.
func TestWeightsScaleError(t *testing.T) {
	seq := figure1c()
	base, _ := PTAc(seq, 4, Options{})
	scaled, err := PTAc(seq, 4, Options{Weights: []float64{2}})
	if err != nil {
		t.Fatalf("PTAc: %v", err)
	}
	approx(t, scaled.Error, 4*base.Error, 1e-6, "scaled error")
}
