package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// bitIdenticalRows reports whether two sequences over the same group
// dictionary carry bit-for-bit equal rows — the strongest equality the
// multi-budget pass promises against the single-budget evaluators.
func bitIdenticalRows(a, b *temporal.Sequence) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Group != rb.Group || ra.T != rb.T || len(ra.Aggs) != len(rb.Aggs) {
			return false
		}
		for d := range ra.Aggs {
			if math.Float64bits(ra.Aggs[d]) != math.Float64bits(rb.Aggs[d]) {
				return false
			}
		}
	}
	return true
}

// TestDPMultiParallelMatchesSingleBudget: one shared-curve pass answers a
// mixed batch of size and error budgets bit-identically to running
// PTAcParallel/PTAeParallel per budget — the amortization changes cost,
// never results.
func TestDPMultiParallelMatchesSingleBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.3)
		cmin := seq.CMin()
		n := seq.Len()
		budgets := []MultiBudget{
			{C: cmin},
			{C: cmin + rng.Intn(n-cmin+1)},
			{C: n},
			{Eps: 0},
			{Eps: rng.Float64()},
			{Eps: 1},
		}
		got, err := DPMultiParallel(seq, budgets, Options{}, 3)
		if err != nil {
			return false
		}
		for i, b := range budgets {
			var want *DPResult
			if b.C > 0 {
				want, err = PTAcParallel(seq, b.C, Options{}, 2)
			} else {
				want, err = PTAeParallel(seq, b.Eps, Options{}, 2)
			}
			if err != nil {
				return false
			}
			if got[i].C != want.C {
				return false
			}
			if math.Float64bits(got[i].Error) != math.Float64bits(want.Error) {
				return false
			}
			if !bitIdenticalRows(got[i].Sequence, want.Sequence) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDPMultiParallelAgreesWithSerialMulti: the parallel multi-budget pass
// optimizes the same objective as the serial one — equal optimal errors and
// sizes on random gapped inputs.
func TestDPMultiParallelAgreesWithSerialMulti(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(30), 1+rng.Intn(2), 0.25)
		cmin := seq.CMin()
		n := seq.Len()
		budgets := []MultiBudget{
			{C: cmin + rng.Intn(n-cmin+1)},
			{Eps: rng.Float64()},
		}
		got, err := DPMultiParallel(seq, budgets, Options{}, 4)
		if err != nil {
			return false
		}
		want, err := DPMulti(seq, budgets, Options{}, true, true)
		if err != nil {
			return false
		}
		for i := range budgets {
			if got[i].C != want[i].C {
				return false
			}
			if math.Abs(got[i].Error-want[i].Error) > 1e-6*(1+want[i].Error) {
				return false
			}
			if got[i].Sequence.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDPMultiParallelSharedCurveStats: every result of one batch reports
// the same fill counters — the cost of the one shared curve set — and that
// cost does not grow with the number of budgets served.
func TestDPMultiParallelSharedCurveStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seq := randomSequence(rng, 40, 1, 0.3)
	cmin := seq.CMin()
	n := seq.Len()
	one, err := DPMultiParallel(seq, []MultiBudget{{C: n - 1}}, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []MultiBudget{{C: n - 1}, {C: cmin}, {C: (cmin + n) / 2}, {C: cmin + 1}}
	many, err := DPMultiParallel(seq, budgets, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range many {
		if many[i].Stats != many[0].Stats {
			t.Errorf("result %d stats %+v != shared %+v", i, many[i].Stats, many[0].Stats)
		}
	}
	if one[0].Stats.Cells == 0 {
		t.Fatal("single-budget pass reports zero cells")
	}
	if many[0].Stats.Cells != one[0].Stats.Cells {
		t.Errorf("batch of %d budgets filled %d cells, single deepest budget %d — curves not shared",
			len(budgets), many[0].Stats.Cells, one[0].Stats.Cells)
	}
}

// TestDPMultiParallelValidation mirrors the serial multi-budget argument
// checks: infeasible sizes and out-of-range bounds fail up front.
func TestDPMultiParallelValidation(t *testing.T) {
	seq := figure1c()
	if _, err := DPMultiParallel(seq, []MultiBudget{{C: 2}}, Options{}, 2); err == nil {
		t.Error("c below cmin should fail")
	}
	if _, err := DPMultiParallel(seq, []MultiBudget{{Eps: 1.5}}, Options{}, 2); err == nil {
		t.Error("eps above 1 should fail")
	}
	res, err := DPMultiParallel(seq, []MultiBudget{{C: seq.Len()}, {Eps: 0.2}}, Options{}, 2)
	if err != nil || res[0].C != seq.Len() {
		t.Errorf("c = n: %+v, %v", res, err)
	}
	empty := seq.WithRows(nil)
	eres, err := DPMultiParallel(empty, []MultiBudget{{Eps: 0.5}}, Options{}, 2)
	if err != nil || eres[0].C != 0 {
		t.Errorf("empty relation: %+v, %v", eres, err)
	}
}
