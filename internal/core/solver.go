package core

import (
	"context"
	"fmt"

	"repro/internal/temporal"
)

// Solver owns an incrementally filled pair of DP matrices for one sequence:
// the error column E[k][n] and every split-point row J[k] computed so far are
// retained, so answering a new budget reuses all rows filled by earlier
// budgets and only extends the matrices when a deeper row is needed. It is
// the unit a serving layer caches per hot series — a repeated budget costs
// one backtrack, no DP fill at all.
//
// A Solver is NOT safe for concurrent use; callers serialize access (the
// serve-layer cache guards each entry with a mutex). The context travels per
// call, so one cached Solver serves requests with different deadlines.
type Solver struct {
	kn     *CostKernel
	st     *dpState
	opts   Options   // construction options; Ctx is replaced per call
	rowErr []float64 // rowErr[k] = E[k][n] for k = 1..filled
	filled int
	bound  float64 // SSEmax, resolved lazily for error budgets
	hasMax bool
	lazy   SplitRowSource // non-nil after RestoreLazy; rows 1..restored may be unmaterialized
}

// NewSolver builds a solver for the sequence with the given pruning flags
// (PruneBoth semantics split into its two Section 5.3 bounds, matching
// DPMulti). Options.Fill selects the row-fill algorithm; every algorithm
// fills bitwise-identical matrices, so cached solvers built with different
// fills stay interchangeable. The options' Ctx and Scratch are ignored:
// rows and kernel slabs must outlive any single call, so the solver always
// owns its buffers.
func NewSolver(seq *temporal.Sequence, opts Options, pruneI, pruneJ bool) (*Solver, error) {
	if seq.Len() == 0 {
		return nil, fmt.Errorf("core: solver over an empty relation")
	}
	opts.Ctx, opts.Scratch = nil, nil
	if opts.Fill == FillAuto && pruneI && pruneJ && seq.Len() >= fillAutoThreshold {
		// The incremental path answers rows one at a time (Deepen), where
		// the batch fills would redo their whole-row setup per row; the
		// online frontier fill is built for exactly this shape. Matrices
		// are bitwise-identical across fills, so the swap is invisible to
		// cache keys (FillAuto shares the DPClass) and to results.
		opts.Fill = FillOnline
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	st := newDPState(kn, opts, pruneI, pruneJ, true)
	st.ownSplits = true
	return &Solver{
		kn:     kn,
		st:     st,
		opts:   opts,
		rowErr: make([]float64, kn.N()+1),
	}, nil
}

// N returns the input size n.
func (sv *Solver) N() int { return sv.kn.N() }

// Rows returns how many matrix rows have been filled so far.
func (sv *Solver) Rows() int { return sv.filled }

// Stats reports the cumulative work of every row filled so far (not a
// per-budget share — a fully warm solver answers budgets with zero new
// cells).
func (sv *Solver) Stats() DPStats { return sv.st.stats }

// MemBytes estimates the retained matrix memory: the split-point rows
// dominate (one int32 per column per filled row).
func (sv *Solver) MemBytes() int64 {
	n := int64(sv.kn.N() + 1)
	return int64(sv.filled)*n*4 + // J rows
		3*n*8 // prevE, curE, rowErr
}

// Fill returns the concrete row-fill algorithm the solver resolved to
// (never FillAuto).
func (sv *Solver) Fill() FillAlgo { return sv.st.algo }

// MonotoneCoverage reports the kernel's certified dispatch coverage — the
// fraction of rows the monotone fills accelerate. The certification is
// computed at most once per solver lifetime (see CostKernel), so scraping
// this per request is free.
func (sv *Solver) MonotoneCoverage() float64 { return sv.kn.MonotoneCoverage() }

// Deepen fills matrix rows up to k without answering a budget: the explicit
// resume entry point for callers that pace the fill themselves (a serving
// layer warming a cache entry between requests, the streaming evaluators
// extending retained rows as data arrives). Already-filled rows are never
// recomputed; Deepen(ctx, k) for k ≤ Rows() is a no-op.
func (sv *Solver) Deepen(ctx context.Context, k int) error {
	if k > sv.kn.N() {
		k = sv.kn.N()
	}
	return sv.ensure(ctx, k)
}

// ensure fills rows filled+1..k under ctx. Rows are filled strictly in
// order; already-filled rows are never recomputed.
func (sv *Solver) ensure(ctx context.Context, k int) error {
	sv.st.opts.Ctx = ctx
	for next := sv.filled + 1; next <= k; next++ {
		e, err := sv.st.fillRow(next)
		if err != nil {
			return err
		}
		sv.rowErr[next] = e
		sv.filled = next
	}
	return nil
}

// SolveSize answers a size budget c: the minimal-error reduction to at most
// c tuples, reusing every previously filled row.
func (sv *Solver) SolveSize(ctx context.Context, c int) (*DPResult, error) {
	n := sv.kn.N()
	if cmin := sv.kn.CMin(); c < cmin {
		return nil, &InfeasibleSizeError{C: c, CMin: cmin}
	}
	if c >= n {
		return &DPResult{Sequence: sv.kn.Sequence().Clone(), C: n, Stats: sv.st.stats}, nil
	}
	if err := sv.ensure(ctx, c); err != nil {
		return nil, err
	}
	if err := sv.materialize(c); err != nil {
		return nil, err
	}
	return &DPResult{
		Sequence: sv.kn.Sequence().WithRows(sv.st.reconstruct(c)),
		C:        c,
		Error:    sv.rowErr[c],
		Stats:    sv.st.stats,
	}, nil
}

// SolverState is the portable warm state of a Solver: every filled
// split-point row, the per-row errors and the last error row — everything a
// fresh Solver over the same sequence and options needs to answer budgets
// (and resume deeper fills) without recomputing a single cell. It is the
// payload a persistent matrix-cache tier serializes; the caller guarantees
// the sequence identity (the serve layer keys spill files by content
// fingerprint), Restore only validates the shapes.
type SolverState struct {
	N      int       // input size the rows were filled for
	Filled int       // rows 1..Filled are present
	RowErr []float64 // RowErr[k-1] = E[k][n], len Filled
	LastE  []float64 // E[Filled][0..n], len n+1; the resume row
	Splits []int32   // J rows, row-major: Splits[(k-1)*(n+1)+i] = J[k][i]
	Bound  float64   // SSEmax if HasMax (error-budget normalization)
	HasMax bool
}

// State snapshots the filled rows. The returned slices are copies; the
// solver may keep filling afterwards. A lazily restored solver materializes
// every outstanding row first, so the error surfaces here when the backing
// store has gone bad rather than as a torn snapshot.
func (sv *Solver) State() (*SolverState, error) {
	if err := sv.materialize(sv.filled); err != nil {
		return nil, err
	}
	n := sv.kn.N()
	st := &SolverState{
		N:      n,
		Filled: sv.filled,
		RowErr: append([]float64(nil), sv.rowErr[1:sv.filled+1]...),
		Bound:  sv.bound,
		HasMax: sv.hasMax,
	}
	if sv.filled > 0 {
		st.LastE = append([]float64(nil), sv.st.curE...)
		st.Splits = make([]int32, sv.filled*(n+1))
		for k := 0; k < sv.filled; k++ {
			copy(st.Splits[k*(n+1):(k+1)*(n+1)], sv.st.splits[k])
		}
	}
	return st, nil
}

// Restore injects a snapshot into a freshly built solver (zero rows
// filled). It validates every shape and every split-point value so a
// corrupt snapshot fails cleanly instead of panicking rows later; on error
// the solver is unchanged and still usable cold.
func (sv *Solver) Restore(st *SolverState) error {
	n := sv.kn.N()
	switch {
	case sv.filled != 0:
		return fmt.Errorf("core: restore into a solver with %d filled rows", sv.filled)
	case st.N != n:
		return fmt.Errorf("core: snapshot n=%d, solver n=%d", st.N, n)
	case st.Filled < 1 || st.Filled > n:
		return fmt.Errorf("core: snapshot filled=%d outside 1..%d", st.Filled, n)
	case len(st.RowErr) != st.Filled:
		return fmt.Errorf("core: snapshot has %d row errors, want %d", len(st.RowErr), st.Filled)
	case len(st.LastE) != n+1:
		return fmt.Errorf("core: snapshot last row has %d cells, want %d", len(st.LastE), n+1)
	case len(st.Splits) != st.Filled*(n+1):
		return fmt.Errorf("core: snapshot has %d split cells, want %d", len(st.Splits), st.Filled*(n+1))
	}
	for _, j := range st.Splits {
		if j < 0 || int(j) > n {
			return fmt.Errorf("core: snapshot split point %d outside 0..%d", j, n)
		}
	}
	// The split rows become views into one retained slab, matching the
	// per-row slices fillRow appends.
	slab := append([]int32(nil), st.Splits...)
	sv.st.splits = sv.st.splits[:0]
	for k := 0; k < st.Filled; k++ {
		sv.st.splits = append(sv.st.splits, slab[k*(n+1):(k+1)*(n+1)])
	}
	copy(sv.st.curE, st.LastE) // fillRow(Filled+1) swaps this in as the previous row
	copy(sv.rowErr[1:], st.RowErr)
	sv.filled = st.Filled
	sv.bound, sv.hasMax = st.Bound, st.HasMax
	return nil
}

// SplitRowSource supplies individual restored split-point rows on demand:
// the lazy counterpart of SolverState.Splits, backed by an mmap'd spill file
// in the serve layer so a huge warm matrix costs page faults proportional to
// the rows a budget actually walks. SplitRow returns J[k][0..n] for a
// 1-based k ≤ the restored Filled; implementations validate their own
// framing (CRCs) and return an error for rows they can no longer produce.
type SplitRowSource interface {
	SplitRow(k int) ([]int32, error)
}

// WarmLostError reports that a lazily restored row could not be
// materialized — the backing store was truncated, corrupted or unmapped
// after RestoreLazy. The solver's remaining state is unusable; callers
// discard it and rebuild cold.
type WarmLostError struct {
	Row int // 1-based row that failed to materialize
	Err error
}

func (e *WarmLostError) Error() string {
	return fmt.Sprintf("core: lazily restored split row %d lost: %v", e.Row, e.Err)
}

func (e *WarmLostError) Unwrap() error { return e.Err }

// RestoreLazy is Restore with the split-point rows left behind a
// SplitRowSource instead of copied up front: the scalar state (row errors,
// resume row, bound) restores eagerly — SolveError's search scans RowErr, so
// it must be resident — while each J row materializes on first touch by a
// reconstruction. st.Splits is ignored; rows is consulted once per row and
// the solver retains what it returns, so a row is read (and its CRC paid)
// at most once per solver lifetime.
func (sv *Solver) RestoreLazy(st *SolverState, rows SplitRowSource) error {
	n := sv.kn.N()
	switch {
	case rows == nil:
		return fmt.Errorf("core: lazy restore without a row source")
	case sv.filled != 0:
		return fmt.Errorf("core: restore into a solver with %d filled rows", sv.filled)
	case st.N != n:
		return fmt.Errorf("core: snapshot n=%d, solver n=%d", st.N, n)
	case st.Filled < 1 || st.Filled > n:
		return fmt.Errorf("core: snapshot filled=%d outside 1..%d", st.Filled, n)
	case len(st.RowErr) != st.Filled:
		return fmt.Errorf("core: snapshot has %d row errors, want %d", len(st.RowErr), st.Filled)
	case len(st.LastE) != n+1:
		return fmt.Errorf("core: snapshot last row has %d cells, want %d", len(st.LastE), n+1)
	}
	// Unmaterialized rows are nil slots; fillRow appends deeper rows after
	// them, so Deepen works before any reconstruction forces a read.
	sv.st.splits = append(sv.st.splits[:0], make([][]int32, st.Filled)...)
	copy(sv.st.curE, st.LastE)
	copy(sv.rowErr[1:], st.RowErr)
	sv.filled = st.Filled
	sv.bound, sv.hasMax = st.Bound, st.HasMax
	sv.lazy = rows
	return nil
}

// materialize loads every still-lazy split row in 1..k, validating shape and
// range exactly like Restore. reconstruct(k) walks rows k..1 unconditionally,
// so it runs behind this; eagerly restored solvers return immediately.
func (sv *Solver) materialize(k int) error {
	if sv.lazy == nil {
		return nil
	}
	n := sv.kn.N()
	for r := 1; r <= k && r <= len(sv.st.splits); r++ {
		if sv.st.splits[r-1] != nil {
			continue
		}
		row, err := sv.lazy.SplitRow(r)
		if err != nil {
			return &WarmLostError{Row: r, Err: err}
		}
		if len(row) != n+1 {
			return &WarmLostError{Row: r, Err: fmt.Errorf("row has %d cells, want %d", len(row), n+1)}
		}
		for _, j := range row {
			if j < 0 || int(j) > n {
				return &WarmLostError{Row: r, Err: fmt.Errorf("split point %d outside 0..%d", j, n)}
			}
		}
		sv.st.splits[r-1] = row
	}
	return nil
}

// SolveError answers an error budget eps ∈ [0, 1]: the smallest k whose
// reduction introduces at most eps·SSEmax error. Rows filled while searching
// are retained for later budgets.
func (sv *Solver) SolveError(ctx context.Context, eps float64) (*DPResult, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: error bound %v outside [0, 1]", eps)
	}
	if !sv.hasMax {
		sv.bound = sv.kn.MaxError()
		sv.hasMax = true
	}
	bound := acceptErrorBound(eps*sv.bound, sv.bound)
	n := sv.kn.N()
	for k := 1; k <= n; k++ {
		if k > sv.filled {
			if err := sv.ensure(ctx, k); err != nil {
				return nil, err
			}
		}
		if sv.rowErr[k] <= bound {
			if err := sv.materialize(k); err != nil {
				return nil, err
			}
			return &DPResult{
				Sequence: sv.kn.Sequence().WithRows(sv.st.reconstruct(k)),
				C:        k,
				Error:    sv.rowErr[k],
				Stats:    sv.st.stats,
			}, nil
		}
	}
	// E[n][n] = 0 ≤ bound always triggers within the loop.
	panic("core: solver error-bounded search did not terminate")
}
