package core

import (
	"context"
	"fmt"

	"repro/internal/temporal"
)

// Solver owns an incrementally filled pair of DP matrices for one sequence:
// the error column E[k][n] and every split-point row J[k] computed so far are
// retained, so answering a new budget reuses all rows filled by earlier
// budgets and only extends the matrices when a deeper row is needed. It is
// the unit a serving layer caches per hot series — a repeated budget costs
// one backtrack, no DP fill at all.
//
// A Solver is NOT safe for concurrent use; callers serialize access (the
// serve-layer cache guards each entry with a mutex). The context travels per
// call, so one cached Solver serves requests with different deadlines.
type Solver struct {
	kn     *CostKernel
	st     *dpState
	opts   Options   // construction options; Ctx is replaced per call
	rowErr []float64 // rowErr[k] = E[k][n] for k = 1..filled
	filled int
	bound  float64 // SSEmax, resolved lazily for error budgets
	hasMax bool
}

// NewSolver builds a solver for the sequence with the given pruning flags
// (PruneBoth semantics split into its two Section 5.3 bounds, matching
// DPMulti). Options.Fill selects the row-fill algorithm; every algorithm
// fills bitwise-identical matrices, so cached solvers built with different
// fills stay interchangeable. The options' Ctx and Scratch are ignored:
// rows and kernel slabs must outlive any single call, so the solver always
// owns its buffers.
func NewSolver(seq *temporal.Sequence, opts Options, pruneI, pruneJ bool) (*Solver, error) {
	if seq.Len() == 0 {
		return nil, fmt.Errorf("core: solver over an empty relation")
	}
	opts.Ctx, opts.Scratch = nil, nil
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	st := newDPState(kn, opts, pruneI, pruneJ, true)
	st.ownSplits = true
	return &Solver{
		kn:     kn,
		st:     st,
		opts:   opts,
		rowErr: make([]float64, kn.N()+1),
	}, nil
}

// N returns the input size n.
func (sv *Solver) N() int { return sv.kn.N() }

// Rows returns how many matrix rows have been filled so far.
func (sv *Solver) Rows() int { return sv.filled }

// Stats reports the cumulative work of every row filled so far (not a
// per-budget share — a fully warm solver answers budgets with zero new
// cells).
func (sv *Solver) Stats() DPStats { return sv.st.stats }

// MemBytes estimates the retained matrix memory: the split-point rows
// dominate (one int32 per column per filled row).
func (sv *Solver) MemBytes() int64 {
	n := int64(sv.kn.N() + 1)
	return int64(sv.filled)*n*4 + // J rows
		3*n*8 // prevE, curE, rowErr
}

// ensure fills rows filled+1..k under ctx. Rows are filled strictly in
// order; already-filled rows are never recomputed.
func (sv *Solver) ensure(ctx context.Context, k int) error {
	sv.st.opts.Ctx = ctx
	for next := sv.filled + 1; next <= k; next++ {
		e, err := sv.st.fillRow(next)
		if err != nil {
			return err
		}
		sv.rowErr[next] = e
		sv.filled = next
	}
	return nil
}

// SolveSize answers a size budget c: the minimal-error reduction to at most
// c tuples, reusing every previously filled row.
func (sv *Solver) SolveSize(ctx context.Context, c int) (*DPResult, error) {
	n := sv.kn.N()
	if cmin := sv.kn.CMin(); c < cmin {
		return nil, &InfeasibleSizeError{C: c, CMin: cmin}
	}
	if c >= n {
		return &DPResult{Sequence: sv.kn.Sequence().Clone(), C: n, Stats: sv.st.stats}, nil
	}
	if err := sv.ensure(ctx, c); err != nil {
		return nil, err
	}
	return &DPResult{
		Sequence: sv.kn.Sequence().WithRows(sv.st.reconstruct(c)),
		C:        c,
		Error:    sv.rowErr[c],
		Stats:    sv.st.stats,
	}, nil
}

// SolveError answers an error budget eps ∈ [0, 1]: the smallest k whose
// reduction introduces at most eps·SSEmax error. Rows filled while searching
// are retained for later budgets.
func (sv *Solver) SolveError(ctx context.Context, eps float64) (*DPResult, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: error bound %v outside [0, 1]", eps)
	}
	if !sv.hasMax {
		sv.bound = sv.kn.MaxError()
		sv.hasMax = true
	}
	bound := acceptErrorBound(eps*sv.bound, sv.bound)
	n := sv.kn.N()
	for k := 1; k <= n; k++ {
		if k > sv.filled {
			if err := sv.ensure(ctx, k); err != nil {
				return nil, err
			}
		}
		if sv.rowErr[k] <= bound {
			return &DPResult{
				Sequence: sv.kn.Sequence().WithRows(sv.st.reconstruct(k)),
				C:        k,
				Error:    sv.rowErr[k],
				Stats:    sv.st.stats,
			}, nil
		}
	}
	// E[n][n] = 0 ≤ bound always triggers within the loop.
	panic("core: solver error-bounded search did not terminate")
}
