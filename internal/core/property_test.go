package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// randomSequence builds a valid sequential relation with the given number of
// rows, aggregate dimensions, and a gap/group-change probability.
func randomSequence(rng *rand.Rand, n, p int, gapProb float64) *temporal.Sequence {
	attrs := []temporal.Attribute{{Name: "g", Kind: temporal.KindInt}}
	names := make([]string, p)
	for d := range names {
		names[d] = "v" + string(rune('0'+d))
	}
	s := temporal.NewSequence(attrs, names)
	group := int64(0)
	gid := s.Groups.Intern([]temporal.Datum{temporal.Int(group)})
	tcur := temporal.Chronon(0)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < gapProb {
			if rng.Intn(2) == 0 {
				group++ // group change
				gid = s.Groups.Intern([]temporal.Datum{temporal.Int(group)})
				tcur = 0
			} else {
				tcur += temporal.Chronon(1 + rng.Intn(3)) // temporal gap
			}
		}
		length := temporal.Chronon(1 + rng.Intn(4))
		aggs := make([]float64, p)
		for d := range aggs {
			aggs[d] = math.Round(rng.Float64()*1000) / 10 // 0.0 .. 100.0
		}
		s.Rows = append(s.Rows, temporal.SeqRow{Group: gid, Aggs: aggs,
			T: temporal.Interval{Start: tcur, End: tcur + length - 1}})
		tcur += length
	}
	return s
}

// naiveSSE computes the error of merging rows i..j (1-based) directly from
// Definition 5: merge, then sum length-weighted squared deviations.
func naiveSSE(seq *temporal.Sequence, i, j int, w2 []float64) float64 {
	var totalLen float64
	p := seq.P()
	mean := make([]float64, p)
	for k := i; k <= j; k++ {
		l := float64(seq.Rows[k-1].T.Len())
		totalLen += l
		for d := 0; d < p; d++ {
			mean[d] += l * seq.Rows[k-1].Aggs[d]
		}
	}
	for d := range mean {
		mean[d] /= totalLen
	}
	var sse float64
	for k := i; k <= j; k++ {
		l := float64(seq.Rows[k-1].T.Len())
		for d := 0; d < p; d++ {
			diff := seq.Rows[k-1].Aggs[d] - mean[d]
			sse += w2[d] * l * diff * diff
		}
	}
	return sse
}

// TestPrefixPropSSEMatchesNaive: the O(p) prefix formula of Proposition 1
// agrees with the direct Definition 5 computation on every run.
func TestPrefixPropSSEMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(12), 1+rng.Intn(3), 0)
		px, err := NewKernel(seq, Options{})
		if err != nil {
			return false
		}
		for i := 1; i <= seq.Len(); i++ {
			for j := i; j <= seq.Len(); j++ {
				want := naiveSSE(seq, i, j, px.w2)
				got := px.MergeErr(i, j)
				if math.Abs(got-want) > 1e-6*(1+want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bruteForceOptimal enumerates every contiguous partition of the sequence
// into c blocks and returns the minimal total merge error — the semantics of
// Definition 6 stated directly.
func bruteForceOptimal(px *CostKernel, c int) float64 {
	n := px.N()
	best := Inf
	// splits[k] is the index (1-based, exclusive) where block k ends.
	var rec func(start, blocksLeft int, acc float64)
	rec = func(start, blocksLeft int, acc float64) {
		if acc >= best {
			return
		}
		if blocksLeft == 1 {
			e := px.MergeErrAll(start, n)
			if acc+e < best {
				best = acc + e
			}
			return
		}
		for end := start; end <= n-blocksLeft+1; end++ {
			e := px.MergeErrAll(start, end)
			if math.IsInf(e, 1) {
				break // further extension keeps the gap
			}
			rec(end+1, blocksLeft-1, acc+e)
		}
	}
	rec(1, c, 0)
	return best
}

// TestPTAcPropOptimal: the DP error equals the brute-force optimum on small
// random inputs, with and without gaps.
func TestPTAcPropOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(9), 1+rng.Intn(2), 0.25)
		px, err := NewKernel(seq, Options{})
		if err != nil {
			return false
		}
		cmin := px.CMin()
		for c := cmin; c <= seq.Len(); c++ {
			res, err := PTAc(seq, c, Options{})
			if err != nil {
				return false
			}
			want := bruteForceOptimal(px, c)
			if math.Abs(res.Error-want) > 1e-6*(1+want) {
				t.Logf("seed %d c=%d: DP error %v, brute force %v", seed, c, res.Error, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPTAcPropMatchesBasic: pruning never changes the DP result.
func TestPTAcPropMatchesBasic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(25), 1+rng.Intn(3), 0.2)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		a, err1 := PTAc(seq, c, Options{})
		b, err2 := DPBasic(seq, c, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Error-b.Error) <= 1e-6*(1+b.Error) &&
			a.Sequence.Equal(b.Sequence, 1e-6) &&
			a.Stats.InnerIters <= b.Stats.InnerIters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPTAcPropReductionInvariants: the result is a valid sequential
// relation of exactly c rows that tiles the original cover, and every output
// value is the length-weighted mean of its constituents.
func TestPTAcPropReductionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(20), 1+rng.Intn(3), 0.2)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		res, err := PTAc(seq, c, Options{})
		if err != nil {
			return false
		}
		z := res.Sequence
		if z.Len() != c || z.Validate() != nil {
			return false
		}
		if z.TotalLen() != seq.TotalLen() {
			return false
		}
		// The reported error must equal the independently computed SSE.
		sse, err := SSEBetween(seq, z, Options{})
		if err != nil {
			return false
		}
		return math.Abs(sse-res.Error) <= 1e-6*(1+sse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestErrorCurveProp: the error curve is non-increasing in k, infinite
// exactly below cmin, zero at k = n, and consistent with PTAc.
func TestErrorCurveProp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(15), 1, 0.25)
		n := seq.Len()
		curve, err := ErrorCurve(seq, n, Options{})
		if err != nil {
			return false
		}
		cmin := seq.CMin()
		for k := 1; k <= n; k++ {
			e := curve[k-1]
			if k < cmin && !math.IsInf(e, 1) {
				return false
			}
			if k >= cmin && math.IsInf(e, 1) {
				return false
			}
			if k > 1 && e > curve[k-2]+1e-9 {
				return false
			}
		}
		if curve[n-1] != 0 {
			return false
		}
		res, err := PTAc(seq, cmin, Options{})
		if err != nil {
			return false
		}
		return math.Abs(curve[cmin-1]-res.Error) <= 1e-6*(1+res.Error)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPTAePropMinimality: PTAe returns the smallest k whose optimal error
// fits the bound, per the error curve.
func TestPTAePropMinimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(15), 1+rng.Intn(2), 0.2)
		eps := rng.Float64()
		res, err := PTAe(seq, eps, Options{})
		if err != nil {
			return false
		}
		curve, err := ErrorCurve(seq, seq.Len(), Options{})
		if err != nil {
			return false
		}
		px, _ := NewKernel(seq, Options{})
		bound := eps * px.MaxError()
		wantC := seq.Len()
		for k := 1; k <= seq.Len(); k++ {
			if curve[k-1] <= bound {
				wantC = k
				break
			}
		}
		return res.C == wantC && res.Error <= bound+1e-9*(1+bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGreedyPropNeverBeatsOptimal: SSE(greedy) ≥ SSE(optimal), and the
// greedy result is a valid reduction with consistent reported error.
func TestGreedyPropNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(20), 1+rng.Intn(3), 0.2)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		greedy, err1 := GMS(seq, c, Options{})
		opt, err2 := PTAc(seq, c, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if greedy.C != c || greedy.Sequence.Validate() != nil {
			return false
		}
		sse, err := SSEBetween(seq, greedy.Sequence, Options{})
		if err != nil || math.Abs(sse-greedy.Error) > 1e-6*(1+sse) {
			return false
		}
		return greedy.Error >= opt.Error-1e-9*(1+opt.Error)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGPTAcPropTheorem2GapFree: on gap-free streams gPTAc with δ=∞ never
// merges before the stream ends (Proposition 3 cannot trigger without gaps),
// so its drain phase is exactly GMS and the outputs are identical — the
// setting in which Theorem 2 holds unconditionally.
func TestGPTAcPropTheorem2GapFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0)
		c := 1 + rng.Intn(seq.Len())
		gms, err1 := GMS(seq, c, Options{})
		gptac, err2 := GPTAc(NewSliceStream(seq), c, DeltaInf, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return gptac.Sequence.Equal(gms.Sequence, 1e-9) &&
			math.Abs(gptac.Error-gms.Error) <= 1e-9*(1+gms.Error)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGPTAcPropNearGMS: with gaps present, the published Fig. 11 conditions
// can commit to an early merge of already-merged nodes whose key exceeds a
// cheaper pair that only arrives later in the stream — a case outside the
// literal premises of Proposition 3 (which speaks of original tuple pairs).
// The outputs then deviate from GMS (see TestGPTAcKnownDeviationFromGMS for
// a pinned instance). The deviation is bounded: both runs share all merges
// cheaper than the divergence point, so we assert size, validity, and an
// error within a factor 2 of GMS either way.
func TestGPTAcPropNearGMS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.25)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		gms, err1 := GMS(seq, c, Options{})
		gptac, err2 := GPTAc(NewSliceStream(seq), c, DeltaInf, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if gptac.C != gms.C || gptac.Sequence.Validate() != nil {
			return false
		}
		lo, hi := gms.Error/2-1e-9, gms.Error*2+1e-9
		return gptac.Error >= lo && gptac.Error <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGPTAcKnownDeviationFromGMS pins the counterexample found during
// development: 39 rows, 12 gaps, c = 14. gPTAc's BG ≥ c rule (Fig. 11)
// forces the merge of two already-merged nodes (key ≈ 10 621) before a
// cheaper pair (key ≈ 5 008) arrives later in the stream; GMS, with the
// whole relation in view, reaches size c without gPTAc's final drain merge.
// The deviation is tiny (gPTAc's total error is even lower here) and both
// remain valid reductions to c — documenting that the paper's Theorem 2 is
// exact only when early merges involve original tuple pairs.
func TestGPTAcKnownDeviationFromGMS(t *testing.T) {
	rng := rand.New(rand.NewSource(7179853928203044407))
	seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.25)
	cmin := seq.CMin()
	c := cmin + rng.Intn(seq.Len()-cmin+1)
	if seq.Len() != 39 || c != 14 {
		t.Skip("math/rand stream changed; counterexample no longer reproducible")
	}
	gms, err1 := GMS(seq, c, Options{})
	gptac, err2 := GPTAc(NewSliceStream(seq), c, DeltaInf, Options{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if gptac.C != gms.C {
		t.Fatalf("sizes differ: %d vs %d", gptac.C, gms.C)
	}
	if gptac.Sequence.Equal(gms.Sequence, 1e-9) {
		t.Fatal("expected the pinned deviation; results are identical")
	}
	if math.Abs(gptac.Error-gms.Error) > 200 {
		t.Errorf("deviation grew: gPTAc %v vs GMS %v", gptac.Error, gms.Error)
	}
}

// TestGPTAePropTheorem3GapFree: on gap-free streams gPTAε with δ=∞ and
// exact estimates produces the GMS error-bounded result (Theorem 3).
func TestGPTAePropTheorem3GapFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0)
		eps := rng.Float64()
		est, err := ExactEstimate(seq, Options{})
		if err != nil {
			return false
		}
		gms, err1 := GMSError(seq, eps, Options{})
		gptae, err2 := GPTAe(NewSliceStream(seq), eps, DeltaInf, est, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return gptae.Sequence.Equal(gms.Sequence, 1e-9) &&
			gptae.C == gms.C
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGPTAePropBoundRespected: with gaps and any δ, gPTAε never exceeds the
// error bound when the estimates are exact.
func TestGPTAePropBoundRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(40), 1+rng.Intn(2), 0.25)
		eps := rng.Float64()
		est, err := ExactEstimate(seq, Options{})
		if err != nil {
			return false
		}
		for _, delta := range []int{0, 1, DeltaInf} {
			res, err := GPTAe(NewSliceStream(seq), eps, delta, est, Options{})
			if err != nil {
				return false
			}
			bound := eps * est.EMax
			if res.Error > bound+1e-9*(1+bound) || res.Sequence.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGPTAcPropDeltaHeapBound: with δ=0 the heap never exceeds c+1 entries
// (a row is inserted, then merging shrinks the heap back to c).
func TestGPTAcPropDeltaHeapBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 5+rng.Intn(40), 1, 0) // gap free
		c := 1 + rng.Intn(seq.Len())
		res, err := GPTAc(NewSliceStream(seq), c, 0, Options{})
		if err != nil {
			return false
		}
		return res.MaxHeap <= c+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGPTAcPropDeltaMonotone: larger δ cannot increase the greedy error
// below... precisely: δ=∞ (GMS) error is the best greedy error, δ=0 the
// most constrained; all δ results must stay within a factor of the GMS
// result's error plus tolerance — here we simply check every δ result is a
// valid reduction to c and its error is consistent.
func TestGPTAcPropDeltaValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 5+rng.Intn(30), 1+rng.Intn(2), 0.15)
		cmin := seq.CMin()
		c := cmin + rng.Intn(seq.Len()-cmin+1)
		for _, delta := range []int{0, 1, 2, DeltaInf} {
			res, err := GPTAc(NewSliceStream(seq), c, delta, Options{})
			if err != nil {
				return false
			}
			if res.C > seq.Len() || res.Sequence.Validate() != nil {
				return false
			}
			if res.C != c && res.C != cmin && res.C > c {
				return false
			}
			sse, err := SSEBetween(seq, res.Sequence, Options{})
			if err != nil || math.Abs(sse-res.Error) > 1e-6*(1+sse) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGMSErrorPropRespectsBound: the error-bounded greedy stays within the
// bound and cannot merge further without exceeding it.
func TestGMSErrorPropRespectsBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(25), 1, 0.2)
		eps := rng.Float64()
		px, _ := NewKernel(seq, Options{})
		bound := eps * px.MaxError()
		res, err := GMSError(seq, eps, Options{})
		if err != nil {
			return false
		}
		return res.Error <= bound+1e-9*(1+bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMergeHeapProp: pushing random keys and repeatedly removing the top
// yields keys in non-decreasing order, with fix() after random key changes.
func TestMergeHeapProp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h mergeHeap
		n := 3 + rng.Intn(60)
		nodes := make([]*node, n)
		for i := range nodes {
			nodes[i] = &node{
				id:  i + 1,
				key: math.Round(rng.Float64()*100) / 4,
				row: temporal.SeqRow{T: temporal.Interval{Start: temporal.Chronon(i), End: temporal.Chronon(i)}},
			}
			h.push(nodes[i])
		}
		// Random key updates.
		for k := 0; k < n/2; k++ {
			nd := nodes[rng.Intn(n)]
			if nd.hpos < 0 {
				continue
			}
			nd.key = math.Round(rng.Float64()*100) / 4
			h.fix(nd)
		}
		// Random removals.
		for k := 0; k < n/4; k++ {
			nd := nodes[rng.Intn(n)]
			if nd.hpos >= 0 {
				h.remove(nd)
			}
		}
		prev := math.Inf(-1)
		for h.len() > 0 {
			top := h.peek()
			if top.key < prev {
				return false
			}
			prev = top.key
			h.remove(top)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestGreedyPropLogBound is a sanity check of Theorem 1's O(log n) error
// ratio: on gap-free random data the ratio stays below a generous
// C·(1 + ln n) envelope.
func TestGreedyPropLogBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 10+rng.Intn(40), 1, 0)
		c := 1 + rng.Intn(seq.Len()/2)
		greedy, err1 := GMS(seq, c, Options{})
		opt, err2 := PTAc(seq, c, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if opt.Error == 0 {
			return greedy.Error <= 1e-9
		}
		ratio := greedy.Error / opt.Error
		return ratio <= 20*(1+math.Log(float64(seq.Len())))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSliceStream exercises the Stream adapter.
func TestSliceStream(t *testing.T) {
	seq := figure1c()
	st := NewSliceStream(seq)
	if st.Sequence().Len() != 0 {
		t.Error("Sequence() must be row-less metadata")
	}
	count := 0
	for {
		_, ok := st.Next()
		if !ok {
			break
		}
		count++
	}
	if count != seq.Len() {
		t.Errorf("streamed %d rows, want %d", count, seq.Len())
	}
}

// TestSampleEstimate checks scaling and validation.
func TestSampleEstimate(t *testing.T) {
	seq := figure1c()
	est, err := SampleEstimate(seq, 100, 0.5, Options{})
	if err != nil {
		t.Fatalf("SampleEstimate: %v", err)
	}
	if est.N != 199 {
		t.Errorf("N = %d, want 199", est.N)
	}
	px, _ := NewKernel(seq, Options{})
	if math.Abs(est.EMax-2*px.MaxError()) > 1e-6 {
		t.Errorf("EMax = %v, want %v", est.EMax, 2*px.MaxError())
	}
	if _, err := SampleEstimate(seq, 100, 0, Options{}); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, err := SampleEstimate(seq, 100, 1.5, Options{}); err == nil {
		t.Error("fraction > 1 should fail")
	}
}
