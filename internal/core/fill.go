package core

import "fmt"

// FillAlgo selects the algorithm that fills one row of the DP error matrix
// E[k] given row E[k−1]. All algorithms produce bitwise-identical E and J
// rows — they share the CostKernel's merge-cost arithmetic and the same
// rightmost-argmin tie handling — and differ only in how many candidate
// split points they evaluate:
//
//   - FillPruned scans candidates right to left with the Jagadish-style
//     early exit (the merge cost grows as the split moves left, so the scan
//     stops once it alone exceeds the best total). Worst case O(n) per
//     cell, O(n²) per row; in practice often far less.
//   - FillDC exploits that inside a monotone segment — a maximal stretch
//     with per-dimension monotone values, certified piecewise by
//     CostKernel.MonotoneSegments — the weighted SSE merge cost satisfies
//     the concave quadrangle inequality, so optimal in-segment split
//     points are monotone across the segment's cells: divide and conquer
//     evaluates O(m log m) in-segment candidates for a segment of m cells.
//   - FillSMAWK applies the SMAWK row-minima algorithm to the same
//     totally monotone candidate matrix: O(m) candidate evaluations per
//     segment, the asymptotic optimum.
//
// Dispatch is per segment, not all-or-nothing: every row's cells are
// partitioned by the kernel's piecewise-monotone segmentation, segments of
// at least fillSegmentMin rows run the selected monotone fill over their
// in-segment candidates and then complete each cell with the pruned scan
// over the remaining out-of-segment candidates (where the quadrangle
// inequality genuinely fails — e.g. values 0, 100, 0 — but the scan's
// early exit usually stops after one boundary probe), and shorter segments
// scan outright. Mixed-shape series therefore get the monotone speedup on
// their monotone stretches instead of losing it to a single direction
// change; results are identical for every selection on every input.
// FillAuto (the zero value) picks FillPruned below fillAutoThreshold rows
// and FillDC at or above it — except for the pruning-ablation modes, whose
// scan-work measurements auto never replaces.
type FillAlgo uint8

const (
	// FillAuto selects the algorithm by input size (the default).
	FillAuto FillAlgo = iota
	// FillPruned is the i*/j′-pruned right-to-left candidate scan.
	FillPruned
	// FillDC is the monotone divide-and-conquer row fill.
	FillDC
	// FillSMAWK is the SMAWK totally-monotone row-minima fill.
	FillSMAWK
)

// fillAutoThreshold is the input size at which FillAuto switches from the
// pruned scan to the monotone divide-and-conquer fill (on series the kernel
// certifies; everything else scans regardless). On certified workloads the
// measured crossover is far below this — FillDC already wins ~2× at n = 64
// and ~40× at n = 8192 — so the threshold only keeps the certification scan
// and recursion off inputs too small to care. The `fill` experiment records
// the trajectory.
const fillAutoThreshold = 256

// fillSegmentMin is the smallest monotone segment the per-segment dispatch
// hands to a monotone fill; shorter segments use the pruned scan for their
// cells. The monotone fills win asymptotically, so the bound only keeps
// recursion/arena setup and the per-cell completion probe off stretches too
// short to repay them — oscillating noise decomposes into segments of two
// or three rows, which the scan handles in as many candidate evaluations.
// CostKernel.MonotoneCoverage reports the row fraction above this bound.
const fillSegmentMin = 16

// String names the algorithm; the names round-trip through ParseFillAlgo.
func (a FillAlgo) String() string {
	switch a {
	case FillAuto:
		return "auto"
	case FillPruned:
		return "pruned"
	case FillDC:
		return "dc"
	case FillSMAWK:
		return "smawk"
	}
	return fmt.Sprintf("fill(%d)", uint8(a))
}

// ParseFillAlgo resolves a row-fill algorithm name ("auto", "pruned", "dc"
// or "smawk").
func ParseFillAlgo(s string) (FillAlgo, error) {
	switch s {
	case "", "auto":
		return FillAuto, nil
	case "pruned":
		return FillPruned, nil
	case "dc":
		return FillDC, nil
	case "smawk":
		return FillSMAWK, nil
	}
	return FillAuto, fmt.Errorf("core: unknown fill algorithm %q (have %v)", s, FillAlgoNames())
}

// FillAlgoNames lists the recognized fill-algorithm names in definition
// order.
func FillAlgoNames() []string {
	return []string{"auto", "pruned", "dc", "smawk"}
}

// resolve maps FillAuto onto a concrete algorithm for an input of size n.
func (a FillAlgo) resolve(n int) FillAlgo {
	if a != FillAuto {
		return a
	}
	if n >= fillAutoThreshold {
		return FillDC
	}
	return FillPruned
}

// The monotone row fills below compute, for every cell i of row k ≥ 2,
//
//	E[k][i] = min_j E[k−1][j] + w(j+1, i),   J[k][i] = the LARGEST argmin,
//
// where w is the merge cost (Inf across gaps). Inside a certified monotone
// segment [a, b] (CostKernel.MonotoneSegments), w satisfies the concave
// quadrangle inequality — for split candidates j < j′ and cells i < i′
// whose merges stay inside the segment,
//
//	w(j+1, i) + w(j′+1, i′) ≤ w(j+1, i′) + w(j′+1, i)
//
// (the weighted sorted 1-D k-means Monge property) — so the candidate
// matrix M[i][j] = E[k−1][j] + w(j+1, i) restricted to the segment's cells
// i ∈ [a, b] and its in-segment candidates j ∈ [a−1, i−1] is totally
// monotone (the E[k−1][j] term is column-constant, so it cannot break the
// inequality; an Inf from an infeasible prefix is column-constant too): if
// a right candidate is at least as good as a left one at some cell, it
// stays at least as good at every later cell. The rightmost in-segment
// argmin is therefore non-decreasing in i, which is exactly the tie-break
// the pruned scan applies (it scans right to left and keeps the first
// strict improvement), so the monotone fills reproduce the scan's
// in-segment minima bit for bit.
//
// Each cell's remaining candidates — split points left of the segment,
// j ∈ [max(k−1, rightmostGapBefore(i)), a−2] — are completed by the same
// right-to-left pruned scan afterwards (completeSegment): the merge cost
// w(j+1, i) still grows as j moves left (SSE over a superset of rows), so
// the Jagadish early exit applies even where the quadrangle inequality does
// not, and in practice the boundary probe stops after a handful of
// candidates. Completion replaces a cell only on strict improvement, and
// every out-of-segment candidate lies left of every in-segment one, so the
// rightmost-argmin convention survives the merge; all candidate values are
// ≥ +0 and computed by the shared kernel arithmetic, so the combined
// minimum is bitwise-identical to the full scan's.
//
// Gaps integrate into the same framework: segments never span a gap, a
// merge cost across a gap is Inf, and those Inf cells persist downward (the
// rightmost gap before i is non-decreasing in i). Both fills therefore
// restrict each cell's candidate window to
// [max(k−1, rightmostGapBefore(i)), i−1] — the Section 5.3 jmin bound — and
// cap the cell range at the k-th gap — the imax bound — unconditionally:
// outside those bounds every candidate is infinite, so the produced rows
// are identical for every PruneMode (only the scan's work differs across
// ablation modes).

// ensureRightGap materializes rightmostGapBefore(i) for every position so
// the monotone fills resolve candidate windows in O(1) under random access.
func (st *dpState) ensureRightGap() {
	if st.rightGap != nil {
		return
	}
	st.rightGap = make([]int32, st.n+1)
	rg, gi := int32(0), 0
	gaps := st.kn.gaps
	for i := 0; i <= st.n; i++ {
		for gi < len(gaps) && gaps[gi] < i {
			rg = int32(gaps[gi])
			gi++
		}
		st.rightGap[i] = rg
	}
}

// effectiveIMax caps a row's cell range at the k-th gap: beyond it every
// cell of row k is infinite regardless of the pruning mode, so the monotone
// fills never visit those cells (the initialization already left them Inf
// with split point 0, matching the scan's output).
func (st *dpState) effectiveIMax(k, imax int) int {
	if k <= len(st.kn.gaps) && st.kn.gaps[k-1] < imax {
		return st.kn.gaps[k-1]
	}
	return imax
}

// pollFill polls cancellation every cancelCheckCells candidate evaluations,
// amortizing the context check off the monotone fills' hot path.
func (st *dpState) pollFill(evals int) error {
	st.fillSteps += int64(evals)
	if st.fillSteps < cancelCheckCells {
		return nil
	}
	st.fillSteps = 0
	return st.opts.canceled()
}

// --- per-segment dispatch ---

// fillRowDC fills row k ≥ 2 with the monotone divide-and-conquer fill,
// dispatched per certified segment.
func (st *dpState) fillRowDC(k, imax int, jrow []int32) error {
	return st.fillRowSegmented(k, imax, jrow, false)
}

// fillRowSMAWK fills row k ≥ 2 with the SMAWK row-minima fill, dispatched
// per certified segment.
func (st *dpState) fillRowSMAWK(k, imax int, jrow []int32) error {
	return st.fillRowSegmented(k, imax, jrow, true)
}

// fillRowSegmented walks the kernel's piecewise-monotone segmentation over
// the row's cells [k, imax]: segments of at least fillSegmentMin rows run
// the selected monotone fill over their in-segment candidates and then
// complete every cell with the out-of-segment scan; shorter segments scan
// outright. On fully monotone data (one segment per run) the completion
// windows are empty and this reduces to a whole-row monotone fill.
func (st *dpState) fillRowSegmented(k, imax int, jrow []int32, useSMAWK bool) error {
	imax = st.effectiveIMax(k, imax)
	if k > imax {
		return nil
	}
	st.ensureRightGap()
	segs := st.segs
	for t, start := range segs {
		a := int(start)
		b := st.n
		if t+1 < len(segs) {
			b = int(segs[t+1]) - 1
		}
		if b < k {
			continue
		}
		if a > imax {
			break
		}
		ilo, ihi := max(k, a), min(imax, b)
		if b-a+1 < fillSegmentMin {
			// Eligibility goes by the full segment length, not the visited
			// slice, so a row's dispatch never depends on its k/imax bounds.
			if err := st.fillScanRange(k, ilo, ihi, jrow); err != nil {
				return err
			}
			continue
		}
		if useSMAWK {
			if err := st.segSMAWK(k, a, ilo, ihi, jrow); err != nil {
				return err
			}
		} else {
			if err := st.dcSolve(k, ilo, ihi, max(k-1, a-1), ihi-1, jrow); err != nil {
				return err
			}
		}
		if err := st.completeSegment(k, a, ilo, ihi, jrow); err != nil {
			return err
		}
	}
	return nil
}

// fillScanRange fills cells ilo..ihi of row k with the pruned candidate
// scan under the monotone fills' conventions: the jmin/imax gap bounds
// apply unconditionally (outside them every candidate is infinite, so the
// produced cells are identical for every PruneMode) and rightGap is
// resolved from the materialized table. It serves the segments too short
// for a monotone fill to repay its setup.
func (st *dpState) fillScanRange(k, ilo, ihi int, jrow []int32) error {
	rerr := st.rerr
	prevE := st.prevE
	for i := ilo; i <= ihi; i++ {
		st.stats.Cells++
		jmin := max(k-1, int(st.rightGap[i]))
		best := Inf
		bestJ := int32(0)
		inner := 0
		for j := i - 1; j >= jmin; j-- {
			inner++
			err2 := rerr(j+1, i)
			if v := prevE[j] + err2; v < best {
				best = v
				bestJ = int32(j)
			}
			// err2 grows as j decreases; once it alone exceeds the best
			// total, no smaller j can win (Jagadish et al.).
			if err2 > best {
				break
			}
		}
		st.stats.InnerIters += int64(inner)
		st.curE[i] = best
		if jrow != nil {
			jrow[i] = bestJ
		}
		if err := st.pollFill(inner); err != nil {
			return err
		}
	}
	return nil
}

// completeSegment finishes cells ilo..ihi of the segment starting at a: the
// monotone fill compared only in-segment candidates j ≥ a−1, so the
// remaining window [max(k−1, rightmostGapBefore(i)), a−2] is scanned right
// to left with the usual early exit, replacing a cell only on strict
// improvement (every out-of-segment candidate lies left of the in-segment
// argmin, so the rightmost-argmin convention is preserved). When the
// segment starts its run the window is empty and the loop falls through.
// The cells were already counted by the monotone fill; only the extra
// candidate evaluations land in InnerIters.
func (st *dpState) completeSegment(k, a, ilo, ihi int, jrow []int32) error {
	rerr := st.rerr
	prevE := st.prevE
	evals := 0
	for i := ilo; i <= ihi; i++ {
		jmin := max(k-1, int(st.rightGap[i]))
		if a-2 < jmin {
			continue
		}
		best := st.curE[i]
		bestJ := int32(-1)
		for j := a - 2; j >= jmin; j-- {
			evals++
			err2 := rerr(j+1, i)
			if v := prevE[j] + err2; v < best {
				best = v
				bestJ = int32(j)
			}
			// err2 grows as j decreases (SSE over a superset of rows); once
			// it alone exceeds the best total, no smaller j can win.
			if err2 > best {
				break
			}
		}
		if bestJ >= 0 {
			st.curE[i] = best
			if jrow != nil {
				jrow[i] = bestJ
			}
		}
	}
	st.stats.InnerIters += int64(evals)
	return st.pollFill(evals)
}

// --- monotone divide and conquer ---

// dcSolve fills cells ilo..ihi with candidate split points clamped to
// [jlo, jhi] (further clamped per cell by its own jmin window).
func (st *dpState) dcSolve(k, ilo, ihi, jlo, jhi int, jrow []int32) error {
	if ilo > ihi {
		return nil
	}
	mid := ilo + (ihi-ilo)/2
	lo := max(jlo, max(k-1, int(st.rightGap[mid])))
	hi := min(jhi, mid-1)
	rerr := st.rerr
	prevE := st.prevE
	best := Inf
	bestJ := 0
	inner := 0
	for j := hi; j >= lo; j-- {
		inner++
		err2 := rerr(j+1, mid)
		if v := prevE[j] + err2; v < best {
			best = v
			bestJ = j
		}
		// err2 grows as j decreases; once it alone exceeds the best total,
		// no smaller j can win (the scan's early exit applies here too).
		if err2 > best {
			break
		}
	}
	st.stats.Cells++
	st.stats.InnerIters += int64(inner)
	st.curE[mid] = best
	if jrow != nil {
		jrow[mid] = int32(bestJ)
	}
	if err := st.pollFill(inner); err != nil {
		return err
	}
	// An Inf cell (every candidate saturated — possible under extreme
	// weights even on certified data) constrains neither neighbor: recurse
	// with the parent's bounds instead of narrowing through its sentinel.
	leftHi, rightLo := bestJ, bestJ
	if best == Inf {
		leftHi, rightLo = jhi, jlo
	}
	if err := st.dcSolve(k, ilo, mid-1, jlo, leftHi, jrow); err != nil {
		return err
	}
	return st.dcSolve(k, mid+1, ihi, rightLo, jhi, jrow)
}

// --- SMAWK ---

// smawkValue evaluates the candidate matrix entry M[i][j] for row k: Inf
// for columns on or right of the diagonal (j ≥ i is not a feasible split
// for cell i) and for split points whose merge would cross a gap,
// E[k−1][j] + w(j+1, i) otherwise. Diagonal pads are handled structurally
// — the reduce step never compares two pads and the interpolation scan
// skips them — so no finite sentinel exists for genuine (arbitrarily
// large) merge costs to undercut.
func (st *dpState) smawkValue(i, j int) float64 {
	if j >= i {
		return Inf
	}
	if int(st.rightGap[i]) > j {
		return Inf
	}
	return st.prevE[j] + st.rerr(j+1, i)
}

// smawkCarve hands out a zero-length int32 slice with the given capacity
// from the per-state arena. The SMAWK recursion is a chain whose level
// sizes halve, so one row fill carves at most 3·(rows+1) entries in total;
// fillRowSMAWK sizes the arena accordingly and resets it per row, which
// keeps the whole fill allocation-free after the first row.
func (st *dpState) smawkCarve(capacity int) []int32 {
	s := st.smawkBuf[st.smawkOff : st.smawkOff : st.smawkOff+capacity]
	st.smawkOff += capacity
	return s
}

// segSMAWK runs the SMAWK algorithm over one certified segment's totally
// monotone candidate matrix: cells ilo..ihi, in-segment candidate columns
// max(k−1, a−1)..ihi−1 (the two counts are always equal). O(m) candidate
// evaluations for a segment of m cells; the column arena is reset per
// segment, so a row fill stays allocation-free once the arena has grown to
// the largest segment.
func (st *dpState) segSMAWK(k, a, ilo, ihi int, jrow []int32) error {
	if st.smawkArg == nil {
		st.smawkArg = make([]int32, st.n+1)
	}
	m := ihi - ilo + 1
	if need := 3 * (m + 1); cap(st.smawkBuf) < need {
		st.smawkBuf = make([]int32, need)
	}
	st.smawkOff = 0
	cols := st.smawkCarve(m)
	jlo := max(k-1, a-1)
	for t := 0; t < m; t++ {
		cols = append(cols, int32(jlo+t))
	}
	if err := st.smawk(ilo, 1, m, cols); err != nil {
		return err
	}
	st.stats.Cells += int64(m)
	// smawk wrote minima and argmins directly; copy argmins out when the
	// caller keeps split rows (completeSegment may still override them).
	if jrow != nil {
		copy(jrow[ilo:ihi+1], st.smawkArg[ilo:ihi+1])
	}
	return nil
}

// smawk computes the row minima of the candidate matrix restricted to the
// cell arithmetic progression rStart, rStart+rStep, ... (rCount cells) and
// the candidate columns cols, writing E values into curE and argmins into
// smawkArg. cols must be ascending; rightmost argmins are selected.
func (st *dpState) smawk(rStart, rStep, rCount int, cols []int32) error {
	if rCount == 0 {
		return nil
	}
	// Reduce: retain at most rCount columns that can hold a row minimum.
	S := st.smawkCarve(min(rCount, len(cols)))
	cmps := 0
	for _, c := range cols {
		for len(S) > 0 {
			r := rStart + (len(S)-1)*rStep
			top := int(S[len(S)-1])
			if top >= r {
				// top sits on/right of the diagonal at this cell, and so
				// does c (it is further right): two pads are incomparable
				// here — both may only matter for deeper cells, so keep
				// the stack and push c below.
				break
			}
			cmps++
			// The rightmost-tie convention pops on ties: an equally good
			// column further right shadows the stack top from this cell
			// on. Inf-valued tops (gap-crossing or infeasible-prefix
			// columns) tie with anything ≤ Inf and stay Inf at every
			// deeper cell, so popping them is always sound.
			if st.smawkValue(r, top) >= st.smawkValue(r, int(c)) {
				S = S[:len(S)-1]
			} else {
				break
			}
		}
		if len(S) < rCount {
			S = append(S, c)
		}
	}
	st.stats.InnerIters += int64(cmps)
	if err := st.pollFill(2 * cmps); err != nil {
		return err
	}
	// Recurse on the odd cells (1-based odd indices of the progression).
	if err := st.smawk(rStart+rStep, 2*rStep, rCount/2, S); err != nil {
		return err
	}
	// Interpolate the even cells: cell t's rightmost argmin lies between
	// the argmins of its odd neighbors (argmins are monotone), scanned
	// right to left so the first strict improvement is the rightmost.
	loIdx := 0
	evals := 0
	for t := 0; t < rCount; t += 2 {
		i := rStart + t*rStep
		if t > 0 {
			// Argmin 0 is the Inf-cell sentinel (real argmins are ≥ k−1 ≥ 1)
			// and constrains nothing; loIdx then keeps the bound of the
			// last finite neighbor, which is still a valid lower bound.
			down := st.smawkArg[rStart+(t-1)*rStep]
			for loIdx < len(S)-1 && S[loIdx] < down {
				loIdx++
			}
		}
		hiIdx := len(S) - 1
		if t+1 < rCount {
			// The next odd cell's argmin bounds this cell's window from
			// above; walk up from loIdx (argmins are monotone, so the walk
			// is amortized by the scan below, never a rescan from the top).
			// A sentinel neighbor (all-Inf cell) leaves the window open.
			if up := st.smawkArg[rStart+(t+1)*rStep]; up != 0 {
				hiIdx = loIdx
				for hiIdx < len(S)-1 && S[hiIdx] < up {
					hiIdx++
				}
			}
		}
		best := Inf
		bestJ := int32(0)
		cellEvals := 0
		for q := hiIdx; q >= loIdx; q-- {
			j := int(S[q])
			if j >= i {
				continue // diagonal pad: not a feasible split for this cell
			}
			cellEvals++
			if v := st.smawkValue(i, j); v < best {
				best = v
				bestJ = S[q]
			}
		}
		evals += cellEvals
		st.stats.InnerIters += int64(cellEvals)
		st.curE[i] = best
		st.smawkArg[i] = bestJ
	}
	return st.pollFill(evals)
}
