package core

import "fmt"

// FillAlgo selects the algorithm that fills one row of the DP error matrix
// E[k] given row E[k−1]. All algorithms produce bitwise-identical E and J
// rows — they share the CostKernel's merge-cost arithmetic and the same
// rightmost-argmin tie handling — and differ only in how many candidate
// split points they evaluate:
//
//   - FillPruned scans candidates right to left with the Jagadish-style
//     early exit (the merge cost grows as the split moves left, so the scan
//     stops once it alone exceeds the best total). Worst case O(n) per
//     cell, O(n²) per row; in practice often far less.
//   - FillDC exploits that on counter-like series — per-run monotone
//     values, certified by CostKernel.MonotoneRuns — the weighted SSE
//     merge cost satisfies the concave quadrangle inequality, so optimal
//     split points are monotone across a row: divide and conquer over the
//     row evaluates O(n log n) candidates per row.
//   - FillSMAWK applies the SMAWK row-minima algorithm to the same
//     totally monotone candidate matrix: O(n) candidate evaluations per
//     row, the asymptotic optimum.
//
// On series the kernel cannot certify, FillDC and FillSMAWK fall back to
// the scan (the quadrangle inequality genuinely fails on oscillating
// values, so a monotone fill would return suboptimal rows there); results
// are therefore identical for every selection on every input. FillAuto
// (the zero value) picks FillPruned below fillAutoThreshold rows and
// FillDC at or above it — except for the pruning-ablation modes, whose
// scan-work measurements auto never replaces.
type FillAlgo uint8

const (
	// FillAuto selects the algorithm by input size (the default).
	FillAuto FillAlgo = iota
	// FillPruned is the i*/j′-pruned right-to-left candidate scan.
	FillPruned
	// FillDC is the monotone divide-and-conquer row fill.
	FillDC
	// FillSMAWK is the SMAWK totally-monotone row-minima fill.
	FillSMAWK
)

// fillAutoThreshold is the input size at which FillAuto switches from the
// pruned scan to the monotone divide-and-conquer fill (on series the kernel
// certifies; everything else scans regardless). On certified workloads the
// measured crossover is far below this — FillDC already wins ~2× at n = 64
// and ~40× at n = 8192 — so the threshold only keeps the certification scan
// and recursion off inputs too small to care. The `fill` experiment records
// the trajectory.
const fillAutoThreshold = 256

// String names the algorithm; the names round-trip through ParseFillAlgo.
func (a FillAlgo) String() string {
	switch a {
	case FillAuto:
		return "auto"
	case FillPruned:
		return "pruned"
	case FillDC:
		return "dc"
	case FillSMAWK:
		return "smawk"
	}
	return fmt.Sprintf("fill(%d)", uint8(a))
}

// ParseFillAlgo resolves a row-fill algorithm name ("auto", "pruned", "dc"
// or "smawk").
func ParseFillAlgo(s string) (FillAlgo, error) {
	switch s {
	case "", "auto":
		return FillAuto, nil
	case "pruned":
		return FillPruned, nil
	case "dc":
		return FillDC, nil
	case "smawk":
		return FillSMAWK, nil
	}
	return FillAuto, fmt.Errorf("core: unknown fill algorithm %q (have %v)", s, FillAlgoNames())
}

// FillAlgoNames lists the recognized fill-algorithm names in definition
// order.
func FillAlgoNames() []string {
	return []string{"auto", "pruned", "dc", "smawk"}
}

// resolve maps FillAuto onto a concrete algorithm for an input of size n.
func (a FillAlgo) resolve(n int) FillAlgo {
	if a != FillAuto {
		return a
	}
	if n >= fillAutoThreshold {
		return FillDC
	}
	return FillPruned
}

// The monotone row fills below compute, for every cell i of row k ≥ 2,
//
//	E[k][i] = min_j E[k−1][j] + w(j+1, i),   J[k][i] = the LARGEST argmin,
//
// where w is the merge cost (Inf across gaps). When the kernel certifies
// per-run monotone values (MonotoneRuns), w satisfies the concave
// quadrangle inequality within every run — for split candidates j < j′ and
// cells i < i′ of one run,
//
//	w(j+1, i) + w(j′+1, i′) ≤ w(j+1, i′) + w(j′+1, i)
//
// (the weighted sorted 1-D k-means Monge property) — so the candidate
// matrix M[i][j] = E[k−1][j] + w(j+1, i) is totally monotone: if a right
// candidate is at least as good as a left one at some cell, it stays at
// least as good at every later cell. The rightmost argmin is therefore
// non-decreasing in i, which is exactly the tie-break the pruned scan
// applies (it scans right to left and keeps the first strict improvement),
// so the monotone fills reproduce its E and J rows bit for bit.
//
// Gaps integrate into the same framework: a merge cost across a gap is Inf,
// and those Inf cells persist downward (the rightmost gap before i is
// non-decreasing in i), which preserves total monotonicity across run
// boundaries — every all-finite comparison quadruple lies inside one run,
// where the certified inequality applies. Both fills therefore restrict
// each cell's candidate window to [max(k−1, rightmostGapBefore(i)), i−1] —
// the Section 5.3 jmin bound — and cap the cell range at the k-th gap — the
// imax bound — unconditionally: outside those bounds every candidate is
// infinite, so the produced rows are identical for every PruneMode (only
// the scan's work differs across ablation modes).

// ensureRightGap materializes rightmostGapBefore(i) for every position so
// the monotone fills resolve candidate windows in O(1) under random access.
func (st *dpState) ensureRightGap() {
	if st.rightGap != nil {
		return
	}
	st.rightGap = make([]int32, st.n+1)
	rg, gi := int32(0), 0
	gaps := st.kn.gaps
	for i := 0; i <= st.n; i++ {
		for gi < len(gaps) && gaps[gi] < i {
			rg = int32(gaps[gi])
			gi++
		}
		st.rightGap[i] = rg
	}
}

// effectiveIMax caps a row's cell range at the k-th gap: beyond it every
// cell of row k is infinite regardless of the pruning mode, so the monotone
// fills never visit those cells (the initialization already left them Inf
// with split point 0, matching the scan's output).
func (st *dpState) effectiveIMax(k, imax int) int {
	if k <= len(st.kn.gaps) && st.kn.gaps[k-1] < imax {
		return st.kn.gaps[k-1]
	}
	return imax
}

// pollFill polls cancellation every cancelCheckCells candidate evaluations,
// amortizing the context check off the monotone fills' hot path.
func (st *dpState) pollFill(evals int) error {
	st.fillSteps += int64(evals)
	if st.fillSteps < cancelCheckCells {
		return nil
	}
	st.fillSteps = 0
	return st.opts.canceled()
}

// --- monotone divide and conquer ---

// fillRowDC fills row k ≥ 2 by divide and conquer over the cells: solve the
// middle cell by scanning its candidate window, then recurse left and right
// with the window split at the middle's argmin. O(n log n) candidate
// evaluations per row.
func (st *dpState) fillRowDC(k, imax int, jrow []int32) error {
	imax = st.effectiveIMax(k, imax)
	if k > imax {
		return nil
	}
	st.ensureRightGap()
	return st.dcSolve(k, k, imax, k-1, imax-1, jrow)
}

// dcSolve fills cells ilo..ihi with candidate split points clamped to
// [jlo, jhi] (further clamped per cell by its own jmin window).
func (st *dpState) dcSolve(k, ilo, ihi, jlo, jhi int, jrow []int32) error {
	if ilo > ihi {
		return nil
	}
	mid := ilo + (ihi-ilo)/2
	lo := max(jlo, max(k-1, int(st.rightGap[mid])))
	hi := min(jhi, mid-1)
	rerr := st.rerr
	prevE := st.prevE
	best := Inf
	bestJ := 0
	inner := 0
	for j := hi; j >= lo; j-- {
		inner++
		err2 := rerr(j+1, mid)
		if v := prevE[j] + err2; v < best {
			best = v
			bestJ = j
		}
		// err2 grows as j decreases; once it alone exceeds the best total,
		// no smaller j can win (the scan's early exit applies here too).
		if err2 > best {
			break
		}
	}
	st.stats.Cells++
	st.stats.InnerIters += int64(inner)
	st.curE[mid] = best
	if jrow != nil {
		jrow[mid] = int32(bestJ)
	}
	if err := st.pollFill(inner); err != nil {
		return err
	}
	// An Inf cell (every candidate saturated — possible under extreme
	// weights even on certified data) constrains neither neighbor: recurse
	// with the parent's bounds instead of narrowing through its sentinel.
	leftHi, rightLo := bestJ, bestJ
	if best == Inf {
		leftHi, rightLo = jhi, jlo
	}
	if err := st.dcSolve(k, ilo, mid-1, jlo, leftHi, jrow); err != nil {
		return err
	}
	return st.dcSolve(k, mid+1, ihi, rightLo, jhi, jrow)
}

// --- SMAWK ---

// smawkValue evaluates the candidate matrix entry M[i][j] for row k: Inf
// for columns on or right of the diagonal (j ≥ i is not a feasible split
// for cell i) and for split points whose merge would cross a gap,
// E[k−1][j] + w(j+1, i) otherwise. Diagonal pads are handled structurally
// — the reduce step never compares two pads and the interpolation scan
// skips them — so no finite sentinel exists for genuine (arbitrarily
// large) merge costs to undercut.
func (st *dpState) smawkValue(i, j int) float64 {
	if j >= i {
		return Inf
	}
	if int(st.rightGap[i]) > j {
		return Inf
	}
	return st.prevE[j] + st.rerr(j+1, i)
}

// smawkCarve hands out a zero-length int32 slice with the given capacity
// from the per-state arena. The SMAWK recursion is a chain whose level
// sizes halve, so one row fill carves at most 3·(rows+1) entries in total;
// fillRowSMAWK sizes the arena accordingly and resets it per row, which
// keeps the whole fill allocation-free after the first row.
func (st *dpState) smawkCarve(capacity int) []int32 {
	s := st.smawkBuf[st.smawkOff : st.smawkOff : st.smawkOff+capacity]
	st.smawkOff += capacity
	return s
}

// fillRowSMAWK fills row k ≥ 2 with the SMAWK algorithm over the totally
// monotone candidate matrix: O(n) candidate evaluations per row.
func (st *dpState) fillRowSMAWK(k, imax int, jrow []int32) error {
	imax = st.effectiveIMax(k, imax)
	if k > imax {
		return nil
	}
	st.ensureRightGap()
	if st.smawkArg == nil {
		st.smawkArg = make([]int32, st.n+1)
	}
	n := imax - k + 1 // cells k..imax, candidate columns k-1..imax-1
	if need := 3 * (n + 1); cap(st.smawkBuf) < need {
		st.smawkBuf = make([]int32, need)
	}
	st.smawkOff = 0
	cols := st.smawkCarve(n)
	for t := 0; t < n; t++ {
		cols = append(cols, int32(k-1+t))
	}
	if err := st.smawk(k, 1, n, cols); err != nil {
		return err
	}
	st.stats.Cells += int64(n)
	// smawk wrote minima and argmins directly; copy argmins out when the
	// caller keeps split rows.
	if jrow != nil {
		copy(jrow[k:imax+1], st.smawkArg[k:imax+1])
	}
	return nil
}

// smawk computes the row minima of the candidate matrix restricted to the
// cell arithmetic progression rStart, rStart+rStep, ... (rCount cells) and
// the candidate columns cols, writing E values into curE and argmins into
// smawkArg. cols must be ascending; rightmost argmins are selected.
func (st *dpState) smawk(rStart, rStep, rCount int, cols []int32) error {
	if rCount == 0 {
		return nil
	}
	// Reduce: retain at most rCount columns that can hold a row minimum.
	S := st.smawkCarve(min(rCount, len(cols)))
	cmps := 0
	for _, c := range cols {
		for len(S) > 0 {
			r := rStart + (len(S)-1)*rStep
			top := int(S[len(S)-1])
			if top >= r {
				// top sits on/right of the diagonal at this cell, and so
				// does c (it is further right): two pads are incomparable
				// here — both may only matter for deeper cells, so keep
				// the stack and push c below.
				break
			}
			cmps++
			// The rightmost-tie convention pops on ties: an equally good
			// column further right shadows the stack top from this cell
			// on. Inf-valued tops (gap-crossing or infeasible-prefix
			// columns) tie with anything ≤ Inf and stay Inf at every
			// deeper cell, so popping them is always sound.
			if st.smawkValue(r, top) >= st.smawkValue(r, int(c)) {
				S = S[:len(S)-1]
			} else {
				break
			}
		}
		if len(S) < rCount {
			S = append(S, c)
		}
	}
	st.stats.InnerIters += int64(cmps)
	if err := st.pollFill(2 * cmps); err != nil {
		return err
	}
	// Recurse on the odd cells (1-based odd indices of the progression).
	if err := st.smawk(rStart+rStep, 2*rStep, rCount/2, S); err != nil {
		return err
	}
	// Interpolate the even cells: cell t's rightmost argmin lies between
	// the argmins of its odd neighbors (argmins are monotone), scanned
	// right to left so the first strict improvement is the rightmost.
	loIdx := 0
	evals := 0
	for t := 0; t < rCount; t += 2 {
		i := rStart + t*rStep
		if t > 0 {
			// Argmin 0 is the Inf-cell sentinel (real argmins are ≥ k−1 ≥ 1)
			// and constrains nothing; loIdx then keeps the bound of the
			// last finite neighbor, which is still a valid lower bound.
			down := st.smawkArg[rStart+(t-1)*rStep]
			for loIdx < len(S)-1 && S[loIdx] < down {
				loIdx++
			}
		}
		hiIdx := len(S) - 1
		if t+1 < rCount {
			// The next odd cell's argmin bounds this cell's window from
			// above; walk up from loIdx (argmins are monotone, so the walk
			// is amortized by the scan below, never a rescan from the top).
			// A sentinel neighbor (all-Inf cell) leaves the window open.
			if up := st.smawkArg[rStart+(t+1)*rStep]; up != 0 {
				hiIdx = loIdx
				for hiIdx < len(S)-1 && S[hiIdx] < up {
					hiIdx++
				}
			}
		}
		best := Inf
		bestJ := int32(0)
		cellEvals := 0
		for q := hiIdx; q >= loIdx; q-- {
			j := int(S[q])
			if j >= i {
				continue // diagonal pad: not a feasible split for this cell
			}
			cellEvals++
			if v := st.smawkValue(i, j); v < best {
				best = v
				bestJ = S[q]
			}
		}
		evals += cellEvals
		st.stats.InnerIters += int64(cellEvals)
		st.curE[i] = best
		st.smawkArg[i] = bestJ
	}
	return st.pollFill(evals)
}
